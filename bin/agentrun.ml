(* agentrun: boot a simulated 4.3BSD machine and run a program under a
   (possibly stacked) list of interposition agents.

     agentrun -a trace -- ls -l /etc
     agentrun -a timex:86400 -- sh -c "echo hi | wc"
     agentrun --setup make-split -a union:/proj=/objdir:/srcdir -- make
     agentrun -a sandbox:emulate -a syscount -- rm /etc/motd

   Agents are installed left to right: the last one listed is the one
   closest to the application (sees its calls first). *)

open Abi

let log_err fmt = Printf.eprintf fmt

(* --- agent specification parsing -------------------------------------- *)

type spec = string  (* "name" or "name:args" *)

let split_spec (s : spec) =
  match String.index_opt s ':' with
  | None -> s, ""
  | Some i ->
    String.sub s 0 i, String.sub s (i + 1) (String.length s - i - 1)

(* Returns an installer to run inside the session, and a reporter to
   run (inside the session, before exit) for agents with output. *)
let build_agent k (s : spec) :
  (unit -> unit) * (unit -> unit) =
  let name, arg = split_spec s in
  let install_plain a = Toolkit.Loader.install a ~argv:[||] in
  match name with
  | "null" | "time_symbolic" ->
    (fun () -> install_plain (Agents.Time_symbolic.create ())), ignore
  | "timex" ->
    let offset =
      Option.value ~default:3600 (int_of_string_opt arg)
    in
    (fun () -> install_plain (Agents.Timex.create ~offset_seconds:offset ())),
    ignore
  | "trace" ->
    (fun () ->
       let agent =
         match
           if arg = "" then Error Errno.EINVAL
           else
             Libc.Unistd.open_ arg
               Flags.Open.(o_wronly lor o_creat lor o_trunc)
               0o644
         with
         | Ok fd -> Agents.Trace.create ~fd ()
         | Error _ -> Agents.Trace.create ()  (* stderr *)
       in
       install_plain agent),
    ignore
  | "syscount" ->
    let agent = Agents.Syscount.create () in
    (fun () -> install_plain agent),
    (fun () -> agent#write_report ~fd:2)
  | "union" ->
    (match Agents.Union.create ~mounts:[] () with
     | agent ->
       (fun () ->
          Toolkit.Loader.install agent
            ~argv:(if arg = "" then [||] else [| arg |])),
       ignore)
  | "sandbox" ->
    let policy =
      if arg = "emulate" then
        { Agents.Sandbox.default_policy with emulate_denied = true }
      else Agents.Sandbox.default_policy
    in
    let agent = Agents.Sandbox.create policy in
    (fun () -> install_plain agent),
    (fun () ->
       match agent#violations with
       | [] -> ignore (Libc.Unistd.write 2 "sandbox: no violations\n")
       | vs ->
         ignore
           (Libc.Unistd.write 2
              (Printf.sprintf "sandbox: %d violation(s):\n%s"
                 (List.length vs)
                 (String.concat ""
                    (List.map (fun v -> "  - " ^ v ^ "\n") vs)))))
  | "txn" ->
    let decide () = if arg = "abort" then `Abort else `Commit in
    let agent = Agents.Txn.create ~decide () in
    (fun () -> install_plain agent), ignore
  | "crypt" ->
    let key, subtree =
      match String.index_opt arg '@' with
      | Some i ->
        ( Option.value ~default:42
            (int_of_string_opt (String.sub arg 0 i)),
          String.sub arg (i + 1) (String.length arg - i - 1) )
      | None -> 42, (if arg = "" then "/vault" else arg)
    in
    (fun () ->
       install_plain (Agents.Crypt.create ~key ~subtrees:[ subtree ])),
    ignore
  | "compress" ->
    let subtree = if arg = "" then "/arch" else arg in
    (fun () ->
       install_plain (Agents.Compress.create ~subtrees:[ subtree ])),
    ignore
  | "remap" | "vos" ->
    (fun () -> install_plain (Agents.Remap.create ())), ignore
  | "synthfs" ->
    let mount = if arg = "" then "/proc" else arg in
    let agent = Agents.Synthfs.create ~mount () in
    (* a host-bridged generator: the synthetic file reads the real
       process table of the simulated machine *)
    agent#register_file "ps" (fun () ->
      let b = Buffer.create 128 in
      Buffer.add_string b "  PID  PPID  PGRP NAME\n";
      List.iter
        (fun (p : Kernel.Proc.t) ->
          Buffer.add_string b
            (Printf.sprintf "%5d %5d %5d %s\n" p.pid p.ppid p.pgrp p.name))
        (Kernel.Kstate.live_procs k);
      Buffer.contents b);
    (fun () -> install_plain agent), ignore
  | "faultinject" ->
    (* numeric arg = legacy random rate; anything else is a
       deterministic plan spec ("read#3=fail:EIO;2@write=delay:500") *)
    (match float_of_string_opt arg with
     | Some r when r >= 0.0 && r <= 1.0 ->
       let agent =
         Agents.Faultinject.create
           { Agents.Faultinject.default_config with failure_rate = r }
       in
       (fun () -> install_plain agent),
       (fun () ->
          ignore
            (Libc.Unistd.write 2
               (Printf.sprintf "faultinject: %d fault(s) injected\n"
                  agent#total_injected)))
     | Some _ | None ->
       (match Fault.Plan.of_spec arg with
        | Error msg ->
          invalid_arg (Printf.sprintf "faultinject plan: %s" msg)
        | Ok plan ->
          let agent = Agents.Faultinject.create_planned plan in
          (fun () -> install_plain agent),
          (fun () ->
             ignore
               (Libc.Unistd.write 2
                  (Printf.sprintf
                     "faultinject: %d fault(s) injected, %d EINTR \
                      restarted, %d delayed\n"
                     agent#total_injected agent#restarted agent#delayed)))))
  | "dfs_trace" ->
    (fun () ->
       Toolkit.Loader.install (Agents.Dfs_trace.create ())
         ~argv:[| (if arg = "" then "log=/dfstrace.log" else "log=" ^ arg) |]),
    ignore
  | "obs" ->
    let mount = if arg = "" then "/obs" else arg in
    (fun () -> install_plain (Agents.Obs_fs.create ~mount ())), ignore
  | other -> invalid_arg (Printf.sprintf "unknown agent %S" other)

let known_agents =
  "null, timex[:OFFSET], trace[:FILE], syscount, union:/PT=/M1:/M2, \
   sandbox[:emulate], txn[:abort], crypt[:KEY@PATH], compress[:PATH], \
   remap, dfs_trace[:FILE], synthfs[:MOUNT], obs[:MOUNT], \
   faultinject[:RATE|:PLAN]"

(* --- filesystem setups -------------------------------------------------- *)

let apply_setup k = function
  | "scribe" -> Workloads.Scribe.setup k
  | "make" -> Workloads.Make_cc.setup k
  | "make-split" ->
    (* sources in /srcdir, build products in /objdir: the layout for
       union:/proj=/objdir:/srcdir *)
    Workloads.Make_cc.setup k;
    Kernel.mkdir_p k "/objdir";
    let fs = Kernel.fs k in
    let root = Vfs.Fs.root_ino fs in
    ignore (Vfs.Fs.rename fs Vfs.Fs.root_cred ~cwd:root ~src:"/proj" "/srcdir")
  | "afs" -> Workloads.Afs_bench.setup k
  | "kvd" -> Workloads.Kvd.setup k
  | "demo" ->
    Kernel.mkdir_p k "/home/user";
    Kernel.write_file k ~path:"/home/user/hello.txt" "hello from the inside\n";
    Kernel.mkdir_p k "/vault";
    Kernel.mkdir_p k "/arch"
  | other -> invalid_arg (Printf.sprintf "unknown setup %S" other)

(* --- the run ---------------------------------------------------------------- *)

let resolve_prog name =
  if String.contains name '/' then name else "/bin/" ^ name

let read_host_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_host_file path content =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc content)

(* --- observability reporting ----------------------------------------------- *)

let print_metrics k =
  let m = Kernel.metrics k in
  let n = m.Obs.m_sample_n in
  Printf.eprintf
    "[obs] %d span(s) completed, %d aborted (exit/exec), %d record(s) \
     dropped from the ring\n"
    m.Obs.m_spans m.Obs.m_aborted m.Obs.m_dropped;
  if m.Obs.m_injected > 0 then
    Printf.eprintf "[obs] %d fault(s) injected by agents\n" m.Obs.m_injected;
  if n > 1 then
    Printf.eprintf
      "[obs] sampling 1-in-%d: calls/errors are exact; histogram, \
       percentile and per-layer figures cover the sampled subset \
       (multiply counts by %d for estimates)\n"
      n n;
  (* p50/p90/p99 are upper-bucket-bound estimates from the log2
     histograms: the true quantile is <= the printed value, within its
     power-of-two bucket *)
  if m.Obs.m_syscalls <> [] then begin
    Printf.eprintf "[obs] per-syscall:  %-14s %8s %7s %10s %7s %7s %7s %8s\n"
      "name" "calls" "errors" "mean us" "p50" "p90" "p99" "max us";
    List.iter
      (fun (s : Obs.syscall_metrics) ->
        Printf.eprintf
          "                    %-14s %8d %7d %10.1f %7d %7d %7d %8d\n"
          (Sysno.name s.Obs.sm_sysno) s.Obs.sm_calls s.Obs.sm_errors
          (Obs.Hist.mean_us s.Obs.sm_hist)
          (Obs.Hist.quantile s.Obs.sm_hist 0.50)
          (Obs.Hist.quantile s.Obs.sm_hist 0.90)
          (Obs.Hist.quantile s.Obs.sm_hist 0.99)
          (Obs.Hist.max_us s.Obs.sm_hist))
      m.Obs.m_syscalls
  end;
  if m.Obs.m_layers <> [] then begin
    Printf.eprintf
      "[obs] per-layer:    %5s %-14s %8s %8s %8s %8s %10s %7s %7s %7s\n"
      "depth" "layer" "traps" "decodes" "encodes" "rewrite" "self us"
      "p50" "p90" "p99";
    List.iter
      (fun (l : Obs.layer_metrics) ->
        Printf.eprintf
          "                    %5d %-14s %8d %8d %8d %8d %10d %7d %7d %7d\n"
          l.Obs.lm_depth l.Obs.lm_layer l.Obs.lm_traps l.Obs.lm_decodes
          l.Obs.lm_encodes l.Obs.lm_rewrites l.Obs.lm_self_us
          (Obs.Hist.quantile l.Obs.lm_hist 0.50)
          (Obs.Hist.quantile l.Obs.lm_hist 0.90)
          (Obs.Hist.quantile l.Obs.lm_hist 0.99))
      m.Obs.m_layers
  end;
  (* host-side cost of the run: wall-clock and GC figures, the one
     deliberately non-deterministic block (everything above is virtual
     time and exact counts) *)
  let h = Kernel.host_stats k in
  if h.Kernel.h_traps > 0 then
    Printf.eprintf
      "[host] %d trap(s) in %.3fs host CPU: %.0f ns/trap, %.1f minor \
       words/trap, %.0f promoted, %d major GC(s); pools: wire %.0f%% \
       env %.0f%% hit\n"
      h.Kernel.h_traps h.Kernel.h_cpu_s h.Kernel.h_ns_per_trap
      h.Kernel.h_minor_words_per_trap h.Kernel.h_promoted_words
      h.Kernel.h_major_collections
      (100. *. h.Kernel.h_wire_pool_hit_rate)
      (100. *. h.Kernel.h_env_pool_hit_rate)

(* --- fault campaigns --------------------------------------------------------- *)

let bundle_path dir workload i (o : Fault.Oracle.outcome) =
  Filename.concat dir
    (Printf.sprintf "repro-%s-%02d-%s.fault" workload i
       (Fault.Oracle.outcome_name o))

let run_campaign wname out_dir =
  match Fault.Campaign.of_name wname with
  | None ->
    log_err "agentrun: --campaign: unknown workload %S (known: %s)\n" wname
      (String.concat ", "
         (List.map
            (fun (w : Fault.Campaign.workload) -> w.Fault.Campaign.w_name)
            Fault.Campaign.workloads));
    2
  | Some w ->
    let baseline, cases = Fault.Campaign.sweep w in
    Printf.printf
      "[campaign] %s: baseline fault-free run ok, %d candidate site(s) \
       discovered\n"
      wname
      (List.length
         (Fault.Campaign.sites_from_profile
            baseline.Fault.Campaign.b_profile
            ~errnos:Fault.Campaign.default_errnos)
      / List.length Fault.Campaign.default_errnos);
    Printf.printf "[campaign] %-34s %-12s %s\n" "site" "outcome" "detail";
    let tally = Hashtbl.create 4 in
    let failing = ref [] in
    List.iteri
      (fun i (c : Fault.Campaign.case) ->
        let o = c.c_run.Fault.Campaign.r_outcome in
        Hashtbl.replace tally o
          (1 + Option.value ~default:0 (Hashtbl.find_opt tally o));
        if o <> Fault.Oracle.Tolerated then failing := (i, c) :: !failing;
        Printf.printf "[campaign] %-34s %-12s %s\n"
          (Fault.Plan.describe_site c.c_site)
          (Fault.Oracle.outcome_name o)
          c.c_run.Fault.Campaign.r_detail)
      cases;
    let count o = Option.value ~default:0 (Hashtbl.find_opt tally o) in
    Printf.printf
      "[campaign] %d run(s): %d tolerated, %d wrong-result, %d hang, %d \
       crash\n"
      (List.length cases)
      (count Fault.Oracle.Tolerated)
      (count Fault.Oracle.Wrong_result)
      (count Fault.Oracle.Hang) (count Fault.Oracle.Crash);
    if !failing <> [] && not (Sys.file_exists out_dir) then
      (try Sys.mkdir out_dir 0o755 with
       | Sys_error msg -> log_err "agentrun: --campaign-out: %s\n" msg);
    let write_errors = ref 0 in
    List.iter
      (fun (i, (c : Fault.Campaign.case)) ->
        let b =
          Fault.Bundle.of_run ~workload:wname c.c_run
        in
        let path =
          bundle_path out_dir wname i c.c_run.Fault.Campaign.r_outcome
        in
        match write_host_file path (Fault.Bundle.to_string b) with
        | () ->
          Printf.printf "[campaign] repro bundle: %s (replay with --repro)\n"
            path
        | exception Sys_error msg ->
          incr write_errors;
          log_err "agentrun: --campaign-out: %s\n" msg)
      (List.rev !failing);
    if !write_errors > 0 then 1 else 0

let run_repro path =
  let text =
    try Some (read_host_file path) with
    | Sys_error msg ->
      log_err "agentrun: --repro: %s\n" msg;
      None
  in
  match text with
  | None -> 2
  | Some text ->
    (match Fault.Bundle.of_string text with
     | Error msg ->
       log_err "agentrun: --repro: %s\n" msg;
       2
     | Ok b ->
       Printf.printf "[repro] %s: %s under plan:\n" b.Fault.Bundle.b_workload
         (Fault.Oracle.outcome_name b.Fault.Bundle.b_outcome);
       List.iter
         (fun s -> Printf.printf "[repro]   %s\n" (Fault.Plan.describe_site s))
         b.Fault.Bundle.b_sites;
       (match Fault.Bundle.replay b with
        | Error msg ->
          log_err "agentrun: --repro: %s\n" msg;
          2
        | Ok r ->
          (match Fault.Bundle.verify b r with
           | Ok () ->
             Printf.printf
               "[repro] reproduced: %s (%s), outputs byte-identical to the \
                recorded run\n"
               (Fault.Oracle.outcome_name r.Fault.Campaign.r_outcome)
               r.Fault.Campaign.r_detail;
             0
           | Error msg ->
             log_err "agentrun: --repro: NOT reproduced: %s\n" msg;
             1)))

(* --- conformance ------------------------------------------------------------- *)

let spawn_exit_code path argv =
  match Libc.Spawn.run path argv with
  | Ok st when Flags.Wait.wifexited st -> Flags.Wait.wexitstatus st
  | Ok st when Flags.Wait.wifsignaled st -> 128 + Flags.Wait.wtermsig st
  | Ok _ -> 126
  | Error e ->
    ignore
      (Libc.Unistd.write 2
         (Printf.sprintf "agentrun: %s: %s\n" path (Errno.message e)));
    127

(* Differential transparency check: run the program bare and again
   under the named stack, and require the two syscall signatures to
   agree modulo the stack's declared delta. *)
let run_conform spec setups prog_args =
  match prog_args with
  | [] ->
    log_err "agentrun: --conform: no program given\n";
    2
  | prog :: _ ->
    (match Conformance.of_spec spec with
     | Error msg ->
       log_err "agentrun: --conform: %s\n" msg;
       2
     | Ok stack ->
       let path = resolve_prog prog in
       let argv = Array.of_list prog_args in
       let setup k =
         Workloads.Progs.install_all k;
         try List.iter (apply_setup k) ("demo" :: setups) with
         | Invalid_argument msg ->
           log_err "agentrun: %s\n" msg;
           exit 2
       in
       let w =
         Conformance.workload_of_body ~name:prog ~setup (fun () ->
           spawn_exit_code path argv)
       in
       let v = Conformance.check w stack in
       print_endline (Conformance.verdict_to_string v);
       if Conformance.conforms v then 0 else 1)

let run agents setups stats feed record replay metrics trace_out trace_format
    sample sample_seed flame flame_weight follow watch campaign campaign_out
    repro signature conform prog_args =
  match prog_args with
  | _ when repro <> "" -> run_repro repro
  | _ when campaign <> "" -> run_campaign campaign campaign_out
  | _ when conform <> "" -> run_conform conform setups prog_args
  | [] ->
    log_err "agentrun: no program given\n";
    2
  | _ when trace_format <> "jsonl" && trace_format <> "chrome" ->
    log_err "agentrun: --trace-format must be jsonl or chrome (got %S)\n"
      trace_format;
    2
  | _ when flame_weight <> "virtual" && flame_weight <> "host" ->
    log_err "agentrun: --flame-weight must be virtual or host (got %S)\n"
      flame_weight;
    2
  | prog :: _ ->
    (* watchdog rules parse before anything boots: a bad file is a
       usage error, not a mid-run surprise *)
    let watch_rules =
      if watch = "" then []
      else
        let text =
          try read_host_file watch with
          | Sys_error msg ->
            log_err "agentrun: --watch: %s\n" msg;
            exit 2
        in
        match Obs.Watch.of_spec ~sysno:Sysno.of_name text with
        | Ok rules -> rules
        | Error msg ->
          log_err "agentrun: --watch: %s\n" msg;
          exit 2
    in
    let observing =
      metrics || trace_out <> "" || signature <> "" || flame <> ""
      || follow || watch <> ""
    in
    if observing then begin
      Obs.reset ();
      Obs.set_sampling ~seed:sample_seed sample;
      Obs.enable ()
    end;
    let k = Kernel.create () in
    Kernel.populate_standard k;
    Workloads.Progs.install_all k;
    Workloads.Scribe.register k;
    Workloads.Make_cc.register k;
    (try List.iter (apply_setup k) ("demo" :: setups) with
     | Invalid_argument msg ->
       log_err "agentrun: %s\n" msg;
       exit 2);
    if feed <> "" then Kernel.feed_console k (feed ^ "\n");
    Kernel.echo_console_to k print_string;
    if watch_rules <> [] then Kernel.set_watch k watch_rules;
    (* Live streaming and pid labelling piggyback on the kernel trace
       hook at zero virtual cost: per retired syscall we remember the
       caller's image name (processes are reaped from the table before
       the post-run export runs) and, under --follow, drain the
       incremental cursor to stderr as JSONL. *)
    let pid_names : (int, string) Hashtbl.t = Hashtbl.create 16 in
    let follow_cursor = Obs.Stream.cursor () in
    let follow_flush () =
      let fresh, lost = Obs.poll follow_cursor in
      if lost > 0 then Printf.eprintf "# lost %d\n" lost;
      List.iter (fun r -> Printf.eprintf "%s\n" (Obs.Span.to_line r)) fresh
    in
    let want_labels = trace_out <> "" && trace_format = "chrome" in
    if follow || want_labels then
      Kernel.set_trace_hook k ~cost_us:0
        (Some
           (fun p _ _ ->
             Hashtbl.replace pid_names p.Kernel.Proc.pid p.Kernel.Proc.name;
             if follow then follow_flush ()));
    let pid_label pid =
      match Hashtbl.find_opt pid_names pid with
      | Some name -> Printf.sprintf "pid %d %s" pid name
      | None -> Kernel.pid_label k pid
    in
    let installers_reporters =
      try List.map (build_agent k) agents with
      | Invalid_argument msg ->
        log_err "agentrun: %s (known: %s)\n" msg known_agents;
        exit 2
    in
    (* --record / --replay wrap the whole stack *)
    let recorder =
      if record <> "" then Some (Agents.Record_replay.create_recorder ())
      else None
    in
    let installers_reporters =
      (match replay with
       | "" -> []
       | path ->
         let journal =
           try read_host_file path with
           | Sys_error msg ->
             log_err "agentrun: --replay: %s\n" msg;
             exit 2
         in
         let replayer = Agents.Record_replay.create_replayer ~journal in
         [ (fun () -> Toolkit.Loader.install replayer ~argv:[||]),
           (fun () ->
              if replayer#desyncs > 0 then
                ignore
                  (Libc.Unistd.write 2
                     (Printf.sprintf "replay: %d desync(s)\n"
                        replayer#desyncs))) ])
      @ (match recorder with
         | Some r ->
           [ (fun () -> Toolkit.Loader.install r ~argv:[||]), ignore ]
         | None -> [])
      @ installers_reporters
    in
    let path = resolve_prog prog in
    let argv = Array.of_list prog_args in
    let status =
      Kernel.boot k ~name:"agentrun" (fun () ->
        List.iter (fun (install, _) -> install ()) installers_reporters;
        (* the signature covers exactly the program's own calls: armed
           after agent installation, disarmed before agent reports *)
        if signature <> "" then Obs.sig_capture true;
        let code =
          match
            Libc.Spawn.run path argv
          with
          | Ok st when Flags.Wait.wifexited st -> Flags.Wait.wexitstatus st
          | Ok st when Flags.Wait.wifsignaled st ->
            Obs.sig_capture false;
            ignore
              (Libc.Unistd.write 2
                 (Printf.sprintf "agentrun: program killed by %s\n"
                    (Signal.name (Flags.Wait.wtermsig st))));
            128 + Flags.Wait.wtermsig st
          | Ok _ -> 126
          | Error e ->
            Obs.sig_capture false;
            ignore
              (Libc.Unistd.write 2
                 (Printf.sprintf "agentrun: %s: %s\n" path
                    (Errno.message e)));
            127
        in
        Obs.sig_capture false;
        (* reports must be emitted inside the session, before exit *)
        List.iter (fun (_, report) -> report ()) installers_reporters;
        code)
    in
    (match recorder with
     | Some r ->
       (try write_host_file record r#journal with
        | Sys_error msg -> log_err "agentrun: --record: %s\n" msg);
       if stats then
         Printf.eprintf "[agentrun] recorded %d journal entries to %s\n"
           r#entries record
     | None -> ());
    if observing then begin
      Obs.disable ();
      if signature <> "" then begin
        let s = Conformance.Signature.of_obs (Obs.sig_events ()) in
        Obs.sig_clear ();
        (try
           write_host_file signature
             (Conformance.Signature.to_string s ^ "\n")
         with
         | Sys_error msg -> log_err "agentrun: --signature: %s\n" msg);
        if stats then
          Printf.eprintf "[agentrun] wrote %d-call signature to %s\n"
            (Conformance.Signature.length s)
            signature
      end;
      (* the hook only fires on retired syscalls, so records pushed
         after the last one still need a final flush — before the
         drain below empties the ring *)
      if follow then follow_flush ();
      if trace_out <> "" || flame <> "" then begin
        let records = Kernel.drain_obs k in
        if trace_out <> "" then begin
          let rendered =
            match trace_format with
            | "chrome" ->
              (* one trace_event JSON array — loads directly in
                 chrome://tracing and Perfetto; causal fork/signal/pipe
                 edges render as flow arrows between span slices *)
              Obs.Chrome.to_string ~name:Sysno.name ~pid_label
                ~edges:(Kernel.causal_edges k) records
              ^ "\n"
            | _ ->
              String.concat ""
                (List.map (fun r -> Obs.Span.to_line r ^ "\n") records)
          in
          (try write_host_file trace_out rendered with
           | Sys_error msg -> log_err "agentrun: --trace-out: %s\n" msg);
          if stats then
            Printf.eprintf "[agentrun] wrote %d span record(s) to %s (%s)\n"
              (List.length records) trace_out trace_format
        end;
        if flame <> "" then begin
          let segments =
            List.filter_map
              (function Obs.Span.Segment s -> Some s | _ -> None)
              records
          in
          let folds = Obs.Flame.fold segments in
          let scale =
            match flame_weight with
            | "host" ->
              (* reweight virtual µs by measured host ns per virtual
                 µs: the same stacks, at raw-machine cost *)
              let h = Kernel.host_stats k in
              let tot = Obs.Flame.total folds in
              if tot > 0 then h.Kernel.h_cpu_s *. 1e9 /. float_of_int tot
              else 1.0
            | _ -> 1.0
          in
          (try
             write_host_file flame
               (Obs.Flame.to_string ~name:Sysno.name ~scale folds)
           with
           | Sys_error msg -> log_err "agentrun: --flame: %s\n" msg);
          if stats then
            Printf.eprintf
              "[agentrun] wrote %d flame stack(s) (%s-weighted) to %s\n"
              (List.length folds) flame_weight flame
        end
      end;
      if metrics then print_metrics k
    end;
    (* watchdog verdicts come last: a trip turns an otherwise clean
       exit into failure, so CI gates can watch exit codes alone *)
    let tripped =
      if watch = "" then []
      else begin
        let vs = Kernel.watch_verdicts k in
        List.iter
          (fun (v : Obs.Watch.verdict) ->
            Printf.eprintf "[watch] %-20s %s: value %g bound %g — %s\n"
              v.Obs.Watch.wr_rule.Obs.Watch.w_name
              (Obs.Watch.pred_to_string v.Obs.Watch.wr_rule)
              v.Obs.Watch.wr_value v.Obs.Watch.wr_bound
              (if v.Obs.Watch.wr_tripped then "TRIPPED" else "ok"))
          vs;
        Obs.Watch.tripped vs
      end
    in
    if stats then
      Printf.eprintf
        "[agentrun] virtual time %.3fs, %d syscalls, exit status 0x%x\n"
        (Kernel.elapsed_seconds k)
        (Kernel.total_syscalls k)
        status;
    let code =
      if Flags.Wait.wifexited status then Flags.Wait.wexitstatus status
      else 128
    in
    if code = 0 && tripped <> [] then begin
      Printf.eprintf "agentrun: %d watchdog rule(s) tripped\n"
        (List.length tripped);
      1
    end
    else code

(* --- cmdliner ------------------------------------------------------------------- *)

open Cmdliner

let agents_arg =
  let doc =
    "Interpose this agent (repeatable; stacked in order, last is \
     closest to the application).  Known agents: " ^ known_agents
  in
  Arg.(value & opt_all string [] & info [ "a"; "agent" ] ~docv:"AGENT" ~doc)

let setup_arg =
  let doc =
    "Populate the filesystem for a workload before running \
     (scribe, make, make-split, afs, kvd; repeatable)."
  in
  Arg.(value & opt_all string [] & info [ "setup" ] ~docv:"WORKLOAD" ~doc)

let stats_arg =
  let doc = "Print virtual-time and syscall statistics at the end." in
  Arg.(value & flag & info [ "stats" ] ~doc)

let feed_arg =
  let doc = "Feed this line to the simulated console's input queue." in
  Arg.(value & opt string "" & info [ "feed" ] ~docv:"TEXT" ~doc)

let record_arg =
  let doc =
    "Record the program's input system calls into a journal file \
     (host path) for later --replay."
  in
  Arg.(value & opt string "" & info [ "record" ] ~docv:"FILE" ~doc)

let replay_arg =
  let doc =
    "Replay input system calls from a journal recorded with --record; \
     the program re-observes the original run's inputs."
  in
  Arg.(value & opt string "" & info [ "replay" ] ~docv:"FILE" ~doc)

let metrics_arg =
  let doc =
    "Enable the observability engine and print aggregated per-syscall \
     and per-layer metrics (virtual-time latency histograms, codec \
     attribution) at the end."
  in
  Arg.(value & flag & info [ "metrics" ] ~doc)

let trace_out_arg =
  let doc =
    "Enable the observability engine and drain the flight recorder to \
     this host file after the run (format set by --trace-format)."
  in
  Arg.(value & opt string "" & info [ "trace-out" ] ~docv:"FILE" ~doc)

let trace_format_arg =
  let doc =
    "Format for --trace-out: 'jsonl' (one span record per line) or \
     'chrome' (a trace_event JSON array that loads directly in \
     chrome://tracing or Perfetto)."
  in
  Arg.(value & opt string "jsonl" & info [ "trace-format" ] ~docv:"FMT" ~doc)

let sample_arg =
  let doc =
    "Keep 1 in N spans (default 1 = every span).  Per-syscall \
     call/error counts stay exact; histograms, percentiles, per-layer \
     attribution and the flight-recorder ring cover only the sampled \
     subset (metrics record the rate as sample_n)."
  in
  Arg.(value & opt int 1 & info [ "sample" ] ~docv:"N" ~doc)

let sample_seed_arg =
  let doc =
    "Seed for the deterministic sampling decision stream; the same \
     seed (and workload) reproduces the same kept spans."
  in
  Arg.(value & opt int 0 & info [ "sample-seed" ] ~docv:"SEED" ~doc)

let flame_arg =
  let doc =
    "Enable the observability engine and write a collapsed-stack \
     flamegraph profile (one 'frames... weight' line per distinct \
     syscall × layer-path stack) to this host file after the run; \
     feed it to any flamegraph renderer."
  in
  Arg.(value & opt string "" & info [ "flame" ] ~docv:"FILE" ~doc)

let flame_weight_arg =
  let doc =
    "Weights for --flame: 'virtual' (virtual-clock self µs, \
     deterministic) or 'host' (the same stacks reweighted by measured \
     host ns per virtual µs from the host counters)."
  in
  Arg.(value & opt string "virtual" & info [ "flame-weight" ] ~docv:"W" ~doc)

let follow_arg =
  let doc =
    "Enable the observability engine and stream flight-recorder \
     records to stderr as JSONL while the program runs (an \
     incremental cursor: each record once, overwritten records \
     reported as '# lost N')."
  in
  Arg.(value & flag & info [ "follow" ] ~doc)

let watch_arg =
  let doc =
    "Evaluate watchdog rules from this file against the run's metrics \
     (one rule per line: NAME = error_rate(SYS|*) <= F, p99_us(SYS|*) \
     <= N, aborts <= N, or env_pool_misses <= N).  Verdicts print to \
     stderr; any tripped rule turns an otherwise clean exit into \
     exit 1."
  in
  Arg.(value & opt string "" & info [ "watch" ] ~docv:"FILE" ~doc)

let campaign_arg =
  let doc =
    "Run a deterministic fault-injection campaign over this workload \
     (scribe, make, afs, kvd) instead of a program: discover injection \
     sites from an obs-profiled fault-free run, sweep sites × errnos, \
     classify every run (tolerated / wrong-result / hang / crash) \
     against divergence oracles, and write a repro bundle for every \
     failure."
  in
  Arg.(value & opt string "" & info [ "campaign" ] ~docv:"WORKLOAD" ~doc)

let campaign_out_arg =
  let doc = "Directory for the repro bundles a campaign emits." in
  Arg.(value & opt string "." & info [ "campaign-out" ] ~docv:"DIR" ~doc)

let repro_arg =
  let doc =
    "Replay a repro bundle written by --campaign and verify the \
     recorded failure reproduces byte-identically (exit 0 when it \
     does, 1 when it diverges)."
  in
  Arg.(value & opt string "" & info [ "repro" ] ~docv:"FILE" ~doc)

let signature_arg =
  let doc =
    "Capture the program's syscall signature (ordered calls with arg \
     shapes and outcomes, the unit of conformance checking) and write \
     it as JSON to this host file."
  in
  Arg.(value & opt string "" & info [ "signature" ] ~docv:"FILE" ~doc)

let conform_arg =
  let doc =
    "Differential transparency check: run the program bare and again \
     under this agent stack (a comma-separated list of stack names: \
     trace, crypt, sandbox, remap, timex, stacked, mutant), then \
     require the syscall signatures to agree modulo the stack's \
     declared delta.  Exits 0 when conformant, 1 on a violation \
     (printing the first diverging call)."
  in
  Arg.(value & opt string "" & info [ "conform" ] ~docv:"STACK" ~doc)

let prog_arg =
  let doc = "Program and its arguments (searched in /bin)." in
  Arg.(value & pos_all string [] & info [] ~docv:"PROG" ~doc)

let cmd =
  let doc = "run programs on a simulated 4.3BSD under interposition agents" in
  let man =
    [ `S Manpage.s_description;
      `P
        "agentrun boots an in-memory 4.3BSD-style kernel (with /bin \
         utilities, a make+cc toolchain and a scribe formatter \
         available), installs the requested interposition agents built \
         with the toolkit from the SOSP '93 paper, and execs the given \
         program under them.";
      `S Manpage.s_examples;
      `Pre
        "  agentrun -a trace -- ls -l /etc\n\
        \  agentrun --setup make-split -a union:/proj=/objdir:/srcdir --stats -- make\n\
        \  agentrun -a sandbox:emulate -a syscount -- rm /etc/motd\n\
        \  agentrun -a faultinject:read#3=fail:EIO --setup scribe -- scribe ...\n\
        \  agentrun --setup kvd -a trace --stats -- kvd prefork 32\n\
        \  agentrun --campaign kvd --campaign-out /tmp/bundles\n\
        \  agentrun --campaign scribe --campaign-out /tmp/bundles\n\
        \  agentrun --repro /tmp/bundles/repro-scribe-04-wrong-result.fault" ]
  in
  Cmd.v
    (Cmd.info "agentrun" ~version:"1.0" ~doc ~man)
    Term.(
      const run $ agents_arg $ setup_arg $ stats_arg $ feed_arg
      $ record_arg $ replay_arg $ metrics_arg $ trace_out_arg
      $ trace_format_arg $ sample_arg $ sample_seed_arg $ flame_arg
      $ flame_weight_arg $ follow_arg $ watch_arg $ campaign_arg
      $ campaign_out_arg $ repro_arg $ signature_arg $ conform_arg
      $ prog_arg)

let () = exit (Cmd.eval' cmd)
