open Abi
open Libc

type params = {
  dirs : int;
  files_per_dir : int;
  file_size : int;
  io_chunk : int;
  cpu_us_per_file : int;
}

let default_params = {
  dirs = 6;
  files_per_dir = 10;
  file_size = 4096;
  io_chunk = 256;
  cpu_us_per_file = 11_000;
}

let quick_params = {
  dirs = 2;
  files_per_dir = 3;
  file_size = 256;
  io_chunk = 128;
  cpu_us_per_file = 50;
}

let source_dir = "/afs/src"
let work_dir = "/afs/work"

let dir_name i = Printf.sprintf "dir%d" i
let file_name i j = Printf.sprintf "%s/file%d.c" (dir_name i) j

let for_each_file p f =
  for i = 1 to p.dirs do
    for j = 1 to p.files_per_dir do
      f (file_name i j)
    done
  done

let copy_chunked p ~src ~dst =
  match Unistd.open_ src Flags.Open.o_rdonly 0 with
  | Error e -> Error e
  | Ok sfd ->
    (match
       Unistd.open_ dst Flags.Open.(o_wronly lor o_creat lor o_trunc) 0o644
     with
     | Error e ->
       ignore (Unistd.close sfd);
       Error e
     | Ok dfd ->
       let buf = Bytes.create p.io_chunk in
       let rec pump () =
         match Unistd.read sfd buf p.io_chunk with
         | Error e -> Error e
         | Ok 0 -> Ok ()
         | Ok n ->
           (match Unistd.write_all dfd (Bytes.sub_string buf 0 n) with
            | Ok () -> pump ()
            | Error e -> Error e)
       in
       let r = pump () in
       ignore (Unistd.close sfd);
       ignore (Unistd.close dfd);
       r)

let body ?(params = default_params) () =
  let p = params in
  let failures = ref 0 in
  let expect what = function
    | Ok _ -> ()
    | Error e ->
      incr failures;
      Stdio.eprintf "afsbench: %s: %s\n" what (Errno.message e)
  in
  (* phase 1: MakeDir *)
  expect "mkdir work" (Unistd.mkdir work_dir 0o755);
  for i = 1 to p.dirs do
    expect "mkdir" (Unistd.mkdir (work_dir ^ "/" ^ dir_name i) 0o755)
  done;
  Stdio.printf "phase 1 (mkdir): %d directories\n" p.dirs;
  (* phase 2: Copy *)
  let copied = ref 0 in
  for_each_file p (fun rel ->
    incr copied;
    expect "copy"
      (copy_chunked p ~src:(source_dir ^ "/" ^ rel)
         ~dst:(work_dir ^ "/" ^ rel)));
  Stdio.printf "phase 2 (copy): %d files\n" !copied;
  (* phase 3: ScanDir — stat everything, twice *)
  let stats = ref 0 in
  for _pass = 1 to 2 do
    for_each_file p (fun rel ->
      incr stats;
      expect "stat" (Unistd.stat (work_dir ^ "/" ^ rel)))
  done;
  Stdio.printf "phase 3 (scan): %d stats\n" !stats;
  (* phase 4: ReadAll *)
  let bytes = ref 0 in
  for_each_file p (fun rel ->
    match Unistd.open_ (work_dir ^ "/" ^ rel) Flags.Open.o_rdonly 0 with
    | Error e -> expect "open" (Error e)
    | Ok fd ->
      let buf = Bytes.create p.io_chunk in
      let rec drain () =
        match Unistd.read fd buf p.io_chunk with
        | Ok 0 | Error _ -> ()
        | Ok n ->
          bytes := !bytes + n;
          drain ()
      in
      drain ();
      ignore (Unistd.close fd));
  Stdio.printf "phase 4 (read): %d bytes\n" !bytes;
  (* phase 5: Make — read, compute, write a product per file *)
  let products = ref 0 in
  for_each_file p (fun rel ->
    match Stdio.read_file (work_dir ^ "/" ^ rel) with
    | Error e -> expect "read" (Error e)
    | Ok content ->
      Unistd.cpu_work p.cpu_us_per_file;
      incr products;
      let product =
        Printf.sprintf "obj:%08x:%d\n" (Hashtbl.hash content)
          (String.length content)
      in
      expect "write"
        (Stdio.write_file (work_dir ^ "/" ^ rel ^ ".o") product));
  Stdio.printf "phase 5 (make): %d products\n" !products;
  if !failures = 0 then 0 else 1

let fill rng size =
  let buf = Buffer.create size in
  while Buffer.length buf < size do
    Buffer.add_string buf
      (Printf.sprintf "static int v%d = %d;\n" (Sim.Rng.int rng 10_000)
         (Sim.Rng.int rng 1_000_000))
  done;
  Buffer.sub buf 0 size

let setup ?(params = default_params) ?(seed = 11) k =
  let rng = Sim.Rng.create seed in
  Kernel.mkdir_p k source_dir;
  for i = 1 to params.dirs do
    Kernel.mkdir_p k (source_dir ^ "/" ^ dir_name i);
    for j = 1 to params.files_per_dir do
      Kernel.write_file k
        ~path:(source_dir ^ "/" ^ file_name i j)
        (fill rng params.file_size)
    done
  done;
  Kernel.register_image k "afsbench" (fun ~argv:_ ~envp:_ () ->
    body ~params ());
  Kernel.install_image k ~path:"/bin/afsbench" ~image:"afsbench"
