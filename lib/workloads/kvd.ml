open Abi
open Libc

type mode = Fork_per_conn | Prefork

let mode_name = function Fork_per_conn -> "fork" | Prefork -> "prefork"

type params = {
  clients : int;
  workers : int;
  ops_per_client : int;
  hold_us : int;
  cpu_us_per_op : int;
  backlog : int;
  batch : int;
  keyspace : int;
}

let default_params = {
  clients = 1000;
  workers = 8;
  ops_per_client = 3;
  hold_us = 200;
  cpu_us_per_op = 120;
  backlog = 16;
  batch = 64;
  keyspace = 64;
}

let quick_params = {
  clients = 12;
  workers = 3;
  ops_per_client = 3;
  hold_us = 50;
  cpu_us_per_op = 20;
  backlog = 4;
  batch = 6;
  keyspace = 8;
}

let addr = "kv.svc"
let data_dir = "/kvd/data"
let summary_path = "/kvd/summary"

type stats = {
  mutable conns : int;
  mutable ops : int;
  mutable errors : int;
  hist : Obs.Hist.t;
}

let fresh_stats () = { conns = 0; ops = 0; errors = 0; hist = Obs.Hist.create () }

(* --- store: one VFS file per key --------------------------------------- *)
(* Requests hit the filesystem on purpose: pathname and descriptor agents
   (crypt, sandbox) then interpose on the server's data path, not just on
   the socket calls. *)

let key_path key = data_dir ^ "/" ^ key

let do_put key v =
  match
    Unistd.open_ (key_path key)
      Flags.Open.(o_wronly lor o_creat lor o_trunc) 0o644
  with
  | Error _ -> "ERR"
  | Ok fd ->
    let r = Unistd.write_all fd v in
    ignore (Unistd.close fd);
    (match r with Ok () -> "OK" | Error _ -> "ERR")

let do_get key =
  match Unistd.open_ (key_path key) Flags.Open.o_rdonly 0 with
  | Error Errno.ENOENT -> "N"
  | Error _ -> "ERR"
  | Ok fd ->
    let r = Unistd.read_all fd in
    ignore (Unistd.close fd);
    (match r with Ok v -> "V " ^ v | Error _ -> "ERR")

let do_scan prefix =
  match Dirstream.names data_dir with
  | Error _ -> "ERR"
  | Ok names ->
    let n =
      List.length (List.filter (String.starts_with ~prefix) names)
    in
    Printf.sprintf "C %d" n

(* --- server ------------------------------------------------------------- *)
(* One text request per send, one reply per recv; the client waits for
   each reply before its next request, so the pipe never interleaves
   messages.  [Q] ends a connection, [X] additionally stops the serving
   prefork worker. *)

let serve_request p line =
  Unistd.cpu_work p.cpu_us_per_op;
  match String.split_on_char ' ' line with
  | [ "P"; key; v ] -> `Reply (do_put key v)
  | [ "G"; key ] -> `Reply (do_get key)
  | [ "S"; prefix ] -> `Reply (do_scan prefix)
  | [ "Q" ] -> `Quit
  | [ "X" ] -> `Stop
  | _ -> `Reply "ERR"

let serve_conn p fd =
  let buf = Bytes.create 512 in
  let rec loop () =
    match Unistd.recv fd buf (Bytes.length buf) with
    | Error _ | Ok 0 -> `Done
    | Ok n ->
      let line = String.trim (Bytes.sub_string buf 0 n) in
      (match serve_request p line with
       | `Reply r ->
         (match Unistd.send_all fd (r ^ "\n") with
          | Ok () -> loop ()
          | Error _ -> `Done)
       | `Quit ->
         ignore (Unistd.send_all fd "OK\n");
         `Done
       | `Stop ->
         ignore (Unistd.send_all fd "OK\n");
         `Stop)
  in
  let r = loop () in
  ignore (Unistd.close fd);
  r

let reap n =
  for _ = 1 to n do
    ignore (Unistd.wait ())
  done

(* fork-per-connection: accept exactly [clients] connections, a child per
   connection.  Accept failures (fault injection) retry against the same
   pending queue, with a fuel bound so an unlucky campaign cannot spin. *)
let server_fork_per_conn p lfd =
  let remaining = ref p.clients in
  let children = ref 0 in
  let fuel = ref ((2 * p.clients) + 64) in
  while !remaining > 0 && !fuel > 0 do
    decr fuel;
    (* select on the listen queue first: exercises listener readiness *)
    (match Unistd.select ~read:[ lfd ] () with Ok _ | Error _ -> ());
    match Unistd.accept lfd with
    | Error _ -> ()
    | Ok cfd ->
      decr remaining;
      (match
         Unistd.fork ~child:(fun () ->
           ignore (Unistd.close lfd);
           ignore (serve_conn p cfd);
           0)
       with
       | Ok _ ->
         incr children;
         ignore (Unistd.close cfd)
       | Error _ ->
         (* out of processes: serve inline rather than drop the client *)
         ignore (serve_conn p cfd))
  done;
  reap !children

(* prefork: [workers] long-lived children share the listen queue; each
   exits when it serves an [X] connection. *)
let rec worker_loop p lfd fuel =
  if fuel <= 0 then 0
  else
    match Unistd.accept lfd with
    | Ok cfd -> (
      match serve_conn p cfd with
      | `Stop -> 0
      | `Done -> worker_loop p lfd (fuel - 1))
    | Error Errno.EINVAL -> 0 (* listener closed under us *)
    | Error _ -> worker_loop p lfd (fuel - 1)

let server_prefork p lfd =
  let forked = ref 0 in
  for _ = 1 to p.workers do
    match
      Unistd.fork ~child:(fun () ->
        worker_loop p lfd ((2 * p.clients) + 64))
    with
    | Ok _ -> incr forked
    | Error _ -> ()
  done;
  reap !forked

(* the listening descriptor is created by the driver and inherited
   across fork, so the address is bound before any client exists *)
let server p mode lfd =
  (match mode with
   | Fork_per_conn -> server_fork_per_conn p lfd
   | Prefork -> server_prefork p lfd);
  ignore (Unistd.close lfd);
  0

(* --- client -------------------------------------------------------------- *)

let now_us () =
  match Unistd.gettimeofday () with
  | Ok (sec, usec) -> (sec * 1_000_000) + usec
  | Error _ -> 0

(* one simulated client: connect, a seeded put/get/scan mix with hold
   times, then a clean [Q].  Latency of each round trip lands in the
   shared histogram (all processes share the host heap, so the driver
   reads the totals directly). *)
let client p stats idx =
  let rng = Sim.Rng.create (0x5eedc11e + idx) in
  match Unistd.socket () with
  | Error _ ->
    stats.errors <- stats.errors + 1;
    1
  | Ok fd ->
    let rec try_connect tries =
      match Unistd.connect fd addr with
      | Ok () -> true
      | Error Errno.ECONNREFUSED when tries < 20 ->
        (* the server may not have bound yet *)
        ignore (Unistd.sleep_us 500);
        try_connect (tries + 1)
      | Error _ -> false
    in
    if not (try_connect 0) then begin
      stats.errors <- stats.errors + 1;
      ignore (Unistd.close fd);
      1
    end
    else begin
      stats.conns <- stats.conns + 1;
      let buf = Bytes.create 512 in
      let rpc line =
        let t0 = now_us () in
        match Unistd.send_all fd (line ^ "\n") with
        | Error _ -> None
        | Ok () -> (
          match Unistd.recv fd buf (Bytes.length buf) with
          | Error _ | Ok 0 -> None
          | Ok n ->
            Obs.Hist.observe stats.hist (now_us () - t0);
            Some (String.trim (Bytes.sub_string buf 0 n)))
      in
      for _ = 1 to p.ops_per_client do
        let key = Printf.sprintf "k%03d" (Sim.Rng.int rng p.keyspace) in
        let line =
          match Sim.Rng.int rng 10 with
          | 0 | 1 | 2 | 3 | 4 ->
            Printf.sprintf "P %s v%d" key (Sim.Rng.int rng 1000)
          | 5 | 6 | 7 | 8 -> "G " ^ key
          | _ -> "S k"
        in
        (match rpc line with
         | Some reply when reply <> "ERR" -> stats.ops <- stats.ops + 1
         | Some _ | None -> stats.errors <- stats.errors + 1);
        if p.hold_us > 0 then ignore (Unistd.sleep_us p.hold_us)
      done;
      ignore (rpc "Q");
      ignore (Unistd.close fd);
      0
    end

(* one [X] connection per prefork worker, with a select timeout so a
   fault-killed worker cannot wedge the shutdown phase *)
let stop_worker () =
  match Unistd.socket () with
  | Error _ -> ()
  | Ok fd ->
    (match Unistd.connect fd addr with
     | Error _ -> ()
     | Ok () -> (
       match Unistd.send_all fd "X\n" with
       | Error _ -> ()
       | Ok () -> (
         match Unistd.select ~read:[ fd ] ~timeout_us:2_000_000 () with
         | Ok (_ :: _, _) ->
           let buf = Bytes.create 8 in
           ignore (Unistd.recv fd buf (Bytes.length buf))
         | Ok ([], _) | Error _ -> ())));
    ignore (Unistd.close fd)

(* --- driver -------------------------------------------------------------- *)

let write_summary p stats mode =
  let text =
    Printf.sprintf "mode=%s clients=%d conns=%d ops=%d errors=%d\n"
      (mode_name mode) p.clients stats.conns stats.ops stats.errors
  in
  match
    Unistd.open_ summary_path
      Flags.Open.(o_wronly lor o_creat lor o_trunc) 0o644
  with
  | Error _ -> ()
  | Ok fd ->
    ignore (Unistd.write_all fd text);
    ignore (Unistd.close fd)

let listen_socket p =
  match Unistd.socket () with
  | Error _ -> None
  | Ok lfd -> (
    match Unistd.bind lfd addr with
    | Error _ ->
      ignore (Unistd.close lfd);
      None
    | Ok () -> (
      match Unistd.listen lfd p.backlog with
      | Error _ ->
        ignore (Unistd.close lfd);
        None
      | Ok () -> Some lfd))

let body ?(params = default_params) ?stats ~mode () =
  let p = params in
  let stats = match stats with Some s -> s | None -> fresh_stats () in
  (* bind + listen in the driver before forking anything: clients can
     never see ECONNREFUSED, and (with batch = 1) the fork order —
     hence pid assignment — is independent of scheduling *)
  match listen_socket p with
  | None -> 1
  | Some lfd ->
  match Unistd.fork ~child:(fun () -> server p mode lfd) with
  | Error _ ->
    ignore (Unistd.close lfd);
    1
  | Ok server_pid ->
    ignore (Unistd.close lfd);
    (* clients in bounded waves so ~batch connections are in flight at
       once; each wave is reaped by pid before the next starts *)
    let idx = ref 0 in
    while !idx < p.clients do
      let wave = min p.batch (p.clients - !idx) in
      let pids = ref [] in
      for i = !idx to !idx + wave - 1 do
        match Unistd.fork ~child:(fun () -> client p stats i) with
        | Ok pid -> pids := pid :: !pids
        | Error _ -> stats.errors <- stats.errors + 1
      done;
      idx := !idx + wave;
      List.iter (fun pid -> ignore (Unistd.waitpid pid 0)) !pids
    done;
    (match mode with
     | Prefork ->
       for _ = 1 to p.workers do
         stop_worker ()
       done
     | Fork_per_conn -> ());
    ignore (Unistd.waitpid server_pid 0);
    write_summary p stats mode;
    if stats.conns = p.clients && stats.errors = 0 then 0 else 1

(* --- wiring --------------------------------------------------------------- *)

let register k =
  Kernel.register_image k "kvd" (fun ~argv ~envp:_ () ->
    let mode =
      if Array.length argv > 1 && argv.(1) = "prefork" then Prefork
      else Fork_per_conn
    in
    let params =
      if Array.length argv > 2 then
        match int_of_string_opt argv.(2) with
        | Some n when n > 0 -> { quick_params with clients = n }
        | _ -> quick_params
      else quick_params
    in
    body ~params ~mode ())

let setup ?params:_ k =
  register k;
  Kernel.mkdir_p k data_dir;
  Kernel.install_image k ~path:"/bin/kvd" ~image:"kvd"

let run ?(params = default_params) ~mode k =
  setup k;
  let stats = fresh_stats () in
  let status =
    Kernel.boot k
      ~name:("kvd-" ^ mode_name mode)
      (fun () -> body ~params ~stats ~mode ())
  in
  ignore status;
  stats
