(** The document-formatting workload of Table 3-2.

    The paper formats a dissertation draft with Scribe: a single
    process making {e moderate} use of system calls (716 for the whole
    run) and spending most of its time computing.  This module provides
    the equivalent: a Scribe-flavoured markup formatter (@chapter /
    @section / @include directives, paragraph filling to 72 columns)
    plus a deterministic document generator sized so that a default run
    issues on the order of 700 system calls and ≈129 virtual seconds,
    the paper's baseline shape. *)

type params = {
  chapters : int;
  sections_per_chapter : int;
  paragraphs_per_section : int;
  words_per_paragraph : int;
  include_files : int;
  cpu_us_per_word : int;  (** formatting cost charged per word *)
}

val default_params : params
(** Tuned to the paper's baseline: ≈716 syscalls, ≈129 s virtual. *)

val quick_params : params
(** A small document for tests. *)

val generate : Sim.Rng.t -> params -> string * (string * string) list
(** The main document and the [(name, content)] include files it
    references. *)

val input_path : string
(** [/doc/dissertation.mss] *)

val output_path : string
(** [/doc/dissertation.out] *)

val setup : ?params:params -> ?seed:int -> Kernel.t -> unit
(** Write the generated document (and [/bin/scribe]) into a kernel's
    filesystem. *)

val register : Kernel.t -> unit
(** Register the ["scribe"] image ([scribe input output]). *)

val body : ?params:params -> unit -> int
(** The formatter as a direct process body reading {!input_path} and
    writing {!output_path}. *)
