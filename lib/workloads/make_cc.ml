open Abi
open Libc

type params = {
  programs : int;
  sources_per_program : int;
  source_lines : int;
  io_chunk : int;
  cpu_us_per_line : int;
}

let default_params = {
  programs = 8;
  sources_per_program = 2;
  source_lines = 260;
  io_chunk = 64;
  cpu_us_per_line = 1_560;
}

let quick_params = {
  programs = 2;
  sources_per_program = 2;
  source_lines = 10;
  io_chunk = 128;
  cpu_us_per_line = 30;
}

let project_dir = "/proj"
let makefile = project_dir ^ "/Makefile"
let header_path = project_dir ^ "/include/defs.h"

(* chunked I/O configuration shared by the tool stages; each stage
   reads it at entry from the environment-ish /proj/.ccrc so every
   stage of a session agrees, and no state outlives the stage *)

type cfg = { chunk : int; cpu : int }

let default_cfg =
  { chunk = default_params.io_chunk; cpu = default_params.cpu_us_per_line }

let read_config () =
  match Stdio.read_file (project_dir ^ "/.ccrc") with
  | Ok content ->
    (match String.split_on_char ' ' (String.trim content) with
     | [ a; b ] ->
       (match int_of_string_opt a, int_of_string_opt b with
        | Some chunk, Some cpu -> { chunk; cpu }
        | _ -> default_cfg)
     | _ -> default_cfg)
  | Error _ -> default_cfg

let read_chunked cfg path =
  match Unistd.open_ path Flags.Open.o_rdonly 0 with
  | Error e -> Error e
  | Ok fd ->
    let buf = Bytes.create cfg.chunk in
    let collected = Buffer.create 4096 in
    let rec go () =
      match Unistd.read fd buf cfg.chunk with
      | Error e ->
        ignore (Unistd.close fd);
        Error e
      | Ok 0 ->
        ignore (Unistd.close fd);
        Ok (Buffer.contents collected)
      | Ok n ->
        Buffer.add_subbytes collected buf 0 n;
        go ()
    in
    go ()

let write_chunked cfg path content =
  match
    Unistd.open_ path Flags.Open.(o_wronly lor o_creat lor o_trunc) 0o644
  with
  | Error e -> Error e
  | Ok fd ->
    let n = String.length content in
    let rec go pos =
      if pos >= n then begin
        ignore (Unistd.close fd);
        Ok ()
      end
      else begin
        let len = min cfg.chunk (n - pos) in
        match Unistd.write_all fd (String.sub content pos len) with
        | Ok () -> go (pos + len)
        | Error e ->
          ignore (Unistd.close fd);
          Error e
      end
    in
    go 0

let fail_stage tool what e =
  Stdio.eprintf "%s: %s: %s\n" tool what (Errno.message e);
  1

(* --- cpp: include expansion --------------------------------------------- *)

let cpp ~argv ~envp:_ () =
  let cfg = read_config () in
  match argv with
  | [| _; src; out |] ->
    (match read_chunked cfg src with
     | Error e -> fail_stage "cpp" src e
     | Ok content ->
       let expanded = Buffer.create (String.length content) in
       List.iter
         (fun line ->
           let prefix = "#include \"" in
           let pl = String.length prefix in
           if
             String.length line > pl
             && String.sub line 0 pl = prefix
             && String.length line > pl + 1
           then begin
             let name =
               String.sub line pl (String.index_from line pl '"' - pl)
             in
             match read_chunked cfg (project_dir ^ "/include/" ^ name) with
             | Ok inc -> Buffer.add_string expanded inc
             | Error _ ->
               Buffer.add_string expanded ("/* missing " ^ name ^ " */\n")
           end
           else begin
             Buffer.add_string expanded line;
             Buffer.add_char expanded '\n'
           end)
         (String.split_on_char '\n' content);
       (match write_chunked cfg out (Buffer.contents expanded) with
        | Ok () -> 0
        | Error e -> fail_stage "cpp" out e))
  | _ ->
    Stdio.eprint "usage: cpp src out\n";
    2

(* --- cc1: "code generation" ----------------------------------------------- *)

let cc1 ~argv ~envp:_ () =
  let cfg = read_config () in
  match argv with
  | [| _; src; out |] ->
    (match read_chunked cfg src with
     | Error e -> fail_stage "cc1" src e
     | Ok content ->
       let asm = Buffer.create (2 * String.length content) in
       let lines = String.split_on_char '\n' content in
       List.iteri
         (fun i line ->
           if String.trim line <> "" then begin
             Unistd.cpu_work cfg.cpu;
             Buffer.add_string asm
               (Printf.sprintf "\tmovl\t$%d,r0\t# %s\n" i
                  (String.sub line 0 (min 24 (String.length line))));
             Buffer.add_string asm "\tpushl\tr0\n";
             Buffer.add_string asm "\tcalls\t$0,_emit\n"
           end)
         lines;
       (match write_chunked cfg out (Buffer.contents asm) with
        | Ok () -> 0
        | Error e -> fail_stage "cc1" out e))
  | _ ->
    Stdio.eprint "usage: cc1 src.i out.s\n";
    2

(* --- as: assembly ------------------------------------------------------------ *)

let as_ ~argv ~envp:_ () =
  let cfg = read_config () in
  match argv with
  | [| _; src; out |] ->
    (match read_chunked cfg src with
     | Error e -> fail_stage "as" src e
     | Ok content ->
       let obj = Buffer.create (String.length content / 2) in
       Buffer.add_string obj "\007OBJ\n";
       List.iter
         (fun line ->
           let t = String.trim line in
           if t <> "" then begin
             Unistd.cpu_work (cfg.cpu / 4);
             Buffer.add_string obj
               (Printf.sprintf "%04x\n" (Hashtbl.hash t land 0xffff))
           end)
         (String.split_on_char '\n' content);
       (match write_chunked cfg out (Buffer.contents obj) with
        | Ok () -> 0
        | Error e -> fail_stage "as" out e))
  | _ ->
    Stdio.eprint "usage: as src.s out.o\n";
    2

(* --- ld: linking ---------------------------------------------------------------- *)

let ld ~argv ~envp:_ () =
  let cfg = read_config () in
  if Array.length argv < 4 || argv.(1) <> "-o" then begin
    Stdio.eprint "usage: ld -o out obj...\n";
    2
  end
  else begin
    let out = argv.(2) in
    let objs = Array.to_list (Array.sub argv 3 (Array.length argv - 3)) in
    let image = Buffer.create 8192 in
    Buffer.add_string image "\007EXE\n";
    let rc =
      List.fold_left
        (fun rc obj ->
          match read_chunked cfg obj with
          | Ok content ->
            Unistd.cpu_work (cfg.cpu * 2);
            Buffer.add_string image content;
            rc
          | Error e -> fail_stage "ld" obj e)
        0 objs
    in
    if rc <> 0 then rc
    else
      match write_chunked cfg out (Buffer.contents image) with
      | Ok () -> 0
      | Error e -> fail_stage "ld" out e
  end

(* --- cc: the driver --------------------------------------------------------------- *)

let run_tool tool args =
  let argv = Array.of_list (tool :: args) in
  Spawn.run_exit_code ("/bin/" ^ tool) argv

let cc ~argv ~envp:_ () =
  (* cc itself doesn't chunk, but it reads the config like every other
     stage -- keep the trap traffic of a session stable *)
  ignore (read_config ());
  if Array.length argv < 4 || argv.(1) <> "-o" then begin
    Stdio.eprint "usage: cc -o prog src.c...\n";
    2
  end
  else begin
    let out = argv.(2) in
    let sources = Array.to_list (Array.sub argv 3 (Array.length argv - 3)) in
    let objects = ref [] in
    let rc =
      List.fold_left
        (fun rc src ->
          if rc <> 0 then rc
          else begin
            let base = Filename.remove_extension src in
            let preprocessed = base ^ ".i" in
            let assembly = base ^ ".s" in
            let obj = base ^ ".o" in
            let rc = run_tool "cpp" [ src; preprocessed ] in
            let rc =
              if rc = 0 then run_tool "cc1" [ preprocessed; assembly ]
              else rc
            in
            let rc =
              if rc = 0 then run_tool "as" [ assembly; obj ] else rc
            in
            if rc = 0 then objects := obj :: !objects;
            rc
          end)
        0 sources
    in
    if rc <> 0 then rc
    else run_tool "ld" ("-o" :: out :: List.rev !objects)
  end

(* --- make ----------------------------------------------------------------------------- *)

type rule = { target : string; deps : string list }

let parse_makefile content =
  String.split_on_char '\n' content
  |> List.filter_map (fun line ->
       match String.index_opt line ':' with
       | Some i when String.trim line <> "" && line.[0] <> '#' ->
         let target = String.trim (String.sub line 0 i) in
         let deps =
           String.sub line (i + 1) (String.length line - i - 1)
           |> String.split_on_char ' '
           |> List.filter (( <> ) "")
         in
         Some { target; deps }
       | Some _ | None -> None)

let mtime path =
  match Unistd.stat path with
  | Ok st -> Some st.Stat.st_mtime
  | Error _ -> None

let out_of_date rule =
  match mtime rule.target with
  | None -> true
  | Some target_time ->
    List.exists
      (fun dep ->
        match mtime dep with
        | None -> true
        | Some dep_time -> dep_time > target_time)
      rule.deps

let make ~argv ~envp:_ () =
  ignore (read_config ());
  let mf = if Array.length argv > 1 then argv.(1) else makefile in
  match Stdio.read_file mf with
  | Error e ->
    Stdio.eprintf "make: %s: %s\n" mf (Errno.message e);
    2
  | Ok content ->
    let dir = Filename.dirname mf in
    let rules = parse_makefile content in
    List.fold_left
      (fun rc rule ->
        if rc <> 0 then rc
        else begin
          let abs p = if String.length p > 0 && p.[0] = '/' then p else dir ^ "/" ^ p in
          let rule =
            { target = abs rule.target; deps = List.map abs rule.deps }
          in
          if out_of_date rule then begin
            Stdio.printf "cc -o %s %s\n" rule.target
              (String.concat " " rule.deps);
            let code =
              Spawn.run_exit_code "/bin/cc"
                (Array.of_list ("cc" :: "-o" :: rule.target :: rule.deps))
            in
            if code <> 0 then begin
              Stdio.printf "make: *** [%s] Error %d\n" rule.target code;
              code
            end
            else rc
          end
          else begin
            Stdio.printf "`%s' is up to date.\n" rule.target;
            rc
          end
        end)
      0 rules

(* --- generation and wiring --------------------------------------------------------------- *)

let images =
  [ "make", make; "cc", cc; "cpp", cpp; "cc1", cc1; "as", as_; "ld", ld ]

let register k =
  List.iter (fun (name, body) -> Kernel.register_image k name body) images

let gen_source rng ~lines ~prog ~part =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "#include \"defs.h\"\n";
  Buffer.add_string buf (Printf.sprintf "int %s_%s_entry(void) {\n" prog part);
  for i = 1 to lines do
    let v = Sim.Rng.int rng 1000 in
    Buffer.add_string buf
      (Printf.sprintf "    register int x%d = compute(%d, %d);\n" i v
         (Sim.Rng.int rng 97))
  done;
  Buffer.add_string buf "    return 0;\n}\n";
  Buffer.contents buf

let setup ?(params = default_params) ?(seed = 7) k =
  register k;
  Progs.install_all k;
  List.iter
    (fun (name, _) ->
      Kernel.install_image k ~path:("/bin/" ^ name) ~image:name)
    images;
  let rng = Sim.Rng.create seed in
  Kernel.mkdir_p k (project_dir ^ "/include");
  Kernel.write_file k ~path:header_path
    "#define compute(a, b) ((a) * 31 + (b))\n#define NULL 0\n";
  Kernel.write_file k
    ~path:(project_dir ^ "/.ccrc")
    (Printf.sprintf "%d %d\n" params.io_chunk params.cpu_us_per_line);
  let rules = ref [] in
  for p = 1 to params.programs do
    let prog = Printf.sprintf "prog%d" p in
    let sources =
      List.init params.sources_per_program (fun i ->
        let part = Char.escaped (Char.chr (Char.code 'a' + i)) in
        let name = Printf.sprintf "%s_%s.c" prog part in
        Kernel.write_file k
          ~path:(project_dir ^ "/" ^ name)
          (gen_source rng ~lines:params.source_lines ~prog ~part);
        name)
    in
    rules := Printf.sprintf "%s: %s" prog (String.concat " " sources) :: !rules
  done;
  Kernel.write_file k ~path:makefile
    (String.concat "\n" (List.rev !rules) ^ "\n")

let body () = make ~argv:[| "make"; makefile |] ~envp:[||] ()

let clean k =
  let fs = Kernel.fs k in
  let root = Vfs.Fs.root_ino fs in
  match Vfs.Fs.resolve fs Vfs.Fs.root_cred ~cwd:root project_dir with
  | Error _ -> ()
  | Ok dir ->
    List.iter
      (fun (name, _) ->
        let keep =
          name = "." || name = ".." || name = "Makefile"
          || name = "include" || name = ".ccrc"
          || Filename.check_suffix name ".c"
        in
        if not keep then
          ignore
            (Vfs.Fs.unlink fs Vfs.Fs.root_cred ~cwd:root
               (project_dir ^ "/" ^ name)))
      (Vfs.Inode.dir_entries dir)
