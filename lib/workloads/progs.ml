open Abi
open Libc

let args_of argv = Array.to_list (Array.sub argv 1 (max 0 (Array.length argv - 1)))

let read_stdin () =
  match Unistd.read_all Stdio.stdin with
  | Ok content -> content
  | Error _ -> ""

let cat ~argv ~envp:_ () =
  match args_of argv with
  | [] ->
    Stdio.print (read_stdin ());
    0
  | files ->
    List.fold_left
      (fun rc path ->
        match Stdio.read_file path with
        | Ok content ->
          Stdio.print content;
          rc
        | Error e ->
          Stdio.eprintf "cat: %s: %s\n" path (Errno.message e);
          1)
      0 files

let echo ~argv ~envp:_ () =
  Stdio.print (String.concat " " (args_of argv) ^ "\n");
  0

let ls ~argv ~envp:_ () =
  let long, dirs =
    match args_of argv with
    | "-l" :: rest -> true, rest
    | rest -> false, rest
  in
  let dirs = if dirs = [] then [ "." ] else dirs in
  List.fold_left
    (fun rc dir ->
      match Dirstream.names dir with
      | Error e ->
        Stdio.eprintf "ls: %s: %s\n" dir (Errno.message e);
        1
      | Ok names ->
        List.iter
          (fun name ->
            let path = if dir = "/" then "/" ^ name else dir ^ "/" ^ name in
            if long then
              match Unistd.lstat path with
              | Ok st ->
                Stdio.printf "%s %2d %4d %4d %8d %s\n"
                  (Flags.Mode.to_ls_string st.Stat.st_mode)
                  st.Stat.st_nlink st.Stat.st_uid st.Stat.st_gid
                  st.Stat.st_size name
              | Error _ -> Stdio.printf "?????????? %s\n" name
            else Stdio.printf "%s\n" name)
          names;
        rc)
    0 dirs

let cp ~argv ~envp:_ () =
  match args_of argv with
  | [ src; dst ] ->
    (match Stdio.read_file src with
     | Error e ->
       Stdio.eprintf "cp: %s: %s\n" src (Errno.message e);
       1
     | Ok content ->
       (match Stdio.write_file dst content with
        | Ok () -> 0
        | Error e ->
          Stdio.eprintf "cp: %s: %s\n" dst (Errno.message e);
          1))
  | _ ->
    Stdio.eprint "usage: cp src dst\n";
    2

let count_one ~label content =
  let lines = ref 0 and words = ref 0 in
  let in_word = ref false in
  String.iter
    (fun c ->
      if c = '\n' then incr lines;
      if c = ' ' || c = '\n' || c = '\t' then in_word := false
      else if not !in_word then begin
        in_word := true;
        incr words
      end)
    content;
  Stdio.printf "%7d %7d %7d%s\n" !lines !words (String.length content)
    (if label = "" then "" else " " ^ label)

let wc ~argv ~envp:_ () =
  match args_of argv with
  | [] ->
    count_one ~label:"" (read_stdin ());
    0
  | files ->
    List.fold_left
      (fun rc path ->
        match Stdio.read_file path with
        | Error e ->
          Stdio.eprintf "wc: %s: %s\n" path (Errno.message e);
          1
        | Ok content ->
          count_one ~label:path content;
          rc)
      0 files

let contains ~needle hay =
  let nl = String.length needle in
  let hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  nl = 0 || go 0

let grep ~argv ~envp:_ () =
  let grep_content ~label pattern content matched =
    List.iter
      (fun line ->
        if line <> "" && contains ~needle:pattern line then begin
          matched := true;
          if label = "" then Stdio.printf "%s\n" line
          else Stdio.printf "%s:%s\n" label line
        end)
      (String.split_on_char '\n' content)
  in
  match args_of argv with
  | [ pattern ] ->
    let matched = ref false in
    grep_content ~label:"" pattern (read_stdin ()) matched;
    if !matched then 0 else 1
  | pattern :: files ->
    let matched = ref false in
    List.iter
      (fun path ->
        match Stdio.read_file path with
        | Error e -> Stdio.eprintf "grep: %s: %s\n" path (Errno.message e)
        | Ok content -> grep_content ~label:path pattern content matched)
      files;
    if !matched then 0 else 1
  | [] ->
    Stdio.eprint "usage: grep pattern [file...]\n";
    2

let head ~argv ~envp:_ () =
  match args_of argv with
  | [ "-n"; n; path ] ->
    let n = Option.value ~default:10 (int_of_string_opt n) in
    (match Stdio.read_file path with
     | Error e ->
       Stdio.eprintf "head: %s: %s\n" path (Errno.message e);
       1
     | Ok content ->
       String.split_on_char '\n' content
       |> List.filteri (fun i _ -> i < n)
       |> List.iter (fun l -> Stdio.printf "%s\n" l);
       0)
  | _ ->
    Stdio.eprint "usage: head -n N file\n";
    2

let touch ~argv ~envp:_ () =
  List.fold_left
    (fun rc path ->
      match Unistd.open_ path Flags.Open.(o_wronly lor o_creat) 0o644 with
      | Ok fd ->
        ignore (Unistd.close fd);
        (match Unistd.gettimeofday () with
         | Ok (sec, _) ->
           ignore (Unistd.utimes path ~atime:sec ~mtime:sec)
         | Error _ -> ());
        rc
      | Error e ->
        Stdio.eprintf "touch: %s: %s\n" path (Errno.message e);
        1)
    0 (args_of argv)

let rm ~argv ~envp:_ () =
  List.fold_left
    (fun rc path ->
      match Unistd.unlink path with
      | Ok () -> rc
      | Error e ->
        Stdio.eprintf "rm: %s: %s\n" path (Errno.message e);
        1)
    0 (args_of argv)

let mkdir ~argv ~envp:_ () =
  List.fold_left
    (fun rc path ->
      match Unistd.mkdir path 0o755 with
      | Ok () -> rc
      | Error e ->
        Stdio.eprintf "mkdir: %s: %s\n" path (Errno.message e);
        1)
    0 (args_of argv)

let true_ ~argv:_ ~envp:_ () = 0
let false_ ~argv:_ ~envp:_ () = 1

(* --- sh: a small shell ------------------------------------------------------
   Grammar:  seq   := andor (';' andor)*
             andor := pipe ('&&' pipe)*
             pipe  := stage ('|' stage)*
             stage := word+ with '<' '>' '>>' redirections
   No quoting; words are space-separated. *)

let sh_split cmdline =
  String.split_on_char '|' cmdline
  |> List.map (fun stage ->
       String.split_on_char ' ' stage |> List.filter (fun w -> w <> ""))
  |> List.filter (fun words -> words <> [])

type sh_stage = {
  sh_words : string list;
  sh_rin : string option;           (* < path *)
  sh_rout : (string * bool) option; (* > path / >> path (append) *)
}

type sh_cmd =
  | Sh_pipe of sh_stage list
  | Sh_and of sh_cmd * sh_cmd
  | Sh_seq of sh_cmd list

let words_of s =
  String.split_on_char ' ' s |> List.filter (fun w -> w <> "")

(* split on a multi-char operator kept out of words *)
let split_on_op op s =
  let opl = String.length op in
  let n = String.length s in
  let rec go start i acc =
    if i + opl > n then List.rev (String.sub s start (n - start) :: acc)
    else if String.sub s i opl = op then
      go (i + opl) (i + opl) (String.sub s start (i - start) :: acc)
    else go start (i + 1) acc
  in
  go 0 0 []

let parse_stage text =
  let rec eat words rin rout = function
    | [] -> { sh_words = List.rev words; sh_rin = rin; sh_rout = rout }
    | ">>" :: path :: rest -> eat words rin (Some (path, true)) rest
    | ">" :: path :: rest -> eat words rin (Some (path, false)) rest
    | "<" :: path :: rest -> eat words (Some path) rout rest
    | w :: rest -> eat (w :: words) rin rout rest
  in
  eat [] None None (words_of text)

let sh_parse cmdline : sh_cmd =
  let parse_pipe text =
    Sh_pipe
      (String.split_on_char '|' text
       |> List.map parse_stage
       |> List.filter (fun st -> st.sh_words <> []))
  in
  let parse_andor text =
    match split_on_op "&&" text with
    | [] -> Sh_pipe []
    | first :: rest ->
      List.fold_left
        (fun acc part -> Sh_and (acc, parse_pipe part))
        (parse_pipe first) rest
  in
  Sh_seq (String.split_on_char ';' cmdline |> List.map parse_andor)

let resolve_prog name =
  if String.contains name '/' then name else "/bin/" ^ name

let open_rin path =
  Unistd.open_ path Flags.Open.o_rdonly 0

let open_rout (path, append) =
  let extra = if append then Flags.Open.o_append else Flags.Open.o_trunc in
  Unistd.open_ path Flags.Open.(o_wronly lor o_creat lor extra) 0o644

(* run one pipeline with per-end redirections; returns an exit code *)
let exec_pipe stages =
  match stages with
  | [] -> 0
  | _ ->
    let n = List.length stages in
    let fail msg e =
      Stdio.eprintf "sh: %s: %s\n" msg (Errno.message e);
      127
    in
    let rec start idx prev_read pids = function
      | [] -> Ok (List.rev pids)
      | stage :: rest ->
        let is_first = idx = 0 in
        let is_last = idx = n - 1 in
        let stdin_fd =
          match stage.sh_rin, prev_read with
          | Some path, _ when is_first ->
            (match open_rin path with
             | Ok fd -> Ok (Some fd)
             | Error e -> Error (("< " ^ path), e))
          | _, fd -> Ok fd
        in
        (match stdin_fd with
         | Error err -> Error err
         | Ok stdin_fd ->
           let stdout_spec =
             if is_last then
               match stage.sh_rout with
               | Some target ->
                 (match open_rout target with
                  | Ok fd -> Ok (Some fd, None)
                  | Error e -> Error (("> " ^ fst target), e))
               | None -> Ok (None, None)
             else
               match Unistd.pipe () with
               | Ok (r, w) -> Ok (Some w, Some r)
               | Error e -> Error ("pipe", e)
           in
           (match stdout_spec with
            | Error err -> Error err
            | Ok (stdout_fd, next_read) ->
              let path = resolve_prog (List.hd stage.sh_words) in
              let argv = Array.of_list stage.sh_words in
              (match Spawn.spawn ?stdin:stdin_fd ?stdout:stdout_fd path argv with
               | Error e -> Error (path, e)
               | Ok pid ->
                 Option.iter (fun fd -> ignore (Unistd.close fd)) stdin_fd;
                 Option.iter (fun fd -> ignore (Unistd.close fd)) stdout_fd;
                 start (idx + 1) next_read (pid :: pids) rest)))
    in
    (match start 0 None [] stages with
     | Error (what, e) -> fail what e
     | Ok pids ->
       let last = List.hd pids in
       List.fold_left
         (fun code pid ->
           match Unistd.waitpid pid 0 with
           | Ok (_, st) when pid = last ->
             if Flags.Wait.wifexited st then Flags.Wait.wexitstatus st
             else 128 + Flags.Wait.wtermsig st
           | Ok _ | Error _ -> code)
         0 pids)

let rec exec_cmd = function
  | Sh_pipe stages -> exec_pipe stages
  | Sh_and (a, b) ->
    let code = exec_cmd a in
    if code = 0 then exec_cmd b else code
  | Sh_seq cmds ->
    List.fold_left (fun _ cmd -> exec_cmd cmd) 0 cmds

let sh ~argv ~envp:_ () =
  match args_of argv with
  | [ "-c"; cmdline ] -> exec_cmd (sh_parse cmdline)
  | [] ->
    (* interactive: prompt, read, run, repeat *)
    let rec repl last_code =
      Stdio.print "$ ";
      match Stdio.read_line Stdio.stdin with
      | None | Some "exit" -> last_code
      | Some "" -> repl last_code
      | Some line -> repl (exec_cmd (sh_parse line))
    in
    repl 0
  | _ ->
    Stdio.eprint "usage: sh [-c \"cmd | cmd > out ; cmd && cmd\"]\n";
    2

(* --- ed: a tiny line editor ---------------------------------------------
   Interactive (reads commands from stdin, like the 1970s original):
     a         append lines until a lone "."
     p         print the buffer with line numbers
     d N       delete line N (1-based)
     r FILE    read a file into the buffer
     w FILE    write the buffer out
     q         quit *)

let ed ~argv ~envp:_ () =
  let buffer = ref [] in  (* reversed lines *)
  (match args_of argv with
   | [ path ] ->
     (match Stdio.read_file path with
      | Ok content ->
        let lines = String.split_on_char '\n' content in
        let lines =
          match List.rev lines with "" :: rest -> List.rev rest | _ -> lines
        in
        buffer := List.rev lines
      | Error _ -> ())
   | _ -> ());
  let rec append_mode () =
    match Stdio.read_line Stdio.stdin with
    | None | Some "." -> ()
    | Some line ->
      buffer := line :: !buffer;
      append_mode ()
  in
  let rec loop () =
    match Stdio.read_line Stdio.stdin with
    | None | Some "q" -> 0
    | Some cmd ->
      let lines = List.rev !buffer in
      (match String.split_on_char ' ' cmd with
       | [ "a" ] -> append_mode ()
       | [ "p" ] ->
         List.iteri (fun i l -> Stdio.printf "%4d  %s\n" (i + 1) l) lines
       | [ "d"; n ] ->
         (match int_of_string_opt n with
          | Some n when n >= 1 && n <= List.length lines ->
            buffer := List.rev (List.filteri (fun i _ -> i + 1 <> n) lines)
          | Some _ | None -> Stdio.print "?\n")
       | [ "r"; path ] ->
         (match Stdio.read_file path with
          | Ok content ->
            String.split_on_char '\n' content
            |> List.filter (( <> ) "")
            |> List.iter (fun l -> buffer := l :: !buffer)
          | Error e -> Stdio.printf "?%s\n" (Errno.name e))
       | [ "w"; path ] ->
         let content = String.concat "\n" lines ^ "\n" in
         (match Stdio.write_file path content with
          | Ok () -> Stdio.printf "%d\n" (String.length content)
          | Error e -> Stdio.printf "?%s\n" (Errno.name e))
       | _ -> Stdio.print "?\n");
      loop ()
  in
  loop ()

let images =
  [ "cat", cat; "echo", echo; "ls", ls; "cp", cp; "wc", wc; "grep", grep;
    "head", head; "touch", touch; "rm", rm; "mkdir", mkdir; "true", true_;
    "false", false_; "sh", sh; "ed", ed ]

let register k =
  List.iter (fun (name, body) -> Kernel.register_image k name body) images

let install_all k =
  register k;
  List.iter
    (fun (name, _) ->
      Kernel.install_image k ~path:("/bin/" ^ name) ~image:name)
    images
