(** The build workload of Table 3-3: Make driving a C compiler over
    eight small programs.

    The paper's run is process-structured — 64 fork()/execve() pairs —
    and makes heavy use of system calls (tens of thousands).  Our
    pipeline reproduces that shape: a [make] image reads a Makefile and
    spawns one [cc] driver per out-of-date program; [cc] runs
    [cpp] → [cc1] → [as] over each of the program's two sources and a
    final [ld], i.e. exactly 8 fork/exec pairs per program, 64 for the
    standard 8-program tree.  The tool stages do their file I/O in
    small chunks (as 1990 compilers did) to generate a realistic call
    volume, and charge virtual CPU for the "compilation" itself. *)

type params = {
  programs : int;
  sources_per_program : int;   (** fixed at 2 for the 64-pair shape *)
  source_lines : int;          (** per source file *)
  io_chunk : int;              (** bytes per read/write *)
  cpu_us_per_line : int;       (** code-generation cost in cc1 *)
}

val default_params : params
val quick_params : params

val project_dir : string  (** /proj *)

val setup : ?params:params -> ?seed:int -> Kernel.t -> unit
(** Generate the project tree (sources, headers, Makefile) and install
    the tool images in [/bin]. *)

val register : Kernel.t -> unit
(** Register the [make], [cc], [cpp], [cc1], [as] and [ld] images
    against this kernel. *)

val body : unit -> int
(** Run [make] on {!project_dir} as a direct process body (equivalent
    to exec'ing [/bin/make /proj/Makefile]). *)

val clean : Kernel.t -> unit
(** Remove build products so the next run rebuilds everything. *)
