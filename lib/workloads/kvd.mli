(** A multi-client key-value daemon over the socket surface.

    The server binds {!addr}, listens, and serves a line-oriented
    protocol ([P key val] / [G key] / [S prefix] / [Q]) in either of
    the two classic 4.3BSD server shapes: a child forked per accepted
    connection, or a fixed pool of pre-forked workers sharing the
    listen queue.  Each request touches the filesystem (one VFS file
    per key under {!data_dir}), so pathname and descriptor agents
    interpose on the data path as well as the socket calls.

    The driver forks the server, then the clients in bounded waves;
    each client runs a deterministic per-index put/get/scan mix with
    hold times and records round-trip latency into a shared
    {!Obs.Hist.t}.  Every connection contributes its own causal pipe
    lanes ([("sock", id)] channels), so the event graph shows one
    request/reply braid per client. *)

type mode = Fork_per_conn | Prefork

val mode_name : mode -> string
(** ["fork"] / ["prefork"]. *)

type params = {
  clients : int;  (** total connections to serve *)
  workers : int;  (** pool size in {!Prefork} mode *)
  ops_per_client : int;
  hold_us : int;  (** client think time between requests *)
  cpu_us_per_op : int;  (** server compute charged per request *)
  backlog : int;  (** listen queue depth *)
  batch : int;  (** clients in flight at once *)
  keyspace : int;  (** distinct keys *)
}

val default_params : params
(** 1000 clients in waves of 64. *)

val quick_params : params
(** A dozen clients, for tests and campaigns. *)

val addr : string
(** ["kv.svc"] — the server's bound name. *)

val data_dir : string
(** [/kvd/data] — one file per key. *)

val summary_path : string
(** [/kvd/summary] — deterministic end-of-run totals, the campaign
    oracle's output artifact. *)

type stats = {
  mutable conns : int;  (** client connections established *)
  mutable ops : int;  (** requests answered without error *)
  mutable errors : int;
  hist : Obs.Hist.t;  (** per-request round-trip latency, virtual µs *)
}

val fresh_stats : unit -> stats

val setup : ?params:params -> Kernel.t -> unit
(** Create {!data_dir} and install [/bin/kvd]. *)

val register : Kernel.t -> unit
(** Register the ["kvd"] image ([kvd [fork|prefork] [clients]],
    defaulting to {!quick_params}). *)

val body : ?params:params -> ?stats:stats -> mode:mode -> unit -> int
(** The whole workload (server + clients) as one process body; 0 when
    every client connected and no request failed. *)

val run : ?params:params -> mode:mode -> Kernel.t -> stats
(** [setup] + boot [body] on a fresh stats record, returned. *)
