open Abi
open Libc

type params = {
  chapters : int;
  sections_per_chapter : int;
  paragraphs_per_section : int;
  words_per_paragraph : int;
  include_files : int;
  cpu_us_per_word : int;
}

let default_params = {
  chapters = 10;
  sections_per_chapter = 6;
  paragraphs_per_section = 7;
  words_per_paragraph = 110;
  include_files = 4;
  cpu_us_per_word = 2_600;
}

let quick_params = {
  chapters = 2;
  sections_per_chapter = 2;
  paragraphs_per_section = 2;
  words_per_paragraph = 12;
  include_files = 1;
  cpu_us_per_word = 50;
}

let input_path = "/doc/dissertation.mss"
let output_path = "/doc/dissertation.out"

(* --- document generation ---------------------------------------------- *)

let lexicon =
  [| "interposition"; "agent"; "system"; "interface"; "kernel"; "call";
     "toolkit"; "object"; "pathname"; "descriptor"; "signal"; "process";
     "the"; "a"; "of"; "and"; "to"; "is"; "that"; "with"; "for"; "be";
     "transparently"; "unmodified"; "boilerplate"; "inheritance";
     "emulation"; "directory"; "union"; "transaction"; "monitoring" |]

let gen_paragraph rng p =
  let words =
    List.init p.words_per_paragraph (fun _ -> Sim.Rng.pick rng lexicon)
  in
  String.concat " " words

let generate rng p =
  let buf = Buffer.create 65536 in
  let includes = ref [] in
  Buffer.add_string buf "@device{postscript}\n@style{spacing 1.5}\n";
  for c = 1 to p.chapters do
    Buffer.add_string buf (Printf.sprintf "@chapter Chapter %d\n" c);
    if c <= p.include_files then begin
      let name = Printf.sprintf "/doc/chapter%d.mss" c in
      let ibuf = Buffer.create 4096 in
      for _ = 1 to p.paragraphs_per_section do
        Buffer.add_string ibuf (gen_paragraph rng p);
        Buffer.add_string ibuf "\n\n"
      done;
      includes := (name, Buffer.contents ibuf) :: !includes;
      Buffer.add_string buf (Printf.sprintf "@include %s\n" name)
    end;
    for s = 1 to p.sections_per_chapter do
      Buffer.add_string buf (Printf.sprintf "@section Section %d.%d\n" c s);
      for _ = 1 to p.paragraphs_per_section do
        Buffer.add_string buf (gen_paragraph rng p);
        Buffer.add_string buf "\n\n"
      done
    done
  done;
  Buffer.contents buf, List.rev !includes

(* --- the formatter ------------------------------------------------------ *)

let page_width = 72
let io_chunk = 1024

(* buffered chunked output: one write(2) per io_chunk bytes *)
type sink = { fd : int; pending : Buffer.t }

let sink_put sink s =
  Buffer.add_string sink.pending s;
  while Buffer.length sink.pending >= io_chunk do
    let chunk = Buffer.sub sink.pending 0 io_chunk in
    let rest =
      Buffer.sub sink.pending io_chunk (Buffer.length sink.pending - io_chunk)
    in
    Buffer.clear sink.pending;
    Buffer.add_string sink.pending rest;
    ignore (Unistd.write_all sink.fd chunk)
  done

let sink_flush sink =
  if Buffer.length sink.pending > 0 then begin
    ignore (Unistd.write_all sink.fd (Buffer.contents sink.pending));
    Buffer.clear sink.pending
  end

(* read a file in io_chunk-sized reads *)
let read_chunked path =
  match Unistd.open_ path Flags.Open.o_rdonly 0 with
  | Error e -> Error e
  | Ok fd ->
    let buf = Bytes.create io_chunk in
    let collected = Buffer.create 4096 in
    let rec go () =
      match Unistd.read fd buf io_chunk with
      | Error e ->
        ignore (Unistd.close fd);
        Error e
      | Ok 0 ->
        ignore (Unistd.close fd);
        Ok (Buffer.contents collected)
      | Ok n ->
        Buffer.add_subbytes collected buf 0 n;
        go ()
    in
    go ()

type fmt_state = {
  out : sink;
  cpu_us_per_word : int;
  mutable para : string list;  (* reversed words *)
  mutable chapter : int;
  mutable section : int;
  mutable words_total : int;
}

let flush_para st =
  match st.para with
  | [] -> ()
  | rev_words ->
    let words = List.rev rev_words in
    (* paragraph filling: the "formatting work" of the run *)
    Unistd.cpu_work (st.cpu_us_per_word * List.length words);
    st.words_total <- st.words_total + List.length words;
    let line = Buffer.create 80 in
    List.iter
      (fun w ->
        let need =
          String.length w + if Buffer.length line > 0 then 1 else 0
        in
        if Buffer.length line + need > page_width then begin
          sink_put st.out (Buffer.contents line ^ "\n");
          Buffer.clear line
        end;
        if Buffer.length line > 0 then Buffer.add_char line ' ';
        Buffer.add_string line w)
      words;
    if Buffer.length line > 0 then sink_put st.out (Buffer.contents line ^ "\n");
    sink_put st.out "\n";
    st.para <- []

let heading st text underline =
  flush_para st;
  sink_put st.out (text ^ "\n");
  sink_put st.out (String.make (min page_width (String.length text)) underline);
  sink_put st.out "\n\n"

let rec process_line st line =
  let starts_with prefix =
    String.length line >= String.length prefix
    && String.sub line 0 (String.length prefix) = prefix
  in
  let arg prefix =
    String.trim
      (String.sub line (String.length prefix)
         (String.length line - String.length prefix))
  in
  if starts_with "@device" || starts_with "@style" then ()
  else if starts_with "@chapter" then begin
    st.chapter <- st.chapter + 1;
    st.section <- 0;
    heading st
      (Printf.sprintf "Chapter %d.  %s" st.chapter (arg "@chapter"))
      '='
  end
  else if starts_with "@section" then begin
    st.section <- st.section + 1;
    heading st
      (Printf.sprintf "%d.%d  %s" st.chapter st.section (arg "@section"))
      '-'
  end
  else if starts_with "@include" then begin
    flush_para st;
    match read_chunked (arg "@include") with
    | Error e ->
      sink_put st.out
        (Printf.sprintf "[missing include: %s]\n" (Errno.message e))
    | Ok content ->
      List.iter (process_line st) (String.split_on_char '\n' content)
  end
  else if String.trim line = "" then flush_para st
  else
    st.para <-
      List.rev_append
        (List.filter (( <> ) "") (String.split_on_char ' ' line))
        st.para

let format_document ~cpu_us_per_word ~input ~output =
  match read_chunked input with
  | Error e ->
    Stdio.eprintf "scribe: %s: %s\n" input (Errno.message e);
    1
  | Ok content ->
    (match
       Unistd.open_ output Flags.Open.(o_wronly lor o_creat lor o_trunc) 0o644
     with
     | Error e ->
       Stdio.eprintf "scribe: %s: %s\n" output (Errno.message e);
       1
     | Ok out_fd ->
       let st = {
         out = { fd = out_fd; pending = Buffer.create io_chunk };
         cpu_us_per_word;
         para = [];
         chapter = 0;
         section = 0;
         words_total = 0;
       } in
       List.iter (process_line st) (String.split_on_char '\n' content);
       flush_para st;
       sink_put st.out
         (Printf.sprintf "[%d words formatted]\n" st.words_total);
       sink_flush st.out;
       ignore (Unistd.fsync out_fd);
       ignore (Unistd.close out_fd);
       0)

(* --- wiring ------------------------------------------------------------- *)

let body ?(params = default_params) () =
  format_document ~cpu_us_per_word:params.cpu_us_per_word ~input:input_path
    ~output:output_path

let register k =
  Kernel.register_image k "scribe" (fun ~argv ~envp:_ () ->
    let input = if Array.length argv > 1 then argv.(1) else input_path in
    let output = if Array.length argv > 2 then argv.(2) else output_path in
    format_document ~cpu_us_per_word:default_params.cpu_us_per_word ~input
      ~output)

let setup ?(params = default_params) ?(seed = 42) k =
  register k;
  let rng = Sim.Rng.create seed in
  let doc, includes = generate rng params in
  Kernel.write_file k ~path:input_path doc;
  List.iter
    (fun (name, content) -> Kernel.write_file k ~path:name content)
    includes;
  Kernel.install_image k ~path:"/bin/scribe" ~image:"scribe"
