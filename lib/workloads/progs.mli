(** Small Unix-style utilities, registered as executable images so
    that workloads, examples and tests can fork/exec them like real
    binaries.  All of them speak the simulated system interface only
    (via {!Libc}), so they run unmodified under any agent. *)

val register : Kernel.t -> unit
(** Register every utility image (idempotent):

    - [cat file...] — concatenate to stdout ([-] unsupported)
    - [echo words...]
    - [ls [-l] dir...] — names (or ls -l lines) to stdout
    - [cp src dst]
    - [wc file...] — lines, words, bytes
    - [grep pattern file...] — substring match, prints matching lines
    - [head -n N file]
    - [touch file...]
    - [rm file...]
    - [mkdir dir...]
    - [ed [file]] — a tiny interactive line editor (a/p/d/r/w/q),
      reading commands from standard input
    - [true], [false]
    - [sh -c "cmd args | cmd args | ..."] — a minimal pipeline shell *)

val install_all : Kernel.t -> unit
(** {!register} plus writing each image into [/bin]. *)

val sh_split : string -> string list list
(** Plain pipeline splitting: stages as word lists (exposed for
    tests). *)

(** The [sh] image's full grammar (no quoting):
    [cmd ; cmd && cmd | cmd < in > out >> log]. *)

type sh_stage = {
  sh_words : string list;
  sh_rin : string option;
  sh_rout : (string * bool) option;  (** path, append? *)
}

type sh_cmd =
  | Sh_pipe of sh_stage list
  | Sh_and of sh_cmd * sh_cmd
  | Sh_seq of sh_cmd list

val sh_parse : string -> sh_cmd
val exec_cmd : sh_cmd -> int
(** Run a parsed command in the current simulated process. *)
