(** Typed user-level wrappers over the raw system interface — the
    simulated C library.  Everything here issues calls through the
    normal trap path ({!Kernel.Uspace.syscall}), so running under an
    interposition agent changes the behaviour of these functions
    without any change to the programs using them.

    All functions return [('a, Abi.Errno.t) result]. *)

type 'a r = ('a, Abi.Errno.t) result

exception Unix_error of Abi.Errno.t * string
(** Raised by {!ok_exn}. *)

val ok_exn : string -> 'a r -> 'a
(** [ok_exn what r] unwraps or raises {!Unix_error} tagged [what]. *)

(** {1 Files} *)

val open_ : string -> int -> int -> int r
val creat : string -> int -> int r
val close : int -> unit r
val read : int -> Bytes.t -> int -> int r
val write : int -> string -> int r
val write_all : int -> string -> unit r
(** Loop until the whole string is written (pipes may short-write). *)

val read_all : int -> string r
(** Read to end of file. *)

val lseek : int -> int -> int -> int r
val ftruncate : int -> int -> unit r
val fsync : int -> unit r
val dup : int -> int r
val dup2 : int -> int -> int r
val pipe : unit -> (int * int) r
val socketpair : unit -> (int * int) r
(** A connected bidirectional pair of descriptors. *)

(** {1 Sockets}

    Stream sockets in a flat, shard-wide name space: addresses are
    arbitrary strings (conventionally not starting with ['/'] — they
    are not filesystem paths and pathname agents ignore them). *)

val socket : unit -> int r
(** A fresh unbound stream socket. *)

val bind : int -> string -> unit r
(** Claim an address; [EADDRINUSE] if another socket holds it. *)

val listen : int -> int -> unit r
(** [listen fd backlog] turns a bound socket into a listener with a
    bounded accept queue (backlog clamped ≥ 1). *)

val accept : int -> int r
(** Pop the next pending connection as a new descriptor; blocks while
    the queue is empty. *)

val connect : int -> string -> unit r
(** Establish a connection to a listening address: [ECONNREFUSED] if
    nothing listens there, blocks while the accept queue is full. *)

val send : int -> string -> int r
(** Like {!write} on a connected socket ([EPIPE]/SIGPIPE when the peer
    is gone); may short-write when the buffer is nearly full. *)

val recv : int -> Bytes.t -> int -> int r
(** Like {!read} on a connected socket; 0 means the peer closed or
    shut down its write half. *)

val shutdown : int -> int -> unit r
(** Close one or both directions early ({!Abi.Flags.Shut}); the final
    [close] releases only what shutdown has not already dropped. *)

val send_all : int -> string -> unit r
(** Loop until the whole string is sent. *)

val fcntl : int -> int -> int -> int r
val set_cloexec : int -> bool -> unit r

(** {1 Names} *)

val stat : string -> Abi.Stat.t r
val lstat : string -> Abi.Stat.t r
val fstat : int -> Abi.Stat.t r
val access : string -> int -> unit r
val unlink : string -> unit r
val link : existing:string -> string -> unit r
val symlink : target:string -> string -> unit r
val readlink : string -> string r
val rename : src:string -> string -> unit r
val mkdir : string -> int -> unit r
val rmdir : string -> unit r
val mkfifo : string -> int -> unit r
val chmod : string -> int -> unit r
val chown : string -> uid:int -> gid:int -> unit r
val truncate : string -> int -> unit r
val utimes : string -> atime:int -> mtime:int -> unit r
val chdir : string -> unit r
val fchdir : int -> unit r
val getcwd : unit -> string r
val umask : int -> int r

(** {1 Processes} *)

val fork : child:(unit -> int) -> int r
(** Returns the child pid in the parent; the child runs [child] as its
    program body (see DESIGN.md for how this maps onto real fork). *)

val execve : string -> string array -> string array -> 'a r
(** On success, does not return. *)

val execv : string -> string array -> 'a r
val _exit : int -> 'a
val wait : unit -> (int * int) r
(** pid, wait-status. *)

val waitpid : int -> int -> (int * int) r
val getpid : unit -> int
val getppid : unit -> int
val getuid : unit -> int
val geteuid : unit -> int
val getgid : unit -> int
val setuid : int -> unit r
val getpgrp : unit -> int
val setpgrp : int -> int -> unit r
val kill : int -> int -> unit r
val getdtablesize : unit -> int

(** {1 Signals} *)

val signal : int -> Abi.Value.handler -> Abi.Value.handler r
(** Install a disposition, returning the previous one. *)

val sigprocmask : int -> int -> int r
val sigpending : unit -> int r
val sigsuspend : int -> unit r
(** Always "fails" with [EINTR], like the real call. *)

val alarm : int -> int r

(** {1 Time} *)

val gettimeofday : unit -> (int * int) r
val settimeofday : sec:int -> usec:int -> unit r
val getrusage : unit -> (int * int) r
(** (virtual user µs, virtual system µs) of the calling process. *)

val time : unit -> int r
val select :
  ?read:int list -> ?write:int list -> ?timeout_us:int -> unit
  -> (int list * int list) r
(** Wait until any of the read descriptors is readable or any of the
    write descriptors writable; returns the ready subsets.  A
    [timeout_us] of 0 polls; the default -1 waits forever.
    Descriptors must be below 63 (they always are: the table holds
    64). *)

val sleep_us : int -> unit r
val cpu_work : int -> unit
(** Model local computation costing the given µs of virtual time. *)

(** {1 Directories} *)

val getdirentries : int -> Bytes.t -> (int * int) r
(** bytes-filled, new base. *)

val ioctl : int -> int -> Bytes.t -> int r
val isatty : int -> bool
