open Abi

type 'a r = ('a, Errno.t) result

exception Unix_error of Errno.t * string

let ok_exn what = function
  | Ok v -> v
  | Error e -> raise (Unix_error (e, what))

let call = Kernel.Uspace.syscall

let unit_of = function
  | Ok (_ : Value.ret) -> Ok ()
  | Error e -> Error e

let int_of = function
  | Ok { Value.r0; _ } -> Ok r0
  | Error e -> Error e

(* --- files ---------------------------------------------------------------- *)

let open_ path flags mode = int_of (call (Call.Open (path, flags, mode)))
let creat path mode = int_of (call (Call.Creat (path, mode)))
let close fd = unit_of (call (Call.Close fd))

let read fd buf cnt = int_of (call (Call.Read (fd, buf, cnt)))
let write fd data = int_of (call (Call.Write (fd, data)))

let rec write_all fd data =
  if data = "" then Ok ()
  else
    match write fd data with
    | Error e -> Error e
    | Ok n ->
      if n >= String.length data then Ok ()
      else write_all fd (String.sub data n (String.length data - n))

let read_all fd =
  let chunk = Bytes.create 4096 in
  let buf = Buffer.create 256 in
  let rec go () =
    match read fd chunk (Bytes.length chunk) with
    | Error e -> Error e
    | Ok 0 -> Ok (Buffer.contents buf)
    | Ok n ->
      Buffer.add_subbytes buf chunk 0 n;
      go ()
  in
  go ()

let lseek fd off whence = int_of (call (Call.Lseek (fd, off, whence)))
let ftruncate fd len = unit_of (call (Call.Ftruncate (fd, len)))
let fsync fd = unit_of (call (Call.Fsync fd))
let dup fd = int_of (call (Call.Dup fd))
let dup2 o n = int_of (call (Call.Dup2 (o, n)))

let pipe () =
  match call Call.Pipe with
  | Ok { Value.r0; r1 } -> Ok (r0, r1)
  | Error e -> Error e

let socketpair () =
  match call Call.Socketpair with
  | Ok { Value.r0; r1 } -> Ok (r0, r1)
  | Error e -> Error e

(* --- sockets -------------------------------------------------------------- *)

let socket () = int_of (call Call.Socket)
let bind fd addr = unit_of (call (Call.Bind (fd, addr)))
let listen fd backlog = unit_of (call (Call.Listen (fd, backlog)))
let accept fd = int_of (call (Call.Accept fd))
let connect fd addr = unit_of (call (Call.Connect (fd, addr)))
let send fd data = int_of (call (Call.Send (fd, data)))
let recv fd buf cnt = int_of (call (Call.Recv (fd, buf, cnt)))
let shutdown fd how = unit_of (call (Call.Shutdown (fd, how)))

let rec send_all fd data =
  if data = "" then Ok ()
  else
    match send fd data with
    | Error e -> Error e
    | Ok n ->
      if n >= String.length data then Ok ()
      else send_all fd (String.sub data n (String.length data - n))

let fcntl fd cmd arg = int_of (call (Call.Fcntl (fd, cmd, arg)))

let set_cloexec fd on =
  match fcntl fd Flags.Fcntl.f_setfd (if on then Flags.Fcntl.fd_cloexec else 0)
  with
  | Ok _ -> Ok ()
  | Error e -> Error e

(* --- names ---------------------------------------------------------------- *)

let stat_via make =
  let cell = ref None in
  match call (make cell) with
  | Ok _ ->
    (match !cell with
     | Some st -> Ok st
     | None -> Error Errno.EFAULT)
  | Error e -> Error e

let stat path = stat_via (fun cell -> Call.Stat (path, cell))
let lstat path = stat_via (fun cell -> Call.Lstat (path, cell))
let fstat fd = stat_via (fun cell -> Call.Fstat (fd, cell))

let access path bits = unit_of (call (Call.Access (path, bits)))
let unlink path = unit_of (call (Call.Unlink path))
let link ~existing path = unit_of (call (Call.Link (existing, path)))
let symlink ~target path = unit_of (call (Call.Symlink (target, path)))

let readlink path =
  let buf = Bytes.create 1024 in
  match int_of (call (Call.Readlink (path, buf))) with
  | Ok n -> Ok (Bytes.sub_string buf 0 n)
  | Error e -> Error e

let rename ~src dst = unit_of (call (Call.Rename (src, dst)))
let mkdir path perm = unit_of (call (Call.Mkdir (path, perm)))
let rmdir path = unit_of (call (Call.Rmdir path))

let mkfifo path perm =
  unit_of (call (Call.Mknod (path, Flags.Mode.ififo lor perm, 0)))

let chmod path perm = unit_of (call (Call.Chmod (path, perm)))
let chown path ~uid ~gid = unit_of (call (Call.Chown (path, uid, gid)))
let truncate path len = unit_of (call (Call.Truncate (path, len)))

let utimes path ~atime ~mtime =
  unit_of (call (Call.Utimes (path, atime, mtime)))

let chdir path = unit_of (call (Call.Chdir path))
let fchdir fd = unit_of (call (Call.Fchdir fd))

let getcwd () =
  let buf = Bytes.create 1024 in
  match int_of (call (Call.Getcwd buf)) with
  | Ok n -> Ok (Bytes.sub_string buf 0 n)
  | Error e -> Error e

let umask m = int_of (call (Call.Umask m))

(* --- processes -------------------------------------------------------------- *)

let fork ~child = int_of (call (Call.Fork child))

let execve path argv envp =
  match call (Call.Execve (path, argv, envp)) with
  | Ok _ ->
    (* unreachable: a successful exec does not return *)
    assert false
  | Error e -> Error e

let execv path argv = execve path argv [||]

let _exit code =
  ignore (call (Call.Exit code));
  (* an agent could in principle deny the exit; fall back hard *)
  raise (Kernel.Events.Process_exit code)

let waitpid pid options =
  match call (Call.Wait4 (pid, options)) with
  | Ok { Value.r0; r1 } -> Ok (r0, r1)
  | Error e -> Error e

let wait () = waitpid (-1) 0

let int_call c =
  match call c with
  | Ok { Value.r0; _ } -> r0
  | Error _ -> -1

let getpid () = int_call Call.Getpid
let getppid () = int_call Call.Getppid
let getuid () = int_call Call.Getuid
let geteuid () = int_call Call.Geteuid
let getgid () = int_call Call.Getgid
let setuid u = unit_of (call (Call.Setuid u))
let getpgrp () = int_call Call.Getpgrp
let setpgrp pid pgrp = unit_of (call (Call.Setpgrp (pid, pgrp)))
let kill pid s = unit_of (call (Call.Kill (pid, s)))
let getdtablesize () = int_call Call.Getdtablesize

(* --- signals ------------------------------------------------------------------ *)

let signal s h =
  let old = ref None in
  match call (Call.Sigaction (s, Some h, Some old)) with
  | Ok _ ->
    (match !old with
     | Some prev -> Ok prev
     | None -> Ok Value.H_default)
  | Error e -> Error e

let sigprocmask how m = int_of (call (Call.Sigprocmask (how, m)))
let sigpending () = int_of (call Call.Sigpending)
let sigsuspend m = unit_of (call (Call.Sigsuspend m))
let alarm sec = int_of (call (Call.Alarm sec))

(* --- time ---------------------------------------------------------------------- *)

let gettimeofday () =
  let cell = ref None in
  match call (Call.Gettimeofday cell) with
  | Ok _ ->
    (match !cell with
     | Some tv -> Ok tv
     | None -> Error Errno.EFAULT)
  | Error e -> Error e

let settimeofday ~sec ~usec = unit_of (call (Call.Settimeofday (sec, usec)))

let getrusage () =
  let cell = ref None in
  match call (Call.Getrusage cell) with
  | Ok _ ->
    (match !cell with
     | Some usage -> Ok usage
     | None -> Error Errno.EFAULT)
  | Error e -> Error e

let time () =
  match gettimeofday () with
  | Ok (sec, _) -> Ok sec
  | Error e -> Error e

let mask_of_fds fds =
  List.fold_left (fun m fd -> m lor (1 lsl fd)) 0 fds

let fds_of_mask mask =
  let rec go fd acc =
    if fd > 62 then List.rev acc
    else go (fd + 1) (if mask land (1 lsl fd) <> 0 then fd :: acc else acc)
  in
  go 0 []

let select ?(read = []) ?(write = []) ?(timeout_us = -1) () =
  match
    call (Call.Select (mask_of_fds read, mask_of_fds write, timeout_us))
  with
  | Ok { Value.r0; r1 } -> Ok (fds_of_mask r0, fds_of_mask r1)
  | Error e -> Error e

let sleep_us us = unit_of (call (Call.Sleepus us))
let cpu_work = Kernel.Uspace.cpu_work

(* --- directories ----------------------------------------------------------------- *)

let getdirentries fd buf =
  match call (Call.Getdirentries (fd, buf)) with
  | Ok { Value.r0; r1 } -> Ok (r0, r1)
  | Error e -> Error e

let ioctl fd op buf = int_of (call (Call.Ioctl (fd, op, buf)))

let isatty fd =
  let buf = Bytes.create 4 in
  match ioctl fd Flags.Ioctl.tiocisatty buf with
  | Ok _ -> true
  | Error _ -> false
