type pipe = {
  pipe_id : int;
  buf : Vfs.Pipebuf.t;
}

(* One direction-pair of a stream connection.  The two endpoints hold
   the same pipes crossed: this side reads [rx] and writes [tx], the
   peer reads [tx] and writes [rx].  The shut flags remember which of
   this endpoint's pipe references [shutdown] already dropped, so the
   final close releases each side exactly once. *)
type conn = {
  rx : pipe;
  tx : pipe;
  mutable shut_rd : bool;
  mutable shut_wr : bool;
}

(* A listening socket's accept queue: connections [connect] has
   established (their pipes already referenced for the server side)
   that no [accept] has adopted yet. *)
type listener = {
  lid : int;                     (* wait-queue / select identity *)
  backlog : int;                 (* accept-queue bound, ≥ 1 *)
  pending : conn Queue.t;
  mutable lclosed : bool;
}

(* The socket lifecycle, driven by bind/listen/connect/accept. *)
type sock_state =
  | S_fresh
  | S_bound of string
  | S_listening of string * listener
  | S_conn of conn

type sock = { mutable sock : sock_state }

type kind =
  | Vnode of Vfs.Inode.t
  | Pipe_read of pipe
  | Pipe_write of pipe
  | Fifo_read of Vfs.Inode.t * Vfs.Pipebuf.t
  | Fifo_write of Vfs.Inode.t * Vfs.Pipebuf.t
  | Sock of sock

type t = {
  id : int;
  kind : kind;
  mutable offset : int;
  mutable flags : int;
  mutable refs : int;
}

let make ~id kind ~flags = { id; kind; offset = 0; flags; refs = 1 }

let is_readable t =
  match t.kind with
  | Pipe_read _ | Fifo_read _ | Sock _ -> true
  | Pipe_write _ | Fifo_write _ -> false
  | Vnode _ -> Abi.Flags.Open.readable t.flags

let is_writable t =
  match t.kind with
  | Pipe_write _ | Fifo_write _ | Sock _ -> true
  | Pipe_read _ | Fifo_read _ -> false
  | Vnode _ -> Abi.Flags.Open.writable t.flags

let inode t =
  match t.kind with
  | Vnode i | Fifo_read (i, _) | Fifo_write (i, _) -> Some i
  | Pipe_read _ | Pipe_write _ | Sock _ -> None

(* The established connection behind a socket descriptor, if any. *)
let conn_of t =
  match t.kind with
  | Sock { sock = S_conn c } -> Some c
  | _ -> None

let listener_of t =
  match t.kind with
  | Sock { sock = S_listening (_, l) } -> Some l
  | _ -> None

type fd_entry = {
  file : t;
  mutable cloexec : bool;
}
