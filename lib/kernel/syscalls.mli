(** The system call dispatcher: one typed call in, one outcome out.

    Dispatch never blocks; when a call cannot complete it returns
    [Block cond] and the scheduler parks the caller, re-dispatching the
    same call when the condition is woken (BSD restart semantics; the
    calls for which a blind restart would be wrong — [sleepus] — are
    resumed directly by the timer instead). *)

val dispatch : Kstate.t -> Proc.t -> Abi.Call.t -> Kstate.outcome

val restartable : ?errno:Abi.Errno.t -> int -> bool
(** The restart policy itself, as a predicate on syscall numbers:
    [true] for the calls an interruption transparently re-issues
    (read, write, wait4, ...), [false] for the [sleepus]-class calls
    (sleepus, select, sigsuspend) where a blind restart would be wrong
    and EINTR may legitimately surface.  Fault-injection agents route
    injected [EINTR] through this predicate: on a restartable call the
    injected interruption becomes an invisible restart (the call is
    re-issued down the stack), exactly as the kernel itself would
    behave.

    [errno] is the error about to be surfaced, when it is not EINTR
    itself: a call that failed with [EPIPE] is never restartable —
    the write/send already broke the pipe and raised SIGPIPE, so
    re-issuing it would only multiply the damage. *)
