module Dev = Dev
module Events = Events
module File = File
module Kstate = Kstate
module Proc = Proc
module Registry = Registry
module Syscalls = Syscalls
module Uspace = Uspace

open Abi

type t = Kstate.t

let log_src = Logs.Src.create "kernel" ~doc:"simulated kernel"
module Log = (val Logs.src_log log_src : Logs.LOG)

(* --- fibre plumbing ------------------------------------------------------ *)

let discard k =
  try Effect.Deep.discontinue k Events.Process_killed
  with Events.Process_killed -> () | _ -> ()

(* Resume a continuation with liveness re-checked at run time: the
   process may have been killed while its resumption sat in the run
   queue. *)
let enqueue_resume (t : t) (proc : Proc.t) k v =
  Kstate.enqueue t (fun () ->
    match proc.state with
    | Proc.Runnable ->
      Proc.Cur.set (Some proc);
      Effect.Deep.continue k v;
      Proc.Cur.set None
    | Proc.Zombie | Proc.Reaped -> discard k
    | Proc.Parked _ | Proc.Stopped _ -> discard k)

(* Terminal (default-action) signals left pending by
   collect_deliverable: decide the process's fate at a trap boundary. *)
let pending_terminal (proc : Proc.t) =
  let result = ref `None in
  (try
     for s = 1 to Signal.max_signal do
       if Signal.Mask.mem proc.sigs.pending s
          && (s = Signal.sigkill || s = Signal.sigstop
              || not (Signal.Mask.mem proc.sigs.mask s))
       then begin
         let dispo =
           if s = Signal.sigkill then `Terminate
           else if s = Signal.sigstop then `Stop
           else
             match Proc.handler proc s with
             | Value.H_default ->
               (match Signal.default_action s with
                | Signal.Terminate -> `Terminate
                | Signal.Stop -> `Stop
                | Signal.Ignore | Signal.Continue -> `Other)
             | Value.H_ignore | Value.H_fn _ -> `Other
         in
         match dispo with
         | `Terminate ->
           result := `Kill (s, Flags.Wait.sig_status s);
           raise Exit
         | `Stop ->
           result := `Stop s;
           raise Exit
         | `Other -> ()
       end
     done
   with Exit -> ());
  !result

(* Deliver a reply to a process at a trap boundary, honouring pending
   terminal signals and stops. *)
let finish_reply (t : t) (proc : Proc.t) k (reply : Events.trap_reply) =
  let deliver = reply.deliver @ Kstate.collect_deliverable t proc in
  let reply = { reply with deliver } in
  match pending_terminal proc with
  | `Kill (s, status) ->
    proc.sigs.pending <- Signal.Mask.remove proc.sigs.pending s;
    Kstate.do_exit t proc status;
    discard k
  | `Stop s ->
    proc.sigs.pending <- Signal.Mask.remove proc.sigs.pending s;
    proc.state <- Proc.Stopped { sk = k; reply };
    (match Kstate.proc t proc.ppid with
     | Some parent ->
       Kstate.post_signal t parent Signal.sigchld;
       Kstate.wake_key t (Kstate.K_child parent.pid)
     | None -> ())
  | `None -> enqueue_resume t proc k reply

let keys_of_cond (cond : Proc.cond) : Kstate.wait_key list =
  match cond with
  | Proc.On_child -> []          (* keyed by the waiter itself *)
  | Proc.On_pipe_read i -> [ Kstate.K_pipe_r i ]
  | Proc.On_pipe_write i -> [ Kstate.K_pipe_w i ]
  | Proc.On_fifo_read i -> [ Kstate.K_fifo_r i ]
  | Proc.On_fifo_write i -> [ Kstate.K_fifo_w i ]
  | Proc.On_accept i -> [ Kstate.K_accept i ]
  | Proc.On_connq i -> [ Kstate.K_connq i ]
  | Proc.On_time _ -> []         (* woken by the timer wheel *)
  | Proc.On_signal -> []         (* woken by signal posting *)
  | Proc.On_select s ->
    List.map (fun i -> Kstate.K_pipe_r i) s.rpipes
    @ List.map (fun i -> Kstate.K_pipe_w i) s.wpipes
    @ List.map (fun i -> Kstate.K_fifo_r i) s.rfifos
    @ List.map (fun i -> Kstate.K_fifo_w i) s.wfifos
    @ List.map (fun i -> Kstate.K_accept i) s.rlisten

let base_cost (via : Events.via) call =
  Cost_model.syscall_us call
  + (match via with
     | Events.Htg -> Cost_model.htg_overhead_us
     | Events.App -> 0)

let rec process_trap (t : t) (proc : Proc.t) (env : Envelope.t)
    (via : Events.via) k ~first =
  (* a deferred fatal signal takes effect at syscall entry, before the
     call can park the process out of its reach *)
  match pending_terminal proc with
  | `Kill (s, status) ->
    proc.sigs.pending <- Signal.Mask.remove proc.sigs.pending s;
    Kstate.do_exit t proc status;
    discard k
  | `Stop _ | `None ->
  (* decode-once: if any agent above already materialized the typed
     view, this is a memoized read, not a second decode *)
  match Envelope.call env with
  | Error e ->
    if first then Kstate.charge t Cost_model_base.trivial_us;
    finish_reply t proc k { Events.res = Error e; deliver = [] }
  | Ok call ->
    if first then begin
      let cost = base_cost via call in
      proc.stime_us <- proc.stime_us + cost;
      Kstate.charge t cost
    end;
    let pre_mask = proc.sigs.mask in
    let outcome = Syscalls.dispatch t proc call in
    (match outcome with
     | Kstate.Done res ->
       Kstate.run_trace_hook t proc call res;
       finish_reply t proc k { Events.res; deliver = [] }
     | Kstate.Block cond ->
       let saved_mask =
         match cond with
         | Proc.On_signal -> Some pre_mask
         | Proc.On_child | Proc.On_pipe_read _ | Proc.On_pipe_write _
         | Proc.On_fifo_read _ | Proc.On_fifo_write _ | Proc.On_accept _
         | Proc.On_connq _ | Proc.On_time _ | Proc.On_select _ ->
           None
       in
       proc.state <- Proc.Parked { k; env; via; cond; saved_mask };
       (match cond with
        | Proc.On_child -> Kstate.sleep_on t (Kstate.K_child proc.pid) proc.pid
        | _ ->
          List.iter
            (fun key -> Kstate.sleep_on t key proc.pid)
            (keys_of_cond cond))
     | Kstate.Exited -> ()  (* _exit never returns: abandon the fibre *)
     | Kstate.Exec spec ->
       start_exec t proc spec)

and start_exec (t : t) (proc : Proc.t) (spec : Events.exec_spec) =
  (* the exec trap's span(s) can never be closed by the code that
     opened them — the old fibre is abandoned here *)
  Obs.abort_pid proc.pid;
  if not spec.keep_emulation then proc.emul <- Proc.fresh_emulation ();
  t.hooks.spawn proc spec.exec_body

(* --- the fibre root ------------------------------------------------------- *)

let run_fiber (t : t) (proc : Proc.t) (body : unit -> int) =
  let open Effect.Deep in
  (* crt0 semantics: a body that returns exits via the exit system
     call, so interposition agents observe every termination; the
     [retc] below is only a backstop should an agent swallow it *)
  let body () =
    let code = body () in
    ignore (Uspace.syscall (Abi.Call.Exit code));
    code
  in
  match_with body ()
    { retc =
        (fun status -> Kstate.do_exit t proc (Flags.Wait.exit_status status));
      exnc =
        (fun e ->
          match e with
          | Events.Process_killed -> ()
          | Events.Process_exit code ->
            Kstate.do_exit t proc (Flags.Wait.exit_status code)
          | e ->
            Log.warn (fun m ->
              m "pid %d (%s): uncaught exception %s" proc.pid proc.name
                (Printexc.to_string e));
            Kstate.do_exit t proc (Flags.Wait.sig_status Signal.sigabrt));
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Events.Trap (env, via) ->
            Some (fun (k : (a, unit) continuation) ->
              Proc.Cur.set None;
              process_trap t proc env via k ~first:true)
          | Events.Cpu us ->
            Some (fun (k : (a, unit) continuation) ->
              Proc.Cur.set None;
              proc.utime_us <- proc.utime_us + us;
              Kstate.charge t us;
              let deliver = Kstate.collect_deliverable t proc in
              (match pending_terminal proc with
               | `Kill (s, status) ->
                 proc.sigs.pending <-
                   Signal.Mask.remove proc.sigs.pending s;
                 Kstate.do_exit t proc status;
                 discard k
               | `Stop _ | `None ->
                 (* stops at a pure compute point are deferred to the
                    next trap *)
                 enqueue_resume t proc k deliver))
          | Events.Exec_load spec ->
            Some (fun (k : (a, unit) continuation) ->
              Proc.Cur.set None;
              ignore (k : (a, unit) continuation);
              start_exec t proc spec)
          | Events.Set_emulation (numbers, handler) ->
            Some (fun (k : (a, unit) continuation) ->
              Proc.Cur.set None;
              (* the interest bitmap and the fused chain shadow the
                 vector slot-for-slot: this handler is the only writer,
                 so updating all three here keeps both the fast-path
                 invariant and the chain invariant — the chain slot is
                 the handler closure itself (no per-trap option match),
                 or the canonical kernel jump when cleared *)
              let chained =
                match handler with
                | Some h -> h
                | None -> Proc.chain_unset
              in
              List.iter
                (fun n ->
                  if n >= 0 && n < Array.length proc.emul.vector then begin
                    proc.emul.vector.(n) <- handler;
                    proc.emul.chain.(n) <- chained;
                    Abi.Bitset.assign proc.emul.bitmap n
                      (Option.is_some handler)
                  end)
                numbers;
              enqueue_resume t proc k ())
          | Events.Get_emulation n ->
            Some (fun (k : (a, unit) continuation) ->
              Proc.Cur.set None;
              let h =
                if n >= 0 && n < Array.length proc.emul.vector then
                  proc.emul.vector.(n)
                else None
              in
              enqueue_resume t proc k h)
          | Events.Set_emulation_signal h ->
            Some (fun (k : (a, unit) continuation) ->
              Proc.Cur.set None;
              proc.emul.sig_emul <- h;
              enqueue_resume t proc k ())
          | Events.Get_emulation_signal ->
            Some (fun (k : (a, unit) continuation) ->
              Proc.Cur.set None;
              enqueue_resume t proc k proc.emul.sig_emul)
          | _ -> None) }

let enqueue_start (t : t) (proc : Proc.t) (body : unit -> int) =
  Kstate.enqueue t (fun () ->
    match proc.state with
    | Proc.Runnable ->
      Proc.Cur.set (Some proc);
      run_fiber t proc body;
      Proc.Cur.set None
    | Proc.Zombie | Proc.Reaped | Proc.Parked _ | Proc.Stopped _ -> ())

let retry (t : t) (proc : Proc.t) =
  match proc.state with
  | Proc.Parked park ->
    proc.state <- Proc.Runnable;
    Kstate.enqueue t (fun () ->
      match proc.state with
      | Proc.Runnable ->
        process_trap t proc park.env park.via park.k ~first:false
      | Proc.Zombie | Proc.Reaped -> discard park.k
      | Proc.Parked _ | Proc.Stopped _ -> ())
  | Proc.Runnable | Proc.Stopped _ | Proc.Zombie | Proc.Reaped -> ()

(* --- the scheduler --------------------------------------------------------- *)

let fire_timer (t : t) (ev : Kstate.timer_event) =
  match ev with
  | Kstate.T_alarm pid ->
    (match Kstate.proc t pid with
     | Some proc ->
       proc.alarm_at <- None;
       Kstate.post_signal t proc Signal.sigalrm
     | None -> ())
  | Kstate.T_wake pid ->
    (match Kstate.proc t pid with
     | Some proc ->
       (match proc.state with
        | Proc.Parked ({ cond = Proc.On_time _; _ } as park) ->
          proc.state <- Proc.Runnable;
          finish_reply t proc park.k
            { Events.res = Value.ret 0; deliver = [] }
        | Proc.Runnable | Proc.Parked _ | Proc.Stopped _
        | Proc.Zombie | Proc.Reaped -> ())
     | None -> ())
  | Kstate.T_select pid ->
    (match Kstate.proc t pid with
     | Some proc ->
       (match proc.state with
        | Proc.Parked ({ cond = Proc.On_select _; _ } as park) ->
          (* timeout: no descriptors ready *)
          proc.state <- Proc.Runnable;
          finish_reply t proc park.k
            { Events.res = Value.ret 0 ~r1:0; deliver = [] }
        | Proc.Runnable | Proc.Parked _ | Proc.Stopped _
        | Proc.Zombie | Proc.Reaped -> ())
     | None -> ())

let kill_stragglers (t : t) =
  let stragglers =
    List.filter
      (fun (p : Proc.t) ->
        match p.state with
        | Proc.Parked _ | Proc.Stopped _ -> true
        | Proc.Runnable | Proc.Zombie | Proc.Reaped -> false)
      (Kstate.live_procs t)
  in
  List.iter
    (fun (p : Proc.t) ->
      Log.warn (fun m ->
        m "deadlock: killing pid %d (%s)" p.pid p.name);
      t.deadlock_kills <- t.deadlock_kills + 1;
      match p.state with
      | Proc.Parked park ->
        Kstate.do_exit t p (Flags.Wait.sig_status Signal.sigkill);
        discard park.k
      | Proc.Stopped st ->
        Kstate.do_exit t p (Flags.Wait.sig_status Signal.sigkill);
        discard st.sk
      | Proc.Runnable | Proc.Zombie | Proc.Reaped -> ())
    stragglers;
  stragglers <> []

(* Bounded scheduling: run every runnable fibre and fire every timer
   with deadline ≤ [until], then report why the shard stopped.  The
   classic free-running scheduler is [step ~until:max_int] in a loop;
   a [Cluster] uses finite horizons to keep sibling shards' virtual
   clocks within one quantum of each other. *)
let rec step (t : t) ~until =
  (* timers whose deadline virtual time has already passed fire at
     every scheduling point, so runnable (even spinning) processes
     cannot starve them *)
  match Kstate.next_timer t with
  | Some (at, ev) when at <= Sim.Clock.now_us t.clock ->
    Kstate.pop_timer t;
    fire_timer t ev;
    step t ~until
  | timer ->
    match Queue.take_opt t.runq with
    | Some thunk ->
      thunk ();
      step t ~until
    | None ->
      match timer with
      | Some (at, ev) when at <= until ->
        Kstate.pop_timer t;
        Sim.Clock.advance_to t.clock at;
        fire_timer t ev;
        step t ~until
      | Some (at, _) -> `Sleep_until at
      | None -> `Idle

let rec sched_loop (t : t) =
  match step t ~until:max_int with
  | `Sleep_until _ -> assert false (* an unbounded step consumes every timer *)
  | `Idle -> if kill_stragglers t then sched_loop t

(* --- entering a shard --------------------------------------------------------- *)

(* Install [t]'s shard-owned pieces — obs engine, codec and pool
   counters, current-process cell, ambient handle — as the ones the
   handle-less code paths (envelope codecs, uspace stubs, agents)
   reach.  The moral equivalent of loading a CPU's task register. *)
let enter (t : t) =
  Obs.install t.obs;
  Envelope.Stats.install t.codec;
  Value.Pool.Stats.install t.pool_stats;
  Envelope.Pool.Stats.install t.epool_stats;
  Proc.Cur.install t.cur;
  Kstate.Ambient.current := Some t

(* Enter [t] for the duration of [f], restoring whatever was installed
   before (exception-safe).  The cluster driver round-robins shards
   with this. *)
let with_shard (t : t) f =
  let prev_obs = Obs.installed () in
  let prev_codec = Envelope.Stats.installed () in
  let prev_pool = Value.Pool.Stats.installed () in
  let prev_epool = Envelope.Pool.Stats.installed () in
  let prev_cur = Proc.Cur.installed () in
  let prev_amb = !Kstate.Ambient.current in
  enter t;
  Fun.protect
    ~finally:(fun () ->
      Obs.install prev_obs;
      Envelope.Stats.install prev_codec;
      Value.Pool.Stats.install prev_pool;
      Envelope.Pool.Stats.install prev_epool;
      Proc.Cur.install prev_cur;
      Kstate.Ambient.current := prev_amb)
    f

let current () = !Kstate.Ambient.current

let current_exn () =
  match !Kstate.Ambient.current with
  | Some t -> t
  | None -> failwith "no current kernel shard (called outside a simulation?)"

(* --- creation and boot ------------------------------------------------------ *)

let create ?shard_id ?fused () =
  let t = Kstate.create ?shard_id ?fused () in
  t.hooks <-
    { Kstate.spawn = (fun proc body -> enqueue_start t proc body);
      retry = (fun proc -> retry t proc) };
  (* give this shard's observability engine this shard's clock and
     current-process context; they live and die with the handle *)
  Obs.with_engine t.obs (fun () ->
    Obs.set_clock (fun () -> Sim.Clock.now_us t.clock);
    Obs.set_context (fun () ->
        match Proc.Cur.get () with Some p -> p.Proc.pid | None -> 0);
    (* causal edge endpoints carry the shard id — span ids are unique
       only per engine (DESIGN.md §3.9) *)
    Obs.set_shard t.shard_id);
  (* a fresh kernel becomes the current shard, so the established
     create-configure-boot sequences keep addressing it *)
  enter t;
  t

let open_tty_fds (t : t) (proc : Proc.t) =
  match Vfs.Fs.resolve t.fs Vfs.Fs.root_cred ~cwd:proc.cwd "/dev/tty" with
  | Error _ -> ()
  | Ok inode ->
    let mkfd flags =
      let file = Kstate.new_file t (File.Vnode inode) ~flags in
      ignore (Kstate.install_fd t proc file)
    in
    mkfd Flags.Open.o_rdonly;
    mkfd Flags.Open.o_wronly;
    mkfd Flags.Open.o_wronly

(* Register and enqueue a session's init process without scheduling
   anything yet; [boot] runs it to completion, a cluster enqueues one
   per shard and drives them all. *)
let spawn_init (t : t) ~name body =
  let pid = Kstate.alloc_pid t in
  let proc =
    Proc.create ~pid ~ppid:0 ~pgrp:pid ~name
      ~cred:Vfs.Fs.root_cred ~cwd:(Vfs.Fs.root_ino t.fs)
  in
  Kstate.add_proc t proc;
  open_tty_fds t proc;
  enqueue_start t proc body;
  proc

let boot (t : t) ~name body =
  enter t;
  let proc = spawn_init t ~name body in
  sched_loop t;
  proc.Proc.exit_status

(* --- host-side filesystem helpers -------------------------------------------- *)

let fs (t : t) = t.fs
let clock (t : t) = t.clock

let mkdir_p (t : t) path =
  let comps = List.filter (fun s -> s <> "") (String.split_on_char '/' path) in
  let root = Vfs.Fs.root_ino t.fs in
  ignore
    (List.fold_left
       (fun prefix comp ->
         let dir = prefix ^ "/" ^ comp in
         (match
            Vfs.Fs.mkdir t.fs Vfs.Fs.root_cred ~cwd:root dir ~perm:0o755
          with
          | Ok _ | Error Errno.EEXIST -> ()
          | Error e ->
            invalid_arg
              (Printf.sprintf "mkdir_p %s: %s" dir (Errno.name e)));
         dir)
       "" comps)

let write_file (t : t) ~path ?(perm = 0o644) content =
  mkdir_p t (Filename.dirname path);
  let root = Vfs.Fs.root_ino t.fs in
  match
    Vfs.Fs.open_lookup t.fs Vfs.Fs.root_cred ~cwd:root path
      ~flags:Flags.Open.(o_wronly lor o_creat lor o_trunc)
      ~perm
  with
  | Error e ->
    invalid_arg (Printf.sprintf "write_file %s: %s" path (Errno.name e))
  | Ok (inode, _) ->
    (match inode.Vfs.Inode.kind with
     | Vfs.Inode.Reg data ->
       ignore (Vfs.Filedata.write data ~pos:0 content);
       inode.Vfs.Inode.perm <- perm
     | _ -> invalid_arg "write_file: not a regular file")

let read_file (t : t) path =
  let root = Vfs.Fs.root_ino t.fs in
  match Vfs.Fs.resolve t.fs Vfs.Fs.root_cred ~cwd:root path with
  | Error _ -> None
  | Ok inode ->
    (match inode.Vfs.Inode.kind with
     | Vfs.Inode.Reg data -> Some (Vfs.Filedata.to_string data)
     | _ -> None)

let exists (t : t) path =
  let root = Vfs.Fs.root_ino t.fs in
  Result.is_ok (Vfs.Fs.resolve t.fs Vfs.Fs.root_cred ~cwd:root path)

let install_image (t : t) ~path ~image =
  write_file t ~path ~perm:0o755 (Registry.file_content image)

let populate_standard (t : t) =
  let root = Vfs.Fs.root_ino t.fs in
  mkdir_p t "/dev";
  mkdir_p t "/tmp";
  mkdir_p t "/bin";
  mkdir_p t "/usr/bin";
  mkdir_p t "/etc";
  mkdir_p t "/home";
  (match Vfs.Fs.resolve t.fs Vfs.Fs.root_cred ~cwd:root "/tmp" with
   | Ok inode -> inode.Vfs.Inode.perm <- 0o1777
   | Error _ -> ());
  let dev path rdev =
    match
      Vfs.Fs.mkchardev t.fs Vfs.Fs.root_cred ~cwd:root path ~perm:0o666 ~rdev
    with
    | Ok _ | Error Errno.EEXIST -> ()
    | Error e ->
      invalid_arg (Printf.sprintf "mknod %s: %s" path (Errno.name e))
  in
  dev "/dev/null" Dev.rdev_null;
  dev "/dev/zero" Dev.rdev_zero;
  dev "/dev/tty" Dev.rdev_tty;
  dev "/dev/console" Dev.rdev_console;
  write_file t ~path:"/etc/motd"
    "4.3 BSD UNIX (simulated) -- interposition agents welcome\n"

(* --- console and misc --------------------------------------------------------- *)

let console_output (t : t) = Dev.Console.contents t.console
let clear_console (t : t) = Dev.Console.clear t.console
let feed_console (t : t) s = Dev.Console.feed t.console s
let echo_console_to (t : t) f = Dev.Console.set_echo t.console f

let elapsed_seconds (t : t) = Sim.Clock.seconds t.clock
let total_syscalls = Kstate.total_syscalls
let deadlock_kills (t : t) = t.deadlock_kills
let shard_id (t : t) = t.shard_id

let registry (t : t) = t.registry
let register_image (t : t) name image = Registry.register t.registry name image

let codec_stats (t : t) = Envelope.Stats.snapshot_of t.codec
let reset_codec_stats (t : t) = Envelope.Stats.reset_of t.codec

let pool_stats (t : t) = Value.Pool.Stats.snapshot_of t.pool_stats
let env_pool_stats (t : t) = Envelope.Pool.Stats.snapshot_of t.epool_stats

let fused (t : t) = t.fused_dispatch
let set_fused (t : t) on = t.fused_dispatch <- on

let metrics (t : t) = Obs.metrics_of t.obs

(* --- host-side cost estimates ------------------------------------------------ *)

(* Raw-speed counters next to the virtual tables: how much *host* CPU
   and allocation the shard has burned per simulated trap since its
   creation.  [Sys.time]/GC counters are process-wide (this library
   deliberately has no unix dependency), so these are estimates —
   exact when one shard dominates the process, which is the common
   deployment; the bench hostspeed harness measures tight windows with
   its own clocks when precision matters. *)
type host_stats = {
  h_traps : int;
  h_cpu_s : float;              (* process CPU since shard creation *)
  h_ns_per_trap : float;
  h_minor_words_per_trap : float;
  h_promoted_words : float;
  h_major_collections : int;
  h_wire_pool_hit_rate : float;   (* hits / (hits + misses); 1.0 when idle *)
  h_env_pool_hit_rate : float;
}

let host_stats (t : t) =
  let q = Gc.quick_stat () in
  let traps = (Envelope.Stats.snapshot_of t.codec).Envelope.Stats.traps in
  let cpu = Sys.time () -. t.host_cpu_t0 in
  let per d n = if d > 0 then n /. float_of_int d else 0.0 in
  let rate (hits : int) (misses : int) =
    let total = hits + misses in
    if total = 0 then 1.0 else float_of_int hits /. float_of_int total
  in
  let wp = Value.Pool.Stats.snapshot_of t.pool_stats in
  let ep = Envelope.Pool.Stats.snapshot_of t.epool_stats in
  { h_traps = traps;
    h_cpu_s = cpu;
    h_ns_per_trap = per traps (cpu *. 1e9);
    h_minor_words_per_trap =
      per traps (Gc.minor_words () -. t.host_minor_words_t0);
    h_promoted_words = q.Gc.promoted_words -. t.host_promoted_words_t0;
    h_major_collections =
      q.Gc.major_collections - t.host_major_collections_t0;
    h_wire_pool_hit_rate =
      rate wp.Value.Pool.Stats.hits wp.Value.Pool.Stats.misses;
    h_env_pool_hit_rate =
      rate ep.Envelope.Pool.Stats.hits ep.Envelope.Pool.Stats.misses }

let host_stats_json (h : host_stats) =
  Obs.Json.Obj
    [ ("traps", Obs.Json.Int h.h_traps);
      ("cpu_s", Obs.Json.Float h.h_cpu_s);
      ("ns_per_trap", Obs.Json.Float h.h_ns_per_trap);
      ("minor_words_per_trap", Obs.Json.Float h.h_minor_words_per_trap);
      ("promoted_words", Obs.Json.Float h.h_promoted_words);
      ("major_collections", Obs.Json.Int h.h_major_collections);
      ("wire_pool_hit_rate", Obs.Json.Float h.h_wire_pool_hit_rate);
      ("env_pool_hit_rate", Obs.Json.Float h.h_env_pool_hit_rate) ]

(* One document for every runtime statistic of one shard: span/latency
   metrics from its [Obs] engine plus its codec (incl. [fast_path] and
   [fused]), wire-pool, envelope-pool and host-side counters.
   [/obs/metrics] serves exactly this JSON, so programs inside the
   simulation and hosts outside it read the same numbers. *)
(* --- watchdogs ---------------------------------------------------------------- *)

(* Rules live on the shard handle (never the obs engine), so they
   survive [Obs.reset] between workload phases and each shard of a
   cluster can carry its own set.  Evaluation adapts the metrics
   snapshot into the plain rows [Obs.Watch.eval] consumes — obs stays
   below the kernel and below abi. *)
let set_watch (t : t) rules = t.watch <- rules
let watch_rules (t : t) = t.watch

let watch_input_of (m : Obs.metrics) ~env_pool_misses =
  { Obs.Watch.wi_sys =
      List.map
        (fun (s : Obs.syscall_metrics) ->
          { Obs.Watch.ws_sysno = s.Obs.sm_sysno;
            ws_calls = s.Obs.sm_calls;
            ws_errors = s.Obs.sm_errors;
            ws_p99_us = Obs.Hist.quantile s.Obs.sm_hist 0.99 })
        m.Obs.m_syscalls;
    wi_aborted = m.Obs.m_aborted;
    wi_env_pool_misses = env_pool_misses }

let watch_verdicts (t : t) =
  let misses =
    (Envelope.Pool.Stats.snapshot_of t.epool_stats).Envelope.Pool.Stats.misses
  in
  Obs.Watch.eval t.watch (watch_input_of (Obs.metrics_of t.obs) ~env_pool_misses:misses)

let metrics_json (t : t) =
  let base = Obs.metrics_to_json ~name:Abi.Sysno.name (Obs.metrics_of t.obs) in
  let codec = Envelope.Stats.to_json (Envelope.Stats.snapshot_of t.codec) in
  let pool = Value.Pool.Stats.to_json (Value.Pool.Stats.snapshot_of t.pool_stats) in
  let epool =
    Envelope.Pool.Stats.to_json (Envelope.Pool.Stats.snapshot_of t.epool_stats)
  in
  let host = host_stats_json (host_stats t) in
  let watchdogs = Obs.Watch.verdicts_to_json (watch_verdicts t) in
  match base with
  | Obs.Json.Obj fields ->
    Obs.Json.Obj
      (fields
      @ [ ("codec", codec); ("wire_pool", pool); ("env_pool", epool);
          ("host", host); ("watchdogs", watchdogs) ])
  | other -> other
let drain_obs (t : t) = Obs.drain_of t.obs
let obs_engine (t : t) = t.obs

let causal_edges (t : t) = Obs.causal_edges_of t.obs
let drain_causal (t : t) = Obs.causal_drain_of t.obs

(* A human label for chrome's process rows: the image (or init-body)
   name when the pid is still in the table, the bare pid otherwise
   (exited processes keep their spans). *)
let pid_label (t : t) pid =
  match Kstate.proc t pid with
  | Some p -> Printf.sprintf "pid %d %s" pid p.Proc.name
  | None -> Printf.sprintf "pid %d" pid

let post_signal (t : t) ~pid s =
  match Kstate.proc t pid with
  | Some proc -> Kstate.post_signal t proc s
  | None -> ()

let set_trace_hook = Kstate.set_trace_hook

(* --- deterministic multi-shard driver ----------------------------------------- *)

(* N single-domain shards with independent virtual clocks, stepped
   round-robin in shard-id order over fixed virtual-time quanta.
   Cross-shard events (signals, for now) are mailed with a (virtual
   send time, sender shard, sequence) stamp and delivered at quantum
   boundaries sorted by exactly that triple — a deterministic function
   of simulation state alone, so an N-shard run is byte-reproducible
   (DESIGN.md §3.6). *)
module Cluster = struct
  (* Besides the delivery payload, a signal mail carries its causal
     origin — (shard, span, pid) of the sender at [send] time — so the
     receiving shard can record a cross-shard Signal edge before
     posting (DESIGN.md §3.9).  [o_span] may be a sampler sentinel;
     edge recording keeps it verbatim. *)
  type event =
    | Post_signal of
        { pid : int; signal : int; o_shard : int; o_span : int; o_pid : int }

  type mail = {
    m_ts : int;   (* sender's virtual clock at send *)
    m_src : int;  (* sender shard id: the deterministic tie-break *)
    m_seq : int;  (* per-cluster sequence: total order within (ts, src) *)
    m_dst : int;
    m_ev : event;
  }

  type nonrec t = {
    shards : t array;
    quantum_us : int;
    mutable mailbox : mail list;
    mutable seq : int;
  }

  (* The cluster currently being driven by [run], for in-fibre [send]
     (allowlisted global; installed/restored by [run]). *)
  let running : t option ref = ref None

  let default_quantum_us = 50_000

  let create ?(quantum_us = default_quantum_us) ~shards:n () =
    if n < 1 then invalid_arg "Cluster.create: need at least one shard";
    if quantum_us < 1 then invalid_arg "Cluster.create: quantum must be positive";
    { shards = Array.init n (fun i -> create ~shard_id:i ());
      quantum_us; mailbox = []; seq = 0 }

  let shards c = Array.length c.shards
  let shard c i = c.shards.(i)

  let boot_shard c i ~name body =
    let t = c.shards.(i) in
    with_shard t (fun () -> spawn_init t ~name body)

  let send ~dst ~pid ~signal =
    match !running with
    | None -> invalid_arg "Cluster.send: no cluster is running"
    | Some c ->
      if dst < 0 || dst >= Array.length c.shards then
        invalid_arg "Cluster.send: no such shard";
      let src = current_exn () in
      (* runs in the sending fibre, its engine installed: the origin
         stamp is the sender's innermost open span *)
      let o_shard, o_span, o_pid = Obs.causal_origin () in
      c.seq <- c.seq + 1;
      c.mailbox <-
        { m_ts = Sim.Clock.now_us src.Kstate.clock;
          m_src = src.Kstate.shard_id;
          m_seq = c.seq;
          m_dst = dst;
          m_ev = Post_signal { pid; signal; o_shard; o_span; o_pid } }
        :: c.mailbox

  let deliver c horizon =
    let due, later =
      List.partition (fun m -> m.m_ts <= horizon) c.mailbox
    in
    c.mailbox <- later;
    match due with
    | [] -> false
    | due ->
      let due =
        List.sort
          (fun a b ->
            compare (a.m_ts, a.m_src, a.m_seq) (b.m_ts, b.m_src, b.m_seq))
          due
      in
      List.iter
        (fun m ->
          let dst = c.shards.(m.m_dst) in
          with_shard dst (fun () ->
            match m.m_ev with
            | Post_signal { pid; signal; o_shard; o_span; o_pid } ->
              (* queue the sender's half-edge under the *receiving*
                 shard's engine before posting: delivery in uspace then
                 completes it exactly as a local kill would *)
              Obs.causal_signal_send_remote ~src_shard:o_shard
                ~src_span:o_span ~src_pid:o_pid ~dst_pid:pid ~signal;
              post_signal dst ~pid signal))
        due;
      true

  let run c =
    let prev = !running in
    running := Some c;
    Fun.protect ~finally:(fun () -> running := prev) @@ fun () ->
    let n = Array.length c.shards in
    (* Run every shard up to [horizon], re-delivering any mail that
       lands inside the window, until the whole cluster is quiescent at
       this horizon.  Returns the earliest future wake-up. *)
    let rec drain_horizon horizon =
      let next = ref max_int in
      for i = 0 to n - 1 do
        let t = c.shards.(i) in
        with_shard t (fun () ->
          match step t ~until:horizon with
          | `Sleep_until at -> if at < !next then next := at
          | `Idle -> ())
      done;
      if deliver c horizon then drain_horizon horizon
      else begin
        List.iter (fun m -> if m.m_ts < !next then next := m.m_ts) c.mailbox;
        !next
      end
    in
    let rec rounds horizon =
      let next = drain_horizon horizon in
      if next < max_int then
        (* jump idle gaps, but never retreat: each new horizon is at
           least a quantum past the old one *)
        rounds (max next (horizon + c.quantum_us))
    in
    rounds c.quantum_us;
    (* quiescent everywhere: give each shard its straggler pass
       (deadlocked processes are killed exactly as under [boot]) *)
    Array.iter (fun t -> with_shard t (fun () -> sched_loop t)) c.shards

  (* --- cluster-wide observability ------------------------------------- *)

  let metrics c =
    Obs.merge_metrics
      (Array.to_list
         (Array.map (fun s -> Obs.metrics_of s.Kstate.obs) c.shards))

  (* Same document shape as the per-shard [metrics_json], with codec
     and wire-pool counters summed field-by-field across shards and a
     [shards] field recording the fan-in. *)
  let metrics_json c =
    let base = Obs.metrics_to_json ~name:Abi.Sysno.name (metrics c) in
    let codec =
      Array.fold_left
        (fun (acc : Envelope.Stats.snapshot) s ->
          let x = Envelope.Stats.snapshot_of s.Kstate.codec in
          {
            Envelope.Stats.traps = acc.traps + x.traps;
            intercepted = acc.intercepted + x.intercepted;
            fused = acc.fused + x.fused;
            fast_path = acc.fast_path + x.fast_path;
            decodes = acc.decodes + x.decodes;
            encodes = acc.encodes + x.encodes;
            crossings = acc.crossings + x.crossings;
            agent_calls = acc.agent_calls + x.agent_calls;
          })
        {
          Envelope.Stats.traps = 0;
          intercepted = 0;
          fused = 0;
          fast_path = 0;
          decodes = 0;
          encodes = 0;
          crossings = 0;
          agent_calls = 0;
        }
        c.shards
    in
    let pool =
      Array.fold_left
        (fun (acc : Value.Pool.Stats.snapshot) s ->
          let x = Value.Pool.Stats.snapshot_of s.Kstate.pool_stats in
          {
            Value.Pool.Stats.hits = acc.hits + x.hits;
            misses = acc.misses + x.misses;
            recycled = acc.recycled + x.recycled;
            dropped = acc.dropped + x.dropped;
          })
        { Value.Pool.Stats.hits = 0; misses = 0; recycled = 0; dropped = 0 }
        c.shards
    in
    let epool =
      Array.fold_left
        (fun (acc : Envelope.Pool.Stats.snapshot) s ->
          let x = Envelope.Pool.Stats.snapshot_of s.Kstate.epool_stats in
          {
            Envelope.Pool.Stats.hits = acc.hits + x.hits;
            misses = acc.misses + x.misses;
            recycled = acc.recycled + x.recycled;
            dropped = acc.dropped + x.dropped;
          })
        { Envelope.Pool.Stats.hits = 0; misses = 0; recycled = 0;
          dropped = 0 }
        c.shards
    in
    (* Cluster watchdogs: shard 0's rules (the cluster driver installs
       rule sets shard-by-shard; by convention shard 0 carries the
       cluster-wide set) evaluated over the *merged* metrics and the
       summed envelope-pool misses. *)
    let watchdogs =
      Obs.Watch.verdicts_to_json
        (Obs.Watch.eval c.shards.(0).Kstate.watch
           (watch_input_of (metrics c)
              ~env_pool_misses:epool.Envelope.Pool.Stats.misses))
    in
    match base with
    | Obs.Json.Obj fields ->
      Obs.Json.Obj
        (fields
        @ [
            ("codec", Envelope.Stats.to_json codec);
            ("wire_pool", Value.Pool.Stats.to_json pool);
            ("env_pool", Envelope.Pool.Stats.to_json epool);
            ("shards", Obs.Json.Int (Array.length c.shards));
            ("watchdogs", watchdogs);
          ])
    | other -> other

  (* Per-shard record streams, tagged with shard ids — the shape
     [Obs.Chrome.to_json_sharded] consumes for disjoint trace lanes. *)
  let drain_obs c =
    Array.to_list
      (Array.mapi (fun i s -> (i, Obs.drain_of s.Kstate.obs)) c.shards)

  (* The cluster-wide causal graph: every shard's edge table, merged
     and sorted by (virtual time, recording shard, seq) — the same
     total order the mailbox uses, so two same-seed runs produce
     byte-identical edge lists. *)
  let causal_edges c =
    Obs.Causal.sort
      (List.concat_map
         (fun s -> Obs.causal_edges_of s.Kstate.obs)
         (Array.to_list c.shards))

  let drain_causal c =
    Obs.Causal.sort
      (List.concat_map
         (fun s -> Obs.causal_drain_of s.Kstate.obs)
         (Array.to_list c.shards))
end
