(** The executable-image registry.

    The original runs unmodified binaries; our "binaries" are OCaml
    closures registered here by name.  An executable file in the
    simulated filesystem contains the marker line [#!IMAGE <name>];
    [execve] reads the file, extracts the name and builds the process
    body from the registered image.  Programs therefore live in the
    filesystem with real permission bits, and agents can interpose on
    the [open]/[read] the kernel (or the toolkit's reimplemented
    execve) performs to load them. *)

type image = argv:string array -> envp:string array -> unit -> int
(** Builds a program body from its argument and environment vectors.
    The body returns the process exit code. *)

type t
(** One registry per kernel shard (DESIGN.md §3.6).  Registering
    against one kernel leaves every other kernel — sequential or
    coexisting — unaffected; reach a kernel's registry via
    [Kernel.registry], or register directly with
    [Kernel.register_image]. *)

val create : unit -> t
(** An empty registry ([Kstate.create] calls this). *)

val register : t -> string -> image -> unit
(** Idempotent by name: later registrations replace earlier ones. *)

val lookup : t -> string -> image option

val registered : t -> string list
(** Sorted names, for diagnostics. *)

val file_content : string -> string
(** The file content marking an executable image, [#!IMAGE <name>\n]. *)

val image_of_content : string -> string option
(** Parse {!file_content}; [None] if the file is not an executable
    image (the kernel then fails [execve] with [ENOEXEC]). *)
