open Abi
open Kstate

let ( let* ) = Result.bind

let done_ret ?r1 v = Done (Value.ret ?r1 v)
let fail e = Done (Error e)

let of_unit = function
  | Ok () -> done_ret 0
  | Error e -> fail e

(* --- descriptor helpers ------------------------------------------------- *)

let fd_entry (p : Proc.t) fd =
  match Proc.fd p fd with
  | Some e -> Ok e
  | None -> Error Errno.EBADF

let fd_file p fd =
  let* e = fd_entry p fd in
  Ok e.File.file

let driver t (inode : Vfs.Inode.t) =
  match inode.kind with
  | Vfs.Inode.Chardev rdev ->
    (match Dev.lookup t.devs rdev with
     | Some ops -> Ok ops
     | None -> Error Errno.ENXIO)
  | _ -> Error Errno.ENODEV

(* --- read --------------------------------------------------------------- *)

let nonblocking (f : File.t) = f.flags land Flags.Open.o_nonblock <> 0

let pipe_read t (p : Proc.t) (f : File.t) buf cnt ~(buffer : Vfs.Pipebuf.t)
    ~chan ~wake ~cond =
  (* a zero-length read is complete by definition — without this early
     return it would fall through the n = 0 branches below and block a
     blocking reader forever while writers are still alive *)
  if cnt = 0 then done_ret 0
  else
    let n = Vfs.Pipebuf.read buffer buf ~off:0 ~len:cnt in
    if n > 0 then begin
      (* causal hook (DESIGN.md §3.9): advance the channel's consume
         watermark — links this read's span to the writes that produced
         these bytes.  Pure bookkeeping, charges no virtual time. *)
      Obs.causal_pipe_read ~chan ~pid:p.pid ~bytes:n;
      wake_key t wake;
      done_ret n
    end
    (* n = 0 with cnt > 0 means the buffer is drained, so this is EOF
       exactly when no writer remains: buffered bytes always win over
       the EOF check, a reader never loses data to a racing close *)
    else if Vfs.Pipebuf.writers buffer = 0 then done_ret 0 (* EOF *)
    else if nonblocking f then fail Errno.EWOULDBLOCK
    else Block cond

(* A connection endpoint reads its receive pipe.  After [shutdown]
   of the read half our reader reference is gone, so anything still
   buffered is unreachable: the read side is simply at EOF.  The
   causal channel is per-connection-direction ("sock", pipe id) so
   request and reply bytes form distinct lanes in the event graph. *)
let conn_read t (p : Proc.t) (f : File.t) (c : File.conn) buf cnt =
  if c.File.shut_rd then done_ret 0
  else
    pipe_read t p f buf cnt ~buffer:c.File.rx.buf
      ~chan:("sock", c.File.rx.pipe_id)
      ~wake:(K_pipe_w c.File.rx.pipe_id)
      ~cond:(Proc.On_pipe_read c.File.rx.pipe_id)

let do_read t (p : Proc.t) fd buf cnt =
  if cnt < 0 then fail Errno.EINVAL
  else
    match fd_file p fd with
    | Error e -> fail e
    | Ok f ->
      if not (File.is_readable f) then fail Errno.EBADF
      else begin
        let cnt = min cnt (Bytes.length buf) in
        match f.kind with
        | File.Vnode inode ->
          (match inode.kind with
           | Vfs.Inode.Reg data ->
             let n = Vfs.Filedata.read data ~pos:f.offset buf ~off:0 ~len:cnt in
             f.offset <- f.offset + n;
             Vfs.Fs.touch_atime t.fs inode;
             done_ret n
           | Vfs.Inode.Dir _ -> fail Errno.EISDIR
           | Vfs.Inode.Chardev _ ->
             (match driver t inode with
              | Error e -> fail e
              | Ok ops -> done_ret (ops.Dev.read buf ~off:0 ~len:cnt))
           | Vfs.Inode.Symlink _ -> fail Errno.EINVAL
           | Vfs.Inode.Fifo _ -> fail Errno.EBADF)
        | File.Pipe_read pipe ->
          pipe_read t p f buf cnt ~buffer:pipe.buf
            ~chan:("pipe", pipe.pipe_id)
            ~wake:(K_pipe_w pipe.pipe_id)
            ~cond:(Proc.On_pipe_read pipe.pipe_id)
        | File.Fifo_read (inode, buffer) ->
          pipe_read t p f buf cnt ~buffer
            ~chan:("fifo", inode.ino)
            ~wake:(K_fifo_w inode.ino)
            ~cond:(Proc.On_fifo_read inode.ino)
        | File.Sock s ->
          (match s.File.sock with
           | File.S_conn c -> conn_read t p f c buf cnt
           | File.S_fresh | File.S_bound _ | File.S_listening _ ->
             fail Errno.ENOTCONN)
        | File.Pipe_write _ | File.Fifo_write _ -> fail Errno.EBADF
      end

(* --- write -------------------------------------------------------------- *)

let pipe_write t (p : Proc.t) (f : File.t) data ~(buffer : Vfs.Pipebuf.t)
    ~chan ~wake ~cond =
  if Vfs.Pipebuf.readers buffer = 0 then begin
    post_signal t p Signal.sigpipe;
    fail Errno.EPIPE
  end
  else begin
    let n = Vfs.Pipebuf.write buffer data ~pos:0 in
    if n > 0 then begin
      (* causal hook: stamp the accepted byte interval with this
         write's span so the consuming read can link back to it *)
      Obs.causal_pipe_write ~chan ~pid:p.pid ~bytes:n;
      wake_key t wake;
      done_ret n
    end
    else if nonblocking f then fail Errno.EWOULDBLOCK
    else Block cond
  end

(* A connection endpoint writes its send pipe.  A locally shut write
   half is a broken pipe regardless of the peer's state — the reference
   that would let these bytes be delivered is already gone. *)
let conn_write t (p : Proc.t) (f : File.t) (c : File.conn) data =
  if c.File.shut_wr then begin
    post_signal t p Signal.sigpipe;
    fail Errno.EPIPE
  end
  else
    pipe_write t p f data ~buffer:c.File.tx.buf
      ~chan:("sock", c.File.tx.pipe_id)
      ~wake:(K_pipe_r c.File.tx.pipe_id)
      ~cond:(Proc.On_pipe_write c.File.tx.pipe_id)

let do_write t (p : Proc.t) fd data =
  match fd_file p fd with
  | Error e -> fail e
  | Ok f ->
    if not (File.is_writable f) then fail Errno.EBADF
    else begin
      match f.kind with
      | File.Vnode inode ->
        (match inode.kind with
         | Vfs.Inode.Reg filedata ->
           let pos =
             if f.flags land Flags.Open.o_append <> 0
             then Vfs.Filedata.size filedata
             else f.offset
           in
           let n = Vfs.Filedata.write filedata ~pos data in
           f.offset <- pos + n;
           Vfs.Fs.touch_mtime t.fs inode;
           done_ret n
         | Vfs.Inode.Chardev _ ->
           (match driver t inode with
            | Error e -> fail e
            | Ok ops -> done_ret (ops.Dev.write data))
         | Vfs.Inode.Dir _ -> fail Errno.EISDIR
         | Vfs.Inode.Symlink _ | Vfs.Inode.Fifo _ -> fail Errno.EBADF)
      | File.Pipe_write pipe ->
        pipe_write t p f data ~buffer:pipe.buf
          ~chan:("pipe", pipe.pipe_id)
          ~wake:(K_pipe_r pipe.pipe_id)
          ~cond:(Proc.On_pipe_write pipe.pipe_id)
      | File.Fifo_write (inode, buffer) ->
        pipe_write t p f data ~buffer
          ~chan:("fifo", inode.ino)
          ~wake:(K_fifo_r inode.ino)
          ~cond:(Proc.On_fifo_write inode.ino)
      | File.Sock s ->
        (match s.File.sock with
         | File.S_conn c -> conn_write t p f c data
         | File.S_fresh | File.S_bound _ | File.S_listening _ ->
           fail Errno.ENOTCONN)
      | File.Pipe_read _ | File.Fifo_read _ -> fail Errno.EBADF
    end

(* --- open / close ------------------------------------------------------- *)

let do_open t (p : Proc.t) path flags mode =
  let perm = mode land lnot p.umask land 0o7777 in
  match
    Vfs.Fs.open_lookup t.fs (cred p) ~cwd:p.cwd path ~flags ~perm
  with
  | Error e -> fail e
  | Ok (inode, _created) ->
    let kind_result =
      match inode.Vfs.Inode.kind with
      | Vfs.Inode.Fifo buffer ->
        (match Flags.Open.accmode flags with
         | 0 -> Ok (File.Fifo_read (inode, buffer))
         | 1 -> Ok (File.Fifo_write (inode, buffer))
         | _ -> Error Errno.EINVAL)  (* no O_RDWR fifos here *)
      | Vfs.Inode.Reg _ | Vfs.Inode.Dir _ | Vfs.Inode.Chardev _ ->
        Ok (File.Vnode inode)
      | Vfs.Inode.Symlink _ -> Error Errno.ELOOP
    in
    (match kind_result with
     | Error e -> fail e
     | Ok kind ->
       let file = new_file t kind ~flags in
       (match install_fd t p file with
        | Ok fd -> done_ret fd
        | Error e ->
          release_file t file;
          fail e))

(* --- seek, dup, fcntl ---------------------------------------------------- *)

let do_lseek (p : Proc.t) fd off whence =
  match fd_file p fd with
  | Error e -> fail e
  | Ok f ->
    match f.kind with
    | File.Pipe_read _ | File.Pipe_write _ | File.Sock _
    | File.Fifo_read _ | File.Fifo_write _ -> fail Errno.ESPIPE
    | File.Vnode inode ->
      let size = Vfs.Inode.size inode in
      let base =
        if whence = Flags.Seek.set then Some 0
        else if whence = Flags.Seek.cur then Some f.offset
        else if whence = Flags.Seek.end_ then Some size
        else None
      in
      match base with
      | None -> fail Errno.EINVAL
      | Some b ->
        let pos = b + off in
        if pos < 0 then fail Errno.EINVAL
        else begin
          f.offset <- pos;
          done_ret pos
        end

let do_dup t (p : Proc.t) fd ~from =
  match fd_entry p fd with
  | Error e -> fail e
  | Ok e ->
    retain_file e.File.file;
    (match install_fd t p ~from e.File.file with
     | Ok nfd -> done_ret nfd
     | Error err ->
       release_file t e.File.file;
       fail err)

let do_dup2 t (p : Proc.t) ofd nfd =
  match fd_entry p ofd with
  | Error e -> fail e
  | Ok e ->
    if nfd < 0 || nfd >= Array.length p.fds then fail Errno.EBADF
    else if ofd = nfd then done_ret nfd
    else begin
      (match Proc.fd p nfd with
       | Some old ->
         p.fds.(nfd) <- None;
         release_file t old.File.file
       | None -> ());
      retain_file e.File.file;
      p.fds.(nfd) <- Some { File.file = e.File.file; cloexec = false };
      done_ret nfd
    end

let do_fcntl t (p : Proc.t) fd cmd arg =
  match fd_entry p fd with
  | Error e -> fail e
  | Ok e ->
    if cmd = Flags.Fcntl.f_dupfd then do_dup t p fd ~from:arg
    else if cmd = Flags.Fcntl.f_getfd then
      done_ret (if e.File.cloexec then Flags.Fcntl.fd_cloexec else 0)
    else if cmd = Flags.Fcntl.f_setfd then begin
      e.File.cloexec <- arg land Flags.Fcntl.fd_cloexec <> 0;
      done_ret 0
    end
    else if cmd = Flags.Fcntl.f_getfl then done_ret e.File.file.flags
    else if cmd = Flags.Fcntl.f_setfl then begin
      let changeable = Flags.Open.o_append lor Flags.Open.o_nonblock in
      let f = e.File.file in
      f.flags <- f.flags land lnot changeable lor (arg land changeable);
      done_ret 0
    end
    else fail Errno.EINVAL

(* --- directories --------------------------------------------------------- *)

let do_getdirentries t (p : Proc.t) fd buf =
  match fd_file p fd with
  | Error e -> fail e
  | Ok f ->
    match f.kind with
    | File.Vnode inode when Vfs.Inode.is_dir inode ->
      let entries = Vfs.Inode.dir_entries inode in
      let total = List.length entries in
      let index = min f.offset total in
      let remaining = List.filteri (fun i _ -> i >= index) entries in
      let dirents =
        List.map
          (fun (name, ino) -> { Dirent.d_ino = ino; d_name = name })
          remaining
      in
      let written, leftover = Dirent.encode_list buf dirents in
      if written = 0 && leftover <> [] then fail Errno.EINVAL
      else begin
        let consumed = List.length dirents - List.length leftover in
        f.offset <- index + consumed;
        Vfs.Fs.touch_atime t.fs inode;
        Done (Value.ret written ~r1:f.offset)
      end
    | File.Vnode _ | File.Pipe_read _ | File.Pipe_write _ | File.Sock _
    | File.Fifo_read _ | File.Fifo_write _ -> fail Errno.ENOTDIR

(* --- stat family ---------------------------------------------------------- *)

let fill_stat r st = r := Some st

let do_fstat t (p : Proc.t) fd r =
  match fd_file p fd with
  | Error e -> fail e
  | Ok f ->
    match f.kind with
    | File.Vnode inode | File.Fifo_read (inode, _)
    | File.Fifo_write (inode, _) ->
      fill_stat r (Vfs.Fs.stat_inode t.fs inode);
      done_ret 0
    | File.Pipe_read pipe | File.Pipe_write pipe ->
      let st =
        { Stat.zero with
          st_dev = 0;
          st_ino = 0x10000 + pipe.pipe_id;
          st_mode = Flags.Mode.ififo lor 0o600;
          st_nlink = 1;
          st_size = Vfs.Pipebuf.available pipe.buf }
      in
      fill_stat r st;
      done_ret 0
    | File.Sock s ->
      let ino, size =
        match s.File.sock with
        | File.S_conn c ->
          0x20000 + c.File.rx.pipe_id, Vfs.Pipebuf.available c.File.rx.buf
        | File.S_fresh | File.S_bound _ | File.S_listening _ ->
          0x20000 + f.id, 0
      in
      let st =
        { Stat.zero with
          st_dev = 0;
          st_ino = ino;
          st_mode = Flags.Mode.ifsock lor 0o600;
          st_nlink = 1;
          st_size = size }
      in
      fill_stat r st;
      done_ret 0

(* --- ioctl ----------------------------------------------------------------- *)

let do_ioctl t (p : Proc.t) fd op buf =
  match fd_file p fd with
  | Error e -> fail e
  | Ok f ->
    let set_int32 v =
      if Bytes.length buf >= 4 then begin
        Bytes.set_int32_le buf 0 (Int32.of_int v);
        done_ret 0
      end
      else fail Errno.EFAULT
    in
    if op = Flags.Ioctl.fionread then
      match f.kind with
      | File.Pipe_read pipe -> set_int32 (Vfs.Pipebuf.available pipe.buf)
      | File.Fifo_read (_, buffer) -> set_int32 (Vfs.Pipebuf.available buffer)
      | File.Sock s ->
        (match s.File.sock with
         | File.S_conn c -> set_int32 (Vfs.Pipebuf.available c.File.rx.buf)
         | File.S_listening (_, l) ->
           (* by analogy with FIONREAD on a listener: connections ready
              to accept *)
           set_int32 (Queue.length l.File.pending)
         | File.S_fresh | File.S_bound _ -> set_int32 0)
      | File.Vnode inode ->
        (match inode.kind with
         | Vfs.Inode.Reg data ->
           set_int32 (max 0 (Vfs.Filedata.size data - f.offset))
         | _ -> fail Errno.ENOTTY)
      | File.Pipe_write _ | File.Fifo_write _ -> fail Errno.EINVAL
    else begin
      let tty_ops =
        match f.kind with
        | File.Vnode inode ->
          (match driver t inode with
           | Ok ops when ops.Dev.isatty -> Some ops
           | Ok _ | Error _ -> None)
        | _ -> None
      in
      if op = Flags.Ioctl.tiocisatty then
        match tty_ops with
        | Some _ -> done_ret 1
        | None -> fail Errno.ENOTTY
      else if op = Flags.Ioctl.tiocgwinsz then
        match tty_ops with
        | Some _ ->
          if Bytes.length buf >= 4 then begin
            Bytes.set_uint16_le buf 0 24;
            Bytes.set_uint16_le buf 2 80;
            done_ret 0
          end
          else fail Errno.EFAULT
        | None -> fail Errno.ENOTTY
      else fail Errno.EINVAL
    end

(* --- process management ----------------------------------------------------- *)

let do_fork t (p : Proc.t) body =
  let pid = alloc_pid t in
  let child = Proc.fork_copy p ~pid ~name:p.name in
  (* shared open files gain one reference per inherited descriptor *)
  Array.iter
    (function
      | Some (e : File.fd_entry) -> retain_file e.file
      | None -> ())
    child.fds;
  add_proc t child;
  (* causal hook: the parent's fork trap is the open span here; the
     edge completes at the child's first trap *)
  Obs.causal_fork ~parent:p.pid ~child:pid;
  t.hooks.spawn child body;
  Done (Value.ret pid ~r1:1)

let do_wait4 t (p : Proc.t) pid options =
  let kids = children t p in
  if kids = [] then fail Errno.ECHILD
  else begin
    let matches (c : Proc.t) =
      if pid > 0 then c.pid = pid
      else if pid = 0 then c.pgrp = p.pgrp
      else if pid = -1 then true
      else c.pgrp = -pid
    in
    let candidates = List.filter matches kids in
    if candidates = [] then fail Errno.ECHILD
    else
      match
        List.find_opt (fun (c : Proc.t) -> c.state = Proc.Zombie) candidates
      with
      | Some z ->
        z.state <- Proc.Reaped;
        Hashtbl.remove t.procs z.pid;
        Done (Value.ret z.pid ~r1:z.exit_status)
      | None ->
        let stopped =
          if options land Flags.Wait.wuntraced <> 0 then
            List.find_opt
              (fun (c : Proc.t) ->
                match c.state with Proc.Stopped _ -> true | _ -> false)
              candidates
          else None
        in
        (match stopped with
         | Some s ->
           Done (Value.ret s.pid ~r1:(Flags.Wait.stop_status Signal.sigstop))
         | None ->
           if options land Flags.Wait.wnohang <> 0 then done_ret 0
           else Block Proc.On_child)
  end

let may_signal (p : Proc.t) (q : Proc.t) =
  p.cred.uid = 0 || p.cred.uid = q.cred.uid

let do_kill t (p : Proc.t) pid s =
  if s < 0 || s > Signal.max_signal then fail Errno.EINVAL
  else begin
    let targets =
      if pid > 0 then
        match proc t pid with
        | Some q when q.state <> Proc.Reaped && q.state <> Proc.Zombie ->
          [ q ]
        | Some _ | None -> []
      else begin
        let pgrp =
          if pid = 0 then p.pgrp
          else if pid < -1 then -pid
          else (* -1: everybody except init and self *) -1
        in
        Hashtbl.fold
          (fun _ (q : Proc.t) acc ->
            let live =
              q.state <> Proc.Reaped && q.state <> Proc.Zombie
            in
            let selected =
              if pgrp = -1 then q.pid <> 1 && q.pid <> p.pid
              else q.pgrp = pgrp
            in
            if live && selected then q :: acc else acc)
          t.procs []
      end
    in
    match targets with
    | [] -> fail Errno.ESRCH
    | _ ->
      if List.for_all (fun q -> not (may_signal p q)) targets then
        fail Errno.EPERM
      else begin
        if s <> 0 then
          List.iter
            (fun q ->
              if may_signal p q then begin
                (* causal hook: kill-originated signals carry a sender
                   span; delivery completes the edge *)
                Obs.causal_signal_send ~src_pid:p.pid ~dst_pid:q.pid ~signal:s;
                post_signal t q s
              end)
            targets;
        done_ret 0
      end
  end

let do_execve t (p : Proc.t) path argv envp =
  let c = cred p in
  match Vfs.Fs.resolve t.fs c ~cwd:p.cwd path with
  | Error e -> fail e
  | Ok inode ->
    if not (Vfs.Fs.access_ok t.fs c inode Flags.Access.x_ok) then
      fail Errno.EACCES
    else begin
      match inode.Vfs.Inode.kind with
      | Vfs.Inode.Dir _ -> fail Errno.EACCES
      | Vfs.Inode.Symlink _ | Vfs.Inode.Chardev _ | Vfs.Inode.Fifo _ ->
        fail Errno.EACCES
      | Vfs.Inode.Reg data ->
        match Registry.image_of_content (Vfs.Filedata.to_string data) with
        | None -> fail Errno.ENOEXEC
        | Some image_name ->
          match Registry.lookup t.registry image_name with
          | None -> fail Errno.ENOEXEC
          | Some image ->
            let body = image ~argv ~envp in
            (* destructive half: this exec will happen *)
            Array.iteri
              (fun i entry ->
                match entry with
                | Some (e : File.fd_entry) when e.cloexec ->
                  p.fds.(i) <- None;
                  release_file t e.file
                | Some _ | None -> ())
              p.fds;
            for s = 1 to Signal.max_signal do
              match p.sigs.handlers.(s) with
              | Value.H_fn _ -> p.sigs.handlers.(s) <- Value.H_default
              | Value.H_default | Value.H_ignore -> ()
            done;
            p.alarm_at <- None;
            cancel_timers_for t p.pid;
            let exec_name =
              if Array.length argv > 0 then argv.(0) else image_name
            in
            p.name <- exec_name;
            Exec
              { Events.exec_name;
                exec_body = body;
                keep_emulation = false }
    end

(* --- signals ------------------------------------------------------------------ *)

let do_sigaction (p : Proc.t) s newh oldref =
  if not (Signal.is_valid s) then fail Errno.EINVAL
  else if (s = Signal.sigkill || s = Signal.sigstop) && newh <> None then
    fail Errno.EINVAL
  else begin
    (match oldref with
     | Some r -> r := Some (Proc.handler p s)
     | None -> ());
    (match newh with
     | Some h -> Proc.set_handler p s h
     | None -> ());
    done_ret 0
  end

let do_sigprocmask (p : Proc.t) how m =
  let old = p.sigs.mask in
  let m = Signal.Mask.sanitize m in
  if how = Flags.Sighow.sig_block then
    p.sigs.mask <- Signal.Mask.union old m
  else if how = Flags.Sighow.sig_unblock then
    p.sigs.mask <- old land lnot m
  else if how = Flags.Sighow.sig_setmask then p.sigs.mask <- m
  else ();
  if how < 1 || how > 3 then fail Errno.EINVAL else done_ret old

(* --- clock ----------------------------------------------------------------------- *)

let do_alarm t (p : Proc.t) sec =
  let now = Sim.Clock.now_us t.clock in
  let remaining =
    match p.alarm_at with
    | Some at when at > now -> (at - now + 999_999) / 1_000_000
    | Some _ | None -> 0
  in
  t.timers <-
    List.filter
      (fun (_, ev) ->
        match ev with
        | T_alarm pid -> pid <> p.pid
        | T_wake _ | T_select _ -> true)
      t.timers;
  if sec > 0 then begin
    let at = now + (sec * 1_000_000) in
    p.alarm_at <- Some at;
    add_timer t ~at (T_alarm p.pid)
  end
  else p.alarm_at <- None;
  done_ret remaining

let do_sleepus t (p : Proc.t) us =
  if us <= 0 then done_ret 0
  else begin
    let at = Sim.Clock.now_us t.clock + us in
    add_timer t ~at (T_wake p.pid);
    Block (Proc.On_time at)
  end

(* --- select ---------------------------------------------------------------- *)

let rec mask_fds mask fd acc =
  if fd > 62 then List.rev acc
  else
    mask_fds mask (fd + 1)
      (if mask land (1 lsl fd) <> 0 then fd :: acc else acc)

let fds_of_mask mask = mask_fds mask 0 []

let do_select t (p : Proc.t) rmask wmask tmo =
  let exception Bad_fd in
  let ready_r = ref 0 in
  let ready_w = ref 0 in
  let rpipes = ref [] in
  let wpipes = ref [] in
  let rfifos = ref [] in
  let wfifos = ref [] in
  let rlisten = ref [] in
  let buf_read_ready (b : Vfs.Pipebuf.t) =
    Vfs.Pipebuf.available b > 0 || Vfs.Pipebuf.writers b = 0
  in
  let buf_write_ready (b : Vfs.Pipebuf.t) =
    Vfs.Pipebuf.room b > 0 || Vfs.Pipebuf.readers b = 0
  in
  match
    List.iter
      (fun fd ->
        match Proc.fd p fd with
        | None -> raise Bad_fd
        | Some e ->
          (match e.File.file.kind with
           | File.Vnode _ -> ready_r := !ready_r lor (1 lsl fd)
           | File.Pipe_read pipe ->
             if buf_read_ready pipe.buf then
               ready_r := !ready_r lor (1 lsl fd)
             else rpipes := pipe.pipe_id :: !rpipes
           | File.Fifo_read (inode, b) ->
             if buf_read_ready b then ready_r := !ready_r lor (1 lsl fd)
             else rfifos := inode.ino :: !rfifos
           | File.Sock s ->
             (match s.File.sock with
              | File.S_conn c ->
                if c.File.shut_rd || buf_read_ready c.File.rx.buf then
                  ready_r := !ready_r lor (1 lsl fd)
                else rpipes := c.File.rx.pipe_id :: !rpipes
              | File.S_listening (_, l) ->
                (* readable = accept would not block *)
                if not (Queue.is_empty l.File.pending) || l.File.lclosed
                then ready_r := !ready_r lor (1 lsl fd)
                else rlisten := l.File.lid :: !rlisten
              | File.S_fresh | File.S_bound _ ->
                (* never readable: permanently not ready *)
                ())
           | File.Pipe_write _ | File.Fifo_write _ ->
             (* never readable: permanently not ready *)
             ()))
      (fds_of_mask rmask);
    List.iter
      (fun fd ->
        match Proc.fd p fd with
        | None -> raise Bad_fd
        | Some e ->
          (match e.File.file.kind with
           | File.Vnode _ -> ready_w := !ready_w lor (1 lsl fd)
           | File.Pipe_write pipe ->
             if buf_write_ready pipe.buf then
               ready_w := !ready_w lor (1 lsl fd)
             else wpipes := pipe.pipe_id :: !wpipes
           | File.Fifo_write (inode, b) ->
             if buf_write_ready b then ready_w := !ready_w lor (1 lsl fd)
             else wfifos := inode.ino :: !wfifos
           | File.Sock s ->
             (match s.File.sock with
              | File.S_conn c ->
                if c.File.shut_wr || buf_write_ready c.File.tx.buf then
                  ready_w := !ready_w lor (1 lsl fd)
                else wpipes := c.File.tx.pipe_id :: !wpipes
              | File.S_fresh | File.S_bound _ | File.S_listening _ -> ())
           | File.Pipe_read _ | File.Fifo_read _ -> ()))
      (fds_of_mask wmask)
  with
  | exception Bad_fd -> fail Errno.EBADF
  | () ->
    if !ready_r <> 0 || !ready_w <> 0 then begin
      cancel_select_timers t p.pid;
      Done (Value.ret !ready_r ~r1:!ready_w)
    end
    else if tmo = 0 then begin
      (* a pure poll: never arms a timer, but a retried select that
         polled its way out must still drop the deadline its original
         blocking incarnation armed *)
      cancel_select_timers t p.pid;
      Done (Value.ret 0 ~r1:0)
    end
    else begin
      (* arm the timeout once; retries keep the original deadline *)
      if tmo > 0 && not (has_select_timer t p.pid) then
        add_timer t
          ~at:(Sim.Clock.now_us t.clock + tmo)
          (T_select p.pid);
      Block
        (Proc.On_select
           { rpipes = !rpipes; wpipes = !wpipes; rfifos = !rfifos;
             wfifos = !wfifos; rlisten = !rlisten })
    end

(* --- sockets ---------------------------------------------------------------- *)

(* Stream sockets over the same machinery as pipes (DESIGN.md §3.10): a
   connection is a crossed pair of pipe buffers, a listening socket a
   bounded queue of established-but-unaccepted connections.  Addresses
   are flat names in a shard-wide namespace ([Kstate.bindings]); they
   are not filesystem paths, deliberately, so pathname-guarding agents
   leave them alone. *)

let sock_of (f : File.t) =
  match f.kind with
  | File.Sock s -> Ok s
  | File.Vnode _ | File.Pipe_read _ | File.Pipe_write _
  | File.Fifo_read _ | File.Fifo_write _ -> Error Errno.ENOTSOCK

let do_socket t (p : Proc.t) =
  let file =
    new_file t (File.Sock { File.sock = File.S_fresh })
      ~flags:Flags.Open.o_rdwr
  in
  match install_fd t p file with
  | Ok fd -> done_ret fd
  | Error e ->
    release_file t file;
    fail e

let do_bind t (p : Proc.t) fd addr =
  match Result.bind (fd_file p fd) sock_of with
  | Error e -> fail e
  | Ok s ->
    match s.File.sock with
    | File.S_fresh ->
      if addr = "" then fail Errno.EINVAL
      else if Hashtbl.mem t.bindings addr then fail Errno.EADDRINUSE
      else begin
        Hashtbl.replace t.bindings addr s;
        s.File.sock <- File.S_bound addr;
        done_ret 0
      end
    | File.S_bound _ | File.S_listening _ -> fail Errno.EINVAL
    | File.S_conn _ -> fail Errno.EISCONN

let do_listen t (p : Proc.t) fd backlog =
  match Result.bind (fd_file p fd) sock_of with
  | Error e -> fail e
  | Ok s ->
    match s.File.sock with
    | File.S_bound addr ->
      let l = new_listener t ~backlog in
      s.File.sock <- File.S_listening (addr, l);
      done_ret 0
    | File.S_listening _ -> done_ret 0  (* re-listen keeps the queue *)
    | File.S_fresh -> fail Errno.EINVAL (* must bind first *)
    | File.S_conn _ -> fail Errno.EISCONN

let do_accept t (p : Proc.t) fd =
  match fd_file p fd with
  | Error e -> fail e
  | Ok f ->
    match sock_of f with
    | Error e -> fail e
    | Ok s ->
      match s.File.sock with
      | File.S_listening (_, l) ->
        if not (Queue.is_empty l.File.pending) then begin
          let c = Queue.pop l.File.pending in
          let file =
            new_file t (File.Sock { File.sock = File.S_conn c })
              ~flags:Flags.Open.o_rdwr
          in
          match install_fd t p file with
          | Ok nfd ->
            (* the queue has room again: blocked connectors retry *)
            wake_key t (K_connq l.File.lid);
            done_ret nfd
          | Error e ->
            (* no descriptor for it — the adopted connection is reset *)
            release_file t file;
            wake_key t (K_connq l.File.lid);
            fail e
        end
        else if l.File.lclosed then fail Errno.EINVAL
        else if nonblocking f then fail Errno.EWOULDBLOCK
        else Block (Proc.On_accept l.File.lid)
      | File.S_fresh | File.S_bound _ -> fail Errno.EINVAL
      | File.S_conn _ -> fail Errno.EISCONN

let do_connect t (p : Proc.t) fd addr =
  match fd_file p fd with
  | Error e -> fail e
  | Ok f ->
    match sock_of f with
    | Error e -> fail e
    | Ok s ->
      match s.File.sock with
      | File.S_conn _ -> fail Errno.EISCONN
      | File.S_listening _ -> fail Errno.EINVAL
      | File.S_fresh | File.S_bound _ ->
        match Hashtbl.find_opt t.bindings addr with
        | None -> fail Errno.ECONNREFUSED
        | Some srv ->
          match srv.File.sock with
          | File.S_listening (_, l) when not l.File.lclosed ->
            if Queue.length l.File.pending >= l.File.backlog then begin
              if nonblocking f then fail Errno.EWOULDBLOCK
              else
                (* woken when an accept drains the queue (or the
                   listener dies — the retry then lands in
                   ECONNREFUSED above) *)
                Block (Proc.On_connq l.File.lid)
            end
            else begin
              let cli, srv_end = new_conn_pair t in
              (* a client that bound a name gives it up on connecting:
                 the S_conn state no longer carries the address the
                 final close would need to release *)
              (match s.File.sock with
               | File.S_bound a -> unbind t a s
               | _ -> ());
              s.File.sock <- File.S_conn cli;
              Queue.push srv_end l.File.pending;
              wake_key t (K_accept l.File.lid);
              done_ret 0
            end
          | _ ->
            (* bound but never listened, or already torn down *)
            fail Errno.ECONNREFUSED

let do_send t (p : Proc.t) fd data =
  match fd_file p fd with
  | Error e -> fail e
  | Ok f ->
    match sock_of f with
    | Error e -> fail e
    | Ok s ->
      match s.File.sock with
      | File.S_conn c -> conn_write t p f c data
      | File.S_fresh | File.S_bound _ | File.S_listening _ ->
        fail Errno.ENOTCONN

let do_recv t (p : Proc.t) fd buf cnt =
  if cnt < 0 then fail Errno.EINVAL
  else
    match fd_file p fd with
    | Error e -> fail e
    | Ok f ->
      match sock_of f with
      | Error e -> fail e
      | Ok s ->
        match s.File.sock with
        | File.S_conn c -> conn_read t p f c buf (min cnt (Bytes.length buf))
        | File.S_fresh | File.S_bound _ | File.S_listening _ ->
          fail Errno.ENOTCONN

let do_shutdown t (p : Proc.t) fd how =
  match Result.bind (fd_file p fd) sock_of with
  | Error e -> fail e
  | Ok s ->
    match s.File.sock with
    | File.S_conn c ->
      if how = Flags.Shut.rd then begin
        shut_conn_rd t c;
        done_ret 0
      end
      else if how = Flags.Shut.wr then begin
        shut_conn_wr t c;
        done_ret 0
      end
      else if how = Flags.Shut.rdwr then begin
        release_conn t c;
        done_ret 0
      end
      else fail Errno.EINVAL
    | File.S_fresh | File.S_bound _ | File.S_listening _ ->
      fail Errno.ENOTCONN

(* --- the dispatcher -------------------------------------------------------------- *)

let dispatch t (p : Proc.t) (call : Call.t) : outcome =
  let c = cred p in
  let cwd = p.cwd in
  let fs = t.fs in
  match call with
  | Call.Exit code ->
    do_exit t p (Flags.Wait.exit_status code);
    Exited
  | Call.Fork body -> do_fork t p body
  | Call.Read (fd, buf, cnt) -> do_read t p fd buf cnt
  | Call.Write (fd, data) -> do_write t p fd data
  | Call.Open (path, flags, mode) -> do_open t p path flags mode
  | Call.Creat (path, mode) ->
    do_open t p path
      Flags.Open.(o_wronly lor o_creat lor o_trunc)
      mode
  | Call.Close fd -> of_unit (close_fd t p fd)
  | Call.Wait4 (pid, options) -> do_wait4 t p pid options
  | Call.Link (existing, path) ->
    of_unit (Vfs.Fs.link fs c ~cwd ~existing path)
  | Call.Unlink path -> of_unit (Vfs.Fs.unlink fs c ~cwd path)
  | Call.Execve (path, argv, envp) -> do_execve t p path argv envp
  | Call.Chdir path ->
    (match Vfs.Fs.chdir_lookup fs c ~cwd path with
     | Ok inode ->
       p.cwd <- inode.Vfs.Inode.ino;
       done_ret 0
     | Error e -> fail e)
  | Call.Fchdir fd ->
    (match fd_file p fd with
     | Error e -> fail e
     | Ok f ->
       (match f.kind with
        | File.Vnode inode when Vfs.Inode.is_dir inode ->
          p.cwd <- inode.ino;
          done_ret 0
        | _ -> fail Errno.ENOTDIR))
  | Call.Mknod (path, mode, rdev) ->
    if p.cred.uid <> 0 && Flags.Mode.is_chr mode then fail Errno.EPERM
    else begin
      let perm = mode land lnot p.umask land 0o7777 in
      if Flags.Mode.is_chr mode then
        (match Vfs.Fs.mkchardev fs c ~cwd path ~perm ~rdev with
         | Ok _ -> done_ret 0
         | Error e -> fail e)
      else if Flags.Mode.is_fifo mode then
        (match Vfs.Fs.mkfifo fs c ~cwd path ~perm with
         | Ok _ -> done_ret 0
         | Error e -> fail e)
      else fail Errno.EINVAL
    end
  | Call.Chmod (path, mode) ->
    of_unit (Vfs.Fs.chmod fs c ~cwd path ~perm:mode)
  | Call.Chown (path, uid, gid) ->
    of_unit (Vfs.Fs.chown fs c ~cwd path ~uid ~gid)
  | Call.Sbrk _ -> done_ret 0
  | Call.Lseek (fd, off, whence) -> do_lseek p fd off whence
  | Call.Getpid -> done_ret p.pid
  | Call.Getppid -> done_ret p.ppid
  | Call.Setuid u ->
    if p.cred.uid = 0 || u = p.cred.uid then begin
      p.cred <- { p.cred with uid = u };
      done_ret 0
    end
    else fail Errno.EPERM
  | Call.Getuid | Call.Geteuid -> done_ret p.cred.uid
  | Call.Getgid | Call.Getegid -> done_ret p.cred.gid
  | Call.Alarm sec -> do_alarm t p sec
  | Call.Access (path, bits) -> of_unit (Vfs.Fs.access fs c ~cwd path bits)
  | Call.Sync -> done_ret 0
  | Call.Kill (pid, s) -> do_kill t p pid s
  | Call.Stat (path, r) ->
    (match Vfs.Fs.stat_path fs c ~cwd ~follow:true path with
     | Ok st -> fill_stat r st; done_ret 0
     | Error e -> fail e)
  | Call.Lstat (path, r) ->
    (match Vfs.Fs.stat_path fs c ~cwd ~follow:false path with
     | Ok st -> fill_stat r st; done_ret 0
     | Error e -> fail e)
  | Call.Fstat (fd, r) -> do_fstat t p fd r
  | Call.Dup fd -> do_dup t p fd ~from:0
  | Call.Dup2 (ofd, nfd) -> do_dup2 t p ofd nfd
  | Call.Pipe ->
    let r, w = new_pipe t in
    (match install_fd t p r with
     | Error e ->
       release_file t r;
       release_file t w;
       fail e
     | Ok rfd ->
       (match install_fd t p w with
        | Error e ->
          ignore (close_fd t p rfd);
          release_file t w;
          fail e
        | Ok wfd -> Done (Value.ret rfd ~r1:wfd)))
  | Call.Sigaction (s, newh, oldref) -> do_sigaction p s newh oldref
  | Call.Sigprocmask (how, m) -> do_sigprocmask p how m
  | Call.Sigpending -> done_ret p.sigs.pending
  | Call.Sigsuspend m ->
    (* the saved mask is restored by the scheduler on wake *)
    p.sigs.mask <- Signal.Mask.sanitize m;
    Block Proc.On_signal
  | Call.Ioctl (fd, op, buf) -> do_ioctl t p fd op buf
  | Call.Symlink (target, path) ->
    of_unit (Vfs.Fs.symlink fs c ~cwd ~target path)
  | Call.Readlink (path, buf) ->
    (match Vfs.Fs.readlink fs c ~cwd path with
     | Ok target ->
       let n = min (String.length target) (Bytes.length buf) in
       Bytes.blit_string target 0 buf 0 n;
       done_ret n
     | Error e -> fail e)
  | Call.Umask m ->
    let old = p.umask in
    p.umask <- m land 0o7777;
    done_ret old
  | Call.Getpagesize -> done_ret 4096
  | Call.Getpgrp -> done_ret p.pgrp
  | Call.Setpgrp (pid, pgrp) ->
    if pgrp <= 0 then fail Errno.EINVAL
    else begin
      let target = if pid = 0 then Some p else proc t pid in
      match target with
      | Some q when q.pid = p.pid || q.ppid = p.pid ->
        q.pgrp <- pgrp;
        done_ret 0
      | Some _ -> fail Errno.EPERM
      | None -> fail Errno.ESRCH
    end
  | Call.Getdtablesize -> done_ret Proc.fd_table_size
  | Call.Fcntl (fd, cmd, arg) -> do_fcntl t p fd cmd arg
  | Call.Select (rmask, wmask, tmo) -> do_select t p rmask wmask tmo
  | Call.Fsync fd ->
    (match fd_file p fd with Ok _ -> done_ret 0 | Error e -> fail e)
  | Call.Getrusage r ->
    r := Some (p.utime_us, p.stime_us);
    done_ret 0
  | Call.Socket -> do_socket t p
  | Call.Bind (fd, addr) -> do_bind t p fd addr
  | Call.Listen (fd, backlog) -> do_listen t p fd backlog
  | Call.Accept fd -> do_accept t p fd
  | Call.Connect (fd, addr) -> do_connect t p fd addr
  | Call.Send (fd, data) -> do_send t p fd data
  | Call.Recv (fd, buf, cnt) -> do_recv t p fd buf cnt
  | Call.Shutdown (fd, how) -> do_shutdown t p fd how
  | Call.Socketpair ->
    let a, b = new_socketpair t in
    (match install_fd t p a with
     | Error e ->
       release_file t a;
       release_file t b;
       fail e
     | Ok afd ->
       (match install_fd t p b with
        | Error e ->
          ignore (close_fd t p afd);
          release_file t b;
          fail e
        | Ok bfd -> Done (Value.ret afd ~r1:bfd)))
  | Call.Gettimeofday r ->
    let now = now_us t in
    r := Some (now / 1_000_000, now mod 1_000_000);
    done_ret 0
  | Call.Settimeofday (sec, usec) ->
    if p.cred.uid <> 0 then fail Errno.EPERM
    else begin
      let target = (sec * 1_000_000) + usec in
      t.tod_offset_us <- target - Sim.Clock.now_us t.clock;
      done_ret 0
    end
  | Call.Rename (src, dst) -> of_unit (Vfs.Fs.rename fs c ~cwd ~src dst)
  | Call.Truncate (path, len) ->
    of_unit (Vfs.Fs.truncate fs c ~cwd path len)
  | Call.Ftruncate (fd, len) ->
    (match fd_file p fd with
     | Error e -> fail e
     | Ok f ->
       if not (File.is_writable f) then fail Errno.EBADF
       else if len < 0 then fail Errno.EINVAL
       else
         match f.kind with
         | File.Vnode ({ kind = Vfs.Inode.Reg data; _ } as inode) ->
           Vfs.Filedata.truncate data len;
           Vfs.Fs.touch_mtime fs inode;
           done_ret 0
         | _ -> fail Errno.EINVAL)
  | Call.Mkdir (path, mode) ->
    let perm = mode land lnot p.umask land 0o7777 in
    (match Vfs.Fs.mkdir fs c ~cwd path ~perm with
     | Ok _ -> done_ret 0
     | Error e -> fail e)
  | Call.Rmdir path -> of_unit (Vfs.Fs.rmdir fs c ~cwd path)
  | Call.Utimes (path, atime, mtime) ->
    of_unit (Vfs.Fs.utimes fs c ~cwd path ~atime ~mtime)
  | Call.Getdirentries (fd, buf) -> do_getdirentries t p fd buf
  | Call.Sleepus us -> do_sleepus t p us
  | Call.Getcwd buf ->
    (match Vfs.Fs.path_of_ino fs p.cwd with
     | Some path ->
       if String.length path > Bytes.length buf then fail Errno.ERANGE
       else begin
         Bytes.blit_string path 0 buf 0 (String.length path);
         done_ret (String.length path)
       end
     | None -> fail Errno.ENOENT)

(* --- restart policy --------------------------------------------------------- *)

(* The scheduler's own interruption handling is BSD restart semantics:
   a parked call is simply re-dispatched, so the application never sees
   a spurious EINTR from a call that would have completed.  The calls
   below are the exceptions — time-bounded or one-shot waits where a
   blind re-issue would change meaning (sleepus is resumed directly by
   its timer; select and sigsuspend wait for a condition whose window
   an interruption legitimately ends).  Agents that inject EINTR must
   consult this policy so an injected interruption is no more visible
   than a real one. *)
let restartable ?errno num =
  match errno with
  | Some Errno.EPIPE ->
    (* a broken pipe is never restartable, whatever the call: the
       producing write/send already raised SIGPIPE, and re-issuing it
       can only break the pipe again *)
    false
  | Some _ | None ->
    not
      (num = Abi.Sysno.sys_sleepus
       || num = Abi.Sysno.sys_select
       || num = Abi.Sysno.sys_sigsuspend)
