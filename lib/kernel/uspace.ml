open Abi

let self () = Proc.Cur.get_exn ()

(* One definition of signal dispatch, shared by the trap exit path here
   and by the toolkit's [Downlink.down_signal] chain. *)
let deliver_app (proc : Proc.t) s =
  (* one instant mark per signal that reaches the application, whatever
     its disposition — chrome export renders these as instants *)
  if Obs.enabled () then begin
    let span = Obs.current () in
    Obs.record_mark ~span ~pid:proc.Proc.pid ~kind:"signal"
      ~detail:(Signal.name s) ();
    (* completes the sender's pending half-edge when this delivery was
       kill-originated (DESIGN.md §3.9); no-op otherwise *)
    Obs.causal_signal_delivered ~pid:proc.Proc.pid ~signal:s ~span
      ~detail:(Signal.name s)
  end;
  match Proc.handler proc s with
  | Value.H_fn f -> f s
  | Value.H_default | Value.H_ignore -> ()

let deliver_via interposer s =
  match interposer with
  | Some f -> f s
  | None -> deliver_app (self ()) s

let deliver_one (proc : Proc.t) s =
  match proc.emul.sig_emul with
  | Some interposer -> interposer s
  | None -> deliver_app proc s

let deliver proc sigs = List.iter (deliver_one proc) sigs

let to_kernel (proc : Proc.t) (env : Envelope.t) : Value.res =
  (* nothing interposed: the kernel is the only layer below us *)
  let reply =
    Obs.in_layer ~span:(Envelope.span env) "kernel" (fun () ->
        Effect.perform (Events.Trap (env, Events.App)))
  in
  deliver proc reply.deliver;
  reply.res

(* The fused-chain jump target for slots with no handler installed:
   Proc sits below this module, so it reaches [to_kernel] through a
   forward reference filled exactly once, here. *)
let () = Proc.chain_kernel_entry := fun env -> to_kernel (self ()) env

(* Whether the current shard dispatches through the fused chains.
   Read per trap from the ambient shard handle — the flag lives on
   [Kstate.t], so flipping it at run time (bench A/B, future hot-swap
   quiesce points) needs no global. *)
let fused_dispatch () =
  match !Kstate.Ambient.current with
  | Some t -> t.Kstate.fused_dispatch
  | None -> false

(* Charge [us] of virtual CPU time to [proc] and collect any signals
   that became deliverable, preferably without performing an effect.

   The [Events.Cpu] perform captures the whole fibre continuation and
   round-trips through the run queue — by far the dominant *host* cost
   of an interested trap (one perform per agent dispatch layer).  In
   fused mode we replicate the scheduler's Cpu handler inline when, and
   only when, doing so is observationally identical:

   - no signal is pending, so [collect_deliverable] would return []
     and [pending_terminal] would decide `None — nothing to deliver,
     nobody to kill or stop;
   - the run queue is empty, so the generic path would re-enqueue this
     continuation and pop it right back — no other fibre's turn is
     being stolen;
   - no timer is due at or before [now + us], so the scheduling point
     the perform would create cannot fire one.

   Every guard is a deterministic function of simulation state, so a
   fused run makes exactly the same scheduling decisions every time
   (and the same decisions a generic run makes — the conformance gate
   checks the syscall signatures are byte-identical). *)
let cpu_charge (proc : Proc.t) us : int list =
  match !Kstate.Ambient.current with
  | Some t
    when t.Kstate.fused_dispatch
         && proc.sigs.pending = 0
         && Queue.is_empty t.Kstate.runq
         && Kstate.next_timer_at t > Sim.Clock.now_us t.Kstate.clock + us ->
    proc.utime_us <- proc.utime_us + us;
    Kstate.charge t us;
    []
  | _ -> Effect.perform (Events.Cpu us)

let trap_raw (env : Envelope.t) : Value.res =
  let proc = self () in
  proc.syscall_count <- proc.syscall_count + 1;
  let num = Envelope.number env in
  if not (Bitset.mem proc.emul.bitmap num) then begin
    (* Fast path: one bit test says no handler is interposed for this
       number — the option vector is never probed. *)
    Envelope.Stats.note_trap_fast ();
    to_kernel proc env
  end
  else if fused_dispatch () then begin
    (* Fused path: the chain slot *is* the installed handler (the
       bitmap/chain invariant guarantees a set bit is in range and
       pre-linked), so there is no vector probe and no option match —
       [fused] grows while [intercepted] stays zero, the measured proof
       that the generic machinery is bypassed. *)
    Envelope.Stats.note_trap_chained ();
    (match cpu_charge proc Cost_model.intercept_us with
     | [] -> ()
     | sigs -> deliver proc sigs);
    proc.emul.chain.(num) env
  end
  else begin
    (* The bit is only ever set for in-range numbers with a handler
       installed (the bitmap/vector invariant), but stay defensive. *)
    let handler = proc.emul.vector.(num) in
    Envelope.Stats.note_trap ~intercepted:(Option.is_some handler);
    match handler with
    | Some h ->
      let sigs = Effect.perform (Events.Cpu Cost_model.intercept_us) in
      deliver proc sigs;
      h env
    | None -> to_kernel proc env
  end

(* Open a span around one trap.  The envelope is built *inside* the
   span (the [mk_env] thunk) so that a boundary encode — and any other
   codec work at construction — attributes to the "uspace" frame rather
   than vanishing.  Observation itself charges no virtual time. *)
let instrumented ~sysno mk_env =
  let proc = self () in
  let span = Obs.span_begin ~pid:proc.pid ~sysno in
  let fr = Obs.layer_enter ~span "uspace" in
  let finish ~error =
    (match fr with Some fr -> Obs.layer_exit fr | None -> ());
    Obs.span_end span ~error
  in
  let made = ref None in
  let sev = ref None in
  match
    let env = mk_env () in
    made := Some env;
    Envelope.set_span env span;
    (* The signature tap piggybacks on the span stream: one event per
       application-issued trap, shape computed only while capture is on
       (and without marking the wire exposed — [Envelope.shape]).
       Independent of the sampler, so signature counts stay exact at
       any 1-in-N rate.  A trap that never returns here (exit, exec)
       keeps its pending outcome. *)
    if Obs.sig_capturing () then
      sev := Some (Obs.sig_note ~pid:proc.pid ~sysno (Envelope.shape env));
    trap_raw env
  with
  | res ->
    (* Normal completion only: on an exception the wire may still be
       referenced by whoever threw, so it is left to the GC. *)
    (match !made with Some env -> Envelope.release env | None -> ());
    (match !sev with
     | Some ev ->
       Obs.sig_done ev
         ~errno:(match res with Ok _ -> 0 | Error e -> Errno.to_int e)
     | None -> ());
    finish ~error:(Result.is_error res);
    res
  | exception e ->
    finish ~error:true;
    raise e

let trap (env : Envelope.t) : Value.res =
  (* re-entrant traps (an envelope already inside a span) and the
     tracing-off fast path skip straight to the raw trap *)
  if (not (Obs.enabled ())) || Envelope.span env <> 0 then trap_raw env
  else instrumented ~sysno:(Envelope.number env) (fun () -> env)

let trap_wire w =
  if not (Obs.enabled ()) then trap_raw (Envelope.of_wire w)
  else instrumented ~sysno:w.Value.num (fun () -> Envelope.of_wire w)

(* the application/system boundary is untyped: encode here, and let the
   first interested layer below (agent or kernel) do the one decode;
   both the wire record and the envelope record around it come from
   (and, when still exclusively owned, return to) the calling
   process's pools *)
let syscall c =
  let proc = self () in
  let pool = proc.Proc.wire_pool in
  let epool = proc.Proc.env_pool in
  if not (Obs.enabled ()) then begin
    let env = Envelope.at_boundary ?pool ?epool c in
    let res = trap_raw env in
    Envelope.release env;
    res
  end
  else
    instrumented ~sysno:(Call.number c) (fun () ->
        Envelope.at_boundary ?pool ?epool c)

let htg_trap (env : Envelope.t) : Value.res =
  let proc = self () in
  let reply =
    Obs.in_layer ~span:(Envelope.span env) "kernel" (fun () ->
        Effect.perform (Events.Trap (env, Events.Htg)))
  in
  deliver proc reply.deliver;
  reply.res

let htg_unix_syscall w = htg_trap (Envelope.of_wire w)

(* agent-originated: the typed view rides the envelope down, never
   paying an encode unless some layer demands the wire form; the
   record is pooled like any boundary envelope (an exit/exec that
   never returns simply leaks its record to the GC) *)
let htg_syscall c =
  let proc = self () in
  let env = Envelope.of_call ?epool:proc.Proc.env_pool c in
  let res = htg_trap env in
  Envelope.release env;
  res

let cpu_work us =
  if us > 0 then begin
    let proc = self () in
    match cpu_charge proc us with
    | [] -> ()
    | sigs -> deliver proc sigs
  end

let task_set_emulation ~numbers handler =
  Effect.perform (Events.Set_emulation (numbers, handler))

let task_get_emulation n = Effect.perform (Events.Get_emulation n)

let task_set_emulation_signal h =
  Effect.perform (Events.Set_emulation_signal h)

let task_get_emulation_signal () =
  Effect.perform Events.Get_emulation_signal

let exec_load spec =
  Effect.perform (Events.Exec_load spec);
  assert false
