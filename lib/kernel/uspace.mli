(** User-space system-call stubs: the code that would live in the
    syscall trap path of a real process.

    [trap_wire] is the moral equivalent of the trap instruction: it
    consults the process's in-address-space emulation vector first
    (installed by {!task_set_emulation}), so an interposition agent
    sees the call before the kernel does.  [htg_unix_syscall] bypasses
    the vector, letting agent code reach the underlying implementation
    of a call it intercepts — the two primitives the paper's toolkit
    builds on.

    Signals with user handlers are delivered on the way out of traps,
    through the agent's signal interposer when one is registered.

    When [Obs] tracing is enabled, every trap entry here opens a span
    and an outermost "uspace" layer frame (and, when no emulation
    handler is interposed, a "kernel" frame around the raw trap), so
    per-layer latency and codec attribution work even at interposition
    depth 0.  With tracing off the instrumentation is a single flag
    check — no virtual time is ever charged for observation. *)

val trap : Abi.Envelope.t -> Abi.Value.res
(** Make a system call carried in a decode-once envelope.  Counts
    toward the calling process's syscall statistics; pays the 30 µs
    interception cost when an emulation handler is installed for the
    number. *)

val trap_wire : Abi.Value.wire -> Abi.Value.res
(** Numeric-form convenience: wraps the vector in a fresh envelope and
    {!trap}s it. *)

val syscall : Abi.Call.t -> Abi.Value.res
(** Typed application-boundary call.  The call is encoded immediately
    ({!Abi.Envelope.at_boundary}) — the boundary contract is the
    untyped vector, so stacked agents see exactly what a real
    application would have trapped with, and the first interested
    layer performs the single decode.  The wire record is drawn from
    the calling process's pool ([Proc.wire_pool]) and recycled when
    the trap completes with the envelope still exclusively owned
    ({!Abi.Envelope.release}). *)

val htg_trap : Abi.Envelope.t -> Abi.Value.res
(** Call the underlying system interface even if the number is being
    intercepted (+37 µs, Table 3-4). *)

val htg_unix_syscall : Abi.Value.wire -> Abi.Value.res
(** Numeric-form convenience over {!htg_trap}. *)

val htg_syscall : Abi.Call.t -> Abi.Value.res
(** Typed convenience over {!htg_trap}; the typed view rides the
    envelope down with no codec work at all. *)

val cpu_work : int -> unit
(** Charge local computation to the virtual clock.  Also a signal
    delivery point, like any trap. *)

val fused_dispatch : unit -> bool
(** Whether the current shard dispatches interested traps through the
    fused closure chains ([Kstate.fused_dispatch]; false with no shard
    entered).  The toolkit's downlink consults this to pick its own
    fused crossing path. *)

(** {1 Signal dispatch}

    The single definition of "hand signal [s] to the layer above",
    shared by the trap exit path here and by the toolkit's downlink
    chain ([Downlink.down_signal]). *)

val deliver_app : Proc.t -> int -> unit
(** Invoke the application's own disposition for [s]: its [H_fn]
    handler, or nothing for default/ignore. *)

val deliver_via : (int -> unit) option -> int -> unit
(** Route through an interposer when one is given, else fall back to
    {!deliver_app} on the calling process. *)

(** {1 Mach-style task primitives} *)

val task_set_emulation :
  numbers:int list -> (Abi.Envelope.t -> Abi.Value.res) option -> unit
(** Install ([Some]) or clear ([None]) the emulation handler for the
    given system call numbers in the calling task. *)

val task_get_emulation : int -> (Abi.Envelope.t -> Abi.Value.res) option

val task_set_emulation_signal : (int -> unit) option -> unit
val task_get_emulation_signal : unit -> (int -> unit) option

val exec_load : Events.exec_spec -> 'a
(** Replace the calling process's program text; never returns.  With
    [keep_emulation = true] the interception state survives, which is
    how the toolkit's reimplemented [execve] keeps the agent alive
    across an exec. *)

val self : unit -> Proc.t
(** The calling process (stubs run in process context). *)
