type cond =
  | On_child
  | On_pipe_read of int
  | On_pipe_write of int
  | On_fifo_read of int
  | On_fifo_write of int
  | On_accept of int       (* listener id: until a connection is pending *)
  | On_connq of int        (* listener id: until the accept queue drains *)
  | On_time of int
  | On_signal
  | On_select of {
      rpipes : int list;   (* pipe/sock ids awaited for readability *)
      wpipes : int list;   (* pipe/sock ids awaited for writability *)
      rfifos : int list;   (* fifo inos awaited for readability *)
      wfifos : int list;   (* fifo inos awaited for writability *)
      rlisten : int list;  (* listener ids: readable = pending conn *)
    }

type park = {
  k : (Events.trap_reply, unit) Effect.Deep.continuation;
  env : Abi.Envelope.t;
  via : Events.via;
  cond : cond;
  saved_mask : int option;
}

type stopped = {
  sk : (Events.trap_reply, unit) Effect.Deep.continuation;
  reply : Events.trap_reply;
}

type state =
  | Runnable
  | Parked of park
  | Stopped of stopped
  | Zombie
  | Reaped

type sigstate = {
  mutable handlers : Abi.Value.handler array;
  mutable mask : int;
  mutable pending : int;
}

type emulation = {
  mutable vector : (Abi.Envelope.t -> Abi.Value.res) option array;
  mutable bitmap : Abi.Bitset.t;
      (* Invariant: [Bitset.mem bitmap n] iff [vector.(n) <> None].
         The trap fast path tests the bit and never touches the vector
         for uninterested calls. *)
  mutable chain : (Abi.Envelope.t -> Abi.Value.res) array;
      (* The fused form of [vector]: slot [n] is the installed handler
         itself when [vector.(n) = Some h] (physically the same
         closure), and [chain_unset] — a direct jump to the kernel
         entry — when it is [None].  Interested traps in fused mode
         call [chain.(n)] with no option probe or match; recompiled at
         every write point of [vector] ([Set_emulation], [fork_copy],
         the fresh emulation an exec installs). *)
  mutable sig_emul : (int -> unit) option;
}

(* [Uspace] fills this at module initialization with "enter the kernel
   for the current process" — Proc sits below Uspace in the library, so
   the jump target is a forward reference (allowlisted in
   tools/globals_allowlist.txt: written exactly once, at init). *)
let chain_kernel_entry : (Abi.Envelope.t -> Abi.Value.res) ref =
  ref (fun _ -> failwith "Proc.chain_kernel_entry: Uspace not initialized")

(* The one canonical "no handler" chain slot.  A top-level function, so
   [emulation_consistent] can recognize empty slots by physical
   equality. *)
let chain_unset env = !chain_kernel_entry env

type t = {
  pid : int;
  mutable ppid : int;
  mutable pgrp : int;
  mutable name : string;
  mutable cred : Vfs.Fs.cred;
  mutable cwd : int;
  mutable umask : int;
  mutable fds : File.fd_entry option array;
  sigs : sigstate;
  mutable emul : emulation;
  mutable state : state;
  mutable exit_status : int;
  mutable alarm_at : int option;
  mutable syscall_count : int;
  mutable utime_us : int;
  mutable stime_us : int;
  wire_pool : Abi.Value.Pool.t option;
      (* Always [Some] in practice; option-typed so the trap stub can
         pass it to [Envelope.at_boundary ?pool] without wrapping a
         fresh [Some] on every trap. *)
  env_pool : Abi.Envelope.Pool.t option;
      (* Free list for the envelope records themselves, same contract
         and same option-typing rationale as [wire_pool]. *)
}

let fd_table_size = 64

let fresh_emulation () =
  { vector = Array.make (Abi.Sysno.max_sysno + 1) None;
    bitmap = Abi.Bitset.create (Abi.Sysno.max_sysno + 1);
    chain = Array.make (Abi.Sysno.max_sysno + 1) chain_unset;
    sig_emul = None }

let emulation_consistent e =
  Abi.Bitset.length e.bitmap = Array.length e.vector
  && Array.length e.chain = Array.length e.vector
  && (let ok = ref true in
      Array.iteri
        (fun i h ->
           if Abi.Bitset.mem e.bitmap i <> (h <> None) then ok := false;
           (* the fused chain mirrors the vector by physical identity:
              the installed closure itself, or the canonical empty
              slot *)
           (match h with
            | Some f -> if not (e.chain.(i) == f) then ok := false
            | None -> if not (e.chain.(i) == chain_unset) then ok := false))
        e.vector;
      !ok)

let fresh_sigstate () =
  { handlers = Array.make (Abi.Signal.max_signal + 1) Abi.Value.H_default;
    mask = 0;
    pending = 0 }

let create ~pid ~ppid ~pgrp ~name ~cred ~cwd =
  { pid; ppid; pgrp; name; cred; cwd;
    umask = 0o022;
    fds = Array.make fd_table_size None;
    sigs = fresh_sigstate ();
    emul = fresh_emulation ();
    state = Runnable;
    exit_status = 0;
    alarm_at = None;
    syscall_count = 0;
    utime_us = 0;
    stime_us = 0;
    wire_pool = Some (Abi.Value.Pool.create ());
    env_pool = Some (Abi.Envelope.Pool.create ()) }

let fork_copy t ~pid ~name =
  let fds = Array.map
      (Option.map (fun (e : File.fd_entry) ->
         { File.file = e.file; cloexec = e.cloexec }))
      t.fds
  in
  { pid;
    ppid = t.pid;
    pgrp = t.pgrp;
    name;
    cred = t.cred;
    cwd = t.cwd;
    umask = t.umask;
    fds;
    sigs = { handlers = Array.copy t.sigs.handlers;
             mask = t.sigs.mask;
             pending = 0 };
    emul = { vector = Array.copy t.emul.vector;
             bitmap = Abi.Bitset.copy t.emul.bitmap;
             (* the chain recompiles by copy: the child's slots alias
                the same handler closures its copied vector holds *)
             chain = Array.copy t.emul.chain;
             sig_emul = t.emul.sig_emul };
    state = Runnable;
    exit_status = 0;
    alarm_at = None;
    syscall_count = 0;
    utime_us = 0;
    stime_us = 0;
    (* The pools are caches, not address-space state: the child starts
       with empty ones rather than stealing the parent's records. *)
    wire_pool = Some (Abi.Value.Pool.create ());
    env_pool = Some (Abi.Envelope.Pool.create ()) }

let fd t n =
  if n >= 0 && n < Array.length t.fds then t.fds.(n) else None

let alloc_fd ?(from = 0) t =
  let rec go i =
    if i >= Array.length t.fds then None
    else if t.fds.(i) = None then Some i
    else go (i + 1)
  in
  go (max 0 from)

let handler t s =
  if Abi.Signal.is_valid s then t.sigs.handlers.(s) else Abi.Value.H_default

let set_handler t s h =
  if Abi.Signal.is_valid s then t.sigs.handlers.(s) <- h

(* Each kernel shard owns one current-process cell; entering a shard
   installs its cell here (DESIGN.md §3.6), so the running process of
   one kernel can never be observed from another.  A default cell is
   installed at program start for code probing "am I in a simulation?"
   outside any kernel. *)
module Cur = struct
  type cell = t option ref

  let cell () : cell = ref None

  let cur : cell ref = ref (cell ())
  let install c = cur := c
  let installed () = !cur

  let get () = !(!cur)
  let get_exn () =
    match !(!cur) with
    | Some p -> p
    | None -> failwith "no current process (called outside a simulation?)"
  let set p = !cur := p
end
