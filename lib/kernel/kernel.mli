(** The simulated Mach 2.5 / 4.3BSD kernel: scheduler, boot and the
    host-side API.

    A kernel instance — a {e shard} (DESIGN.md §3.6) — owns a virtual
    clock, a filesystem, a console, a process table, an executable
    {!Registry}, an [Obs] engine, codec and wire-pool counters and a
    current-process cell.  Nothing about a session is module-global:
    two kernels coexist in one OCaml process without observing each
    other, and {!Cluster} drives N of them deterministically.  [boot]
    starts pid 1 on a program body and runs the cooperative scheduler
    until every process has terminated (or is hopelessly deadlocked, in
    which case the stragglers are killed and counted in
    [deadlock_kills]).

    Simulated processes are OCaml fibres; they interact with the kernel
    exclusively through the effects in {!Events}, performed by the
    stubs in {!Uspace} (applications normally go through {!Libc} on top
    of those). *)

(** {1 Submodules}

    The library's public face: re-exported here because this module is
    the library root. *)

module Dev = Dev
module Events = Events
module File = File
module Kstate = Kstate
module Proc = Proc
module Registry = Registry
module Syscalls = Syscalls
module Uspace = Uspace

type t = Kstate.t

val create : ?shard_id:int -> ?fused:bool -> unit -> t
(** A fresh shard with its own clock, filesystem, registry, obs engine
    (inheriting the installed engine's {e configuration} — enablement,
    sampling, ring capacity — so observation set up before [create]
    applies to the new kernel) and counters.  The new kernel is
    {!enter}ed, becoming the current shard.  [shard_id] (default 0) is
    its position in a {!Cluster}.  [fused] (default [true]) selects
    fused trap dispatch (DESIGN.md §3.8); [~fused:false] keeps the
    generic option-vector walk — semantically identical (gated by the
    conformance matrix), only slower on the host. *)

(** {1 The current shard}

    Code on the trap path — envelope codecs, uspace stubs, in-fibre
    agents — holds no handle; it reaches the right kernel through the
    ambient current shard, which {!enter} installs together with the
    shard's obs engine, codec/pool counters and current-process cell. *)

val enter : t -> unit
(** Make [t] the current shard.  {!create} and {!boot} call this;
    host code only needs it when juggling several live kernels by
    hand. *)

val with_shard : t -> (unit -> 'a) -> 'a
(** Run [f] with [t] entered, restoring the previously current shard
    afterwards (exception-safe).  This is how {!Cluster} multiplexes
    shards. *)

val current : unit -> t option
(** The current shard, if any. *)

val current_exn : unit -> t
(** @raise Failure when no shard is current. *)

val shard_id : t -> int

(** {1 Running} *)

val boot : t -> name:string -> (unit -> int) -> int
(** [boot t ~name body] enters [t], runs [body] as pid 1 (with
    stdin/stdout/stderr connected to [/dev/tty] when it exists) and
    drives the scheduler to quiescence.  Returns pid 1's wait status
    (see {!Abi.Flags.Wait}).  A kernel can be booted once. *)

(** {1 Host-side filesystem setup}

    These run outside any simulated process, with root credentials. *)

val populate_standard : t -> unit
(** Create [/dev] (null, zero, tty, console), [/tmp], [/bin], [/usr],
    [/etc] with a motd, and [/home]. *)

val install_image : t -> path:string -> image:string -> unit
(** Write an executable file whose content names a {!Registry} image;
    creates parent directories as needed. *)

val mkdir_p : t -> string -> unit
val write_file : t -> path:string -> ?perm:int -> string -> unit
val read_file : t -> string -> string option
val exists : t -> string -> bool

(** {1 Console} *)

val console_output : t -> string
val clear_console : t -> unit
val feed_console : t -> string -> unit
val echo_console_to : t -> (string -> unit) -> unit

(** {1 Introspection and host-side control} *)

val clock : t -> Sim.Clock.t
val fs : t -> Vfs.Fs.t
val elapsed_seconds : t -> float
val total_syscalls : t -> int
val deadlock_kills : t -> int

val registry : t -> Registry.t
(** This shard's executable-image registry; images registered here are
    invisible to every other kernel. *)

val register_image : t -> string -> Registry.image -> unit
(** [Registry.register (registry t)]. *)

val codec_stats : t -> Abi.Envelope.Stats.snapshot
(** This shard's envelope codec counters (decodes, encodes, stack
    crossings) — the measured form of the decode-once invariant.  The
    codec work happens in user space, but user space belongs to exactly
    one shard: whichever is entered while its fibres run. *)

val reset_codec_stats : t -> unit
(** Zero [t]'s codec counters.  Only between sessions of that shard;
    mid-session code should snapshot/{!Abi.Envelope.Stats.diff}
    instead, or use {!metrics}. *)

val pool_stats : t -> Abi.Value.Pool.Stats.snapshot
(** This shard's wire-pool hit/miss counters, same snapshot contract
    as {!codec_stats}.  Also exported as the ["wire_pool"] member of
    {!metrics_json}. *)

val env_pool_stats : t -> Abi.Envelope.Pool.Stats.snapshot
(** This shard's envelope-record-pool counters, same contract as
    {!pool_stats}.  Also exported as the ["env_pool"] member of
    {!metrics_json}. *)

val fused : t -> bool
val set_fused : t -> bool -> unit
(** Select fused vs generic trap dispatch for [t] at run time.  Legal
    mid-run: the flag only chooses host-speed machinery — the
    conformance gate checks signatures are byte-identical either
    way. *)

(** Host-side (wall/GC) cost estimates for one shard since its
    creation, next to the virtual tables: the ["host"] block of
    {!metrics_json} and the [\[host\]] section of
    [agentrun --metrics].  Derived from process-wide [Sys.time] and GC
    counters, so per-trap figures are estimates — exact when one shard
    dominates the process. *)
type host_stats = {
  h_traps : int;
  h_cpu_s : float;
  h_ns_per_trap : float;
  h_minor_words_per_trap : float;
  h_promoted_words : float;
  h_major_collections : int;
  h_wire_pool_hit_rate : float;
  h_env_pool_hit_rate : float;
}

val host_stats : t -> host_stats
val host_stats_json : host_stats -> Obs.Json.t

val metrics : t -> Obs.metrics
(** Aggregated observability snapshot of this shard's engine
    (per-syscall counters and latency histograms, per-layer
    attribution) accumulated while [Obs.enable]d. *)

val set_watch : t -> Obs.Watch.rule list -> unit
(** Install this shard's watchdog rules (replacing any previous set).
    Rules live on the shard handle, so they survive [Obs.reset]
    between workload phases. *)

val watch_rules : t -> Obs.Watch.rule list

val watch_input_of : Obs.metrics -> env_pool_misses:int -> Obs.Watch.input
(** Adapt a metrics snapshot into watchdog-evaluation rows (p99 read
    from each syscall's histogram). *)

val watch_verdicts : t -> Obs.Watch.verdict list
(** Evaluate the installed rules against this shard's current metrics
    and envelope-pool counters — one verdict per rule, in rule
    order. *)

val metrics_json : t -> Obs.Json.t
(** {!metrics} rendered with syscall names resolved via
    [Abi.Sysno.name], plus ["codec"] ({!codec_stats}, incl.
    [fast_path] and [fused]), ["wire_pool"] ({!pool_stats}),
    ["env_pool"] ({!env_pool_stats}), ["host"] ({!host_stats}) and
    ["watchdogs"] ({!watch_verdicts}) blocks — every runtime statistic
    of one shard in one document.  The [/obs/metrics] synthetic file
    serves exactly this JSON inside the simulation. *)

val drain_obs : t -> Obs.Span.record list
(** Drain this shard's flight recorder (oldest first). *)

val obs_engine : t -> Obs.engine
(** The shard's own engine — for host-side incremental reads
    ([Obs.poll_of], [Obs.causal_edges_of]) without draining. *)

val causal_edges : t -> Obs.Causal.edge list
(** This shard's causal edge table (fork / signal / pipe), oldest
    first, without draining it. *)

val drain_causal : t -> Obs.Causal.edge list
(** Drain the edge table (returned oldest first). *)

val pid_label : t -> int -> string
(** ["pid N name"] when the process is still in the table, ["pid N"]
    otherwise — a [?pid_label] for {!Obs.Chrome.to_json}. *)

val post_signal : t -> pid:int -> int -> unit
(** Inject a signal from outside the simulation (like a console ^C). *)

val set_trace_hook :
  t -> ?cost_us:int
  -> (Proc.t -> Abi.Call.t -> Abi.Value.res -> unit) option -> unit
(** The in-kernel tracing hook used by the DFSTrace comparison: when
    set, it observes every dispatched call at [cost_us] µs apiece. *)

(** {1 Deterministic multi-shard driver}

    N single-domain shards with independent virtual clocks, stepped
    round-robin in shard-id order over fixed virtual-time quanta
    ([quantum_us]).  Cross-shard events are mailed with a (virtual send
    time, sender shard id, sequence number) stamp and delivered at
    quantum boundaries sorted by exactly that triple — sort by virtual
    timestamp, tie-break by shard id, then send order — which makes the
    merge a deterministic function of simulation state alone: an
    N-shard run is byte-reproducible (DESIGN.md §3.6).  Events land at
    the first quantum boundary at or after their send time, so sibling
    clocks stay within one quantum of each other while work remains. *)
module Cluster : sig
  type kernel := t

  type t

  type event =
    | Post_signal of
        { pid : int; signal : int; o_shard : int; o_span : int; o_pid : int }
  (** The cross-shard event vocabulary (signals, for now — the paper's
      agents communicate through the system interface, and the asynchronous
      half of that interface is exactly signal delivery).  The [o_*]
      fields stamp the sender's causal origin — shard, innermost open
      span (possibly a sampler sentinel) and pid at [send] time — so
      the receiving shard records a cross-shard Signal edge before
      posting. *)

  val create : ?quantum_us:int -> shards:int -> unit -> t
  (** [shards] ≥ 1 fresh kernels with shard ids [0 .. shards-1];
      [quantum_us] (default 50 000 virtual µs) is the round horizon.
      Raises [Invalid_argument] on a non-positive argument. *)

  val shards : t -> int
  val shard : t -> int -> kernel
  (** The [i]th member kernel — use the ordinary handle API on it
      (populate, install images, read metrics) before and after
      {!run}. *)

  val boot_shard : t -> int -> name:string -> (unit -> int) -> Proc.t
  (** Enqueue a session's init process (as {!boot} would) on shard [i]
      without running anything yet; read [Proc.exit_status] after
      {!run}. *)

  val run : t -> unit
  (** Drive every shard to quiescence: rounds of step-to-horizon in
      shard-id order with deterministic mail delivery between rounds,
      then a per-shard straggler pass (deadlocked processes are killed
      exactly as under {!boot}). *)

  val send : dst:int -> pid:int -> signal:int -> unit
  (** In-fibre: mail a signal to process [pid] of shard [dst], stamped
      with the sending shard's current virtual time.  Delivered at the
      next quantum boundary.  Raises [Invalid_argument] outside
      {!run} or for an unknown shard. *)

  val metrics : t -> Obs.metrics
  (** Cluster-wide aggregate over every shard's obs engine: exact
      counters summed, latency histograms merged bucket-wise
      ({!Obs.merge_metrics}). *)

  val metrics_json : t -> Obs.Json.t
  (** The aggregate as the same JSON document shape a single kernel's
      [metrics_json] produces — codec and wire-pool counters summed
      across shards — plus a [shards] field with the fan-in and a
      [watchdogs] block evaluating shard 0's rules over the merged
      metrics. *)

  val drain_obs : t -> (int * Obs.Span.record list) list
  (** Drain every shard's flight recorder, tagged with shard ids —
      feed directly to {!Obs.Chrome.to_json_sharded} for a trace with
      disjoint per-shard process lanes. *)

  val causal_edges : t -> Obs.Causal.edge list
  (** Every shard's edge table, merged and sorted by (virtual time,
      recording shard, seq) — the mailbox's total order, so two
      same-seed runs produce byte-identical lists. *)

  val drain_causal : t -> Obs.Causal.edge list
end
