(** The simulated Mach 2.5 / 4.3BSD kernel: scheduler, boot and the
    host-side API.

    A kernel instance owns a virtual clock, a filesystem, a console and
    a process table.  [boot] starts pid 1 on a program body and runs
    the cooperative scheduler until every process has terminated (or is
    hopelessly deadlocked, in which case the stragglers are killed and
    counted in [deadlock_kills]).

    Simulated processes are OCaml fibres; they interact with the kernel
    exclusively through the effects in {!Events}, performed by the
    stubs in {!Uspace} (applications normally go through {!Libc} on top
    of those). *)

(** {1 Submodules}

    The library's public face: re-exported here because this module is
    the library root. *)

module Dev = Dev
module Events = Events
module File = File
module Kstate = Kstate
module Proc = Proc
module Registry = Registry
module Syscalls = Syscalls
module Uspace = Uspace

type t = Kstate.t

val create : unit -> t

(** {1 Running} *)

val boot : t -> name:string -> (unit -> int) -> int
(** [boot t ~name body] runs [body] as pid 1 (with stdin/stdout/stderr
    connected to [/dev/tty] when it exists) and drives the scheduler to
    quiescence.  Returns pid 1's wait status (see {!Abi.Flags.Wait}).
    A kernel can be booted once. *)

(** {1 Host-side filesystem setup}

    These run outside any simulated process, with root credentials. *)

val populate_standard : t -> unit
(** Create [/dev] (null, zero, tty, console), [/tmp], [/bin], [/usr],
    [/etc] with a motd, and [/home]. *)

val install_image : t -> path:string -> image:string -> unit
(** Write an executable file whose content names a {!Registry} image;
    creates parent directories as needed. *)

val mkdir_p : t -> string -> unit
val write_file : t -> path:string -> ?perm:int -> string -> unit
val read_file : t -> string -> string option
val exists : t -> string -> bool

(** {1 Console} *)

val console_output : t -> string
val clear_console : t -> unit
val feed_console : t -> string -> unit
val echo_console_to : t -> (string -> unit) -> unit

(** {1 Introspection and host-side control} *)

val clock : t -> Sim.Clock.t
val fs : t -> Vfs.Fs.t
val elapsed_seconds : t -> float
val total_syscalls : t -> int
val deadlock_kills : t -> int

val codec_stats : unit -> Abi.Envelope.Stats.snapshot
(** Global envelope codec counters (decodes, encodes, stack crossings)
    since the last {!reset_codec_stats} — the measured form of the
    decode-once invariant.  Global rather than per-kernel: envelopes do
    their codec work in user space, outside any kernel instance. *)

val reset_codec_stats : unit -> unit
(** Zero the global codec counters.  Only between sessions: see the
    contract on [Abi.Envelope.Stats.reset] — mid-session code should
    snapshot/{!Abi.Envelope.Stats.diff} instead, or use {!metrics}. *)

val pool_stats : unit -> Abi.Value.Pool.Stats.snapshot
(** Global wire-pool hit/miss counters, same global/snapshot contract
    as {!codec_stats}.  Also exported as the ["wire_pool"] member of
    {!metrics_json}. *)

val metrics : unit -> Obs.metrics
(** Aggregated observability snapshot (per-syscall counters and latency
    histograms, per-layer attribution) accumulated while [Obs.enable]d.
    Like {!codec_stats}, global rather than per-kernel: spans live in
    user space, across kernel instances. *)

val metrics_json : unit -> Obs.Json.t
(** {!metrics} rendered with syscall names resolved via
    [Abi.Sysno.name], plus a ["codec"] block ({!codec_stats}, incl.
    [fast_path]) and a ["wire_pool"] block ({!pool_stats}) — every
    runtime statistic in one document.  The [/obs/metrics] synthetic
    file serves exactly this JSON inside the simulation. *)

val drain_obs : unit -> Obs.Span.record list
(** Drain the flight recorder (oldest first). *)

val post_signal : t -> pid:int -> int -> unit
(** Inject a signal from outside the simulation (like a console ^C). *)

val set_trace_hook :
  t -> ?cost_us:int
  -> (Proc.t -> Abi.Call.t -> Abi.Value.res -> unit) option -> unit
(** The in-kernel tracing hook used by the DFSTrace comparison: when
    set, it observes every dispatched call at [cost_us] µs apiece. *)
