(** Process table entries. *)

(** Why a parked process is asleep. *)
type cond =
  | On_child                    (** wait4: any child state change *)
  | On_pipe_read of int         (** pipe id *)
  | On_pipe_write of int
  | On_fifo_read of int         (** fifo inode number *)
  | On_fifo_write of int
  | On_accept of int            (** listener id: until a connection is
                                    pending in the accept queue *)
  | On_connq of int             (** listener id: until the accept queue
                                    has room for another connection *)
  | On_time of int              (** absolute virtual deadline, µs *)
  | On_signal                   (** sigsuspend *)
  | On_select of {
      rpipes : int list;   (* pipe/sock ids awaited for readability *)
      wpipes : int list;   (* pipe/sock ids awaited for writability *)
      rfifos : int list;   (* fifo inos awaited for readability *)
      wfifos : int list;   (* fifo inos awaited for writability *)
      rlisten : int list;  (* listener ids: readable = pending conn *)
    }

type park = {
  k : (Events.trap_reply, unit) Effect.Deep.continuation;
  env : Abi.Envelope.t;         (** the in-flight call, typed view memoized
                                    across wakeup retries *)
  via : Events.via;
  cond : cond;
  saved_mask : int option;      (** sigsuspend restores this mask *)
}

type stopped = {
  sk : (Events.trap_reply, unit) Effect.Deep.continuation;
  reply : Events.trap_reply;
}

type state =
  | Runnable
  | Parked of park
  | Stopped of stopped
  | Zombie
  | Reaped

(** Per-process signal state. *)
type sigstate = {
  mutable handlers : Abi.Value.handler array;  (** index 1..31 *)
  mutable mask : int;
  mutable pending : int;
}

(** The in-address-space interception state — what
    [task_set_emulation] manipulates.  Copied on [fork] (the address
    space, and so the agent, goes with the child); cleared by a raw
    [execve]. *)
type emulation = {
  mutable vector : (Abi.Envelope.t -> Abi.Value.res) option array;
  mutable bitmap : Abi.Bitset.t;
      (** interest bitmap shadowing [vector]: bit [n] set iff
          [vector.(n)] is [Some _].  Maintained by the kernel's
          [Set_emulation] handler and {!fork_copy}; the trap fast path
          tests the bit and skips the vector for uninterested calls. *)
  mutable chain : (Abi.Envelope.t -> Abi.Value.res) array;
      (** fused dispatch chain shadowing [vector] (DESIGN.md §3.8):
          slot [n] holds the installed handler itself when
          [vector.(n) = Some h], and {!chain_unset} otherwise, so an
          interested trap in fused mode runs [chain.(n) env] with no
          array-of-option probe or match.  Recompiled at every vector
          write point ([Set_emulation], {!fork_copy}, the fresh
          emulation installed by exec). *)
  mutable sig_emul : (int -> unit) option;
}

val chain_kernel_entry : (Abi.Envelope.t -> Abi.Value.res) ref
(** Forward reference to "enter the kernel for the current process",
    filled once by [Uspace] at module initialization (Proc cannot
    depend on Uspace).  On the globals-lint allowlist. *)

val chain_unset : Abi.Envelope.t -> Abi.Value.res
(** The canonical empty chain slot: jumps straight to the kernel via
    {!chain_kernel_entry}.  Its physical identity is how
    {!emulation_consistent} recognizes a slot with no handler. *)

type t = {
  pid : int;
  mutable ppid : int;
  mutable pgrp : int;
  mutable name : string;
  mutable cred : Vfs.Fs.cred;
  mutable cwd : int;            (** inode number *)
  mutable umask : int;
  mutable fds : File.fd_entry option array;
  sigs : sigstate;
  mutable emul : emulation;
  mutable state : state;
  mutable exit_status : int;    (** wait-status encoding, valid in Zombie *)
  mutable alarm_at : int option;
  mutable syscall_count : int;  (** total traps, for accounting *)
  mutable utime_us : int;       (** virtual user time (cpu_work, agent work) *)
  mutable stime_us : int;       (** virtual system time (in-kernel call cost) *)
  wire_pool : Abi.Value.Pool.t option;
      (** free list feeding [Envelope.at_boundary] for this process's
          traps; a cache only, so [fork] gives the child a fresh one.
          Always [Some]; option-typed so the trap stub can hand it to
          [at_boundary ?pool] without allocating a [Some] per trap *)
  env_pool : Abi.Envelope.Pool.t option;
      (** free list for the envelope records themselves, feeding
          [Envelope.at_boundary ?epool] / [of_call ?epool]; same cache
          semantics and option-typing rationale as [wire_pool] *)
}

val fd_table_size : int

val fresh_emulation : unit -> emulation

val emulation_consistent : emulation -> bool
(** Runtime check of the bitmap/vector and chain/vector invariants:
    same lengths, bit [n] set exactly when slot [n] holds a handler,
    and chain slot [n] physically equal to the installed handler (or
    to {!chain_unset} when there is none).  Exercised by the property
    tests after arbitrary set/clear/fork sequences. *)

val create :
  pid:int -> ppid:int -> pgrp:int -> name:string -> cred:Vfs.Fs.cred
  -> cwd:int -> t

val fork_copy : t -> pid:int -> name:string -> t
(** Child copy: shares open files (references bumped by the caller),
    copies cwd/umask/credentials/signal dispositions/emulation vector;
    pending signals are not inherited. *)

val fd : t -> int -> File.fd_entry option
(** Bounds-checked descriptor lookup. *)

val alloc_fd : ?from:int -> t -> int option
(** Lowest free descriptor ≥ [from] (default 0). *)

val handler : t -> int -> Abi.Value.handler

val set_handler : t -> int -> Abi.Value.handler -> unit

(** Access to the currently running process, set by the scheduler
    before resuming a fibre.  The user-space stubs use it to consult
    the emulation vector without entering the kernel.

    The cell holding the current process is owned by the kernel shard
    (DESIGN.md §3.6): [Kstate.create] allocates one, entering a shard
    installs it, and {!get}/{!set} operate on whichever cell is
    installed — so one kernel's running process is unobservable from
    another.  A default cell is installed at program start. *)
module Cur : sig
  type cell

  val cell : unit -> cell
  (** A fresh, empty cell. *)

  val install : cell -> unit
  val installed : unit -> cell

  val get : unit -> t option
  val get_exn : unit -> t
  val set : t option -> unit
end
