type via = App | Htg

type trap_reply = {
  res : Abi.Value.res;
  deliver : int list;
}

type exec_spec = {
  exec_name : string;
  exec_body : unit -> int;
  keep_emulation : bool;
}

type _ Effect.t +=
  | Trap : Abi.Envelope.t * via -> trap_reply Effect.t
  | Cpu : int -> int list Effect.t
  | Exec_load : exec_spec -> unit Effect.t
  | Set_emulation :
      int list * (Abi.Envelope.t -> Abi.Value.res) option
      -> unit Effect.t
  | Get_emulation :
      int -> (Abi.Envelope.t -> Abi.Value.res) option Effect.t
  | Set_emulation_signal : (int -> unit) option -> unit Effect.t
  | Get_emulation_signal : (int -> unit) option Effect.t

exception Process_exit of int
exception Process_killed
