open Abi

type wait_key =
  | K_child of int
  | K_pipe_r of int
  | K_pipe_w of int
  | K_fifo_r of int
  | K_fifo_w of int
  | K_accept of int
  | K_connq of int
  | K_signal of int

type timer_event =
  | T_wake of int
  | T_alarm of int
  | T_select of int

type outcome =
  | Done of Value.res
  | Block of Proc.cond
  | Exited
  | Exec of Events.exec_spec

type hooks = {
  spawn : Proc.t -> (unit -> int) -> unit;
  retry : Proc.t -> unit;
}

type t = {
  shard_id : int;
  clock : Sim.Clock.t;
  fs : Vfs.Fs.t;
  console : Dev.Console.t;
  devs : Dev.table;
  procs : (int, Proc.t) Hashtbl.t;
  runq : (unit -> unit) Queue.t;
  waitqs : (wait_key, int list ref) Hashtbl.t;
  bindings : (string, File.sock) Hashtbl.t;
  registry : Registry.t;
  obs : Obs.engine;
  codec : Envelope.Stats.t;
  pool_stats : Value.Pool.Stats.t;
  epool_stats : Envelope.Pool.Stats.t;
  cur : Proc.Cur.cell;
  mutable fused_dispatch : bool;
  host_cpu_t0 : float;
  host_minor_words_t0 : float;
  host_promoted_words_t0 : float;
  host_major_collections_t0 : int;
  mutable timers : (int * timer_event) list;
  mutable next_pid : int;
  mutable next_file_id : int;
  mutable next_pipe_id : int;
  mutable next_listener_id : int;
  mutable tod_offset_us : int;
  mutable hooks : hooks;
  mutable trace_hook : (Proc.t -> Call.t -> Value.res -> unit) option;
  mutable trace_hook_cost_us : int;
  mutable retired_syscalls : int;
  mutable deadlock_kills : int;
  mutable watch : Obs.Watch.rule list;
}

let no_hooks = {
  spawn = (fun _ _ -> failwith "Kstate: hooks not installed");
  retry = (fun _ -> failwith "Kstate: hooks not installed");
}

let create ?(shard_id = 0) ?(fused = true) () =
  let clock = Sim.Clock.create () in
  let fs = Vfs.Fs.create ~now:(fun () -> Sim.Clock.now_us clock / 1_000_000) () in
  let console = Dev.Console.create () in
  (* host-side baselines for the `host` metrics block: process CPU
     time (Sys.time — this library has no unix dependency) and GC
     counters at shard creation.  Both are process-wide, so the
     derived per-trap figures are estimates, exact only when one shard
     dominates the process (the common case: one kernel per run). *)
  let q = Gc.quick_stat () in
  { shard_id; clock; fs; console;
    devs = Dev.standard_table console;
    procs = Hashtbl.create 32;
    runq = Queue.create ();
    waitqs = Hashtbl.create 32;
    bindings = Hashtbl.create 16;
    (* the shard-owned pieces that used to be module globals
       (DESIGN.md §3.6): each kernel gets fresh ones; the obs engine
       inherits the installed engine's configuration so observation
       set up before [Kernel.create] still applies *)
    registry = Registry.create ();
    obs = Obs.engine_like (Obs.installed ());
    codec = Envelope.Stats.create ();
    pool_stats = Value.Pool.Stats.create ();
    epool_stats = Envelope.Pool.Stats.create ();
    cur = Proc.Cur.cell ();
    fused_dispatch = fused;
    host_cpu_t0 = Sys.time ();
    (* [Gc.minor_words] reads the live allocation pointer;
       [quick_stat]'s field lags until the next minor collection *)
    host_minor_words_t0 = Gc.minor_words ();
    host_promoted_words_t0 = q.Gc.promoted_words;
    host_major_collections_t0 = q.Gc.major_collections;
    timers = [];
    next_pid = 1;
    next_file_id = 1;
    next_pipe_id = 1;
    next_listener_id = 1;
    tod_offset_us = 0;
    hooks = no_hooks;
    trace_hook = None;
    trace_hook_cost_us = 0;
    retired_syscalls = 0;
    deadlock_kills = 0;
    watch = [] }

(* --- the ambient current shard ----------------------------------------- *)

(* The one place the "which kernel is running?" question is answered
   for code that holds no handle (in-fibre agents, the C-library
   stubs).  [Kernel.enter] installs a shard here together with its
   obs/codec/pool/cur pieces; this ref is on the globals-lint
   allowlist. *)
module Ambient = struct
  let current : t option ref = ref None
end

let charge t us = Sim.Clock.charge t.clock us
let now_us t = Sim.Clock.now_us t.clock + t.tod_offset_us

let cred (p : Proc.t) = p.cred

(* --- process table ----------------------------------------------------- *)

let proc t pid = Hashtbl.find_opt t.procs pid

let alloc_pid t =
  let pid = t.next_pid in
  t.next_pid <- pid + 1;
  pid

let add_proc t (p : Proc.t) = Hashtbl.replace t.procs p.pid p

let children t (p : Proc.t) =
  Hashtbl.fold
    (fun _ (c : Proc.t) acc ->
      if c.ppid = p.pid && c.state <> Proc.Reaped then c :: acc else acc)
    t.procs []
  |> List.sort (fun (a : Proc.t) b -> compare a.pid b.pid)

let live_procs t =
  Hashtbl.fold
    (fun _ (p : Proc.t) acc ->
      match p.state with
      | Proc.Zombie | Proc.Reaped -> acc
      | Proc.Runnable | Proc.Parked _ | Proc.Stopped _ -> p :: acc)
    t.procs []
  |> List.sort (fun (a : Proc.t) b -> compare a.pid b.pid)

let total_syscalls t =
  Hashtbl.fold (fun _ (p : Proc.t) acc -> acc + p.syscall_count)
    t.procs t.retired_syscalls

(* --- run queue, wait queues and timers --------------------------------- *)

let enqueue t thunk = Queue.add thunk t.runq

let waitq t key =
  match Hashtbl.find_opt t.waitqs key with
  | Some q -> q
  | None ->
    let q = ref [] in
    Hashtbl.replace t.waitqs key q;
    q

let sleep_on t key pid =
  let q = waitq t key in
  if not (List.mem pid !q) then q := pid :: !q

let cond_matches (cond : Proc.cond) (key : wait_key) =
  match cond, key with
  | Proc.On_child, K_child _ -> true
  | Proc.On_pipe_read i, K_pipe_r j -> i = j
  | Proc.On_pipe_write i, K_pipe_w j -> i = j
  | Proc.On_fifo_read i, K_fifo_r j -> i = j
  | Proc.On_fifo_write i, K_fifo_w j -> i = j
  | Proc.On_accept i, K_accept j -> i = j
  | Proc.On_connq i, K_connq j -> i = j
  | Proc.On_signal, K_signal _ -> true
  | Proc.On_select s, K_pipe_r j -> List.mem j s.rpipes
  | Proc.On_select s, K_pipe_w j -> List.mem j s.wpipes
  | Proc.On_select s, K_fifo_r j -> List.mem j s.rfifos
  | Proc.On_select s, K_fifo_w j -> List.mem j s.wfifos
  | Proc.On_select s, K_accept j -> List.mem j s.rlisten
  | _ -> false

let wake_key t key =
  match Hashtbl.find_opt t.waitqs key with
  | None -> ()
  | Some q ->
    let pids = !q in
    q := [];
    List.iter
      (fun pid ->
        match proc t pid with
        | Some p ->
          (match p.Proc.state with
           | Proc.Parked park when cond_matches park.cond key ->
             t.hooks.retry p
           | _ -> ())
        | None -> ())
      (List.rev pids)

let add_timer t ~at ev =
  let rec insert = function
    | [] -> [ at, ev ]
    | (at', _) as hd :: tl when at' <= at -> hd :: insert tl
    | rest -> (at, ev) :: rest
  in
  t.timers <- insert t.timers

let timer_pid = function T_wake pid | T_alarm pid | T_select pid -> pid

let cancel_timers_for t pid =
  t.timers <- List.filter (fun (_, ev) -> timer_pid ev <> pid) t.timers

let cancel_select_timers t pid =
  t.timers <-
    List.filter
      (fun (_, ev) -> match ev with T_select p -> p <> pid | _ -> true)
      t.timers

let has_select_timer t pid =
  List.exists
    (fun (_, ev) -> match ev with T_select p -> p = pid | _ -> false)
    t.timers

let next_timer t =
  match t.timers with [] -> None | hd :: _ -> Some hd

(* Allocation-free variant for the fused CPU-charge fast path, which
   asks this once or more per dispatch level: the earliest deadline,
   or [max_int] with no timers armed. *)
let next_timer_at t =
  match t.timers with [] -> max_int | (at, _) :: _ -> at

let pop_timer t =
  match t.timers with [] -> () | _ :: tl -> t.timers <- tl

(* --- open files --------------------------------------------------------- *)

let new_file t kind ~flags =
  let id = t.next_file_id in
  t.next_file_id <- id + 1;
  (match kind with
   | File.Vnode inode | File.Fifo_read (inode, _) | File.Fifo_write (inode, _)
     -> Vfs.Fs.incr_opens t.fs inode.Vfs.Inode.ino
   | File.Pipe_read _ | File.Pipe_write _ | File.Sock _ -> ());
  (match kind with
   | File.Pipe_read p -> Vfs.Pipebuf.add_reader p.buf
   | File.Pipe_write p -> Vfs.Pipebuf.add_writer p.buf
   | File.Fifo_read (_, b) -> Vfs.Pipebuf.add_reader b
   | File.Fifo_write (_, b) -> Vfs.Pipebuf.add_writer b
   | File.Sock _ ->
     (* a connection's pipe references belong to the conn from the
        moment it is established ([new_conn_pair]), not to the file
        wrapping it — accept adopts a pending conn whose references
        connect already took, so taking them again here would double
        count *)
     ()
   | File.Vnode _ -> ());
  File.make ~id kind ~flags

let new_pipe t =
  let pipe_id = t.next_pipe_id in
  t.next_pipe_id <- pipe_id + 1;
  let pipe = { File.pipe_id; buf = Vfs.Pipebuf.create () } in
  let r = new_file t (File.Pipe_read pipe) ~flags:Flags.Open.o_rdonly in
  let w = new_file t (File.Pipe_write pipe) ~flags:Flags.Open.o_wronly in
  r, w

(* A crossed pair of fresh pipes forming both endpoints of a stream
   connection, references for both sides already taken: the first conn
   reads p1 / writes p2, the second the reverse. *)
let new_conn_pair t =
  let mk () =
    let pipe_id = t.next_pipe_id in
    t.next_pipe_id <- pipe_id + 1;
    { File.pipe_id; buf = Vfs.Pipebuf.create () }
  in
  let p1 = mk () in
  let p2 = mk () in
  Vfs.Pipebuf.add_reader p1.buf;
  Vfs.Pipebuf.add_writer p1.buf;
  Vfs.Pipebuf.add_reader p2.buf;
  Vfs.Pipebuf.add_writer p2.buf;
  { File.rx = p1; tx = p2; shut_rd = false; shut_wr = false },
  { File.rx = p2; tx = p1; shut_rd = false; shut_wr = false }

let new_listener t ~backlog =
  let lid = t.next_listener_id in
  t.next_listener_id <- lid + 1;
  { File.lid; backlog = max 1 backlog; pending = Queue.create ();
    lclosed = false }

let new_socketpair t =
  let c1, c2 = new_conn_pair t in
  let a =
    new_file t (File.Sock { File.sock = File.S_conn c1 })
      ~flags:Flags.Open.o_rdwr
  in
  let b =
    new_file t (File.Sock { File.sock = File.S_conn c2 })
      ~flags:Flags.Open.o_rdwr
  in
  a, b

let install_fd t p ?(cloexec = false) ?(from = 0) file =
  ignore t;
  match Proc.alloc_fd ~from p with
  | None -> Error Errno.EMFILE
  | Some fd ->
    p.Proc.fds.(fd) <- Some { File.file; cloexec };
    Ok fd

let retain_file (f : File.t) = f.refs <- f.refs + 1

(* Release one direction of a connection endpoint.  The shut flags make
   these idempotent: [shutdown] drops a direction early, and the final
   close must then skip it — each pipe reference is dropped exactly
   once over the endpoint's lifetime. *)
let shut_conn_rd t (c : File.conn) =
  if not c.File.shut_rd then begin
    c.File.shut_rd <- true;
    Vfs.Pipebuf.drop_reader c.File.rx.buf;
    (* the peer may be blocked writing into our receive pipe *)
    wake_key t (K_pipe_w c.File.rx.pipe_id)
  end

let shut_conn_wr t (c : File.conn) =
  if not c.File.shut_wr then begin
    c.File.shut_wr <- true;
    Vfs.Pipebuf.drop_writer c.File.tx.buf;
    (* the peer may be blocked reading from our send pipe *)
    wake_key t (K_pipe_r c.File.tx.pipe_id)
  end

let release_conn t (c : File.conn) =
  shut_conn_rd t c;
  shut_conn_wr t c

(* Drop [addr]'s binding iff it still belongs to this socket. *)
let unbind t addr (s : File.sock) =
  match Hashtbl.find_opt t.bindings addr with
  | Some s' when s' == s -> Hashtbl.remove t.bindings addr
  | _ -> ()

let release_file t (f : File.t) =
  f.refs <- f.refs - 1;
  if f.refs <= 0 then begin
    match f.kind with
    | File.Vnode inode ->
      Vfs.Fs.decr_opens t.fs inode.Vfs.Inode.ino
    | File.Pipe_read p ->
      Vfs.Pipebuf.drop_reader p.buf;
      wake_key t (K_pipe_w p.pipe_id)
    | File.Pipe_write p ->
      Vfs.Pipebuf.drop_writer p.buf;
      wake_key t (K_pipe_r p.pipe_id)
    | File.Fifo_read (inode, b) ->
      Vfs.Pipebuf.drop_reader b;
      Vfs.Fs.decr_opens t.fs inode.Vfs.Inode.ino;
      wake_key t (K_fifo_w inode.Vfs.Inode.ino)
    | File.Fifo_write (inode, b) ->
      Vfs.Pipebuf.drop_writer b;
      Vfs.Fs.decr_opens t.fs inode.Vfs.Inode.ino;
      wake_key t (K_fifo_r inode.Vfs.Inode.ino)
    | File.Sock s ->
      (match s.File.sock with
       | File.S_fresh -> ()
       | File.S_bound addr -> unbind t addr s
       | File.S_conn c -> release_conn t c
       | File.S_listening (addr, l) ->
         unbind t addr s;
         l.File.lclosed <- true;
         (* connections established but never accepted are reset: both
            directions of each pending server endpoint go away, so the
            peer reads EOF and its writes raise EPIPE *)
         Queue.iter (release_conn t) l.File.pending;
         Queue.clear l.File.pending;
         (* blocked accepters must fail with EINVAL, blocked connectors
            with ECONNRESET — both re-check on retry *)
         wake_key t (K_accept l.File.lid);
         wake_key t (K_connq l.File.lid))
  end

let close_fd t p fd =
  match Proc.fd p fd with
  | None -> Error Errno.EBADF
  | Some entry ->
    p.Proc.fds.(fd) <- None;
    release_file t entry.File.file;
    Ok ()

(* --- signals ------------------------------------------------------------ *)

let is_stop_signal s =
  s = Signal.sigstop || s = Signal.sigtstp
  || s = Signal.sigttin || s = Signal.sigttou

let disposition (p : Proc.t) s =
  if s = Signal.sigkill then `Terminate
  else if s = Signal.sigstop then `Stop
  else
    match Proc.handler p s with
    | Value.H_fn _ -> `Handler
    | Value.H_ignore -> `Ignore
    | Value.H_default ->
      (match Signal.default_action s with
       | Signal.Terminate -> `Terminate
       | Signal.Ignore -> `Ignore
       | Signal.Stop -> `Stop
       | Signal.Continue -> `Continue)

let set_pending (p : Proc.t) s =
  p.sigs.pending <- Signal.Mask.add p.sigs.pending s

let clear_pending (p : Proc.t) s =
  p.sigs.pending <- Signal.Mask.remove p.sigs.pending s

let blocked (p : Proc.t) s =
  Signal.Mask.mem p.sigs.mask s
  && s <> Signal.sigkill && s <> Signal.sigstop

(* Forward references resolved after do_exit is defined. *)
let rec post_signal t (p : Proc.t) s =
  match p.state with
  | Proc.Zombie | Proc.Reaped -> ()
  | Proc.Runnable | Proc.Parked _ | Proc.Stopped _ ->
    if s = Signal.sigcont then begin
      (* a continue clears pending stops, and vice versa *)
      List.iter (clear_pending p)
        [ Signal.sigstop; Signal.sigtstp; Signal.sigttin; Signal.sigttou ]
    end;
    if is_stop_signal s then clear_pending p Signal.sigcont;
    set_pending p s;
    act_on_pending t p s

and act_on_pending t (p : Proc.t) s =
  if blocked p s then ()
  else
    match disposition p s with
    | `Ignore -> clear_pending p s
    | `Continue ->
      clear_pending p s;
      (match p.state with
       | Proc.Stopped st ->
         p.state <- Proc.Runnable;
         enqueue t (fun () -> resume_stopped p st)
       | Proc.Runnable | Proc.Parked _ | Proc.Zombie | Proc.Reaped -> ())
    | `Terminate ->
      (match p.state with
       | Proc.Parked park ->
         clear_pending p s;
         terminate_fiber t p park.k (Flags.Wait.sig_status s)
       | Proc.Stopped st ->
         clear_pending p s;
         terminate_fiber t p st.sk (Flags.Wait.sig_status s)
       | Proc.Runnable ->
         (* acted on at the next trap boundary via collect_deliverable;
            SIGKILL additionally prevents further progress there *)
         ()
       | Proc.Zombie | Proc.Reaped -> ())
    | `Handler ->
      (match p.state with
       | Proc.Parked park ->
         (* interrupt the slow call: EINTR plus handler delivery.  If
            the call was a select with a timeout armed, its T_select
            timer must die with it — a stale one would later fire into
            whatever call the process makes next *)
         clear_pending p s;
         cancel_select_timers t p.pid;
         (match park.saved_mask with
          | Some m -> p.sigs.mask <- m
          | None -> ());
         p.state <- Proc.Runnable;
         let reply =
           { Events.res = Error Errno.EINTR; deliver = [ s ] }
         in
         enqueue t (fun () -> resume_parked p park reply)
       | Proc.Runnable | Proc.Stopped _ | Proc.Zombie | Proc.Reaped ->
         (* delivered at the next trap boundary *)
         ())
    | `Stop ->
      (match p.state with
       | Proc.Runnable | Proc.Parked _ ->
         (* simplification: stops take effect at the next trap
            boundary (a process blocked forever will not stop) *)
         ()
       | Proc.Stopped _ | Proc.Zombie | Proc.Reaped -> clear_pending p s)

and resume_parked (p : Proc.t) (park : Proc.park) reply =
  match p.state with
  | Proc.Runnable ->
    Proc.Cur.set (Some p);
    Effect.Deep.continue park.k reply;
    Proc.Cur.set None
  | Proc.Zombie | Proc.Reaped ->
    (try Effect.Deep.discontinue park.k Events.Process_killed
     with Events.Process_killed | _ -> ())
  | Proc.Parked _ | Proc.Stopped _ -> ()

and resume_stopped (p : Proc.t) (st : Proc.stopped) =
  match p.state with
  | Proc.Runnable ->
    Proc.Cur.set (Some p);
    Effect.Deep.continue st.sk st.reply;
    Proc.Cur.set None
  | Proc.Zombie | Proc.Reaped ->
    (try Effect.Deep.discontinue st.sk Events.Process_killed
     with Events.Process_killed | _ -> ())
  | Proc.Parked _ | Proc.Stopped _ -> ()

and terminate_fiber t (p : Proc.t) k status =
  do_exit t p status;
  (try Effect.Deep.discontinue k Events.Process_killed
   with Events.Process_killed | _ -> ())

and do_exit t (p : Proc.t) status =
  (match p.state with
   | Proc.Zombie | Proc.Reaped -> ()
   | Proc.Runnable | Proc.Parked _ | Proc.Stopped _ ->
     (* the exit trap's span never returns to its opener; force-close *)
     Obs.abort_pid p.pid;
     (* close every descriptor *)
     Array.iteri
       (fun i entry ->
         match entry with
         | Some (e : File.fd_entry) ->
           p.fds.(i) <- None;
           release_file t e.file
         | None -> ())
       p.fds;
     cancel_timers_for t p.pid;
     p.state <- Proc.Zombie;
     p.exit_status <- status;
     t.retired_syscalls <- t.retired_syscalls + p.syscall_count;
     p.syscall_count <- 0;
     (* orphans go to init (pid 1); init's own orphans self-reap *)
     Hashtbl.iter
       (fun _ (c : Proc.t) ->
         if c.ppid = p.pid && c.state <> Proc.Reaped then begin
           c.ppid <- 1;
           if c.state = Proc.Zombie && p.pid <> 1 then begin
             match proc t 1 with
             | Some init when init.state = Proc.Zombie || init.state = Proc.Reaped ->
               c.state <- Proc.Reaped
             | _ -> ()
           end
         end)
       t.procs;
     (* notify the parent *)
     (match proc t p.ppid with
      | Some parent when parent.state <> Proc.Zombie
                      && parent.state <> Proc.Reaped ->
        post_signal t parent Signal.sigchld;
        wake_key t (K_child parent.pid)
      | _ ->
        (* no live parent: nobody will wait for us *)
        p.state <- Proc.Reaped))

let collect_deliverable _t (p : Proc.t) =
  if p.sigs.pending = 0 then []
  else begin
    let deliver = ref [] in
    for s = 1 to Signal.max_signal do
      if Signal.Mask.mem p.sigs.pending s && not (blocked p s) then begin
        match disposition p s with
        | `Ignore | `Continue -> clear_pending p s
        | `Handler ->
          clear_pending p s;
          deliver := s :: !deliver
        | `Terminate | `Stop ->
          (* the caller handles terminal dispositions via proc state;
             mark them by leaving the bit set *)
          ()
      end
    done;
    List.rev !deliver
  end

let wake_parked_with t (p : Proc.t) (park : Proc.park) reply =
  p.state <- Proc.Runnable;
  enqueue t (fun () -> resume_parked p park reply)

(* --- trace hooks -------------------------------------------------------- *)

let set_trace_hook t ?(cost_us = 0) hook =
  t.trace_hook <- hook;
  t.trace_hook_cost_us <- cost_us

let run_trace_hook t p call res =
  match t.trace_hook with
  | None -> ()
  | Some hook ->
    charge t t.trace_hook_cost_us;
    hook p call res
