(** Kernel state and the operations on it that do not involve running
    fibres: the process and file tables, wait queues, timers, signal
    posting and process exit.  The scheduler and syscall dispatcher sit
    on top ({!Kernel}, {!Syscalls}). *)

type wait_key =
  | K_child of int        (** parent pid *)
  | K_pipe_r of int
  | K_pipe_w of int
  | K_fifo_r of int       (** fifo ino *)
  | K_fifo_w of int
  | K_accept of int       (** listener id: a connection arrived *)
  | K_connq of int        (** listener id: the accept queue drained *)
  | K_signal of int       (** pid in sigsuspend *)

type timer_event =
  | T_wake of int         (** pid sleeping *)
  | T_alarm of int        (** pid to receive SIGALRM *)
  | T_select of int       (** pid's select timeout *)

(** Result of dispatching one system call. *)
type outcome =
  | Done of Abi.Value.res
  | Block of Proc.cond    (** park the caller; retried on wake *)
  | Exited                (** the caller is gone; abandon the fibre *)
  | Exec of Events.exec_spec
      (** replace the caller's program text; abandon the fibre *)

(** Functions supplied by the scheduler layer at start-up. *)
type hooks = {
  spawn : Proc.t -> (unit -> int) -> unit;
      (** enqueue a fresh fibre for an (already registered) process *)
  retry : Proc.t -> unit;
      (** make a parked process re-attempt its system call *)
}

type t = {
  shard_id : int;  (** position in a [Kernel.Cluster], 0 standalone *)
  clock : Sim.Clock.t;
  fs : Vfs.Fs.t;
  console : Dev.Console.t;
  devs : Dev.table;
  procs : (int, Proc.t) Hashtbl.t;
  runq : (unit -> unit) Queue.t;
  waitqs : (wait_key, int list ref) Hashtbl.t;
  bindings : (string, File.sock) Hashtbl.t;
      (** socket address namespace: [bind] claims a name (EADDRINUSE on
          conflict), [connect] resolves one, closing the bound or
          listening socket releases it *)
  registry : Registry.t;           (** shard-owned executable images *)
  obs : Obs.engine;                (** shard-owned observability engine *)
  codec : Abi.Envelope.Stats.t;    (** shard-owned codec counters *)
  pool_stats : Abi.Value.Pool.Stats.t;  (** shard-owned wire-pool counters *)
  epool_stats : Abi.Envelope.Pool.Stats.t;
      (** shard-owned envelope-record-pool counters *)
  cur : Proc.Cur.cell;             (** shard-owned current process *)
  mutable fused_dispatch : bool;
      (** dispatch interested traps through the per-process fused
          closure chains (and take the inline CPU-charge fast path)
          instead of the generic option-vector walk.  Semantically
          invisible — the conformance gate checks signatures are
          byte-identical either way — so flipping it mid-run is legal;
          it selects host-speed machinery only. *)
  host_cpu_t0 : float;             (** [Sys.time] at shard creation *)
  host_minor_words_t0 : float;     (** GC baselines at shard creation, *)
  host_promoted_words_t0 : float;  (** for the [host] metrics block *)
  host_major_collections_t0 : int;
  mutable timers : (int * timer_event) list;  (** sorted by time *)
  mutable next_pid : int;
  mutable next_file_id : int;
  mutable next_pipe_id : int;
  mutable next_listener_id : int;
  mutable tod_offset_us : int;   (** settimeofday adjustment *)
  mutable hooks : hooks;
  mutable trace_hook : (Proc.t -> Abi.Call.t -> Abi.Value.res -> unit) option;
  mutable trace_hook_cost_us : int;
  mutable retired_syscalls : int;
  mutable deadlock_kills : int;
  mutable watch : Obs.Watch.rule list;
      (** watchdog rules evaluated over this shard's metrics; stored on
          the shard handle, not the obs engine, so rules survive
          [Obs.reset] and stay per-shard in a cluster *)
}

val create : ?shard_id:int -> ?fused:bool -> unit -> t
(** A fresh shard: everything above is newly allocated, except that the
    obs engine inherits the {e configuration} (enablement, sampling,
    ring capacity — never the data) of the currently installed engine,
    preserving the "configure observation, then create the kernel"
    call order.  [fused] (default [true]) selects fused trap dispatch;
    [~fused:false] keeps the generic option-vector walk, the honest
    baseline the host-speed bench compares against. *)

(** The ambient current shard: which kernel's state in-fibre code that
    holds no handle (agents, the C-library stubs) should reach.
    [Kernel.enter] maintains it; read it via [Kernel.current].  On the
    globals-lint allowlist. *)
module Ambient : sig
  val current : t option ref
end

val charge : t -> int -> unit
val now_us : t -> int
(** Virtual wall time including the [settimeofday] offset. *)

val cred : Proc.t -> Vfs.Fs.cred

(* --- process table --- *)

val proc : t -> int -> Proc.t option
val alloc_pid : t -> int
val add_proc : t -> Proc.t -> unit
val children : t -> Proc.t -> Proc.t list
val live_procs : t -> Proc.t list
val total_syscalls : t -> int

(* --- wait queues and timers --- *)

val enqueue : t -> (unit -> unit) -> unit
val sleep_on : t -> wait_key -> int -> unit
val wake_key : t -> wait_key -> unit
(** Retry every parked process on the queue (liveness is re-checked). *)

val add_timer : t -> at:int -> timer_event -> unit
val cancel_timers_for : t -> int -> unit
val cancel_select_timers : t -> int -> unit
val has_select_timer : t -> int -> bool
val next_timer : t -> (int * timer_event) option

val next_timer_at : t -> int
(** Earliest timer deadline, [max_int] when none are armed.  Unlike
    {!next_timer} this never allocates — the fused CPU-charge fast
    path reads it on every dispatch level. *)

val pop_timer : t -> unit

(* --- open files and descriptors --- *)

val new_file : t -> File.kind -> flags:int -> File.t
val new_pipe : t -> File.t * File.t
(** Read end, write end. *)

val new_socketpair : t -> File.t * File.t
(** Two connected bidirectional endpoints. *)

val new_conn_pair : t -> File.conn * File.conn
(** Both endpoints of a fresh stream connection — two new pipes held
    crossed, the pipe references for both sides already taken.  The
    caller owns releasing them (via {!release_file} on a wrapping
    socket, or {!release_conn} directly). *)

val new_listener : t -> backlog:int -> File.listener
(** A fresh accept queue with a new listener id; backlog clamped ≥ 1. *)

val shut_conn_rd : t -> File.conn -> unit
val shut_conn_wr : t -> File.conn -> unit
(** Release one direction of a connection endpoint and wake the peer;
    idempotent via the conn's shut flags, so [shutdown] followed by
    [close] drops each pipe reference exactly once. *)

val release_conn : t -> File.conn -> unit
(** Release both directions. *)

val unbind : t -> string -> File.sock -> unit
(** Drop [addr] from {!field-bindings} iff it still belongs to this
    socket. *)

val install_fd : t -> Proc.t -> ?cloexec:bool -> ?from:int -> File.t
  -> (int, Abi.Errno.t) result
(** Place an (already referenced) file in the lowest free slot. *)

val retain_file : File.t -> unit
val release_file : t -> File.t -> unit
(** Drop one reference; at zero, release inode / pipe endpoints and
    wake the peer end. *)

val close_fd : t -> Proc.t -> int -> (unit, Abi.Errno.t) result

(* --- signals --- *)

val post_signal : t -> Proc.t -> int -> unit
(** Make a signal pending and act on it as far as the target's state
    allows (terminate, stop, continue, or interrupt a sleep). *)

val collect_deliverable : t -> Proc.t -> int list
(** Drain pending, unmasked, user-handled signals (clearing their
    pending bits) and apply default actions for the rest.  May
    terminate or stop [Runnable] processes as a side effect; the caller
    must re-check the process state afterwards. *)

val wake_parked_with : t -> Proc.t -> Proc.park -> Events.trap_reply -> unit
(** Resume a parked process with an explicit reply (used by timers). *)

val do_exit : t -> Proc.t -> int -> unit
(** Terminate with the given wait-status: close descriptors, zombify,
    reparent children to pid 1, notify and wake the parent. *)

(* --- tracing hooks (the in-kernel DFSTrace comparator) --- *)

val set_trace_hook :
  t -> ?cost_us:int -> (Proc.t -> Abi.Call.t -> Abi.Value.res -> unit) option
  -> unit

val run_trace_hook : t -> Proc.t -> Abi.Call.t -> Abi.Value.res -> unit
