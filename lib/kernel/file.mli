(** Kernel open-file objects — the system-wide "file table".

    One [t] per successful [open]/[pipe]; descriptors in different
    processes may share an entry (after [fork] or [dup]), in which case
    they share the seek offset, exactly as in BSD. *)

(** An anonymous pipe with its two wait queues' identity. *)
type pipe = {
  pipe_id : int;
  buf : Vfs.Pipebuf.t;
}

(** One endpoint of a stream connection: reads drain [rx], writes fill
    [tx]; the peer holds the same pipes crossed.  The shut flags record
    which pipe references [shutdown] already dropped so the final close
    releases each side exactly once. *)
type conn = {
  rx : pipe;
  tx : pipe;
  mutable shut_rd : bool;
  mutable shut_wr : bool;
}

(** A listening socket's bounded accept queue.  [lid] is its identity
    on the wait queues (accept blocks on it like a pipe read; a full
    queue blocks connectors on the same id); [pending] holds
    established connections no [accept] has adopted yet — their pipes
    already carry the server side's references, so a listener closed
    with pending connections resets them (peer reads EOF, peer writes
    EPIPE). *)
type listener = {
  lid : int;
  backlog : int;
  pending : conn Queue.t;
  mutable lclosed : bool;
}

(** The socket lifecycle: fresh after [socket], named after [bind],
    queueing after [listen], streaming after [connect]/[accept] (and
    directly for [socketpair] endpoints). *)
type sock_state =
  | S_fresh
  | S_bound of string
  | S_listening of string * listener
  | S_conn of conn

type sock = { mutable sock : sock_state }

type kind =
  | Vnode of Vfs.Inode.t             (** regular file, directory, device *)
  | Pipe_read of pipe
  | Pipe_write of pipe
  | Fifo_read of Vfs.Inode.t * Vfs.Pipebuf.t
  | Fifo_write of Vfs.Inode.t * Vfs.Pipebuf.t
  | Sock of sock

type t = {
  id : int;                          (** unique open-file id *)
  kind : kind;
  mutable offset : int;              (** byte offset, or entry index for
                                         directory reads *)
  mutable flags : int;               (** open flags; F_SETFL updates *)
  mutable refs : int;                (** descriptor references *)
}

val make : id:int -> kind -> flags:int -> t

val is_readable : t -> bool
val is_writable : t -> bool

val inode : t -> Vfs.Inode.t option

val conn_of : t -> conn option
(** The established connection behind a socket descriptor, if any. *)

val listener_of : t -> listener option

(** A slot in a process descriptor table. *)
type fd_entry = {
  file : t;
  mutable cloexec : bool;
}
