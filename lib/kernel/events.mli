(** Effect declarations shared by the scheduler (handler side) and the
    user-space stubs (perform side).

    A simulated process is an OCaml fibre; everything it asks of the
    kernel is an effect performed here and handled by the scheduler in
    {!Kernel}. *)

(** How a trap reached the kernel: directly from the application, or
    through [htg_unix_syscall] (which bypasses the emulation vector and
    costs an extra 37 µs, Table 3-4). *)
type via = App | Htg

(** What a trap resumes with: the call's result, plus any signals the
    kernel decided must be delivered to user-space handlers before the
    stub returns to the application. *)
type trap_reply = {
  res : Abi.Value.res;
  deliver : int list;
}

(** Parameters of the exec-load Mach-style primitive: replace the
    calling process's program text.  [keep_emulation] preserves the
    interception vector across the exec — the raw [execve] system call
    clears it (the new address space would not contain the agent), so
    the toolkit must reimplement [execve] on top of this primitive,
    as described in §3.5.2 of the paper. *)
type exec_spec = {
  exec_name : string;
  exec_body : unit -> int;
  keep_emulation : bool;
}

type _ Effect.t +=
  | Trap : Abi.Envelope.t * via -> trap_reply Effect.t
      (** A system call arriving at the kernel, as a decode-once
          envelope: the kernel reuses a typed view materialized by any
          agent above it rather than decoding again. *)
  | Cpu : int -> int list Effect.t
      (** Charge [n] µs of user computation to the virtual clock.  Also
          a scheduling and signal-check point: returns the signals to
          deliver to user handlers. *)
  | Exec_load : exec_spec -> unit Effect.t
      (** Never returns: the scheduler abandons the current fibre. *)
  | Set_emulation :
      int list * (Abi.Envelope.t -> Abi.Value.res) option
      -> unit Effect.t
      (** [task_set_emulation]: install (or, with [None], clear) the
          in-address-space handler for the given syscall numbers. *)
  | Get_emulation :
      int -> (Abi.Envelope.t -> Abi.Value.res) option Effect.t
      (** Read the current handler for one number (used to chain
          stacked agents). *)
  | Set_emulation_signal : (int -> unit) option -> unit Effect.t
      (** Interpose on incoming signals: when set, user-handled signals
          are delivered to this function instead of directly to the
          application's handler. *)
  | Get_emulation_signal : (int -> unit) option Effect.t

exception Process_exit of int
(** Raised inside a fibre to unwind it after [_exit]. *)

exception Process_killed
(** Discontinued into a fibre the kernel terminates (uncatchable
    termination: SIGKILL and friends). *)
