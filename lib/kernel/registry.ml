type image = argv:string array -> envp:string array -> unit -> int

(* One registry per kernel shard (DESIGN.md §3.6): images registered
   against one kernel are invisible to every other, so sequential or
   coexisting kernels cannot leak programs into each other. *)
type t = { images : (string, image) Hashtbl.t }

let create () = { images = Hashtbl.create 32 }

let register t name image = Hashtbl.replace t.images name image
let lookup t name = Hashtbl.find_opt t.images name

let registered t =
  List.sort compare
    (Hashtbl.fold (fun name _ acc -> name :: acc) t.images [])

let magic = "#!IMAGE "

let file_content name = magic ^ name ^ "\n"

let image_of_content content =
  let ml = String.length magic in
  if String.length content > ml && String.sub content 0 ml = magic then begin
    match String.index_opt content '\n' with
    | Some nl -> Some (String.sub content ml (nl - ml))
    | None -> Some (String.sub content ml (String.length content - ml))
  end
  else None
