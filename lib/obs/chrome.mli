(** Chrome/Perfetto [trace_event] rendering of flight-recorder records
    (DESIGN.md §3.4).

    Each simulated pid becomes a trace process; each (depth, layer)
    pair a segment was recorded at becomes a thread within it (named
    ["d<depth> <layer>"], ordered outermost-first), with thread 0
    reserved for point events.  Segments render as complete events
    ([ph:"X"], [ts]/[dur] in virtual µs), trace-agent calls and
    signal/abort marks as instant events ([ph:"i"]); [ph:"M"] metadata
    events name the processes and threads.  The result is a bare JSON
    array of events, the form both [chrome://tracing] and Perfetto
    load directly. *)

val to_json :
  ?name:(int -> string) ->
  ?pid_label:(int -> string) ->
  Span.record list ->
  Json.t
(** [name] renders syscall numbers (callers pass [Abi.Sysno.name]; obs
    itself sits below [abi] and cannot).  [pid_label] names the trace
    process for a pid (default ["pid <n>"]).  Metadata events first,
    then all events sorted by timestamp. *)

val to_string :
  ?name:(int -> string) ->
  ?pid_label:(int -> string) ->
  Span.record list ->
  string
(** [to_json] rendered compactly (no trailing newline). *)

val shard_stride : int
(** Pid offset between shard lanes in the sharded export: shard [i]'s
    pid [p] renders as process [i * shard_stride + p]. *)

val to_json_sharded :
  ?name:(int -> string) -> (int * Span.record list) list -> Json.t
(** Merge per-shard record streams into one trace.  Every shard runs
    its own pid 1, so pids are offset by [shard * shard_stride] to
    keep lanes disjoint; processes are labelled ["s<shard> pid <n>"]. *)

val to_string_sharded :
  ?name:(int -> string) -> (int * Span.record list) list -> string
(** [to_json_sharded] rendered compactly (no trailing newline). *)
