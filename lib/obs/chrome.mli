(** Chrome/Perfetto [trace_event] rendering of flight-recorder records
    (DESIGN.md §3.4).

    Each simulated pid becomes a trace process; each (depth, layer)
    pair a segment was recorded at becomes a thread within it (named
    ["d<depth> <layer>"], ordered outermost-first), with thread 0
    reserved for point events.  Segments render as complete events
    ([ph:"X"], [ts]/[dur] in virtual µs), trace-agent calls and
    signal/abort marks as instant events ([ph:"i"]); [ph:"M"] metadata
    events name the processes and threads.  The result is a bare JSON
    array of events, the form both [chrome://tracing] and Perfetto
    load directly. *)

val to_json :
  ?name:(int -> string) ->
  ?pid_label:(int -> string) ->
  ?edges:Causal.edge list ->
  Span.record list ->
  Json.t
(** [name] renders syscall numbers (callers pass [Abi.Sysno.name]; obs
    itself sits below [abi] and cannot).  [pid_label] names the trace
    process for a pid (default ["pid <n>"]; agentrun passes the
    image/workload name from the kernel's process table).  [edges]
    render as causal flow events — a [ph:"s"] start on the source
    span's slice and a [ph:"f"] finish (binding point ["e"]) on the
    destination's, matched by id; edges whose endpoint spans are not
    among the records (ring-dropped or sampler-skipped) are omitted.
    Metadata events first, then all events sorted by timestamp. *)

val to_string :
  ?name:(int -> string) ->
  ?pid_label:(int -> string) ->
  ?edges:Causal.edge list ->
  Span.record list ->
  string
(** [to_json] rendered compactly (no trailing newline). *)

val shard_stride : int
(** Pid offset between shard lanes in the sharded export: shard [i]'s
    pid [p] renders as process [i * shard_stride + p]. *)

val to_json_sharded :
  ?name:(int -> string) ->
  ?pid_label:(int -> string) ->
  ?edges:Causal.edge list ->
  (int * Span.record list) list ->
  Json.t
(** Merge per-shard record streams into one trace.  Every shard runs
    its own pid 1, so pids are offset by [shard * shard_stride] to
    keep lanes disjoint; [pid_label] receives the offset pid and
    defaults to ["s<shard> pid <n>"].  [edges] may span shards — each
    endpoint's pid is offset through its own shard before the flow
    events bind. *)

val to_string_sharded :
  ?name:(int -> string) ->
  ?pid_label:(int -> string) ->
  ?edges:Causal.edge list ->
  (int * Span.record list) list ->
  string
(** [to_json_sharded] rendered compactly (no trailing newline). *)
