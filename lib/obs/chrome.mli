(** Chrome/Perfetto [trace_event] rendering of flight-recorder records
    (DESIGN.md §3.4).

    Each simulated pid becomes a trace process; each (depth, layer)
    pair a segment was recorded at becomes a thread within it (named
    ["d<depth> <layer>"], ordered outermost-first), with thread 0
    reserved for point events.  Segments render as complete events
    ([ph:"X"], [ts]/[dur] in virtual µs), trace-agent calls and
    signal/abort marks as instant events ([ph:"i"]); [ph:"M"] metadata
    events name the processes and threads.  The result is a bare JSON
    array of events, the form both [chrome://tracing] and Perfetto
    load directly. *)

val to_json : ?name:(int -> string) -> Span.record list -> Json.t
(** [name] renders syscall numbers (callers pass [Abi.Sysno.name]; obs
    itself sits below [abi] and cannot).  Metadata events first, then
    all events sorted by timestamp. *)

val to_string : ?name:(int -> string) -> Span.record list -> string
(** [to_json] rendered compactly (no trailing newline). *)
