(** Flight-recorder records: per-layer trap segments, trace-agent call
    events, and point marks (signals, aborted spans), with one JSONL
    codec shared by [agentrun --trace-out], the [/obs/spans] synthetic
    file, and the tests. *)

type segment = {
  span : int;       (** span id; unique per traced trap within a session *)
  pid : int;        (** simulated process that issued the trap *)
  sysno : int;      (** syscall number of the trap *)
  layer : string;   (** "uspace", an agent's name, "downlink", "kernel" *)
  depth : int;      (** nesting depth of this layer within the span, 0 = outermost *)
  start_us : int;   (** virtual-clock entry time *)
  self_us : int;    (** time in this layer minus enclosed layers *)
  total_us : int;   (** entry-to-exit time including enclosed layers *)
  decodes : int;    (** envelope decodes attributed to this layer *)
  encodes : int;    (** envelope encodes attributed to this layer *)
  rewrites : int;   (** in-flight call rewrites attributed to this layer *)
}

type call = {
  c_span : int;             (** enclosing span id, 0 when tracing is off *)
  c_pid : int;
  c_t_us : int;             (** virtual-clock time of the event *)
  c_name : string;          (** syscall name as the trace agent prints it *)
  c_args : string;          (** pre-rendered argument list *)
  c_result : string option; (** [None] = call entry, [Some r] = returned [r] *)
  c_rewrote : bool;         (** a layer below rewrote the call before it
                                returned — only meaningful on post events *)
}

type mark = {
  m_span : int;     (** enclosing span id, 0 when none *)
  m_pid : int;
  m_t_us : int;     (** virtual-clock time of the event *)
  m_kind : string;  (** ["signal"] or ["abort"] *)
  m_detail : string;(** signal name / aborted syscall number *)
}

type record = Segment of segment | Call of call | Mark of mark

val call_line : call -> string
(** The trace agent's line shapes (no trailing newline):
    ["name(args) ..."] on entry, ["... name -> res"] on return (with a
    [" [rewritten]"] suffix when [c_rewrote]).  Both
    [agentrun --agent trace] output and consumers of [--trace-out]
    JSONL render through this one function. *)

val to_json : record -> Json.t
val of_json : Json.t -> record option

val to_line : record -> string
(** One compact JSON object (no trailing newline), with a
    ["type": "segment"|"call"|"mark"] discriminator. *)

val of_line : string -> (record, string) result
