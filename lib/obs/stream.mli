(** Incremental drain of a flight-recorder ring (DESIGN.md §3.9).

    A {!cursor} tracks its position in the ring's monotone push
    counter, so repeated {!poll}s deliver every record exactly once:
    no double delivery when records stay live, and records the window
    lost before the poll (overwritten, or removed by a full
    [Obs.drain]) are counted rather than re-read.  Polling never
    mutates the ring — any number of cursors can tail one engine.
    The stream is sampler-consistent: it sees exactly the records the
    recorder kept. *)

type cursor

val cursor : unit -> cursor
(** A fresh cursor positioned at the start of history (records still
    live in the ring are delivered on the first poll; older ones
    count as lost). *)

val position : cursor -> int
(** Records consumed or skipped so far, in push order. *)

val poll : cursor -> 'a Ring.t -> 'a list * int
(** [(fresh, lost)]: records pushed since the last poll that are
    still live (oldest first), and how many were lost to overwrite or
    an interleaved drain.  Advances the cursor past both. *)
