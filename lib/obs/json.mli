(** Minimal JSON emitter/parser.

    The container ships no JSON library; this covers exactly the subset
    the observability stack needs — finite numbers, UTF-8 strings,
    arrays, objects — for span JSONL, [BENCH_<name>.json], and the
    schema validation in [bench smoke]. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact (single-line) rendering.  Floats must be finite. *)

val of_string : string -> (t, string) result
(** Parses a complete document; trailing non-whitespace is an error.
    [\uXXXX] escapes are decoded to UTF-8 (surrogate pairs are not
    recombined — we never emit them). *)

val member : string -> t -> t option
(** Object field lookup; [None] on non-objects. *)

val to_int : t -> int option
val to_number : t -> float option
(** [Int] or [Float], as a float. *)

val to_str : t -> string option
val to_bool : t -> bool option
val to_list : t -> t list option
val to_obj : t -> (string * t) list option
