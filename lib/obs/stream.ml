(* Incremental, no-double-delivery reads of a flight-recorder ring
   (DESIGN.md §3.9).

   A cursor remembers its position in *push order* — the ring's
   monotone [pushed] counter — not in ring slots, so polling delivers
   each record at most once no matter how the window moves underneath:
   records overwritten (or drained/cleared by another reader) before
   the cursor reached them are counted as lost, never re-delivered.
   The cursor sees exactly what the ring sees, so a sampled engine
   streams the same 1-in-N subset the recorder keeps.

   Cursors are plain caller-owned values (one per follower); the ring
   itself is never mutated by a poll, so any number of cursors — the
   [--follow] printer, an open [/obs/stream] file, tests — can tail
   the same engine independently. *)

type cursor = { mutable c_pos : int }

let cursor () = { c_pos = 0 }
let position c = c.c_pos

let poll c ring =
  let pushed = Ring.pushed ring in
  (* a position beyond the counter means the ring object was replaced
     (reconfigured) under us: restart from its beginning *)
  if c.c_pos > pushed then c.c_pos <- 0;
  let live = Ring.length ring in
  let oldest = pushed - live in
  let lost = max 0 (oldest - c.c_pos) in
  let fresh =
    if pushed = c.c_pos then []
    else
      let skip = max 0 (c.c_pos - oldest) in
      let rec drop n l = if n <= 0 then l else match l with
        | [] -> []
        | _ :: tl -> drop (n - 1) tl
      in
      drop skip (Ring.to_list ring)
  in
  c.c_pos <- pushed;
  (fresh, lost)
