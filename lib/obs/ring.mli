(** Fixed-size flight-recorder ring buffer.

    Append is wait-free (two stores, two integer updates — the
    simulator is single-domain, so no locking is ever needed) and the
    oldest entry is overwritten when the ring is full; overwrites are
    counted in {!dropped} so a drain can report how much history was
    lost rather than silently truncating. *)

type 'a t

val create : capacity:int -> 'a t
(** Capacities below 1 are clamped to 1. *)

val capacity : 'a t -> int
val length : 'a t -> int
(** Live (not yet drained, not overwritten) entries. *)

val dropped : 'a t -> int
(** Entries overwritten since the last {!clear}/{!drain}. *)

val pushed : 'a t -> int
(** Total entries ever pushed, monotone across {!clear}/{!drain}: the
    stable coordinate a {!Stream} cursor measures its position in.  A
    record's index in push order is [pushed - length .. pushed - 1]
    while it is still live. *)

val push : 'a t -> 'a -> unit

val to_list : 'a t -> 'a list
(** Oldest first; non-destructive. *)

val drain : 'a t -> 'a list
(** {!to_list} then {!clear}: the read-and-reset used by
    [agentrun --trace-out] and the [/obs/spans] synthetic file. *)

val clear : 'a t -> unit
val iter : ('a -> unit) -> 'a t -> unit
