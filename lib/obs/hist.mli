(** Log2 latency histogram (32 buckets).

    Bucket 0 counts exactly-zero observations (negatives are clamped to
    zero); bucket [i >= 1] covers [[2^(i-1), 2^i)] µs; bucket 31
    absorbs everything at or above [2^30] µs. *)

type t

val buckets : int
(** Number of buckets (32). *)

val create : unit -> t
val observe : t -> int -> unit

val bucket_of_us : int -> int
(** Which bucket a latency falls in; total function over [int]. *)

val lower_bound : int -> int
(** Inclusive lower edge of a bucket, in µs (0 for bucket 0). *)

val count : t -> int
val sum_us : t -> int
val max_us : t -> int
val mean_us : t -> float
val bucket : t -> int -> int
(** Count in one bucket; 0 when the index is out of range. *)

val nonzero : t -> (int * int) list
(** [(bucket index, count)] for non-empty buckets, ascending. *)

val quantile : t -> float -> int
(** [quantile t q] estimates the [q]-quantile in µs as an
    {e upper-bucket-bound}: the bucket holding the ceil([q]·n)-th
    observation answers with its largest representable value
    ([2^i - 1]; 0 for bucket 0), except the overflow bucket, which
    answers with the exact observed {!max_us}.  Total: an empty
    histogram answers 0 and [q] is clamped to [[0, 1]] — never
    raises. *)

val copy : t -> t
val merge : into:t -> t -> unit
val pp : Format.formatter -> t -> unit
