(* The observability engine (DESIGN.md §3.2, sampling §3.4, shard
   ownership §3.6).

   A *span* covers one trap from `Uspace.syscall` entry to result
   delivery.  While a span is open, every layer that touches the trap —
   uspace, each stacked agent, downlink, the kernel handler — pushes a
   *frame*; on exit the frame becomes a `Span.segment` in the flight
   recorder and folds into the per-(depth, layer) aggregation.  Self
   time is total minus enclosed-frame time, so per-span self times sum
   exactly to the root frame's total.  Envelope decode/encode/rewrite
   events attribute to whichever frame is on top of their span's stack.

   Everything here is keyed by span id, never by "the current frame":
   fibres interleave at effect points, so several spans from different
   processes are routinely open at once.  The per-pid stack exists only
   to answer `current ()` — which span a freshly built envelope on this
   process belongs to.

   Sampling: with a 1-in-N sampler installed, the decision is made once
   per trap at `span_begin`, deterministically (a seeded `Sim.Rng`
   stream, one draw per trap).  An unsampled trap gets a *negative
   sentinel* id encoding its sysno: per-syscall call/error counts stay
   exact (counted at open / close against the sentinel), while frames,
   histograms, per-layer aggregation and the ring see only the sampled
   1-in-N subset — consumers scale those by `sample_n` from the metrics
   snapshot.

   Ownership: all engine state lives in an [engine] record.  Each
   kernel shard owns one; entering a shard installs its engine in the
   module-level [cur] pointer (the one allowlisted global here, the
   moral equivalent of a CPU's current-task register) so that code deep
   in the trap path — envelope codecs, agents, uspace — reaches the
   right engine without threading a handle through every signature.
   A default engine is installed at program start for engine-only use
   (tests drive spans with no kernel at all).

   Observation charges no *virtual* time: enabling tracing must not
   move any published µs number. *)

module Ring = Ring
module Hist = Hist
module Json = Json
module Span = Span
module Chrome = Chrome
module Causal = Causal
module Flame = Flame
module Stream = Stream
module Watch = Watch

(* ---------- live per-span state ---------- *)

type frame = {
  f_span : int;
  f_layer : string;
  f_depth : int;
  f_enter_us : int;
  mutable f_child_us : int;
  mutable f_decodes : int;
  mutable f_encodes : int;
  mutable f_rewrites : int;
}

type span_state = {
  s_id : int;
  s_pid : int;
  s_sysno : int;
  s_begin_us : int;
  mutable s_frames : frame list; (* innermost first *)
  mutable s_rewrites : int;
}

(* ---------- aggregation rows ---------- *)

type sys_agg = { mutable sa_calls : int; mutable sa_errors : int; sa_hist : Hist.t }

type layer_agg = {
  mutable la_traps : int;
  mutable la_decodes : int;
  mutable la_encodes : int;
  mutable la_rewrites : int;
  mutable la_self_us : int;
  mutable la_total_us : int;
  la_hist : Hist.t; (* per-frame self time *)
}

(* ---------- signature capture ---------- *)

(* One application-issued trap in the syscall-signature stream
   (conformance).  The errno outcome is patched in place when the trap
   completes; a trap that never returns to its instrumentation (exit,
   exec, an exception unwinding the fibre) keeps the pending sentinel,
   which serializes as a distinct "noreturn" outcome — deterministic,
   so two runs of the same workload agree on it. *)

type sig_event = {
  g_seq : int;
  g_pid : int;
  g_sysno : int;
  g_shape : string;
  mutable g_errno : int; (* sig_pending until patched; 0 = success *)
}

let sig_pending = -1

(* ---------- causal bookkeeping (DESIGN.md §3.9) ---------- *)

(* Per-pipe byte-offset watermarks.  Writes append absolute byte
   intervals stamped with the writing span; reads advance a consume
   watermark and emit one Pipe edge per distinct writer span whose
   interval the read overlapped.  Bounded by the pipe's unread bytes:
   fully consumed intervals are discarded as the watermark passes. *)
type pipe_chan = {
  mutable pc_wrote : int; (* absolute bytes ever written *)
  mutable pc_read : int;  (* absolute bytes ever consumed *)
  mutable pc_writes : (int * int * int * int) list;
      (* (start, stop, writer span, writer pid), oldest first *)
}

(* ---------- the engine ---------- *)

let default_ring_capacity = 4096

type engine = {
  mutable e_on : bool;
  mutable e_clock_fn : unit -> int;
  mutable e_context_fn : unit -> int;
  mutable e_sample_n : int;
  mutable e_sample_seed : int;
  mutable e_sample_rng : Sim.Rng.t;
  e_spans : (int, span_state) Hashtbl.t;
  e_open_by_pid : (int, int list ref) Hashtbl.t;
  mutable e_next_span : int;
  mutable e_ring_capacity : int;
  mutable e_ring : Span.record Ring.t;
  e_by_sysno : (int, sys_agg) Hashtbl.t;
  e_by_layer : (int * string, layer_agg) Hashtbl.t;
  mutable e_completed : int;
  mutable e_aborted : int;
  mutable e_injected : int;
  (* signature capture: a configuration switch (copied by [engine_like]
     so the configure-then-create order works) plus the captured event
     stream, newest first.  Capture is independent of the sampler — a
     signature is a record of what the application observed, not a
     latency sample — so counts stay exact at any 1-in-N rate. *)
  mutable e_sig_on : bool;
  mutable e_sig_rev : sig_event list;
  mutable e_sig_n : int;
  (* causal edge table (DESIGN.md §3.9): which shard this engine
     belongs to (stamped into every edge it records), the edges
     themselves (newest first), the emission counter that orders them
     under the cluster merge rule, and the pending half-edges — forks
     waiting for the child's first span, kill-originated signals
     waiting for delivery, pipe byte watermarks waiting for a read.
     Like signature capture, edges are events of record, not latency
     samples; endpoints the sampler skipped carry their sentinel and
     drop out of slice/flow views. *)
  mutable e_shard : int;
  mutable e_causal_rev : Causal.edge list;
  mutable e_causal_n : int;
  e_pending_fork : (int, int * int) Hashtbl.t;
      (* child pid -> (src span, src pid) *)
  e_pending_sig : (int * int, (int * int * int) Queue.t) Hashtbl.t;
      (* (dst pid, signal) -> (src shard, src span, src pid) fifo *)
  e_pipes : (string * int, pipe_chan) Hashtbl.t;
      (* ("pipe"|"fifo", id) -> watermarks *)
}

let engine ?(ring_capacity = default_ring_capacity) () =
  {
    e_on = false;
    e_clock_fn = (fun () -> 0);
    e_context_fn = (fun () -> 0);
    e_sample_n = 1;
    e_sample_seed = 0;
    e_sample_rng = Sim.Rng.create 0;
    e_spans = Hashtbl.create 64;
    e_open_by_pid = Hashtbl.create 16;
    e_next_span = 0;
    e_ring_capacity = ring_capacity;
    e_ring = Ring.create ~capacity:ring_capacity;
    e_by_sysno = Hashtbl.create 64;
    e_by_layer = Hashtbl.create 32;
    e_completed = 0;
    e_aborted = 0;
    e_injected = 0;
    e_sig_on = false;
    e_sig_rev = [];
    e_sig_n = 0;
    e_shard = 0;
    e_causal_rev = [];
    e_causal_n = 0;
    e_pending_fork = Hashtbl.create 16;
    e_pending_sig = Hashtbl.create 16;
    e_pipes = Hashtbl.create 16;
  }

(* A fresh engine carrying the *configuration* of [src] — on/off
   switch, sampling rate and seed (decision stream restarted), ring
   capacity — but none of its data.  [Kernel.create] builds each
   shard's engine this way from the currently installed one, so the
   established "configure observation, then create the kernel" call
   order keeps working across the per-shard ownership change. *)
let engine_like src =
  let e = engine ~ring_capacity:src.e_ring_capacity () in
  e.e_on <- src.e_on;
  e.e_sample_n <- src.e_sample_n;
  e.e_sample_seed <- src.e_sample_seed;
  e.e_sample_rng <- Sim.Rng.create src.e_sample_seed;
  e.e_sig_on <- src.e_sig_on;
  e

(* The installed (current-shard) engine: the single allowlisted piece
   of module-level state in this library.  Everything below operates on
   [!cur]. *)
let cur : engine ref = ref (engine ())

let install e = cur := e
let installed () = !cur

let with_engine e f =
  let prev = !cur in
  cur := e;
  Fun.protect ~finally:(fun () -> cur := prev) f

(* ---------- switches and environment hooks ---------- *)

let set_clock f = !cur.e_clock_fn <- f
let set_context f = !cur.e_context_fn <- f
let now_us () = !cur.e_clock_fn ()
let current_pid () = !cur.e_context_fn ()

let enabled () = !cur.e_on
let enable () = !cur.e_on <- true
let disable () = !cur.e_on <- false

(* ---------- sampling ---------- *)

let set_sampling ?(seed = 0) n =
  let e = !cur in
  let n = max 1 n in
  e.e_sample_n <- n;
  e.e_sample_seed <- seed;
  e.e_sample_rng <- Sim.Rng.create seed

let sampling () = !cur.e_sample_n

(* ---------- flight recorder ---------- *)

let configure ?(ring_capacity = default_ring_capacity) () =
  let e = !cur in
  e.e_ring_capacity <- ring_capacity;
  e.e_ring <- Ring.create ~capacity:ring_capacity

(* ---------- aggregation ---------- *)

let sys_agg_for e sysno =
  match Hashtbl.find_opt e.e_by_sysno sysno with
  | Some a -> a
  | None ->
    let a = { sa_calls = 0; sa_errors = 0; sa_hist = Hist.create () } in
    Hashtbl.replace e.e_by_sysno sysno a;
    a

let layer_agg_for e key =
  match Hashtbl.find_opt e.e_by_layer key with
  | Some a -> a
  | None ->
    let a =
      { la_traps = 0; la_decodes = 0; la_encodes = 0; la_rewrites = 0;
        la_self_us = 0; la_total_us = 0; la_hist = Hist.create () }
    in
    Hashtbl.replace e.e_by_layer key a;
    a

(* Faults deliberately injected by agents (faultinject and friends):
   counted exactly whenever the engine is on, independent of the
   sampler — an injected fault is an event of record, not a latency
   sample. *)
let note_injected () =
  let e = !cur in
  if e.e_on then e.e_injected <- e.e_injected + 1

(* ---------- signature capture (conformance) ---------- *)

let sig_capture on =
  let e = !cur in
  e.e_sig_on <- on

let sig_capturing () =
  let e = !cur in
  e.e_on && e.e_sig_on

(* Called by [Uspace.instrumented] only — the application-issued trap
   stream.  Agent-originated calls descend through the htg entry points
   and never reach this, so the capture is exactly the interface the
   application observes.  Like [note_injected], the sampler does not
   apply: signature counts are exact at any rate. *)
let sig_note ~pid ~sysno shape =
  let e = !cur in
  e.e_sig_n <- e.e_sig_n + 1;
  let ev =
    { g_seq = e.e_sig_n; g_pid = pid; g_sysno = sysno; g_shape = shape;
      g_errno = sig_pending }
  in
  e.e_sig_rev <- ev :: e.e_sig_rev;
  ev

let sig_done ev ~errno = ev.g_errno <- errno

let sig_events_of e = List.rev e.e_sig_rev
let sig_events () = sig_events_of !cur

let sig_clear () =
  let e = !cur in
  e.e_sig_rev <- [];
  e.e_sig_n <- 0

let reset () =
  let e = !cur in
  Hashtbl.reset e.e_spans;
  Hashtbl.reset e.e_open_by_pid;
  Hashtbl.reset e.e_by_sysno;
  Hashtbl.reset e.e_by_layer;
  e.e_next_span <- 0;
  e.e_completed <- 0;
  e.e_aborted <- 0;
  e.e_injected <- 0;
  e.e_sig_rev <- [];
  e.e_sig_n <- 0;
  e.e_causal_rev <- [];
  e.e_causal_n <- 0;
  Hashtbl.reset e.e_pending_fork;
  Hashtbl.reset e.e_pending_sig;
  Hashtbl.reset e.e_pipes;
  (* keep the configured rate but restart the decision stream, so a
     reset window replays the same sampling choices *)
  e.e_sample_rng <- Sim.Rng.create e.e_sample_seed;
  Ring.clear e.e_ring

(* ---------- causal edges (DESIGN.md §3.9) ---------- *)

let set_shard i = !cur.e_shard <- i
let shard () = !cur.e_shard

(* Innermost open span of [pid] — [current ()] without the ambient
   context: the causal hooks run inside the kernel dispatcher, where
   the current-process register is cleared, but they know the pid. *)
let innermost e pid =
  match Hashtbl.find_opt e.e_open_by_pid pid with
  | Some { contents = s :: _ } -> s
  | _ -> 0

let emit_edge e ~kind ~src_shard ~src_span ~src_pid ~dst_span ~dst_pid ~detail =
  e.e_causal_n <- e.e_causal_n + 1;
  e.e_causal_rev <-
    {
      Causal.ed_kind = kind;
      ed_src_shard = src_shard;
      ed_src_span = src_span;
      ed_src_pid = src_pid;
      ed_shard = e.e_shard;
      ed_dst_span = dst_span;
      ed_dst_pid = dst_pid;
      ed_t_us = e.e_clock_fn ();
      ed_seq = e.e_causal_n;
      ed_detail = detail;
    }
    :: e.e_causal_rev

(* Fork: the parent's fork trap is still open when the kernel clones
   the process; the edge completes at the child's first span_begin. *)
let causal_fork ~parent ~child =
  let e = !cur in
  if e.e_on then
    Hashtbl.replace e.e_pending_fork child (innermost e parent, parent)

(* Signals: only kill-originated signals make edges (an alarm or a
   kernel-raised SIGPIPE has no sender span).  The sender side files a
   pending half-edge; delivery into the receiver's current trap
   completes it.  Dispositions that never deliver to the application
   (ignore, terminate) leave the half-edge pending, harmlessly. *)
let causal_signal_send ~src_pid ~dst_pid ~signal =
  let e = !cur in
  if e.e_on then begin
    let q =
      match Hashtbl.find_opt e.e_pending_sig (dst_pid, signal) with
      | Some q -> q
      | None ->
        let q = Queue.create () in
        Hashtbl.replace e.e_pending_sig (dst_pid, signal) q;
        q
    in
    Queue.push (e.e_shard, innermost e src_pid, src_pid) q
  end

(* Cross-shard variant: runs on the *destination* shard's engine with
   the origin captured on the source shard ([causal_origin]) and
   shipped with the cluster mail. *)
let causal_signal_send_remote ~src_shard ~src_span ~src_pid ~dst_pid ~signal =
  let e = !cur in
  if e.e_on then begin
    let q =
      match Hashtbl.find_opt e.e_pending_sig (dst_pid, signal) with
      | Some q -> q
      | None ->
        let q = Queue.create () in
        Hashtbl.replace e.e_pending_sig (dst_pid, signal) q;
        q
    in
    Queue.push (src_shard, src_span, src_pid) q
  end

(* (shard, innermost span, pid) of the ambient process — what
   [Cluster.send] stamps into cross-shard mail on the source shard. *)
let causal_origin () =
  let e = !cur in
  let pid = e.e_context_fn () in
  (e.e_shard, (if e.e_on then innermost e pid else 0), pid)

let causal_signal_delivered ~pid ~signal ~span ~detail =
  let e = !cur in
  if e.e_on then
    match Hashtbl.find_opt e.e_pending_sig (pid, signal) with
    | Some q when not (Queue.is_empty q) ->
      let src_shard, src_span, src_pid = Queue.pop q in
      emit_edge e ~kind:Causal.Signal ~src_shard ~src_span ~src_pid
        ~dst_span:span ~dst_pid:pid ~detail
    | _ -> ()

let pipe_chan_for e key =
  match Hashtbl.find_opt e.e_pipes key with
  | Some c -> c
  | None ->
    let c = { pc_wrote = 0; pc_read = 0; pc_writes = [] } in
    Hashtbl.replace e.e_pipes key c;
    c

let causal_pipe_write ~chan ~pid ~bytes =
  let e = !cur in
  if e.e_on && bytes > 0 then begin
    let c = pipe_chan_for e chan in
    let span = innermost e pid in
    c.pc_writes <- c.pc_writes @ [ (c.pc_wrote, c.pc_wrote + bytes, span, pid) ];
    c.pc_wrote <- c.pc_wrote + bytes
  end

let causal_pipe_read ~chan ~pid ~bytes =
  let e = !cur in
  if e.e_on && bytes > 0 then begin
    let c = pipe_chan_for e chan in
    let lo = c.pc_read in
    let hi = lo + bytes in
    c.pc_read <- hi;
    let dst_span = innermost e pid in
    (* one edge per distinct writer span this read consumed from *)
    let seen : (int * int, unit) Hashtbl.t = Hashtbl.create 4 in
    let rec consume = function
      | [] -> []
      | ((s, t, wspan, wpid) as iv) :: tl ->
        if t <= lo then consume tl (* fully consumed by earlier reads *)
        else if s >= hi then iv :: tl (* past this read's window *)
        else begin
          if not (Hashtbl.mem seen (wspan, wpid)) then begin
            Hashtbl.replace seen (wspan, wpid) ();
            let o_lo = max s lo and o_hi = min t hi in
            emit_edge e ~kind:Causal.Pipe ~src_shard:e.e_shard ~src_span:wspan
              ~src_pid:wpid ~dst_span ~dst_pid:pid
              ~detail:
                (Printf.sprintf "%s#%d bytes %d..%d" (fst chan) (snd chan)
                   o_lo o_hi)
          end;
          if t <= hi then consume tl else iv :: tl
        end
    in
    c.pc_writes <- consume c.pc_writes
  end

let causal_edges_of e = List.rev e.e_causal_rev
let causal_edges () = causal_edges_of !cur

let causal_drain_of e =
  let l = List.rev e.e_causal_rev in
  e.e_causal_rev <- [];
  l

let causal_drain () = causal_drain_of !cur

(* ---------- streaming ---------- *)

let poll_of e c = Stream.poll c e.e_ring
let poll c = poll_of !cur c

(* ---------- span lifecycle ---------- *)

let current () =
  let e = !cur in
  if not e.e_on then 0
  else
    match Hashtbl.find_opt e.e_open_by_pid (e.e_context_fn ()) with
    | Some { contents = s :: _ } -> s
    | _ -> 0

(* Unsampled traps are represented by a negative sentinel carrying the
   sysno, so their close can still count errors exactly without any
   span state having been allocated. *)
let unsampled_sentinel sysno = -(sysno + 1)
let sentinel_sysno span = -span - 1

let span_begin ~pid ~sysno =
  let e = !cur in
  if not e.e_on then 0
  else begin
    (* calls are counted at open — exact whatever the sampling rate,
       and whether or not the trap later aborts *)
    let agg = sys_agg_for e sysno in
    agg.sa_calls <- agg.sa_calls + 1;
    let sampled =
      e.e_sample_n <= 1 || Sim.Rng.int e.e_sample_rng e.e_sample_n = 0
    in
    let id =
      if not sampled then unsampled_sentinel sysno
      else begin
        e.e_next_span <- e.e_next_span + 1;
        let id = e.e_next_span in
        Hashtbl.replace e.e_spans id
          { s_id = id; s_pid = pid; s_sysno = sysno;
            s_begin_us = e.e_clock_fn (); s_frames = []; s_rewrites = 0 };
        (match Hashtbl.find_opt e.e_open_by_pid pid with
         | Some stack -> stack := id :: !stack
         | None -> Hashtbl.replace e.e_open_by_pid pid (ref [ id ]));
        id
      end
    in
    (* a pending fork half-edge completes at the child's first trap,
       sampled or not — an unsampled first trap yields a sentinel
       endpoint, which slice/flow views skip *)
    (match Hashtbl.find_opt e.e_pending_fork pid with
     | Some (src_span, src_pid) ->
       Hashtbl.remove e.e_pending_fork pid;
       emit_edge e ~kind:Causal.Fork ~src_shard:e.e_shard ~src_span ~src_pid
         ~dst_span:id ~dst_pid:pid ~detail:""
     | None -> ());
    id
  end

(* Pop the top frame, fold its duration into the parent's child time,
   and publish it as a segment. *)
let close_top e st ~now =
  match st.s_frames with
  | [] -> ()
  | fr :: rest ->
    st.s_frames <- rest;
    let total = now - fr.f_enter_us in
    let self = total - fr.f_child_us in
    (match rest with
     | parent :: _ -> parent.f_child_us <- parent.f_child_us + total
     | [] -> ());
    Ring.push e.e_ring
      (Span.Segment
         {
           Span.span = st.s_id;
           pid = st.s_pid;
           sysno = st.s_sysno;
           layer = fr.f_layer;
           depth = fr.f_depth;
           start_us = fr.f_enter_us;
           self_us = self;
           total_us = total;
           decodes = fr.f_decodes;
           encodes = fr.f_encodes;
           rewrites = fr.f_rewrites;
         });
    let agg = layer_agg_for e (fr.f_depth, fr.f_layer) in
    agg.la_traps <- agg.la_traps + 1;
    agg.la_decodes <- agg.la_decodes + fr.f_decodes;
    agg.la_encodes <- agg.la_encodes + fr.f_encodes;
    agg.la_rewrites <- agg.la_rewrites + fr.f_rewrites;
    agg.la_self_us <- agg.la_self_us + self;
    agg.la_total_us <- agg.la_total_us + total;
    Hist.observe agg.la_hist self

let layer_enter ~span layer =
  if span <= 0 then None
  else
    let e = !cur in
    match Hashtbl.find_opt e.e_spans span with
    | None -> None (* span already ended/aborted: record nothing *)
    | Some st ->
      let fr =
        {
          f_span = span;
          f_layer = layer;
          f_depth = List.length st.s_frames;
          f_enter_us = e.e_clock_fn ();
          f_child_us = 0;
          f_decodes = 0;
          f_encodes = 0;
          f_rewrites = 0;
        }
      in
      st.s_frames <- fr :: st.s_frames;
      Some fr

let layer_exit fr =
  let e = !cur in
  match Hashtbl.find_opt e.e_spans fr.f_span with
  | None -> () (* span aborted underneath us *)
  | Some st ->
    if List.memq fr st.s_frames then begin
      let now = e.e_clock_fn () in
      (* close any younger frames an exception skipped over first *)
      let rec loop () =
        match st.s_frames with
        | top :: _ ->
          close_top e st ~now;
          if not (top == fr) then loop ()
        | [] -> ()
      in
      loop ()
    end

let in_layer ~span layer f =
  match layer_enter ~span layer with
  | None -> f ()
  | Some fr ->
    (match f () with
     | v ->
       layer_exit fr;
       v
     | exception e ->
       layer_exit fr;
       raise e)

let finish_span e st ~error ~was_aborted =
  let now = e.e_clock_fn () in
  while st.s_frames <> [] do
    close_top e st ~now
  done;
  Hashtbl.remove e.e_spans st.s_id;
  (match Hashtbl.find_opt e.e_open_by_pid st.s_pid with
   | Some stack ->
     stack := List.filter (fun id -> id <> st.s_id) !stack;
     if !stack = [] then Hashtbl.remove e.e_open_by_pid st.s_pid
   | None -> ());
  let agg = sys_agg_for e st.s_sysno in
  (* sa_calls was counted at span_begin; only errors and the (sampled)
     latency histogram fold in here *)
  if error then agg.sa_errors <- agg.sa_errors + 1;
  Hist.observe agg.sa_hist (now - st.s_begin_us);
  if was_aborted then begin
    e.e_aborted <- e.e_aborted + 1;
    Ring.push e.e_ring
      (Span.Mark
         { Span.m_span = st.s_id; m_pid = st.s_pid; m_t_us = now;
           m_kind = "abort"; m_detail = string_of_int st.s_sysno })
  end
  else e.e_completed <- e.e_completed + 1

let span_end span ~error =
  let e = !cur in
  if span > 0 then
    match Hashtbl.find_opt e.e_spans span with
    | Some st -> finish_span e st ~error ~was_aborted:false
    | None -> ()
  else if span < 0 && error then begin
    (* unsampled trap: errors stay exact via the sysno sentinel *)
    let agg = sys_agg_for e (sentinel_sysno span) in
    agg.sa_errors <- agg.sa_errors + 1
  end

let abort_pid pid =
  let e = !cur in
  match Hashtbl.find_opt e.e_open_by_pid pid with
  | None -> ()
  | Some stack ->
    let ids = !stack in
    List.iter
      (fun id ->
        match Hashtbl.find_opt e.e_spans id with
        | Some st -> finish_span e st ~error:false ~was_aborted:true
        | None -> ())
      ids

(* ---------- codec and rewrite attribution ---------- *)

let note_decode span =
  if span > 0 then
    match Hashtbl.find_opt !cur.e_spans span with
    | Some { s_frames = fr :: _; _ } -> fr.f_decodes <- fr.f_decodes + 1
    | _ -> ()

let note_encode span =
  if span > 0 then
    match Hashtbl.find_opt !cur.e_spans span with
    | Some { s_frames = fr :: _; _ } -> fr.f_encodes <- fr.f_encodes + 1
    | _ -> ()

let note_rewrite span =
  if span > 0 then
    match Hashtbl.find_opt !cur.e_spans span with
    | Some st ->
      st.s_rewrites <- st.s_rewrites + 1;
      (match st.s_frames with
       | fr :: _ -> fr.f_rewrites <- fr.f_rewrites + 1
       | [] -> ())
    | None -> ()

let span_rewrites span =
  if span <= 0 then 0
  else
    match Hashtbl.find_opt !cur.e_spans span with
    | Some st -> st.s_rewrites
    | None -> 0

(* ---------- trace-agent records and marks ---------- *)

let record_call c =
  let e = !cur in
  if e.e_on then Ring.push e.e_ring (Span.Call c)

let record_mark ?(span = 0) ?pid ~kind ~detail () =
  let e = !cur in
  if e.e_on then begin
    let pid = match pid with Some p -> p | None -> e.e_context_fn () in
    Ring.push e.e_ring
      (Span.Mark
         { Span.m_span = span; m_pid = pid; m_t_us = e.e_clock_fn ();
           m_kind = kind; m_detail = detail })
  end

(* ---------- reading the recorder ---------- *)

let records_of e = Ring.to_list e.e_ring
let drain_of e = Ring.drain e.e_ring

let records () = records_of !cur
let drain () = drain_of !cur
let dropped () = Ring.dropped !cur.e_ring

let segments () =
  List.filter_map
    (function Span.Segment s -> Some s | Span.Call _ | Span.Mark _ -> None)
    (records ())

(* ---------- metrics snapshot ---------- *)

type syscall_metrics = {
  sm_sysno : int;
  sm_calls : int;
  sm_errors : int;
  sm_hist : Hist.t;
}

type layer_metrics = {
  lm_depth : int;
  lm_layer : string;
  lm_traps : int;
  lm_decodes : int;
  lm_encodes : int;
  lm_rewrites : int;
  lm_self_us : int;
  lm_total_us : int;
  lm_hist : Hist.t;
}

type metrics = {
  m_spans : int;
  m_aborted : int;
  m_injected : int;
  m_open : int;
  m_dropped : int;
  m_sample_n : int;
  m_syscalls : syscall_metrics list;
  m_layers : layer_metrics list;
}

let metrics_of e =
  let syscalls =
    Hashtbl.fold
      (fun sysno a acc ->
        { sm_sysno = sysno; sm_calls = a.sa_calls; sm_errors = a.sa_errors;
          sm_hist = Hist.copy a.sa_hist }
        :: acc)
      e.e_by_sysno []
    |> List.sort (fun a b -> compare a.sm_sysno b.sm_sysno)
  in
  let layers =
    Hashtbl.fold
      (fun (depth, layer) a acc ->
        { lm_depth = depth; lm_layer = layer; lm_traps = a.la_traps;
          lm_decodes = a.la_decodes; lm_encodes = a.la_encodes;
          lm_rewrites = a.la_rewrites; lm_self_us = a.la_self_us;
          lm_total_us = a.la_total_us; lm_hist = Hist.copy a.la_hist }
        :: acc)
      e.e_by_layer []
    |> List.sort (fun a b -> compare (a.lm_depth, a.lm_layer) (b.lm_depth, b.lm_layer))
  in
  {
    m_spans = e.e_completed;
    m_aborted = e.e_aborted;
    m_injected = e.e_injected;
    m_open = Hashtbl.length e.e_spans;
    m_dropped = Ring.dropped e.e_ring;
    m_sample_n = e.e_sample_n;
    m_syscalls = syscalls;
    m_layers = layers;
  }

let metrics () = metrics_of !cur

(* Cross-shard aggregation: exact counters add, histograms merge
   bucket-wise (into fresh copies — the inputs are snapshots and stay
   untouched), so a cluster total has the same exact/sampled split as
   any single engine's snapshot.  Shards share their sampling rate by
   construction ([engine_like] copies it); should they ever differ,
   the most-thinned rate is reported so estimates stay conservative. *)
let merge_metrics (ms : metrics list) =
  let sys : (int, syscall_metrics) Hashtbl.t = Hashtbl.create 32 in
  let lay : (int * string, layer_metrics) Hashtbl.t = Hashtbl.create 32 in
  List.iter
    (fun m ->
      List.iter
        (fun s ->
          match Hashtbl.find_opt sys s.sm_sysno with
          | None ->
            Hashtbl.replace sys s.sm_sysno
              { s with sm_hist = Hist.copy s.sm_hist }
          | Some acc ->
            Hist.merge ~into:acc.sm_hist s.sm_hist;
            Hashtbl.replace sys s.sm_sysno
              { acc with
                sm_calls = acc.sm_calls + s.sm_calls;
                sm_errors = acc.sm_errors + s.sm_errors })
        m.m_syscalls;
      List.iter
        (fun l ->
          let key = (l.lm_depth, l.lm_layer) in
          match Hashtbl.find_opt lay key with
          | None ->
            Hashtbl.replace lay key { l with lm_hist = Hist.copy l.lm_hist }
          | Some acc ->
            Hist.merge ~into:acc.lm_hist l.lm_hist;
            Hashtbl.replace lay key
              { acc with
                lm_traps = acc.lm_traps + l.lm_traps;
                lm_decodes = acc.lm_decodes + l.lm_decodes;
                lm_encodes = acc.lm_encodes + l.lm_encodes;
                lm_rewrites = acc.lm_rewrites + l.lm_rewrites;
                lm_self_us = acc.lm_self_us + l.lm_self_us;
                lm_total_us = acc.lm_total_us + l.lm_total_us })
        m.m_layers)
    ms;
  let sum f = List.fold_left (fun acc m -> acc + f m) 0 ms in
  {
    m_spans = sum (fun m -> m.m_spans);
    m_aborted = sum (fun m -> m.m_aborted);
    m_injected = sum (fun m -> m.m_injected);
    m_open = sum (fun m -> m.m_open);
    m_dropped = sum (fun m -> m.m_dropped);
    m_sample_n = List.fold_left (fun acc m -> max acc m.m_sample_n) 1 ms;
    m_syscalls =
      Hashtbl.fold (fun _ s acc -> s :: acc) sys []
      |> List.sort (fun a b -> compare a.sm_sysno b.sm_sysno);
    m_layers =
      Hashtbl.fold (fun _ l acc -> l :: acc) lay []
      |> List.sort (fun a b ->
           compare (a.lm_depth, a.lm_layer) (b.lm_depth, b.lm_layer));
  }

(* Exact vs estimated (DESIGN.md §3.4): per-syscall [calls]/[errors]
   are exact at any sampling rate; everything derived from spans the
   sampler kept — latency histograms, percentiles, span/abort counts,
   per-layer traps and µs sums — covers the 1-in-N subset and is
   reported raw, with the rate in ["sample_n"] and pre-scaled ["est_*"]
   companions emitted when N > 1. *)
let metrics_to_json ?(name = fun n -> Printf.sprintf "syscall#%d" n) (m : metrics) =
  let scale = m.m_sample_n in
  let est fields =
    if scale <= 1 then []
    else List.map (fun (k, v) -> ("est_" ^ k, Json.Int (v * scale))) fields
  in
  let hist_json h =
    Json.Obj
      ([
         ("count", Json.Int (Hist.count h));
         ("sum_us", Json.Int (Hist.sum_us h));
         ("max_us", Json.Int (Hist.max_us h));
         ("p50_us", Json.Int (Hist.quantile h 0.50));
         ("p90_us", Json.Int (Hist.quantile h 0.90));
         ("p99_us", Json.Int (Hist.quantile h 0.99));
       ]
      @ est [ ("count", Hist.count h); ("sum_us", Hist.sum_us h) ]
      @ [
          ( "buckets",
            Json.Arr
              (List.map
                 (fun (i, n) ->
                   Json.Obj
                     [ ("lo_us", Json.Int (Hist.lower_bound i)); ("count", Json.Int n) ])
                 (Hist.nonzero h)) );
        ])
  in
  Json.Obj
    ([
       ("spans", Json.Int m.m_spans);
       ("aborted", Json.Int m.m_aborted);
       ("injected", Json.Int m.m_injected);
       ("open", Json.Int m.m_open);
       ("dropped", Json.Int m.m_dropped);
       ("sample_n", Json.Int m.m_sample_n);
     ]
    @ est [ ("spans", m.m_spans); ("aborted", m.m_aborted) ]
    @ [
        ( "syscalls",
          Json.Arr
            (List.map
               (fun s ->
                 Json.Obj
                   [
                     ("sysno", Json.Int s.sm_sysno);
                     ("name", Json.Str (name s.sm_sysno));
                     ("calls", Json.Int s.sm_calls);
                     ("errors", Json.Int s.sm_errors);
                     ("latency", hist_json s.sm_hist);
                   ])
               m.m_syscalls) );
        ( "layers",
          Json.Arr
            (List.map
               (fun l ->
                 Json.Obj
                   ([
                      ("depth", Json.Int l.lm_depth);
                      ("layer", Json.Str l.lm_layer);
                      ("traps", Json.Int l.lm_traps);
                      ("decodes", Json.Int l.lm_decodes);
                      ("encodes", Json.Int l.lm_encodes);
                      ("rewrites", Json.Int l.lm_rewrites);
                      ("self_us", Json.Int l.lm_self_us);
                      ("total_us", Json.Int l.lm_total_us);
                      ("p50_self_us", Json.Int (Hist.quantile l.lm_hist 0.50));
                      ("p90_self_us", Json.Int (Hist.quantile l.lm_hist 0.90));
                      ("p99_self_us", Json.Int (Hist.quantile l.lm_hist 0.99));
                    ]
                   @ est
                       [ ("traps", l.lm_traps); ("self_us", l.lm_self_us);
                         ("total_us", l.lm_total_us) ]))
               m.m_layers) );
      ])
