(* Minimal JSON: enough to emit span JSONL / BENCH_*.json and to parse
   them back for schema validation and round-trip tests.  The container
   ships no JSON library, and the subset we need (finite numbers,
   UTF-8 strings, arrays, objects) is small enough to carry here. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

(* ---------- emit ---------- *)

let escape_to buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let float_to_string f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.0f" f
  else
    Printf.sprintf "%.12g" f

let rec emit buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int n -> Buffer.add_string buf (string_of_int n)
  | Float f -> Buffer.add_string buf (float_to_string f)
  | Str s -> escape_to buf s
  | Arr xs ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i x ->
        if i > 0 then Buffer.add_char buf ',';
        emit buf x)
      xs;
    Buffer.add_char buf ']'
  | Obj kvs ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        escape_to buf k;
        Buffer.add_char buf ':';
        emit buf v)
      kvs;
    Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  emit buf v;
  Buffer.contents buf

(* ---------- parse ---------- *)

exception Parse_error of string

type state = { src : string; mutable pos : int }

let error st msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg st.pos))
let eof st = st.pos >= String.length st.src
let peek st = st.src.[st.pos]

let skip_ws st =
  while (not (eof st)) && (match peek st with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) do
    st.pos <- st.pos + 1
  done

let expect st c =
  if eof st || peek st <> c then error st (Printf.sprintf "expected '%c'" c);
  st.pos <- st.pos + 1

let literal st word v =
  let n = String.length word in
  if st.pos + n <= String.length st.src && String.sub st.src st.pos n = word then begin
    st.pos <- st.pos + n;
    v
  end
  else error st (Printf.sprintf "expected %s" word)

(* UTF-8-encode a code point from a \uXXXX escape. *)
let add_utf8 buf cp =
  if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
  else if cp < 0x800 then begin
    Buffer.add_char buf (Char.chr (0xc0 lor (cp lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3f)))
  end
  else begin
    Buffer.add_char buf (Char.chr (0xe0 lor (cp lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3f)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3f)))
  end

let parse_string st =
  expect st '"';
  let buf = Buffer.create 16 in
  let rec loop () =
    if eof st then error st "unterminated string";
    match peek st with
    | '"' -> st.pos <- st.pos + 1
    | '\\' ->
      st.pos <- st.pos + 1;
      if eof st then error st "unterminated escape";
      let c = peek st in
      st.pos <- st.pos + 1;
      (match c with
       | '"' -> Buffer.add_char buf '"'
       | '\\' -> Buffer.add_char buf '\\'
       | '/' -> Buffer.add_char buf '/'
       | 'b' -> Buffer.add_char buf '\b'
       | 'f' -> Buffer.add_char buf '\012'
       | 'n' -> Buffer.add_char buf '\n'
       | 'r' -> Buffer.add_char buf '\r'
       | 't' -> Buffer.add_char buf '\t'
       | 'u' ->
         if st.pos + 4 > String.length st.src then error st "truncated \\u escape";
         let hex = String.sub st.src st.pos 4 in
         st.pos <- st.pos + 4;
         (match int_of_string_opt ("0x" ^ hex) with
          | Some cp -> add_utf8 buf cp
          | None -> error st "bad \\u escape")
       | _ -> error st "bad escape");
      loop ()
    | c ->
      Buffer.add_char buf c;
      st.pos <- st.pos + 1;
      loop ()
  in
  loop ();
  Buffer.contents buf

let parse_number st =
  let start = st.pos in
  let is_float = ref false in
  let advance () = st.pos <- st.pos + 1 in
  if (not (eof st)) && peek st = '-' then advance ();
  while (not (eof st)) && (match peek st with '0' .. '9' -> true | _ -> false) do
    advance ()
  done;
  if (not (eof st)) && peek st = '.' then begin
    is_float := true;
    advance ();
    while (not (eof st)) && (match peek st with '0' .. '9' -> true | _ -> false) do
      advance ()
    done
  end;
  if (not (eof st)) && (peek st = 'e' || peek st = 'E') then begin
    is_float := true;
    advance ();
    if (not (eof st)) && (peek st = '+' || peek st = '-') then advance ();
    while (not (eof st)) && (match peek st with '0' .. '9' -> true | _ -> false) do
      advance ()
    done
  end;
  let s = String.sub st.src start (st.pos - start) in
  if !is_float then
    match float_of_string_opt s with
    | Some f -> Float f
    | None -> error st "bad number"
  else
    match int_of_string_opt s with
    | Some n -> Int n
    | None ->
      (match float_of_string_opt s with
       | Some f -> Float f
       | None -> error st "bad number")

let rec parse_value st =
  skip_ws st;
  if eof st then error st "unexpected end of input";
  match peek st with
  | 'n' -> literal st "null" Null
  | 't' -> literal st "true" (Bool true)
  | 'f' -> literal st "false" (Bool false)
  | '"' -> Str (parse_string st)
  | '-' | '0' .. '9' -> parse_number st
  | '[' ->
    st.pos <- st.pos + 1;
    skip_ws st;
    if (not (eof st)) && peek st = ']' then begin
      st.pos <- st.pos + 1;
      Arr []
    end
    else begin
      let rec items acc =
        let v = parse_value st in
        skip_ws st;
        if eof st then error st "unterminated array"
        else if peek st = ',' then begin
          st.pos <- st.pos + 1;
          items (v :: acc)
        end
        else begin
          expect st ']';
          List.rev (v :: acc)
        end
      in
      Arr (items [])
    end
  | '{' ->
    st.pos <- st.pos + 1;
    skip_ws st;
    if (not (eof st)) && peek st = '}' then begin
      st.pos <- st.pos + 1;
      Obj []
    end
    else begin
      let member () =
        skip_ws st;
        let k = parse_string st in
        skip_ws st;
        expect st ':';
        let v = parse_value st in
        (k, v)
      in
      let rec members acc =
        let kv = member () in
        skip_ws st;
        if eof st then error st "unterminated object"
        else if peek st = ',' then begin
          st.pos <- st.pos + 1;
          members (kv :: acc)
        end
        else begin
          expect st '}';
          List.rev (kv :: acc)
        end
      in
      Obj (members [])
    end
  | _ -> error st "unexpected character"

let of_string s =
  let st = { src = s; pos = 0 } in
  match parse_value st with
  | v ->
    skip_ws st;
    if eof st then Ok v else Error (Printf.sprintf "trailing garbage at offset %d" st.pos)
  | exception Parse_error msg -> Error msg

(* ---------- accessors ---------- *)

let member k = function
  | Obj kvs -> List.assoc_opt k kvs
  | _ -> None

let to_int = function Int n -> Some n | _ -> None
let to_number = function Int n -> Some (float_of_int n) | Float f -> Some f | _ -> None
let to_str = function Str s -> Some s | _ -> None
let to_list = function Arr xs -> Some xs | _ -> None
let to_obj = function Obj kvs -> Some kvs | _ -> None
let to_bool = function Bool b -> Some b | _ -> None
