(* Causal edges between spans (DESIGN.md §3.9).

   An edge records that one trap observably caused another across a
   process (or shard) boundary: a fork trap caused the child's first
   trap, a kill trap caused a signal delivery inside the receiver's
   current trap, a pipe write trap produced the bytes a later read
   trap consumed.  Edges are pure data here — the engine in [Obs]
   owns their collection; this module owns the representation, the
   deterministic merge order, the JSONL codec, and the transitive
   [slice] query.

   Span ids are only unique per engine (per shard), so every endpoint
   carries its shard id and the graph is keyed by (shard, span). *)

type kind = Fork | Signal | Pipe

let kind_name = function Fork -> "fork" | Signal -> "signal" | Pipe -> "pipe"

let kind_of_name = function
  | "fork" -> Some Fork
  | "signal" -> Some Signal
  | "pipe" -> Some Pipe
  | _ -> None

type edge = {
  ed_kind : kind;
  ed_src_shard : int;  (* shard owning the source span *)
  ed_src_span : int;   (* 0 when no span was open at the source *)
  ed_src_pid : int;
  ed_shard : int;      (* recording (destination) shard *)
  ed_dst_span : int;   (* negative sentinel when the sampler skipped it *)
  ed_dst_pid : int;
  ed_t_us : int;       (* virtual time the edge resolved, dst clock *)
  ed_seq : int;        (* recording engine's emission counter *)
  ed_detail : string;  (* signal name / "pipe#n bytes a..b" / "" *)
}

(* The cluster merge rule (DESIGN.md §3.6): order by virtual timestamp,
   tie-break by recording shard, then per-engine emission sequence —
   the same (ts, src, seq) triple that makes cross-shard signal
   delivery deterministic makes the merged edge table byte-stable. *)
let compare_edge a b =
  compare (a.ed_t_us, a.ed_shard, a.ed_seq) (b.ed_t_us, b.ed_shard, b.ed_seq)

let sort edges = List.sort compare_edge edges

(* ---------- JSON / JSONL ---------- *)

let to_json ed =
  Json.Obj
    [
      ("kind", Json.Str (kind_name ed.ed_kind));
      ("src_shard", Json.Int ed.ed_src_shard);
      ("src_span", Json.Int ed.ed_src_span);
      ("src_pid", Json.Int ed.ed_src_pid);
      ("shard", Json.Int ed.ed_shard);
      ("dst_span", Json.Int ed.ed_dst_span);
      ("dst_pid", Json.Int ed.ed_dst_pid);
      ("t_us", Json.Int ed.ed_t_us);
      ("seq", Json.Int ed.ed_seq);
      ("detail", Json.Str ed.ed_detail);
    ]

let of_json j =
  let int k = Option.bind (Json.member k j) Json.to_int in
  let str k = Option.bind (Json.member k j) Json.to_str in
  match (str "kind", int "src_span", int "dst_span", int "t_us", int "seq") with
  | Some kn, Some src_span, Some dst_span, Some t_us, Some seq -> (
    match kind_of_name kn with
    | None -> None
    | Some kind ->
      let get k = Option.value ~default:0 (int k) in
      Some
        {
          ed_kind = kind;
          ed_src_shard = get "src_shard";
          ed_src_span = src_span;
          ed_src_pid = get "src_pid";
          ed_shard = get "shard";
          ed_dst_span = dst_span;
          ed_dst_pid = get "dst_pid";
          ed_t_us = t_us;
          ed_seq = seq;
          ed_detail = Option.value ~default:"" (str "detail");
        })
  | _ -> None

let to_line ed = Json.to_string (to_json ed)

let of_line s =
  match Json.of_string s with Ok j -> of_json j | Error _ -> None

(* ---------- transitive slice ---------- *)

(* Everything a root trap caused: the set of (shard, span) nodes
   reachable from [roots] along edges, roots included.  Endpoints the
   sampler skipped (non-positive span ids) never enter the graph, so
   the slice is exact at sampling rate 1 and covers the sampled subset
   otherwise.  Output is sorted, so two deterministic runs produce
   byte-identical slices. *)
let slice ~roots edges =
  let adj : (int * int, (int * int) list ref) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun ed ->
      if ed.ed_src_span > 0 && ed.ed_dst_span > 0 then begin
        let k = (ed.ed_src_shard, ed.ed_src_span) in
        let v = (ed.ed_shard, ed.ed_dst_span) in
        match Hashtbl.find_opt adj k with
        | Some l -> l := v :: !l
        | None -> Hashtbl.replace adj k (ref [ v ])
      end)
    edges;
  let seen : (int * int, unit) Hashtbl.t = Hashtbl.create 64 in
  let rec visit n =
    if not (Hashtbl.mem seen n) then begin
      Hashtbl.replace seen n ();
      match Hashtbl.find_opt adj n with
      | Some l -> List.iter visit !l
      | None -> ()
    end
  in
  List.iter visit roots;
  Hashtbl.fold (fun k () acc -> k :: acc) seen [] |> List.sort compare
