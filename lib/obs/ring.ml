(* Fixed-size flight-recorder ring: wait-free single-writer append,
   oldest entry overwritten when full.  The simulator is single-domain,
   so "lock-free" here means no synchronisation is needed at all: a
   push is two array stores and two integer updates, cheap enough to
   sit on the trap path. *)

type 'a t = {
  slots : 'a option array;
  mutable next : int;    (* next write position *)
  mutable stored : int;  (* live entries, <= capacity *)
  mutable dropped : int; (* overwritten-before-drained count *)
  mutable pushed : int;  (* total pushes ever; survives clear/drain so
                            stream cursors keep a stable coordinate *)
}

let create ~capacity =
  let capacity = max 1 capacity in
  { slots = Array.make capacity None; next = 0; stored = 0; dropped = 0;
    pushed = 0 }

let capacity t = Array.length t.slots
let length t = t.stored
let dropped t = t.dropped
let pushed t = t.pushed

let push t x =
  let cap = Array.length t.slots in
  if t.stored = cap then t.dropped <- t.dropped + 1
  else t.stored <- t.stored + 1;
  t.slots.(t.next) <- Some x;
  t.next <- (t.next + 1) mod cap;
  t.pushed <- t.pushed + 1

let to_list t =
  let cap = Array.length t.slots in
  let start = (t.next - t.stored + cap) mod cap in
  let acc = ref [] in
  for i = t.stored - 1 downto 0 do
    match t.slots.((start + i) mod cap) with
    | Some x -> acc := x :: !acc
    | None -> ()
  done;
  !acc

let clear t =
  Array.fill t.slots 0 (Array.length t.slots) None;
  t.next <- 0;
  t.stored <- 0;
  t.dropped <- 0

let drain t =
  let xs = to_list t in
  clear t;
  xs

let iter f t = List.iter f (to_list t)
