(* Flight-recorder records.

   A [segment] is one layer's residence in one trap span: the layer
   name, its nesting depth inside the span, virtual-clock entry time,
   total and self (total minus enclosed layers) time, and the envelope
   decode/encode/rewrite events that fired while the layer was on top.

   A [call] is a trace-agent record: the strace-style pre ("about to
   call") or post ("returned") event, carried with enough structure
   that the textual rendering ([call_line]) and the JSONL rendering
   share one source of truth.

   A [mark] is a point event with no duration: a signal delivered to
   the application, or a span force-closed by exit/exec.  Chrome
   export renders marks as instant events. *)

type segment = {
  span : int;
  pid : int;
  sysno : int;
  layer : string;
  depth : int;
  start_us : int;
  self_us : int;
  total_us : int;
  decodes : int;
  encodes : int;
  rewrites : int;
}

type call = {
  c_span : int;
  c_pid : int;
  c_t_us : int;
  c_name : string;
  c_args : string;
  c_result : string option; (* None: call entry; Some r: call returned r *)
  c_rewrote : bool; (* some layer below rewrote the call in flight *)
}

type mark = {
  m_span : int;
  m_pid : int;
  m_t_us : int;
  m_kind : string; (* "signal" | "abort" *)
  m_detail : string;
}

type record = Segment of segment | Call of call | Mark of mark

(* --- textual rendering (the trace agent's two line shapes) --- *)

let call_line c =
  match c.c_result with
  | None -> Printf.sprintf "%s(%s) ..." c.c_name c.c_args
  | Some r when c.c_rewrote ->
    Printf.sprintf "... %s -> %s [rewritten]" c.c_name r
  | Some r -> Printf.sprintf "... %s -> %s" c.c_name r

(* --- JSONL --- *)

let segment_to_json (s : segment) =
  Json.Obj
    [
      ("type", Json.Str "segment");
      ("span", Json.Int s.span);
      ("pid", Json.Int s.pid);
      ("sysno", Json.Int s.sysno);
      ("layer", Json.Str s.layer);
      ("depth", Json.Int s.depth);
      ("start_us", Json.Int s.start_us);
      ("self_us", Json.Int s.self_us);
      ("total_us", Json.Int s.total_us);
      ("decodes", Json.Int s.decodes);
      ("encodes", Json.Int s.encodes);
      ("rewrites", Json.Int s.rewrites);
    ]

let call_to_json (c : call) =
  Json.Obj
    ([
       ("type", Json.Str "call");
       ("span", Json.Int c.c_span);
       ("pid", Json.Int c.c_pid);
       ("t_us", Json.Int c.c_t_us);
       ("name", Json.Str c.c_name);
       ("args", Json.Str c.c_args);
     ]
    @ (match c.c_result with None -> [] | Some r -> [ ("result", Json.Str r) ])
    @ if c.c_rewrote then [ ("rewrote", Json.Bool true) ] else [])

let mark_to_json (m : mark) =
  Json.Obj
    [
      ("type", Json.Str "mark");
      ("span", Json.Int m.m_span);
      ("pid", Json.Int m.m_pid);
      ("t_us", Json.Int m.m_t_us);
      ("kind", Json.Str m.m_kind);
      ("detail", Json.Str m.m_detail);
    ]

let to_json = function
  | Segment s -> segment_to_json s
  | Call c -> call_to_json c
  | Mark m -> mark_to_json m

let to_line r = Json.to_string (to_json r)

let int_field j k =
  match Json.member k j with
  | Some v -> Json.to_int v
  | None -> None

let str_field j k =
  match Json.member k j with
  | Some v -> Json.to_str v
  | None -> None

let of_json j =
  let ( let* ) = Option.bind in
  match str_field j "type" with
  | Some "segment" ->
    let* span = int_field j "span" in
    let* pid = int_field j "pid" in
    let* sysno = int_field j "sysno" in
    let* layer = str_field j "layer" in
    let* depth = int_field j "depth" in
    let* start_us = int_field j "start_us" in
    let* self_us = int_field j "self_us" in
    let* total_us = int_field j "total_us" in
    let* decodes = int_field j "decodes" in
    let* encodes = int_field j "encodes" in
    (* absent in pre-rewrite-flag traces: default 0 *)
    let rewrites = Option.value (int_field j "rewrites") ~default:0 in
    Some
      (Segment
         { span; pid; sysno; layer; depth; start_us; self_us; total_us;
           decodes; encodes; rewrites })
  | Some "call" ->
    let* c_span = int_field j "span" in
    let* c_pid = int_field j "pid" in
    let* c_t_us = int_field j "t_us" in
    let* c_name = str_field j "name" in
    let* c_args = str_field j "args" in
    let c_result = str_field j "result" in
    let c_rewrote =
      match Json.member "rewrote" j with
      | Some v -> Option.value (Json.to_bool v) ~default:false
      | None -> false
    in
    Some (Call { c_span; c_pid; c_t_us; c_name; c_args; c_result; c_rewrote })
  | Some "mark" ->
    let* m_span = int_field j "span" in
    let* m_pid = int_field j "pid" in
    let* m_t_us = int_field j "t_us" in
    let* m_kind = str_field j "kind" in
    let* m_detail = str_field j "detail" in
    Some (Mark { m_span; m_pid; m_t_us; m_kind; m_detail })
  | _ -> None

let of_line line =
  match Json.of_string line with
  | Error e -> Error e
  | Ok j ->
    (match of_json j with
     | Some r -> Ok r
     | None -> Error "not a span record")
