(** Causal edges between spans (DESIGN.md §3.9).

    One edge per observable cross-process cause: a fork trap caused
    the child's first trap ({!Fork}), a kill trap caused a delivery
    inside the receiver's current trap ({!Signal}), a pipe write trap
    produced the bytes a read trap consumed ({!Pipe}, matched by
    per-pipe byte-offset watermarks).  The engine in {!Obs} records
    edges; this module owns the representation, the deterministic
    merge order, the JSONL codec and the transitive {!slice} query.

    Span ids are unique only per engine (per shard), so endpoints are
    (shard, span) pairs. *)

type kind = Fork | Signal | Pipe

val kind_name : kind -> string
(** ["fork"] / ["signal"] / ["pipe"]. *)

val kind_of_name : string -> kind option

type edge = {
  ed_kind : kind;
  ed_src_shard : int;  (** shard owning the source span *)
  ed_src_span : int;   (** 0 when no span was open at the source *)
  ed_src_pid : int;
  ed_shard : int;      (** recording (destination) shard *)
  ed_dst_span : int;   (** negative sentinel when the sampler skipped it *)
  ed_dst_pid : int;
  ed_t_us : int;       (** virtual time the edge resolved, dst clock *)
  ed_seq : int;        (** recording engine's emission counter *)
  ed_detail : string;  (** signal name / pipe byte range / [""] *)
}

val compare_edge : edge -> edge -> int
(** Orders by [(t_us, shard, seq)] — the same merge rule that makes
    cross-shard signal delivery deterministic (DESIGN.md §3.6), so a
    merged multi-shard edge table is byte-stable across reruns. *)

val sort : edge list -> edge list
(** Sorted by {!compare_edge}. *)

val to_json : edge -> Json.t
val of_json : Json.t -> edge option

val to_line : edge -> string
(** One compact JSON object, no trailing newline (JSONL row). *)

val of_line : string -> edge option

val slice : roots:(int * int) list -> edge list -> (int * int) list
(** All (shard, span) nodes transitively reachable from [roots] along
    edges, roots included, sorted.  Endpoints with non-positive span
    ids (sampler-skipped, or no span open at the source) never enter
    the graph. *)
