(** Flamegraph folding of flight-recorder segments (DESIGN.md §3.9).

    Groups segment self time by (sysno, layer path) and renders the
    collapsed-stack form flamegraph renderers consume (one line per
    stack: [frame;frame;... weight]).  Per-span self times sum to the
    trap's end-to-end total by engine invariant, so {!total} over a
    fold equals the sum of segment self times. *)

type fold = {
  fl_sysno : int;
  fl_stack : string list;  (** layer path, outermost first *)
  fl_self_us : int;        (** summed virtual self time *)
  fl_frames : int;         (** segments folded into this stack *)
}

val fold : Span.segment list -> fold list
(** Sorted by (sysno, stack).  Span ids are unique per engine only:
    fold per shard, then {!combine} for a cluster view. *)

val combine : fold list list -> fold list
(** Re-aggregate per-shard folds by (sysno, stack). *)

val total : fold list -> int
(** Summed [fl_self_us] — equals the sum of folded segment self
    times (the bench gate checks this). *)

val to_string : ?name:(int -> string) -> ?scale:float -> fold list -> string
(** Collapsed-stack lines: [name(sysno);layer;...;layer weight].
    [name] renders syscall numbers (callers pass [Abi.Sysno.name]).
    [scale] multiplies weights — 1.0 keeps virtual µs; passing
    measured ns per virtual µs (from the §3.8 host counters) yields
    the host-ns weighted variant. *)
