(** Observability: per-trap spans, a flight-recorder ring, and
    aggregated syscall/layer metrics (DESIGN.md §3.2, sampling and
    export §3.4).

    A {e span} covers one trap from [Uspace.syscall] entry to result
    delivery.  While it is open, each layer the trap passes through —
    uspace, every stacked agent, downlink, the kernel handler — holds a
    {e frame}; closing a frame publishes a {!Span.segment} (virtual-µs
    self/total time plus the envelope decode/encode/rewrite events that
    fired while the frame was on top) into the ring buffer and into the
    per-(depth, layer) aggregation.  Per-span self times sum exactly to
    the root frame's total, which is what makes the per-layer
    attribution table in [bench] consistent with the end-to-end
    numbers.

    With a 1-in-N sampler installed ({!set_sampling}), the keep/skip
    decision is made once per trap at {!span_begin} from a seeded
    deterministic stream; unsampled traps keep per-syscall call/error
    counts exact but record no frames, no histogram observations and no
    ring traffic, so always-on observation costs a counter bump and one
    RNG draw per trap.

    State is keyed by span id — fibres interleave at effect points, so
    spans of several processes are routinely open at once; a per-pid
    stack exists only to answer {!current}.  Observation charges no
    virtual time: enabling tracing moves no published µs figure.  When
    disabled ({!enabled}[ = false]) every entry point is a cheap no-op
    (span id 0). *)

module Ring = Ring
module Hist = Hist
module Json = Json
module Span = Span
module Chrome = Chrome
module Causal = Causal
module Flame = Flame
module Stream = Stream
module Watch = Watch

(** {1 Engines}

    All engine state — the on/off switch, clock and context hooks,
    sampler, span tables, ring, aggregations — lives in an {!engine}
    value.  Each kernel shard owns one (DESIGN.md §3.6); entering a
    shard {!install}s its engine so the unit-argument API below, called
    from code deep in the trap path, reaches the right engine without
    threading a handle through every signature.  A default engine is
    installed at program start, so engine-only use (driving spans with
    no kernel) keeps working unchanged. *)

type engine

val engine : ?ring_capacity:int -> unit -> engine
(** A fresh, disabled engine with empty tables (ring capacity defaults
    to 4096 records). *)

val engine_like : engine -> engine
(** A fresh engine inheriting [src]'s {e configuration} — enabled
    switch, sampling rate and seed (decision stream restarted), ring
    capacity — but none of its data.  [Kernel.create] builds each
    shard's engine this way from the installed one, which is what keeps
    the established "configure observation, then create the kernel"
    call order working now that engines are per-shard. *)

val install : engine -> unit
(** Make [e] the engine the unit-argument API operates on. *)

val installed : unit -> engine

val with_engine : engine -> (unit -> 'a) -> 'a
(** Run [f] with [e] installed, restoring the previous engine after
    (exception-safe). *)

(** {1 Switches and environment hooks}

    Everything below reads and writes the {e installed} engine. *)

val enable : unit -> unit
val disable : unit -> unit
val enabled : unit -> bool

val set_clock : (unit -> int) -> unit
(** Source of virtual-clock µs; [Kernel.create] installs the simulation
    clock here. *)

val set_context : (unit -> int) -> unit
(** Source of the currently-running simulated pid (0 when none);
    [Kernel.create] installs [Proc.Cur]-based lookup. *)

val now_us : unit -> int
val current_pid : unit -> int

val configure : ?ring_capacity:int -> unit -> unit
(** Replace the flight recorder (default capacity 4096 records);
    discards its current contents. *)

val set_sampling : ?seed:int -> int -> unit
(** [set_sampling ~seed n] keeps 1 in [n] spans (n ≤ 1 keeps all, the
    default).  The decision stream is a [Sim.Rng] seeded with [seed]
    (default 0) consuming exactly one draw per trap when [n > 1], so a
    run's keep/skip choices are reproducible and replayable. *)

val sampling : unit -> int
(** The current 1-in-N rate (1 = keep everything). *)

val reset : unit -> unit
(** Clear all state: open spans, aggregations, the ring.  The sampling
    rate and seed persist but the decision stream restarts, so a reset
    window replays the same choices.  Call between independent
    measurement windows (the enable/reset pairing replaces the old
    global [Kernel.reset_codec_stats] hygiene problem — see
    [envelope.mli]). *)

(** {1 Span lifecycle} *)

val span_begin : pid:int -> sysno:int -> int
(** Open a span; returns its id, or 0 when disabled.  Sampled span ids
    are positive and unique within a session; a span the sampler skips
    returns a {e negative} sentinel (still passed to {!span_end}, so
    error counts stay exact) and records nothing else.  The
    per-syscall call count is bumped here — exact at any rate. *)

val span_end : int -> error:bool -> unit
(** Close a span: folds it into the per-syscall counters/histogram.
    No-op on id 0 or an already-closed/aborted span; on a negative
    (unsampled) sentinel only the exact error count is updated. *)

val current : unit -> int
(** Innermost open span of the current process (via the context hook),
    or 0.  Envelope constructors use this to tag fresh envelopes. *)

val abort_pid : int -> unit
(** Force-close every open span of a process.  Called on [exit] and
    [exec], whose traps never return to the instrumentation that opened
    them; such spans count as aborted, not completed, and leave an
    ["abort"] mark in the ring. *)

(** {1 Layer frames} *)

type frame

val layer_enter : span:int -> string -> frame option
(** Push a frame named after the layer; [None] when the span is 0,
    unsampled (negative) or no longer live (then nothing need be
    recorded). *)

val layer_exit : frame -> unit
(** Pop the frame, publishing its segment.  Tolerates the span having
    been aborted underneath it, and closes any younger frames an
    exception skipped over. *)

val in_layer : span:int -> string -> (unit -> 'a) -> 'a
(** [in_layer ~span layer f] wraps [f] in an enter/exit pair,
    exception-safely.  Runs [f] bare when the span is dead, unsampled
    or 0. *)

(** {1 Codec and rewrite attribution} *)

val note_decode : int -> unit
(** An envelope belonging to this span was decoded; attributed to the
    span's innermost open frame.  No-op on span ≤ 0. *)

val note_encode : int -> unit

val note_rewrite : int -> unit
(** The call (or its result) was rewritten in flight; attributed to
    the innermost frame and accumulated on the span.  Fired
    automatically when a dirty envelope forces a re-encode (the PR 1
    "genuine rewrite"), and explicitly by mutating agents — crypt's
    payload transform, timex's result shift, remap's ABI translation.
    No-op on span ≤ 0. *)

val span_rewrites : int -> int
(** Rewrites accumulated on an open span so far (0 for closed spans,
    sentinels and span 0) — the trace agent's post events use this to
    flag traps some lower layer mutated. *)

(** {1 Trace-agent records and marks} *)

val record_call : Span.call -> unit
(** Append a trace-agent call record to the ring (no-op when
    disabled). *)

val record_mark : ?span:int -> ?pid:int -> kind:string -> detail:string -> unit -> unit
(** Append a point event to the ring (no-op when disabled); [pid]
    defaults to the context hook's current process.  Used for signal
    deliveries and injected-fault instants; span aborts push their own
    mark. *)

(** {1 Signature capture}

    The syscall-signature tap behind [lib/conformance]: with capture on
    (and the engine enabled), [Uspace.instrumented] appends one
    {!sig_event} per {e application-issued} trap — ordinal, pid, sysno,
    the canonical arg shape ([Abi.Shape], passed in as an opaque string
    since obs sits below [abi]) — and patches the errno outcome in when
    the trap completes.  Agent-originated calls descend through the htg
    entry points, which never open spans and never reach the tap, so
    the stream is exactly the interface the application observes.

    Like {!note_injected}, capture ignores the 1-in-N sampler: a
    signature records events of record, not latency samples, so its
    counts are exact at any sampling rate.  The capture switch is
    engine {e configuration} (copied by {!engine_like}, so the usual
    configure-then-[Kernel.create] order works); the captured stream is
    data (cleared by {!reset}, never copied). *)

type sig_event = {
  g_seq : int;            (** 1-based issue ordinal, whole session *)
  g_pid : int;
  g_sysno : int;
  g_shape : string;       (** canonical arg-shape classes *)
  mutable g_errno : int;  (** 0 success, >0 errno code, {!sig_pending}
                              for a trap that never returned (exit,
                              exec, fibre unwound) *)
}

val sig_pending : int

val sig_capture : bool -> unit
(** Switch capture on the installed engine (effective only while the
    engine is also {!enable}d, since the tap lives inside the span
    instrumentation). *)

val sig_capturing : unit -> bool
(** Whether the installed engine is enabled with capture on — the
    uspace tap's one-branch fast-path test, and the guard callers use
    before paying for shape computation. *)

val sig_note : pid:int -> sysno:int -> string -> sig_event
(** Append an event with a pending outcome; returns it for {!sig_done}
    to patch.  [Uspace.instrumented] only. *)

val sig_done : sig_event -> errno:int -> unit

val sig_events : unit -> sig_event list
(** The captured stream in issue order. *)

val sig_events_of : engine -> sig_event list

val sig_clear : unit -> unit
(** Drop captured events (the switch is untouched); {!reset} also
    clears them. *)

val note_injected : unit -> unit
(** An agent deliberately injected a fault into the current trap.
    Counted exactly whenever the engine is enabled (the sampler does
    not apply — an injected fault is an event of record, not a latency
    sample); reported as [m_injected] / the ["injected"] metrics
    field.  Fault agents pair this with a {!record_mark}
    [~kind:"inject"] instant on the trap's span. *)

(** {1 Causal edges}

    The cross-process event graph (DESIGN.md §3.9): fork, signal and
    pipe edges between spans, recorded by kernel hooks as {e events of
    record} (like signature capture, the sampler does not thin them —
    but an endpoint the sampler skipped carries its negative sentinel
    and drops out of {!Causal.slice} and Chrome flow views).  Each
    hook is pure bookkeeping on the installed engine: edges charge
    zero virtual time, so no published µs figure moves.

    Fork and signal edges resolve in two halves — the source files a
    pending half-edge (the fork trap, the kill trap), the destination
    completes it (the child's first {!span_begin}, the delivery into
    the receiver's current trap).  Pipe edges resolve through per-pipe
    byte-offset watermarks: writes append byte intervals stamped with
    the writing span, reads consume them.  Cross-shard signal edges
    ship their origin with the cluster mail and complete on the
    destination shard, ordered by the same (ts, shard, seq) merge rule
    as the mail itself. *)

val set_shard : int -> unit
(** Stamp the installed engine with its owning shard id
    ([Kernel.create] does this); edge endpoints carry it because span
    ids are unique only per engine. *)

val shard : unit -> int

val causal_fork : parent:int -> child:int -> unit
(** The kernel cloned [child] inside [parent]'s (still open) fork
    trap; the edge completes at the child's first span. *)

val causal_signal_send : src_pid:int -> dst_pid:int -> signal:int -> unit
(** [src_pid]'s kill trap posted [signal] to [dst_pid] (same shard). *)

val causal_signal_send_remote :
  src_shard:int -> src_span:int -> src_pid:int -> dst_pid:int -> signal:int -> unit
(** Cross-shard variant, run on the {e destination} shard's engine
    with the origin captured by {!causal_origin} on the source shard
    and shipped with the cluster mail. *)

val causal_origin : unit -> int * int * int
(** [(shard, innermost open span, pid)] of the ambient process — what
    [Cluster.send] stamps into cross-shard mail. *)

val causal_signal_delivered :
  pid:int -> signal:int -> span:int -> detail:string -> unit
(** A signal reached [pid]'s application handler inside span [span];
    completes the oldest matching pending half-edge, if any (signals
    without a sender span — alarms, kernel-raised SIGPIPE — have
    none). *)

val causal_pipe_write : chan:string * int -> pid:int -> bytes:int -> unit
(** [pid]'s current trap wrote [bytes] accepted bytes to channel
    [chan] ([("pipe"|"fifo", id)]). *)

val causal_pipe_read : chan:string * int -> pid:int -> bytes:int -> unit
(** [pid]'s current trap consumed [bytes] from [chan]; emits one Pipe
    edge per distinct writer span those bytes came from. *)

val causal_edges : unit -> Causal.edge list
(** Recorded edges, oldest first; non-destructive. *)

val causal_edges_of : engine -> Causal.edge list
val causal_drain : unit -> Causal.edge list
val causal_drain_of : engine -> Causal.edge list

(** {1 Streaming} *)

val poll : Stream.cursor -> Span.record list * int
(** Incremental drain of the installed engine's ring: records pushed
    since the cursor's last poll (each delivered at most once) and
    the count lost to ring overwrite or an interleaved full
    {!drain}.  Non-destructive — followers never steal records from
    the final drain. *)

val poll_of : engine -> Stream.cursor -> Span.record list * int

(** {1 Reading the flight recorder} *)

val records : unit -> Span.record list
(** Oldest first; non-destructive. *)

val drain : unit -> Span.record list
(** Read and clear (also resets the dropped counter). *)

val segments : unit -> Span.segment list
(** Just the layer segments from {!records}. *)

val dropped : unit -> int

(** {1 Metrics} *)

type syscall_metrics = {
  sm_sysno : int;
  sm_calls : int;   (** traps opened for this sysno — {e exact} at any
                        sampling rate, aborted traps included *)
  sm_errors : int;  (** of which returned an error result — exact *)
  sm_hist : Hist.t; (** end-to-end span latency, virtual µs — sampled *)
}

type layer_metrics = {
  lm_depth : int;    (** frame nesting depth within its span *)
  lm_layer : string;
  lm_traps : int;    (** frames closed at this (depth, layer) — sampled *)
  lm_decodes : int;
  lm_encodes : int;
  lm_rewrites : int; (** in-flight call rewrites attributed here *)
  lm_self_us : int;  (** sum of per-frame self time *)
  lm_total_us : int; (** sum of per-frame total time *)
  lm_hist : Hist.t;  (** per-frame self-time distribution *)
}

type metrics = {
  m_spans : int;    (** sampled spans completed normally *)
  m_aborted : int;  (** sampled spans force-closed by exit/exec *)
  m_injected : int; (** faults injected by agents ({!note_injected}) —
                        {e exact} at any sampling rate *)
  m_open : int;     (** spans still open at snapshot time *)
  m_dropped : int;  (** ring records overwritten before draining *)
  m_sample_n : int; (** 1-in-N rate the sampled figures cover *)
  m_syscalls : syscall_metrics list; (** ascending sysno *)
  m_layers : layer_metrics list;     (** ascending (depth, layer) *)
}

val metrics : unit -> metrics

val metrics_of : engine -> metrics
(** Snapshot a specific engine (the kernel's handle-based accessors use
    this; {!metrics} is [metrics_of (installed ())]). *)

val merge_metrics : metrics list -> metrics
(** Aggregate per-shard snapshots into one cluster-wide view: exact
    counters sum, per-syscall and per-layer histograms merge
    bucket-wise (inputs are left untouched), [sample_n] is the maximum
    across inputs so sampled estimates stay conservative. *)

val records_of : engine -> Span.record list
val drain_of : engine -> Span.record list

val metrics_to_json : ?name:(int -> string) -> metrics -> Json.t
(** [name] renders syscall numbers (callers pass [Abi.Sysno.name]; obs
    itself stays below [abi] in the library stack and cannot).
    Histograms carry [p50_us]/[p90_us]/[p99_us] upper-bucket-bound
    estimates ({!Hist.quantile}); when [sample_n > 1], sampled figures
    gain pre-scaled [est_*] companions so consumers can tell estimated
    from exact. *)
