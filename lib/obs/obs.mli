(** Observability: per-trap spans, a flight-recorder ring, and
    aggregated syscall/layer metrics (DESIGN.md §3.2).

    A {e span} covers one trap from [Uspace.syscall] entry to result
    delivery.  While it is open, each layer the trap passes through —
    uspace, every stacked agent, downlink, the kernel handler — holds a
    {e frame}; closing a frame publishes a {!Span.segment} (virtual-µs
    self/total time plus the envelope decode/encode events that fired
    while the frame was on top) into the ring buffer and into the
    per-(depth, layer) aggregation.  Per-span self times sum exactly to
    the root frame's total, which is what makes the per-layer
    attribution table in [bench] consistent with the end-to-end
    numbers.

    State is keyed by span id — fibres interleave at effect points, so
    spans of several processes are routinely open at once; a per-pid
    stack exists only to answer {!current}.  Observation charges no
    virtual time: enabling tracing moves no published µs figure.  When
    disabled ({!enabled}[ = false]) every entry point is a cheap no-op
    (span id 0). *)

module Ring = Ring
module Hist = Hist
module Json = Json
module Span = Span

(** {1 Switches and environment hooks} *)

val enable : unit -> unit
val disable : unit -> unit
val enabled : unit -> bool

val set_clock : (unit -> int) -> unit
(** Source of virtual-clock µs; [Kernel.create] installs the simulation
    clock here. *)

val set_context : (unit -> int) -> unit
(** Source of the currently-running simulated pid (0 when none);
    [Kernel.create] installs [Proc.Cur]-based lookup. *)

val now_us : unit -> int
val current_pid : unit -> int

val configure : ?ring_capacity:int -> unit -> unit
(** Replace the flight recorder (default capacity 4096 records);
    discards its current contents. *)

val reset : unit -> unit
(** Clear all state: open spans, aggregations, the ring.  Call between
    independent measurement windows (the enable/reset pairing replaces
    the old global [Kernel.reset_codec_stats] hygiene problem — see
    [envelope.mli]). *)

(** {1 Span lifecycle} *)

val span_begin : pid:int -> sysno:int -> int
(** Open a span; returns its id, or 0 when disabled.  Span ids are
    positive and unique within a session. *)

val span_end : int -> error:bool -> unit
(** Close a span: folds it into the per-syscall counters/histogram.
    No-op on id 0 or an already-closed/aborted span. *)

val current : unit -> int
(** Innermost open span of the current process (via the context hook),
    or 0.  Envelope constructors use this to tag fresh envelopes. *)

val abort_pid : int -> unit
(** Force-close every open span of a process.  Called on [exit] and
    [exec], whose traps never return to the instrumentation that opened
    them; such spans count as aborted, not completed. *)

(** {1 Layer frames} *)

type frame

val layer_enter : span:int -> string -> frame option
(** Push a frame named after the layer; [None] when the span is 0 or
    no longer live (then nothing need be recorded). *)

val layer_exit : frame -> unit
(** Pop the frame, publishing its segment.  Tolerates the span having
    been aborted underneath it, and closes any younger frames an
    exception skipped over. *)

val in_layer : span:int -> string -> (unit -> 'a) -> 'a
(** [in_layer ~span layer f] wraps [f] in an enter/exit pair,
    exception-safely.  Runs [f] bare when the span is dead or 0. *)

(** {1 Codec attribution} *)

val note_decode : int -> unit
(** An envelope belonging to this span was decoded; attributed to the
    span's innermost open frame.  No-op on span 0. *)

val note_encode : int -> unit

(** {1 Trace-agent records} *)

val record_call : Span.call -> unit
(** Append a trace-agent call record to the ring (no-op when
    disabled). *)

(** {1 Reading the flight recorder} *)

val records : unit -> Span.record list
(** Oldest first; non-destructive. *)

val drain : unit -> Span.record list
(** Read and clear (also resets the dropped counter). *)

val segments : unit -> Span.segment list
(** Just the layer segments from {!records}. *)

val dropped : unit -> int

(** {1 Metrics} *)

type syscall_metrics = {
  sm_sysno : int;
  sm_calls : int;   (** spans completed or aborted for this sysno *)
  sm_errors : int;  (** of which returned an error result *)
  sm_hist : Hist.t; (** end-to-end span latency, virtual µs *)
}

type layer_metrics = {
  lm_depth : int;    (** frame nesting depth within its span *)
  lm_layer : string;
  lm_traps : int;    (** frames closed at this (depth, layer) *)
  lm_decodes : int;
  lm_encodes : int;
  lm_self_us : int;  (** sum of per-frame self time *)
  lm_total_us : int; (** sum of per-frame total time *)
}

type metrics = {
  m_spans : int;    (** spans completed normally *)
  m_aborted : int;  (** spans force-closed by exit/exec *)
  m_open : int;     (** spans still open at snapshot time *)
  m_dropped : int;  (** ring records overwritten before draining *)
  m_syscalls : syscall_metrics list; (** ascending sysno *)
  m_layers : layer_metrics list;     (** ascending (depth, layer) *)
}

val metrics : unit -> metrics

val metrics_to_json : ?name:(int -> string) -> metrics -> Json.t
(** [name] renders syscall numbers (callers pass [Abi.Sysno.name]; obs
    itself stays below [abi] in the library stack and cannot). *)
