(* Chrome/Perfetto trace_event rendering of flight-recorder records.

   The mapping (DESIGN.md §3.4): one trace "process" per simulated pid;
   within it, one "thread" per (depth, layer) pair a segment was
   recorded at — so a depth-4 stack shows as five nested tracks, in
   stack order — plus thread 0 for point events (trace-agent calls,
   signal and abort marks).  Segments become complete events
   ([ph:"X"], ts/dur in µs, which is what the virtual clock already
   counts); calls and marks become instant events ([ph:"i"]); names
   come from the caller-supplied syscall-number renderer, since obs
   sits below [abi] and cannot name numbers itself.

   The output is a bare JSON array of events — both chrome://tracing
   and Perfetto accept that form directly.  Metadata events ([ph:"M"])
   come first; real events follow sorted by timestamp. *)

let default_name n = Printf.sprintf "syscall#%d" n

(* tid 0 carries the instant events; segment tracks start at 1, ordered
   by (depth, layer) so the viewer shows the stack outermost-first *)
let tid_tables records =
  let tracks : (int * (int * string), unit) Hashtbl.t = Hashtbl.create 16 in
  let pids : (int, unit) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun r ->
      match r with
      | Span.Segment s ->
        Hashtbl.replace pids s.Span.pid ();
        Hashtbl.replace tracks (s.Span.pid, (s.Span.depth, s.Span.layer)) ()
      | Span.Call c -> Hashtbl.replace pids c.Span.c_pid ()
      | Span.Mark m -> Hashtbl.replace pids m.Span.m_pid ())
    records;
  let by_track = Hashtbl.create 16 in
  Hashtbl.iter
    (fun pid () ->
      let layers =
        Hashtbl.fold
          (fun (p, key) () acc -> if p = pid then key :: acc else acc)
          tracks []
        |> List.sort compare
      in
      List.iteri
        (fun i key -> Hashtbl.replace by_track (pid, key) (i + 1))
        layers)
    pids;
  let pid_list = Hashtbl.fold (fun p () acc -> p :: acc) pids [] |> List.sort compare in
  (pid_list, by_track)

let meta_event ~pid ~tid ~which name =
  Json.Obj
    [
      ("ph", Json.Str "M");
      ("ts", Json.Int 0);
      ("pid", Json.Int pid);
      ("tid", Json.Int tid);
      ("name", Json.Str which);
      ("args", Json.Obj [ ("name", Json.Str name) ]);
    ]

let default_pid_label pid = Printf.sprintf "pid %d" pid

(* Causal edges render as flow events: a [ph:"s"] start bound to the
   source span's slice and a [ph:"f"] (binding point "e") on the
   destination span's slice, matched by id — the arrows Perfetto draws
   across process lanes.  Binding needs a concrete slice, so each
   endpoint is looked up among the records' outermost segments (keyed
   by (pid, span): span ids are unique per shard only, pids are
   already shard-disjoint here) and its timestamp clamped into that
   slice; edges whose endpoints the ring dropped or the sampler
   skipped are omitted. *)
let flow_events edges records ~by_track =
  let slices : (int * int, int * string * int * int) Hashtbl.t =
    Hashtbl.create 64
  in
  (* (pid, span) -> (depth, layer, start_us, total_us) for the
     outermost segment seen *)
  List.iter
    (function
      | Span.Segment s ->
        let key = (s.Span.pid, s.Span.span) in
        let keep =
          match Hashtbl.find_opt slices key with
          | Some (d, _, _, _) -> s.Span.depth < d
          | None -> true
        in
        if keep then
          Hashtbl.replace slices key
            (s.Span.depth, s.Span.layer, s.Span.start_us, s.Span.total_us)
      | Span.Call _ | Span.Mark _ -> ())
    records;
  let clamp ts (_, _, lo, dur) = max lo (min ts (lo + dur)) in
  let tid_for pid (depth, layer, _, _) =
    match Hashtbl.find_opt by_track (pid, (depth, layer)) with
    | Some tid -> tid
    | None -> 0
  in
  List.concat_map
    (fun ed ->
      if ed.Causal.ed_src_span <= 0 || ed.Causal.ed_dst_span <= 0 then []
      else
        match
          ( Hashtbl.find_opt slices (ed.Causal.ed_src_pid, ed.Causal.ed_src_span),
            Hashtbl.find_opt slices (ed.Causal.ed_dst_pid, ed.Causal.ed_dst_span) )
        with
        | Some src_slice, Some dst_slice ->
          let id = (ed.Causal.ed_shard * 1_000_000_000) + ed.Causal.ed_seq in
          let name = Causal.kind_name ed.Causal.ed_kind in
          let point ~ph ~extra ~pid ~tid ~ts =
            ( ts,
              Json.Obj
                ([
                   ("name", Json.Str name);
                   ("cat", Json.Str "causal");
                   ("ph", Json.Str ph);
                 ]
                @ extra
                @ [
                    ("id", Json.Int id);
                    ("ts", Json.Int ts);
                    ("pid", Json.Int pid);
                    ("tid", Json.Int tid);
                    ( "args",
                      Json.Obj
                        [
                          ("src_span", Json.Int ed.Causal.ed_src_span);
                          ("dst_span", Json.Int ed.Causal.ed_dst_span);
                          ("detail", Json.Str ed.Causal.ed_detail);
                        ] );
                  ]) )
          in
          [
            point ~ph:"s" ~extra:[] ~pid:ed.Causal.ed_src_pid
              ~tid:(tid_for ed.Causal.ed_src_pid src_slice)
              ~ts:(clamp ed.Causal.ed_t_us src_slice);
            point ~ph:"f" ~extra:[ ("bp", Json.Str "e") ]
              ~pid:ed.Causal.ed_dst_pid
              ~tid:(tid_for ed.Causal.ed_dst_pid dst_slice)
              ~ts:(clamp ed.Causal.ed_t_us dst_slice);
          ]
        | _ -> [])
    edges

let to_json ?(name = default_name) ?(pid_label = default_pid_label)
    ?(edges = []) records =
  let pid_list, by_track = tid_tables records in
  let metadata =
    List.concat_map
      (fun pid ->
        let threads =
          Hashtbl.fold
            (fun (p, (depth, layer)) tid acc ->
              if p = pid then ((depth, layer), tid) :: acc else acc)
            by_track []
          |> List.sort compare
        in
        meta_event ~pid ~tid:0 ~which:"process_name" (pid_label pid)
        :: meta_event ~pid ~tid:0 ~which:"thread_name" "events"
        :: List.map
             (fun ((depth, layer), tid) ->
               meta_event ~pid ~tid ~which:"thread_name"
                 (Printf.sprintf "d%d %s" depth layer))
             threads)
      pid_list
  in
  let event_of = function
    | Span.Segment s ->
      let tid =
        match Hashtbl.find_opt by_track (s.Span.pid, (s.Span.depth, s.Span.layer)) with
        | Some tid -> tid
        | None -> 0
      in
      ( s.Span.start_us,
        Json.Obj
          [
            ("name", Json.Str (name s.Span.sysno));
            ("cat", Json.Str "trap");
            ("ph", Json.Str "X");
            ("ts", Json.Int s.Span.start_us);
            ("dur", Json.Int s.Span.total_us);
            ("pid", Json.Int s.Span.pid);
            ("tid", Json.Int tid);
            ( "args",
              Json.Obj
                [
                  ("span", Json.Int s.Span.span);
                  ("sysno", Json.Int s.Span.sysno);
                  ("layer", Json.Str s.Span.layer);
                  ("depth", Json.Int s.Span.depth);
                  ("self_us", Json.Int s.Span.self_us);
                  ("decodes", Json.Int s.Span.decodes);
                  ("encodes", Json.Int s.Span.encodes);
                  ("rewrites", Json.Int s.Span.rewrites);
                ] );
          ] )
    | Span.Call c ->
      ( c.Span.c_t_us,
        Json.Obj
          [
            ("name", Json.Str (Span.call_line c));
            ("cat", Json.Str "call");
            ("ph", Json.Str "i");
            ("s", Json.Str "t");
            ("ts", Json.Int c.Span.c_t_us);
            ("pid", Json.Int c.Span.c_pid);
            ("tid", Json.Int 0);
            ( "args",
              Json.Obj
                ([ ("span", Json.Int c.Span.c_span) ]
                @
                if c.Span.c_rewrote then [ ("rewrote", Json.Bool true) ]
                else []) );
          ] )
    | Span.Mark m ->
      ( m.Span.m_t_us,
        Json.Obj
          [
            ("name", Json.Str (m.Span.m_kind ^ " " ^ m.Span.m_detail));
            ("cat", Json.Str m.Span.m_kind);
            ("ph", Json.Str "i");
            ("s", Json.Str "t");
            ("ts", Json.Int m.Span.m_t_us);
            ("pid", Json.Int m.Span.m_pid);
            ("tid", Json.Int 0);
            ("args", Json.Obj [ ("span", Json.Int m.Span.m_span) ]);
          ] )
  in
  let events =
    List.map event_of records @ flow_events edges records ~by_track
    |> List.stable_sort (fun (a, _) (b, _) -> compare a b)
    |> List.map snd
  in
  Json.Arr (metadata @ events)

let to_string ?name ?pid_label ?edges records =
  Json.to_string (to_json ?name ?pid_label ?edges records)

(* Cluster export: shards reuse pid numbers (each runs its own init as
   pid 1), so lanes from different shards would collide in the viewer.
   Offsetting every pid by [shard * shard_stride] keeps lanes disjoint
   while staying reversible for the label. *)
let shard_stride = 100_000

let map_pid f = function
  | Span.Segment s -> Span.Segment { s with Span.pid = f s.Span.pid }
  | Span.Call c -> Span.Call { c with Span.c_pid = f c.Span.c_pid }
  | Span.Mark m -> Span.Mark { m with Span.m_pid = f m.Span.m_pid }

let default_sharded_pid_label pid =
  Printf.sprintf "s%d pid %d" (pid / shard_stride) (pid mod shard_stride)

let to_json_sharded ?name ?(pid_label = default_sharded_pid_label)
    ?(edges = []) shards =
  let records =
    List.concat_map
      (fun (shard, records) ->
        List.map (map_pid (fun pid -> (shard * shard_stride) + pid)) records)
      shards
  in
  (* edge endpoints follow the same per-shard pid offsetting as the
     records they bind to; each side maps through its own shard *)
  let edges =
    List.map
      (fun ed ->
        {
          ed with
          Causal.ed_src_pid =
            (ed.Causal.ed_src_shard * shard_stride) + ed.Causal.ed_src_pid;
          ed_dst_pid = (ed.Causal.ed_shard * shard_stride) + ed.Causal.ed_dst_pid;
        })
      edges
  in
  to_json ?name ~pid_label ~edges records

let to_string_sharded ?name ?pid_label ?edges shards =
  Json.to_string (to_json_sharded ?name ?pid_label ?edges shards)
