(* Chrome/Perfetto trace_event rendering of flight-recorder records.

   The mapping (DESIGN.md §3.4): one trace "process" per simulated pid;
   within it, one "thread" per (depth, layer) pair a segment was
   recorded at — so a depth-4 stack shows as five nested tracks, in
   stack order — plus thread 0 for point events (trace-agent calls,
   signal and abort marks).  Segments become complete events
   ([ph:"X"], ts/dur in µs, which is what the virtual clock already
   counts); calls and marks become instant events ([ph:"i"]); names
   come from the caller-supplied syscall-number renderer, since obs
   sits below [abi] and cannot name numbers itself.

   The output is a bare JSON array of events — both chrome://tracing
   and Perfetto accept that form directly.  Metadata events ([ph:"M"])
   come first; real events follow sorted by timestamp. *)

let default_name n = Printf.sprintf "syscall#%d" n

(* tid 0 carries the instant events; segment tracks start at 1, ordered
   by (depth, layer) so the viewer shows the stack outermost-first *)
let tid_tables records =
  let tracks : (int * (int * string), unit) Hashtbl.t = Hashtbl.create 16 in
  let pids : (int, unit) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun r ->
      match r with
      | Span.Segment s ->
        Hashtbl.replace pids s.Span.pid ();
        Hashtbl.replace tracks (s.Span.pid, (s.Span.depth, s.Span.layer)) ()
      | Span.Call c -> Hashtbl.replace pids c.Span.c_pid ()
      | Span.Mark m -> Hashtbl.replace pids m.Span.m_pid ())
    records;
  let by_track = Hashtbl.create 16 in
  Hashtbl.iter
    (fun pid () ->
      let layers =
        Hashtbl.fold
          (fun (p, key) () acc -> if p = pid then key :: acc else acc)
          tracks []
        |> List.sort compare
      in
      List.iteri
        (fun i key -> Hashtbl.replace by_track (pid, key) (i + 1))
        layers)
    pids;
  let pid_list = Hashtbl.fold (fun p () acc -> p :: acc) pids [] |> List.sort compare in
  (pid_list, by_track)

let meta_event ~pid ~tid ~which name =
  Json.Obj
    [
      ("ph", Json.Str "M");
      ("ts", Json.Int 0);
      ("pid", Json.Int pid);
      ("tid", Json.Int tid);
      ("name", Json.Str which);
      ("args", Json.Obj [ ("name", Json.Str name) ]);
    ]

let default_pid_label pid = Printf.sprintf "pid %d" pid

let to_json ?(name = default_name) ?(pid_label = default_pid_label) records =
  let pid_list, by_track = tid_tables records in
  let metadata =
    List.concat_map
      (fun pid ->
        let threads =
          Hashtbl.fold
            (fun (p, (depth, layer)) tid acc ->
              if p = pid then ((depth, layer), tid) :: acc else acc)
            by_track []
          |> List.sort compare
        in
        meta_event ~pid ~tid:0 ~which:"process_name" (pid_label pid)
        :: meta_event ~pid ~tid:0 ~which:"thread_name" "events"
        :: List.map
             (fun ((depth, layer), tid) ->
               meta_event ~pid ~tid ~which:"thread_name"
                 (Printf.sprintf "d%d %s" depth layer))
             threads)
      pid_list
  in
  let event_of = function
    | Span.Segment s ->
      let tid =
        match Hashtbl.find_opt by_track (s.Span.pid, (s.Span.depth, s.Span.layer)) with
        | Some tid -> tid
        | None -> 0
      in
      ( s.Span.start_us,
        Json.Obj
          [
            ("name", Json.Str (name s.Span.sysno));
            ("cat", Json.Str "trap");
            ("ph", Json.Str "X");
            ("ts", Json.Int s.Span.start_us);
            ("dur", Json.Int s.Span.total_us);
            ("pid", Json.Int s.Span.pid);
            ("tid", Json.Int tid);
            ( "args",
              Json.Obj
                [
                  ("span", Json.Int s.Span.span);
                  ("sysno", Json.Int s.Span.sysno);
                  ("layer", Json.Str s.Span.layer);
                  ("depth", Json.Int s.Span.depth);
                  ("self_us", Json.Int s.Span.self_us);
                  ("decodes", Json.Int s.Span.decodes);
                  ("encodes", Json.Int s.Span.encodes);
                  ("rewrites", Json.Int s.Span.rewrites);
                ] );
          ] )
    | Span.Call c ->
      ( c.Span.c_t_us,
        Json.Obj
          [
            ("name", Json.Str (Span.call_line c));
            ("cat", Json.Str "call");
            ("ph", Json.Str "i");
            ("s", Json.Str "t");
            ("ts", Json.Int c.Span.c_t_us);
            ("pid", Json.Int c.Span.c_pid);
            ("tid", Json.Int 0);
            ( "args",
              Json.Obj
                ([ ("span", Json.Int c.Span.c_span) ]
                @
                if c.Span.c_rewrote then [ ("rewrote", Json.Bool true) ]
                else []) );
          ] )
    | Span.Mark m ->
      ( m.Span.m_t_us,
        Json.Obj
          [
            ("name", Json.Str (m.Span.m_kind ^ " " ^ m.Span.m_detail));
            ("cat", Json.Str m.Span.m_kind);
            ("ph", Json.Str "i");
            ("s", Json.Str "t");
            ("ts", Json.Int m.Span.m_t_us);
            ("pid", Json.Int m.Span.m_pid);
            ("tid", Json.Int 0);
            ("args", Json.Obj [ ("span", Json.Int m.Span.m_span) ]);
          ] )
  in
  let events =
    List.map event_of records
    |> List.stable_sort (fun (a, _) (b, _) -> compare a b)
    |> List.map snd
  in
  Json.Arr (metadata @ events)

let to_string ?name ?pid_label records =
  Json.to_string (to_json ?name ?pid_label records)

(* Cluster export: shards reuse pid numbers (each runs its own init as
   pid 1), so lanes from different shards would collide in the viewer.
   Offsetting every pid by [shard * shard_stride] keeps lanes disjoint
   while staying reversible for the label. *)
let shard_stride = 100_000

let map_pid f = function
  | Span.Segment s -> Span.Segment { s with Span.pid = f s.Span.pid }
  | Span.Call c -> Span.Call { c with Span.c_pid = f c.Span.c_pid }
  | Span.Mark m -> Span.Mark { m with Span.m_pid = f m.Span.m_pid }

let to_json_sharded ?name shards =
  let records =
    List.concat_map
      (fun (shard, records) ->
        List.map (map_pid (fun pid -> (shard * shard_stride) + pid)) records)
      shards
  in
  let pid_label pid =
    Printf.sprintf "s%d pid %d" (pid / shard_stride) (pid mod shard_stride)
  in
  to_json ?name ~pid_label records

let to_string_sharded ?name shards =
  Json.to_string (to_json_sharded ?name shards)
