(* Log2 latency histogram.  Bucket 0 holds exactly-zero (and clamped
   negative) observations; bucket i >= 1 covers [2^(i-1), 2^i) µs; the
   last bucket absorbs everything above its lower bound. *)

let buckets = 32

type t = {
  counts : int array;
  mutable total : int;
  mutable sum_us : int;
  mutable max_us : int;
}

let create () = { counts = Array.make buckets 0; total = 0; sum_us = 0; max_us = 0 }

let bucket_of_us us =
  if us <= 0 then 0
  else begin
    let rec log2 n acc = if n = 0 then acc else log2 (n lsr 1) (acc + 1) in
    min (buckets - 1) (log2 us 0)
  end

let lower_bound i = if i <= 0 then 0 else 1 lsl (i - 1)

let observe t us =
  let us = max 0 us in
  let b = bucket_of_us us in
  t.counts.(b) <- t.counts.(b) + 1;
  t.total <- t.total + 1;
  t.sum_us <- t.sum_us + us;
  if us > t.max_us then t.max_us <- us

let count t = t.total
let sum_us t = t.sum_us
let max_us t = t.max_us
let mean_us t = if t.total = 0 then 0. else float_of_int t.sum_us /. float_of_int t.total
let bucket t i = if i < 0 || i >= buckets then 0 else t.counts.(i)

let nonzero t =
  let acc = ref [] in
  for i = buckets - 1 downto 0 do
    if t.counts.(i) > 0 then acc := (i, t.counts.(i)) :: !acc
  done;
  !acc

(* Quantiles are upper-bucket-bound estimates: the rank-th observation
   is somewhere in its bucket, and we report the bucket's largest
   representable value (2^i - 1 for bucket i).  The overflow bucket has
   no upper edge, so it reports the exact observed maximum instead.
   Total over every histogram and every q: an empty histogram answers
   0, q is clamped to [0, 1], and rank 0 is rounded up to 1. *)
let quantile t q =
  if t.total = 0 then 0
  else begin
    let q = if q < 0. then 0. else if q > 1. then 1. else q in
    let rank = max 1 (int_of_float (ceil (q *. float_of_int t.total))) in
    let rec find i seen =
      if i >= buckets - 1 then t.max_us
      else begin
        let seen = seen + t.counts.(i) in
        if seen >= rank then if i = 0 then 0 else (1 lsl i) - 1
        else find (i + 1) seen
      end
    in
    find 0 0
  end

let copy t =
  { counts = Array.copy t.counts; total = t.total; sum_us = t.sum_us; max_us = t.max_us }

let merge ~into src =
  Array.iteri (fun i n -> into.counts.(i) <- into.counts.(i) + n) src.counts;
  into.total <- into.total + src.total;
  into.sum_us <- into.sum_us + src.sum_us;
  if src.max_us > into.max_us then into.max_us <- src.max_us

let pp fmt t =
  Format.fprintf fmt "n=%d mean=%.1fus max=%dus" t.total (mean_us t) t.max_us;
  List.iter
    (fun (i, n) ->
      if i = 0 then Format.fprintf fmt " [0]:%d" n
      else Format.fprintf fmt " [%d-%d):%d" (lower_bound i) (1 lsl i) n)
    (nonzero t)
