(* Flamegraph folding (DESIGN.md §3.9).

   Flight-recorder segments carry (span, depth, layer, self_us); a
   span's segments stacked by depth are exactly one trap's layer path
   (uspace → agents → kernel).  Folding groups self time by
   (sysno, layer path), producing the collapsed-stack form every
   flamegraph renderer consumes: one line per stack, space, weight.

   Self times per span sum to the root frame's total by construction
   (obs engine invariant), so the fold's total weight equals the sum
   of segment self times — the bench gate checks exactly that.

   Weights are virtual µs; [to_string ~scale] rescales them (the
   host-ns variant multiplies by measured ns per virtual µs from the
   §3.8 host counters).  Span ids are unique per engine only, so fold
   per shard and [combine] the results for a cluster view. *)

type fold = {
  fl_sysno : int;
  fl_stack : string list; (* outermost first, leaf last *)
  fl_self_us : int;
  fl_frames : int;
}

let fold segments =
  (* Group segments by span, then reconstruct each span's layer path
     by depth.  Ring order within a span is close order; the first
     layer seen at a depth names that depth in the path (re-entered
     frames — e.g. a restarted trap's second kernel frame — fold into
     the same stack). *)
  let by_span : (int, Span.segment list ref) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun (s : Span.segment) ->
      match Hashtbl.find_opt by_span s.Span.span with
      | Some l -> l := s :: !l
      | None -> Hashtbl.replace by_span s.Span.span (ref [ s ]))
    segments;
  let acc : (int * string list, int ref * int ref) Hashtbl.t =
    Hashtbl.create 64
  in
  Hashtbl.iter
    (fun _span segs ->
      let segs = List.rev !segs in
      let layer_at : (int, string) Hashtbl.t = Hashtbl.create 8 in
      List.iter
        (fun (s : Span.segment) ->
          if not (Hashtbl.mem layer_at s.Span.depth) then
            Hashtbl.replace layer_at s.Span.depth s.Span.layer)
        segs;
      List.iter
        (fun (s : Span.segment) ->
          let stack =
            List.init (s.Span.depth + 1) (fun d ->
                if d = s.Span.depth then s.Span.layer
                else
                  match Hashtbl.find_opt layer_at d with
                  | Some l -> l
                  | None -> "?")
          in
          let key = (s.Span.sysno, stack) in
          match Hashtbl.find_opt acc key with
          | Some (self, frames) ->
            self := !self + s.Span.self_us;
            incr frames
          | None -> Hashtbl.replace acc key (ref s.Span.self_us, ref 1))
        segs)
    by_span;
  Hashtbl.fold
    (fun (sysno, stack) (self, frames) l ->
      { fl_sysno = sysno; fl_stack = stack; fl_self_us = !self;
        fl_frames = !frames }
      :: l)
    acc []
  |> List.sort (fun a b ->
         compare (a.fl_sysno, a.fl_stack) (b.fl_sysno, b.fl_stack))

let combine folds_list =
  let acc : (int * string list, int ref * int ref) Hashtbl.t =
    Hashtbl.create 64
  in
  List.iter
    (List.iter (fun f ->
         let key = (f.fl_sysno, f.fl_stack) in
         match Hashtbl.find_opt acc key with
         | Some (self, frames) ->
           self := !self + f.fl_self_us;
           frames := !frames + f.fl_frames
         | None -> Hashtbl.replace acc key (ref f.fl_self_us, ref f.fl_frames)))
    folds_list;
  Hashtbl.fold
    (fun (sysno, stack) (self, frames) l ->
      { fl_sysno = sysno; fl_stack = stack; fl_self_us = !self;
        fl_frames = !frames }
      :: l)
    acc []
  |> List.sort (fun a b ->
         compare (a.fl_sysno, a.fl_stack) (b.fl_sysno, b.fl_stack))

let total folds = List.fold_left (fun acc f -> acc + f.fl_self_us) 0 folds

let default_name n = Printf.sprintf "syscall#%d" n

let to_string ?(name = default_name) ?(scale = 1.0) folds =
  let buf = Buffer.create 1024 in
  List.iter
    (fun f ->
      let weight =
        int_of_float (Float.round (float_of_int f.fl_self_us *. scale))
      in
      Buffer.add_string buf
        (String.concat ";" (name f.fl_sysno :: f.fl_stack));
      Buffer.add_char buf ' ';
      Buffer.add_string buf (string_of_int weight);
      Buffer.add_char buf '\n')
    folds;
  Buffer.contents buf
