(* Declarative watchdog rules over a metrics snapshot (DESIGN.md §3.9).

   A rule is a named ceiling on one observable:

     # comments and blank lines are ignored
     read-errors  = error_rate(read) <= 0.05
     tail-latency = p99_us( * ) <= 400
     no-aborts    = aborts <= 0
     pool-misses  = env_pool_misses <= 100

   The target in parentheses is a syscall name or [*] for all
   syscalls.  A rule *trips* when the observed value exceeds its
   bound.  Rules are evaluated against plain rows the caller adapts
   from its metrics snapshot — obs sits below [abi], so syscall names
   resolve through a caller-supplied lookup at parse time and rules
   hold numbers from then on.  Evaluation is pure: the kernel runs it
   on every [metrics_json] and agentrun turns any trip into a nonzero
   exit. *)

type pred =
  | Error_rate of int option * float  (* sysno (None = all), max rate *)
  | P99_us of int option * int        (* sysno (None = worst), max µs *)
  | Aborts of int
  | Env_pool_misses of int

type rule = {
  w_name : string;
  w_target : string; (* as written: a syscall name or "*" *)
  w_pred : pred;
}

let pred_to_string r =
  match r.w_pred with
  | Error_rate (_, bound) ->
    Printf.sprintf "error_rate(%s) <= %g" r.w_target bound
  | P99_us (_, bound) -> Printf.sprintf "p99_us(%s) <= %d" r.w_target bound
  | Aborts bound -> Printf.sprintf "aborts <= %d" bound
  | Env_pool_misses bound -> Printf.sprintf "env_pool_misses <= %d" bound

(* ---------- parsing ---------- *)

let parse_target ~sysno ~line what inside =
  let inside = String.trim inside in
  if inside = "*" then Ok None
  else
    match sysno inside with
    | Some n -> Ok (Some n)
    | None ->
      Error (Printf.sprintf "line %d: unknown syscall %S in %s" line inside what)

let split_on_le s =
  let n = String.length s in
  let rec find i =
    if i + 1 >= n then None
    else if s.[i] = '<' && s.[i + 1] = '=' then Some i
    else find (i + 1)
  in
  Option.map
    (fun i -> (String.sub s 0 i, String.sub s (i + 2) (n - i - 2)))
    (find 0)

let parse_fn lhs =
  (* "error_rate(read)" -> Some ("error_rate", "read") *)
  match String.index_opt lhs '(' with
  | None -> None
  | Some i when String.length lhs > 0 && lhs.[String.length lhs - 1] = ')' ->
    Some
      ( String.trim (String.sub lhs 0 i),
        String.sub lhs (i + 1) (String.length lhs - i - 2) )
  | Some _ -> None

let parse_line ~sysno ~line s =
  match String.index_opt s '=' with
  | None -> Error (Printf.sprintf "line %d: expected 'name = predicate'" line)
  | Some eq ->
    let name = String.trim (String.sub s 0 eq) in
    let rest = String.sub s (eq + 1) (String.length s - eq - 1) in
    if name = "" then Error (Printf.sprintf "line %d: empty rule name" line)
    else begin
      match split_on_le rest with
      | None ->
        Error (Printf.sprintf "line %d: expected '<observable> <= <bound>'" line)
      | Some (lhs, bound_s) -> (
        let lhs = String.trim lhs and bound_s = String.trim bound_s in
        let int_bound mk =
          match int_of_string_opt bound_s with
          | Some b -> Ok (mk b)
          | None -> Error (Printf.sprintf "line %d: bad integer bound %S" line bound_s)
        in
        match parse_fn lhs with
        | Some ("error_rate", tgt) -> (
          match parse_target ~sysno ~line "error_rate" tgt with
          | Error e -> Error e
          | Ok t -> (
            match float_of_string_opt bound_s with
            | Some b ->
              Ok { w_name = name; w_target = String.trim tgt;
                   w_pred = Error_rate (t, b) }
            | None ->
              Error (Printf.sprintf "line %d: bad rate bound %S" line bound_s)))
        | Some ("p99_us", tgt) -> (
          match parse_target ~sysno ~line "p99_us" tgt with
          | Error e -> Error e
          | Ok t ->
            Result.map
              (fun p -> { w_name = name; w_target = String.trim tgt; w_pred = p })
              (int_bound (fun b -> P99_us (t, b))))
        | Some (fn, _) ->
          Error (Printf.sprintf "line %d: unknown observable %S" line fn)
        | None ->
          if lhs = "aborts" then
            Result.map
              (fun p -> { w_name = name; w_target = ""; w_pred = p })
              (int_bound (fun b -> Aborts b))
          else if lhs = "env_pool_misses" then
            Result.map
              (fun p -> { w_name = name; w_target = ""; w_pred = p })
              (int_bound (fun b -> Env_pool_misses b))
          else Error (Printf.sprintf "line %d: unknown observable %S" line lhs))
    end

let of_spec ~sysno text =
  let lines = String.split_on_char '\n' text in
  let rec go n acc = function
    | [] -> Ok (List.rev acc)
    | l :: tl ->
      let t = String.trim l in
      if t = "" || t.[0] = '#' then go (n + 1) acc tl
      else (
        match parse_line ~sysno ~line:n t with
        | Ok r -> go (n + 1) (r :: acc) tl
        | Error e -> Error e)
  in
  go 1 [] lines

(* ---------- evaluation ---------- *)

type sys_row = {
  ws_sysno : int;
  ws_calls : int;
  ws_errors : int;
  ws_p99_us : int;
}

type input = {
  wi_sys : sys_row list;
  wi_aborted : int;
  wi_env_pool_misses : int;
}

type verdict = {
  wr_rule : rule;
  wr_value : float; (* observed *)
  wr_bound : float;
  wr_tripped : bool;
}

let eval_rule input r =
  let value =
    match r.w_pred with
    | Error_rate (target, _) ->
      let calls, errors =
        List.fold_left
          (fun (c, e) row ->
            if target = None || target = Some row.ws_sysno then
              (c + row.ws_calls, e + row.ws_errors)
            else (c, e))
          (0, 0) input.wi_sys
      in
      if calls = 0 then 0.0 else float_of_int errors /. float_of_int calls
    | P99_us (target, _) ->
      float_of_int
        (List.fold_left
           (fun acc row ->
             if target = None || target = Some row.ws_sysno then
               max acc row.ws_p99_us
             else acc)
           0 input.wi_sys)
    | Aborts _ -> float_of_int input.wi_aborted
    | Env_pool_misses _ -> float_of_int input.wi_env_pool_misses
  in
  let bound =
    match r.w_pred with
    | Error_rate (_, b) -> b
    | P99_us (_, b) -> float_of_int b
    | Aborts b -> float_of_int b
    | Env_pool_misses b -> float_of_int b
  in
  { wr_rule = r; wr_value = value; wr_bound = bound;
    wr_tripped = value > bound }

let eval rules input = List.map (eval_rule input) rules
let tripped verdicts = List.filter (fun v -> v.wr_tripped) verdicts

let verdicts_to_json verdicts =
  Json.Obj
    [
      ("rules", Json.Int (List.length verdicts));
      ("tripped", Json.Int (List.length (tripped verdicts)));
      ( "results",
        Json.Arr
          (List.map
             (fun v ->
               Json.Obj
                 [
                   ("name", Json.Str v.wr_rule.w_name);
                   ("pred", Json.Str (pred_to_string v.wr_rule));
                   ("value", Json.Float v.wr_value);
                   ("bound", Json.Float v.wr_bound);
                   ("tripped", Json.Bool v.wr_tripped);
                 ])
             verdicts) );
    ]
