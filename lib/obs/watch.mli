(** Declarative watchdog rules over a metrics snapshot
    (DESIGN.md §3.9).

    One rule per line, ['#'] comments and blank lines ignored:
    {v
    read-errors  = error_rate(read) <= 0.05
    tail-latency = p99_us( * ) <= 400
    no-aborts    = aborts <= 0
    pool-misses  = env_pool_misses <= 100
    v}
    The parenthesised target is a syscall name (resolved through the
    caller's [sysno] lookup — obs sits below [abi]) or [*] for all.
    A rule {e trips} when the observed value exceeds its bound.
    Evaluation is pure over rows the caller adapts from its metrics;
    the kernel surfaces verdicts as the [watchdogs] block of
    [metrics_json] and agentrun exits nonzero on any trip. *)

type pred =
  | Error_rate of int option * float
      (** errors/calls for one sysno ([None] = all), max rate *)
  | P99_us of int option * int
      (** p99 latency for one sysno ([None] = worst of any), max µs *)
  | Aborts of int             (** span-abort count ceiling *)
  | Env_pool_misses of int    (** envelope-pool miss ceiling *)

type rule = {
  w_name : string;
  w_target : string;  (** target as written: a syscall name or ["*"] *)
  w_pred : pred;
}

val pred_to_string : rule -> string
(** The predicate in rule-file syntax, e.g.
    ["error_rate(read) <= 0.05"]. *)

val of_spec : sysno:(string -> int option) -> string -> (rule list, string) result
(** Parse a rules file.  [Error] carries a message naming the first
    bad line. *)

type sys_row = {
  ws_sysno : int;
  ws_calls : int;
  ws_errors : int;
  ws_p99_us : int;
}

type input = {
  wi_sys : sys_row list;
  wi_aborted : int;
  wi_env_pool_misses : int;
}

type verdict = {
  wr_rule : rule;
  wr_value : float;  (** observed *)
  wr_bound : float;
  wr_tripped : bool;
}

val eval : rule list -> input -> verdict list
(** One verdict per rule, in rule order. *)

val tripped : verdict list -> verdict list

val verdicts_to_json : verdict list -> Json.t
(** The [watchdogs] block: [{"rules": n, "tripped": m, "results":
    [{name, pred, value, bound, tripped} ...]}]. *)
