open Abi

module Signature = Signature
module Strace = Strace

(* The differential transparency checker: run a workload bare, run it
   again under an agent stack, and require the two syscall signatures
   to agree once quotiented by the stack's own declared delta.  An
   agent may do anything it declared; anything residual is a
   machine-checked transparency violation, pinned to the first
   diverging call.

   The workload plumbing (kernel construction, image registration,
   setup, boot) deliberately reuses [Fault.Campaign.workload]: the
   conformance matrix sweeps exactly the campaign workloads, and a
   CLI-supplied program is just a workload with a spawn body. *)

type workload = Fault.Campaign.workload

(* --- stacks -------------------------------------------------------------- *)

(* [sk_make] runs inside the booted init process, before the workload
   body: it may issue system calls (e.g. opening a trace sink), none
   of which enter the signature — capture starts only once the stack
   is installed.  The returned list is in install order, bottom-most
   agent first. *)
type stack = {
  sk_name : string;
  sk_make : unit -> Toolkit.Numeric.numeric_syscall list;
}

let bare = { sk_name = "bare"; sk_make = (fun () -> []) }

let agent a = (a :> Toolkit.Numeric.numeric_syscall)

(* The trace sink: a descriptor whose writes go nowhere, so tracing a
   bench workload does not flood the console.  It is moved to the top
   of the descriptor table — an agent descriptor parked at 3 would
   shift every fd the client subsequently receives, and the checker
   (correctly) flags that as a transparency violation; real tracers
   relocate their descriptors for exactly this reason. *)
let trace_fd () =
  match Libc.Unistd.open_ "/dev/null" Flags.Open.o_wronly 0 with
  | Error _ -> 2
  | Ok fd -> (
    let high = Libc.Unistd.getdtablesize () - 1 in
    match Libc.Unistd.dup2 fd high with
    | Ok _ ->
      ignore (Libc.Unistd.close fd);
      high
    | Error _ -> fd)

let trace = {
  sk_name = "trace";
  sk_make = (fun () -> [ agent (Agents.Trace.create ~fd:(trace_fd ()) ()) ]);
}

let crypt = {
  sk_name = "crypt";
  sk_make =
    (fun () -> [ agent (Agents.Crypt.create ~key:42 ~subtrees:[ "/vault" ]) ]);
}

(* a policy wide enough for any workload: sandbox transparency is the
   statement that an all-permitting policy leaves no trace *)
let sandbox = {
  sk_name = "sandbox";
  sk_make =
    (fun () -> [ agent (Agents.Sandbox.create Agents.Sandbox.open_policy) ]);
}

let remap = {
  sk_name = "remap";
  sk_make = (fun () -> [ agent (Agents.Remap.create ()) ]);
}

let timex = {
  sk_name = "timex";
  sk_make =
    (fun () -> [ agent (Agents.Timex.create ~offset_seconds:3600 ()) ]);
}

let stacked = {
  sk_name = "stacked";
  sk_make =
    (fun () ->
      [
        agent (Agents.Sandbox.create Agents.Sandbox.open_policy);
        agent (Agents.Crypt.create ~key:42 ~subtrees:[ "/vault" ]);
        agent (Agents.Trace.create ~fd:(trace_fd ()) ());
      ]);
}

(* an injector with an empty plan: the honest no-op — conformance of
   this stack is the statement that the injection machinery itself
   (site matching, restart bookkeeping) leaves no trace *)
let faultinject = {
  sk_name = "faultinject";
  sk_make = (fun () -> [ agent (Agents.Faultinject.create_planned []) ]);
}

(* The seeded mutation: an injector that fails the second read with
   EIO but declares no delta at all.  Honest fault injectors restate
   their plan as a [May_fail] mask; this one lies by omission, and the
   checker must catch it. *)
class undeclared_fault =
  object
    inherit
      Agents.Faultinject.planned
        ~plan:
          [
            Agents.Faultinject.site ~kth:2 Sysno.sys_read
              (Agents.Faultinject.Fail Errno.EIO);
          ]

    method! agent_name = "mutant"
    method! declared_delta = Delta.none
  end

let mutant =
  { sk_name = "mutant"; sk_make = (fun () -> [ agent (new undeclared_fault) ]) }

let stacks = [ trace; crypt; sandbox; faultinject; remap; timex; stacked ]
let all_stacks = (bare :: stacks) @ [ mutant ]

let stack_of_name name =
  List.find_opt (fun s -> s.sk_name = name) all_stacks

(* "trace,crypt" composes the named stacks' layers into one stack (in
   spec order, bottom-most first) *)
let of_spec spec =
  let names =
    String.split_on_char ',' spec
    |> List.map String.trim
    |> List.filter (fun s -> s <> "")
  in
  if names = [] then Error "empty stack spec"
  else
    let rec resolve acc = function
      | [] -> Ok (List.rev acc)
      | n :: rest -> (
        match stack_of_name n with
        | Some s -> resolve (s :: acc) rest
        | None ->
          Error
            (Printf.sprintf "unknown stack %S (known: %s)" n
               (String.concat ", "
                  (List.map (fun s -> s.sk_name) all_stacks))))
    in
    match resolve [] names with
    | Error _ as e -> e
    | Ok [ s ] -> Ok s
    | Ok parts ->
      Ok
        {
          sk_name = spec;
          sk_make =
            (fun () -> List.concat_map (fun s -> s.sk_make ()) parts);
        }

(* --- capture -------------------------------------------------------------- *)

type capture = {
  cap_sig : Signature.t;
  cap_status : int;
  cap_delta : Delta.t;
}

(* One instrumented run.  The engine switches (enabled, sig-capture)
   must be on *before* [Kernel.create] so the kernel's private engine
   copies them; the tap itself is armed only after the stack is
   installed, so agent construction syscalls stay out of the
   signature.  Ambient obs state is restored on the way out, exactly
   as [Fault.Campaign.baseline] does. *)
let capture ?fused (w : workload) stack =
  let was_enabled = Obs.enabled () in
  Obs.reset ();
  Obs.enable ();
  let k = Kernel.create ?fused () in
  Workloads.Scribe.register k;
  Workloads.Make_cc.register k;
  Workloads.Kvd.register k;
  Kernel.populate_standard k;
  w.Fault.Campaign.w_setup k;
  let delta = ref Delta.none in
  let status =
    Kernel.boot k ~name:(w.Fault.Campaign.w_name ^ "-conform") (fun () ->
      let agents = stack.sk_make () in
      List.iter (fun a -> Toolkit.Loader.install a ~argv:[||]) agents;
      delta := Delta.compose (List.map (fun a -> a#declared_delta) agents);
      Obs.sig_capture true;
      let rc = w.Fault.Campaign.w_body () in
      Obs.sig_capture false;
      rc)
  in
  let s = Signature.of_obs (Obs.sig_events ()) in
  Obs.sig_clear ();
  Obs.sig_capture false;
  Obs.disable ();
  Obs.reset ();
  if was_enabled then Obs.enable ();
  { cap_sig = s; cap_status = status; cap_delta = !delta }

(* --- the check ------------------------------------------------------------ *)

type verdict = {
  c_workload : string;
  c_stack : string;
  c_delta : Delta.t;
  c_bare_events : int;
  c_under_events : int;
  c_masked : int;
  c_bare_status : int;
  c_under_status : int;
  c_violation : Signature.divergence option;
}

let conforms v = v.c_violation = None

(* [scope] picks the comparison quotient: [`Global] demands the whole
   interleaved stream match (right for sequential workloads), while
   [`Per_process] compares each pid's stream in isolation — required
   for concurrent workloads like kvd, where an agent charging virtual
   time lawfully reshuffles the cross-process interleaving. *)
let check ?baseline ?(scope = `Global) (w : workload) stack =
  let b =
    match baseline with Some b -> b | None -> capture w bare
  in
  let u = capture w stack in
  (* normalize BOTH sides by the stack's declared delta: a May_fail
     mask collapses the corresponding bare outcomes too, otherwise a
     declared injection would still diverge *)
  let nb = Signature.normalize u.cap_delta b.cap_sig in
  let nu = Signature.normalize u.cap_delta u.cap_sig in
  {
    c_workload = w.Fault.Campaign.w_name;
    c_stack = stack.sk_name;
    c_delta = u.cap_delta;
    c_bare_events = Signature.length b.cap_sig;
    c_under_events = Signature.length u.cap_sig;
    c_masked = Signature.masked nu;
    c_bare_status = b.cap_status;
    c_under_status = u.cap_status;
    c_violation =
      (match scope with
       | `Global -> Signature.diff ~bare:nb ~under:nu
       | `Per_process -> Signature.diff_processes ~bare:nb ~under:nu);
  }

let verdict_to_string v =
  match v.c_violation with
  | None ->
    Printf.sprintf "%s under %s: conformant (%d calls%s, delta %s)"
      v.c_workload v.c_stack v.c_under_events
      (if v.c_masked > 0 then Printf.sprintf ", %d masked" v.c_masked
       else "")
      (Delta.to_string v.c_delta)
  | Some d ->
    Printf.sprintf "%s under %s: VIOLATION\n%s" v.c_workload v.c_stack
      (Signature.divergence_to_string d)

let verdict_to_json v =
  let open Obs.Json in
  Obj
    [
      ("workload", Str v.c_workload);
      ("stack", Str v.c_stack);
      ("delta", Str (Delta.to_string v.c_delta));
      ("bare_events", Int v.c_bare_events);
      ("under_events", Int v.c_under_events);
      ("masked", Int v.c_masked);
      ("conformant", Bool (conforms v));
      ( "violation",
        match v.c_violation with
        | None -> Null
        | Some d -> Signature.divergence_to_json d );
    ]

(* --- workload helpers ----------------------------------------------------- *)

let workloads = Fault.Campaign.workloads
let workload_of_name = Fault.Campaign.of_name

let workload_of_body ~name ?(setup = fun (_ : Kernel.t) -> ()) body =
  {
    Fault.Campaign.w_name = name;
    w_seed = 1;
    w_setup = setup;
    w_body = body;
    w_output = "";
  }
