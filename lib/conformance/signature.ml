open Abi

(* A syscall signature: the ordered stream of application-issued traps
   as observed at the user/kernel interface, each reduced to what
   transparency promises to preserve — which call, with what argument
   shape, from which process, with what outcome.  Values (bytes read,
   timestamps, pids returned) are deliberately absent: agents may
   lawfully rewrite those, and the shape/outcome reduction is exactly
   the quotient in which a transparent stack is invisible. *)

type outcome =
  | Ok_            (* the call succeeded *)
  | Err of int     (* failed with this errno *)
  | Noreturn       (* never returned (exit, successful execve) *)
  | Masked         (* neutralized by a declared [May_fail] clause *)

type event = {
  x_seq : int;        (* 1-based position in the capture stream *)
  x_pid : int;
  x_sysno : int;
  x_shape : string;
  x_outcome : outcome;
}

type t = { sg_events : event list }

let empty = { sg_events = [] }
let events t = t.sg_events
let length t = List.length t.sg_events

let outcome_of_errno errno =
  if errno = Obs.sig_pending then Noreturn
  else if errno = 0 then Ok_
  else Err errno

let of_obs evs =
  {
    sg_events =
      List.map
        (fun (e : Obs.sig_event) ->
          {
            x_seq = e.Obs.g_seq;
            x_pid = e.Obs.g_pid;
            x_sysno = e.Obs.g_sysno;
            x_shape = e.Obs.g_shape;
            x_outcome = outcome_of_errno e.Obs.g_errno;
          })
        evs;
  }

(* --- outcome rendering -------------------------------------------------- *)

let outcome_name = function
  | Ok_ -> "ok"
  | Noreturn -> "noreturn"
  | Masked -> "masked"
  | Err e -> (
    match Errno.of_int e with
    | Some er -> Errno.name er
    | None -> Printf.sprintf "E%d" e)

let outcome_of_name = function
  | "ok" -> Some Ok_
  | "noreturn" -> Some Noreturn
  | "masked" -> Some Masked
  | s -> (
    match Errno.of_name s with
    | Some er -> Some (Err (Errno.to_int er))
    | None ->
      if String.length s > 1 && s.[0] = 'E' then
        Option.map (fun e -> Err e)
          (int_of_string_opt (String.sub s 1 (String.length s - 1)))
      else None)

let event_to_string ev =
  Printf.sprintf "#%d pid %d %s(%s) -> %s" ev.x_seq ev.x_pid
    (Sysno.name ev.x_sysno) ev.x_shape (outcome_name ev.x_outcome)

(* --- aggregate view ------------------------------------------------------ *)

let counts t =
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun ev ->
      let key = (ev.x_sysno, ev.x_shape, ev.x_outcome) in
      Hashtbl.replace tbl key
        (1 + Option.value ~default:0 (Hashtbl.find_opt tbl key)))
    t.sg_events;
  Hashtbl.fold (fun k n acc -> (k, n) :: acc) tbl [] |> List.sort compare

(* --- serialization ------------------------------------------------------- *)

(* One event is a flat 5-array; the envelope records the version and
   total so a truncated file is detectable. *)
let to_json t =
  let open Obs.Json in
  Obj
    [
      ("version", Int 1);
      ("events", Int (length t));
      ( "stream",
        Arr
          (List.map
             (fun ev ->
               Arr
                 [
                   Int ev.x_seq; Int ev.x_pid; Int ev.x_sysno;
                   Str ev.x_shape; Str (outcome_name ev.x_outcome);
                 ])
             t.sg_events) );
    ]

let of_json j =
  let open Obs.Json in
  let ( let* ) r f = Result.bind r f in
  let* () =
    match Option.bind (member "version" j) to_int with
    | Some 1 -> Ok ()
    | Some v -> Error (Printf.sprintf "unsupported signature version %d" v)
    | None -> Error "missing version"
  in
  let* stream =
    match Option.bind (member "stream" j) to_list with
    | Some l -> Ok l
    | None -> Error "missing stream"
  in
  let* evs =
    List.fold_left
      (fun acc el ->
        let* acc = acc in
        match to_list el with
        | Some [ seq; pid; sysno; shape; outc ] -> (
          match
            ( to_int seq, to_int pid, to_int sysno, to_str shape,
              Option.bind (to_str outc) outcome_of_name )
          with
          | Some x_seq, Some x_pid, Some x_sysno, Some x_shape,
            Some x_outcome ->
            Ok ({ x_seq; x_pid; x_sysno; x_shape; x_outcome } :: acc)
          | _ -> Error "malformed event")
        | _ -> Error "malformed event")
      (Ok []) stream
  in
  let evs = List.rev evs in
  let* () =
    match Option.bind (member "events" j) to_int with
    | Some n when n = List.length evs -> Ok ()
    | Some _ -> Error "event count mismatch (truncated stream?)"
    | None -> Error "missing events count"
  in
  Ok { sg_events = evs }

let to_string t = Obs.Json.to_string (to_json t)

let of_string s =
  Result.bind (Obs.Json.of_string s) of_json

(* --- normalization by a declared delta ----------------------------------- *)

(* Value-level clauses (Shifts_results, Rewrites_results, May_delay)
   touch nothing a signature retains, so they normalize to the
   identity — that asymmetry is the point: an agent that declares
   "I rewrite read payloads" has NOT declared license to change how
   many reads happen or whether they succeed. *)

let apply_clause ev = function
  | Delta.Shifts_results _ | Delta.Rewrites_results _ | Delta.May_delay _ ->
    ev
  | Delta.Renumbers pairs -> (
    match List.assoc_opt ev.x_sysno pairs with
    | Some native -> { ev with x_sysno = native }
    | None -> ev)
  | Delta.May_fail { sysnos; errnos } ->
    if not (List.mem ev.x_sysno sysnos) then ev
    else (
      match ev.x_outcome with
      | Ok_ | Masked -> { ev with x_outcome = Masked }
      | Err e -> (
        match Errno.of_int e with
        | Some er when List.mem er errnos -> { ev with x_outcome = Masked }
        | Some _ | None -> ev)
      | Noreturn -> ev)

let normalize delta t =
  {
    sg_events =
      List.map (fun ev -> List.fold_left apply_clause ev delta) t.sg_events;
  }

let masked t =
  List.length
    (List.filter (fun ev -> ev.x_outcome = Masked) t.sg_events)

(* --- differencing -------------------------------------------------------- *)

type divergence = {
  d_index : int;             (* 0-based position where the streams split *)
  d_bare : event option;     (* what the bare run did there *)
  d_under : event option;    (* what the stacked run did there *)
  d_reason : string;
}

(* seq is positional bookkeeping, not identity: two aligned streams
   agree on it by construction, and comparing it would double-report
   any earlier divergence *)
let event_key ev = (ev.x_pid, ev.x_sysno, ev.x_shape, ev.x_outcome)

let explain a b =
  if a.x_sysno <> b.x_sysno then
    Printf.sprintf "syscall differs: %s vs %s" (Sysno.name a.x_sysno)
      (Sysno.name b.x_sysno)
  else if a.x_pid <> b.x_pid then
    Printf.sprintf "issuing pid differs: %d vs %d" a.x_pid b.x_pid
  else if a.x_shape <> b.x_shape then
    Printf.sprintf "arg shape of %s differs: (%s) vs (%s)"
      (Sysno.name a.x_sysno) a.x_shape b.x_shape
  else
    Printf.sprintf "outcome of %s differs: %s vs %s" (Sysno.name a.x_sysno)
      (outcome_name a.x_outcome) (outcome_name b.x_outcome)

let diff ~bare ~under =
  let rec go i bs us =
    match (bs, us) with
    | [], [] -> None
    | a :: _, [] ->
      Some
        {
          d_index = i; d_bare = Some a; d_under = None;
          d_reason =
            Printf.sprintf "stream under the stack ends %d call(s) early"
              (List.length bs);
        }
    | [], b :: _ ->
      Some
        {
          d_index = i; d_bare = None; d_under = Some b;
          d_reason =
            Printf.sprintf "%d extra call(s) under the stack"
              (List.length us);
        }
    | a :: ra, b :: rb ->
      if event_key a = event_key b then go (i + 1) ra rb
      else
        Some
          { d_index = i; d_bare = Some a; d_under = Some b;
            d_reason = explain a b }
  in
  go 0 bare.sg_events under.sg_events

let equal a b = diff ~bare:a ~under:b = None

(* --- per-process differencing --------------------------------------------- *)

(* A concurrent workload's global interleaving is scheduler state, not
   interface behaviour: an agent that (lawfully) charges virtual time
   shifts which runnable process traps first without changing what any
   process does.  The per-process quotient compares each pid's stream
   in isolation — still exact about every call a process makes, in
   order, but silent on cross-process ordering.  It is only meaningful
   when pid assignment itself is deterministic (the workload must
   serialize its forks). *)

let by_pid t =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun ev ->
      Hashtbl.replace tbl ev.x_pid
        (ev :: Option.value ~default:[] (Hashtbl.find_opt tbl ev.x_pid)))
    t.sg_events;
  Hashtbl.fold
    (fun pid evs acc -> (pid, { sg_events = List.rev evs }) :: acc)
    tbl []
  |> List.sort (fun (a, _) (b, _) -> compare (a : int) b)

let diff_processes ~bare ~under =
  let first s = match s.sg_events with e :: _ -> Some e | [] -> None in
  let missing pid s =
    Some
      {
        d_index = 0; d_bare = first s; d_under = None;
        d_reason =
          Printf.sprintf "process %d (%d call(s)) missing under the stack"
            pid (length s);
      }
  in
  let extra pid s =
    Some
      {
        d_index = 0; d_bare = None; d_under = first s;
        d_reason =
          Printf.sprintf "extra process %d (%d call(s)) under the stack"
            pid (length s);
      }
  in
  let rec go bs us =
    match (bs, us) with
    | [], [] -> None
    | (pid, s) :: _, [] -> missing pid s
    | [], (pid, s) :: _ -> extra pid s
    | (bp, bsig) :: rb, (up, usig) :: ru ->
      if bp < up then missing bp bsig
      else if up < bp then extra up usig
      else (
        match diff ~bare:bsig ~under:usig with
        | None -> go rb ru
        | Some d ->
          Some
            { d with d_reason = Printf.sprintf "pid %d: %s" bp d.d_reason })
  in
  go (by_pid bare) (by_pid under)

let equal_processes a b = diff_processes ~bare:a ~under:b = None

let divergence_to_string d =
  let span = function
    | Some ev -> event_to_string ev
    | None -> "(stream ended)"
  in
  Printf.sprintf "at call %d: %s\n  bare:  %s\n  stack: %s" (d.d_index + 1)
    d.d_reason (span d.d_bare) (span d.d_under)

let divergence_to_json d =
  let open Obs.Json in
  let span = function
    | Some ev ->
      Obj
        [
          ("seq", Int ev.x_seq); ("pid", Int ev.x_pid);
          ("sysno", Int ev.x_sysno);
          ("name", Str (Sysno.name ev.x_sysno));
          ("shape", Str ev.x_shape);
          ("outcome", Str (outcome_name ev.x_outcome));
        ]
    | None -> Null
  in
  Obj
    [
      ("index", Int d.d_index);
      ("reason", Str d.d_reason);
      ("bare", span d.d_bare);
      ("under", span d.d_under);
    ]
