(** strace(1) import: real Linux traces as signatures and scenarios.

    [parse] understands the common strace line form
    ["name(args) = ret [ERRNO (text)]"], including [-f] pid prefixes,
    [-y] descriptor annotations, truncated string literals, and the
    [*at] calling-convention (the [AT_FDCWD]/dirfd argument is
    dropped, matching the 4.3BSD surface).  Signal and exit notices,
    unfinished/resumed fragments and unparseable lines are ignored;
    syscalls with no native mapping are counted in [tr_skipped], never
    silently dropped.

    Two consumers: {!to_signature} renders the trace in the same
    shape/outcome vocabulary the simulator captures, and {!scenario}
    turns it into a deterministic process body that re-issues the
    calls against the simulated kernel — run it under
    {!Agents.Record_replay} and the trace becomes a reproducible
    replay subject. *)

type entry = {
  t_linux : string;          (** the call name as written in the trace *)
  t_sysno : int;             (** mapped native syscall number *)
  t_shape : string;          (** canonical {!Abi.Shape} token string *)
  t_path : string option;    (** first quoted absolute path argument *)
  t_fd : int option;         (** leading descriptor argument *)
  t_size : int option;       (** trailing byte-count argument *)
  t_wflags : int;            (** for open: reconstructed [Flags.Open] bits *)
  t_ret : int;
  t_errno : Abi.Errno.t option;
}

type trace = {
  tr_entries : entry list;
  tr_skipped : int;          (** syscall lines with no native mapping *)
  tr_lines : int;            (** lines recognized as syscalls *)
}

val native_of_linux : string -> int option
(** The Linux-name → native-sysno table ([openat] → [open],
    [getdents64] → [getdirentries], [clock_gettime] → [gettimeofday],
    …). *)

val parse : string -> trace

val to_signature : ?pid:int -> trace -> Signature.t
(** The trace as a {!Signature.t} (default pid 1: strace of a single
    process). *)

val scenario : trace -> unit -> int
(** A process body re-issuing the trace's calls best-effort:
    descriptors translate through a live map (the simulator assigns
    its own numbers), payloads are synthesized at the recorded sizes,
    unsupported calls are skipped.  Deterministic: the same trace
    always issues the same call sequence.  Returns the number of calls
    issued. *)
