open Abi

(* Importing real strace(1) output.  A Linux trace parses into a
   stream of classified entries; those become (a) a Signature.t in the
   same shape vocabulary the simulator emits, and (b) a replayable
   scenario — a process body that re-issues the trace's calls against
   the simulated kernel, suitable for running under the record/replay
   agents.  Calls outside the 4.3BSD surface are counted, not
   dropped silently. *)

type entry = {
  t_linux : string;          (* the call name as written in the trace *)
  t_sysno : int;             (* mapped native syscall number *)
  t_shape : string;          (* canonical arg shape (Abi.Shape tokens) *)
  t_path : string option;    (* first quoted absolute path argument *)
  t_fd : int option;         (* leading descriptor argument *)
  t_size : int option;       (* trailing byte-count argument *)
  t_wflags : int;            (* open intent: Flags.Open bits *)
  t_ret : int;
  t_errno : Errno.t option;
}

type trace = {
  tr_entries : entry list;
  tr_skipped : int;          (* calls with no native mapping *)
  tr_lines : int;            (* input lines that looked like syscalls *)
}

(* --- the linux-name -> native-sysno table -------------------------------- *)

let native_of_linux = function
  | "read" -> Some Sysno.sys_read
  | "write" -> Some Sysno.sys_write
  | "open" | "openat" -> Some Sysno.sys_open
  | "creat" -> Some Sysno.sys_creat
  | "close" -> Some Sysno.sys_close
  | "stat" | "stat64" | "newfstatat" | "fstatat64" | "statx" ->
    Some Sysno.sys_stat
  | "lstat" | "lstat64" -> Some Sysno.sys_lstat
  | "fstat" | "fstat64" -> Some Sysno.sys_fstat
  | "access" | "faccessat" | "faccessat2" -> Some Sysno.sys_access
  | "unlink" | "unlinkat" -> Some Sysno.sys_unlink
  | "mkdir" | "mkdirat" -> Some Sysno.sys_mkdir
  | "rmdir" -> Some Sysno.sys_rmdir
  | "rename" | "renameat" | "renameat2" -> Some Sysno.sys_rename
  | "link" | "linkat" -> Some Sysno.sys_link
  | "symlink" | "symlinkat" -> Some Sysno.sys_symlink
  | "readlink" | "readlinkat" -> Some Sysno.sys_readlink
  | "chdir" -> Some Sysno.sys_chdir
  | "fchdir" -> Some Sysno.sys_fchdir
  | "getcwd" -> Some Sysno.sys_getcwd
  | "chmod" | "fchmodat" -> Some Sysno.sys_chmod
  | "chown" | "fchownat" | "lchown" -> Some Sysno.sys_chown
  | "truncate" -> Some Sysno.sys_truncate
  | "ftruncate" -> Some Sysno.sys_ftruncate
  | "lseek" | "_llseek" -> Some Sysno.sys_lseek
  | "dup" -> Some Sysno.sys_dup
  | "dup2" | "dup3" -> Some Sysno.sys_dup2
  | "pipe" | "pipe2" -> Some Sysno.sys_pipe
  | "fcntl" | "fcntl64" -> Some Sysno.sys_fcntl
  | "select" | "pselect6" | "_newselect" -> Some Sysno.sys_select
  | "fsync" | "fdatasync" -> Some Sysno.sys_fsync
  | "sync" -> Some Sysno.sys_sync
  | "ioctl" -> Some Sysno.sys_ioctl
  | "mknod" | "mknodat" -> Some Sysno.sys_mknod
  | "umask" -> Some Sysno.sys_umask
  | "utimes" | "utimensat" | "utime" -> Some Sysno.sys_utimes
  | "getdents" | "getdents64" -> Some Sysno.sys_getdirentries
  | "getpid" -> Some Sysno.sys_getpid
  | "getppid" -> Some Sysno.sys_getppid
  | "getuid" | "getuid32" -> Some Sysno.sys_getuid
  | "geteuid" | "geteuid32" -> Some Sysno.sys_geteuid
  | "getgid" | "getgid32" -> Some Sysno.sys_getgid
  | "getegid" | "getegid32" -> Some Sysno.sys_getegid
  | "setuid" | "setuid32" -> Some Sysno.sys_setuid
  | "getpgrp" -> Some Sysno.sys_getpgrp
  | "setpgid" -> Some Sysno.sys_setpgrp
  | "fork" | "vfork" | "clone" | "clone3" -> Some Sysno.sys_fork
  | "execve" -> Some Sysno.sys_execve
  | "wait4" | "waitpid" -> Some Sysno.sys_wait4
  | "kill" -> Some Sysno.sys_kill
  | "exit" | "exit_group" | "_exit" -> Some Sysno.sys_exit
  | "gettimeofday" | "clock_gettime" | "time" -> Some Sysno.sys_gettimeofday
  | "settimeofday" -> Some Sysno.sys_settimeofday
  | "getrusage" -> Some Sysno.sys_getrusage
  | "alarm" -> Some Sysno.sys_alarm
  | "brk" | "sbrk" -> Some Sysno.sys_sbrk
  | "nanosleep" | "clock_nanosleep" | "usleep" -> Some Sysno.sys_sleepus
  | "rt_sigaction" | "sigaction" -> Some Sysno.sys_sigaction
  | "rt_sigprocmask" | "sigprocmask" -> Some Sysno.sys_sigprocmask
  | "rt_sigpending" | "sigpending" -> Some Sysno.sys_sigpending
  | "rt_sigsuspend" | "sigsuspend" -> Some Sysno.sys_sigsuspend
  | "socketpair" -> Some Sysno.sys_socketpair
  | _ -> None

(* --- lexing one line ------------------------------------------------------ *)

(* split an argument list on top-level commas (quotes, brackets and
   braces nest; backslash escapes inside quoted strings) *)
let split_args s =
  let out = ref [] in
  let buf = Buffer.create 32 in
  let depth = ref 0 in
  let in_str = ref false in
  let n = String.length s in
  let flush () =
    let a = String.trim (Buffer.contents buf) in
    Buffer.clear buf;
    if a <> "" then out := a :: !out
  in
  let i = ref 0 in
  while !i < n do
    let c = s.[!i] in
    (if !in_str then begin
       Buffer.add_char buf c;
       if c = '\\' && !i + 1 < n then begin
         Buffer.add_char buf s.[!i + 1];
         incr i
       end
       else if c = '"' then in_str := false
     end
     else
       match c with
       | '"' ->
         in_str := true;
         Buffer.add_char buf c
       | '(' | '[' | '{' ->
         incr depth;
         Buffer.add_char buf c
       | ')' | ']' | '}' ->
         decr depth;
         Buffer.add_char buf c
       | ',' when !depth = 0 -> flush ()
       | _ -> Buffer.add_char buf c);
    incr i
  done;
  flush ();
  List.rev !out

let unquote_c s =
  (* strace C-style string literal, possibly "..."...-truncated *)
  let s =
    if String.length s >= 3 && String.sub s (String.length s - 3) 3 = "..."
    then String.sub s 0 (String.length s - 3)
    else s
  in
  if String.length s >= 2 && s.[0] = '"' && s.[String.length s - 1] = '"'
  then begin
    let body = String.sub s 1 (String.length s - 2) in
    let b = Buffer.create (String.length body) in
    let n = String.length body in
    let rec go i =
      if i < n then
        if body.[i] = '\\' && i + 1 < n then begin
          (match body.[i + 1] with
           | 'n' -> Buffer.add_char b '\n'
           | 't' -> Buffer.add_char b '\t'
           | 'r' -> Buffer.add_char b '\r'
           | '0' -> Buffer.add_char b '\000'
           | c -> Buffer.add_char b c);
          go (i + 2)
        end
        else begin
          Buffer.add_char b body.[i];
          go (i + 1)
        end
    in
    go 0;
    Some (Buffer.contents b)
  end
  else None

let is_int_token s =
  s <> ""
  && (match int_of_string_opt s with Some _ -> true | None -> false)

(* classify one textual argument into a Shape token by synthesizing
   the Value.t the simulator would have carried *)
let token_of_arg ~name a =
  match unquote_c a with
  | Some s ->
    (* a read/write payload is buffer-class, not string-class *)
    if name = "read" || name = "write" then
      Shape.token (Value.Buf (Bytes.of_string s))
    else Shape.token (Value.Str s)
  | None ->
    if a = "NULL" then Shape.token Value.Nil
    else if is_int_token a then
      Shape.token (Value.Int (int_of_string a))
    else if String.length a > 0 && a.[0] = '{' then "st"
    else if String.length a > 0 && a.[0] = '[' then
      "v"
      ^ string_of_int
          (List.length (split_args (String.sub a 1 (String.length a - 2))))
    else "k" (* symbolic constant(s): O_RDONLY, AT_FDCWD, SEEK_SET... *)

let first_path args =
  List.find_map
    (fun a ->
      match unquote_c a with
      | Some s when String.length s > 0 && s.[0] = '/' -> Some s
      | _ -> None)
    args

let leading_fd ~name args =
  (* calls whose first argument is a descriptor *)
  let fd_first =
    [ "read"; "write"; "close"; "fstat"; "fstat64"; "lseek"; "_llseek";
      "fchdir"; "ftruncate"; "fsync"; "fdatasync"; "dup"; "dup2"; "dup3";
      "fcntl"; "fcntl64"; "ioctl"; "getdents"; "getdents64" ]
  in
  if List.mem name fd_first then
    match args with
    | a :: _ when is_int_token a -> Some (int_of_string a)
    | a :: _ -> (
      (* strace -y renders "3</etc/passwd>" *)
      match String.index_opt a '<' with
      | Some i -> int_of_string_opt (String.sub a 0 i)
      | None -> None)
    | [] -> None
  else None

let trailing_size args =
  match List.rev args with
  | a :: _ when is_int_token a -> Some (int_of_string a)
  | _ -> None

let open_flags args =
  let spec = String.concat "|" args in
  let has f =
    (* substring test over the symbolic flag spec *)
    let fl = String.length f and sl = String.length spec in
    let rec go i = i + fl <= sl && (String.sub spec i fl = f || go (i + 1)) in
    go 0
  in
  let open Flags.Open in
  List.fold_left
    (fun acc (name, bit) -> if has name then acc lor bit else acc)
    (if has "O_RDWR" then o_rdwr
     else if has "O_WRONLY" then o_wronly
     else o_rdonly)
    [ ("O_CREAT", o_creat); ("O_TRUNC", o_trunc); ("O_APPEND", o_append) ]

(* one line: "name(args) = ret [ERRNO (text)]", or noise we skip *)
let parse_line line =
  let line = String.trim line in
  (* strip a leading "[pid NNN]" or bare-pid prefix from -f output *)
  let line =
    if String.length line > 0 && (line.[0] = '[' || is_int_token
        (match String.index_opt line ' ' with
         | Some i -> String.sub line 0 i
         | None -> ""))
    then
      match String.index_opt line ' ' with
      | Some i ->
        let rest = String.trim (String.sub line i (String.length line - i)) in
        if String.length line > 0 && line.[0] = '[' then
          (match String.index_opt line ']' with
           | Some j when j + 1 < String.length line ->
             String.trim (String.sub line (j + 1) (String.length line - j - 1))
           | _ -> rest)
        else rest
      | None -> line
    else line
  in
  if line = "" then `Noise
  else if String.length line >= 3 && String.sub line 0 3 = "+++" then `Noise
  else if String.length line >= 3 && String.sub line 0 3 = "---" then `Noise
  else
    match String.index_opt line '(' with
    | None -> `Noise
    | Some lp -> (
      let name = String.sub line 0 lp in
      let valid_name =
        name <> ""
        && String.for_all
             (fun c ->
               (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c = '_')
             name
      in
      if not valid_name then `Noise
      else
        (* the result separator is the LAST " = " on the line *)
        let rec last_eq from acc =
          match String.index_from_opt line from '=' with
          | Some i when i > 0 && i + 1 < String.length line
                        && line.[i - 1] = ' ' && line.[i + 1] = ' ' ->
            last_eq (i + 1) (Some i)
          | Some i -> last_eq (i + 1) acc
          | None -> acc
        in
        match last_eq lp None with
        | None -> `Unfinished (* "<unfinished ...>" and friends *)
        | Some eq -> (
          match String.rindex_from_opt line eq ')' with
          | None -> `Noise
          | Some rp when rp <= lp -> `Noise
          | Some rp ->
            let args_s = String.sub line (lp + 1) (rp - lp - 1) in
            let ret_s =
              String.trim
                (String.sub line (eq + 1) (String.length line - eq - 1))
            in
            let ret_tok, errno =
              match String.split_on_char ' ' ret_s with
              | [] -> ("", None)
              | r :: rest ->
                let e =
                  List.find_map
                    (fun t ->
                      if String.length t > 1 && t.[0] = 'E' then
                        Errno.of_name t
                      else None)
                    rest
                in
                (r, e)
            in
            let ret =
              match int_of_string_opt ret_tok with
              | Some r -> r
              | None -> if ret_tok = "?" then 0 else 0
            in
            let args = split_args args_s in
            `Call (name, args, ret, errno)))

let parse text =
  let entries = ref [] in
  let skipped = ref 0 in
  let lines = ref 0 in
  List.iter
    (fun line ->
      match parse_line line with
      | `Noise | `Unfinished -> ()
      | `Call (name, args, ret, errno) -> (
        incr lines;
        match native_of_linux name with
        | None -> incr skipped
        | Some sysno ->
          (* openat's AT_FDCWD and *at dirfds are calling-convention
             noise the 4.3BSD surface does not have *)
          let args =
            match args with
            | first :: rest
              when String.length name > 2
                   && (String.sub name (String.length name - 2) 2 = "at"
                       || name = "openat" || name = "newfstatat")
                   && (first = "AT_FDCWD" || is_int_token first) ->
              rest
            | _ -> args
          in
          let shape =
            String.concat "," (List.map (token_of_arg ~name) args)
          in
          entries :=
            {
              t_linux = name;
              t_sysno = sysno;
              t_shape = shape;
              t_path = first_path args;
              t_fd = leading_fd ~name args;
              t_size = trailing_size args;
              t_wflags = (if sysno = Sysno.sys_open then open_flags args else 0);
              t_ret = ret;
              t_errno = errno;
            }
            :: !entries))
    (String.split_on_char '\n' text);
  { tr_entries = List.rev !entries; tr_skipped = !skipped; tr_lines = !lines }

(* --- trace -> signature --------------------------------------------------- *)

let to_signature ?(pid = 1) tr =
  let evs =
    List.mapi
      (fun i e ->
        {
          Signature.x_seq = i + 1;
          x_pid = pid;
          x_sysno = e.t_sysno;
          x_shape = e.t_shape;
          x_outcome =
            (if e.t_linux = "execve" && e.t_ret = 0 then Signature.Noreturn
             else if e.t_linux = "exit" || e.t_linux = "exit_group" then
               Signature.Noreturn
             else
               match e.t_errno with
               | Some er -> Signature.Err (Errno.to_int er)
               | None -> Signature.Ok_);
        })
      tr.tr_entries
  in
  match Signature.of_string
          (Obs.Json.to_string
             (Obs.Json.Obj
                [ ("version", Obs.Json.Int 1);
                  ("events", Obs.Json.Int (List.length evs));
                  ("stream",
                   Obs.Json.Arr
                     (List.map
                        (fun (ev : Signature.event) ->
                          Obs.Json.Arr
                            [ Obs.Json.Int ev.Signature.x_seq;
                              Obs.Json.Int ev.x_pid;
                              Obs.Json.Int ev.x_sysno;
                              Obs.Json.Str ev.x_shape;
                              Obs.Json.Str
                                (Signature.outcome_name ev.x_outcome) ])
                        evs)) ]))
  with
  | Ok s -> s
  | Error _ -> Signature.empty

(* --- trace -> replayable scenario ----------------------------------------- *)

(* The scenario re-issues the trace's calls against the simulated
   kernel, best-effort: descriptors are translated through a live map
   (the simulator will hand out different numbers), paths are used as
   recorded, data payloads are synthesized at the recorded size.
   Calls that cannot be re-issued (no mapped descriptor, unsupported
   shape) are skipped and counted; the function returns the number of
   calls actually issued.

   Determinism is the property that matters: two runs of the same
   scenario issue the same call sequence, so a journal recorded on the
   first run replays on the second with zero desyncs. *)
let scenario tr () =
  let open Libc.Unistd in
  let fdmap : (int, int) Hashtbl.t = Hashtbl.create 16 in
  let issued = ref 0 in
  let issue (r : _ r) = incr issued; ignore r in
  List.iter
    (fun e ->
      let mapped = Option.bind e.t_fd (Hashtbl.find_opt fdmap) in
      let n = e.t_sysno in
      if n = Sysno.sys_open then (
        match e.t_path with
        | Some p -> (
          match open_ p e.t_wflags 0o644 with
          | Ok fd ->
            incr issued;
            if e.t_ret >= 0 then Hashtbl.replace fdmap e.t_ret fd
          | Error _ -> incr issued)
        | None -> ())
      else if n = Sysno.sys_close then (
        match mapped with
        | Some fd ->
          issue (close fd);
          (match e.t_fd with
           | Some tfd -> Hashtbl.remove fdmap tfd
           | None -> ())
        | None -> ())
      else if n = Sysno.sys_read then (
        match mapped with
        | Some fd ->
          let sz = max 0 (min 65536 (Option.value ~default:0 e.t_size)) in
          issue (read fd (Bytes.create sz) sz)
        | None -> ())
      else if n = Sysno.sys_write then (
        match mapped with
        | Some fd ->
          let sz = max 0 (min 65536 (Option.value ~default:0 e.t_size)) in
          issue (write fd (String.make sz 'x'))
        | None ->
          (* stdout/stderr exist without an open in the trace *)
          (match e.t_fd with
           | Some (1 | 2) ->
             let sz = max 0 (min 4096 (Option.value ~default:0 e.t_size)) in
             issue (write 2 (String.make sz 'x'))
           | _ -> ()))
      else if n = Sysno.sys_stat then (
        match e.t_path with Some p -> issue (stat p) | None -> ())
      else if n = Sysno.sys_lstat then (
        match e.t_path with Some p -> issue (lstat p) | None -> ())
      else if n = Sysno.sys_fstat then (
        match mapped with Some fd -> issue (fstat fd) | None -> ())
      else if n = Sysno.sys_access then (
        match e.t_path with Some p -> issue (access p 4) | None -> ())
      else if n = Sysno.sys_readlink then (
        match e.t_path with Some p -> issue (readlink p) | None -> ())
      else if n = Sysno.sys_unlink then (
        match e.t_path with Some p -> issue (unlink p) | None -> ())
      else if n = Sysno.sys_mkdir then (
        match e.t_path with Some p -> issue (mkdir p 0o755) | None -> ())
      else if n = Sysno.sys_rmdir then (
        match e.t_path with Some p -> issue (rmdir p) | None -> ())
      else if n = Sysno.sys_chdir then (
        match e.t_path with Some p -> issue (chdir p) | None -> ())
      else if n = Sysno.sys_getcwd then issue (getcwd ())
      else if n = Sysno.sys_getdirentries then (
        match mapped with
        | Some fd -> issue (getdirentries fd (Bytes.create 512))
        | None -> ())
      else if n = Sysno.sys_lseek then (
        match mapped with
        | Some fd ->
          let off =
            match e.t_linux with
            | "lseek" -> (
              (* lseek(fd, off, whence): off is the 2nd argument, but
                 we only kept the trailing size slot; seek to ret when
                 the call succeeded, else 0 *)
              match e.t_ret with r when r >= 0 -> r | _ -> 0)
            | _ -> 0
          in
          issue (lseek fd off Flags.Seek.set)
        | None -> ())
      else if n = Sysno.sys_getpid then (incr issued; ignore (getpid ()))
      else if n = Sysno.sys_getppid then (incr issued; ignore (getppid ()))
      else if n = Sysno.sys_getuid then (incr issued; ignore (getuid ()))
      else if n = Sysno.sys_geteuid then (incr issued; ignore (geteuid ()))
      else if n = Sysno.sys_getgid then (incr issued; ignore (getgid ()))
      else if n = Sysno.sys_gettimeofday then issue (gettimeofday ())
      else if n = Sysno.sys_sleepus then issue (sleep_us 1000)
      else ( (* unsupported in replay: fork/execve/signals/... *) ))
    tr.tr_entries;
  Hashtbl.iter (fun _ fd -> ignore (close fd)) fdmap;
  !issued
