(** Syscall signatures: the ordered trap stream of one run, reduced to
    what transparency must preserve.

    Each application-issued trap contributes one {!event} — its
    position, issuing pid, syscall number, canonical argument shape
    ({!Abi.Shape}), and errno-level outcome.  Everything value-level
    (payload bytes, timestamps, returned identifiers) is absent by
    construction, so an agent that lawfully rewrites values produces a
    signature {e identical} to the bare run's, while a dropped rewrite,
    a swallowed call, an extra call, or a changed outcome is a visible
    divergence.

    Signatures come from the obs engine's capture tap
    ([Obs.sig_capture]), which records every instrumented uspace trap
    exactly — independent of span sampling — so a signature is precise
    even when the flight recorder keeps 1-in-N spans. *)

(** What the application observed the call do. *)
type outcome =
  | Ok_            (** succeeded *)
  | Err of int     (** failed with this errno (as an int, so imported
                       traces can carry errnos outside {!Abi.Errno}) *)
  | Noreturn       (** never returned: [exit], successful [execve] *)
  | Masked         (** neutralized by a declared [May_fail] clause
                       during {!normalize} — compares equal to any
                       other masked outcome of the same call *)

type event = {
  x_seq : int;        (** 1-based position in the capture stream *)
  x_pid : int;
  x_sysno : int;
  x_shape : string;   (** {!Abi.Shape.of_wire} of the argument vector *)
  x_outcome : outcome;
}

type t

val empty : t
val events : t -> event list
val length : t -> int

val of_obs : Obs.sig_event list -> t
(** Adopt the engine's captured stream ([Obs.sig_events ()]); a still-
    pending errno (the trap never returned) becomes {!Noreturn}. *)

val counts : t -> ((int * string * outcome) * int) list
(** Aggregated (sysno, shape, outcome) → occurrence counts, sorted —
    the order-insensitive projection, for reporting. *)

(** {1 Serialization}

    Canonical single-line JSON: [{"version":1,"events":N,"stream":
    [[seq,pid,sysno,"shape","outcome"],...]}].  Round-trips exactly
    (qcheck-verified). *)

val to_json : t -> Obs.Json.t
val of_json : Obs.Json.t -> (t, string) result
val to_string : t -> string
val of_string : string -> (t, string) result

val outcome_name : outcome -> string
val outcome_of_name : string -> outcome option
val event_to_string : event -> string

(** {1 Normalization}

    [normalize delta t] quotients a signature by a stack's composed
    declared delta: [Renumbers] maps each foreign sysno to its native
    partner, [May_fail] collapses a listed call's Ok/declared-errno
    outcomes to {!Masked}; the value-level clauses ([Shifts_results],
    [Rewrites_results], [May_delay]) change nothing a signature
    retains.  Idempotent for any delta an agent can truthfully declare
    (renumbering domains are disjoint from their ranges — they map a
    foreign numbering onto the native one). *)

val normalize : Abi.Delta.t -> t -> t

val masked : t -> int
(** Events carrying {!Masked} (i.e. neutralized during normalization). *)

(** {1 Differencing} *)

type divergence = {
  d_index : int;           (** 0-based position where the streams split *)
  d_bare : event option;   (** the bare run's event there, if any *)
  d_under : event option;  (** the stacked run's event there, if any *)
  d_reason : string;
}

val diff : bare:t -> under:t -> divergence option
(** Lockstep comparison on (pid, sysno, shape, outcome); [None] means
    the signatures agree call-for-call.  The first mismatch — or the
    point where one stream ends — is returned with both sides'
    events. *)

val equal : t -> t -> bool
(** [diff ~bare:s ~under:s = None] for every [s]. *)

val by_pid : t -> (int * t) list
(** The signature split into per-process streams (event order
    preserved within each), sorted by pid. *)

val diff_processes : bare:t -> under:t -> divergence option
(** {!diff} applied per process: each pid's stream is compared in
    isolation, so the {e global} interleaving — scheduler state that
    shifts when an agent lawfully charges virtual time — is quotiented
    away, while every call each process makes (and its order within
    that process) is still exact.  A pid present on one side only is a
    divergence.  Only meaningful for workloads whose fork order (and
    hence pid assignment) is deterministic. *)

val equal_processes : t -> t -> bool

val divergence_to_string : divergence -> string
val divergence_to_json : divergence -> Obs.Json.t
