open Abi
open Agents.Faultinject

(* One site per line:  F <pid> <sysno> <kth> <action>
   with <action> one of  fail:<ERRNO>  |  delay:<US>
   pid 0 = any process, kth 0 = every matching call.  The same line
   grammar serves plan files, repro bundles and the agentrun
   faultinject:PLAN spec (there ';' separates sites). *)

let action_to_string = function
  | Fail e -> "fail:" ^ Errno.name e
  | Delay us -> Printf.sprintf "delay:%d" us

let action_of_string s =
  match String.index_opt s ':' with
  | None -> None
  | Some i ->
    let kind = String.sub s 0 i in
    let arg = String.sub s (i + 1) (String.length s - i - 1) in
    (match kind with
     | "fail" -> Option.map (fun e -> Fail e) (Errno.of_name arg)
     | "delay" ->
       (match int_of_string_opt arg with
        | Some us when us >= 0 -> Some (Delay us)
        | _ -> None)
     | _ -> None)

let site_to_string s =
  Printf.sprintf "F %d %d %d %s" s.s_pid s.s_num s.s_kth
    (action_to_string s.s_action)

let site_of_string line =
  match String.split_on_char ' ' (String.trim line) with
  | [ "F"; pid; num; kth; action ] ->
    (match
       ( int_of_string_opt pid, int_of_string_opt num,
         int_of_string_opt kth, action_of_string action )
     with
     | Some s_pid, Some s_num, Some s_kth, Some s_action
       when s_pid >= 0 && s_num >= 0 && s_kth >= 0 ->
       Some { s_pid; s_num; s_kth; s_action }
     | _ -> None)
  | _ -> None

let to_string sites =
  String.concat "" (List.map (fun s -> site_to_string s ^ "\n") sites)

let of_string text =
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | line :: rest ->
      let line = String.trim line in
      if line = "" || line.[0] = '#' then go acc rest
      else
        (match site_of_string line with
         | Some s -> go (s :: acc) rest
         | None -> Error (Printf.sprintf "bad plan line %S" line))
  in
  go [] (String.split_on_char '\n' text)

(* The compact one-liner used on the agentrun command line:
   sites separated by ';', each  [pid@]sysname[#k]=action  e.g.
   "read#3=fail:EIO;2@write=delay:500". *)
let site_of_spec spec =
  let pid, rest =
    match String.index_opt spec '@' with
    | Some i ->
      ( int_of_string_opt (String.sub spec 0 i),
        String.sub spec (i + 1) (String.length spec - i - 1) )
    | None -> Some 0, spec
  in
  match pid, String.index_opt rest '=' with
  | Some pid, Some i when pid >= 0 ->
    let lhs = String.sub rest 0 i in
    let action = String.sub rest (i + 1) (String.length rest - i - 1) in
    let name, kth =
      match String.index_opt lhs '#' with
      | Some j ->
        ( String.sub lhs 0 j,
          int_of_string_opt (String.sub lhs (j + 1) (String.length lhs - j - 1)) )
      | None -> lhs, Some 0
    in
    (match Sysno.of_name name, kth, action_of_string action with
     | Some num, Some kth, Some act when kth >= 0 ->
       Some { s_pid = pid; s_num = num; s_kth = kth; s_action = act }
     | _ -> None)
  | _ -> None

let of_spec spec =
  let parts =
    List.filter (fun s -> String.trim s <> "") (String.split_on_char ';' spec)
  in
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | p :: rest ->
      (match site_of_spec (String.trim p) with
       | Some s -> go (s :: acc) rest
       | None -> Error (Printf.sprintf "bad site spec %S" p))
  in
  if parts = [] then Error "empty plan spec" else go [] parts

let describe_site s =
  let where =
    if s.s_pid = 0 then Sysno.name s.s_num
    else Printf.sprintf "pid %d %s" s.s_pid (Sysno.name s.s_num)
  in
  let which =
    if s.s_kth = 0 then "every call" else Printf.sprintf "call #%d" s.s_kth
  in
  Printf.sprintf "%s %s %s" (action_to_string s.s_action) where which
