(** The fault-campaign driver: discover injection sites from an
    obs-profiled fault-free run, sweep sites × errnos over a workload,
    classify every outcome against the {!Oracle}s, and shrink failing
    plans to minimal injection sets.

    Everything here is deterministic: workload generation is seeded,
    the plan-driven injector makes no random choices, and virtual time
    is simulated — the same sweep produces the same classification
    table on every run. *)

type workload = {
  w_name : string;
  w_seed : int;
  w_setup : Kernel.t -> unit;
  w_body : unit -> int;
  w_output : string;  (** output artifact path compared by the oracle
                          ("" when the console is the product) *)
}

val scribe : workload
(** quick-params scribe formatter *)

val make : workload
(** quick-params make + cc pipeline *)

val afs : workload
(** quick-params Andrew-benchmark phases *)

val kvd : workload
(** quick-params key-value daemon (fork-per-connection mode); the
    oracle pins its deterministic [/kvd/summary] totals *)

val workloads : workload list
val of_name : string -> workload option

(** How a run interacts with [record_replay]: [Record] journals the
    run's inputs (so failures can ship a repro bundle), [Replay] feeds
    a previous journal back, [Bare] does neither. *)
type mode = Bare | Record | Replay of string

type run = {
  r_sites : Agents.Faultinject.site list;
  r_outcome : Oracle.outcome;
  r_detail : string;
  r_report : Oracle.report;
  r_journal : string;   (** recorded journal ("" unless [Record]) *)
  r_injected : int;     (** faults surfaced to the application *)
  r_restarted : int;    (** injected EINTRs absorbed by the restart
                            policy *)
  r_delayed : int;
  r_desyncs : int;      (** replay desyncs ([Replay] mode only) *)
}

val run_plan :
  ?mode:mode -> clean:Oracle.report -> workload
  -> Agents.Faultinject.site list -> run
(** One session of [workload] under the plan, classified against the
    fault-free [clean] report.  Default mode [Record]. *)

val clean_run : ?mode:mode -> workload -> run
(** The fault-free run (classified against itself: always
    [Tolerated]).  Default mode [Bare]. *)

val default_candidates : int list
(** read, write, open, stat. *)

val default_errnos : Abi.Errno.t list
(** EIO, ENOENT, EINTR. *)

val conn_candidates : int list
(** accept, recv, send — the connection-level sites of a socket
    workload. *)

val conn_errnos : Abi.Errno.t list
(** ECONNRESET, EINTR, EIO. *)

type baseline = {
  b_run : run;              (** the fault-free run, [Record]ed *)
  b_profile : (int * int) list;
    (** (sysno, calls) for each candidate the fault-free run actually
        issued — measured by the [Obs] engine *)
}

val baseline : ?candidates:int list -> workload -> baseline
(** Run the workload fault-free with the observability engine enabled
    and read the per-syscall call counts back as the injection-site
    profile.  Resets the [Obs] engine (state restored to enabled if it
    was). *)

val sites_from_profile :
  ?per_sysno:int -> (int * int) list -> errnos:Abi.Errno.t list
  -> Agents.Faultinject.site list
(** Cross the profile with the errno list: for each discovered call,
    its first, middle and last occurrence (at most [per_sysno] ordinals,
    default 3) × each errno. *)

type case = {
  c_workload : string;
  c_site : Agents.Faultinject.site;
  c_run : run;
}

val sweep :
  ?candidates:int list -> ?per_sysno:int -> ?errnos:Abi.Errno.t list
  -> workload -> baseline * case list
(** The whole campaign for one workload: baseline, site discovery,
    one classified run per site × errno. *)

val shrink :
  workload -> clean:Oracle.report -> outcome:Oracle.outcome
  -> Agents.Faultinject.site list -> Agents.Faultinject.site list
(** Greedy delta reduction of a failing plan: drop sites while the
    failure class [outcome] still reproduces, to a 1-minimal set. *)
