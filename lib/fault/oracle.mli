(** Divergence oracles: everything a finished (possibly faulted)
    session is checked against, and the total classification of the
    result.

    A {!report} snapshots the kernel after [boot] returned: pid 1's
    wait status, the deadlock-kill count, the VFS invariant scan
    ([Vfs.Fs.fsck]), outstanding open-file references, unreaped
    processes, the workload's output artifact and the console.
    {!classify} compares it with the fault-free run's report and
    assigns exactly one outcome class. *)

type report = {
  status : int;              (** pid 1 wait status *)
  deadlocks : int;           (** stragglers killed by the scheduler *)
  fsck_errors : string list; (** structural VFS invariant violations *)
  open_refs : int;           (** open-file references still held *)
  unreaped : int;            (** zombies nobody waited for (pid 1's own
                                 zombie excluded) + anything still
                                 live *)
  output : string;           (** the workload's output artifact ("" if
                                 absent) *)
  console : string;
  virtual_s : float;
  syscalls : int;
}

type outcome =
  | Tolerated     (** fault absorbed, or detected and cleanly reported *)
  | Wrong_result  (** claims success but diverges: output differs, VFS
                      invariants broken, leaked refs, unreaped
                      children *)
  | Hang          (** the scheduler had to kill deadlocked processes *)
  | Crash         (** killed by a signal / abnormal status *)

val outcome_name : outcome -> string
(** ["tolerated"] / ["wrong-result"] / ["hang"] / ["crash"]. *)

val outcome_of_name : string -> outcome option

val observe : Kernel.t -> status:int -> output_path:string -> report
(** Snapshot the oracles after a session on [k] ended with [status]. *)

val classify : clean:report -> report -> outcome * string
(** Total: every report gets exactly one class, most severe first
    (hang, crash, wrong-result, tolerated), plus a human detail
    line. *)
