(** Repro bundles: a failing campaign case as one replayable text
    file — the (shrunk) injection plan, the [record_replay] journal
    that pins the run's inputs, the workload name, and the recorded
    outcome with digests of the run's observable products.

    [agentrun --repro FILE] parses a bundle, {!replay}s it and
    {!verify}s byte-identity: same outcome class, same wait status,
    same output-artifact and console digests. *)

type t = {
  b_workload : string;
  b_sites : Agents.Faultinject.site list;
  b_outcome : Oracle.outcome;
  b_detail : string;
  b_status : int;
  b_output_hash : string;
  b_console_hash : string;
  b_journal : string;
}

val digest : string -> string
(** 64-bit FNV-1a, hex — the byte-identity check used in bundles (an
    integrity fingerprint, not cryptography). *)

val of_run : workload:string -> Campaign.run -> t

val to_string : t -> string
val of_string : string -> (t, string) result

val replay : t -> (Campaign.run, string) result
(** Re-run the bundle: same workload, same plan, inputs fed from the
    journal.  [Error] only when the workload name is unknown. *)

val verify : t -> Campaign.run -> (unit, string) result
(** Did the replay reproduce the bundle byte-identically? *)
