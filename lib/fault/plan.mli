(** Serialized deterministic injection plans.

    A plan is a list of {!Agents.Faultinject.site}s.  The file form is
    one site per line:

    {v F <pid> <sysno> <kth> fail:<ERRNO>|delay:<US> v}

    ([pid] 0 = any process, [kth] 0 = every matching call).  The same
    grammar appears inside repro bundles; the command line uses the
    compact {!of_spec} form
    [ [pid@]sysname[#k]=fail:ERRNO|delay:US[;...] ], e.g.
    ["read#3=fail:EIO;2@write=delay:500"]. *)

val action_to_string : Agents.Faultinject.action -> string
val action_of_string : string -> Agents.Faultinject.action option

val site_to_string : Agents.Faultinject.site -> string
val site_of_string : string -> Agents.Faultinject.site option

val to_string : Agents.Faultinject.site list -> string
(** One ["F ..."] line per site, newline-terminated. *)

val of_string : string -> (Agents.Faultinject.site list, string) result
(** Inverse of {!to_string}; blank lines and [#] comments skipped. *)

val site_of_spec : string -> Agents.Faultinject.site option
val of_spec : string -> (Agents.Faultinject.site list, string) result
(** Parse the command-line plan spec (sites separated by [;]). *)

val describe_site : Agents.Faultinject.site -> string
(** Human one-liner, e.g. ["fail:EIO read call #3"]. *)
