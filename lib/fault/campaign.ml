open Abi
open Agents.Faultinject

(* --- workloads -------------------------------------------------------------- *)

type workload = {
  w_name : string;
  w_seed : int;
  w_setup : Kernel.t -> unit;
  w_body : unit -> int;
  w_output : string;
}

let scribe =
  let params = Workloads.Scribe.quick_params in
  {
    w_name = "scribe";
    w_seed = 1;
    w_setup = (fun k -> Workloads.Scribe.setup ~params ~seed:1 k);
    w_body = (fun () -> Workloads.Scribe.body ~params ());
    w_output = Workloads.Scribe.output_path;
  }

let make =
  let params = Workloads.Make_cc.quick_params in
  {
    w_name = "make";
    w_seed = 1;
    w_setup = (fun k -> Workloads.Make_cc.setup ~params ~seed:1 k);
    w_body = (fun () -> Workloads.Make_cc.body ());
    (* make's product of record is its build transcript on the console;
       there is no single output file to pin *)
    w_output = "";
  }

let afs =
  let params = Workloads.Afs_bench.quick_params in
  {
    w_name = "afs";
    w_seed = 1;
    w_setup = (fun k -> Workloads.Afs_bench.setup ~params ~seed:1 k);
    w_body = (fun () -> Workloads.Afs_bench.body ~params ());
    w_output = "";
  }

let kvd =
  (* batch = 1 serializes the client waves, making fork order — hence
     pid assignment — deterministic; the conformance checker's
     per-process comparison depends on that *)
  let params = { Workloads.Kvd.quick_params with Workloads.Kvd.batch = 1 } in
  {
    w_name = "kvd";
    w_seed = 1;
    w_setup = (fun k -> Workloads.Kvd.setup k);
    w_body =
      (fun () ->
        Workloads.Kvd.body ~params ~mode:Workloads.Kvd.Fork_per_conn ());
    w_output = Workloads.Kvd.summary_path;
  }

let workloads = [ scribe; make; afs; kvd ]

let of_name name =
  List.find_opt (fun w -> w.w_name = name) workloads

(* --- one run under a plan ---------------------------------------------------- *)

type mode = Bare | Record | Replay of string

type run = {
  r_sites : site list;
  r_outcome : Oracle.outcome;
  r_detail : string;
  r_report : Oracle.report;
  r_journal : string;
  r_injected : int;
  r_restarted : int;
  r_delayed : int;
  r_desyncs : int;
}

let execute w ~mode ~sites =
  let k = Kernel.create () in
  (* image registration is per-kernel and idempotent; make sure the
     workloads' spawned tools resolve in this run's registry *)
  Workloads.Scribe.register k;
  Workloads.Make_cc.register k;
  Workloads.Kvd.register k;
  Kernel.populate_standard k;
  w.w_setup k;
  let recorder =
    match mode with
    | Record -> Some (Agents.Record_replay.create_recorder ())
    | Bare | Replay _ -> None
  in
  let replayer =
    match mode with
    | Replay journal -> Some (Agents.Record_replay.create_replayer ~journal)
    | Bare | Record -> None
  in
  let agent = create_planned sites in
  let status =
    Kernel.boot k ~name:(w.w_name ^ "-campaign") (fun () ->
      (* recorder/replayer sit below the injector: the journal holds
         what the kernel answered, and injected faults replay from the
         injector's own deterministic bookkeeping, not from the
         journal *)
      (match replayer with
       | Some r -> Toolkit.Loader.install r ~argv:[||]
       | None -> ());
      (match recorder with
       | Some r -> Toolkit.Loader.install r ~argv:[||]
       | None -> ());
      Toolkit.Loader.install agent ~argv:[||];
      w.w_body ())
  in
  let report = Oracle.observe k ~status ~output_path:w.w_output in
  ( report,
    (match recorder with Some r -> r#journal | None -> ""),
    agent,
    match replayer with Some r -> r#desyncs | None -> 0 )

let run_plan ?(mode = Record) ~clean w sites =
  let report, journal, agent, desyncs = execute w ~mode ~sites in
  let outcome, detail = Oracle.classify ~clean report in
  {
    r_sites = sites;
    r_outcome = outcome;
    r_detail = detail;
    r_report = report;
    r_journal = journal;
    r_injected = agent#total_injected;
    r_restarted = agent#restarted;
    r_delayed = agent#delayed;
    r_desyncs = desyncs;
  }

let clean_run ?(mode = Bare) w =
  let report, journal, agent, desyncs = execute w ~mode ~sites:[] in
  let outcome, detail = Oracle.classify ~clean:report report in
  {
    r_sites = [];
    r_outcome = outcome;
    r_detail = detail;
    r_report = report;
    r_journal = journal;
    r_injected = agent#total_injected;
    r_restarted = agent#restarted;
    r_delayed = agent#delayed;
    r_desyncs = desyncs;
  }

(* --- site discovery from an obs-profiled fault-free run ------------------------ *)

let default_candidates =
  [ Sysno.sys_read; Sysno.sys_write; Sysno.sys_open; Sysno.sys_stat ]

let default_errnos = [ Errno.EIO; Errno.ENOENT; Errno.EINTR ]

(* connection-level sites: faults on the server/client rendezvous path
   of a socket workload, paired with the errnos a network stack
   actually produces there *)
let conn_candidates = [ Sysno.sys_accept; Sysno.sys_recv; Sysno.sys_send ]
let conn_errnos = [ Errno.ECONNRESET; Errno.EINTR; Errno.EIO ]

type baseline = {
  b_run : run;
  b_profile : (int * int) list;
}

let baseline ?(candidates = default_candidates) w =
  let was_enabled = Obs.enabled () in
  Obs.reset ();
  Obs.enable ();
  let report, journal, agent, desyncs = execute w ~mode:Record ~sites:[] in
  let m = Obs.metrics () in
  Obs.disable ();
  Obs.reset ();
  if was_enabled then Obs.enable ();
  let profile =
    List.filter_map
      (fun (s : Obs.syscall_metrics) ->
        if List.mem s.Obs.sm_sysno candidates && s.Obs.sm_calls > 0 then
          Some (s.Obs.sm_sysno, s.Obs.sm_calls)
        else None)
      m.Obs.m_syscalls
  in
  let outcome, detail = Oracle.classify ~clean:report report in
  {
    b_run =
      {
        r_sites = [];
        r_outcome = outcome;
        r_detail = detail;
        r_report = report;
        r_journal = journal;
        r_injected = agent#total_injected;
        r_restarted = agent#restarted;
        r_delayed = agent#delayed;
        r_desyncs = desyncs;
      };
    b_profile = profile;
  }

(* first, middle and last occurrence of each discovered call — the
   cheap ends-and-middle probe of the call stream *)
let ks_of_count ?(per_sysno = 3) count =
  [ 1; (count + 1) / 2; count ]
  |> List.filter (fun k -> k >= 1)
  |> List.sort_uniq compare
  |> fun ks ->
  let rec take n = function
    | [] -> []
    | _ when n = 0 -> []
    | x :: rest -> x :: take (n - 1) rest
  in
  take per_sysno ks

let sites_from_profile ?per_sysno profile ~errnos =
  List.concat_map
    (fun (sysno, count) ->
      List.concat_map
        (fun k ->
          List.map (fun e -> site ~kth:k sysno (Fail e)) errnos)
        (ks_of_count ?per_sysno count))
    profile

(* --- the sweep ------------------------------------------------------------------ *)

type case = {
  c_workload : string;
  c_site : site;
  c_run : run;
}

let sweep ?candidates ?per_sysno ?(errnos = default_errnos) w =
  let b = baseline ?candidates w in
  let sites = sites_from_profile ?per_sysno b.b_profile ~errnos in
  let cases =
    List.map
      (fun s ->
        { c_workload = w.w_name;
          c_site = s;
          c_run = run_plan ~clean:b.b_run.r_report w [ s ] })
      sites
  in
  b, cases

(* --- shrinking a failing plan ----------------------------------------------------- *)

(* Greedy delta reduction: repeatedly drop any site whose removal
   preserves the failure class, to a fixpoint.  The result is
   1-minimal — removing any single remaining site loses the failure —
   which is what a repro bundle should carry. *)
let shrink w ~clean ~outcome sites =
  let reproduces sites =
    sites <> [] && (run_plan ~mode:Bare ~clean w sites).r_outcome = outcome
  in
  let rec drop_one prefix = function
    | [] -> None
    | s :: rest ->
      let candidate = List.rev_append prefix rest in
      if reproduces candidate then Some candidate
      else drop_one (s :: prefix) rest
  in
  let rec fix sites =
    if List.length sites <= 1 then sites
    else
      match drop_one [] sites with
      | Some reduced -> fix reduced
      | None -> sites
  in
  fix sites
