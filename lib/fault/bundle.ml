(* Repro bundles: everything needed to replay a failing campaign case
   deterministically, in one line-oriented text file.

     # interpose fault repro bundle v1
     W <workload>            what to run
     O <outcome>             the classification being reproduced
     D <detail>              human detail line (rest of line verbatim)
     E <status>              pid 1 wait status of the failing run
     H output <hex>          FNV-1a digest of the output artifact
     H console <hex>         FNV-1a digest of the console
     F <pid> <num> <kth> <action>   the (shrunk) injection plan
     J ...                   record_replay journal lines, verbatim

   Replaying = same workload + same plan + inputs pinned by the
   journal; byte-identical means outcome, status and both digests
   match the recorded ones. *)

let header = "# interpose fault repro bundle v1"

(* FNV-1a, 64-bit: tiny, dependency-free, and stable across runs —
   enough to certify byte-identity of replays (this is an integrity
   check, not cryptography). *)
let digest s =
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c ->
      h :=
        Int64.mul
          (Int64.logxor !h (Int64.of_int (Char.code c)))
          0x100000001b3L)
    s;
  Printf.sprintf "%016Lx" !h

type t = {
  b_workload : string;
  b_sites : Agents.Faultinject.site list;
  b_outcome : Oracle.outcome;
  b_detail : string;
  b_status : int;
  b_output_hash : string;
  b_console_hash : string;
  b_journal : string;
}

let of_run ~workload (r : Campaign.run) =
  {
    b_workload = workload;
    b_sites = r.Campaign.r_sites;
    b_outcome = r.Campaign.r_outcome;
    b_detail = r.Campaign.r_detail;
    b_status = r.Campaign.r_report.Oracle.status;
    b_output_hash = digest r.Campaign.r_report.Oracle.output;
    b_console_hash = digest r.Campaign.r_report.Oracle.console;
    b_journal = r.Campaign.r_journal;
  }

let to_string b =
  let buf = Buffer.create (String.length b.b_journal + 512) in
  Buffer.add_string buf (header ^ "\n");
  Buffer.add_string buf (Printf.sprintf "W %s\n" b.b_workload);
  Buffer.add_string buf
    (Printf.sprintf "O %s\n" (Oracle.outcome_name b.b_outcome));
  Buffer.add_string buf (Printf.sprintf "D %s\n" b.b_detail);
  Buffer.add_string buf (Printf.sprintf "E %d\n" b.b_status);
  Buffer.add_string buf (Printf.sprintf "H output %s\n" b.b_output_hash);
  Buffer.add_string buf (Printf.sprintf "H console %s\n" b.b_console_hash);
  Buffer.add_string buf (Plan.to_string b.b_sites);
  Buffer.add_string buf b.b_journal;
  Buffer.contents buf

let of_string text =
  let workload = ref None
  and outcome = ref None
  and detail = ref ""
  and status = ref None
  and out_hash = ref None
  and con_hash = ref None
  and sites = ref []
  and journal = Buffer.create 1024
  and bad = ref None in
  let after prefix line =
    String.sub line (String.length prefix)
      (String.length line - String.length prefix)
  in
  List.iter
    (fun line ->
      if !bad <> None then ()
      else if line = "" || line.[0] = '#' then ()
      else if String.length line > 2 && String.sub line 0 2 = "W " then
        workload := Some (after "W " line)
      else if String.length line > 2 && String.sub line 0 2 = "O " then (
        match Oracle.outcome_of_name (after "O " line) with
        | Some o -> outcome := Some o
        | None -> bad := Some ("bad outcome: " ^ line))
      else if String.length line >= 2 && String.sub line 0 2 = "D " then
        detail := after "D " line
      else if String.length line > 2 && String.sub line 0 2 = "E " then (
        match int_of_string_opt (after "E " line) with
        | Some s -> status := Some s
        | None -> bad := Some ("bad status: " ^ line))
      else if String.length line > 2 && String.sub line 0 2 = "H " then (
        match String.split_on_char ' ' (after "H " line) with
        | [ "output"; h ] -> out_hash := Some h
        | [ "console"; h ] -> con_hash := Some h
        | _ -> bad := Some ("bad digest line: " ^ line))
      else if String.length line > 2 && String.sub line 0 2 = "F " then (
        match Plan.site_of_string line with
        | Some s -> sites := s :: !sites
        | None -> bad := Some ("bad plan line: " ^ line))
      else if String.length line > 2 && String.sub line 0 2 = "J " then (
        Buffer.add_string journal line;
        Buffer.add_char journal '\n')
      else bad := Some ("unrecognized line: " ^ line))
    (String.split_on_char '\n' text);
  match !bad with
  | Some msg -> Error msg
  | None ->
    (match !workload, !outcome, !status, !out_hash, !con_hash with
     | Some b_workload, Some b_outcome, Some b_status, Some b_output_hash,
       Some b_console_hash ->
       Ok
         {
           b_workload;
           b_sites = List.rev !sites;
           b_outcome;
           b_detail = !detail;
           b_status;
           b_output_hash;
           b_console_hash;
           b_journal = Buffer.contents journal;
         }
     | _ -> Error "incomplete bundle (need W, O, E and both H lines)")

let replay b =
  match Campaign.of_name b.b_workload with
  | None -> Error (Printf.sprintf "unknown workload %S" b.b_workload)
  | Some w ->
    let clean = (Campaign.clean_run w).Campaign.r_report in
    Ok
      (Campaign.run_plan ~mode:(Campaign.Replay b.b_journal) ~clean w
         b.b_sites)

let verify b (r : Campaign.run) =
  let err fmt = Printf.ksprintf (fun s -> Error s) fmt in
  if r.Campaign.r_outcome <> b.b_outcome then
    err "outcome diverged: bundle %s, replay %s"
      (Oracle.outcome_name b.b_outcome)
      (Oracle.outcome_name r.Campaign.r_outcome)
  else if r.Campaign.r_report.Oracle.status <> b.b_status then
    err "status diverged: bundle 0x%x, replay 0x%x" b.b_status
      r.Campaign.r_report.Oracle.status
  else if digest r.Campaign.r_report.Oracle.output <> b.b_output_hash then
    err "output artifact diverged from the recorded run"
  else if digest r.Campaign.r_report.Oracle.console <> b.b_console_hash then
    err "console output diverged from the recorded run"
  else Ok ()
