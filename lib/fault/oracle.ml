open Abi

type report = {
  status : int;
  deadlocks : int;
  fsck_errors : string list;
  open_refs : int;
  unreaped : int;
  output : string;
  console : string;
  virtual_s : float;
  syscalls : int;
}

type outcome = Tolerated | Wrong_result | Hang | Crash

let outcome_name = function
  | Tolerated -> "tolerated"
  | Wrong_result -> "wrong-result"
  | Hang -> "hang"
  | Crash -> "crash"

let outcome_of_name = function
  | "tolerated" -> Some Tolerated
  | "wrong-result" -> Some Wrong_result
  | "hang" -> Some Hang
  | "crash" -> Some Crash
  | _ -> None

let observe k ~status ~output_path =
  let fs = Kernel.fs k in
  let fsck_errors =
    match Vfs.Fs.fsck fs with Ok () -> [] | Error problems -> problems
  in
  (* pid 1's own zombie is the session's return value, not a leak;
     everything else still in the table — zombies nobody waited for,
     or processes somehow alive after quiescence — is an unreaped
     child *)
  let unreaped =
    Hashtbl.fold
      (fun pid (p : Kernel.Proc.t) acc ->
        match p.Kernel.Proc.state with
        | Kernel.Proc.Reaped -> acc
        | Kernel.Proc.Zombie -> if pid = 1 then acc else acc + 1
        | Kernel.Proc.Runnable | Kernel.Proc.Parked _
        | Kernel.Proc.Stopped _ -> acc + 1)
      k.Kernel.Kstate.procs 0
  in
  {
    status;
    deadlocks = Kernel.deadlock_kills k;
    fsck_errors;
    open_refs = Vfs.Fs.open_refs fs;
    unreaped;
    output = Option.value ~default:"" (Kernel.read_file k output_path);
    console = Kernel.console_output k;
    virtual_s = Kernel.elapsed_seconds k;
    syscalls = Kernel.total_syscalls k;
  }

(* The classification is total: every report lands in exactly one of
   the four classes, checked most-severe first.  "Tolerated" covers
   both a fault absorbed outright (run indistinguishable from the
   fault-free one) and a fault the program detected and reported with
   a clean nonzero exit — in both cases the system behaved correctly
   under the fault.  "Wrong-result" is the silent failures: exit 0
   with diverging output, broken VFS invariants, leaked references or
   unreaped children. *)
let classify ~clean r =
  if r.deadlocks > 0 then
    Hang, Printf.sprintf "%d process(es) killed as deadlocked" r.deadlocks
  else if Flags.Wait.wifsignaled r.status then
    Crash,
    Printf.sprintf "killed by %s" (Signal.name (Flags.Wait.wtermsig r.status))
  else if not (Flags.Wait.wifexited r.status) then
    Crash, Printf.sprintf "abnormal wait status 0x%x" r.status
  else if r.fsck_errors <> [] then
    Wrong_result,
    Printf.sprintf "vfs invariants violated: %s"
      (String.concat "; " r.fsck_errors)
  else if r.open_refs > clean.open_refs then
    Wrong_result,
    Printf.sprintf "%d leaked open-file reference(s)"
      (r.open_refs - clean.open_refs)
  else if r.unreaped > clean.unreaped then
    Wrong_result,
    Printf.sprintf "%d unreaped child process(es)"
      (r.unreaped - clean.unreaped)
  else begin
    let code = Flags.Wait.wexitstatus r.status in
    if code <> 0 then
      Tolerated, Printf.sprintf "failure detected and reported (exit %d)" code
    else if r.output <> clean.output then
      Wrong_result, "exit 0 but output diverges from the fault-free run"
    else if r.console <> clean.console then
      Wrong_result, "exit 0 but console output diverges from the fault-free run"
    else Tolerated, "fault absorbed"
  end
