open Abi

type policy = {
  readable : string list;
  writable : string list;
  executable : string list;
  max_children : int;
  max_write_bytes : int;
  allow_kill_outside : bool;
  emulate_denied : bool;
}

let open_policy = {
  readable = [];
  writable = [ "/" ];
  executable = [ "/" ];
  max_children = max_int;
  max_write_bytes = -1;
  allow_kill_outside = true;
  emulate_denied = false;
}

let default_policy = {
  readable = [];
  writable = [ "/tmp" ];
  executable = [];
  max_children = 0;
  max_write_bytes = 1024 * 1024;
  allow_kill_outside = false;
  emulate_denied = false;
}

let has_prefix prefix path =
  prefix = "/"
  || path = prefix
  || (String.length path > String.length prefix
      && String.sub path 0 (String.length prefix) = prefix
      && path.[String.length prefix] = '/')

let allowed prefixes path =
  match prefixes with
  | [] -> false
  | _ -> List.exists (fun p -> has_prefix p path) prefixes

(* Enforces the write budget on every tracked descriptor. *)
class budget_object (dl : Toolkit.Downlink.t) (note : int -> bool) =
  object
    inherit Toolkit.open_object dl as super

    method! write ~fd data =
      if note (String.length data) then super#write ~fd data
      else Error Errno.ENOSPC
  end

class agent (policy : policy) =
  object (self)
    inherit Toolkit.pathname_set as super

    val mutable violations : string list = []  (* newest first *)
    val mutable written = 0
    val mutable children = 0
    val descendants : (int, unit) Hashtbl.t = Hashtbl.create 8

    method! agent_name = "sandbox"
    method policy = policy

    (* exactly the calls the policy guards may flip outcome: hidden
       paths read as ENOENT, denials as EPERM (or emulated success),
       byte/process budgets as ENOSPC/EAGAIN.  A policy wide enough
       for the workload leaves the mask unused — full transparency. *)
    method! declared_delta =
      [ Delta.May_fail
          { sysnos =
              Sysno.sys_kill :: Sysno.sys_settimeofday :: Sysno.file_calls;
            errnos = [ Errno.ENOENT; Errno.EPERM; Errno.ENOSPC; Errno.EAGAIN ] } ]
    method violations = List.rev violations
    method bytes_written = written
    method children_spawned = children

    (* Policy only touches file calls plus the two it explicitly
       guards (kill, settimeofday); everything else can take the
       uninterested fast path. *)
    method! init _argv =
      List.iter self#register_interest
        (Sysno.sys_kill :: Sysno.sys_settimeofday :: Sysno.file_calls)

    method private violate what =
      violations <- what :: violations

    method private readable_path path =
      policy.readable = [] || allowed policy.readable path

    method private writable_path path = allowed policy.writable path

    (* hide everything outside the readable set *)
    method! getpn path =
      if self#readable_path path then super#getpn path
      else begin
        self#violate (Printf.sprintf "read %s" path);
        Error Errno.ENOENT
      end

    (* a denied destructive call: emulate or refuse *)
    method private deny what : Value.res =
      self#violate what;
      if policy.emulate_denied then Value.ret 0 else Error Errno.EPERM

    method private guard_write path what (run : unit -> Value.res) =
      if not (self#readable_path path) then begin
        self#violate (Printf.sprintf "read %s" path);
        Error Errno.ENOENT
      end
      else if self#writable_path path then run ()
      else self#deny what

    method! sys_open path flags mode =
      if Flags.Open.writable flags || flags land Flags.Open.o_creat <> 0
      then
        if not (self#readable_path path) then begin
          self#violate (Printf.sprintf "read %s" path);
          Error Errno.ENOENT
        end
        else if self#writable_path path then super#sys_open path flags mode
        else begin
          self#violate (Printf.sprintf "open-for-write %s" path);
          if policy.emulate_denied then
            (* pretend: hand out a descriptor whose writes vanish *)
            super#sys_open "/dev/null" Flags.Open.o_wronly 0
          else Error Errno.EPERM
        end
      else super#sys_open path flags mode

    method! sys_creat path mode =
      self#sys_open path Flags.Open.(o_wronly lor o_creat lor o_trunc) mode

    method! sys_unlink path =
      self#guard_write path
        (Printf.sprintf "unlink %s" path)
        (fun () -> super#sys_unlink path)

    method! sys_rmdir path =
      self#guard_write path
        (Printf.sprintf "rmdir %s" path)
        (fun () -> super#sys_rmdir path)

    method! sys_mkdir path mode =
      self#guard_write path
        (Printf.sprintf "mkdir %s" path)
        (fun () -> super#sys_mkdir path mode)

    method! sys_mknod path mode dev =
      self#guard_write path
        (Printf.sprintf "mknod %s" path)
        (fun () -> super#sys_mknod path mode dev)

    method! sys_chmod path mode =
      self#guard_write path
        (Printf.sprintf "chmod %s" path)
        (fun () -> super#sys_chmod path mode)

    method! sys_chown path uid gid =
      self#guard_write path
        (Printf.sprintf "chown %s" path)
        (fun () -> super#sys_chown path uid gid)

    method! sys_truncate path len =
      self#guard_write path
        (Printf.sprintf "truncate %s" path)
        (fun () -> super#sys_truncate path len)

    method! sys_utimes path atime mtime =
      self#guard_write path
        (Printf.sprintf "utimes %s" path)
        (fun () -> super#sys_utimes path atime mtime)

    method! sys_link existing path =
      self#guard_write path
        (Printf.sprintf "link %s" path)
        (fun () -> super#sys_link existing path)

    method! sys_symlink target path =
      self#guard_write path
        (Printf.sprintf "symlink %s" path)
        (fun () -> super#sys_symlink target path)

    method! sys_rename src dst =
      if self#writable_path src && self#writable_path dst then
        super#sys_rename src dst
      else self#deny (Printf.sprintf "rename %s -> %s" src dst)

    method! sys_fork body =
      if children >= policy.max_children then begin
        self#violate "fork";
        Error Errno.EAGAIN
      end
      else begin
        children <- children + 1;
        match super#sys_fork body with
        | Ok r as res ->
          Hashtbl.replace descendants r.Value.r0 ();
          res
        | Error _ as res -> res
      end

    method! sys_execve path argv envp =
      if allowed policy.executable path then super#sys_execve path argv envp
      else begin
        self#violate (Printf.sprintf "execve %s" path);
        Error Errno.EPERM
      end

    method! sys_kill pid s =
      let self_pid =
        match self#down Call.Getpid with
        | Ok { Value.r0; _ } -> r0
        | Error _ -> -1
      in
      if
        policy.allow_kill_outside || pid = self_pid
        || Hashtbl.mem descendants pid
      then super#sys_kill pid s
      else self#deny (Printf.sprintf "kill %d %s" pid (Signal.name s))

    method! sys_settimeofday sec usec =
      if policy.allow_kill_outside then super#sys_settimeofday sec usec
      else self#deny "settimeofday"

    (* route every tracked descriptor through the byte budget *)
    method! make_open_object ~fd ~path ~flags =
      ignore fd;
      ignore path;
      ignore flags;
      let note n =
        if
          policy.max_write_bytes >= 0
          && written + n > policy.max_write_bytes
        then begin
          self#violate "write budget exhausted";
          false
        end
        else begin
          written <- written + n;
          true
        end
      in
      (new budget_object self#downlink note :> Toolkit.Objects.open_object)
  end

let create policy = new agent policy
