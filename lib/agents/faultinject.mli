(** Fault injection by interposition — the testing-tool species of the
    paper's "monitoring and emulating schemes" (§1.4): make a program's
    environment hostile without touching the program or the kernel.

    Two modes share the machinery:

    - the original {!agent} flips a deterministic PRNG coin per
      candidate call and fails it with a configured errno;
    - the {!planned} agent executes a deterministic {e plan} of
      injection {!site}s — fail the k-th matching call in pid P with
      errno E, or add virtual latency — which is what the [lib/fault]
      campaign driver sweeps, shrinks and replays.

    Both honour the kernel's restart policy for injected [EINTR]
    ([Kernel.Syscalls.restartable]): on a call the scheduler would
    transparently re-issue, the injection becomes an invisible restart
    and the call passes down; only sleepus-class calls surface a blind
    EINTR.  Both charge the interception cost on the injected-error
    path, so a faulted call is never cheaper than a successful one.
    When [Obs] is enabled, every injection bumps the exact [injected]
    metrics counter and drops a [~kind:"inject"] mark on the trap's
    span.

    Declared delta: the configuration restated as a mask — [May_fail]
    over the candidate calls with the configured errno(s), [May_delay]
    for [Delay] sites.  Restart-absorbed EINTR needs no mask: the
    application-visible span still succeeds. *)

(** What to do to a matched call. *)
type action =
  | Fail of Abi.Errno.t  (** fail with this errno ([EINTR] routes
                             through the restart policy) *)
  | Delay of int         (** charge this much added virtual latency
                             (µs, floored at the interception cost)
                             and pass the call through *)

(** One injection site of a plan. *)
type site = {
  s_pid : int;     (** only this pid; 0 = any process *)
  s_num : int;     (** syscall number to match *)
  s_kth : int;     (** fire on the k-th matching call (1-based);
                       0 = every matching call *)
  s_action : action;
}

val site : ?pid:int -> ?kth:int -> int -> action -> site
(** [site ~pid ~kth num action]; [pid] and [kth] default to 0. *)

type config = {
  seed : int;
  failure_rate : float;     (** probability per candidate call, 0..1 *)
  errno : Abi.Errno.t;      (** what the victim sees *)
  candidates : int list;    (** syscall numbers eligible for injection;
                                duplicates are absorbed *)
}

val default_config : config
(** seed 1, rate 0.1, [EIO], on read/write/open. *)

class agent : config -> object
  inherit Toolkit.numeric_syscall

  method injected : (int * int) list
  (** (syscall number, count) of faults surfaced so far. *)

  method total_injected : int

  method restarted : int
  (** Injected [EINTR]s the restart policy absorbed (the call was
      re-issued instead of failed). *)
end

val create : config -> agent

class planned : plan:site list -> object
  inherit Toolkit.numeric_syscall

  method plan : site list

  method injected : (int * int) list
  (** (syscall number, count) of faults surfaced so far. *)

  method total_injected : int

  method restarted : int
  (** Injected [EINTR]s the restart policy absorbed. *)

  method delayed : int
  (** [Delay] sites that fired. *)

  method matches : (int * int) list
  (** Per-site (index in plan order, matching calls seen) —
      the ordinal bookkeeping behind [s_kth]. *)
end

val create_planned : site list -> planned
