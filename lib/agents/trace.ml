open Abi

let res_str (ret : Value.res) = Format.asprintf "%a" Value.pp_res ret

let buf_str b =
  Printf.sprintf "0x%x[%d]" (Hashtbl.hash b land 0xffffff) (Bytes.length b)

let strs_str a = String.concat ", " (Array.to_list (Array.map (Printf.sprintf "%S") a))

let handler_str = function
  | None -> "NULL"
  | Some Value.H_default -> "SIG_DFL"
  | Some Value.H_ignore -> "SIG_IGN"
  | Some (Value.H_fn _) -> "<handler>"

class agent =
  object (self)
    inherit Toolkit.symbolic_syscall as super

    val mutable out_fd = 2
    val mutable traced = 0

    method! agent_name = "trace"
    method set_output fd = out_fd <- fd
    method calls_traced = traced

    method! init argv =
      (* genuinely wants every call: full interest is the point here *)
      self#register_interest_all;
      Array.iter
        (fun arg ->
          match String.index_opt arg '=' with
          | Some i when String.sub arg 0 i = "fd" ->
            (match
               int_of_string_opt
                 (String.sub arg (i + 1) (String.length arg - i - 1))
             with
             | Some fd -> out_fd <- fd
             | None -> ())
          | _ -> ())
        argv

    method private emit line =
      ignore (Toolkit.Downlink.down_call self#downlink (Call.Write (out_fd, line)))

    (* Both line shapes go through the span sink: one [Obs.Span.call]
       record per event, rendered by [Obs.Span.call_line] for the text
       descriptor and pushed verbatim into the flight recorder (where
       [--trace-out] drains it as JSONL) when tracing is enabled. *)
    method private event name args result =
      let span = Obs.current () in
      let c =
        { Obs.Span.c_span = span;
          c_pid = Obs.current_pid ();
          c_t_us = Obs.now_us ();
          c_name = name;
          c_args = args;
          c_result = result;
          (* post events flag traps some layer below us mutated *)
          c_rewrote = result <> None && Obs.span_rewrites span > 0 }
      in
      Obs.record_call c;
      self#emit (Obs.Span.call_line c ^ "\n")

    method private pre name args =
      traced <- traced + 1;
      self#event name args None

    method private post name ret =
      self#event name "" (Some (res_str ret));
      ret

    method! init_child = self#emit "--- fork: child running under trace ---\n"

    method! signal_handler s =
      self#emit (Printf.sprintf "--- signal %s delivered ---\n" (Signal.name s));
      super#signal_handler s

    (* --- per-call derived methods (the paper's 12-statements-per-call
       body, one for each 4.3BSD call) ------------------------------- *)

    method! sys_exit code =
      self#pre "exit" (string_of_int code);
      (* does not return; no post line, matching _exit semantics *)
      super#sys_exit code

    method! sys_fork body =
      self#pre "fork" "";
      self#post "fork" (super#sys_fork body)

    method! sys_read fd buf cnt =
      self#pre "read" (Printf.sprintf "%d, %s, %d" fd (buf_str buf) cnt);
      self#post "read" (super#sys_read fd buf cnt)

    method! sys_write fd data =
      self#pre "write"
        (Printf.sprintf "%d, <%d bytes>" fd (String.length data));
      self#post "write" (super#sys_write fd data)

    method! sys_open path flags mode =
      self#pre "open"
        (Format.asprintf "%S, %a, 0%o" path Flags.Open.pp flags mode);
      self#post "open" (super#sys_open path flags mode)

    method! sys_close fd =
      self#pre "close" (string_of_int fd);
      self#post "close" (super#sys_close fd)

    method! sys_wait4 pid options =
      self#pre "wait4" (Printf.sprintf "%d, %d" pid options);
      self#post "wait4" (super#sys_wait4 pid options)

    method! sys_creat path mode =
      self#pre "creat" (Printf.sprintf "%S, 0%o" path mode);
      self#post "creat" (super#sys_creat path mode)

    method! sys_link existing path =
      self#pre "link" (Printf.sprintf "%S, %S" existing path);
      self#post "link" (super#sys_link existing path)

    method! sys_unlink path =
      self#pre "unlink" (Printf.sprintf "%S" path);
      self#post "unlink" (super#sys_unlink path)

    method! sys_execve path argv envp =
      self#pre "execve"
        (Printf.sprintf "%S, [%s], [%d vars]" path (strs_str argv)
           (Array.length envp));
      (* on success control transfers to the new image; only failures
         produce a return line *)
      self#post "execve" (super#sys_execve path argv envp)

    method! sys_chdir path =
      self#pre "chdir" (Printf.sprintf "%S" path);
      self#post "chdir" (super#sys_chdir path)

    method! sys_fchdir fd =
      self#pre "fchdir" (string_of_int fd);
      self#post "fchdir" (super#sys_fchdir fd)

    method! sys_mknod path mode dev =
      self#pre "mknod" (Printf.sprintf "%S, 0%o, %d" path mode dev);
      self#post "mknod" (super#sys_mknod path mode dev)

    method! sys_chmod path mode =
      self#pre "chmod" (Printf.sprintf "%S, 0%o" path mode);
      self#post "chmod" (super#sys_chmod path mode)

    method! sys_chown path uid gid =
      self#pre "chown" (Printf.sprintf "%S, %d, %d" path uid gid);
      self#post "chown" (super#sys_chown path uid gid)

    method! sys_sbrk d =
      self#pre "sbrk" (string_of_int d);
      self#post "sbrk" (super#sys_sbrk d)

    method! sys_lseek fd off whence =
      self#pre "lseek" (Printf.sprintf "%d, %d, %d" fd off whence);
      self#post "lseek" (super#sys_lseek fd off whence)

    method! sys_getpid () =
      self#pre "getpid" "";
      self#post "getpid" (super#sys_getpid ())

    method! sys_setuid u =
      self#pre "setuid" (string_of_int u);
      self#post "setuid" (super#sys_setuid u)

    method! sys_getuid () =
      self#pre "getuid" "";
      self#post "getuid" (super#sys_getuid ())

    method! sys_geteuid () =
      self#pre "geteuid" "";
      self#post "geteuid" (super#sys_geteuid ())

    method! sys_alarm sec =
      self#pre "alarm" (string_of_int sec);
      self#post "alarm" (super#sys_alarm sec)

    method! sys_access path bits =
      self#pre "access" (Printf.sprintf "%S, %d" path bits);
      self#post "access" (super#sys_access path bits)

    method! sys_sync () =
      self#pre "sync" "";
      self#post "sync" (super#sys_sync ())

    method! sys_kill pid s =
      self#pre "kill" (Printf.sprintf "%d, %s" pid (Signal.name s));
      self#post "kill" (super#sys_kill pid s)

    method! sys_stat path r =
      self#pre "stat" (Printf.sprintf "%S, <statbuf>" path);
      self#post "stat" (super#sys_stat path r)

    method! sys_getppid () =
      self#pre "getppid" "";
      self#post "getppid" (super#sys_getppid ())

    method! sys_lstat path r =
      self#pre "lstat" (Printf.sprintf "%S, <statbuf>" path);
      self#post "lstat" (super#sys_lstat path r)

    method! sys_dup fd =
      self#pre "dup" (string_of_int fd);
      self#post "dup" (super#sys_dup fd)

    method! sys_pipe () =
      self#pre "pipe" "";
      self#post "pipe" (super#sys_pipe ())

    method! sys_socketpair () =
      self#pre "socketpair" "";
      self#post "socketpair" (super#sys_socketpair ())

    method! sys_getegid () =
      self#pre "getegid" "";
      self#post "getegid" (super#sys_getegid ())

    method! sys_sigaction s h o =
      self#pre "sigaction"
        (Printf.sprintf "%s, %s" (Signal.name s) (handler_str h));
      self#post "sigaction" (super#sys_sigaction s h o)

    method! sys_getgid () =
      self#pre "getgid" "";
      self#post "getgid" (super#sys_getgid ())

    method! sys_sigprocmask how m =
      self#pre "sigprocmask" (Printf.sprintf "%d, 0x%x" how m);
      self#post "sigprocmask" (super#sys_sigprocmask how m)

    method! sys_sigpending () =
      self#pre "sigpending" "";
      self#post "sigpending" (super#sys_sigpending ())

    method! sys_sigsuspend m =
      self#pre "sigsuspend" (Printf.sprintf "0x%x" m);
      self#post "sigsuspend" (super#sys_sigsuspend m)

    method! sys_ioctl fd op buf =
      self#pre "ioctl" (Printf.sprintf "%d, 0x%x, %s" fd op (buf_str buf));
      self#post "ioctl" (super#sys_ioctl fd op buf)

    method! sys_symlink target path =
      self#pre "symlink" (Printf.sprintf "%S, %S" target path);
      self#post "symlink" (super#sys_symlink target path)

    method! sys_readlink path buf =
      self#pre "readlink" (Printf.sprintf "%S, %s" path (buf_str buf));
      self#post "readlink" (super#sys_readlink path buf)

    method! sys_umask m =
      self#pre "umask" (Printf.sprintf "0%o" m);
      self#post "umask" (super#sys_umask m)

    method! sys_fstat fd r =
      self#pre "fstat" (Printf.sprintf "%d, <statbuf>" fd);
      self#post "fstat" (super#sys_fstat fd r)

    method! sys_getpagesize () =
      self#pre "getpagesize" "";
      self#post "getpagesize" (super#sys_getpagesize ())

    method! sys_getpgrp () =
      self#pre "getpgrp" "";
      self#post "getpgrp" (super#sys_getpgrp ())

    method! sys_setpgrp pid pgrp =
      self#pre "setpgrp" (Printf.sprintf "%d, %d" pid pgrp);
      self#post "setpgrp" (super#sys_setpgrp pid pgrp)

    method! sys_getdtablesize () =
      self#pre "getdtablesize" "";
      self#post "getdtablesize" (super#sys_getdtablesize ())

    method! sys_dup2 o n =
      self#pre "dup2" (Printf.sprintf "%d, %d" o n);
      self#post "dup2" (super#sys_dup2 o n)

    method! sys_fcntl fd cmd arg =
      self#pre "fcntl" (Printf.sprintf "%d, %d, %d" fd cmd arg);
      self#post "fcntl" (super#sys_fcntl fd cmd arg)

    method! sys_fsync fd =
      self#pre "fsync" (string_of_int fd);
      self#post "fsync" (super#sys_fsync fd)

    method! sys_select rmask wmask tmo =
      self#pre "select" (Printf.sprintf "0x%x, 0x%x, %d" rmask wmask tmo);
      self#post "select" (super#sys_select rmask wmask tmo)

    method! sys_gettimeofday r =
      self#pre "gettimeofday" "<timeval>";
      self#post "gettimeofday" (super#sys_gettimeofday r)

    method! sys_getrusage r =
      self#pre "getrusage" "<rusage>";
      self#post "getrusage" (super#sys_getrusage r)

    method! sys_settimeofday sec usec =
      self#pre "settimeofday" (Printf.sprintf "%d, %d" sec usec);
      self#post "settimeofday" (super#sys_settimeofday sec usec)

    method! sys_rename src dst =
      self#pre "rename" (Printf.sprintf "%S, %S" src dst);
      self#post "rename" (super#sys_rename src dst)

    method! sys_truncate path len =
      self#pre "truncate" (Printf.sprintf "%S, %d" path len);
      self#post "truncate" (super#sys_truncate path len)

    method! sys_ftruncate fd len =
      self#pre "ftruncate" (Printf.sprintf "%d, %d" fd len);
      self#post "ftruncate" (super#sys_ftruncate fd len)

    method! sys_mkdir path mode =
      self#pre "mkdir" (Printf.sprintf "%S, 0%o" path mode);
      self#post "mkdir" (super#sys_mkdir path mode)

    method! sys_rmdir path =
      self#pre "rmdir" (Printf.sprintf "%S" path);
      self#post "rmdir" (super#sys_rmdir path)

    method! sys_utimes path atime mtime =
      self#pre "utimes" (Printf.sprintf "%S, %d, %d" path atime mtime);
      self#post "utimes" (super#sys_utimes path atime mtime)

    method! sys_getdirentries fd buf =
      self#pre "getdirentries" (Printf.sprintf "%d, %s" fd (buf_str buf));
      self#post "getdirentries" (super#sys_getdirentries fd buf)

    method! sys_sleepus us =
      self#pre "sleepus" (string_of_int us);
      self#post "sleepus" (super#sys_sleepus us)

    method! sys_getcwd buf =
      self#pre "getcwd" (buf_str buf);
      self#post "getcwd" (super#sys_getcwd buf)

    method! unknown_syscall env =
      self#pre "syscall" (Format.asprintf "%a" Envelope.pp env);
      self#post "syscall" (super#unknown_syscall env)
  end

let create ?(fd = 2) () =
  let a = new agent in
  a#set_output fd;
  a
