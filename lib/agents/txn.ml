open Abi

type decision = [ `Commit | `Abort ]

(* --- small down-path helpers -------------------------------------------- *)

let d_int dl c =
  match Toolkit.Downlink.down_call dl c with
  | Ok { Value.r0; _ } -> Ok r0
  | Error e -> Error e

let d_unit dl c =
  match Toolkit.Downlink.down_call dl c with
  | Ok _ -> Ok ()
  | Error e -> Error e

let exists dl path = Result.is_ok (d_unit dl (Call.Access (path, 0)))

let lstat_of dl path =
  let cell = ref None in
  match d_unit dl (Call.Lstat (path, cell)), !cell with
  | Ok (), Some st -> Some st
  | _ -> None

let mkdir_p dl path =
  let comps =
    List.filter (fun s -> s <> "") (String.split_on_char '/' path)
  in
  ignore
    (List.fold_left
       (fun prefix comp ->
         let dir = prefix ^ "/" ^ comp in
         ignore (d_unit dl (Call.Mkdir (dir, 0o755)));
         dir)
       "" comps)

let copy_file dl ~src ~dst =
  match d_int dl (Call.Open (src, Flags.Open.o_rdonly, 0)) with
  | Error e -> Error e
  | Ok sfd ->
    let wflags = Flags.Open.(o_wronly lor o_creat lor o_trunc) in
    (match d_int dl (Call.Open (dst, wflags, 0o644)) with
     | Error e ->
       ignore (d_unit dl (Call.Close sfd));
       Error e
     | Ok dfd ->
       let buf = Bytes.create 4096 in
       let rec pump () =
         match d_int dl (Call.Read (sfd, buf, Bytes.length buf)) with
         | Error e -> Error e
         | Ok 0 -> Ok ()
         | Ok n ->
           (match
              d_unit dl (Call.Write (dfd, Bytes.sub_string buf 0 n))
            with
            | Ok () -> pump ()
            | Error e -> Error e)
       in
       let result = pump () in
       ignore (d_unit dl (Call.Close sfd));
       ignore (d_unit dl (Call.Close dfd));
       (* carry the permission bits across *)
       (match lstat_of dl src with
        | Some st ->
          ignore
            (d_unit dl (Call.Chmod (dst, Flags.Mode.perm_bits st.st_mode)))
        | None -> ());
       result)

let read_dir dl path =
  match d_int dl (Call.Open (path, Flags.Open.o_rdonly, 0)) with
  | Error _ -> []
  | Ok fd ->
    let buf = Bytes.create 1024 in
    let rec go acc =
      match
        Toolkit.Downlink.down_call dl (Call.Getdirentries (fd, buf))
      with
      | Ok { Value.r0 = 0; _ } | Error _ -> List.rev acc
      | Ok { Value.r0 = n; _ } ->
        go (List.rev_append (Dirent.decode_all buf ~len:n) acc)
    in
    let entries = go [] in
    ignore (d_unit dl (Call.Close fd));
    List.filter
      (fun e -> e.Dirent.d_name <> "." && e.Dirent.d_name <> "..")
      entries

(* --- the overlay-aware pathname object ----------------------------------- *)

type overlay = {
  dl : Toolkit.Downlink.t;
  shadow : string -> string;
  resolve_read : string -> (string, Errno.t) result;
  prepare_write : string -> creating:bool -> (string, Errno.t) result;
  mark_deleted : string -> unit;
  clear_deleted : string -> unit;
  is_deleted : string -> bool;
}

class txn_pathname (ov : overlay) (path : string) =
  object (self)
    inherit Toolkit.pathname ov.dl path

    method private down c = Toolkit.Downlink.down_call ov.dl c

    method private on_read : 'a. (string -> Value.res) -> Value.res =
      fun f ->
        match ov.resolve_read path with
        | Ok p -> f p
        | Error e -> Error e

    method private on_write ~creating (f : string -> Value.res) =
      match ov.prepare_write path ~creating with
      | Ok sp -> f sp
      | Error e -> Error e

    method! open_ flags mode =
      if Flags.Open.writable flags || flags land Flags.Open.o_creat <> 0
      then
        self#on_write ~creating:(flags land Flags.Open.o_creat <> 0)
          (fun sp -> self#down (Call.Open (sp, flags, mode)))
      else self#on_read (fun p -> self#down (Call.Open (p, flags, mode)))

    method! creat mode =
      self#on_write ~creating:true (fun sp -> self#down (Call.Creat (sp, mode)))

    method! stat r = self#on_read (fun p -> self#down (Call.Stat (p, r)))
    method! lstat r = self#on_read (fun p -> self#down (Call.Lstat (p, r)))
    method! access bits =
      self#on_read (fun p -> self#down (Call.Access (p, bits)))
    method! readlink buf =
      self#on_read (fun p -> self#down (Call.Readlink (p, buf)))
    method! chdir = self#on_read (fun p -> self#down (Call.Chdir p))

    method! execve argv envp =
      match ov.resolve_read path with
      | Ok p -> Toolkit.Boilerplate.do_execve ov.dl p argv envp
      | Error e -> Error e

    method! unlink =
      if ov.is_deleted path then Error Errno.ENOENT
      else begin
        let shadow = ov.shadow path in
        let had_shadow = exists ov.dl shadow in
        let had_orig = exists ov.dl path in
        if not (had_shadow || had_orig) then Error Errno.ENOENT
        else begin
          if had_shadow then ignore (d_unit ov.dl (Call.Unlink shadow));
          if had_orig then ov.mark_deleted path;
          Value.ret 0
        end
      end

    method! rmdir =
      if ov.is_deleted path then Error Errno.ENOENT
      else begin
        let shadow = ov.shadow path in
        let had_shadow = exists ov.dl shadow in
        let had_orig = exists ov.dl path in
        if not (had_shadow || had_orig) then Error Errno.ENOENT
        else begin
          if had_shadow then ignore (d_unit ov.dl (Call.Rmdir shadow));
          if had_orig then ov.mark_deleted path;
          Value.ret 0
        end
      end

    method! mkdir mode =
      if (not (ov.is_deleted path)) && exists ov.dl path then
        Error Errno.EEXIST
      else begin
        ov.clear_deleted path;
        let shadow = ov.shadow path in
        mkdir_p ov.dl (Filename.dirname shadow);
        self#down (Call.Mkdir (shadow, mode))
      end

    method! chmod mode =
      self#on_write ~creating:false (fun sp ->
        self#down (Call.Chmod (sp, mode)))

    method! chown uid gid =
      self#on_write ~creating:false (fun sp ->
        self#down (Call.Chown (sp, uid, gid)))

    method! utimes atime mtime =
      self#on_write ~creating:false (fun sp ->
        self#down (Call.Utimes (sp, atime, mtime)))

    method! truncate len =
      self#on_write ~creating:false (fun sp ->
        self#down (Call.Truncate (sp, len)))

    method! symlink ~target =
      self#on_write ~creating:true (fun sp ->
        self#down (Call.Symlink (target, sp)))

    method! mknod mode dev =
      self#on_write ~creating:true (fun sp ->
        self#down (Call.Mknod (sp, mode, dev)))

    (* links and renames become overlay copies plus whiteouts *)
    method! link_to (newpn : Toolkit.Objects.pathname) =
      match ov.resolve_read path with
      | Error e -> Error e
      | Ok src ->
        (match ov.prepare_write newpn#path ~creating:true with
         | Error e -> Error e
         | Ok dst ->
           (match copy_file ov.dl ~src ~dst with
            | Ok () -> Value.ret 0
            | Error e -> Error e))

    method! rename_to (newpn : Toolkit.Objects.pathname) =
      match self#link_to newpn with
      | Ok _ -> self#unlink
      | Error e -> Error e
  end

(* --- the agent ------------------------------------------------------------ *)

class agent ?(decide : (unit -> decision) = fun () -> `Commit) () =
  object (self)
    inherit Toolkit.pathname_set as super

    val mutable shadow_root = ""
    val deleted : (string, unit) Hashtbl.t = Hashtbl.create 16
    val mutable finished = false
    val mutable session_pid = -1
    val mutable pending_dir : (string * string option) option = None

    method! agent_name = "txn"
    method shadow_root = shadow_root
    method finished = finished

    method deleted_paths =
      List.sort compare
        (Hashtbl.fold (fun p () acc -> p :: acc) deleted [])

    method private overlay : overlay =
      { dl = self#downlink;
        shadow = (fun p -> shadow_root ^ p);
        resolve_read = self#resolve_read;
        prepare_write = self#prepare_write;
        mark_deleted = (fun p -> Hashtbl.replace deleted p ());
        clear_deleted = (fun p -> Hashtbl.remove deleted p);
        is_deleted = (fun p -> Hashtbl.mem deleted p) }

    method! init argv =
      (* buffers file mutations; the sys_exit commit hook is part of
         the loader's boilerplate minimum, so file calls suffice *)
      List.iter self#register_interest Sysno.file_calls;
      ignore argv;
      (match self#down Call.Getpid with
       | Ok { Value.r0; _ } -> session_pid <- r0
       | Error _ -> ());
      (* distinguish stacked txn agents of the same process by probing
         the shard's own filesystem for a free shadow root, instead of
         a module-global serial -- keeps the agent shard-scoped *)
      let rec pick k =
        let root = Printf.sprintf "/tmp/.txn.%d.%d" session_pid k in
        if exists self#downlink root then pick (k + 1) else root
      in
      shadow_root <- pick 1;
      mkdir_p self#downlink shadow_root

    method private resolve_read path =
      if Hashtbl.mem deleted path then Error Errno.ENOENT
      else begin
        let sp = shadow_root ^ path in
        if exists self#downlink sp then Ok sp else Ok path
      end

    method private prepare_write path ~creating =
      if Hashtbl.mem deleted path then
        if creating then begin
          Hashtbl.remove deleted path;
          let sp = shadow_root ^ path in
          mkdir_p self#downlink (Filename.dirname sp);
          (* any stale shadow must not leak previous content *)
          ignore (d_unit self#downlink (Call.Unlink sp));
          Ok sp
        end
        else Error Errno.ENOENT
      else begin
        let sp = shadow_root ^ path in
        if exists self#downlink sp then Ok sp
        else begin
          mkdir_p self#downlink (Filename.dirname sp);
          if exists self#downlink path then
            match lstat_of self#downlink path with
            | Some st when Flags.Mode.is_reg st.st_mode ->
              (match copy_file self#downlink ~src:path ~dst:sp with
               | Ok () -> Ok sp
               | Error e -> Error e)
            | Some st when Flags.Mode.is_dir st.st_mode ->
              (* writing "into" a directory path: expose the shadow dir *)
              ignore (d_unit self#downlink (Call.Mkdir (sp, 0o755)));
              Ok sp
            | Some _ | None ->
              if creating then Ok sp else Error Errno.EINVAL
          else if creating then Ok sp
          else Error Errno.ENOENT
        end
      end

    method! make_pathname path =
      (new txn_pathname self#overlay path :> Toolkit.Objects.pathname)

    (* Directory listings must merge the real directory with its
       shadow and hide whiteouts. *)
    method! sys_open path flags mode =
      if not (Flags.Open.writable flags) then begin
        let is_dir p =
          match lstat_of self#downlink p with
          | Some st -> Flags.Mode.is_dir st.st_mode
          | None -> false
        in
        if Hashtbl.mem deleted path then Error Errno.ENOENT
        else begin
          let sp = shadow_root ^ path in
          let orig_dir = is_dir path in
          let shadow_dir = is_dir sp in
          if orig_dir || shadow_dir then begin
            let primary, extra =
              if orig_dir then path, (if shadow_dir then Some sp else None)
              else sp, None
            in
            pending_dir <- Some (path, extra);
            let res =
              self#track_new_fd ~path:(Some path) ~flags
                (self#down (Call.Open (primary, flags, mode)))
            in
            pending_dir <- None;
            res
          end
          else super#sys_open path flags mode
        end
      end
      else super#sys_open path flags mode

    method! make_open_object ~fd ~path ~flags =
      match pending_dir with
      | Some (dirpath, extra) ->
        let prefix = if dirpath = "/" then "/" else dirpath ^ "/" in
        let hide name = Hashtbl.mem deleted (prefix ^ name) in
        (new Merged_dir.merged_directory self#downlink
           ~extra_paths:(Option.to_list extra)
           ~hide ()
          :> Toolkit.Objects.open_object)
      | None -> super#make_open_object ~fd ~path ~flags

    (* --- session end ------------------------------------------------- *)

    method private remove_shadow_tree =
      let rec remove path =
        List.iter
          (fun (e : Dirent.t) ->
            let child = path ^ "/" ^ e.d_name in
            match lstat_of self#downlink child with
            | Some st when Flags.Mode.is_dir st.st_mode -> remove child
            | Some _ -> ignore (d_unit self#downlink (Call.Unlink child))
            | None -> ())
          (read_dir self#downlink path);
        ignore (d_unit self#downlink (Call.Rmdir path))
      in
      remove shadow_root

    method commit =
      if not finished then begin
        finished <- true;
        (* whiteouts first, then replay the shadow tree *)
        List.iter
          (fun p ->
            match lstat_of self#downlink p with
            | Some st when Flags.Mode.is_dir st.st_mode ->
              ignore (d_unit self#downlink (Call.Rmdir p))
            | Some _ -> ignore (d_unit self#downlink (Call.Unlink p))
            | None -> ())
          self#deleted_paths;
        let rec replay rel =
          let sdir = shadow_root ^ rel in
          List.iter
            (fun (e : Dirent.t) ->
              let srel = rel ^ "/" ^ e.d_name in
              let spath = shadow_root ^ srel in
              match lstat_of self#downlink spath with
              | Some st when Flags.Mode.is_dir st.st_mode ->
                ignore (d_unit self#downlink (Call.Mkdir (srel, 0o755)));
                replay srel
              | Some st when Flags.Mode.is_lnk st.st_mode ->
                let buf = Bytes.create 1024 in
                (match d_int self#downlink (Call.Readlink (spath, buf)) with
                 | Ok n ->
                   ignore (d_unit self#downlink (Call.Unlink srel));
                   ignore
                     (d_unit self#downlink
                        (Call.Symlink (Bytes.sub_string buf 0 n, srel)))
                 | Error _ -> ())
              | Some _ ->
                ignore (copy_file self#downlink ~src:spath ~dst:srel)
              | None -> ())
            (read_dir self#downlink sdir)
        in
        replay "";
        self#remove_shadow_tree;
        Hashtbl.reset deleted
      end

    method abort =
      if not finished then begin
        finished <- true;
        self#remove_shadow_tree;
        Hashtbl.reset deleted
      end

    method! sys_exit code =
      (if not finished then
         let pid =
           match self#down Call.Getpid with
           | Ok { Value.r0; _ } -> r0
           | Error _ -> -1
         in
         if pid = session_pid then
           match decide () with
           | `Commit -> self#commit
           | `Abort -> self#abort);
      super#sys_exit code
  end

let create ?decide () = new agent ?decide ()
