(** The timex agent (§3.3.1): changes the apparent time of day for the
    programs running under it by offsetting the result of
    [gettimeofday].  The whole agent is a derived [sys_gettimeofday]
    and an [init] that parses the desired offset — the paper's 35-
    statement example.

    Declared delta: [Shifts_results [gettimeofday]] — the call's
    result value moves, its outcome and shape do not. *)

class agent : object
  inherit Toolkit.symbolic_syscall
  method offset_seconds : int
end

val create : ?offset_seconds:int -> unit -> agent
(** The offset may also be given to [init] as [[| "+<seconds>" |]] (or
    a bare integer string), as the loader would. *)
