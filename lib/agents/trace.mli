(** The trace agent (§3.3.2): prints every system call made and every
    signal received by its client processes, in strace(1) style.

    Built, as in the paper, from a derived version of {e each} symbolic
    system call method — the per-call code is what makes this agent's
    size proportional to the size of the system interface (Table 3-1).
    Every traced call produces exactly two [write]s on the trace
    descriptor: one as the call starts, one as it returns (the paper's
    two-writes-per-call behaviour that drives its overhead numbers).
    Trace output is not buffered across calls, so it survives the
    client being killed.

    Each event is built as an [Obs.Span.call] record and formatted by
    [Obs.Span.call_line] — the same record is appended to the [Obs]
    flight recorder when tracing is enabled, so [agentrun --agent
    trace] text and [--trace-out] JSONL are two renderings of one
    stream.

    Declared delta: none — tracing is pure observation, and the
    conformance checker holds it to that (the trace descriptor's
    writes are agent-originated, so they never enter the client's
    syscall signature). *)

class agent : object
  inherit Toolkit.symbolic_syscall

  method set_output : int -> unit
  (** Trace to this descriptor (default 2). *)

  method calls_traced : int
end

val create : ?fd:int -> unit -> agent
(** [init] also accepts an [[| "fd=<n>" |]] argument, as the loader
    would pass. *)
