(** Transparent data encryption (§1.4's "transparent data compression
    and/or encryption agents", the encryption half).

    Files under the protected subtrees are stored enciphered; the agent
    deciphers on [read] and enciphers on [write], positionally, so
    unmodified programs see plaintext through any access pattern
    (including seeks) while the bytes at rest are ciphertext.  The
    cipher is an XOR stream keyed by (key, byte offset) — structurally
    a stream cipher, deliberately not a cryptographically serious
    one.

    Declared delta: [Rewrites_results [read; write]] — payload bytes
    change under the protected subtrees; counts, outcomes and shapes
    are untouched. *)

val keystream_byte : key:int -> pos:int -> int
(** The keystream octet at a file position (exposed for tests). *)

val transform : key:int -> pos:int -> Bytes.t -> off:int -> len:int -> unit
(** XOR a buffer region in place with the keystream starting at file
    position [pos].  Involutive: applying it twice restores the
    original. *)

class agent : key:int -> subtrees:string list -> object
  inherit Toolkit.Sets.descriptor_set

  method files_protected : int
  (** Opens that produced an enciphering descriptor so far. *)
end

val create : key:int -> subtrees:string list -> agent
