class agent =
  object (self)
    inherit Toolkit.symbolic_syscall as super

    val mutable offset = 0
    method offset_seconds = offset

    method! agent_name = "timex"

    method! declared_delta =
      [ Abi.Delta.Shifts_results [ Abi.Sysno.sys_gettimeofday ] ]

    method! init argv =
      self#register_interest Abi.Sysno.sys_gettimeofday;
      if Array.length argv > 0 then
        match int_of_string_opt argv.(0) with
        | Some n -> offset <- n
        | None -> ()

    method! sys_gettimeofday r =
      let ret = super#sys_gettimeofday r in
      (match ret, !r with
       | Ok _, Some (sec, usec) ->
         r := Some (sec + offset, usec);
         (* result mutated in flight: flag the span for the traces *)
         Obs.note_rewrite (Obs.current ())
       | (Ok _ | Error _), _ -> ());
      ret
  end

let create ?(offset_seconds = 0) () =
  let a = new agent in
  a#init [| string_of_int offset_seconds |];
  a
