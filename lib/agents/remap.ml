class agent =
  object (self)
    inherit Toolkit.numeric_syscall as super

    val mutable translated = 0

    method! agent_name = "remap"
    method calls_translated = translated

    (* foreign-numbered traps are served as their native pairing; a
       native baseline matches a VOS program's signature only after
       renumbering through exactly this table *)
    method! declared_delta = [ Abi.Delta.Renumbers Foreign_abi.native_pairs ]

    method! init _argv =
      List.iter self#register_interest Foreign_abi.numbers

    method! syscall env =
      if List.mem (Abi.Envelope.number env) Foreign_abi.numbers then
        (* a cross-ABI rewrite: take the raw vector, translate it, and
           re-wrap — the one legitimate fresh-envelope point *)
        match Foreign_abi.to_native (Abi.Envelope.wire env) with
        | Ok native ->
          translated <- translated + 1;
          (* the trap now travels under a different (native) number:
             flag the span so traces show which layer mutated it *)
          Obs.note_rewrite (Abi.Envelope.span env);
          (* fork and execve still need the boilerplate treatment *)
          super#syscall (Abi.Envelope.of_wire native)
        | Error e -> Error e
      else super#syscall env
  end

let create () = new agent
