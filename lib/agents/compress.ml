open Abi

let header = "RLE1\n"

let has_prefix prefix path =
  prefix = "/"
  || path = prefix
  || (String.length path > String.length prefix
      && String.sub path 0 (String.length prefix) = prefix
      && path.[String.length prefix] = '/')

let split_header content =
  let hl = String.length header in
  if String.length content >= hl && String.sub content 0 hl = header then
    Some (String.sub content hl (String.length content - hl))
  else None

class compress_object (dl : Toolkit.Downlink.t) ~(path : string)
  ~(flags : int) =
  object (self)
    inherit Toolkit.open_object dl as super

    val data = Vfs.Filedata.create ()
    val mutable pos = 0
    val mutable loaded = false
    val mutable dirty = false

    method private down c = Toolkit.Downlink.down_call dl c

    method private load_raw =
      (* read the stored bytes through a private descriptor so the
         application's offset is untouched *)
      match self#down (Call.Open (path, Flags.Open.o_rdonly, 0)) with
      | Error _ -> ""
      | Ok { Value.r0 = rfd; _ } ->
        let buf = Bytes.create 4096 in
        let collected = Buffer.create 256 in
        let rec slurp () =
          match self#down (Call.Read (rfd, buf, Bytes.length buf)) with
          | Ok { Value.r0 = 0; _ } | Error _ -> ()
          | Ok { Value.r0 = n; _ } ->
            Buffer.add_subbytes collected buf 0 n;
            slurp ()
        in
        slurp ();
        ignore (self#down (Call.Close rfd));
        Buffer.contents collected

    method private ensure_loaded =
      if not loaded then begin
        loaded <- true;
        if flags land Flags.Open.o_trunc = 0 then begin
          let raw = self#load_raw in
          let plain =
            match split_header raw with
            | Some payload ->
              (match Rle.decode payload with
               | Ok s -> s
               | Error _ -> raw)  (* corrupt: expose the stored bytes *)
            | None -> raw         (* legacy plaintext file *)
          in
          ignore (Vfs.Filedata.write data ~pos:0 plain)
        end
      end

    method private flush ~fd =
      if dirty then begin
        dirty <- false;
        let encoded = header ^ Rle.encode (Vfs.Filedata.to_string data) in
        ignore (self#down (Call.Lseek (fd, 0, Flags.Seek.set)));
        ignore (self#down (Call.Ftruncate (fd, 0)));
        ignore (self#down (Call.Write (fd, encoded)))
      end

    method! read ~fd buf cnt =
      ignore fd;
      self#ensure_loaded;
      let cnt = max 0 (min cnt (Bytes.length buf)) in
      let n = Vfs.Filedata.read data ~pos buf ~off:0 ~len:cnt in
      pos <- pos + n;
      Value.ret n

    method! write ~fd s =
      ignore fd;
      self#ensure_loaded;
      if flags land Flags.Open.o_append <> 0 then
        pos <- Vfs.Filedata.size data;
      let n = Vfs.Filedata.write data ~pos s in
      pos <- pos + n;
      dirty <- true;
      Value.ret n

    method! lseek ~fd off whence =
      ignore fd;
      self#ensure_loaded;
      let base =
        if whence = Flags.Seek.set then Some 0
        else if whence = Flags.Seek.cur then Some pos
        else if whence = Flags.Seek.end_ then Some (Vfs.Filedata.size data)
        else None
      in
      (match base with
       | Some b when b + off >= 0 ->
         pos <- b + off;
         Value.ret pos
       | Some _ | None -> Error Errno.EINVAL)

    method! ftruncate ~fd len =
      ignore fd;
      if len < 0 then Error Errno.EINVAL
      else begin
        self#ensure_loaded;
        Vfs.Filedata.truncate data len;
        dirty <- true;
        Value.ret 0
      end

    method! fstat ~fd r =
      self#ensure_loaded;
      match super#fstat ~fd r with
      | Ok _ as res ->
        (match !r with
         | Some st ->
           r := Some { st with Stat.st_size = Vfs.Filedata.size data }
         | None -> ());
        res
      | Error _ as res -> res

    method! close ~fd =
      self#flush ~fd;
      super#close ~fd
  end

class agent ~(subtrees : string list) =
  object (self)
    inherit Toolkit.Sets.descriptor_set as super

    val mutable handled = 0

    method! agent_name = "compress"

    (* on-disk form is compressed: payloads and observed sizes (stat,
       lseek results) differ from the bare filesystem's *)
    method! declared_delta =
      [ Delta.Rewrites_results
          [ Sysno.sys_read; Sysno.sys_write; Sysno.sys_stat;
            Sysno.sys_lstat; Sysno.sys_lseek ] ]
    method files_handled = handled
    (* a descriptor_set layer: descriptor calls (incl. open/creat) only *)
    method! init _argv =
      List.iter self#register_interest Sysno.descriptor_calls

    method! make_open_object ~fd ~path ~flags =
      match path with
      | Some p when List.exists (fun s -> has_prefix s p) subtrees ->
        handled <- handled + 1;
        (new compress_object self#downlink ~path:p ~flags
          :> Toolkit.Objects.open_object)
      | Some _ | None -> super#make_open_object ~fd ~path ~flags
  end

let create ~subtrees = new agent ~subtrees
