open Abi

(* --- deterministic injection plans ------------------------------------- *)

type action =
  | Fail of Errno.t
  | Delay of int

type site = {
  s_pid : int;
  s_num : int;
  s_kth : int;
  s_action : action;
}

let site ?(pid = 0) ?(kth = 0) num action =
  { s_pid = pid; s_num = num; s_kth = kth; s_action = action }

(* --- rate-based configuration (the original coin-flip mode) ------------ *)

type config = {
  seed : int;
  failure_rate : float;
  errno : Errno.t;
  candidates : int list;
}

let default_config = {
  seed = 1;
  failure_rate = 0.1;
  errno = Errno.EIO;
  candidates = [ Sysno.sys_read; Sysno.sys_write; Sysno.sys_open ];
}

(* --- shared injection machinery ---------------------------------------- *)

let candidate_set nums =
  let b = Bitset.create (Sysno.max_sysno + 1) in
  List.iter (Bitset.set b) nums;
  b

let note_obs env num what =
  if Obs.enabled () then begin
    Obs.note_injected ();
    Obs.record_mark ~span:(Envelope.span env) ~kind:"inject"
      ~detail:(Printf.sprintf "%s:%s" (Sysno.name num) what) ()
  end

(* Deliver an injected error.  Two invariants live here:

   - An injected failure is not free: the victim still crossed into the
     agent and back, so the path charges the interception cost even
     though the call never reaches the kernel (otherwise a faulted read
     is *cheaper* than a successful one and faulted-vs-clean virtual
     time comparisons are skewed).

   - Injected EINTR obeys the kernel's restart policy
     ([Kernel.Syscalls.restartable]): for a call the scheduler would
     transparently re-issue, the injected interruption becomes an
     invisible restart — the call is passed down and the application
     never sees a blind EINTR.  Only the sleepus-class calls surface
     it, exactly as a real interruption would. *)
let deliver ~down ~count ~restart env num errno =
  Toolkit.Boilerplate.charge Cost_model.intercept_us;
  if errno = Errno.EINTR && Kernel.Syscalls.restartable ~errno num then begin
    restart ();
    note_obs env num "EINTR-restart";
    down ()
  end
  else begin
    count ();
    note_obs env num (Errno.name errno);
    Error errno
  end

(* --- the rate-based agent ---------------------------------------------- *)

class agent (config : config) =
  object (self)
    inherit Toolkit.numeric_syscall as super

    val rng = Sim.Rng.create config.seed

    (* one truth source: interest registration and the hot per-trap
       decision both read this set, so they cannot diverge and
       duplicate candidate entries are absorbed *)
    val candidates = candidate_set config.candidates

    val counts : (int, int) Hashtbl.t = Hashtbl.create 8
    val mutable restarted = 0

    method! agent_name = "faultinject"

    (* every candidate call may surface the configured errno *)
    method! declared_delta =
      if config.failure_rate <= 0.0 then Delta.none
      else
        [ Delta.May_fail
            { sysnos = Bitset.to_list candidates; errnos = [ config.errno ] } ]

    method injected =
      Hashtbl.fold (fun num n acc -> (num, n) :: acc) counts []
      |> List.sort compare

    method total_injected =
      Hashtbl.fold (fun _ n acc -> acc + n) counts 0

    method restarted = restarted

    method! init _argv = Bitset.iter self#register_interest candidates

    method! syscall env =
      let num = Envelope.number env in
      if
        Bitset.mem candidates num
        && config.failure_rate > 0.0
        && float_of_int (Sim.Rng.int rng 1_000_000)
           < config.failure_rate *. 1e6
      then
        deliver env num config.errno
          ~down:(fun () -> super#syscall env)
          ~count:(fun () ->
            Hashtbl.replace counts num
              (1 + Option.value ~default:0 (Hashtbl.find_opt counts num)))
          ~restart:(fun () -> restarted <- restarted + 1)
      else super#syscall env
  end

let create config = new agent config

(* --- the plan-driven agent ---------------------------------------------- *)

class planned ~(plan : site list) =
  object (self)
    inherit Toolkit.numeric_syscall as super

    val sites = Array.of_list plan
    val matched = Array.make (max 1 (List.length plan)) 0
    val candidates = candidate_set (List.map (fun s -> s.s_num) plan)

    val counts : (int, int) Hashtbl.t = Hashtbl.create 8
    val mutable restarted = 0
    val mutable delayed = 0

    method! agent_name = "faultinject"

    (* the plan, restated as a declaration: Fail sites may flip the
       matched call's outcome to their errno (an injected EINTR the
       restart policy absorbs stays invisible and needs no mask),
       Delay sites only add virtual latency *)
    method! declared_delta =
      List.concat_map
        (fun s ->
          match s.s_action with
          | Fail e ->
            [ Delta.May_fail { sysnos = [ s.s_num ]; errnos = [ e ] } ]
          | Delay _ -> [ Delta.May_delay [ s.s_num ] ])
        (Array.to_list sites)

    method plan = Array.to_list sites

    method injected =
      Hashtbl.fold (fun num n acc -> (num, n) :: acc) counts []
      |> List.sort compare

    method total_injected =
      Hashtbl.fold (fun _ n acc -> acc + n) counts 0

    method restarted = restarted
    method delayed = delayed

    method matches =
      Array.to_list (Array.mapi (fun i n -> (i, n)) matched)

    method! init _argv = Bitset.iter self#register_interest candidates

    method! syscall env =
      let num = Envelope.number env in
      if not (Bitset.mem candidates num) then super#syscall env
      else begin
        let pid = (Kernel.Uspace.self ()).Kernel.Proc.pid in
        (* every matching site advances its ordinal, whether or not it
           fires — the k-th-call bookkeeping must not depend on which
           other sites exist.  The first site (in plan order) whose
           ordinal reaches its k wins the trap. *)
        let action = ref None in
        Array.iteri
          (fun i s ->
            if s.s_num = num && (s.s_pid = 0 || s.s_pid = pid) then begin
              matched.(i) <- matched.(i) + 1;
              if !action = None && (s.s_kth = 0 || matched.(i) = s.s_kth)
              then action := Some s.s_action
            end)
          sites;
        match !action with
        | None -> super#syscall env
        | Some (Fail errno) ->
          deliver env num errno
            ~down:(fun () -> super#syscall env)
            ~count:(fun () ->
              Hashtbl.replace counts num
                (1 + Option.value ~default:0 (Hashtbl.find_opt counts num)))
            ~restart:(fun () -> restarted <- restarted + 1)
        | Some (Delay us) ->
          delayed <- delayed + 1;
          Toolkit.Boilerplate.charge (max Cost_model.intercept_us us);
          note_obs env num (Printf.sprintf "delay:%d" us);
          super#syscall env
      end
  end

let create_planned plan = new planned ~plan
