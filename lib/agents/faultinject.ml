open Abi

type config = {
  seed : int;
  failure_rate : float;
  errno : Errno.t;
  candidates : int list;
}

let default_config = {
  seed = 1;
  failure_rate = 0.1;
  errno = Errno.EIO;
  candidates = [ Sysno.sys_read; Sysno.sys_write; Sysno.sys_open ];
}

class agent (config : config) =
  object (self)
    inherit Toolkit.numeric_syscall as super

    val rng = Sim.Rng.create config.seed
    val counts : (int, int) Hashtbl.t = Hashtbl.create 8

    method! agent_name = "faultinject"

    method injected =
      Hashtbl.fold (fun num n acc -> (num, n) :: acc) counts []
      |> List.sort compare

    method total_injected =
      Hashtbl.fold (fun _ n acc -> acc + n) counts 0

    method! init _argv = List.iter self#register_interest config.candidates

    method! syscall env =
      let num = Envelope.number env in
      if
        List.mem num config.candidates
        && config.failure_rate > 0.0
        && float_of_int (Sim.Rng.int rng 1_000_000)
           < config.failure_rate *. 1e6
      then begin
        Hashtbl.replace counts num
          (1 + Option.value ~default:0 (Hashtbl.find_opt counts num));
        Error config.errno
      end
      else super#syscall env
  end

let create config = new agent config
