open Abi

(* splitmix64-flavoured positional keystream *)
let keystream_byte ~key ~pos =
  let z =
    Int64.add
      (Int64.mul (Int64.of_int key) 0x9E3779B97F4A7C15L)
      (Int64.mul (Int64.of_int pos) 0xBF58476D1CE4E5B9L)
  in
  let z = Int64.logxor z (Int64.shift_right_logical z 31) in
  let z = Int64.mul z 0x94D049BB133111EBL in
  Int64.to_int (Int64.shift_right_logical z 56) land 0xff

let transform ~key ~pos buf ~off ~len =
  for i = 0 to len - 1 do
    let c = Char.code (Bytes.get buf (off + i)) in
    Bytes.set buf (off + i)
      (Char.chr (c lxor keystream_byte ~key ~pos:(pos + i)))
  done

let has_prefix prefix path =
  prefix = "/"
  || path = prefix
  || (String.length path > String.length prefix
      && String.sub path 0 (String.length prefix) = prefix
      && path.[String.length prefix] = '/')

(* Deciphers reads and enciphers writes at the descriptor's current
   file position, which it learns from the file table through the down
   path. *)
class crypt_object (dl : Toolkit.Downlink.t) ~(key : int) ~(flags : int) =
  object (self)
    inherit Toolkit.open_object dl as super

    method private file_size ~fd =
      let cell = ref None in
      match Toolkit.Downlink.down_call dl (Call.Fstat (fd, cell)), !cell with
      | Ok _, Some st -> st.Stat.st_size
      | _ -> 0

    method private position ~fd ~for_append =
      if for_append then self#file_size ~fd
      else
        match Toolkit.Downlink.down_call dl (Call.Lseek (fd, 0, Flags.Seek.cur)) with
        | Ok { Value.r0; _ } -> r0
        | Error _ -> 0

    (* A hole the kernel would zero-fill must instead hold {e encrypted}
       zeros, or later reads would "decrypt" the zeros into keystream
       garbage.  Writes the gap [from, to) and leaves the offset at
       [to). *)
    method private fill_gap ~fd ~from ~upto =
      if upto > from then begin
        ignore
          (Toolkit.Downlink.down_call dl (Call.Lseek (fd, from, Flags.Seek.set)));
        let rec fill pos =
          if pos < upto then begin
            let n = min 4096 (upto - pos) in
            let chunk = Bytes.make n '\000' in
            transform ~key ~pos chunk ~off:0 ~len:n;
            ignore
              (Toolkit.Downlink.down_call dl
                 (Call.Write (fd, Bytes.to_string chunk)));
            fill (pos + n)
          end
        in
        fill from
      end

    method! read ~fd buf cnt =
      let pos = self#position ~fd ~for_append:false in
      match super#read ~fd buf cnt with
      | Ok r as res ->
        transform ~key ~pos buf ~off:0 ~len:r.Value.r0;
        (* payload decrypted in flight: flag the span for the traces *)
        if r.Value.r0 > 0 then Obs.note_rewrite (Obs.current ());
        res
      | Error _ as res -> res

    method! write ~fd data =
      let size = self#file_size ~fd in
      let pos =
        self#position ~fd
          ~for_append:(flags land Flags.Open.o_append <> 0)
      in
      (* a write past EOF creates a hole first *)
      if pos > size then self#fill_gap ~fd ~from:size ~upto:pos;
      let enc = Bytes.of_string data in
      transform ~key ~pos enc ~off:0 ~len:(Bytes.length enc);
      if Bytes.length enc > 0 then Obs.note_rewrite (Obs.current ());
      super#write ~fd (Bytes.to_string enc)

    method! ftruncate ~fd len =
      let size = self#file_size ~fd in
      if len <= size then super#ftruncate ~fd len
      else begin
        (* an extending truncate is a hole from size to len *)
        let cur = self#position ~fd ~for_append:false in
        self#fill_gap ~fd ~from:size ~upto:len;
        ignore
          (Toolkit.Downlink.down_call dl (Call.Lseek (fd, cur, Flags.Seek.set)));
        Value.ret 0
      end
  end

class agent ~(key : int) ~(subtrees : string list) =
  object (self)
    inherit Toolkit.Sets.descriptor_set as super

    val mutable protected_opens = 0

    method! agent_name = "crypt"

    (* payload bytes under the subtrees are transformed in flight;
       counts, shapes and outcomes are untouched *)
    method! declared_delta =
      [ Delta.Rewrites_results [ Sysno.sys_read; Sysno.sys_write ] ]
    method files_protected = protected_opens
    (* a descriptor_set layer: descriptor calls (incl. open/creat) only *)
    method! init _argv =
      List.iter self#register_interest Sysno.descriptor_calls

    method! make_open_object ~fd ~path ~flags =
      match path with
      | Some p when List.exists (fun s -> has_prefix s p) subtrees ->
        protected_opens <- protected_opens + 1;
        (new crypt_object self#downlink ~key ~flags
          :> Toolkit.Objects.open_object)
      | Some _ | None -> super#make_open_object ~fd ~path ~flags
  end

let create ~key ~subtrees = new agent ~key ~subtrees
