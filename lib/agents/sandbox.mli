(** A protected environment for running untrusted binaries (§1.4).

    The sandbox confines the filesystem view to allow-listed prefixes
    (paths outside them appear not to exist), restricts mutation to a
    writable subset, bounds total bytes written, limits process
    creation, confines [kill] to the process's own descendants, and
    restricts [execve] to an allow-list.  In emulation mode the
    destructive calls a policy denies are {e pretended} to succeed —
    "monitors and emulates the actions they take, possibly without
    actually performing them" — so malware-style probes run to
    completion while mutating nothing.

    Every denial is recorded; [violations] is the audit trail.

    Declared delta: [May_fail] on the guarded calls (file calls plus
    [kill]/[settimeofday]) with ENOENT/EPERM/ENOSPC/EAGAIN — a policy
    wide enough for the workload leaves the mask unused, which is the
    checkable statement of sandbox transparency. *)

type policy = {
  readable : string list;
  (** Path prefixes visible at all; [[]] means everything. *)
  writable : string list;
  (** Prefixes where mutation is allowed; [[]] means nowhere. *)
  executable : string list;
  (** Prefixes execve may load from; [[]] means nowhere. *)
  max_children : int;      (** forks permitted; 0 = none *)
  max_write_bytes : int;   (** total write budget; -1 = unlimited *)
  allow_kill_outside : bool;
  emulate_denied : bool;
  (** Pretend denied destructive operations succeeded. *)
}

val open_policy : policy
(** Everything permitted (useful as a base to restrict from). *)

val default_policy : policy
(** Read anywhere, write only under [/tmp], exec nothing, no forks,
    1 MiB write budget, no outside kills, no emulation. *)

class agent : policy -> object
  inherit Toolkit.pathname_set

  method policy : policy
  method violations : string list
  (** Oldest first. *)

  method bytes_written : int
  method children_spawned : int
end

val create : policy -> agent
