(* /obs: the observability engine's own telemetry as synthetic files,
   readable from inside the simulation.  Reuses the synthfs machinery;
   generators run at open time in the opening process's context. *)

let spans_text () =
  String.concat ""
    (List.map (fun r -> Obs.Span.to_line r ^ "\n") (Obs.records ()))

let metrics_text () =
  Obs.Json.to_string (Obs.metrics_to_json ~name:Abi.Sysno.name (Obs.metrics ()))
  ^ "\n"

let codec_text () =
  Format.asprintf "%a\n" Abi.Envelope.Stats.pp (Abi.Envelope.Stats.snapshot ())

let create ?(mount = "/obs") () =
  let a = new Synthfs.agent ~mount () in
  a#register_file "spans" spans_text;
  a#register_file "metrics" metrics_text;
  a#register_file "codec" codec_text;
  a
