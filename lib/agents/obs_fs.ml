(* /obs: the observability engine's own telemetry as synthetic files,
   readable from inside the simulation.  Reuses the synthfs machinery;
   generators run at open time in the opening process's context. *)

let spans_text () =
  String.concat ""
    (List.map (fun r -> Obs.Span.to_line r ^ "\n") (Obs.records ()))

(* the same document [Kernel.metrics_json] serves to the host — span
   metrics plus codec (fast_path) and wire_pool counters — so there is
   exactly one set of numbers however you reach it; generators run
   in-fibre, so the shard they report on is the current one *)
let metrics_text () =
  Obs.Json.to_string (Kernel.metrics_json (Kernel.current_exn ())) ^ "\n"

let codec_text () =
  Format.asprintf "%a\n" Abi.Envelope.Stats.pp
    (Kernel.codec_stats (Kernel.current_exn ()))

let create ?(mount = "/obs") () =
  let a = new Synthfs.agent ~mount () in
  a#register_file "spans" spans_text;
  a#register_file "metrics" metrics_text;
  a#register_file "codec" codec_text;
  a
