(* /obs: the observability engine's own telemetry as synthetic files,
   readable from inside the simulation.  Reuses the synthfs machinery;
   generators run at open time in the opening process's context. *)

let spans_text () =
  String.concat ""
    (List.map (fun r -> Obs.Span.to_line r ^ "\n") (Obs.records ()))

(* the same document [Kernel.metrics_json] serves to the host — span
   metrics plus codec (fast_path) and wire_pool counters — so there is
   exactly one set of numbers however you reach it; generators run
   in-fibre, so the shard they report on is the current one *)
let metrics_text () =
  Obs.Json.to_string (Kernel.metrics_json (Kernel.current_exn ())) ^ "\n"

let codec_text () =
  Format.asprintf "%a\n" Abi.Envelope.Stats.pp
    (Kernel.codec_stats (Kernel.current_exn ()))

(* the causal edge table (fork/signal/pipe), one edge per line — read
   without draining, so the host's exporter still sees every edge *)
let causal_text () =
  String.concat ""
    (List.map (fun e -> Obs.Causal.to_line e ^ "\n") (Obs.causal_edges ()))

(* /obs/stream: a tail file.  The cursor persists across opens (it
   lives in the [create] closure), so each open serves exactly the
   records pushed since the previous open — a live incremental feed
   with no double delivery.  Records overwritten before being read are
   counted in a leading "lost" line rather than silently skipped. *)
let stream_text cursor () =
  let fresh, lost = Obs.poll cursor in
  let body =
    String.concat ""
      (List.map (fun r -> Obs.Span.to_line r ^ "\n") fresh)
  in
  if lost > 0 then Printf.sprintf "# lost %d\n%s" lost body else body

let create ?(mount = "/obs") () =
  let a = new Synthfs.agent ~mount () in
  a#register_file "spans" spans_text;
  a#register_file "metrics" metrics_text;
  a#register_file "codec" codec_text;
  a#register_file "causal" causal_text;
  a#register_file "stream" (stream_text (Obs.Stream.cursor ()));
  a
