(** Record/replay interposition — the "debuggers and program trace
    facilities" direction of §1.4, taken to its logical end.

    The {!recorder} journals the result of every {e input} system call
    (reads, stats, time-of-day, directory listings, link targets, the
    working directory) as its clients run.  The {!replayer} feeds a
    later run of the same program from that journal instead of from the
    kernel: the program re-observes exactly the inputs of the original
    run, even if the filesystem or the clock has changed since — the
    basis of reproducible debugging.

    Output and structural calls (write, open, close, fork, execve, …)
    pass through in both modes: the replayed program really runs, it is
    only its {e view of the world} that is pinned.  Journals are keyed
    by pid, and the simulation's deterministic pid assignment makes
    multi-process recordings replayable.

    A replay that observes a call sequence diverging from the journal
    counts a desync and fails the call with [EIO] rather than serving
    wrong data.

    Declared deltas: the recorder only watches, so it declares none;
    the replayer declares [Rewrites_results] over the replayable calls
    (inputs come from the journal) and [May_fail \{replayable; EIO\}]
    for desyncs. *)

val replayable : int -> bool
(** The input calls that are journaled/replayed. *)

class recorder : object
  inherit Toolkit.numeric_syscall

  method journal : string
  (** The serialized journal so far (one line per entry). *)

  method entries : int
end

class replayer : journal:string -> object
  inherit Toolkit.numeric_syscall

  method consumed : int
  method desyncs : int
  (** Calls that did not match the journal (served as [EIO]). *)
end

val create_recorder : unit -> recorder
val create_replayer : journal:string -> replayer
