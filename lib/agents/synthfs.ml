open Abi

type generator = unit -> string

let synth_ino name = 0x50000 lor (Hashtbl.hash name land 0xFFFF)

let synth_stat ~name ~size ~dir =
  { Stat.zero with
    st_dev = 0x51;
    st_ino = synth_ino name;
    st_mode =
      (if dir then Flags.Mode.ifdir lor 0o555
       else Flags.Mode.ifreg lor 0o444);
    st_nlink = 1;
    st_size = size }

(* A read-only descriptor whose bytes live in agent memory.  The
   underlying descriptor is a /dev/null placeholder; only [close]
   reaches it. *)
class synth_object (dl : Toolkit.Downlink.t) ~(name : string)
  ~(content : string) =
  object
    inherit Toolkit.open_object dl

    val data = Vfs.Filedata.of_string content
    val mutable pos = 0

    method! read ~fd:_ buf cnt =
      let cnt = max 0 (min cnt (Bytes.length buf)) in
      let n = Vfs.Filedata.read data ~pos buf ~off:0 ~len:cnt in
      pos <- pos + n;
      Value.ret n

    method! write ~fd:_ _ = Error Errno.EROFS

    method! lseek ~fd:_ off whence =
      let base =
        if whence = Flags.Seek.set then Some 0
        else if whence = Flags.Seek.cur then Some pos
        else if whence = Flags.Seek.end_ then Some (Vfs.Filedata.size data)
        else None
      in
      (match base with
       | Some b when b + off >= 0 ->
         pos <- b + off;
         Value.ret pos
       | Some _ | None -> Error Errno.EINVAL)

    method! fstat ~fd:_ r =
      r := Some (synth_stat ~name ~size:(Vfs.Filedata.size data) ~dir:false);
      Value.ret 0

    method! ftruncate ~fd:_ _ = Error Errno.EROFS
    method! getdirentries ~fd:_ _ = Error Errno.ENOTDIR
  end

class agent ?(mount = "/proc") () =
  object (self)
    inherit Toolkit.pathname_set as super

    val files : (string, generator) Hashtbl.t = Hashtbl.create 8
    val mutable served = 0
    val mutable pending : [ `File of string * string | `Dir ] option = None

    method! agent_name = "synthfs"
    method mount = mount
    method opens_served = served

    method register_file name gen =
      if name <> "" && not (String.contains name '/') then
        Hashtbl.replace files name gen

    method names =
      List.sort compare
        (Hashtbl.fold (fun name _ acc -> name :: acc) files [])

    (* serves synthetic files: file calls only *)
    method! init _argv = List.iter self#register_interest Sysno.file_calls

    method private entry path =
      if path = mount then Some `Dir
      else begin
        let ml = String.length mount in
        if
          String.length path > ml + 1
          && String.sub path 0 ml = mount
          && path.[ml] = '/'
        then begin
          let name = String.sub path (ml + 1) (String.length path - ml - 1) in
          match Hashtbl.find_opt files name with
          | Some gen -> Some (`File (name, gen))
          | None -> None
        end
        else None
      end

    method private placeholder_fd flags =
      match self#down (Call.Open ("/dev/null", Flags.Open.o_rdonly, 0)) with
      | Ok { Value.r0 = fd; _ } ->
        ignore flags;
        Ok fd
      | Error e -> Error e

    method! sys_open path flags mode =
      match self#entry path with
      | Some (`File (name, gen)) ->
        if Flags.Open.writable flags then Error Errno.EROFS
        else begin
          match self#placeholder_fd flags with
          | Error e -> Error e
          | Ok fd ->
            served <- served + 1;
            pending <- Some (`File (name, gen ()));
            self#drop_descriptor fd;
            let oo = self#make_open_object ~fd ~path:(Some path) ~flags in
            self#install_descriptor fd (new Toolkit.Objects.descriptor ~fd oo);
            pending <- None;
            Value.ret fd
        end
      | Some `Dir ->
        if Flags.Open.writable flags then Error Errno.EISDIR
        else begin
          (* the mount may not exist in the real filesystem at all;
             iterate a placeholder and splice the synthetic names in *)
          match self#placeholder_fd flags with
          | Error e -> Error e
          | Ok fd ->
            pending <- Some `Dir;
            self#drop_descriptor fd;
            let oo = self#make_open_object ~fd ~path:(Some path) ~flags in
            self#install_descriptor fd (new Toolkit.Objects.descriptor ~fd oo);
            pending <- None;
            Value.ret fd
        end
      | None -> super#sys_open path flags mode

    method! make_open_object ~fd ~path ~flags =
      match pending with
      | Some (`File (name, content)) ->
        (new synth_object self#downlink ~name ~content
          :> Toolkit.Objects.open_object)
      | Some `Dir ->
        (new Merged_dir.merged_directory self#downlink ~extra_paths:[]
           ~hide:(fun _ -> false)
           ~extra_names:self#names ()
          :> Toolkit.Objects.open_object)
      | None -> super#make_open_object ~fd ~path ~flags

    method! sys_stat path r =
      match self#entry path with
      | Some (`File (name, gen)) ->
        r := Some (synth_stat ~name ~size:(String.length (gen ())) ~dir:false);
        Value.ret 0
      | Some `Dir ->
        r := Some (synth_stat ~name:mount ~size:0 ~dir:true);
        Value.ret 0
      | None -> super#sys_stat path r

    method! sys_lstat path r = self#sys_stat path r

    method! sys_access path bits =
      match self#entry path with
      | Some _ ->
        if bits land Flags.Access.w_ok <> 0 then Error Errno.EROFS
        else Value.ret 0
      | None -> super#sys_access path bits

    method! sys_unlink path =
      match self#entry path with
      | Some _ -> Error Errno.EROFS
      | None -> super#sys_unlink path
  end

(* --- built-in generators --------------------------------------------------- *)

let create ?mount () =
  let a = new agent ?mount () in
  a#register_file "uptime" (fun () ->
    let cell = ref None in
    match
      Toolkit.Downlink.down_call a#downlink (Call.Gettimeofday cell), !cell
    with
    | Ok _, Some (sec, usec) -> Printf.sprintf "%d.%06d\n" sec usec
    | _ -> "0.000000\n");
  a#register_file "loadavg" (fun () -> "0.42 0.17 0.05 1/3\n");
  a#register_file "self" (fun () ->
    match Toolkit.Downlink.down_call a#downlink Call.Getpid with
    | Ok { Value.r0; _ } -> Printf.sprintf "%d\n" r0
    | Error _ -> "?\n");
  a#register_file "agents" (fun () -> "synthfs\n");
  a
