class agent =
  object (self)
    inherit Toolkit.symbolic_syscall
    method! agent_name = "time_symbolic"

    (* The null timing agent: it must intercept everything so the bench
       baselines (Table 5-1 style stack costs) measure the full
       interposition path — do not narrow this one. *)
    method! init _argv = self#register_interest_all
  end

let create () = new agent
