open Abi

let replayable_calls =
  [ Sysno.sys_read; Sysno.sys_stat; Sysno.sys_lstat; Sysno.sys_fstat;
    Sysno.sys_gettimeofday; Sysno.sys_readlink; Sysno.sys_getcwd;
    Sysno.sys_getdirentries ]

let replayable num = List.mem num replayable_calls

(* --- journal entries and their wire form -------------------------------- *)

type entry = {
  e_pid : int;
  e_num : int;
  e_r0 : int;
  e_r1 : int;
  e_err : int;   (* 0 = success *)
  e_out : string;
}

let quote s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      if c = ' ' || c = '%' || c = '\n' || Char.code c < 32
         || Char.code c > 126
      then Buffer.add_string b (Printf.sprintf "%%%02x" (Char.code c))
      else Buffer.add_char b c)
    s;
  Buffer.contents b

let unquote s =
  let b = Buffer.create (String.length s) in
  let n = String.length s in
  let rec go i =
    if i < n then
      if s.[i] = '%' && i + 2 < n then begin
        (match int_of_string_opt ("0x" ^ String.sub s (i + 1) 2) with
         | Some c -> Buffer.add_char b (Char.chr (c land 0xff))
         | None -> Buffer.add_char b s.[i]);
        go (i + 3)
      end
      else begin
        Buffer.add_char b s.[i];
        go (i + 1)
      end
  in
  go 0;
  Buffer.contents b

(* the out field carries a '=' marker so an empty payload still
   occupies its column *)
let entry_line e =
  Printf.sprintf "J %d %d %d %d %d =%s\n" e.e_pid e.e_num e.e_r0 e.e_r1
    e.e_err (quote e.e_out)

let parse_line line =
  match String.split_on_char ' ' (String.trim line) with
  | [ "J"; pid; num; r0; r1; err; out ] ->
    (match
       ( int_of_string_opt pid, int_of_string_opt num, int_of_string_opt r0,
         int_of_string_opt r1, int_of_string_opt err )
     with
     | Some e_pid, Some e_num, Some e_r0, Some e_r1, Some e_err
       when String.length out > 0 && out.[0] = '=' ->
       Some
         { e_pid; e_num; e_r0; e_r1; e_err;
           e_out = unquote (String.sub out 1 (String.length out - 1)) }
     | _ -> None)
  | _ -> None

(* --- stat and timeval codecs ------------------------------------------------ *)

let stat_to_string (st : Stat.t) =
  String.concat ","
    (List.map string_of_int
       [ st.st_dev; st.st_ino; st.st_mode; st.st_nlink; st.st_uid;
         st.st_gid; st.st_rdev; st.st_size; st.st_atime; st.st_mtime;
         st.st_ctime; st.st_blksize; st.st_blocks ])

let stat_of_string s =
  match List.map int_of_string_opt (String.split_on_char ',' s) with
  | [ Some st_dev; Some st_ino; Some st_mode; Some st_nlink; Some st_uid;
      Some st_gid; Some st_rdev; Some st_size; Some st_atime;
      Some st_mtime; Some st_ctime; Some st_blksize; Some st_blocks ] ->
    Some
      { Stat.st_dev; st_ino; st_mode; st_nlink; st_uid; st_gid; st_rdev;
        st_size; st_atime; st_mtime; st_ctime; st_blksize; st_blocks }
  | _ -> None

let tv_to_string (sec, usec) = Printf.sprintf "%d,%d" sec usec

let tv_of_string s =
  match String.split_on_char ',' s with
  | [ a; b ] ->
    (match int_of_string_opt a, int_of_string_opt b with
     | Some sec, Some usec -> Some (sec, usec)
     | _ -> None)
  | _ -> None

(* Extract the out-of-band results a call wrote into its arguments. *)
let capture_out (w : Value.wire) (r0 : int) =
  let buf_prefix i =
    match Value.Get.buf w i with
    | Ok b when r0 >= 0 -> Bytes.sub_string b 0 (min r0 (Bytes.length b))
    | Ok _ | Error _ -> ""
  in
  let stat_cell i =
    match Value.Get.stat_ref w i with
    | Ok { contents = Some st } -> stat_to_string st
    | Ok _ | Error _ -> ""
  in
  let n = w.num in
  if n = Sysno.sys_read || n = Sysno.sys_getdirentries
     || n = Sysno.sys_readlink || n = Sysno.sys_getcwd
  then
    buf_prefix (if n = Sysno.sys_read || n = Sysno.sys_getdirentries then 1
                else if n = Sysno.sys_readlink then 1
                else 0)
  else if n = Sysno.sys_stat || n = Sysno.sys_lstat || n = Sysno.sys_fstat
  then stat_cell 1
  else if n = Sysno.sys_gettimeofday then
    match Value.Get.tv_ref w 0 with
    | Ok { contents = Some tv } -> tv_to_string tv
    | Ok _ | Error _ -> ""
  else ""

(* Write a journaled out-value back into the live call's arguments. *)
let restore_out (w : Value.wire) (e : entry) =
  let fill_buf i =
    match Value.Get.buf w i with
    | Ok b ->
      let n = min (String.length e.e_out) (Bytes.length b) in
      Bytes.blit_string e.e_out 0 b 0 n
    | Error _ -> ()
  in
  let fill_stat i =
    match Value.Get.stat_ref w i with
    | Ok cell -> cell := stat_of_string e.e_out
    | Error _ -> ()
  in
  let n = w.num in
  if n = Sysno.sys_read || n = Sysno.sys_getdirentries
     || n = Sysno.sys_readlink
  then fill_buf 1
  else if n = Sysno.sys_getcwd then fill_buf 0
  else if n = Sysno.sys_stat || n = Sysno.sys_lstat || n = Sysno.sys_fstat
  then fill_stat 1
  else if n = Sysno.sys_gettimeofday then
    match Value.Get.tv_ref w 0 with
    | Ok cell -> cell := tv_of_string e.e_out
    | Error _ -> ()

(* --- the recorder -------------------------------------------------------------- *)

class recorder =
  object (self)
    inherit Toolkit.numeric_syscall as super

    val journal_buf = Buffer.create 4096
    val mutable count = 0

    method! agent_name = "recorder"
    method journal = Buffer.contents journal_buf
    method entries = count

    (* Only replayable calls are journaled, so only they need
       intercepting (the loader adds fork/execve/exit itself). *)
    method! init _argv = List.iter self#register_interest replayable_calls

    method! syscall env =
      let res = super#syscall env in
      let num = Envelope.number env in
      if replayable num then begin
        (* serialising the entry is real work *)
        Toolkit.Boilerplate.charge 25;
        let pid = (Kernel.Uspace.self ()).Kernel.Proc.pid in
        (* out-parameters are shared refs/buffers, so materializing the
           wire form after the call still sees the call's results *)
        let w = Envelope.wire env in
        let e =
          match res with
          | Ok { Value.r0; r1 } ->
            { e_pid = pid; e_num = num; e_r0 = r0; e_r1 = r1; e_err = 0;
              e_out = capture_out w r0 }
          | Error err ->
            { e_pid = pid; e_num = num; e_r0 = -1; e_r1 = 0;
              e_err = Errno.to_int err; e_out = "" }
        in
        Buffer.add_string journal_buf (entry_line e);
        count <- count + 1
      end;
      res
  end

(* --- the replayer ---------------------------------------------------------------- *)

class replayer ~(journal : string) =
  object (self)
    inherit Toolkit.numeric_syscall as super

    val queues : (int, entry Queue.t) Hashtbl.t = Hashtbl.create 8
    val mutable consumed = 0
    val mutable desyncs = 0

    method! agent_name = "replayer"
    method consumed = consumed
    method desyncs = desyncs

    (* input calls answer from the journal, not the kernel — results
       are rewritten wholesale, and a diverging call fails with EIO
       rather than serving wrong data *)
    method! declared_delta =
      [ Delta.Rewrites_results replayable_calls;
        Delta.May_fail { sysnos = replayable_calls; errnos = [ Errno.EIO ] } ]

    method! init _argv =
      List.iter self#register_interest replayable_calls;
      List.iter
        (fun line ->
          match parse_line line with
          | Some e ->
            let q =
              match Hashtbl.find_opt queues e.e_pid with
              | Some q -> q
              | None ->
                let q = Queue.create () in
                Hashtbl.replace queues e.e_pid q;
                q
            in
            Queue.add e q
          | None -> ())
        (String.split_on_char '\n' journal)

    method! syscall env =
      let num = Envelope.number env in
      if not (replayable num) then super#syscall env
      else begin
        Toolkit.Boilerplate.charge 20;
        let pid = (Kernel.Uspace.self ()).Kernel.Proc.pid in
        match Hashtbl.find_opt queues pid with
        | Some q when not (Queue.is_empty q) ->
          let e = Queue.pop q in
          if e.e_num <> num then begin
            desyncs <- desyncs + 1;
            Error Errno.EIO
          end
          else begin
            consumed <- consumed + 1;
            if e.e_err <> 0 then
              Error
                (Option.value ~default:Errno.EIO (Errno.of_int e.e_err))
            else begin
              restore_out (Envelope.wire env) e;
              Ok { Value.r0 = e.e_r0; r1 = e.e_r1 }
            end
          end
        | Some _ | None ->
          desyncs <- desyncs + 1;
          Error Errno.EIO
      end
  end

let create_recorder () = new recorder
let create_replayer ~journal = new replayer ~journal
