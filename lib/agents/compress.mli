(** Transparent data compression (§1.4).

    Files under the configured subtrees are stored run-length encoded
    (with an ["RLE1\n"] header); the agent materialises the plaintext
    in memory at open, serves reads, writes, seeks and truncates
    against it, and writes the re-encoded stream back at close.
    Unmodified programs see plain data; the bytes on "disk" are
    compressed.  Files without the header are treated as legacy
    plaintext and become compressed on their next modification.

    Declared delta: [Rewrites_results [read; write; stat; lstat;
    lseek]] — data and apparent sizes change under the subtrees;
    outcomes do not. *)

val header : string

class agent : subtrees:string list -> object
  inherit Toolkit.Sets.descriptor_set

  method files_handled : int
end

val create : subtrees:string list -> agent
