(** The OS-emulation agent: runs binaries of the foreign
    {!Foreign_abi} system ("VOS") on the native kernel by translating
    each foreign trap to its native equivalent at the numeric layer —
    the paper's "emulation of other operating systems" example, and a
    direct use of the layer-0 facility of remapping one range of
    system call numbers onto another.

    Declared delta: [Renumbers Foreign_abi.native_pairs] — a VOS
    trap's signature matches the native baseline after mapping each
    foreign sysno to its native partner. *)

class agent : object
  inherit Toolkit.numeric_syscall

  method calls_translated : int
end

val create : unit -> agent
