open Abi

(* numbers chosen inside the interception vector but disjoint from
   every native call *)
let v_exit = 141
let v_fork = 142
let v_read = 143
let v_write = 144
let v_open = 145
let v_close = 146
let v_getpid = 147
let v_gettimeofday = 148
let v_wait = 149
let v_stat = 150

let numbers =
  [ v_exit; v_fork; v_read; v_write; v_open; v_close; v_getpid;
    v_gettimeofday; v_wait; v_stat ]

(* the renumbering [to_native] performs, as data — remap's declared
   delta, and the normalization table for comparing a VOS program's
   signature against a native baseline *)
let native_pairs =
  [ (v_exit, Sysno.sys_exit); (v_fork, Sysno.sys_fork);
    (v_read, Sysno.sys_read); (v_write, Sysno.sys_write);
    (v_open, Sysno.sys_open); (v_close, Sysno.sys_close);
    (v_getpid, Sysno.sys_getpid);
    (v_gettimeofday, Sysno.sys_gettimeofday);
    (v_wait, Sysno.sys_wait4); (v_stat, Sysno.sys_stat) ]

let ( let* ) = Result.bind

let to_native (w : Value.wire) : (Value.wire, Errno.t) result =
  let n = w.num in
  let renumber num = Ok { w with Value.num } in
  if n = v_exit then renumber Sysno.sys_exit
  else if n = v_fork then renumber Sysno.sys_fork
  else if n = v_read then renumber Sysno.sys_read
  else if n = v_write then renumber Sysno.sys_write
  else if n = v_open then begin
    (* VOS passes (mode, flags, path); native wants (path, flags, mode) *)
    let* mode = Value.Get.int w 0 in
    let* flags = Value.Get.int w 1 in
    let* path = Value.Get.str w 2 in
    Ok { Value.num = Sysno.sys_open;
         args = [| Value.Str path; Value.Int flags; Value.Int mode |] }
  end
  else if n = v_close then renumber Sysno.sys_close
  else if n = v_getpid then renumber Sysno.sys_getpid
  else if n = v_gettimeofday then renumber Sysno.sys_gettimeofday
  else if n = v_wait then renumber Sysno.sys_wait4
  else if n = v_stat then renumber Sysno.sys_stat
  else Error Errno.ENOSYS

module Stub = struct
  let trap num args = Kernel.Uspace.trap_wire { Value.num; args }

  let exit code = trap v_exit [| Value.Int code |]
  let fork body = trap v_fork [| Value.Body body |]
  let read fd buf cnt = trap v_read [| Value.Int fd; Value.Buf buf; Value.Int cnt |]
  let write fd data = trap v_write [| Value.Int fd; Value.Str data |]

  let open_ ~mode ~flags path =
    trap v_open [| Value.Int mode; Value.Int flags; Value.Str path |]

  let close fd = trap v_close [| Value.Int fd |]
  let getpid () = trap v_getpid [||]
  let gettimeofday cell = trap v_gettimeofday [| Value.Tv_ref cell |]
  let wait () = trap v_wait [| Value.Int (-1); Value.Int 0 |]
  let stat path cell = trap v_stat [| Value.Str path; Value.Stat_ref cell |]
end
