(** The union-directory agent (§3.3.3): mounts a search list of
    directories so that the union of their contents appears to reside
    in a single directory — the motivating example being separate
    source and object directories appearing as one to [make].

    Structure mirrors the paper: a derived pathname resolution
    ([getpn]) that maps names under a union mount point onto the first
    member that contains them, and a derived directory object whose
    [next_direntry] iterates over every member's contents (duplicates
    suppressed, earlier members win).  New files are created in the
    first member.

    Declared delta: [Rewrites_results [getdirentries; stat; lstat]] —
    listings and identities under a mount reflect the union, not any
    single member (this covers the {!Merged_dir} machinery too). *)

type mount = {
  point : string;          (** absolute path of the union directory *)
  members : string list;   (** absolute member directories, priority order *)
}

class agent : object
  inherit Toolkit.pathname_set

  method add_mount : point:string -> members:string list -> unit
  method mounts : mount list

  method translate : string -> string
  (** Where a pathname actually resolves (identity when the path is
      not under a union mount); exposed for tests. *)
end

val create : mounts:mount list -> unit -> agent
(** [init] also accepts arguments of the form
    ["/union=/dir1:/dir2:..."], as the loader would pass. *)
