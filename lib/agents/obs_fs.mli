(** [/obs]: live telemetry through the file namespace.

    A {!Synthfs.agent} preloaded with read-only synthetic files
    (default mount [/obs]) so traced programs — and tests — can [open]
    and [read] their own observability data:

    - [spans]: the flight recorder, one JSONL record per line
      (non-destructive snapshot, oldest first);
    - [metrics]: the aggregated [Kernel.metrics_json] snapshot
      (including the [watchdogs] block);
    - [codec]: the global envelope codec counters, pretty-printed;
    - [causal]: the causal edge table, one JSONL edge per line
      (non-destructive snapshot);
    - [stream]: a {e tail} file — each open serves exactly the span
      records pushed since the previous open (the cursor persists for
      the agent's lifetime); records overwritten before being read
      appear as a leading ["# lost N"] line.

    Contents reflect whatever [Obs] has accumulated; with tracing off
    the files exist but are empty(ish).  Reading them is itself made of
    system calls, which are observed like any others.

    Declared delta: inherited from {!Synthfs.agent} — programs that
    never look under the mount see no delta at all. *)

val create : ?mount:string -> unit -> Synthfs.agent
