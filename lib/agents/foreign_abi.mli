(** A "foreign operating system" ABI, for the OS-emulation agent
    (§1.4: running ULTRIX / HP-UX / System V binaries on a different
    kernel by translating their system calls).

    The foreign system — call it VOS, a variant OS — differs from the
    native interface in its syscall numbering (a disjoint range) and
    in one calling convention: VOS [open] takes (mode, flags, path)
    in that order.  Programs "compiled for VOS" trap through the stubs
    below; on a bare native kernel every such trap fails with
    [ENOSYS], and under the {!Remap} agent they behave exactly like
    native calls. *)

val v_exit : int
val v_fork : int
val v_read : int
val v_write : int
val v_open : int
val v_close : int
val v_getpid : int
val v_gettimeofday : int
val v_wait : int
val v_stat : int

val numbers : int list
(** All foreign numbers, for [register_interest]. *)

val native_pairs : (int * int) list
(** The (foreign, native) renumbering {!to_native} performs, as data —
    [Remap]'s declared delta ([Abi.Delta.Renumbers]), and the table
    conformance checking uses to compare a VOS program's syscall
    signature against a native baseline. *)

val to_native : Abi.Value.wire -> (Abi.Value.wire, Abi.Errno.t) result
(** Translate one foreign trap into the equivalent native trap
    (renumbering, plus the [open] argument reordering). *)

(** The VOS "C library": stubs a foreign program image uses.  They
    trap with foreign numbers through the normal trap path, so they
    are interceptable like any other call. *)
module Stub : sig
  val exit : int -> Abi.Value.res
  val fork : (unit -> int) -> Abi.Value.res
  val read : int -> Bytes.t -> int -> Abi.Value.res
  val write : int -> string -> Abi.Value.res
  val open_ : mode:int -> flags:int -> string -> Abi.Value.res
  val close : int -> Abi.Value.res
  val getpid : unit -> Abi.Value.res
  val gettimeofday : (int * int) option ref -> Abi.Value.res
  val wait : unit -> Abi.Value.res
  val stat : string -> Abi.Stat.t option ref -> Abi.Value.res
end
