open Abi

type mount = {
  point : string;
  members : string list;
}

(* "/a/b/" -> "/a/b"; keeps "/" itself *)
let strip_trailing_slash p =
  let n = String.length p in
  if n > 1 && p.[n - 1] = '/' then String.sub p 0 (n - 1) else p

let is_under ~point path =
  let pl = String.length point in
  String.length path > pl + 1
  && String.sub path 0 pl = point
  && path.[pl] = '/'

let parse_mount_arg arg =
  match String.index_opt arg '=' with
  | None -> None
  | Some i ->
    let point = strip_trailing_slash (String.sub arg 0 i) in
    let members =
      String.sub arg (i + 1) (String.length arg - i - 1)
      |> String.split_on_char ':'
      |> List.filter (fun s -> s <> "")
      |> List.map strip_trailing_slash
    in
    if point = "" || members = [] then None else Some { point; members }

class agent =
  object (self)
    inherit Toolkit.pathname_set as super

    val mutable mounts : mount list = []
    val mutable pending_mount : mount option = None

    method! agent_name = "union"

    (* directory reads under a mount point are merged from the member
       directories, and path lookups resolve through them *)
    method! declared_delta =
      [ Delta.Rewrites_results
          [ Sysno.sys_getdirentries; Sysno.sys_stat; Sysno.sys_lstat ] ]
    method mounts = mounts

    method add_mount ~point ~members =
      mounts <-
        mounts
        @ [ { point = strip_trailing_slash point;
              members = List.map strip_trailing_slash members } ]

    method! init argv =
      (* path translation touches file calls only *)
      List.iter self#register_interest Sysno.file_calls;
      Array.iter
        (fun arg ->
          match parse_mount_arg arg with
          | Some m -> mounts <- mounts @ [ m ]
          | None -> ())
        argv

    method private mount_of path =
      let path = strip_trailing_slash path in
      List.find_opt (fun m -> m.point = path) mounts

    (* First member containing the name wins; a missing name resolves
       to the first member so that creations land there. *)
    method translate path =
      let clean = strip_trailing_slash path in
      let rec search = function
        | [] -> path
        | m :: rest ->
          if m.point = clean then List.hd m.members
          else if is_under ~point:m.point path then begin
            let rest_path =
              String.sub path (String.length m.point)
                (String.length path - String.length m.point)
            in
            let existing =
              List.find_opt
                (fun member ->
                  match
                    self#down (Call.Access (member ^ rest_path, 0))
                  with
                  | Ok _ -> true
                  | Error _ -> false)
                m.members
            in
            match existing with
            | Some member -> member ^ rest_path
            | None -> List.hd m.members ^ rest_path
          end
          else search rest
      in
      search mounts

    method! getpn path =
      Toolkit.Boilerplate.charge Cost_model.pathname_layer_us;
      Ok (self#make_pathname (self#translate path))

    (* Opening the union directory itself: open the first member and
       hand back a directory object that iterates all of them. *)
    method! sys_open path flags mode =
      match self#mount_of path with
      | Some m when not (Flags.Open.writable flags) ->
        pending_mount <- Some m;
        let res =
          self#track_new_fd ~path:(Some path) ~flags
            (self#down (Call.Open (List.hd m.members, flags, mode)))
        in
        pending_mount <- None;
        res
      | Some _ | None -> super#sys_open path flags mode

    method! make_open_object ~fd ~path ~flags =
      match pending_mount with
      | Some m ->
        (new Merged_dir.merged_directory self#downlink
           ~extra_paths:(List.tl m.members)
           ~hide:(fun _ -> false)
           ()
          :> Toolkit.Objects.open_object)
      | None -> super#make_open_object ~fd ~path ~flags
  end

let create ~mounts () =
  let a = new agent in
  List.iter (fun m -> a#add_mount ~point:m.point ~members:m.members) mounts;
  a
