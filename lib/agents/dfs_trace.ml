open Abi

type emitter = Dfs_record.op -> string -> Value.res -> Value.res

class dfs_pathname (dl : Toolkit.Downlink.t) (log : emitter) (path : string) =
  object (_self)
    inherit Toolkit.pathname dl path as super

    method! creat mode = log Dfs_record.R_creat path (super#creat mode)
    method! stat r = log Dfs_record.R_stat path (super#stat r)
    method! lstat r = log Dfs_record.R_lstat path (super#lstat r)
    method! access bits = log Dfs_record.R_access path (super#access bits)
    method! readlink buf =
      log Dfs_record.R_readlink path (super#readlink buf)
    method! chdir = log Dfs_record.R_chdir path super#chdir
    method! unlink = log Dfs_record.R_unlink path super#unlink
    method! rmdir = log Dfs_record.R_rmdir path super#rmdir
    method! mkdir mode = log Dfs_record.R_mkdir path (super#mkdir mode)
    method! chmod mode = log Dfs_record.R_chmod path (super#chmod mode)
    method! chown uid gid =
      log Dfs_record.R_chown path (super#chown uid gid)
    method! truncate len =
      log Dfs_record.R_truncate path (super#truncate len)
    method! utimes atime mtime =
      log Dfs_record.R_utimes path (super#utimes atime mtime)
    method! link_to newpn =
      log (Dfs_record.R_link newpn#path) path (super#link_to newpn)
    method! rename_to newpn =
      log (Dfs_record.R_rename newpn#path) path (super#rename_to newpn)
    method! symlink ~target =
      log (Dfs_record.R_symlink target) path (super#symlink ~target)
    method! execve argv envp =
      (* log first: a successful exec does not return *)
      let _ = log Dfs_record.R_execve path (Value.ret 0) in
      super#execve argv envp
  end

(* Counts the traffic through a descriptor so the close record can
   carry byte totals, as DFSTrace's close records do. *)
class counting_object (dl : Toolkit.Downlink.t) (log : emitter)
  (path : string) =
  object
    inherit Toolkit.open_object dl as super

    val mutable bytes_read = 0
    val mutable bytes_written = 0

    method! read ~fd buf cnt =
      match super#read ~fd buf cnt with
      | Ok r as res ->
        bytes_read <- bytes_read + r.Value.r0;
        res
      | Error _ as res -> res

    method! write ~fd data =
      match super#write ~fd data with
      | Ok r as res ->
        bytes_written <- bytes_written + r.Value.r0;
        res
      | Error _ as res -> res

    method! on_last_close =
      ignore
        (log (Dfs_record.R_close (bytes_read, bytes_written)) path
           (Value.ret 0))
  end

class agent =
  object (self)
    inherit Toolkit.pathname_set as super

    val mutable log_fd = -1
    val mutable log_path = "/tmp/dfstrace.log"
    val mutable serial = 0

    method! agent_name = "dfs_trace"
    method set_log_fd fd = log_fd <- fd
    method records_emitted = serial

    method! init argv =
      (* only file references are logged — no reason to see the rest *)
      List.iter self#register_interest Sysno.file_calls;
      Array.iter
        (fun arg ->
          match String.index_opt arg '=' with
          | Some i when String.sub arg 0 i = "log" ->
            log_path <- String.sub arg (i + 1) (String.length arg - i - 1)
          | _ -> ())
        argv;
      match
        self#down
          (Call.Open
             ( log_path,
               Flags.Open.(o_wronly lor o_creat lor o_append),
               0o644 ))
      with
      | Ok { Value.r0 = fd; _ } ->
        (* deliberately NOT close-on-exec: the agent survives execve
           (the toolkit keeps the emulation state), so its log must
           survive too *)
        log_fd <- fd
      | Error _ -> log_fd <- -1

    (* One record per reference, stamped like the original: a getpid
       and a gettimeofday per record, written immediately. *)
    method private emit op path (res : Value.res) : Value.res =
      if log_fd >= 0 then begin
        serial <- serial + 1;
        let pid =
          match self#down Call.Getpid with
          | Ok { Value.r0; _ } -> r0
          | Error _ -> 0
        in
        let cell = ref None in
        let time_us =
          match self#down (Call.Gettimeofday cell), !cell with
          | Ok _, Some (sec, usec) -> (sec * 1_000_000) + usec
          | _ -> 0
        in
        let result =
          match res with
          | Ok _ -> 0
          | Error e -> Errno.to_int e
        in
        let record =
          { Dfs_record.serial; pid; time_us; path; op; result }
        in
        ignore (self#down (Call.Write (log_fd, Dfs_record.encode record)))
      end;
      res

    method! make_pathname path =
      (new dfs_pathname self#downlink
         (fun op p res -> self#emit op p res)
         path
        :> Toolkit.Objects.pathname)

    method! make_open_object ~fd ~path ~flags =
      ignore fd;
      ignore flags;
      match path with
      | Some p ->
        (new counting_object self#downlink
           (fun op p' res -> self#emit op p' res)
           p
          :> Toolkit.Objects.open_object)
      | None -> super#make_open_object ~fd ~path ~flags

    method! sys_open path flags mode =
      match super#sys_open path flags mode with
      | res -> self#emit (Dfs_record.R_open flags) path res
  end

let create () = new agent
