open Abi

class agent =
  object (self)
    inherit Toolkit.numeric_syscall as super

    val counts = Array.make (Sysno.max_sysno + 1) 0
    val sig_counts = Array.make (Signal.max_signal + 1) 0

    method! agent_name = "syscount"
    (* counts every call by definition: full interest is the point *)
    method! init _argv = self#register_interest_all

    method! syscall env =
      let n = Envelope.number env in
      if n >= 0 && n < Array.length counts then
        counts.(n) <- counts.(n) + 1;
      super#syscall env

    method! signal_handler s =
      if Signal.is_valid s then sig_counts.(s) <- sig_counts.(s) + 1;
      super#signal_handler s

    method count_of n =
      if n >= 0 && n < Array.length counts then counts.(n) else 0

    method counts =
      List.filter_map
        (fun n -> if counts.(n) > 0 then Some (n, counts.(n)) else None)
        Sysno.all

    method signal_counts =
      let rec go s acc =
        if s > Signal.max_signal then List.rev acc
        else if sig_counts.(s) > 0 then go (s + 1) ((s, sig_counts.(s)) :: acc)
        else go (s + 1) acc
      in
      go 1 []

    method total = Array.fold_left ( + ) 0 counts

    method report =
      let b = Buffer.create 256 in
      Buffer.add_string b "syscall counts:\n";
      List.iter
        (fun (n, c) ->
          Buffer.add_string b (Printf.sprintf "  %-16s %6d\n" (Sysno.name n) c))
        self#counts;
      (match self#signal_counts with
       | [] -> ()
       | sigs ->
         Buffer.add_string b "signal counts:\n";
         List.iter
           (fun (s, c) ->
             Buffer.add_string b
               (Printf.sprintf "  %-16s %6d\n" (Signal.name s) c))
           sigs);
      Buffer.add_string b (Printf.sprintf "total: %d\n" self#total);
      Buffer.contents b

    method write_report ~fd =
      ignore (self#down (Call.Write (fd, self#report)))
  end

let create () = new agent
