open Abi

let minimum_interests =
  [ Sysno.sys_fork; Sysno.sys_execve; Sysno.sys_exit ]

let effective_interests (agent : #Numeric.numeric_syscall) =
  List.sort_uniq compare (minimum_interests @ agent#interests)

let install (agent : #Numeric.numeric_syscall) ~argv =
  (* capture the whole current vector: the agent may route any call
     down, not only the ones it intercepts *)
  Downlink.capture agent#downlink ~numbers:Sysno.all;
  (* initialise first: init both declares the agent's interests and may
     make system calls of its own, which must reach the level below *)
  agent#init argv;
  (* one observability frame per installed agent, named after it, so
     the flight recorder attributes dispatch time (numeric or symbolic,
     including any decode the agent triggers) to this stack level *)
  let name = agent#agent_name in
  Kernel.Uspace.task_set_emulation
    ~numbers:(effective_interests agent)
    (Some
       (fun env ->
         (* span <= 0 means tracing is off for this trap, and [in_layer]
            is then the identity — skip its closure so the fused chain
            costs one call per level on the hot path *)
         let span = Abi.Envelope.span env in
         if span <= 0 then agent#syscall env
         else Obs.in_layer ~span name (fun () -> agent#syscall env)));
  Kernel.Uspace.task_set_emulation_signal
    (Some (fun s -> agent#signal_handler s))

let uninstall (agent : #Numeric.numeric_syscall) =
  (* restore per-number handlers from the downlink capture *)
  let dl = agent#downlink in
  List.iter
    (fun n ->
      Kernel.Uspace.task_set_emulation ~numbers:[ n ]
        (Downlink.captured_handler dl n))
    (effective_interests agent);
  Kernel.Uspace.task_set_emulation_signal (Downlink.captured_signal dl)

let run_under agent ?(argv = [||]) f =
  install agent ~argv;
  Fun.protect ~finally:(fun () -> uninstall agent) f

let exec_under agent ?(agent_argv = [||]) ~path ~argv ?(envp = [||]) () =
  install agent ~argv:agent_argv;
  match Boilerplate.do_execve agent#downlink path argv envp with
  | Error e ->
    ignore
      (Downlink.down_call agent#downlink
         (Call.Write
            (2, Printf.sprintf "agent loader: %s: %s\n" path
               (Errno.message e))));
    127
  | Ok _ -> assert false
