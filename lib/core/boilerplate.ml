open Abi

let charge = Kernel.Uspace.cpu_work

let do_fork dl ~init_child body =
  charge Cost_model.agent_fork_extra_us;
  let wrapped () =
    init_child ();
    body ()
  in
  Downlink.down_call dl (Call.Fork wrapped)

let down_int dl c =
  match Downlink.down_call dl c with
  | Ok { Value.r0; _ } -> Ok r0
  | Error e -> Error e

(* Read the whole program file through the down path, so that stacked
   agents (a filesystem-view agent under us, say) see the load. *)
let read_program dl path : (string, Errno.t) result =
  match down_int dl (Call.Open (path, Flags.Open.o_rdonly, 0)) with
  | Error e -> Error e
  | Ok fd ->
    let buf = Bytes.create 4096 in
    let collected = Buffer.create 256 in
    let rec slurp () =
      match down_int dl (Call.Read (fd, buf, Bytes.length buf)) with
      | Error e ->
        ignore (down_int dl (Call.Close fd));
        Error e
      | Ok 0 ->
        ignore (down_int dl (Call.Close fd));
        Ok (Buffer.contents collected)
      | Ok n ->
        Buffer.add_subbytes collected buf 0 n;
        slurp ()
    in
    slurp ()

(* The steps a single kernel execve would have performed, done by hand
   (§3.5.2): check, load, close descriptors, reset handlers, transfer
   control — but keeping the emulation vector alive. *)
let do_execve dl path argv envp : Value.res =
  let fail e = (Error e : Value.res) in
  match down_int dl (Call.Access (path, Flags.Access.x_ok)) with
  | Error e -> fail e
  | Ok _ ->
    match read_program dl path with
    | Error e -> fail e
    | Ok content ->
      match Kernel.Registry.image_of_content content with
      | None -> fail Errno.ENOEXEC
      | Some image_name ->
        (* the agent runs in-fibre with no handle: resolve the image
           against the shard this process belongs to *)
        match
          Kernel.Registry.lookup
            (Kernel.registry (Kernel.current_exn ())) image_name
        with
        | None -> fail Errno.ENOEXEC
        | Some image ->
          let body = image ~argv ~envp in
          (* close the close-on-exec subset of the descriptors *)
          let table_size =
            match down_int dl Call.Getdtablesize with
            | Ok n -> n
            | Error _ -> 64
          in
          for fd = 0 to table_size - 1 do
            match down_int dl (Call.Fcntl (fd, Flags.Fcntl.f_getfd, 0)) with
            | Ok flags when flags land Flags.Fcntl.fd_cloexec <> 0 ->
              ignore (down_int dl (Call.Close fd))
            | Ok _ | Error _ -> ()
          done;
          (* reset caught signals to the default disposition *)
          for s = 1 to Signal.max_signal do
            let old = ref None in
            (match
               down_int dl (Call.Sigaction (s, None, Some old))
             with
             | Ok _ ->
               (match !old with
                | Some (Value.H_fn _) ->
                  ignore
                    (down_int dl
                       (Call.Sigaction (s, Some Value.H_default, None)))
                | Some Value.H_default | Some Value.H_ignore | None -> ())
             | Error _ -> ())
          done;
          charge Cost_model.agent_execve_extra_us;
          let exec_name =
            if Array.length argv > 0 then argv.(0) else image_name
          in
          Kernel.Uspace.exec_load
            { Kernel.Events.exec_name;
              exec_body = body;
              keep_emulation = true }
