open Abi

type t = {
  mutable prev : (Envelope.t -> Value.res) option array;
  mutable prev_sig : (int -> unit) option;
}

let create () =
  { prev = Array.make (Sysno.max_sysno + 1) None; prev_sig = None }

let capture t ~numbers =
  List.iter
    (fun n ->
      if n >= 0 && n < Array.length t.prev then
        t.prev.(n) <- Kernel.Uspace.task_get_emulation n)
    numbers;
  t.prev_sig <- Kernel.Uspace.task_get_emulation_signal ()

let captured_handler t n =
  if n >= 0 && n < Array.length t.prev then t.prev.(n) else None

let captured_signal t = t.prev_sig

let down t (env : Envelope.t) =
  Envelope.Stats.note_crossing ();
  let num = Envelope.number env in
  let prev =
    if num >= 0 && num < Array.length t.prev then t.prev.(num)
    else None
  in
  Obs.in_layer ~span:(Envelope.span env) "downlink" (fun () ->
      match prev with
      | Some handler -> handler env
      | None -> Kernel.Uspace.htg_trap env)

let down_call t c =
  Envelope.Stats.note_agent_call ();
  down t (Envelope.of_call c)

let down_signal t s =
  match t.prev_sig with
  | Some interposer -> interposer s
  | None ->
    let proc = Kernel.Uspace.self () in
    (match Kernel.Proc.handler proc s with
     | Value.H_fn f -> f s
     | Value.H_default | Value.H_ignore -> ())
