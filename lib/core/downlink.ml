open Abi

type t = {
  mutable prev : (Envelope.t -> Value.res) option array;
  mutable bitmap : Bitset.t;
      (* Same invariant as Proc.emulation: bit [n] set iff [prev.(n)]
         holds a captured handler, so [down] decides "straight to the
         kernel" with one bit test. *)
  mutable prev_sig : (int -> unit) option;
}

let create () =
  { prev = Array.make (Sysno.max_sysno + 1) None;
    bitmap = Bitset.create (Sysno.max_sysno + 1);
    prev_sig = None }

let capture t ~numbers =
  List.iter
    (fun n ->
      if n >= 0 && n < Array.length t.prev then begin
        let h = Kernel.Uspace.task_get_emulation n in
        t.prev.(n) <- h;
        Bitset.assign t.bitmap n (Option.is_some h)
      end)
    numbers;
  t.prev_sig <- Kernel.Uspace.task_get_emulation_signal ()

let consistent t =
  Bitset.length t.bitmap = Array.length t.prev
  && (let ok = ref true in
      Array.iteri
        (fun i h -> if Bitset.mem t.bitmap i <> (h <> None) then ok := false)
        t.prev;
      !ok)

let captured_handler t n =
  if n >= 0 && n < Array.length t.prev then t.prev.(n) else None

let captured_signal t = t.prev_sig

let down t (env : Envelope.t) =
  Envelope.Stats.note_crossing ();
  let num = Envelope.number env in
  if not (Bitset.mem t.bitmap num) then
    (* no captured handler below: skip the vector probe entirely *)
    Obs.in_layer ~span:(Envelope.span env) "downlink" (fun () ->
        Kernel.Uspace.htg_trap env)
  else
    Obs.in_layer ~span:(Envelope.span env) "downlink" (fun () ->
        match t.prev.(num) with
        | Some handler -> handler env
        | None -> Kernel.Uspace.htg_trap env)

let down_call t c =
  Envelope.Stats.note_agent_call ();
  down t (Envelope.of_call c)

let down_signal t s = Kernel.Uspace.deliver_via t.prev_sig s
