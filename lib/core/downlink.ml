open Abi

(* The fused-chain jump target for slots with no captured handler:
   below the lowest agent sits the kernel. *)
let kernel_entry env = Kernel.Uspace.htg_trap env

type t = {
  mutable prev : (Envelope.t -> Value.res) option array;
  mutable bitmap : Bitset.t;
      (* Same invariant as Proc.emulation: bit [n] set iff [prev.(n)]
         holds a captured handler, so [down] decides "straight to the
         kernel" with one bit test. *)
  mutable chain : (Envelope.t -> Value.res) array;
      (* Fused mirror of [prev], maintained by [capture]: slot [n] is
         the captured closure itself, or [kernel_entry] when nothing is
         captured — the fused [down] jumps through it with no option
         probe (DESIGN.md §3.8). *)
  mutable prev_sig : (int -> unit) option;
}

let create () =
  { prev = Array.make (Sysno.max_sysno + 1) None;
    bitmap = Bitset.create (Sysno.max_sysno + 1);
    chain = Array.make (Sysno.max_sysno + 1) kernel_entry;
    prev_sig = None }

let capture t ~numbers =
  List.iter
    (fun n ->
      if n >= 0 && n < Array.length t.prev then begin
        let h = Kernel.Uspace.task_get_emulation n in
        t.prev.(n) <- h;
        t.chain.(n) <- (match h with Some f -> f | None -> kernel_entry);
        Bitset.assign t.bitmap n (Option.is_some h)
      end)
    numbers;
  t.prev_sig <- Kernel.Uspace.task_get_emulation_signal ()

let consistent t =
  Bitset.length t.bitmap = Array.length t.prev
  && Array.length t.chain = Array.length t.prev
  && (let ok = ref true in
      Array.iteri
        (fun i h ->
          if Bitset.mem t.bitmap i <> (h <> None) then ok := false;
          (match h with
           | Some f -> if t.chain.(i) != f then ok := false
           | None -> if t.chain.(i) != kernel_entry then ok := false))
        t.prev;
      !ok)

let captured_handler t n =
  if n >= 0 && n < Array.length t.prev then t.prev.(n) else None

let captured_signal t = t.prev_sig

let down t (env : Envelope.t) =
  Envelope.Stats.note_crossing ();
  let num = Envelope.number env in
  if Kernel.Uspace.fused_dispatch () then begin
    (* Fused path: one pre-linked jump per crossing.  Tracing-off runs
       also skip the layer-frame closure — [in_layer] with span <= 0 is
       the identity, so eliding it is exact. *)
    let target =
      if num >= 0 && num < Array.length t.chain then t.chain.(num)
      else kernel_entry
    in
    let span = Envelope.span env in
    if span <= 0 then target env
    else Obs.in_layer ~span "downlink" (fun () -> target env)
  end
  else if not (Bitset.mem t.bitmap num) then
    (* no captured handler below: skip the vector probe entirely *)
    Obs.in_layer ~span:(Envelope.span env) "downlink" (fun () ->
        Kernel.Uspace.htg_trap env)
  else
    Obs.in_layer ~span:(Envelope.span env) "downlink" (fun () ->
        match t.prev.(num) with
        | Some handler -> handler env
        | None -> Kernel.Uspace.htg_trap env)

(* agent-originated calls ride a pooled envelope: taken from the
   calling process's record pool, released as soon as the lower layers
   return (an agent that stashes it must [Envelope.retain] it) *)
let down_call t c =
  Envelope.Stats.note_agent_call ();
  let epool =
    match Kernel.Proc.Cur.get () with
    | Some proc -> proc.Kernel.Proc.env_pool
    | None -> None
  in
  let env = Envelope.of_call ?epool c in
  let res = down t env in
  Envelope.release env;
  res

let down_signal t s = Kernel.Uspace.deliver_via t.prev_sig s
