(** The symbolic system call layer (the paper's [symbolic_syscall]).

    The system interface appears as one virtual method per system
    call; the toolkit decodes each intercepted untyped vector and
    invokes the corresponding method.  Every default implementation
    passes the call to the next-lower interface instance, so an agent
    derives from this class and overrides exactly the calls whose
    behaviour it changes — the timex agent, for example, is this class
    plus a new [sys_gettimeofday].

    Out-parameters keep their system-interface shape: [stat] fills a
    [Stat.t option ref], [read] fills the caller's buffer, and the
    methods return the two-register {!Abi.Value.res}. *)

class symbolic_syscall : object
  inherit Numeric.numeric_syscall

  method sys_exit : int -> Abi.Value.res
  method sys_fork : (unit -> int) -> Abi.Value.res
  method sys_read : int -> Bytes.t -> int -> Abi.Value.res
  method sys_write : int -> string -> Abi.Value.res
  method sys_open : string -> int -> int -> Abi.Value.res
  method sys_close : int -> Abi.Value.res
  method sys_wait4 : int -> int -> Abi.Value.res
  method sys_creat : string -> int -> Abi.Value.res
  method sys_link : string -> string -> Abi.Value.res
  method sys_unlink : string -> Abi.Value.res
  method sys_execve :
    string -> string array -> string array -> Abi.Value.res
  method sys_chdir : string -> Abi.Value.res
  method sys_fchdir : int -> Abi.Value.res
  method sys_mknod : string -> int -> int -> Abi.Value.res
  method sys_chmod : string -> int -> Abi.Value.res
  method sys_chown : string -> int -> int -> Abi.Value.res
  method sys_sbrk : int -> Abi.Value.res
  method sys_lseek : int -> int -> int -> Abi.Value.res
  method sys_getpid : unit -> Abi.Value.res
  method sys_setuid : int -> Abi.Value.res
  method sys_getuid : unit -> Abi.Value.res
  method sys_geteuid : unit -> Abi.Value.res
  method sys_alarm : int -> Abi.Value.res
  method sys_access : string -> int -> Abi.Value.res
  method sys_sync : unit -> Abi.Value.res
  method sys_kill : int -> int -> Abi.Value.res
  method sys_stat : string -> Abi.Stat.t option ref -> Abi.Value.res
  method sys_getppid : unit -> Abi.Value.res
  method sys_lstat : string -> Abi.Stat.t option ref -> Abi.Value.res
  method sys_dup : int -> Abi.Value.res
  method sys_pipe : unit -> Abi.Value.res
  method sys_socketpair : unit -> Abi.Value.res
  method sys_socket : unit -> Abi.Value.res
  method sys_bind : int -> string -> Abi.Value.res
  method sys_listen : int -> int -> Abi.Value.res
  method sys_accept : int -> Abi.Value.res
  method sys_connect : int -> string -> Abi.Value.res
  method sys_send : int -> string -> Abi.Value.res
  method sys_recv : int -> Bytes.t -> int -> Abi.Value.res
  method sys_shutdown : int -> int -> Abi.Value.res
  method sys_getegid : unit -> Abi.Value.res
  method sys_sigaction :
    int -> Abi.Value.handler option
    -> Abi.Value.handler option ref option -> Abi.Value.res
  method sys_getgid : unit -> Abi.Value.res
  method sys_sigprocmask : int -> int -> Abi.Value.res
  method sys_sigpending : unit -> Abi.Value.res
  method sys_sigsuspend : int -> Abi.Value.res
  method sys_ioctl : int -> int -> Bytes.t -> Abi.Value.res
  method sys_symlink : string -> string -> Abi.Value.res
  method sys_readlink : string -> Bytes.t -> Abi.Value.res
  method sys_umask : int -> Abi.Value.res
  method sys_fstat : int -> Abi.Stat.t option ref -> Abi.Value.res
  method sys_getpagesize : unit -> Abi.Value.res
  method sys_getpgrp : unit -> Abi.Value.res
  method sys_setpgrp : int -> int -> Abi.Value.res
  method sys_getdtablesize : unit -> Abi.Value.res
  method sys_dup2 : int -> int -> Abi.Value.res
  method sys_fcntl : int -> int -> int -> Abi.Value.res
  method sys_fsync : int -> Abi.Value.res
  method sys_select : int -> int -> int -> Abi.Value.res
  method sys_gettimeofday : (int * int) option ref -> Abi.Value.res
  method sys_getrusage : (int * int) option ref -> Abi.Value.res
  method sys_settimeofday : int -> int -> Abi.Value.res
  method sys_rename : string -> string -> Abi.Value.res
  method sys_truncate : string -> int -> Abi.Value.res
  method sys_ftruncate : int -> int -> Abi.Value.res
  method sys_mkdir : string -> int -> Abi.Value.res
  method sys_rmdir : string -> Abi.Value.res
  method sys_utimes : string -> int -> int -> Abi.Value.res
  method sys_getdirentries : int -> Bytes.t -> Abi.Value.res
  method sys_sleepus : int -> Abi.Value.res
  method sys_getcwd : Bytes.t -> Abi.Value.res

  method unknown_syscall : Abi.Envelope.t -> Abi.Value.res
  (** A number outside the decodable interface; default: pass the
      envelope down unchanged. *)
end
