(** The agent's path to the next-lower instance of the system
    interface.

    When an agent is installed, the loader captures — per intercepted
    syscall number — whatever handler was installed before it (another
    agent's, for stacked configurations like Figure 1-3/1-4 and nested
    transactions).  Calling {!down} routes to that handler, or to the
    kernel via [htg_unix_syscall] when the agent is the lowest one.
    The incoming-signal path chains the same way. *)

type t

val create : unit -> t

val capture : t -> numbers:int list -> unit
(** Record the current emulation handlers for [numbers] (and the
    current signal interposer) as this agent's down path.  Must run in
    the target process, before the agent's own handlers are
    installed. *)

val down : t -> Abi.Envelope.t -> Abi.Value.res
(** Invoke the next-lower system interface instance, handing the same
    envelope down so its memoized typed view survives the crossing. *)

val down_call : t -> Abi.Call.t -> Abi.Value.res
(** Typed convenience over {!down}: wraps [c] in an envelope whose
    typed view is authoritative (encoded only if a lower layer demands
    the raw vector).  The envelope record comes from the calling
    process's pool and is released when the lower layers return — a
    handler that stashes it must [Abi.Envelope.retain] it
    (DESIGN.md §3.8). *)

val captured_handler : t -> int -> (Abi.Envelope.t -> Abi.Value.res) option
(** What {!capture} recorded for one number (used by the loader to
    restore state on uninstall). *)

val captured_signal : t -> (int -> unit) option

val down_signal : t -> int -> unit
(** Deliver a signal to the next level up the stack towards the
    application: the previously installed interposer if any, else the
    application's own handler for that signal (one shared dispatch
    definition, [Kernel.Uspace.deliver_via]). *)

val consistent : t -> bool
(** Runtime check that the interest bitmap and the fused chain
    shadowing the captured vector match it slot-for-slot (the chain by
    physical identity, unset slots pointing at the kernel entry);
    exercised by the property tests. *)
