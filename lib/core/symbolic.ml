open Abi

class symbolic_syscall =
  object (self)
    inherit Numeric.numeric_syscall as super

    (* The numeric -> symbolic mapping: obtain the typed view of the
       envelope and invoke the per-call virtual method (the role played
       by the toolkit-supplied derived numeric_syscall object in the
       paper).  The decode is paid — in codec work and in virtual time
       — only by the first symbolic layer the trap meets; every layer
       below rides the memoized view for free. *)
    method! syscall (env : Envelope.t) : Value.res =
      let fresh = not (Envelope.decoded env) in
      match Envelope.call env with
      | Error Errno.ENOSYS -> self#unknown_syscall env
      | Error e -> Error e
      | Ok call ->
        (* first symbolic layer pays the full decode; lower layers pay
           only the virtual-method dispatch on the memoized view *)
        Kernel.Uspace.cpu_work
          (if fresh then
             Cost_model.symbolic_decode_us
               ~nargs:
                 (match Envelope.nargs env with Some n -> n | None -> 0)
           else Cost_model.numeric_dispatch_us);
        self#dispatch_call call

    method private dispatch_call (call : Call.t) : Value.res =
      match call with
      | Call.Exit code -> self#sys_exit code
      | Call.Fork body -> self#sys_fork body
      | Call.Read (fd, buf, cnt) -> self#sys_read fd buf cnt
      | Call.Write (fd, data) -> self#sys_write fd data
      | Call.Open (path, flags, mode) -> self#sys_open path flags mode
      | Call.Close fd -> self#sys_close fd
      | Call.Wait4 (pid, options) -> self#sys_wait4 pid options
      | Call.Creat (path, mode) -> self#sys_creat path mode
      | Call.Link (existing, path) -> self#sys_link existing path
      | Call.Unlink path -> self#sys_unlink path
      | Call.Execve (path, argv, envp) -> self#sys_execve path argv envp
      | Call.Chdir path -> self#sys_chdir path
      | Call.Fchdir fd -> self#sys_fchdir fd
      | Call.Mknod (path, mode, dev) -> self#sys_mknod path mode dev
      | Call.Chmod (path, mode) -> self#sys_chmod path mode
      | Call.Chown (path, uid, gid) -> self#sys_chown path uid gid
      | Call.Sbrk d -> self#sys_sbrk d
      | Call.Lseek (fd, off, whence) -> self#sys_lseek fd off whence
      | Call.Getpid -> self#sys_getpid ()
      | Call.Setuid u -> self#sys_setuid u
      | Call.Getuid -> self#sys_getuid ()
      | Call.Geteuid -> self#sys_geteuid ()
      | Call.Alarm sec -> self#sys_alarm sec
      | Call.Access (path, bits) -> self#sys_access path bits
      | Call.Sync -> self#sys_sync ()
      | Call.Kill (pid, s) -> self#sys_kill pid s
      | Call.Stat (path, r) -> self#sys_stat path r
      | Call.Getppid -> self#sys_getppid ()
      | Call.Lstat (path, r) -> self#sys_lstat path r
      | Call.Dup fd -> self#sys_dup fd
      | Call.Pipe -> self#sys_pipe ()
      | Call.Socketpair -> self#sys_socketpair ()
      | Call.Socket -> self#sys_socket ()
      | Call.Bind (fd, addr) -> self#sys_bind fd addr
      | Call.Listen (fd, backlog) -> self#sys_listen fd backlog
      | Call.Accept fd -> self#sys_accept fd
      | Call.Connect (fd, addr) -> self#sys_connect fd addr
      | Call.Send (fd, data) -> self#sys_send fd data
      | Call.Recv (fd, buf, cnt) -> self#sys_recv fd buf cnt
      | Call.Shutdown (fd, how) -> self#sys_shutdown fd how
      | Call.Getegid -> self#sys_getegid ()
      | Call.Sigaction (s, h, o) -> self#sys_sigaction s h o
      | Call.Getgid -> self#sys_getgid ()
      | Call.Sigprocmask (how, m) -> self#sys_sigprocmask how m
      | Call.Sigpending -> self#sys_sigpending ()
      | Call.Sigsuspend m -> self#sys_sigsuspend m
      | Call.Ioctl (fd, op, buf) -> self#sys_ioctl fd op buf
      | Call.Symlink (target, path) -> self#sys_symlink target path
      | Call.Readlink (path, buf) -> self#sys_readlink path buf
      | Call.Umask m -> self#sys_umask m
      | Call.Fstat (fd, r) -> self#sys_fstat fd r
      | Call.Getpagesize -> self#sys_getpagesize ()
      | Call.Getpgrp -> self#sys_getpgrp ()
      | Call.Setpgrp (pid, pgrp) -> self#sys_setpgrp pid pgrp
      | Call.Getdtablesize -> self#sys_getdtablesize ()
      | Call.Dup2 (o, n) -> self#sys_dup2 o n
      | Call.Fcntl (fd, cmd, arg) -> self#sys_fcntl fd cmd arg
      | Call.Fsync fd -> self#sys_fsync fd
      | Call.Select (r, w, tmo) -> self#sys_select r w tmo
      | Call.Gettimeofday r -> self#sys_gettimeofday r
      | Call.Getrusage r -> self#sys_getrusage r
      | Call.Settimeofday (sec, usec) -> self#sys_settimeofday sec usec
      | Call.Rename (src, dst) -> self#sys_rename src dst
      | Call.Truncate (path, len) -> self#sys_truncate path len
      | Call.Ftruncate (fd, len) -> self#sys_ftruncate fd len
      | Call.Mkdir (path, mode) -> self#sys_mkdir path mode
      | Call.Rmdir path -> self#sys_rmdir path
      | Call.Utimes (path, atime, mtime) -> self#sys_utimes path atime mtime
      | Call.Getdirentries (fd, buf) -> self#sys_getdirentries fd buf
      | Call.Sleepus us -> self#sys_sleepus us
      | Call.Getcwd buf -> self#sys_getcwd buf

    (* Defaults: take the call's normal action on the next level down.
       fork and execve route through the boilerplate so the agent
       survives both. *)

    method sys_exit code = self#down (Call.Exit code)

    method sys_fork body =
      Boilerplate.do_fork self#downlink
        ~init_child:(fun () -> self#init_child)
        body

    method sys_execve path argv envp =
      Boilerplate.do_execve self#downlink path argv envp

    method sys_read fd buf cnt = self#down (Call.Read (fd, buf, cnt))
    method sys_write fd data = self#down (Call.Write (fd, data))
    method sys_open path flags mode = self#down (Call.Open (path, flags, mode))
    method sys_close fd = self#down (Call.Close fd)
    method sys_wait4 pid options = self#down (Call.Wait4 (pid, options))
    method sys_creat path mode = self#down (Call.Creat (path, mode))
    method sys_link existing path = self#down (Call.Link (existing, path))
    method sys_unlink path = self#down (Call.Unlink path)
    method sys_chdir path = self#down (Call.Chdir path)
    method sys_fchdir fd = self#down (Call.Fchdir fd)
    method sys_mknod path mode dev = self#down (Call.Mknod (path, mode, dev))
    method sys_chmod path mode = self#down (Call.Chmod (path, mode))
    method sys_chown path uid gid = self#down (Call.Chown (path, uid, gid))
    method sys_sbrk d = self#down (Call.Sbrk d)
    method sys_lseek fd off whence = self#down (Call.Lseek (fd, off, whence))
    method sys_getpid () = self#down Call.Getpid
    method sys_setuid u = self#down (Call.Setuid u)
    method sys_getuid () = self#down Call.Getuid
    method sys_geteuid () = self#down Call.Geteuid
    method sys_alarm sec = self#down (Call.Alarm sec)
    method sys_access path bits = self#down (Call.Access (path, bits))
    method sys_sync () = self#down Call.Sync
    method sys_kill pid s = self#down (Call.Kill (pid, s))
    method sys_stat path r = self#down (Call.Stat (path, r))
    method sys_getppid () = self#down Call.Getppid
    method sys_lstat path r = self#down (Call.Lstat (path, r))
    method sys_dup fd = self#down (Call.Dup fd)
    method sys_pipe () = self#down Call.Pipe
    method sys_socketpair () = self#down Call.Socketpair
    method sys_socket () = self#down Call.Socket
    method sys_bind fd addr = self#down (Call.Bind (fd, addr))
    method sys_listen fd backlog = self#down (Call.Listen (fd, backlog))
    method sys_accept fd = self#down (Call.Accept fd)
    method sys_connect fd addr = self#down (Call.Connect (fd, addr))
    method sys_send fd data = self#down (Call.Send (fd, data))
    method sys_recv fd buf cnt = self#down (Call.Recv (fd, buf, cnt))
    method sys_shutdown fd how = self#down (Call.Shutdown (fd, how))
    method sys_getegid () = self#down Call.Getegid
    method sys_sigaction s h o = self#down (Call.Sigaction (s, h, o))
    method sys_getgid () = self#down Call.Getgid
    method sys_sigprocmask how m = self#down (Call.Sigprocmask (how, m))
    method sys_sigpending () = self#down Call.Sigpending
    method sys_sigsuspend m = self#down (Call.Sigsuspend m)
    method sys_ioctl fd op buf = self#down (Call.Ioctl (fd, op, buf))
    method sys_symlink target path = self#down (Call.Symlink (target, path))
    method sys_readlink path buf = self#down (Call.Readlink (path, buf))
    method sys_umask m = self#down (Call.Umask m)
    method sys_fstat fd r = self#down (Call.Fstat (fd, r))
    method sys_getpagesize () = self#down Call.Getpagesize
    method sys_getpgrp () = self#down Call.Getpgrp
    method sys_setpgrp pid pgrp = self#down (Call.Setpgrp (pid, pgrp))
    method sys_getdtablesize () = self#down Call.Getdtablesize
    method sys_dup2 o n = self#down (Call.Dup2 (o, n))
    method sys_fcntl fd cmd arg = self#down (Call.Fcntl (fd, cmd, arg))
    method sys_fsync fd = self#down (Call.Fsync fd)
    method sys_select rmask wmask tmo = self#down (Call.Select (rmask, wmask, tmo))
    method sys_gettimeofday r = self#down (Call.Gettimeofday r)
    method sys_getrusage r = self#down (Call.Getrusage r)
    method sys_settimeofday sec usec =
      self#down (Call.Settimeofday (sec, usec))
    method sys_rename src dst = self#down (Call.Rename (src, dst))
    method sys_truncate path len = self#down (Call.Truncate (path, len))
    method sys_ftruncate fd len = self#down (Call.Ftruncate (fd, len))
    method sys_mkdir path mode = self#down (Call.Mkdir (path, mode))
    method sys_rmdir path = self#down (Call.Rmdir path)
    method sys_utimes path atime mtime =
      self#down (Call.Utimes (path, atime, mtime))
    method sys_getdirentries fd buf = self#down (Call.Getdirentries (fd, buf))
    method sys_sleepus us = self#down (Call.Sleepus us)
    method sys_getcwd buf = self#down (Call.Getcwd buf)

    method unknown_syscall (env : Envelope.t) : Value.res = super#syscall env
  end
