open Abi

class numeric_syscall =
  object (self)
    val dl = Downlink.create ()

    (* Interests live in a bitset, so registering is O(1) however many
       numbers are already registered (the old list representation made
       register-everything quadratic in the table size) and duplicates
       are absorbed for free. *)
    val interests = Bitset.create (Sysno.max_sysno + 1)

    method downlink = dl
    method down c = Downlink.down_call dl c
    method agent_name = "agent"

    (* Transparency contract: the default agent declares no visible
       delta — everything the application observes at the system
       interface is preserved.  Agents that lawfully change observables
       (timex, crypt, union, remap, faultinject, sandbox, …) override
       this; conformance checking holds every stack to exactly what it
       declares. *)
    method declared_delta : Delta.t = Delta.none

    method register_interest n =
      (* any number inside the interception vector may be registered —
         including numbers the native interface does not define, which
         is how foreign-ABI emulation agents catch their calls *)
      Bitset.set interests n

    method register_interest_range lo hi =
      for n = lo to hi do
        self#register_interest n
      done

    method register_interest_all =
      List.iter self#register_interest Sysno.all

    method interests = Bitset.to_list interests

    method init (_argv : string array) = ()
    method init_child = ()

    method syscall (env : Envelope.t) : Value.res =
      (* Per-level dispatch charge.  Under fused dispatch this usually
         resolves inline (no effect perform) — see the CPU-charge fast
         path in [Kernel.Uspace]; the virtual cost is identical either
         way. *)
      Kernel.Uspace.cpu_work Cost_model.numeric_dispatch_us;
      let num = Envelope.number env in
      if num = Sysno.sys_fork then
        match Envelope.call env with
        | Ok (Call.Fork body) ->
          Boilerplate.do_fork dl ~init_child:(fun () -> self#init_child) body
        | Ok _ -> Error Errno.EFAULT
        | Error e -> Error e
      else if num = Sysno.sys_execve then
        match Envelope.call env with
        | Ok (Call.Execve (path, argv, envp)) ->
          Boilerplate.do_execve dl path argv envp
        | Ok _ -> Error Errno.EFAULT
        | Error e -> Error e
      else Downlink.down dl env

    method signal_handler (s : int) = Downlink.down_signal dl s
  end
