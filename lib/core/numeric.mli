(** The numeric system call layer — the lowest toolkit layer agents
    derive from (the paper's [numeric_syscall] class).

    The system interface appears as a single entry point accepting a
    syscall number and a vector of untyped arguments.  The default
    implementation of every operation is pass-through: an agent built
    directly on this class overrides [syscall] (and, if interested,
    [signal_handler]), registers the numbers it wants with
    [register_interest], and inherits correct behaviour for everything
    else — including surviving [fork] and [execve], which the
    boilerplate beneath this class takes care of. *)

class numeric_syscall : object
  method syscall : Abi.Envelope.t -> Abi.Value.res
  (** Called for every intercepted system call, carried in a
      decode-once envelope.  The default implementation handles the
      fork/execve boilerplate and passes everything else down
      unchanged — same envelope, no codec work. *)

  method signal_handler : int -> unit
  (** Called for every incoming signal the application has a handler
      for.  Default: forward to the next level up. *)

  method init : string array -> unit
  (** One-time initialisation with the agent's own argument vector,
      called by the loader after installation. *)

  method init_child : unit
  (** Runs in a freshly forked child before any application code. *)

  method register_interest : int -> unit
  method register_interest_range : int -> int -> unit
  (** Inclusive range of syscall numbers. *)

  method register_interest_all : unit

  method interests : int list
  (** The numbers registered so far (the loader adds the boilerplate
      minimum — fork, execve, exit — itself). *)

  method downlink : Downlink.t
  (** The agent's path to the next-lower interface instance. *)

  method down : Abi.Call.t -> Abi.Value.res
  (** Typed pass-down convenience. *)

  method agent_name : string
  (** For diagnostics; default ["agent"]. *)

  method declared_delta : Abi.Delta.t
  (** Every way this agent may lawfully change what the application
      observes at the system interface (the transparency contract,
      machine-checkable form).  Default {!Abi.Delta.none}: full
      transparency.  [Conformance.check] composes a stack's
      declarations, normalizes the bare and interposed syscall
      signatures by them, and flags any residual divergence. *)
end
