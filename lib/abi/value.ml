type handler =
  | H_default
  | H_ignore
  | H_fn of (int -> unit)

type t =
  | Nil
  | Int of int
  | Str of string
  | Buf of Bytes.t
  | Strs of string array
  | Body of (unit -> int)
  | Stat_ref of Stat.t option ref
  | Tv_ref of (int * int) option ref
  | Handler of handler
  | Handler_ref of handler option ref

type ret = { r0 : int; r1 : int }

let ret ?(r1 = 0) r0 = Ok { r0; r1 }
let ok = ret 0

type res = (ret, Errno.t) result

type wire = { mutable num : int; mutable args : t array }

(* Per-process free lists of wire records, so the trap boundary can
   reuse a vector instead of allocating one per call.  The pool only
   ever sees wires whose envelope owned them exclusively (never handed
   out raw, never rewritten) — Envelope.release enforces that — and
   every recycled wire is scrubbed here so a stale [Buf]/[Str]/[Body]
   reference can neither leak data into the next trap nor pin dead
   objects against the GC. *)
module Pool = struct
  (* Array-backed stack rather than a list: a warm take/recycle pair
     must allocate nothing at all (a cons cell per recycle, or an
     option per take, would cost more than the recycled wire saves on
     small calls). *)
  type pool = {
    mutable stack : wire array;
    mutable len : int;
    capacity : int;
  }

  type t = pool

  let dummy = { num = 0; args = [||] }

  module Stats = struct
    type snapshot = {
      hits : int;      (* takes served from the free list *)
      misses : int;    (* takes that fell back to allocation *)
      recycled : int;  (* wires returned for reuse *)
      dropped : int;   (* returns rejected by a full pool *)
    }

    (* A counter set aggregating over every pool of one kernel shard
       (DESIGN.md §3.6).  The shard installs its counters on entry; the
       pools below bump whichever set is installed.  A default set
       exists from program start for pool use outside any kernel. *)
    type t = {
      mutable c_hits : int;
      mutable c_misses : int;
      mutable c_recycled : int;
      mutable c_dropped : int;
    }

    let create () = { c_hits = 0; c_misses = 0; c_recycled = 0; c_dropped = 0 }

    let cur : t ref = ref (create ())
    let install c = cur := c
    let installed () = !cur

    let snapshot_of c =
      { hits = c.c_hits; misses = c.c_misses;
        recycled = c.c_recycled; dropped = c.c_dropped }

    let reset_of c =
      c.c_hits <- 0; c.c_misses <- 0; c.c_recycled <- 0; c.c_dropped <- 0

    let diff before after =
      { hits = after.hits - before.hits;
        misses = after.misses - before.misses;
        recycled = after.recycled - before.recycled;
        dropped = after.dropped - before.dropped }

    let pp fmt s =
      Format.fprintf fmt "hits=%d misses=%d recycled=%d dropped=%d"
        s.hits s.misses s.recycled s.dropped

    let to_json s =
      Obs.Json.Obj
        [ ("hits", Obs.Json.Int s.hits);
          ("misses", Obs.Json.Int s.misses);
          ("recycled", Obs.Json.Int s.recycled);
          ("dropped", Obs.Json.Int s.dropped) ]
  end

  let create ?(capacity = 64) () =
    if capacity < 0 then invalid_arg "Pool.create";
    { stack = Array.make capacity dummy; len = 0; capacity }

  let size p = p.len

  let take p =
    let c = !Stats.cur in
    if p.len = 0 then begin
      c.Stats.c_misses <- c.Stats.c_misses + 1;
      { num = 0; args = [||] }
    end
    else begin
      p.len <- p.len - 1;
      let w = p.stack.(p.len) in
      p.stack.(p.len) <- dummy;
      c.Stats.c_hits <- c.Stats.c_hits + 1;
      w
    end

  let recycle p w =
    let c = !Stats.cur in
    if p.len >= p.capacity then c.Stats.c_dropped <- c.Stats.c_dropped + 1
    else begin
      w.num <- 0;
      Array.fill w.args 0 (Array.length w.args) Nil;
      p.stack.(p.len) <- w;
      p.len <- p.len + 1;
      c.Stats.c_recycled <- c.Stats.c_recycled + 1
    end
end

let truncate_str s =
  if String.length s <= 32 then s else String.sub s 0 29 ^ "..."

let pp ppf = function
  | Nil -> Format.pp_print_string ppf "NULL"
  | Int n -> Format.pp_print_int ppf n
  | Str s -> Format.fprintf ppf "%S" (truncate_str s)
  | Buf b -> Format.fprintf ppf "0x%x[%d]" (Hashtbl.hash b land 0xffffff)
               (Bytes.length b)
  | Strs a -> Format.fprintf ppf "[|%s|]"
                (String.concat "; "
                   (Array.to_list (Array.map truncate_str a)))
  | Body _ -> Format.pp_print_string ppf "<text>"
  | Stat_ref _ -> Format.pp_print_string ppf "<statbuf>"
  | Tv_ref _ -> Format.pp_print_string ppf "<timeval>"
  | Handler H_default -> Format.pp_print_string ppf "SIG_DFL"
  | Handler H_ignore -> Format.pp_print_string ppf "SIG_IGN"
  | Handler (H_fn _) -> Format.pp_print_string ppf "<handler>"
  | Handler_ref _ -> Format.pp_print_string ppf "<ohandler>"

let pp_wire ppf w =
  Format.fprintf ppf "syscall(%d" w.num;
  Array.iter (fun v -> Format.fprintf ppf ", %a" pp v) w.args;
  Format.fprintf ppf ")"

let pp_res ppf = function
  | Ok { r0; r1 = 0 } -> Format.fprintf ppf "%d" r0
  | Ok { r0; r1 } -> Format.fprintf ppf "(%d, %d)" r0 r1
  | Error e -> Format.fprintf ppf "-1 %a (%s)" Errno.pp e (Errno.message e)

module Get = struct
  let arg w i =
    if i >= 0 && i < Array.length w.args then Some w.args.(i) else None

  let int w i =
    match arg w i with Some (Int n) -> Ok n | _ -> Error Errno.EFAULT

  let str w i =
    match arg w i with Some (Str s) -> Ok s | _ -> Error Errno.EFAULT

  let buf w i =
    match arg w i with Some (Buf b) -> Ok b | _ -> Error Errno.EFAULT

  let strs w i =
    match arg w i with Some (Strs a) -> Ok a | _ -> Error Errno.EFAULT

  let body w i =
    match arg w i with Some (Body f) -> Ok f | _ -> Error Errno.EFAULT

  let stat_ref w i =
    match arg w i with Some (Stat_ref r) -> Ok r | _ -> Error Errno.EFAULT

  let tv_ref w i =
    match arg w i with Some (Tv_ref r) -> Ok r | _ -> Error Errno.EFAULT

  let handler_opt w i =
    match arg w i with
    | Some (Handler h) -> Ok (Some h)
    | Some Nil | None -> Ok None
    | _ -> Error Errno.EFAULT

  let handler_ref_opt w i =
    match arg w i with
    | Some (Handler_ref r) -> Ok (Some r)
    | Some Nil | None -> Ok None
    | _ -> Error Errno.EFAULT
end

let ( let* ) = Result.bind
