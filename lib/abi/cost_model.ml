let intercept_us = 30
let htg_overhead_us = 37
let numeric_dispatch_us = 3
let symbolic_decode_us ~nargs = 73 + (12 * nargs)
let pathname_layer_us = 18
let descriptor_layer_us = 12
let directory_layer_us = 9
let agent_fork_extra_us = 9_500
let agent_execve_extra_us = 9_800

let io_chunk_bytes = 256
let io_chunk_us = 77

let namei_component_us = 125

let path_components p =
  let parts = String.split_on_char '/' p in
  List.length (List.filter (fun s -> s <> "" && s <> ".") parts)

let io_us bytes =
  if bytes <= 0 then 0
  else (bytes + io_chunk_bytes - 1) / io_chunk_bytes * io_chunk_us

let namei_us p = Cost_model_base.namei_base_us
                 + (path_components p * namei_component_us)

let syscall_us (c : Call.t) =
  let open Cost_model_base in
  match c with
  | Getpid | Getppid | Getuid | Geteuid | Getgid | Getegid | Umask _
  | Getpagesize | Getpgrp | Getdtablesize | Sbrk _ -> trivial_us
  | Gettimeofday _ -> 47
  | Getrusage _ -> 60
  | Settimeofday _ | Setuid _ | Setpgrp _ | Alarm _ -> 50
  | Fstat _ -> 120
  | Read (_, _, n) -> rw_base_us + io_us n
  | Write (_, data) -> rw_base_us + io_us (String.length data)
  | Stat (p, _) | Lstat (p, _) -> 142 + (path_components p * namei_component_us)
  | Open (p, _, _) | Creat (p, _) -> namei_us p + 80
  | Access (p, _) -> namei_us p + 40
  | Chmod (p, _) | Chown (p, _, _) | Utimes (p, _, _) -> namei_us p + 90
  | Truncate (p, _) -> namei_us p + 110
  | Unlink p | Rmdir p -> namei_us p + 160
  | Link (p, q) | Rename (p, q) -> namei_us p + namei_us q + 160
  | Symlink (_, p) | Mkdir (p, _) | Mknod (p, _, _) -> namei_us p + 200
  | Readlink (p, _) -> namei_us p + 60
  | Chdir p -> namei_us p + 40
  | Execve (p, _, _) -> namei_us p + 9_300
  | Fork _ -> 10_000
  | Exit _ -> 200
  | Wait4 _ -> 100
  | Close _ -> 60
  | Lseek _ -> 40
  | Dup _ | Dup2 _ -> 50
  | Pipe -> 300
  | Socketpair -> 450
  | Socket -> 350
  | Bind _ -> 110
  | Listen _ -> 90
  | Accept _ -> 420
  | Connect _ -> 480
  | Send (_, data) -> rw_base_us + io_us (String.length data)
  | Recv (_, _, n) -> rw_base_us + io_us n
  | Shutdown _ -> 70
  | Fchdir _ -> 45
  | Kill _ -> 80
  | Sigaction _ -> 60
  | Sigprocmask _ | Sigpending -> 40
  | Sigsuspend _ -> 60
  | Ioctl _ -> 100
  | Fcntl _ -> 40
  | Fsync _ -> 500
  | Select _ -> 140
  | Sync -> 1_000
  | Ftruncate _ -> 110
  | Getdirentries (_, b) -> 180 + io_us (Bytes.length b) / 4
  | Sleepus _ -> 60
  | Getcwd _ -> 300

let paper_c_call_us = 1.22
let paper_virtual_call_us = 1.94
