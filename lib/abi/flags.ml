module Open = struct
  let o_rdonly = 0x0000
  let o_wronly = 0x0001
  let o_rdwr = 0x0002
  let o_nonblock = 0x0004
  let o_append = 0x0008
  let o_creat = 0x0200
  let o_trunc = 0x0400
  let o_excl = 0x0800

  let accmode f = f land 0x3

  let readable f =
    match accmode f with 0 | 2 -> true | _ -> false

  let writable f =
    match accmode f with 1 | 2 -> true | _ -> false

  let pp ppf f =
    let acc =
      match accmode f with
      | 0 -> "O_RDONLY"
      | 1 -> "O_WRONLY"
      | 2 -> "O_RDWR"
      | _ -> "O_BADACC"
    in
    let opt = [
      o_nonblock, "O_NONBLOCK"; o_append, "O_APPEND"; o_creat, "O_CREAT";
      o_trunc, "O_TRUNC"; o_excl, "O_EXCL" ] in
    let parts =
      acc
      :: List.filter_map
           (fun (bit, n) -> if f land bit <> 0 then Some n else None)
           opt
    in
    Format.pp_print_string ppf (String.concat "|" parts)
end

module Mode = struct
  let ifmt = 0o170000
  let ifreg = 0o100000
  let ifdir = 0o040000
  let iflnk = 0o120000
  let ifchr = 0o020000
  let ifblk = 0o060000
  let ififo = 0o010000
  let ifsock = 0o140000

  let isuid = 0o4000
  let isgid = 0o2000
  let isvtx = 0o1000

  let irusr = 0o400
  let iwusr = 0o200
  let ixusr = 0o100
  let irgrp = 0o040
  let iwgrp = 0o020
  let ixgrp = 0o010
  let iroth = 0o004
  let iwoth = 0o002
  let ixoth = 0o001

  let perm_bits m = m land 0o7777
  let kind_bits m = m land ifmt
  let is_reg m = kind_bits m = ifreg
  let is_dir m = kind_bits m = ifdir
  let is_lnk m = kind_bits m = iflnk
  let is_chr m = kind_bits m = ifchr
  let is_fifo m = kind_bits m = ififo
  let is_sock m = kind_bits m = ifsock

  let to_ls_string m =
    let kind =
      match kind_bits m with
      | k when k = ifdir -> 'd'
      | k when k = iflnk -> 'l'
      | k when k = ifchr -> 'c'
      | k when k = ifblk -> 'b'
      | k when k = ififo -> 'p'
      | k when k = ifsock -> 's'
      | _ -> '-'
    in
    let bit b ch = if m land b <> 0 then ch else '-' in
    let buf = Bytes.create 10 in
    Bytes.set buf 0 kind;
    Bytes.set buf 1 (bit irusr 'r');
    Bytes.set buf 2 (bit iwusr 'w');
    Bytes.set buf 3 (if m land isuid <> 0 then 's' else bit ixusr 'x');
    Bytes.set buf 4 (bit irgrp 'r');
    Bytes.set buf 5 (bit iwgrp 'w');
    Bytes.set buf 6 (if m land isgid <> 0 then 's' else bit ixgrp 'x');
    Bytes.set buf 7 (bit iroth 'r');
    Bytes.set buf 8 (bit iwoth 'w');
    Bytes.set buf 9 (if m land isvtx <> 0 then 't' else bit ixoth 'x');
    Bytes.to_string buf
end

module Seek = struct
  let set = 0
  let cur = 1
  let end_ = 2
end

module Fcntl = struct
  let f_dupfd = 0
  let f_getfd = 1
  let f_setfd = 2
  let f_getfl = 3
  let f_setfl = 4
  let fd_cloexec = 1
end

module Wait = struct
  let wnohang = 1
  let wuntraced = 2

  let exit_status code = (code land 0xff) lsl 8
  let sig_status s = s land 0x7f
  let stop_status s = ((s land 0xff) lsl 8) lor 0o177

  let wifstopped st = st land 0o177 = 0o177
  let wstopsig st = (st lsr 8) land 0xff
  let wifexited st = st land 0x7f = 0 && not (wifstopped st)
  let wexitstatus st = (st lsr 8) land 0xff
  let wifsignaled st = st land 0x7f <> 0 && not (wifstopped st)
  let wtermsig st = st land 0x7f
end

module Shut = struct
  let rd = 0
  let wr = 1
  let rdwr = 2
end

module Sighow = struct
  let sig_block = 1
  let sig_unblock = 2
  let sig_setmask = 3
end

module Access = struct
  let f_ok = 0
  let r_ok = 4
  let w_ok = 2
  let x_ok = 1
end

module Ioctl = struct
  let fionread = 0x4004667f
  let tiocgwinsz = 0x40087468
  let tiocisatty = 0x2000745e
end
