(** Decode-once call envelopes.

    A trap crosses the interception stack as an {!t}: the untyped
    {!Value.wire} vector and a lazily-memoized typed {!Call.t} view of
    it travel together, so that however many agents are stacked between
    the application and the kernel, the ABI conversion work is done at
    most once in each direction.

    Origins and their invariants:

    - {!of_wire}: an untyped vector (the application trap boundary, a
      foreign-ABI agent's output).  The typed view materializes on the
      first {!call} and is memoized; every layer below rides it free.
    - {!of_call}: a typed call built by agent or toolkit code on the
      way down.  The typed view is authoritative and the encoding is
      {e dirty} (absent): {!wire} rebuilds it on demand, which only
      happens when a layer actually inspects the raw vector.
    - {!at_boundary}: a typed call crossing the application/system
      boundary.  Per the paper, that boundary is the untyped numeric
      form, so the call is encoded immediately and the typed view is
      deliberately dropped — interposed agents see exactly the wire
      form the application emitted.

    So: at any stacking depth a trap pays at most one decode (at the
    first symbolic layer, or in the kernel when nothing intercepts)
    and re-encodes only when some layer genuinely needs the raw vector
    after a rewrite.  {!Stats} counts the codec work per kernel shard
    so the invariant is measured (bench ablation 3, test suite) rather
    than asserted.

    {b Lifetime and pooling} (DESIGN.md §3.8): both the wire record
    ({!Value.Pool}) and the envelope record itself ({!Pool}) can come
    from per-process free lists.  The contract is the same for both: a
    record recycles on {!release} only while the trap still owns it
    exclusively — never once the raw wire was handed out
    ({!wire}/{!peek_wire} mark the envelope {e exposed}, which also
    covers rewritten envelopes, since forcing the wire of a dirty
    envelope is the rewrite), and never once an agent declared a stash
    with {!retain}.  Recycled records are scrubbed before reuse. *)

type t

(** {1 Record pooling}

    Free lists of envelope records, one per process, feeding
    {!of_call} and {!at_boundary}.  Same design as {!Value.Pool} for
    wires: array-backed stack so a warm take/recycle pair allocates
    nothing, scrub-on-recycle so a stale view or wire can neither leak
    into the next trap nor pin dead objects against the GC, and a
    shard-owned counter set ([Kernel.env_pool_stats], the
    [env_pool] metrics block). *)
module Pool : sig
  type t

  val create : ?capacity:int -> unit -> t
  (** A fresh, empty pool (default capacity 64 records). *)

  val size : t -> int
  (** Records currently on the free list. *)

  (** Counters aggregating over every envelope pool of one kernel
      shard; mirrors {!Value.Pool.Stats}. *)
  module Stats : sig
    type snapshot = {
      hits : int;      (** takes served from the free list *)
      misses : int;    (** takes that fell back to allocation *)
      recycled : int;  (** records returned for reuse *)
      dropped : int;   (** returns rejected by a full pool *)
    }

    type t

    val create : unit -> t
    val install : t -> unit
    val installed : unit -> t
    val snapshot_of : t -> snapshot
    val reset_of : t -> unit
    val diff : snapshot -> snapshot -> snapshot
    val pp : Format.formatter -> snapshot -> unit
    val to_json : snapshot -> Obs.Json.t
  end
end

(** {1 Construction} *)

val of_wire : Value.wire -> t
(** Wrap an untyped vector; the typed view is decoded lazily.  Born
    {e exposed} (the caller holds the wire), so never recycles. *)

val of_call : ?epool:Pool.t -> Call.t -> t
(** Wrap a typed call; the wire form is encoded lazily (the envelope
    starts {!dirty}).  This is what agents and the toolkit use to send
    new or rewritten calls down the stack.  With [epool], the record
    itself comes off the free list and {!release} returns it. *)

val at_boundary : ?pool:Value.Pool.t -> ?epool:Pool.t -> Call.t -> t
(** Encode a typed call for the application trap boundary: the wire
    form is materialized now (and counted), the typed view dropped.
    Used by the C-library stubs, where the ABI contract is untyped.

    With [pool] (the calling process's wire pool), the wire record is
    taken from the free list when one is available and refilled in
    place ([Call.encode_into]); with [epool], the envelope record is
    pooled the same way; {!release} returns both after the trap.
    Without the pools the envelope never recycles. *)

val retain : t -> unit
(** Declare that this envelope escapes the trap that carried it: a
    layer is keeping the record past the trap boundary (a trace sink's
    deferred formatter, a replay journal, an obs tap).  {!release}
    then leaves record and wire entirely to the GC, so the stash stays
    readable forever.  Irreversible. *)

val retained : t -> bool

val release : t -> unit
(** Declare the trap that carried this envelope complete and recycle
    what it still owns exclusively: the wire back to the
    {!Value.Pool} it came from, and the record back to the {!Pool} it
    came from — but only when the envelope was never handed out raw
    ({!wire} / {!peek_wire} mark it {e exposed}; that includes every
    rewritten envelope) and never {!retain}ed.  In every other case
    this is a no-op and the GC takes over — correctness over reuse.
    Idempotent; after a successful release the record is scrubbed and
    must not be touched again (a stale reference reads the {e next}
    trap's call, which is exactly what {!retain} exists to prevent). *)

(** {1 The two views} *)

val number : t -> int
(** The system call number; always available without codec work. *)

val call : t -> (Call.t, Errno.t) result
(** The typed view, decoding (once) if necessary.  Fails with [ENOSYS]
    for an unknown number, [EFAULT] for malformed arguments; the
    failure itself is memoized. *)

val wire : t -> Value.wire
(** The untyped view, encoding (once) if necessary. *)

val peek_wire : t -> Value.wire option
(** The wire form only if already materialized — never encodes. *)

val nargs : t -> int option
(** Arity of the wire form, if materialized. *)

val shape : t -> string
(** The {!Shape} classification of the argument vector, computed from
    whichever view is already materialized ([Shape] guarantees both
    give the same string).  Unlike {!peek_wire} this does not mark the
    wire exposed, and it never performs (or counts) codec work — the
    signature tap must not perturb what it measures.  ["?"] only for
    an undecodable envelope with no wire, which cannot arise on the
    trap path. *)

val decoded : t -> bool
(** Whether the typed view has been materialized (true from birth for
    {!of_call} envelopes).  A layer about to pay virtual decode cost
    checks this first: memoized views are free. *)

val dirty : t -> bool
(** Whether the typed view is authoritative but not (re-)encoded: a
    {!wire} on a dirty envelope performs real encode work. *)

val pp : Format.formatter -> t -> unit
(** Renders the typed view when available, the raw vector otherwise. *)

(** {1 Span attribution}

    Every envelope carries the [Obs] span id of the trap it belongs to
    (0 when tracing is off), stamped at construction from
    [Obs.current ()] and inherited by envelopes agents build mid-trap
    via {!of_call}.  Codec work on the envelope — the decode in
    {!call}, the encodes in {!wire} and {!at_boundary} — is attributed
    to whichever layer frame is innermost on that span when it
    happens, which is what gives bench its per-layer codec table. *)

val span : t -> int
val set_span : t -> int -> unit
(** Normally only [Uspace] re-stamps an envelope, when it opens the
    span {e after} the envelope was built (the re-entrant [trap] entry
    point). *)

(** {1 Codec accounting}

    Counters over every envelope of one kernel shard, bumped only when
    real codec work happens (memoized hits are free).  A live counter
    set ({!Stats.t}) is owned by its [Kernel.t] and installed whenever
    that shard runs (DESIGN.md §3.6), so two kernels in one process
    account independently; a default set is installed at program start
    for envelope use outside any kernel.  The bench harness and the
    test suite take {!Stats.snapshot}s around a workload and check
    invariants on the {!Stats.diff}: e.g. under a stack of null
    symbolic agents, [decodes = traps] exactly — one decode per
    intercepted trap, at any depth. *)
module Stats : sig
  type snapshot = {
    traps : int;         (** application-level trap entries *)
    intercepted : int;   (** traps routed through the generic handler
                             vector (an option probe per trap) *)
    fused : int;         (** traps routed through a fused closure
                             chain — the generic vector never probed *)
    fast_path : int;     (** traps dismissed by the interest bitmap
                             without probing the handler vector *)
    decodes : int;       (** wire → typed materializations *)
    encodes : int;       (** typed → wire materializations *)
    crossings : int;     (** envelope handed down one stack layer *)
    agent_calls : int;   (** envelopes originated by agent/toolkit code *)
  }

  type t
  (** A live counter set (one per kernel shard). *)

  val create : unit -> t
  (** A fresh, zeroed set. *)

  val install : t -> unit
  (** Make [c] the set envelope codec work bumps.  [Kernel] installs
      the running shard's set on entry; agent and test code should not
      normally need this. *)

  val installed : unit -> t
  (** The set currently receiving counts. *)

  val snapshot_of : t -> snapshot
  (** Read a specific shard's counters ([Kernel.codec_stats] is
      [snapshot_of] on the kernel's own set). *)

  val reset_of : t -> unit
  (** Zero a set you own — e.g. a scratch set under test.  The old
      mid-session hygiene problem is structurally gone: resetting one
      shard's counters cannot disturb another shard's open measurement
      window.  Within a shard, still prefer {!diff} over zeroing. *)

  val diff : snapshot -> snapshot -> snapshot
  (** [diff before after]: counts in the window between two snapshots.

      {b Contract} (updates the PR 2 note): this remains the way to
      scope counters to a workload.  Per-shard ownership removed the
      cross-session footgun — a reset in one shard can no longer skew
      another's window — but within a single shard a mid-session
      [reset_of] still discards partial codec work of open traps, so
      measure with snapshot pairs, not zeroing. *)

  val pp : Format.formatter -> snapshot -> unit

  val to_json : snapshot -> Obs.Json.t
  (** The ["codec"] block of [Kernel.metrics_json] and [/obs/metrics]
      — notably the [fast_path] and [fused] counters next to the span
      metrics. *)

  (** {2 Attribution hooks} — called by the kernel stubs and the
      toolkit's down path; not meant for agent code. *)

  val note_trap : intercepted:bool -> unit

  val note_trap_chained : unit -> unit
  (** A trap dispatched through a fused closure chain: counted in
      [traps] and [fused], never in [intercepted] — together with an
      [intercepted] count of zero this is the proof that the generic
      vector is never probed on the fused path. *)

  val note_trap_fast : unit -> unit
  (** A trap the interest bitmap dismissed: counted in [traps] and
      [fast_path], never in [intercepted]. *)

  val note_crossing : unit -> unit
  val note_agent_call : unit -> unit
end
