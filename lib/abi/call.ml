open Value

type t =
  | Exit of int
  | Fork of (unit -> int)
  | Read of int * Bytes.t * int
  | Write of int * string
  | Open of string * int * int
  | Close of int
  | Wait4 of int * int
  | Creat of string * int
  | Link of string * string
  | Unlink of string
  | Execve of string * string array * string array
  | Chdir of string
  | Fchdir of int
  | Mknod of string * int * int
  | Chmod of string * int
  | Chown of string * int * int
  | Sbrk of int
  | Lseek of int * int * int
  | Getpid
  | Setuid of int
  | Getuid
  | Geteuid
  | Alarm of int
  | Access of string * int
  | Sync
  | Kill of int * int
  | Stat of string * Stat.t option ref
  | Getppid
  | Lstat of string * Stat.t option ref
  | Dup of int
  | Pipe
  | Socketpair
  | Getegid
  | Sigaction of int * handler option * handler option ref option
  | Getgid
  | Sigprocmask of int * int
  | Sigpending
  | Sigsuspend of int
  | Ioctl of int * int * Bytes.t
  | Symlink of string * string
  | Readlink of string * Bytes.t
  | Umask of int
  | Fstat of int * Stat.t option ref
  | Getpagesize
  | Getpgrp
  | Setpgrp of int * int
  | Getdtablesize
  | Dup2 of int * int
  | Fcntl of int * int * int
  | Fsync of int
  | Socket
  | Bind of int * string
  | Listen of int * int
  | Accept of int
  | Connect of int * string
  | Send of int * string
  | Recv of int * Bytes.t * int
  | Shutdown of int * int
  | Select of int * int * int
  | Gettimeofday of (int * int) option ref
  | Getrusage of (int * int) option ref
  | Settimeofday of int * int
  | Rename of string * string
  | Truncate of string * int
  | Ftruncate of int * int
  | Mkdir of string * int
  | Rmdir of string
  | Utimes of string * int * int
  | Getdirentries of int * Bytes.t
  | Sleepus of int
  | Getcwd of Bytes.t

let number = function
  | Exit _ -> Sysno.sys_exit
  | Fork _ -> Sysno.sys_fork
  | Read _ -> Sysno.sys_read
  | Write _ -> Sysno.sys_write
  | Open _ -> Sysno.sys_open
  | Close _ -> Sysno.sys_close
  | Wait4 _ -> Sysno.sys_wait4
  | Creat _ -> Sysno.sys_creat
  | Link _ -> Sysno.sys_link
  | Unlink _ -> Sysno.sys_unlink
  | Execve _ -> Sysno.sys_execve
  | Chdir _ -> Sysno.sys_chdir
  | Fchdir _ -> Sysno.sys_fchdir
  | Mknod _ -> Sysno.sys_mknod
  | Chmod _ -> Sysno.sys_chmod
  | Chown _ -> Sysno.sys_chown
  | Sbrk _ -> Sysno.sys_sbrk
  | Lseek _ -> Sysno.sys_lseek
  | Getpid -> Sysno.sys_getpid
  | Setuid _ -> Sysno.sys_setuid
  | Getuid -> Sysno.sys_getuid
  | Geteuid -> Sysno.sys_geteuid
  | Alarm _ -> Sysno.sys_alarm
  | Access _ -> Sysno.sys_access
  | Sync -> Sysno.sys_sync
  | Kill _ -> Sysno.sys_kill
  | Stat _ -> Sysno.sys_stat
  | Getppid -> Sysno.sys_getppid
  | Lstat _ -> Sysno.sys_lstat
  | Dup _ -> Sysno.sys_dup
  | Pipe -> Sysno.sys_pipe
  | Socketpair -> Sysno.sys_socketpair
  | Getegid -> Sysno.sys_getegid
  | Sigaction _ -> Sysno.sys_sigaction
  | Getgid -> Sysno.sys_getgid
  | Sigprocmask _ -> Sysno.sys_sigprocmask
  | Sigpending -> Sysno.sys_sigpending
  | Sigsuspend _ -> Sysno.sys_sigsuspend
  | Ioctl _ -> Sysno.sys_ioctl
  | Symlink _ -> Sysno.sys_symlink
  | Readlink _ -> Sysno.sys_readlink
  | Umask _ -> Sysno.sys_umask
  | Fstat _ -> Sysno.sys_fstat
  | Getpagesize -> Sysno.sys_getpagesize
  | Getpgrp -> Sysno.sys_getpgrp
  | Setpgrp _ -> Sysno.sys_setpgrp
  | Getdtablesize -> Sysno.sys_getdtablesize
  | Dup2 _ -> Sysno.sys_dup2
  | Fcntl _ -> Sysno.sys_fcntl
  | Fsync _ -> Sysno.sys_fsync
  | Socket -> Sysno.sys_socket
  | Bind _ -> Sysno.sys_bind
  | Listen _ -> Sysno.sys_listen
  | Accept _ -> Sysno.sys_accept
  | Connect _ -> Sysno.sys_connect
  | Send _ -> Sysno.sys_send
  | Recv _ -> Sysno.sys_recv
  | Shutdown _ -> Sysno.sys_shutdown
  | Select _ -> Sysno.sys_select
  | Gettimeofday _ -> Sysno.sys_gettimeofday
  | Getrusage _ -> Sysno.sys_getrusage
  | Settimeofday _ -> Sysno.sys_settimeofday
  | Rename _ -> Sysno.sys_rename
  | Truncate _ -> Sysno.sys_truncate
  | Ftruncate _ -> Sysno.sys_ftruncate
  | Mkdir _ -> Sysno.sys_mkdir
  | Rmdir _ -> Sysno.sys_rmdir
  | Utimes _ -> Sysno.sys_utimes
  | Getdirentries _ -> Sysno.sys_getdirentries
  | Sleepus _ -> Sysno.sys_sleepus
  | Getcwd _ -> Sysno.sys_getcwd

let name c = Sysno.name (number c)

(* The encoder writes argument slots into an existing wire so the pool
   fast path ([Value.Pool] via [Envelope.at_boundary]) can refill a
   recycled record in place; the args array is reused whenever the
   arity matches (for a pooled wire in a syscall loop, always). *)

let slots (w : Value.wire) n =
  let a = w.args in
  if Array.length a = n then a
  else begin
    let a = Array.make n Value.Nil in
    w.args <- a;
    a
  end

let fill0 w = ignore (slots w 0)
let fill1 w x = (slots w 1).(0) <- x

let fill2 w x y =
  let a = slots w 2 in
  a.(0) <- x;
  a.(1) <- y

let fill3 w x y z =
  let a = slots w 3 in
  a.(0) <- x;
  a.(1) <- y;
  a.(2) <- z

let encode_into (w : Value.wire) c =
  w.num <- number c;
  match c with
  | Exit code -> fill1 w (Int code)
  | Fork body -> fill1 w (Body body)
  | Read (fd, buf, n) -> fill3 w (Int fd) (Buf buf) (Int n)
  | Write (fd, data) -> fill2 w (Int fd) (Str data)
  | Open (p, flags, mode) -> fill3 w (Str p) (Int flags) (Int mode)
  | Close fd -> fill1 w (Int fd)
  | Wait4 (pid, opts) -> fill2 w (Int pid) (Int opts)
  | Creat (p, mode) -> fill2 w (Str p) (Int mode)
  | Link (p, q) -> fill2 w (Str p) (Str q)
  | Unlink p -> fill1 w (Str p)
  | Execve (p, argv, envp) -> fill3 w (Str p) (Strs argv) (Strs envp)
  | Chdir p -> fill1 w (Str p)
  | Fchdir fd -> fill1 w (Int fd)
  | Mknod (p, mode, dev) -> fill3 w (Str p) (Int mode) (Int dev)
  | Chmod (p, mode) -> fill2 w (Str p) (Int mode)
  | Chown (p, uid, gid) -> fill3 w (Str p) (Int uid) (Int gid)
  | Sbrk n -> fill1 w (Int n)
  | Lseek (fd, off, whence) -> fill3 w (Int fd) (Int off) (Int whence)
  | Getpid -> fill0 w
  | Setuid u -> fill1 w (Int u)
  | Getuid -> fill0 w
  | Geteuid -> fill0 w
  | Alarm s -> fill1 w (Int s)
  | Access (p, m) -> fill2 w (Str p) (Int m)
  | Sync -> fill0 w
  | Kill (pid, s) -> fill2 w (Int pid) (Int s)
  | Stat (p, r) -> fill2 w (Str p) (Stat_ref r)
  | Getppid -> fill0 w
  | Lstat (p, r) -> fill2 w (Str p) (Stat_ref r)
  | Dup fd -> fill1 w (Int fd)
  | Pipe -> fill0 w
  | Socketpair -> fill0 w
  | Getegid -> fill0 w
  | Sigaction (s, h, o) ->
    fill3 w (Int s)
      (match h with Some h -> Handler h | None -> Nil)
      (match o with Some r -> Handler_ref r | None -> Nil)
  | Getgid -> fill0 w
  | Sigprocmask (how, m) -> fill2 w (Int how) (Int m)
  | Sigpending -> fill0 w
  | Sigsuspend m -> fill1 w (Int m)
  | Ioctl (fd, op, b) -> fill3 w (Int fd) (Int op) (Buf b)
  | Symlink (tgt, p) -> fill2 w (Str tgt) (Str p)
  | Readlink (p, b) -> fill2 w (Str p) (Buf b)
  | Umask m -> fill1 w (Int m)
  | Fstat (fd, r) -> fill2 w (Int fd) (Stat_ref r)
  | Getpagesize -> fill0 w
  | Getpgrp -> fill0 w
  | Setpgrp (pid, pgrp) -> fill2 w (Int pid) (Int pgrp)
  | Getdtablesize -> fill0 w
  | Dup2 (o, n) -> fill2 w (Int o) (Int n)
  | Fcntl (fd, cmd, arg) -> fill3 w (Int fd) (Int cmd) (Int arg)
  | Fsync fd -> fill1 w (Int fd)
  | Socket -> fill0 w
  | Bind (fd, addr) -> fill2 w (Int fd) (Str addr)
  | Listen (fd, backlog) -> fill2 w (Int fd) (Int backlog)
  | Accept fd -> fill1 w (Int fd)
  | Connect (fd, addr) -> fill2 w (Int fd) (Str addr)
  | Send (fd, data) -> fill2 w (Int fd) (Str data)
  | Recv (fd, buf, n) -> fill3 w (Int fd) (Buf buf) (Int n)
  | Shutdown (fd, how) -> fill2 w (Int fd) (Int how)
  | Select (r, w', tmo) -> fill3 w (Int r) (Int w') (Int tmo)
  | Gettimeofday r -> fill1 w (Tv_ref r)
  | Getrusage r -> fill1 w (Tv_ref r)
  | Settimeofday (s, us) -> fill2 w (Int s) (Int us)
  | Rename (p, q) -> fill2 w (Str p) (Str q)
  | Truncate (p, len) -> fill2 w (Str p) (Int len)
  | Ftruncate (fd, len) -> fill2 w (Int fd) (Int len)
  | Mkdir (p, mode) -> fill2 w (Str p) (Int mode)
  | Rmdir p -> fill1 w (Str p)
  | Utimes (p, a, m) -> fill3 w (Str p) (Int a) (Int m)
  | Getdirentries (fd, b) -> fill2 w (Int fd) (Buf b)
  | Sleepus us -> fill1 w (Int us)
  | Getcwd b -> fill1 w (Buf b)

let encode c =
  let w = { Value.num = 0; args = [||] } in
  encode_into w c;
  w

let decode (w : wire) : (t, Errno.t) result =
  let module G = Get in
  let n = w.num in
  if n = Sysno.sys_exit then
    let* code = G.int w 0 in Ok (Exit code)
  else if n = Sysno.sys_fork then
    let* body = G.body w 0 in Ok (Fork body)
  else if n = Sysno.sys_read then
    let* fd = G.int w 0 in
    let* buf = G.buf w 1 in
    let* cnt = G.int w 2 in
    Ok (Read (fd, buf, cnt))
  else if n = Sysno.sys_write then
    let* fd = G.int w 0 in
    let* data = G.str w 1 in
    Ok (Write (fd, data))
  else if n = Sysno.sys_open then
    let* p = G.str w 0 in
    let* flags = G.int w 1 in
    let* mode = G.int w 2 in
    Ok (Open (p, flags, mode))
  else if n = Sysno.sys_close then
    let* fd = G.int w 0 in Ok (Close fd)
  else if n = Sysno.sys_wait4 then
    let* pid = G.int w 0 in
    let* opts = G.int w 1 in
    Ok (Wait4 (pid, opts))
  else if n = Sysno.sys_creat then
    let* p = G.str w 0 in
    let* mode = G.int w 1 in
    Ok (Creat (p, mode))
  else if n = Sysno.sys_link then
    let* p = G.str w 0 in
    let* q = G.str w 1 in
    Ok (Link (p, q))
  else if n = Sysno.sys_unlink then
    let* p = G.str w 0 in Ok (Unlink p)
  else if n = Sysno.sys_execve then
    let* p = G.str w 0 in
    let* argv = G.strs w 1 in
    let* envp = G.strs w 2 in
    Ok (Execve (p, argv, envp))
  else if n = Sysno.sys_chdir then
    let* p = G.str w 0 in Ok (Chdir p)
  else if n = Sysno.sys_fchdir then
    let* fd = G.int w 0 in Ok (Fchdir fd)
  else if n = Sysno.sys_mknod then
    let* p = G.str w 0 in
    let* mode = G.int w 1 in
    let* dev = G.int w 2 in
    Ok (Mknod (p, mode, dev))
  else if n = Sysno.sys_chmod then
    let* p = G.str w 0 in
    let* mode = G.int w 1 in
    Ok (Chmod (p, mode))
  else if n = Sysno.sys_chown then
    let* p = G.str w 0 in
    let* uid = G.int w 1 in
    let* gid = G.int w 2 in
    Ok (Chown (p, uid, gid))
  else if n = Sysno.sys_sbrk then
    let* d = G.int w 0 in Ok (Sbrk d)
  else if n = Sysno.sys_lseek then
    let* fd = G.int w 0 in
    let* off = G.int w 1 in
    let* whence = G.int w 2 in
    Ok (Lseek (fd, off, whence))
  else if n = Sysno.sys_getpid then Ok Getpid
  else if n = Sysno.sys_setuid then
    let* u = G.int w 0 in Ok (Setuid u)
  else if n = Sysno.sys_getuid then Ok Getuid
  else if n = Sysno.sys_geteuid then Ok Geteuid
  else if n = Sysno.sys_alarm then
    let* s = G.int w 0 in Ok (Alarm s)
  else if n = Sysno.sys_access then
    let* p = G.str w 0 in
    let* m = G.int w 1 in
    Ok (Access (p, m))
  else if n = Sysno.sys_sync then Ok Sync
  else if n = Sysno.sys_kill then
    let* pid = G.int w 0 in
    let* s = G.int w 1 in
    Ok (Kill (pid, s))
  else if n = Sysno.sys_stat then
    let* p = G.str w 0 in
    let* r = G.stat_ref w 1 in
    Ok (Stat (p, r))
  else if n = Sysno.sys_getppid then Ok Getppid
  else if n = Sysno.sys_lstat then
    let* p = G.str w 0 in
    let* r = G.stat_ref w 1 in
    Ok (Lstat (p, r))
  else if n = Sysno.sys_dup then
    let* fd = G.int w 0 in Ok (Dup fd)
  else if n = Sysno.sys_pipe then Ok Pipe
  else if n = Sysno.sys_socketpair then Ok Socketpair
  else if n = Sysno.sys_getegid then Ok Getegid
  else if n = Sysno.sys_sigaction then
    let* s = G.int w 0 in
    let* h = G.handler_opt w 1 in
    let* o = G.handler_ref_opt w 2 in
    Ok (Sigaction (s, h, o))
  else if n = Sysno.sys_getgid then Ok Getgid
  else if n = Sysno.sys_sigprocmask then
    let* how = G.int w 0 in
    let* m = G.int w 1 in
    Ok (Sigprocmask (how, m))
  else if n = Sysno.sys_sigpending then Ok Sigpending
  else if n = Sysno.sys_sigsuspend then
    let* m = G.int w 0 in Ok (Sigsuspend m)
  else if n = Sysno.sys_ioctl then
    let* fd = G.int w 0 in
    let* op = G.int w 1 in
    let* b = G.buf w 2 in
    Ok (Ioctl (fd, op, b))
  else if n = Sysno.sys_symlink then
    let* tgt = G.str w 0 in
    let* p = G.str w 1 in
    Ok (Symlink (tgt, p))
  else if n = Sysno.sys_readlink then
    let* p = G.str w 0 in
    let* b = G.buf w 1 in
    Ok (Readlink (p, b))
  else if n = Sysno.sys_umask then
    let* m = G.int w 0 in Ok (Umask m)
  else if n = Sysno.sys_fstat then
    let* fd = G.int w 0 in
    let* r = G.stat_ref w 1 in
    Ok (Fstat (fd, r))
  else if n = Sysno.sys_getpagesize then Ok Getpagesize
  else if n = Sysno.sys_getpgrp then Ok Getpgrp
  else if n = Sysno.sys_setpgrp then
    let* pid = G.int w 0 in
    let* pgrp = G.int w 1 in
    Ok (Setpgrp (pid, pgrp))
  else if n = Sysno.sys_getdtablesize then Ok Getdtablesize
  else if n = Sysno.sys_dup2 then
    let* o = G.int w 0 in
    let* d = G.int w 1 in
    Ok (Dup2 (o, d))
  else if n = Sysno.sys_fcntl then
    let* fd = G.int w 0 in
    let* cmd = G.int w 1 in
    let* arg = G.int w 2 in
    Ok (Fcntl (fd, cmd, arg))
  else if n = Sysno.sys_fsync then
    let* fd = G.int w 0 in Ok (Fsync fd)
  else if n = Sysno.sys_socket then Ok Socket
  else if n = Sysno.sys_bind then
    let* fd = G.int w 0 in
    let* addr = G.str w 1 in
    Ok (Bind (fd, addr))
  else if n = Sysno.sys_listen then
    let* fd = G.int w 0 in
    let* backlog = G.int w 1 in
    Ok (Listen (fd, backlog))
  else if n = Sysno.sys_accept then
    let* fd = G.int w 0 in Ok (Accept fd)
  else if n = Sysno.sys_connect then
    let* fd = G.int w 0 in
    let* addr = G.str w 1 in
    Ok (Connect (fd, addr))
  else if n = Sysno.sys_send then
    let* fd = G.int w 0 in
    let* data = G.str w 1 in
    Ok (Send (fd, data))
  else if n = Sysno.sys_recv then
    let* fd = G.int w 0 in
    let* buf = G.buf w 1 in
    let* cnt = G.int w 2 in
    Ok (Recv (fd, buf, cnt))
  else if n = Sysno.sys_shutdown then
    let* fd = G.int w 0 in
    let* how = G.int w 1 in
    Ok (Shutdown (fd, how))
  else if n = Sysno.sys_select then
    let* rmask = G.int w 0 in
    let* wmask = G.int w 1 in
    let* tmo = G.int w 2 in
    Ok (Select (rmask, wmask, tmo))
  else if n = Sysno.sys_gettimeofday then
    let* r = G.tv_ref w 0 in Ok (Gettimeofday r)
  else if n = Sysno.sys_getrusage then
    let* r = G.tv_ref w 0 in Ok (Getrusage r)
  else if n = Sysno.sys_settimeofday then
    let* s = G.int w 0 in
    let* us = G.int w 1 in
    Ok (Settimeofday (s, us))
  else if n = Sysno.sys_rename then
    let* p = G.str w 0 in
    let* q = G.str w 1 in
    Ok (Rename (p, q))
  else if n = Sysno.sys_truncate then
    let* p = G.str w 0 in
    let* len = G.int w 1 in
    Ok (Truncate (p, len))
  else if n = Sysno.sys_ftruncate then
    let* fd = G.int w 0 in
    let* len = G.int w 1 in
    Ok (Ftruncate (fd, len))
  else if n = Sysno.sys_mkdir then
    let* p = G.str w 0 in
    let* mode = G.int w 1 in
    Ok (Mkdir (p, mode))
  else if n = Sysno.sys_rmdir then
    let* p = G.str w 0 in Ok (Rmdir p)
  else if n = Sysno.sys_utimes then
    let* p = G.str w 0 in
    let* a = G.int w 1 in
    let* m = G.int w 2 in
    Ok (Utimes (p, a, m))
  else if n = Sysno.sys_getdirentries then
    let* fd = G.int w 0 in
    let* b = G.buf w 1 in
    Ok (Getdirentries (fd, b))
  else if n = Sysno.sys_sleepus then
    let* us = G.int w 0 in Ok (Sleepus us)
  else if n = Sysno.sys_getcwd then
    let* b = G.buf w 0 in Ok (Getcwd b)
  else Error Errno.ENOSYS

let pathname_of = function
  | Open (p, _, _) | Creat (p, _) | Link (p, _) | Unlink p
  | Execve (p, _, _) | Chdir p | Mknod (p, _, _) | Chmod (p, _)
  | Chown (p, _, _) | Access (p, _) | Stat (p, _) | Lstat (p, _)
  | Symlink (_, p) | Readlink (p, _) | Rename (p, _) | Truncate (p, _)
  | Mkdir (p, _) | Rmdir p | Utimes (p, _, _) -> Some p
  | _ -> None

let descriptor_of = function
  | Read (fd, _, _) | Write (fd, _) | Close fd | Fchdir fd
  | Lseek (fd, _, _) | Dup fd | Dup2 (fd, _) | Ioctl (fd, _, _)
  | Fstat (fd, _) | Fcntl (fd, _, _) | Fsync fd | Ftruncate (fd, _)
  | Getdirentries (fd, _)
  | Bind (fd, _) | Listen (fd, _) | Accept fd | Connect (fd, _)
  | Send (fd, _) | Recv (fd, _, _) | Shutdown (fd, _) -> Some fd
  | _ -> None

let pp ppf c =
  let w = encode c in
  Format.fprintf ppf "%s(" (name c);
  (match c with
   | Open (p, flags, mode) ->
     Format.fprintf ppf "%S, %a, 0%o" p Flags.Open.pp flags mode
   | Kill (pid, s) ->
     Format.fprintf ppf "%d, %s" pid (Signal.name s)
   | Sigaction (s, h, _) ->
     Format.fprintf ppf "%s, %a" (Signal.name s) Value.pp
       (match h with Some h -> Handler h | None -> Nil)
   | _ ->
     Array.iteri
       (fun i v ->
         if i > 0 then Format.fprintf ppf ", ";
         Value.pp ppf v)
       w.args);
  Format.fprintf ppf ")"
