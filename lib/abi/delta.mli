(** Declared interposition deltas.

    An interposition agent may only change what it {e declares}; every
    other observable at the system interface must be preserved (the
    paper's transparency contract).  A {!t} is that declaration in
    machine-checkable form: a list of clauses naming the lawful
    divergences between a bare run's syscall signature and a run under
    the agent.  [lib/conformance] composes a stack's declarations,
    normalizes both signatures by them, and reports any residue as a
    violation.

    Clause semantics at signature level (capture records per-trap
    (sysno, arg shape, errno outcome) — never result {e values}):

    - {!Shifts_results}: result values of these calls may differ
      (timex's shifted [gettimeofday]).  Values are invisible to a
      signature, so this normalizes nothing — it documents the value
      delta honestly.
    - {!Rewrites_results}: result payloads may be rewritten in flight
      (crypt's XOR, union's merged directory reads, a replayer's
      journal-fed inputs).  Also value-level; normalizes nothing.
    - {!Renumbers}: calls issued under a foreign number are served as
      the paired native call (remap).  Normalization maps event sysnos
      through the pairs, so a foreign program's signature can be
      compared against a native baseline.
    - {!May_fail}: these calls may gain {e or lose} one of the listed
      errnos (faultinject's planned errors, sandbox denials, a synthfs
      mount resolving paths the bare kernel cannot).  Normalization
      masks the outcome of matching events on {e both} signatures.
    - {!May_delay}: added virtual latency only.  Time is invisible to a
      signature; normalizes nothing. *)

type clause =
  | Shifts_results of int list       (** sysnos whose result values shift *)
  | Rewrites_results of int list     (** sysnos whose result payloads rewrite *)
  | Renumbers of (int * int) list    (** (foreign, native) sysno pairs *)
  | May_fail of { sysnos : int list; errnos : Errno.t list }
      (** outcome of these sysnos may flip between success and a listed
          errno *)
  | May_delay of int list            (** sysnos that may only get slower *)

type t = clause list
(** Empty = "no visible delta": the agent claims full transparency. *)

val none : t

val compose : t list -> t
(** A stack's composed declaration (installation order is irrelevant:
    clauses are masks, not sequenced edits). *)

val to_string : t -> string
(** ["none"] or ["; "]-joined clauses, syscall numbers rendered via
    [Sysno.name]. *)

val pp : Format.formatter -> t -> unit
