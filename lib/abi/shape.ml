(* Canonical argument shapes for syscall signatures (conformance).

   A shape classifies a trap's argument vector without retaining raw
   values: integers collapse to small exact values or power-of-two
   magnitude classes, buffers and strings to length classes, absolute
   paths to a component-depth + extension class.  Two runs of a
   deterministic workload produce identical shapes even when an agent
   lawfully rewrites values (a shifted timestamp, an XORed payload),
   while a dropped rewrite or a renumbered call shows up immediately.

   The one invariant consumers rely on: the shape of a typed call
   equals the shape of its encoding ([of_call c = of_wire (encode c)]),
   so shape capture never cares which form of an envelope happens to be
   materialized. *)

let rec log2 n = if n <= 1 then 0 else 1 + log2 (n / 2)

let magnitude n = if n <= 8 then string_of_int n else Printf.sprintf "2^%d" (log2 n)

let int_class n =
  if n = 0 then "i0"
  else if n > 0 then "i" ^ magnitude n
  else "i-" ^ magnitude (-n)

let size_class prefix n =
  if n = 0 then prefix ^ "0" else prefix ^ magnitude n

(* "/doc/ch1.mss" -> "p2.mss": component depth plus a bounded basename
   extension.  Rewritten directory *names* (union, remap mounts) keep
   the class; a path that gains or loses components does not. *)
let path_class s =
  let comps =
    String.split_on_char '/' s |> List.filter (fun c -> c <> "")
  in
  let depth = List.length comps in
  let ext =
    match List.rev comps with
    | base :: _ -> (
      match String.rindex_opt base '.' with
      | Some i when i > 0 && String.length base - i - 1 <= 8 ->
        "." ^ String.sub base (i + 1) (String.length base - i - 1)
      | _ -> "")
    | [] -> ""
  in
  Printf.sprintf "p%d%s" depth ext

let token = function
  | Value.Nil -> "_"
  | Value.Int n -> int_class n
  | Value.Str s ->
    if String.length s > 0 && s.[0] = '/' then path_class s
    else size_class "s" (String.length s)
  | Value.Buf b -> size_class "b" (Bytes.length b)
  | Value.Strs a -> Printf.sprintf "v%d" (Array.length a)
  | Value.Body _ -> "f"
  | Value.Stat_ref _ -> "st"
  | Value.Tv_ref _ -> "tv"
  | Value.Handler _ -> "h"
  | Value.Handler_ref _ -> "hr"

let of_wire (w : Value.wire) =
  String.concat "," (Array.to_list (Array.map token w.Value.args))

let of_call c = of_wire (Call.encode c)
