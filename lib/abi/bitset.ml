(* Packed bitsets over a fixed universe [0, len).  One byte holds eight
   numbers, so the whole syscall table fits in a few words and the hot
   membership test is a single load + AND. *)

type t = { bits : Bytes.t; len : int }

let create len =
  if len < 0 then invalid_arg "Bitset.create";
  { bits = Bytes.make ((len + 7) lsr 3) '\000'; len }

let length t = t.len

let mem t i =
  i >= 0 && i < t.len
  && Char.code (Bytes.unsafe_get t.bits (i lsr 3)) land (1 lsl (i land 7))
     <> 0

let set t i =
  if i >= 0 && i < t.len then begin
    let byte = i lsr 3 in
    Bytes.unsafe_set t.bits byte
      (Char.unsafe_chr
         (Char.code (Bytes.unsafe_get t.bits byte) lor (1 lsl (i land 7))))
  end

let clear t i =
  if i >= 0 && i < t.len then begin
    let byte = i lsr 3 in
    Bytes.unsafe_set t.bits byte
      (Char.unsafe_chr
         (Char.code (Bytes.unsafe_get t.bits byte)
          land lnot (1 lsl (i land 7))))
  end

let assign t i present = if present then set t i else clear t i

let copy t = { bits = Bytes.copy t.bits; len = t.len }

let clear_all t = Bytes.fill t.bits 0 (Bytes.length t.bits) '\000'

let equal a b = a.len = b.len && Bytes.equal a.bits b.bits

let is_empty t =
  let rec go i =
    i >= Bytes.length t.bits || (Bytes.get t.bits i = '\000' && go (i + 1))
  in
  go 0

let cardinal t =
  let n = ref 0 in
  for i = 0 to t.len - 1 do
    if mem t i then incr n
  done;
  !n

let to_list t =
  let rec go i acc = if i < 0 then acc else go (i - 1) (if mem t i then i :: acc else acc) in
  go (t.len - 1) []

let iter f t =
  for i = 0 to t.len - 1 do
    if mem t i then f i
  done
