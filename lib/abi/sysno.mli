(** System call numbers.

    The numbering follows 4.3BSD where the call existed there (exit=1,
    fork=2, read=3, ...); the handful of simulator-specific calls
    ([sleepus], [getcwd]) live above 179.  Numeric-layer agents
    register interest by these numbers, exactly as with the Mach 2.5
    interception vector. *)

val sys_exit : int
val sys_fork : int
val sys_read : int
val sys_write : int
val sys_open : int
val sys_close : int
val sys_wait4 : int
val sys_creat : int
val sys_link : int
val sys_unlink : int
val sys_execve : int
val sys_chdir : int
val sys_fchdir : int
val sys_mknod : int
val sys_chmod : int
val sys_chown : int
val sys_sbrk : int
val sys_lseek : int
val sys_getpid : int
val sys_setuid : int
val sys_getuid : int
val sys_geteuid : int
val sys_alarm : int
val sys_access : int
val sys_sync : int
val sys_kill : int
val sys_stat : int
val sys_getppid : int
val sys_lstat : int
val sys_dup : int
val sys_pipe : int
val sys_getegid : int
val sys_sigaction : int
val sys_getgid : int
val sys_sigprocmask : int
val sys_sigpending : int
val sys_sigsuspend : int
val sys_ioctl : int
val sys_symlink : int
val sys_readlink : int
val sys_umask : int
val sys_fstat : int
val sys_getpagesize : int
val sys_getpgrp : int
val sys_setpgrp : int
val sys_getdtablesize : int
val sys_dup2 : int
val sys_fcntl : int
val sys_select : int
val sys_fsync : int
val sys_socket : int
val sys_connect : int
val sys_accept : int
val sys_send : int
val sys_recv : int
val sys_bind : int
val sys_listen : int
val sys_shutdown : int
val sys_gettimeofday : int
val sys_getrusage : int
val sys_socketpair : int
val sys_settimeofday : int
val sys_rename : int
val sys_truncate : int
val sys_ftruncate : int
val sys_mkdir : int
val sys_rmdir : int
val sys_utimes : int
val sys_getdirentries : int
val sys_sleepus : int
val sys_getcwd : int

val max_sysno : int
(** Largest number in the table; interception vectors are sized
    [max_sysno + 1]. *)

val name : int -> string
(** ["read"], ["open"], ...; ["syscall#<n>"] for numbers not in the
    table. *)

val of_name : string -> int option

val all : int list
(** Every valid syscall number, ascending. *)

val is_valid : int -> bool

(** The calls that take a pathname argument and the calls that take a
    descriptor argument — the two families the paper's [pathname_set]
    (30 calls) and [descriptor_set] (48 calls) layers carve out. *)

val uses_pathname : int -> bool
val uses_descriptor : int -> bool

val pathname_calls : int list
val descriptor_calls : int list

val file_calls : int list
(** Union of the pathname and descriptor families, sorted ascending —
    the interest set for agents that care about files and nothing
    else, so [register_interest] stays the cheap path rather than a
    blanket [register_interest_all]. *)

val socket_calls : int list
(** The socket surface (socket/bind/listen/accept/connect/send/recv/
    shutdown) — the interest set for connection-aware agents and the
    site family connection-level fault campaigns sweep. *)
