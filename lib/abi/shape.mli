(** Canonical argument shapes for syscall signatures.

    A {e shape} is a short string classifying a trap's argument vector
    by kind and size class, never by raw value: small integers stay
    exact (descriptors, flags-free modes), larger magnitudes collapse
    to powers of two, strings and buffers to length classes, absolute
    paths to component-depth + extension classes ("/doc/ch1.mss" →
    ["p2.mss"]).  Signature capture ([lib/conformance]) keys ordered
    per-syscall event streams by (sysno, shape, errno outcome), so a
    transparent agent stack reproduces the bare run's shapes exactly
    while value-level rewrites it {e declares} (shifted times, XORed
    payloads) stay invisible by construction.

    Invariant: [of_call c = of_wire (Call.encode c)] — the shape does
    not depend on which envelope view happens to be materialized
    (qcheck-verified over every [Call.t] constructor). *)

val of_wire : Value.wire -> string
(** Comma-joined per-argument class tokens; [""] for a nullary call. *)

val of_call : Call.t -> string

val token : Value.t -> string
(** The class token of one argument value. *)
