(* Declared interposition deltas: the vocabulary agents use to state,
   up front, every way they may lawfully change what the application
   observes at the system interface.  Conformance checking normalizes
   two syscall signatures by a stack's composed declarations and flags
   any residual divergence — so the paper's transparency claim becomes
   "empty residue", not prose. *)

type clause =
  | Shifts_results of int list
  | Rewrites_results of int list
  | Renumbers of (int * int) list
  | May_fail of { sysnos : int list; errnos : Errno.t list }
  | May_delay of int list

type t = clause list

let none : t = []

let compose deltas = List.concat deltas

let clause_to_string = function
  | Shifts_results ns ->
    "shifts-results(" ^ String.concat "," (List.map Sysno.name ns) ^ ")"
  | Rewrites_results ns ->
    "rewrites-results(" ^ String.concat "," (List.map Sysno.name ns) ^ ")"
  | Renumbers pairs ->
    "renumbers("
    ^ String.concat ","
        (List.map (fun (f, n) -> Printf.sprintf "%d>%s" f (Sysno.name n)) pairs)
    ^ ")"
  | May_fail { sysnos; errnos } ->
    Printf.sprintf "may-fail(%s:%s)"
      (String.concat "," (List.map Sysno.name sysnos))
      (String.concat "," (List.map Errno.name errnos))
  | May_delay ns ->
    "may-delay(" ^ String.concat "," (List.map Sysno.name ns) ^ ")"

let to_string = function
  | [] -> "none"
  | clauses -> String.concat "; " (List.map clause_to_string clauses)

let pp fmt d = Format.pp_print_string fmt (to_string d)
