(** The numeric system interface wire format.

    Applications trap with a syscall {e number} and a vector of untyped
    argument values; this is what the lowest (numeric) toolkit layer
    sees and what [htg_unix_syscall] passes down, mirroring the paper's
    "single entry point accepting vectors of untyped numeric
    arguments".  Where the original passes raw machine words (some of
    which are pointers into the shared address space), we pass a small
    universal [value] type: buffers and out-cells model pointers into
    the caller's memory. *)

(** Signal handler disposition carried through [sigaction]. *)
type handler =
  | H_default
  | H_ignore
  | H_fn of (int -> unit)
      (** invoked in the context of the receiving process *)

type t =
  | Nil                                  (** absent optional argument *)
  | Int of int
  | Str of string
  | Buf of Bytes.t                       (** caller memory, in/out *)
  | Strs of string array                 (** argv/envp vectors *)
  | Body of (unit -> int)                (** a child's program text *)
  | Stat_ref of Stat.t option ref        (** struct stat out-pointer *)
  | Tv_ref of (int * int) option ref     (** struct timeval out-pointer *)
  | Handler of handler
  | Handler_ref of handler option ref    (** old-disposition out-pointer *)

(** The two return registers of a 4.3BSD system call ([rv[2]] in the
    paper's interfaces; e.g. [pipe] returns both descriptors, [fork]
    returns the pid and a parent/child flag). *)
type ret = { r0 : int; r1 : int }

val ret : ?r1:int -> int -> (ret, Errno.t) result
val ok : (ret, Errno.t) result
(** [ret 0]. *)

type res = (ret, Errno.t) result

(** A trapped system call: number plus untyped argument vector.  The
    fields are mutable only so pooled wires can be refilled in place
    ({!Pool}, [Call.encode_into]); every other consumer treats a wire
    as immutable for its lifetime. *)
type wire = { mutable num : int; mutable args : t array }

(** Free lists of {!wire} records for the zero-alloc trap boundary.

    Each process owns one pool ([Kernel.Proc.t]).  [Envelope.at_boundary]
    takes a wire from it instead of allocating, and [Envelope.release]
    recycles it once the trap completes — but only when the envelope
    still owns the wire exclusively: a wire that was handed out raw
    ([Envelope.wire]/[peek_wire]) or belongs to a rewritten (dirty)
    envelope is simply left to the GC, correctness over reuse.
    Recycled wires are scrubbed ([num = 0], every slot [Nil]) so no
    argument of one trap can leak into, or stay live because of, the
    next. *)
module Pool : sig
  type t

  val create : ?capacity:int -> unit -> t
  (** Default capacity 64 wires; returns beyond it are dropped. *)

  val size : t -> int
  (** Wires currently on the free list. *)

  val take : t -> wire
  (** Pop a (scrubbed) wire, or allocate a fresh empty one when the
      pool is dry (counted as a miss).  A warm take allocates
      nothing. *)

  val recycle : t -> wire -> unit
  (** Scrub and push; silently drops the wire when the pool is full.
      The caller must guarantee nothing else references [w].  A
      non-full recycle allocates nothing. *)

  (** Hit/miss accounting aggregated over every pool of one kernel
      shard, in the same snapshot/diff style as [Envelope.Stats] (and
      under the same contract — see [envelope.mli]).  A counter set
      ({!Stats.t}) is owned by the shard and installed on entry; read
      it through [Kernel.pool_stats] or, outside any kernel, through
      {!Stats.snapshot_of}[ (installed ())]. *)
  module Stats : sig
    type snapshot = {
      hits : int;      (** takes served from a free list *)
      misses : int;    (** takes that fell back to allocation *)
      recycled : int;  (** wires returned for reuse *)
      dropped : int;   (** returns rejected by a full pool *)
    }

    type t
    (** A live counter set (one per kernel shard). *)

    val create : unit -> t
    val install : t -> unit
    (** Make [c] the set the pools bump; a default set is installed at
        program start. *)

    val installed : unit -> t
    val snapshot_of : t -> snapshot
    val reset_of : t -> unit

    val diff : snapshot -> snapshot -> snapshot
    val pp : Format.formatter -> snapshot -> unit

    val to_json : snapshot -> Obs.Json.t
    (** The ["wire_pool"] block of [Kernel.metrics_json] and
        [/obs/metrics]. *)
  end
end

val pp : Format.formatter -> t -> unit
(** Numeric-layer rendering: ints in decimal, strings quoted and
    truncated, buffers as [0xADDR[len]] style placeholders. *)

val pp_wire : Format.formatter -> wire -> unit
val pp_res : Format.formatter -> res -> unit

(** Argument extraction used by the kernel decoder and the
    [bsd_numeric_syscall] toolkit layer.  Each returns [Error EFAULT]
    on an argument of the wrong shape (the moral equivalent of a bad
    pointer). *)
module Get : sig
  val int : wire -> int -> (int, Errno.t) result
  val str : wire -> int -> (string, Errno.t) result
  val buf : wire -> int -> (Bytes.t, Errno.t) result
  val strs : wire -> int -> (string array, Errno.t) result
  val body : wire -> int -> (unit -> int, Errno.t) result
  val stat_ref : wire -> int -> (Stat.t option ref, Errno.t) result
  val tv_ref : wire -> int -> ((int * int) option ref, Errno.t) result
  val handler_opt : wire -> int -> (handler option, Errno.t) result
  val handler_ref_opt
    : wire -> int -> (handler option ref option, Errno.t) result
end

val ( let* ) : ('a, 'e) result -> ('a -> ('b, 'e) result)
  -> ('b, 'e) result
