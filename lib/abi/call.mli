(** Typed (symbolic) view of the system interface.

    Applications and the kernel agree on this typed representation; the
    interception boundary between them, however, is the untyped numeric
    {!Value.wire} form.  {!encode} and {!decode} convert between the
    two, and are shared by the C-library stubs, the kernel's syscall
    entry, and the toolkit's [bsd_numeric_syscall] decoding object —
    one definition of the ABI, three users. *)

type t =
  | Exit of int
  | Fork of (unit -> int)
      (** [Fork body]: the child's program text.  In the original, fork
          duplicates the address space; here the caller supplies the
          child's continuation explicitly (see DESIGN.md). *)
  | Read of int * Bytes.t * int          (** fd, buffer, byte count *)
  | Write of int * string                (** fd, data *)
  | Open of string * int * int           (** path, flags, mode *)
  | Close of int
  | Wait4 of int * int                   (** pid (-1 = any), options *)
  | Creat of string * int
  | Link of string * string
  | Unlink of string
  | Execve of string * string array * string array
  | Chdir of string
  | Fchdir of int
  | Mknod of string * int * int          (** path, mode, dev *)
  | Chmod of string * int
  | Chown of string * int * int
  | Sbrk of int
  | Lseek of int * int * int             (** fd, offset, whence *)
  | Getpid
  | Setuid of int
  | Getuid
  | Geteuid
  | Alarm of int                         (** seconds; 0 cancels *)
  | Access of string * int
  | Sync
  | Kill of int * int                    (** pid (or -pgrp), signal *)
  | Stat of string * Stat.t option ref
  | Getppid
  | Lstat of string * Stat.t option ref
  | Dup of int
  | Pipe
  | Socketpair
      (** a connected bidirectional pair; both descriptors returned *)
  | Getegid
  | Sigaction of int * Value.handler option * Value.handler option ref option
  | Getgid
  | Sigprocmask of int * int             (** how, mask; old mask in r0 *)
  | Sigpending
  | Sigsuspend of int
  | Ioctl of int * int * Bytes.t
  | Symlink of string * string           (** target, linkpath *)
  | Readlink of string * Bytes.t
  | Umask of int
  | Fstat of int * Stat.t option ref
  | Getpagesize
  | Getpgrp
  | Setpgrp of int * int                 (** pid (0 = self), pgrp *)
  | Getdtablesize
  | Dup2 of int * int
  | Fcntl of int * int * int             (** fd, cmd, arg *)
  | Fsync of int
  | Socket
      (** a fresh unbound stream socket; the descriptor in r0 *)
  | Bind of int * string                 (** fd, address name *)
  | Listen of int * int                  (** fd, backlog (accept-queue
                                             bound, clamped to ≥ 1) *)
  | Accept of int
      (** fd; blocks until a connection is pending, new fd in r0 *)
  | Connect of int * string
      (** fd, address name; blocks while the listener's accept queue
          is full, [ECONNREFUSED] when nothing listens there *)
  | Send of int * string                 (** fd, data; write semantics *)
  | Recv of int * Bytes.t * int          (** fd, buffer, byte count;
                                             read semantics *)
  | Shutdown of int * int                (** fd, how ({!Flags.Shut}) *)
  | Select of int * int * int
      (** read-fd bitmask, write-fd bitmask, timeout in µs (-1 =
          forever); returns ready read mask in r0, write mask in r1 *)
  | Gettimeofday of (int * int) option ref
  | Getrusage of (int * int) option ref
      (** out: (user µs, system µs) of the calling process *)
  | Settimeofday of int * int
  | Rename of string * string
  | Truncate of string * int
  | Ftruncate of int * int
  | Mkdir of string * int
  | Rmdir of string
  | Utimes of string * int * int         (** path, atime, mtime (sec) *)
  | Getdirentries of int * Bytes.t       (** r0 = bytes, r1 = new basep *)
  | Sleepus of int
  | Getcwd of Bytes.t

val number : t -> int
val name : t -> string

val encode : t -> Value.wire

val encode_into : Value.wire -> t -> unit
(** [encode_into w c] overwrites [w] in place with the wire form of
    [c], reusing [w]'s argument array when the arity matches.  This is
    the pooled-wire refill path ([Value.Pool]); [encode] is
    [encode_into] onto a fresh record. *)

val decode : Value.wire -> (t, Errno.t) result
(** [decode w] fails with [ENOSYS] for an unknown number and [EFAULT]
    for arguments of the wrong shape. *)

val pathname_of : t -> string option
(** The (first) pathname argument, if the call takes one. *)

val descriptor_of : t -> int option
(** The descriptor argument, if the call takes one. *)

val pp : Format.formatter -> t -> unit
(** trace(1)-style rendering: [open("/etc/motd", O_RDONLY, 0)]. *)
