(* Decode-once call envelopes: the wire vector and its typed decoding
   travel the stack together, each materialized at most once. *)

module Stats = struct
  type snapshot = {
    traps : int;
    intercepted : int;
    fast_path : int;
    decodes : int;
    encodes : int;
    crossings : int;
    agent_calls : int;
  }

  (* The live counter set of one kernel shard (DESIGN.md §3.6).  The
     shard installs its set on entry; envelopes bump whichever set is
     installed.  A default set exists from program start so envelopes
     work outside any kernel. *)
  type t = {
    mutable c_traps : int;
    mutable c_intercepted : int;
    mutable c_fast_path : int;
    mutable c_decodes : int;
    mutable c_encodes : int;
    mutable c_crossings : int;
    mutable c_agent_calls : int;
  }

  let create () =
    { c_traps = 0; c_intercepted = 0; c_fast_path = 0; c_decodes = 0;
      c_encodes = 0; c_crossings = 0; c_agent_calls = 0 }

  let cur : t ref = ref (create ())
  let install c = cur := c
  let installed () = !cur

  let snapshot_of c =
    {
      traps = c.c_traps;
      intercepted = c.c_intercepted;
      fast_path = c.c_fast_path;
      decodes = c.c_decodes;
      encodes = c.c_encodes;
      crossings = c.c_crossings;
      agent_calls = c.c_agent_calls;
    }

  let reset_of c =
    c.c_traps <- 0;
    c.c_intercepted <- 0;
    c.c_fast_path <- 0;
    c.c_decodes <- 0;
    c.c_encodes <- 0;
    c.c_crossings <- 0;
    c.c_agent_calls <- 0

  let diff before after =
    {
      traps = after.traps - before.traps;
      intercepted = after.intercepted - before.intercepted;
      fast_path = after.fast_path - before.fast_path;
      decodes = after.decodes - before.decodes;
      encodes = after.encodes - before.encodes;
      crossings = after.crossings - before.crossings;
      agent_calls = after.agent_calls - before.agent_calls;
    }

  let pp fmt s =
    Format.fprintf fmt
      "traps=%d intercepted=%d fast_path=%d decodes=%d encodes=%d \
       crossings=%d agent_calls=%d"
      s.traps s.intercepted s.fast_path s.decodes s.encodes s.crossings
      s.agent_calls

  let to_json s =
    Obs.Json.Obj
      [
        ("traps", Obs.Json.Int s.traps);
        ("intercepted", Obs.Json.Int s.intercepted);
        ("fast_path", Obs.Json.Int s.fast_path);
        ("decodes", Obs.Json.Int s.decodes);
        ("encodes", Obs.Json.Int s.encodes);
        ("crossings", Obs.Json.Int s.crossings);
        ("agent_calls", Obs.Json.Int s.agent_calls);
      ]

  let note_trap ~intercepted:hit =
    let c = !cur in
    c.c_traps <- c.c_traps + 1;
    if hit then c.c_intercepted <- c.c_intercepted + 1

  let note_trap_fast () =
    let c = !cur in
    c.c_traps <- c.c_traps + 1;
    c.c_fast_path <- c.c_fast_path + 1

  let note_crossing () =
    let c = !cur in
    c.c_crossings <- c.c_crossings + 1

  let note_agent_call () =
    let c = !cur in
    c.c_agent_calls <- c.c_agent_calls + 1

  let note_decode () =
    let c = !cur in
    c.c_decodes <- c.c_decodes + 1

  let note_encode () =
    let c = !cur in
    c.c_encodes <- c.c_encodes + 1
end

type view =
  | Undecoded
  | Typed of Call.t
  | Undecodable of Errno.t

type t = {
  num : int;
  mutable wire : Value.wire option;
      (* [None] while the [Typed] view is authoritative but not yet
         (re-)encoded — i.e. the dirty state. *)
  mutable view : view;
  mutable span : int;
      (* Obs span this envelope's codec work attributes to; 0 when
         tracing is off or the envelope is born outside any trap. *)
  mutable home : Value.Pool.t option;
      (* The pool the wire came from, when [at_boundary] took it from
         one; cleared by [release] so a wire recycles at most once. *)
  mutable exposed : bool;
      (* Set once the raw wire has been handed out ([wire]/[peek_wire]):
         an agent may have kept the reference, so the record can never
         be recycled. *)
}

let of_wire w =
  { num = w.Value.num; wire = Some w; view = Undecoded; span = Obs.current ();
    home = None; exposed = true }

let of_call c =
  { num = Call.number c; wire = None; view = Typed c; span = Obs.current ();
    home = None; exposed = false }

let at_boundary ?pool c =
  (* The application/system boundary is the untyped numeric form: encode
     now and deliberately forget the typed view, so agents below see
     exactly what an application would have trapped with.  With [pool],
     the wire record comes off the caller's free list when one is
     available; [release] sends it back after the trap. *)
  let span = Obs.current () in
  Stats.note_encode ();
  Obs.note_encode span;
  let wire =
    match pool with
    | None -> Call.encode c
    | Some p ->
      let w = Value.Pool.take p in
      Call.encode_into w c;
      w
  in
  (* [home = pool] shares the caller's option — building a fresh [Some]
     per trap would undo part of what the pool saves *)
  { num = Call.number c; wire = Some wire; view = Undecoded; span;
    home = pool; exposed = false }

let release t =
  (* Recycle only when this envelope still owns the wire exclusively: it
     came from a pool, was never handed out raw, and was never rewritten
     (a dirty envelope dropped its original wire; any re-encoded one may
     be aliased by whoever forced it). *)
  match t.home with
  | None -> ()
  | Some p ->
    t.home <- None;
    (match t.wire with
     | Some w when not t.exposed ->
       (* Drop our reference before recycling: the record is about to be
          scrubbed and refilled by a later trap, and a released envelope
          must fail loudly (assert in [call]) rather than silently read
          someone else's arguments.  A [Typed]/[Undecodable] view
          survives, so decoded envelopes stay printable. *)
       t.wire <- None;
       Value.Pool.recycle p w
     | Some _ | None -> ())

let span t = t.span
let set_span t s = t.span <- s

let number t = t.num

let call t =
  match t.view with
  | Typed c -> Ok c
  | Undecodable e -> Error e
  | Undecoded -> (
    let w =
      match t.wire with
      | Some w -> w
      | None -> assert false (* Undecoded implies a wire form exists *)
    in
    Stats.note_decode ();
    Obs.note_decode t.span;
    match Call.decode w with
    | Ok c ->
      t.view <- Typed c;
      Ok c
    | Error e ->
      t.view <- Undecodable e;
      Error e)

let wire t =
  t.exposed <- true;
  match t.wire with
  | Some w -> w
  | None -> (
    match t.view with
    | Typed c ->
      Stats.note_encode ();
      Obs.note_encode t.span;
      (* a dirty envelope forced back to wire form is the PR 1
         definition of a genuine rewrite: some layer wants the raw
         vector of a call that no longer matches any prior encoding *)
      Obs.note_rewrite t.span;
      let w = Call.encode c in
      t.wire <- Some w;
      w
    | Undecoded | Undecodable _ -> assert false (* no wire implies Typed *))

let peek_wire t =
  (match t.wire with Some _ -> t.exposed <- true | None -> ());
  t.wire

(* The canonical arg shape, from whichever view is already
   materialized.  Reads the wire without marking it exposed — the
   shape retains no reference — and never decodes, encodes or bumps a
   codec counter, so signature capture cannot disturb the decode-once
   accounting it is meant to audit. *)
let shape t =
  match t.wire with
  | Some w -> Shape.of_wire w
  | None -> (
    match t.view with
    | Typed c -> Shape.of_call c
    | Undecoded | Undecodable _ -> "?")

let nargs t =
  match t.wire with
  | Some w -> Some (Array.length w.Value.args)
  | None -> None

let decoded t =
  match t.view with
  | Typed _ | Undecodable _ -> true
  | Undecoded -> false

let dirty t = t.wire = None

let pp fmt t =
  match t.view with
  | Typed c -> Call.pp fmt c
  | Undecodable e ->
    Format.fprintf fmt "<undecodable syscall %d: %s>" t.num (Errno.name e)
  | Undecoded -> (
    match t.wire with
    | Some w -> Value.pp_wire fmt w
    | None -> Format.fprintf fmt "<syscall %d>" t.num)
