(* Decode-once call envelopes: the wire vector and its typed decoding
   travel the stack together, each materialized at most once. *)

module Stats = struct
  type snapshot = {
    traps : int;
    intercepted : int;
    fused : int;
    fast_path : int;
    decodes : int;
    encodes : int;
    crossings : int;
    agent_calls : int;
  }

  (* The live counter set of one kernel shard (DESIGN.md §3.6).  The
     shard installs its set on entry; envelopes bump whichever set is
     installed.  A default set exists from program start so envelopes
     work outside any kernel. *)
  type t = {
    mutable c_traps : int;
    mutable c_intercepted : int;
    mutable c_fused : int;
    mutable c_fast_path : int;
    mutable c_decodes : int;
    mutable c_encodes : int;
    mutable c_crossings : int;
    mutable c_agent_calls : int;
  }

  let create () =
    { c_traps = 0; c_intercepted = 0; c_fused = 0; c_fast_path = 0;
      c_decodes = 0; c_encodes = 0; c_crossings = 0; c_agent_calls = 0 }

  let cur : t ref = ref (create ())
  let install c = cur := c
  let installed () = !cur

  let snapshot_of c =
    {
      traps = c.c_traps;
      intercepted = c.c_intercepted;
      fused = c.c_fused;
      fast_path = c.c_fast_path;
      decodes = c.c_decodes;
      encodes = c.c_encodes;
      crossings = c.c_crossings;
      agent_calls = c.c_agent_calls;
    }

  let reset_of c =
    c.c_traps <- 0;
    c.c_intercepted <- 0;
    c.c_fused <- 0;
    c.c_fast_path <- 0;
    c.c_decodes <- 0;
    c.c_encodes <- 0;
    c.c_crossings <- 0;
    c.c_agent_calls <- 0

  let diff before after =
    {
      traps = after.traps - before.traps;
      intercepted = after.intercepted - before.intercepted;
      fused = after.fused - before.fused;
      fast_path = after.fast_path - before.fast_path;
      decodes = after.decodes - before.decodes;
      encodes = after.encodes - before.encodes;
      crossings = after.crossings - before.crossings;
      agent_calls = after.agent_calls - before.agent_calls;
    }

  let pp fmt s =
    Format.fprintf fmt
      "traps=%d intercepted=%d fused=%d fast_path=%d decodes=%d encodes=%d \
       crossings=%d agent_calls=%d"
      s.traps s.intercepted s.fused s.fast_path s.decodes s.encodes
      s.crossings s.agent_calls

  let to_json s =
    Obs.Json.Obj
      [
        ("traps", Obs.Json.Int s.traps);
        ("intercepted", Obs.Json.Int s.intercepted);
        ("fused", Obs.Json.Int s.fused);
        ("fast_path", Obs.Json.Int s.fast_path);
        ("decodes", Obs.Json.Int s.decodes);
        ("encodes", Obs.Json.Int s.encodes);
        ("crossings", Obs.Json.Int s.crossings);
        ("agent_calls", Obs.Json.Int s.agent_calls);
      ]

  let note_trap ~intercepted:hit =
    let c = !cur in
    c.c_traps <- c.c_traps + 1;
    if hit then c.c_intercepted <- c.c_intercepted + 1

  let note_trap_chained () =
    let c = !cur in
    c.c_traps <- c.c_traps + 1;
    c.c_fused <- c.c_fused + 1

  let note_trap_fast () =
    let c = !cur in
    c.c_traps <- c.c_traps + 1;
    c.c_fast_path <- c.c_fast_path + 1

  let note_crossing () =
    let c = !cur in
    c.c_crossings <- c.c_crossings + 1

  let note_agent_call () =
    let c = !cur in
    c.c_agent_calls <- c.c_agent_calls + 1

  let note_decode () =
    let c = !cur in
    c.c_decodes <- c.c_decodes + 1

  let note_encode () =
    let c = !cur in
    c.c_encodes <- c.c_encodes + 1
end

type view =
  | Undecoded
  | Typed of Call.t
  | Undecodable of Errno.t

type t = {
  mutable num : int;
      (* Mutable only so a pooled record can be refilled in place; no
         code path changes the number of a live envelope. *)
  mutable wire : Value.wire option;
      (* [None] while the [Typed] view is authoritative but not yet
         (re-)encoded — i.e. the dirty state. *)
  mutable view : view;
  mutable span : int;
      (* Obs span this envelope's codec work attributes to; 0 when
         tracing is off or the envelope is born outside any trap. *)
  mutable home : Value.Pool.t option;
      (* The pool the wire came from, when [at_boundary] took it from
         one; cleared by [release] so a wire recycles at most once. *)
  mutable exposed : bool;
      (* Set once the raw wire has been handed out ([wire]/[peek_wire]):
         an agent may have kept the reference, so neither the wire nor
         the record can be recycled. *)
  mutable retained : bool;
      (* The escape hatch of the pooling contract: an agent that stashes
         the envelope past the trap boundary calls [retain], and
         [release] then leaves the whole record to the GC. *)
  mutable ehome : epool option;
      (* The pool the *record* came from, when [at_boundary]/[of_call]
         took it from one; cleared by [release] so a record recycles at
         most once. *)
}

(* The record pool lives in the same recursive knot as [t] (a record
   points back at its home pool), so the module below is mostly a
   veneer over this representation. *)
and epool = {
  mutable estack : t array;
  mutable elen : int;
  ecapacity : int;
}

(* Per-process free lists of envelope records — the PR 3 follow-on: the
   wires are pooled by [Value.Pool], but until now every trap still
   allocated the envelope record around them.  Same shape and contract
   as the wire pool: the free list only ever receives records whose
   trap owned them exclusively ([release] enforces the
   exposed/retained/rewritten rules), and every recycled record is
   scrubbed so a stale view, wire or span cannot leak into the next
   trap or pin dead objects against the GC. *)
module Pool = struct
  type nonrec t = epool

  let blank () =
    { num = 0; wire = None; view = Undecoded; span = 0; home = None;
      exposed = false; retained = false; ehome = None }

  let dummy =
    { num = 0; wire = None; view = Undecoded; span = 0; home = None;
      exposed = false; retained = false; ehome = None }

  module Stats = struct
    type snapshot = {
      hits : int;      (* takes served from the free list *)
      misses : int;    (* takes that fell back to allocation *)
      recycled : int;  (* records returned for reuse *)
      dropped : int;   (* returns rejected by a full pool *)
    }

    (* A counter set aggregating over every envelope pool of one kernel
       shard, exactly like [Value.Pool.Stats] for wires.  Deliberately
       *not* named [cur]: the globals lint keys allowlist entries by
       [file:binding], and a second [cur] in this file would silently
       ride the existing [envelope.ml:cur] entry. *)
    type t = {
      mutable c_hits : int;
      mutable c_misses : int;
      mutable c_recycled : int;
      mutable c_dropped : int;
    }

    let create () = { c_hits = 0; c_misses = 0; c_recycled = 0; c_dropped = 0 }

    let pcur : t ref = ref (create ())
    let install c = pcur := c
    let installed () = !pcur

    let snapshot_of c =
      { hits = c.c_hits; misses = c.c_misses;
        recycled = c.c_recycled; dropped = c.c_dropped }

    let reset_of c =
      c.c_hits <- 0; c.c_misses <- 0; c.c_recycled <- 0; c.c_dropped <- 0

    let diff before after =
      { hits = after.hits - before.hits;
        misses = after.misses - before.misses;
        recycled = after.recycled - before.recycled;
        dropped = after.dropped - before.dropped }

    let pp fmt s =
      Format.fprintf fmt "hits=%d misses=%d recycled=%d dropped=%d"
        s.hits s.misses s.recycled s.dropped

    let to_json s =
      Obs.Json.Obj
        [ ("hits", Obs.Json.Int s.hits);
          ("misses", Obs.Json.Int s.misses);
          ("recycled", Obs.Json.Int s.recycled);
          ("dropped", Obs.Json.Int s.dropped) ]
  end

  let create ?(capacity = 64) () =
    if capacity < 0 then invalid_arg "Envelope.Pool.create";
    { estack = Array.make capacity dummy; elen = 0; ecapacity = capacity }

  let size p = p.elen

  (* Invariant: every record on the free list is scrubbed (the state
     [blank] builds), so [take] only refills the fields the new trap
     needs. *)
  let take p =
    let c = !Stats.pcur in
    if p.elen = 0 then begin
      c.Stats.c_misses <- c.Stats.c_misses + 1;
      blank ()
    end
    else begin
      p.elen <- p.elen - 1;
      let e = p.estack.(p.elen) in
      p.estack.(p.elen) <- dummy;
      c.Stats.c_hits <- c.Stats.c_hits + 1;
      e
    end

  let recycle p e =
    let c = !Stats.pcur in
    if p.elen >= p.ecapacity then c.Stats.c_dropped <- c.Stats.c_dropped + 1
    else begin
      e.num <- 0;
      e.wire <- None;
      e.view <- Undecoded;
      e.span <- 0;
      e.home <- None;
      e.exposed <- false;
      e.retained <- false;
      e.ehome <- None;
      p.estack.(p.elen) <- e;
      p.elen <- p.elen + 1;
      c.Stats.c_recycled <- c.Stats.c_recycled + 1
    end
end

let of_wire w =
  { num = w.Value.num; wire = Some w; view = Undecoded; span = Obs.current ();
    home = None; exposed = true; retained = false; ehome = None }

let of_call ?epool c =
  match epool with
  | None ->
    { num = Call.number c; wire = None; view = Typed c;
      span = Obs.current (); home = None; exposed = false; retained = false;
      ehome = None }
  | Some p ->
    let t = Pool.take p in
    (* the record off the free list is scrubbed; fill only what this
       trap needs.  [ehome = epool] shares the caller's option — a
       fresh [Some] per trap would undo part of what the pool saves. *)
    t.num <- Call.number c;
    t.view <- Typed c;
    t.span <- Obs.current ();
    t.ehome <- epool;
    t

let at_boundary ?pool ?epool c =
  (* The application/system boundary is the untyped numeric form: encode
     now and deliberately forget the typed view, so agents below see
     exactly what an application would have trapped with.  With [pool],
     the wire record comes off the caller's free list when one is
     available; with [epool], so does the envelope record itself;
     [release] sends both back after the trap. *)
  let span = Obs.current () in
  Stats.note_encode ();
  Obs.note_encode span;
  let wire =
    match pool with
    | None -> Call.encode c
    | Some p ->
      let w = Value.Pool.take p in
      Call.encode_into w c;
      w
  in
  (* [home = pool] shares the caller's option — building a fresh [Some]
     per trap would undo part of what the pool saves *)
  match epool with
  | None ->
    { num = Call.number c; wire = Some wire; view = Undecoded; span;
      home = pool; exposed = false; retained = false; ehome = None }
  | Some ep ->
    let t = Pool.take ep in
    t.num <- Call.number c;
    t.wire <- Some wire;
    t.span <- span;
    t.home <- pool;
    t.ehome <- epool;
    t

let retain t = t.retained <- true
let retained t = t.retained

let release t =
  (* Recycle only what this envelope still owns exclusively.  A
     [retain]ed envelope was stashed past the trap boundary by some
     layer (trace sink, journal): leave record and wire alone — the
     stash must stay readable — and let the GC have them eventually.
     Otherwise the wire recycles when it came from a pool, was never
     handed out raw, and was never rewritten (a dirty envelope dropped
     its original wire; any re-encoded one may be aliased by whoever
     forced it); the record recycles under the same exposure rule. *)
  if not t.retained then begin
    (match t.home with
     | None -> ()
     | Some p ->
       t.home <- None;
       (match t.wire with
        | Some w when not t.exposed ->
          (* Drop our reference before recycling: the record is about to
             be scrubbed and refilled by a later trap, and a released
             envelope must fail loudly (assert in [call]) rather than
             silently read someone else's arguments. *)
          t.wire <- None;
          Value.Pool.recycle p w
        | Some _ | None -> ()));
    match t.ehome with
    | None -> ()
    | Some ep ->
      t.ehome <- None;
      if not t.exposed then Pool.recycle ep t
  end

let span t = t.span
let set_span t s = t.span <- s

let number t = t.num

let call t =
  match t.view with
  | Typed c -> Ok c
  | Undecodable e -> Error e
  | Undecoded -> (
    let w =
      match t.wire with
      | Some w -> w
      | None -> assert false (* Undecoded implies a wire form exists *)
    in
    Stats.note_decode ();
    Obs.note_decode t.span;
    match Call.decode w with
    | Ok c ->
      t.view <- Typed c;
      Ok c
    | Error e ->
      t.view <- Undecodable e;
      Error e)

let wire t =
  t.exposed <- true;
  match t.wire with
  | Some w -> w
  | None -> (
    match t.view with
    | Typed c ->
      Stats.note_encode ();
      Obs.note_encode t.span;
      (* a dirty envelope forced back to wire form is the PR 1
         definition of a genuine rewrite: some layer wants the raw
         vector of a call that no longer matches any prior encoding *)
      Obs.note_rewrite t.span;
      let w = Call.encode c in
      t.wire <- Some w;
      w
    | Undecoded | Undecodable _ -> assert false (* no wire implies Typed *))

let peek_wire t =
  (match t.wire with Some _ -> t.exposed <- true | None -> ());
  t.wire

(* The canonical arg shape, from whichever view is already
   materialized.  Reads the wire without marking it exposed — the
   shape retains no reference — and never decodes, encodes or bumps a
   codec counter, so signature capture cannot disturb the decode-once
   accounting it is meant to audit. *)
let shape t =
  match t.wire with
  | Some w -> Shape.of_wire w
  | None -> (
    match t.view with
    | Typed c -> Shape.of_call c
    | Undecoded | Undecodable _ -> "?")

let nargs t =
  match t.wire with
  | Some w -> Some (Array.length w.Value.args)
  | None -> None

let decoded t =
  match t.view with
  | Typed _ | Undecodable _ -> true
  | Undecoded -> false

let dirty t = t.wire = None

let pp fmt t =
  match t.view with
  | Typed c -> Call.pp fmt c
  | Undecodable e ->
    Format.fprintf fmt "<undecodable syscall %d: %s>" t.num (Errno.name e)
  | Undecoded -> (
    match t.wire with
    | Some w -> Value.pp_wire fmt w
    | None -> Format.fprintf fmt "<syscall %d>" t.num)
