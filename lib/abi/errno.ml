type t =
  | EPERM
  | ENOENT
  | ESRCH
  | EINTR
  | EIO
  | ENXIO
  | E2BIG
  | ENOEXEC
  | EBADF
  | ECHILD
  | EAGAIN
  | ENOMEM
  | EACCES
  | EFAULT
  | EBUSY
  | EEXIST
  | EXDEV
  | ENODEV
  | ENOTDIR
  | EISDIR
  | EINVAL
  | ENFILE
  | EMFILE
  | ENOTTY
  | EFBIG
  | ENOSPC
  | ESPIPE
  | EROFS
  | EMLINK
  | EPIPE
  | ERANGE
  | EWOULDBLOCK
  | ENOTSOCK
  | EADDRINUSE
  | ECONNRESET
  | EISCONN
  | ENOTCONN
  | ECONNREFUSED
  | ENAMETOOLONG
  | ENOTEMPTY
  | ELOOP
  | ENOSYS

(* Historical 4.3BSD values. *)
let table =
  [ EPERM, 1, "EPERM", "Operation not permitted";
    ENOENT, 2, "ENOENT", "No such file or directory";
    ESRCH, 3, "ESRCH", "No such process";
    EINTR, 4, "EINTR", "Interrupted system call";
    EIO, 5, "EIO", "Input/output error";
    ENXIO, 6, "ENXIO", "Device not configured";
    E2BIG, 7, "E2BIG", "Argument list too long";
    ENOEXEC, 8, "ENOEXEC", "Exec format error";
    EBADF, 9, "EBADF", "Bad file descriptor";
    ECHILD, 10, "ECHILD", "No child processes";
    EAGAIN, 11, "EAGAIN", "Resource temporarily unavailable";
    ENOMEM, 12, "ENOMEM", "Cannot allocate memory";
    EACCES, 13, "EACCES", "Permission denied";
    EFAULT, 14, "EFAULT", "Bad address";
    EBUSY, 16, "EBUSY", "Device busy";
    EEXIST, 17, "EEXIST", "File exists";
    EXDEV, 18, "EXDEV", "Cross-device link";
    ENODEV, 19, "ENODEV", "Operation not supported by device";
    ENOTDIR, 20, "ENOTDIR", "Not a directory";
    EISDIR, 21, "EISDIR", "Is a directory";
    EINVAL, 22, "EINVAL", "Invalid argument";
    ENFILE, 23, "ENFILE", "Too many open files in system";
    EMFILE, 24, "EMFILE", "Too many open files";
    ENOTTY, 25, "ENOTTY", "Inappropriate ioctl for device";
    EFBIG, 27, "EFBIG", "File too large";
    ENOSPC, 28, "ENOSPC", "No space left on device";
    ESPIPE, 29, "ESPIPE", "Illegal seek";
    EROFS, 30, "EROFS", "Read-only file system";
    EMLINK, 31, "EMLINK", "Too many links";
    EPIPE, 32, "EPIPE", "Broken pipe";
    ERANGE, 34, "ERANGE", "Result too large";
    EWOULDBLOCK, 35, "EWOULDBLOCK", "Operation would block";
    ENOTSOCK, 38, "ENOTSOCK", "Socket operation on non-socket";
    EADDRINUSE, 48, "EADDRINUSE", "Address already in use";
    ECONNRESET, 54, "ECONNRESET", "Connection reset by peer";
    EISCONN, 56, "EISCONN", "Socket is already connected";
    ENOTCONN, 57, "ENOTCONN", "Socket is not connected";
    ECONNREFUSED, 61, "ECONNREFUSED", "Connection refused";
    ENAMETOOLONG, 63, "ENAMETOOLONG", "File name too long";
    ENOTEMPTY, 66, "ENOTEMPTY", "Directory not empty";
    ELOOP, 62, "ELOOP", "Too many levels of symbolic links";
    ENOSYS, 78, "ENOSYS", "Function not implemented";
  ]

let to_int e =
  let _, n, _, _ = List.find (fun (e', _, _, _) -> e' = e) table in
  n

let of_int n =
  match List.find_opt (fun (_, n', _, _) -> n' = n) table with
  | Some (e, _, _, _) -> Some e
  | None -> None

let name e =
  let _, _, s, _ = List.find (fun (e', _, _, _) -> e' = e) table in
  s

let of_name s =
  match List.find_opt (fun (_, _, s', _) -> s' = s) table with
  | Some (e, _, _, _) -> Some e
  | None -> None

let message e =
  let _, _, _, m = List.find (fun (e', _, _, _) -> e' = e) table in
  m

let pp ppf e = Format.pp_print_string ppf (name e)
