(** Flag and constant bits of the 4.3BSD system interface:
    [open] flags, file mode bits, [lseek] whence codes, [fcntl]
    commands, [wait4] options, [access] modes and [ioctl] requests. *)

(** [open(2)] flags. *)
module Open : sig
  val o_rdonly : int
  val o_wronly : int
  val o_rdwr : int
  val o_nonblock : int
  val o_append : int
  val o_creat : int
  val o_trunc : int
  val o_excl : int

  val accmode : int -> int
  (** Extracts the access-mode bits (rdonly/wronly/rdwr). *)

  val readable : int -> bool
  val writable : int -> bool
  val pp : Format.formatter -> int -> unit
end

(** [st_mode] bits. *)
module Mode : sig
  val ifmt : int
  val ifreg : int
  val ifdir : int
  val iflnk : int
  val ifchr : int
  val ifblk : int
  val ififo : int
  val ifsock : int

  val isuid : int
  val isgid : int
  val isvtx : int

  val irusr : int
  val iwusr : int
  val ixusr : int
  val irgrp : int
  val iwgrp : int
  val ixgrp : int
  val iroth : int
  val iwoth : int
  val ixoth : int

  val perm_bits : int -> int
  (** Lower twelve bits (permissions + setuid/setgid/sticky). *)

  val kind_bits : int -> int
  val is_reg : int -> bool
  val is_dir : int -> bool
  val is_lnk : int -> bool
  val is_chr : int -> bool
  val is_fifo : int -> bool
  val is_sock : int -> bool

  val to_ls_string : int -> string
  (** ls(1)-style rendering, e.g. ["drwxr-xr-x"]. *)
end

module Seek : sig
  val set : int
  val cur : int
  val end_ : int
end

module Fcntl : sig
  val f_dupfd : int
  val f_getfd : int
  val f_setfd : int
  val f_getfl : int
  val f_setfl : int
  val fd_cloexec : int
end

module Wait : sig
  val wnohang : int
  val wuntraced : int

  val exit_status : int -> int
  (** Encode a normal exit with the given code into a wait status. *)

  val sig_status : int -> int
  (** Encode termination by signal [s]. *)

  val stop_status : int -> int
  (** Encode a stop by signal [s]. *)

  val wifexited : int -> bool
  val wexitstatus : int -> int
  val wifsignaled : int -> bool
  val wtermsig : int -> int
  val wifstopped : int -> bool
  val wstopsig : int -> int
end

(** [shutdown(2)] direction codes. *)
module Shut : sig
  val rd : int
  val wr : int
  val rdwr : int
end

(** [sigprocmask] operations. *)
module Sighow : sig
  val sig_block : int
  val sig_unblock : int
  val sig_setmask : int
end

module Access : sig
  val f_ok : int
  val r_ok : int
  val w_ok : int
  val x_ok : int
end

module Ioctl : sig
  val fionread : int
  (** Bytes available to read; result written as a decimal into the
      argument buffer. *)

  val tiocgwinsz : int
  (** Terminal window size, encoded as ["<rows> <cols>"]. *)

  val tiocisatty : int
  (** Nonstandard probe: succeeds only on a terminal device. *)
end
