let sys_exit = 1
let sys_fork = 2
let sys_read = 3
let sys_write = 4
let sys_open = 5
let sys_close = 6
let sys_wait4 = 7
let sys_creat = 8
let sys_link = 9
let sys_unlink = 10
let sys_execve = 11
let sys_chdir = 12
let sys_fchdir = 13
let sys_mknod = 14
let sys_chmod = 15
let sys_chown = 16
let sys_sbrk = 17
let sys_lseek = 19
let sys_getpid = 20
let sys_setuid = 23
let sys_getuid = 24
let sys_geteuid = 25
let sys_alarm = 27
let sys_access = 33
let sys_sync = 36
let sys_kill = 37
let sys_stat = 38
let sys_getppid = 39
let sys_lstat = 40
let sys_dup = 41
let sys_pipe = 42
let sys_getegid = 43
let sys_sigaction = 46
let sys_getgid = 47
let sys_sigprocmask = 48
let sys_sigpending = 52
let sys_sigsuspend = 53
let sys_ioctl = 54
let sys_symlink = 57
let sys_readlink = 58
let sys_umask = 60
let sys_fstat = 62
let sys_getpagesize = 64
let sys_getpgrp = 81
let sys_setpgrp = 82
let sys_getdtablesize = 89
let sys_dup2 = 90
let sys_fcntl = 92
let sys_select = 93
let sys_fsync = 95
let sys_socket = 97
let sys_connect = 98
let sys_accept = 99
let sys_send = 101
let sys_recv = 102
let sys_bind = 104
let sys_listen = 106
let sys_gettimeofday = 116
let sys_getrusage = 117
let sys_settimeofday = 122
let sys_shutdown = 134
let sys_socketpair = 135
let sys_rename = 128
let sys_truncate = 129
let sys_ftruncate = 130
let sys_mkdir = 136
let sys_rmdir = 137
let sys_utimes = 138
let sys_getdirentries = 156
let sys_sleepus = 180
let sys_getcwd = 181

let table =
  [ sys_exit, "exit"; sys_fork, "fork"; sys_read, "read";
    sys_write, "write"; sys_open, "open"; sys_close, "close";
    sys_wait4, "wait4"; sys_creat, "creat"; sys_link, "link";
    sys_unlink, "unlink"; sys_execve, "execve"; sys_chdir, "chdir";
    sys_fchdir, "fchdir"; sys_mknod, "mknod"; sys_chmod, "chmod";
    sys_chown, "chown"; sys_sbrk, "sbrk"; sys_lseek, "lseek";
    sys_getpid, "getpid"; sys_setuid, "setuid"; sys_getuid, "getuid";
    sys_geteuid, "geteuid"; sys_alarm, "alarm"; sys_access, "access";
    sys_sync, "sync"; sys_kill, "kill"; sys_stat, "stat";
    sys_getppid, "getppid"; sys_lstat, "lstat"; sys_dup, "dup";
    sys_pipe, "pipe"; sys_getegid, "getegid";
    sys_sigaction, "sigaction"; sys_getgid, "getgid";
    sys_sigprocmask, "sigprocmask"; sys_sigpending, "sigpending";
    sys_sigsuspend, "sigsuspend"; sys_ioctl, "ioctl";
    sys_symlink, "symlink"; sys_readlink, "readlink"; sys_umask, "umask";
    sys_fstat, "fstat"; sys_getpagesize, "getpagesize";
    sys_getpgrp, "getpgrp"; sys_setpgrp, "setpgrp";
    sys_getdtablesize, "getdtablesize"; sys_dup2, "dup2";
    sys_fcntl, "fcntl"; sys_select, "select"; sys_fsync, "fsync";
    sys_socket, "socket"; sys_connect, "connect"; sys_accept, "accept";
    sys_send, "send"; sys_recv, "recv"; sys_bind, "bind";
    sys_listen, "listen"; sys_shutdown, "shutdown";
    sys_gettimeofday, "gettimeofday"; sys_getrusage, "getrusage";
    sys_socketpair, "socketpair"; sys_settimeofday, "settimeofday";
    sys_rename, "rename"; sys_truncate, "truncate";
    sys_ftruncate, "ftruncate"; sys_mkdir, "mkdir"; sys_rmdir, "rmdir";
    sys_utimes, "utimes"; sys_getdirentries, "getdirentries";
    sys_sleepus, "sleepus"; sys_getcwd, "getcwd" ]

let max_sysno = List.fold_left (fun a (n, _) -> max a n) 0 table

let name n =
  match List.assoc_opt n table with
  | Some s -> s
  | None -> Printf.sprintf "syscall#%d" n

let of_name s =
  let rec search = function
    | [] -> None
    | (n, s') :: _ when s' = s -> Some n
    | _ :: rest -> search rest
  in
  search table

let all = List.sort compare (List.map fst table)

let is_valid n = List.mem_assoc n table

let pathname_calls =
  [ sys_open; sys_creat; sys_link; sys_unlink; sys_execve; sys_chdir;
    sys_mknod; sys_chmod; sys_chown; sys_access; sys_stat; sys_lstat;
    sys_symlink; sys_readlink; sys_rename; sys_truncate; sys_mkdir;
    sys_rmdir; sys_utimes ]

let descriptor_calls =
  [ sys_read; sys_write; sys_close; sys_fchdir; sys_lseek; sys_dup;
    sys_dup2; sys_pipe; sys_ioctl; sys_fstat; sys_fcntl; sys_fsync;
    sys_ftruncate; sys_getdirentries; sys_open; sys_creat;
    sys_bind; sys_listen; sys_accept; sys_connect; sys_send; sys_recv;
    sys_shutdown ]

(* The socket surface as a set: what a connection-aware agent (or a
   fault campaign targeting the accept/recv/send path) registers
   interest in. *)
let socket_calls =
  [ sys_socket; sys_bind; sys_listen; sys_accept; sys_connect;
    sys_send; sys_recv; sys_shutdown ]

let uses_pathname n = List.mem n pathname_calls
let uses_descriptor n = List.mem n descriptor_calls

let file_calls =
  List.sort_uniq compare (pathname_calls @ descriptor_calls)
