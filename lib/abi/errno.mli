(** 4.3BSD error numbers.

    The subset of [<errno.h>] actually producible by the simulated
    kernel, with the historical BSD numbering so that numeric-layer
    agents observe authentic values. *)

type t =
  | EPERM
  | ENOENT
  | ESRCH
  | EINTR
  | EIO
  | ENXIO
  | E2BIG
  | ENOEXEC
  | EBADF
  | ECHILD
  | EAGAIN
  | ENOMEM
  | EACCES
  | EFAULT
  | EBUSY
  | EEXIST
  | EXDEV
  | ENODEV
  | ENOTDIR
  | EISDIR
  | EINVAL
  | ENFILE
  | EMFILE
  | ENOTTY
  | EFBIG
  | ENOSPC
  | ESPIPE
  | EROFS
  | EMLINK
  | EPIPE
  | ERANGE
  | EWOULDBLOCK
  | ENOTSOCK
  | EADDRINUSE
  | ECONNRESET
  | EISCONN
  | ENOTCONN
  | ECONNREFUSED
  | ENAMETOOLONG
  | ENOTEMPTY
  | ELOOP
  | ENOSYS

val to_int : t -> int
val of_int : int -> t option
val name : t -> string
(** Symbolic name, e.g. ["ENOENT"]. *)

val of_name : string -> t option
(** Inverse of {!name}; used by parsers of serialized fault plans and
    repro bundles. *)

val message : t -> string
(** [strerror]-style description. *)

val pp : Format.formatter -> t -> unit
