(** Packed bitsets over a fixed universe [0, len).

    The interposition fast path keys on these: {!Kernel.Proc.emulation}
    and the toolkit's downlink each keep a bitmap of intercepted
    syscall numbers alongside their handler vector, so an uninterested
    trap is decided by {!mem} — one load and an AND — without ever
    probing the option array.  All operations treat out-of-range
    indices as absent ({!mem} returns [false]; {!set}/{!clear} are
    no-ops), matching the bounds behaviour of the vectors they
    shadow. *)

type t

val create : int -> t
(** [create len]: the empty set over universe [0, len). *)

val length : t -> int
val mem : t -> int -> bool
val set : t -> int -> unit
val clear : t -> int -> unit

val assign : t -> int -> bool -> unit
(** [assign t i present]: {!set} when [present], {!clear} otherwise —
    the one-liner for mirroring an option-array slot. *)

val copy : t -> t
(** Fresh storage; used on [fork] alongside [Array.copy] of the
    vector. *)

val clear_all : t -> unit
val equal : t -> t -> bool
val is_empty : t -> bool
val cardinal : t -> int

val to_list : t -> int list
(** Members in ascending order. *)

val iter : (int -> unit) -> t -> unit
