#!/bin/sh
# Fail on new module-level mutable state in lib/.
#
# The shard handle (DESIGN.md 3.6) owns every piece of per-kernel
# state; module-level refs and mutable containers are exactly what it
# de-globalized, so any new one is a bug unless it is an allowlisted
# installed-instance cell.  The check is a grep heuristic:
#
#   - candidate lines: `let <name> [: type] = ref ...` or
#     `= Hashtbl.create/Queue.create/Buffer.create/Stack.create/
#        Atomic.make/Array.make/Bytes.create/Dynarray.create`
#   - lines that bind with `... in` on the same line are
#     function-local and skipped
#   - survivors must appear in tools/globals_allowlist.txt as
#     `<file>:<binding-name>`
#
# Multi-line function-local bindings can slip through as false
# positives; allowlist them with a comment rather than loosening the
# pattern.

set -eu
cd "$(dirname "$0")/.."

allow=tools/globals_allowlist.txt
pat='^[[:space:]]*let[[:space:]]+[a-z_][a-zA-Z0-9_'\'']*[[:space:]]*(:[^=]*)?=[[:space:]]*(ref[[:space:](]|Hashtbl\.create|Queue\.create|Buffer\.create|Stack\.create|Atomic\.make|Array\.make|Bytes\.create|Dynarray\.create)'

matches=$(grep -rEn "$pat" lib --include='*.ml' 2>/dev/null \
  | grep -vE '[[:space:]]in([[:space:]]|$)' || true)

status=0
printf '%s\n' "$matches" | while IFS= read -r m; do
  [ -n "$m" ] || continue
  file=${m%%:*}
  rest=${m#*:}
  rest=${rest#*:} # strip the line number
  name=$(printf '%s' "$rest" \
    | sed -E 's/^[[:space:]]*let[[:space:]]+([a-z_][a-zA-Z0-9_'\'']*).*/\1/')
  if ! grep -qx "$file:$name" "$allow"; then
    printf 'lint-globals: %s\n' "$m"
    printf 'lint-globals: module-level mutable state outside the shard handle;\n'
    printf 'lint-globals: move it into Kstate.t (or allowlist it in %s with a reason)\n' "$allow"
    touch .lint_globals_failed
  fi
done

if [ -e .lint_globals_failed ]; then
  rm -f .lint_globals_failed
  status=1
fi
[ "$status" -eq 0 ] && echo "lint-globals: ok (lib/ has no stray module-level mutable state)"
exit "$status"
