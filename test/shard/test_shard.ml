(* The shard handle (DESIGN.md 3.6): kernels own all their state, so
   sequential kernels are invisible to each other, coexisting kernels
   multiplex through [with_shard], single-shard runs are deterministic,
   a send-free 2-shard cluster is exactly two solo runs, and a cluster
   with cross-shard signal traffic reproduces byte-identically. *)

open Abi

(* a small mixed-traffic session body: files, stat, and a getpid burst *)
let traffic tag n () =
  let path = "/tmp/" ^ tag in
  (match
     Libc.Unistd.open_ path
       Flags.Open.(o_wronly lor o_creat lor o_trunc)
       0o644
   with
   | Ok fd ->
     ignore (Libc.Unistd.write fd tag);
     ignore (Libc.Unistd.close fd)
   | Error e -> Alcotest.failf "open %s: %s" path (Errno.name e));
  ignore (Libc.Unistd.stat path);
  for _ = 1 to n do
    ignore (Libc.Unistd.getpid ())
  done;
  Libc.Stdio.printf "%s done\n" tag;
  0

let observe k =
  ( Sim.Clock.now_us (Kernel.clock k),
    Kernel.total_syscalls k,
    Kernel.console_output k )

(* --- satellite: two sequential kernels share nothing ------------------- *)

let test_sequential_isolation () =
  let a = Tharness.fresh_kernel () in
  Kernel.register_image a "only-in-a" (fun ~argv:_ ~envp:_ () -> 0);
  Tharness.check_exit "a session" 0 (Tharness.boot_k a (traffic "a-only" 10));
  let a_traps = Kernel.total_syscalls a in
  let a_codec = Kernel.codec_stats a in
  Alcotest.(check bool)
    "a registered its image" true
    (List.mem "only-in-a" (Kernel.Registry.registered (Kernel.registry a)));
  (* a fresh kernel observes none of it *)
  let b = Tharness.fresh_kernel () in
  Alcotest.(check bool)
    "b sees no image of a" false
    (List.mem "only-in-a" (Kernel.Registry.registered (Kernel.registry b)));
  Alcotest.(check int) "b counted no syscalls" 0 (Kernel.total_syscalls b);
  Alcotest.(check int)
    "b codec counters start at zero" 0 (Kernel.codec_stats b).Envelope.Stats.traps;
  Alcotest.(check bool)
    "b fs has no file of a" false (Kernel.exists b "/tmp/a-only");
  Tharness.check_exit "b session" 0 (Tharness.boot_k b (traffic "b-only" 4));
  (* and running b did not disturb a *)
  Alcotest.(check int) "a trap count unchanged" a_traps (Kernel.total_syscalls a);
  Alcotest.(check int)
    "a codec unchanged" a_codec.Envelope.Stats.traps
    (Kernel.codec_stats a).Envelope.Stats.traps;
  Alcotest.(check bool)
    "a fs has no file of b" false (Kernel.exists a "/tmp/b-only")

(* --- two live kernels, multiplexed by hand ------------------------------ *)

let test_with_shard_coexist () =
  let a = Tharness.fresh_kernel () in
  let b = Tharness.fresh_kernel () in
  (* b is current (create enters); visit a without losing that *)
  Kernel.with_shard a (fun () ->
    Alcotest.(check int)
      "a is current inside with_shard" (Kernel.shard_id a)
      (Kernel.shard_id (Kernel.current_exn ()));
    Kernel.write_file (Kernel.current_exn ()) ~path:"/tmp/in-a" "A");
  Alcotest.(check bool)
    "b current again after with_shard" true (Kernel.current_exn () == b);
  Alcotest.(check bool) "a got the write" true (Kernel.exists a "/tmp/in-a");
  Alcotest.(check bool) "b did not" false (Kernel.exists b "/tmp/in-a");
  (* interleave two full sessions *)
  Tharness.check_exit "b session" 0 (Tharness.boot_k b (traffic "bb" 6));
  Tharness.check_exit "a session" 0 (Tharness.boot_k a (traffic "aa" 3));
  Alcotest.(check bool) "consoles are private" true
    (Kernel.console_output a <> Kernel.console_output b)

(* --- determinism at one shard ------------------------------------------- *)

let traced_session () =
  let k = Tharness.fresh_kernel () in
  let status =
    Tharness.boot_k k (fun () ->
      Obs.enable ();
      Toolkit.Loader.install (Agents.Time_symbolic.create ()) ~argv:[||];
      let rc = traffic "traced" 20 () in
      Obs.disable ();
      rc)
  in
  Tharness.check_exit "traced session" 0 status;
  let clock_us, traps, console = observe k in
  (clock_us, traps, console, Obs.Json.to_string (Kernel.metrics_json k))

let test_determinism_one_shard () =
  let c1, t1, o1, m1 = traced_session () in
  let c2, t2, o2, m2 = traced_session () in
  Alcotest.(check int) "virtual clock identical" c1 c2;
  Alcotest.(check int) "trap count identical" t1 t2;
  Alcotest.(check string) "console identical" o1 o2;
  Alcotest.(check string) "metrics json byte-identical" m1 m2

(* --- a send-free 2-shard cluster is exactly two solo runs --------------- *)

let test_cluster_matches_solo () =
  let solo i =
    let k = Tharness.fresh_kernel () in
    Tharness.check_exit "solo" 0
      (Tharness.boot_k k (traffic (Printf.sprintf "w%d" i) (8 + (6 * i))));
    observe k
  in
  let s0 = solo 0 in
  let s1 = solo 1 in
  let c = Kernel.Cluster.create ~shards:2 () in
  Kernel.populate_standard (Kernel.Cluster.shard c 0);
  Kernel.populate_standard (Kernel.Cluster.shard c 1);
  let p0 =
    Kernel.Cluster.boot_shard c 0 ~name:"test" (traffic "w0" 8)
  in
  let p1 =
    Kernel.Cluster.boot_shard c 1 ~name:"test" (traffic "w1" 14)
  in
  Kernel.Cluster.run c;
  Tharness.check_exit "shard 0 init" 0 p0.Kernel.Proc.exit_status;
  Tharness.check_exit "shard 1 init" 0 p1.Kernel.Proc.exit_status;
  let check_shard what solo_obs i =
    let sc, st, so = solo_obs in
    let cc, ct, co = observe (Kernel.Cluster.shard c i) in
    Alcotest.(check int) (what ^ ": virtual clock") sc cc;
    Alcotest.(check int) (what ^ ": trap count") st ct;
    Alcotest.(check string) (what ^ ": console") so co
  in
  check_shard "shard 0 = solo 0" s0 0;
  check_shard "shard 1 = solo 1" s1 1

(* --- cross-shard signals: deterministic merge, reproducible runs -------- *)

let ring_run () =
  let n = 3 in
  let c = Kernel.Cluster.create ~shards:n () in
  for i = 0 to n - 1 do
    Kernel.populate_standard (Kernel.Cluster.shard c i)
  done;
  let woke = Array.make n false in
  let procs =
    List.init n (fun i ->
      Kernel.Cluster.boot_shard c i ~name:"ring" (fun () ->
        ignore
          (Tharness.check_ok "signal"
             (Libc.Unistd.signal Signal.sigusr1
                (Value.H_fn (fun _ -> woke.(i) <- true))));
        (* skew the shard clocks so merge order is exercised *)
        for _ = 1 to 3 + i do
          ignore (Libc.Unistd.getpid ())
        done;
        Kernel.Cluster.send ~dst:((i + 1) mod n) ~pid:1
          ~signal:Signal.sigusr1;
        ignore (Libc.Unistd.sigsuspend 0);
        Libc.Stdio.printf "shard %d woke\n" i;
        0))
  in
  Kernel.Cluster.run c;
  List.iter
    (fun (p : Kernel.Proc.t) ->
      Tharness.check_exit "ring init" 0 p.Kernel.Proc.exit_status)
    procs;
  Alcotest.(check bool)
    "every shard's handler fired" true
    (Array.for_all Fun.id woke);
  List.init n (fun i -> observe (Kernel.Cluster.shard c i))

let test_cluster_reproducible () =
  let r1 = ring_run () in
  let r2 = ring_run () in
  List.iteri
    (fun i ((c1, t1, o1), (c2, t2, o2)) ->
      let what fmt = Printf.sprintf "shard %d: %s" i fmt in
      Alcotest.(check int) (what "virtual clock") c1 c2;
      Alcotest.(check int) (what "trap count") t1 t2;
      Alcotest.(check string) (what "console") o1 o2)
    (List.combine r1 r2)

(* --- the deprecated global accessors alias the installed shard ---------- *)

let test_deprecated_shims () =
  let k = Tharness.fresh_kernel () in
  Tharness.check_exit "session" 0 (Tharness.boot_k k (traffic "shim" 5));
  (* k is the current shard, so the one-release shims must read it *)
  let[@warning "-3"] codec_shim = Envelope.Stats.snapshot () in
  Alcotest.(check int)
    "Envelope.Stats.snapshot reads the current shard"
    (Kernel.codec_stats k).Envelope.Stats.traps
    codec_shim.Envelope.Stats.traps;
  let[@warning "-3"] pool_shim = Value.Pool.Stats.snapshot () in
  Alcotest.(check int)
    "Value.Pool.Stats.snapshot reads the current shard"
    (Kernel.pool_stats k).Value.Pool.Stats.hits
    pool_shim.Value.Pool.Stats.hits;
  let[@warning "-3"] () = Envelope.Stats.reset () in
  Alcotest.(check int)
    "Envelope.Stats.reset zeroes the current shard" 0
    (Kernel.codec_stats k).Envelope.Stats.traps

let () =
  Alcotest.run "shard"
    [ ( "isolation",
        [ Alcotest.test_case "sequential kernels share nothing" `Quick
            test_sequential_isolation;
          Alcotest.test_case "with_shard multiplexes two kernels" `Quick
            test_with_shard_coexist;
          Alcotest.test_case "deprecated shims read the current shard" `Quick
            test_deprecated_shims ] );
      ( "determinism",
        [ Alcotest.test_case "same seed, same bytes at 1 shard" `Quick
            test_determinism_one_shard;
          Alcotest.test_case "2 shards without sends = two solo runs" `Quick
            test_cluster_matches_solo;
          Alcotest.test_case "signal ring reproduces byte-identically" `Quick
            test_cluster_reproducible ] ) ]
