(* The shard handle (DESIGN.md 3.6): kernels own all their state, so
   sequential kernels are invisible to each other, coexisting kernels
   multiplex through [with_shard], single-shard runs are deterministic,
   a send-free 2-shard cluster is exactly two solo runs, and a cluster
   with cross-shard signal traffic reproduces byte-identically. *)

open Abi

(* a small mixed-traffic session body: files, stat, and a getpid burst *)
let traffic tag n () =
  let path = "/tmp/" ^ tag in
  (match
     Libc.Unistd.open_ path
       Flags.Open.(o_wronly lor o_creat lor o_trunc)
       0o644
   with
   | Ok fd ->
     ignore (Libc.Unistd.write fd tag);
     ignore (Libc.Unistd.close fd)
   | Error e -> Alcotest.failf "open %s: %s" path (Errno.name e));
  ignore (Libc.Unistd.stat path);
  for _ = 1 to n do
    ignore (Libc.Unistd.getpid ())
  done;
  Libc.Stdio.printf "%s done\n" tag;
  0

let observe k =
  ( Sim.Clock.now_us (Kernel.clock k),
    Kernel.total_syscalls k,
    Kernel.console_output k )

(* --- satellite: two sequential kernels share nothing ------------------- *)

let test_sequential_isolation () =
  let a = Tharness.fresh_kernel () in
  Kernel.register_image a "only-in-a" (fun ~argv:_ ~envp:_ () -> 0);
  Tharness.check_exit "a session" 0 (Tharness.boot_k a (traffic "a-only" 10));
  let a_traps = Kernel.total_syscalls a in
  let a_codec = Kernel.codec_stats a in
  Alcotest.(check bool)
    "a registered its image" true
    (List.mem "only-in-a" (Kernel.Registry.registered (Kernel.registry a)));
  (* a fresh kernel observes none of it *)
  let b = Tharness.fresh_kernel () in
  Alcotest.(check bool)
    "b sees no image of a" false
    (List.mem "only-in-a" (Kernel.Registry.registered (Kernel.registry b)));
  Alcotest.(check int) "b counted no syscalls" 0 (Kernel.total_syscalls b);
  Alcotest.(check int)
    "b codec counters start at zero" 0 (Kernel.codec_stats b).Envelope.Stats.traps;
  Alcotest.(check bool)
    "b fs has no file of a" false (Kernel.exists b "/tmp/a-only");
  Tharness.check_exit "b session" 0 (Tharness.boot_k b (traffic "b-only" 4));
  (* and running b did not disturb a *)
  Alcotest.(check int) "a trap count unchanged" a_traps (Kernel.total_syscalls a);
  Alcotest.(check int)
    "a codec unchanged" a_codec.Envelope.Stats.traps
    (Kernel.codec_stats a).Envelope.Stats.traps;
  Alcotest.(check bool)
    "a fs has no file of b" false (Kernel.exists a "/tmp/b-only")

(* --- two live kernels, multiplexed by hand ------------------------------ *)

let test_with_shard_coexist () =
  let a = Tharness.fresh_kernel () in
  let b = Tharness.fresh_kernel () in
  (* b is current (create enters); visit a without losing that *)
  Kernel.with_shard a (fun () ->
    Alcotest.(check int)
      "a is current inside with_shard" (Kernel.shard_id a)
      (Kernel.shard_id (Kernel.current_exn ()));
    Kernel.write_file (Kernel.current_exn ()) ~path:"/tmp/in-a" "A");
  Alcotest.(check bool)
    "b current again after with_shard" true (Kernel.current_exn () == b);
  Alcotest.(check bool) "a got the write" true (Kernel.exists a "/tmp/in-a");
  Alcotest.(check bool) "b did not" false (Kernel.exists b "/tmp/in-a");
  (* interleave two full sessions *)
  Tharness.check_exit "b session" 0 (Tharness.boot_k b (traffic "bb" 6));
  Tharness.check_exit "a session" 0 (Tharness.boot_k a (traffic "aa" 3));
  Alcotest.(check bool) "consoles are private" true
    (Kernel.console_output a <> Kernel.console_output b)

(* --- determinism at one shard ------------------------------------------- *)

let traced_session () =
  let k = Tharness.fresh_kernel () in
  let status =
    Tharness.boot_k k (fun () ->
      Obs.enable ();
      Toolkit.Loader.install (Agents.Time_symbolic.create ()) ~argv:[||];
      let rc = traffic "traced" 20 () in
      Obs.disable ();
      rc)
  in
  Tharness.check_exit "traced session" 0 status;
  let clock_us, traps, console = observe k in
  (* The "host" block is the one deliberately wall-clock member of the
     metrics document (ns/trap, GC deltas) — every other byte is a pure
     function of simulation state, so compare with host stripped. *)
  let metrics =
    match Kernel.metrics_json k with
    | Obs.Json.Obj fields ->
      Obs.Json.Obj (List.filter (fun (k, _) -> k <> "host") fields)
    | j -> j
  in
  (clock_us, traps, console, Obs.Json.to_string metrics)

let test_determinism_one_shard () =
  let c1, t1, o1, m1 = traced_session () in
  let c2, t2, o2, m2 = traced_session () in
  Alcotest.(check int) "virtual clock identical" c1 c2;
  Alcotest.(check int) "trap count identical" t1 t2;
  Alcotest.(check string) "console identical" o1 o2;
  Alcotest.(check string) "metrics json byte-identical" m1 m2

(* --- a send-free 2-shard cluster is exactly two solo runs --------------- *)

let test_cluster_matches_solo () =
  let solo i =
    let k = Tharness.fresh_kernel () in
    Tharness.check_exit "solo" 0
      (Tharness.boot_k k (traffic (Printf.sprintf "w%d" i) (8 + (6 * i))));
    observe k
  in
  let s0 = solo 0 in
  let s1 = solo 1 in
  let c = Kernel.Cluster.create ~shards:2 () in
  Kernel.populate_standard (Kernel.Cluster.shard c 0);
  Kernel.populate_standard (Kernel.Cluster.shard c 1);
  let p0 =
    Kernel.Cluster.boot_shard c 0 ~name:"test" (traffic "w0" 8)
  in
  let p1 =
    Kernel.Cluster.boot_shard c 1 ~name:"test" (traffic "w1" 14)
  in
  Kernel.Cluster.run c;
  Tharness.check_exit "shard 0 init" 0 p0.Kernel.Proc.exit_status;
  Tharness.check_exit "shard 1 init" 0 p1.Kernel.Proc.exit_status;
  let check_shard what solo_obs i =
    let sc, st, so = solo_obs in
    let cc, ct, co = observe (Kernel.Cluster.shard c i) in
    Alcotest.(check int) (what ^ ": virtual clock") sc cc;
    Alcotest.(check int) (what ^ ": trap count") st ct;
    Alcotest.(check string) (what ^ ": console") so co
  in
  check_shard "shard 0 = solo 0" s0 0;
  check_shard "shard 1 = solo 1" s1 1

(* --- cross-shard signals: deterministic merge, reproducible runs -------- *)

let ring_run () =
  let n = 3 in
  let c = Kernel.Cluster.create ~shards:n () in
  for i = 0 to n - 1 do
    Kernel.populate_standard (Kernel.Cluster.shard c i)
  done;
  let woke = Array.make n false in
  let procs =
    List.init n (fun i ->
      Kernel.Cluster.boot_shard c i ~name:"ring" (fun () ->
        ignore
          (Tharness.check_ok "signal"
             (Libc.Unistd.signal Signal.sigusr1
                (Value.H_fn (fun _ -> woke.(i) <- true))));
        (* skew the shard clocks so merge order is exercised *)
        for _ = 1 to 3 + i do
          ignore (Libc.Unistd.getpid ())
        done;
        Kernel.Cluster.send ~dst:((i + 1) mod n) ~pid:1
          ~signal:Signal.sigusr1;
        ignore (Libc.Unistd.sigsuspend 0);
        Libc.Stdio.printf "shard %d woke\n" i;
        0))
  in
  Kernel.Cluster.run c;
  List.iter
    (fun (p : Kernel.Proc.t) ->
      Tharness.check_exit "ring init" 0 p.Kernel.Proc.exit_status)
    procs;
  Alcotest.(check bool)
    "every shard's handler fired" true
    (Array.for_all Fun.id woke);
  List.init n (fun i -> observe (Kernel.Cluster.shard c i))

let test_cluster_reproducible () =
  let r1 = ring_run () in
  let r2 = ring_run () in
  List.iteri
    (fun i ((c1, t1, o1), (c2, t2, o2)) ->
      let what fmt = Printf.sprintf "shard %d: %s" i fmt in
      Alcotest.(check int) (what "virtual clock") c1 c2;
      Alcotest.(check int) (what "trap count") t1 t2;
      Alcotest.(check string) (what "console") o1 o2)
    (List.combine r1 r2)

(* --- the installed counter sets alias the current shard's ----------------- *)

let test_installed_sets () =
  let k = Tharness.fresh_kernel () in
  Tharness.check_exit "session" 0 (Tharness.boot_k k (traffic "shim" 5));
  (* k is the current shard, so the ambient installed sets are its own *)
  let codec_amb = Envelope.Stats.(snapshot_of (installed ())) in
  Alcotest.(check int)
    "installed codec set is the current shard's"
    (Kernel.codec_stats k).Envelope.Stats.traps
    codec_amb.Envelope.Stats.traps;
  let pool_amb = Value.Pool.Stats.(snapshot_of (installed ())) in
  Alcotest.(check int)
    "installed wire-pool set is the current shard's"
    (Kernel.pool_stats k).Value.Pool.Stats.hits
    pool_amb.Value.Pool.Stats.hits;
  Envelope.Stats.(reset_of (installed ()));
  Alcotest.(check int)
    "reset_of (installed ()) zeroes the current shard" 0
    (Kernel.codec_stats k).Envelope.Stats.traps

(* --- cluster-wide metrics: exact counters sum, histograms merge ---------- *)

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let observed_cluster () =
  let c = Kernel.Cluster.create ~shards:2 () in
  for i = 0 to 1 do
    Kernel.populate_standard (Kernel.Cluster.shard c i)
  done;
  let procs =
    List.init 2 (fun i ->
      Kernel.Cluster.boot_shard c i ~name:"metrics" (fun () ->
        Obs.enable ();
        let rc = traffic (Printf.sprintf "m%d" i) (5 + (7 * i)) () in
        Obs.disable ();
        rc))
  in
  Kernel.Cluster.run c;
  List.iter
    (fun (p : Kernel.Proc.t) ->
      Tharness.check_exit "metrics init" 0 p.Kernel.Proc.exit_status)
    procs;
  c

let test_cluster_metrics_merge () =
  let c = observed_cluster () in
  let per_shard =
    List.init 2 (fun i -> Kernel.metrics (Kernel.Cluster.shard c i))
  in
  let agg = Kernel.Cluster.metrics c in
  let sum f = List.fold_left (fun acc m -> acc + f m) 0 per_shard in
  Alcotest.(check int)
    "spans sum across shards" (sum (fun m -> m.Obs.m_spans)) agg.Obs.m_spans;
  Alcotest.(check bool) "cluster saw spans" true (agg.Obs.m_spans > 0);
  (* per-syscall: calls, errors, and histogram populations all sum *)
  let calls_of sysno m =
    match List.find_opt (fun s -> s.Obs.sm_sysno = sysno) m.Obs.m_syscalls with
    | Some s -> (s.Obs.sm_calls, Obs.Hist.count s.Obs.sm_hist)
    | None -> (0, 0)
  in
  List.iter
    (fun s ->
      let want =
        List.fold_left
          (fun (a, b) m ->
            let x, y = calls_of s.Obs.sm_sysno m in
            (a + x, b + y))
          (0, 0) per_shard
      in
      Alcotest.(check (pair int int))
        (Printf.sprintf "sysno %d calls+hist sum" s.Obs.sm_sysno)
        want
        (s.Obs.sm_calls, Obs.Hist.count s.Obs.sm_hist))
    agg.Obs.m_syscalls;
  (* the merge reads, never mutates, its inputs *)
  let again = List.init 2 (fun i -> Kernel.metrics (Kernel.Cluster.shard c i)) in
  List.iter2
    (fun a b ->
      Alcotest.(check int) "shard snapshot undisturbed" a.Obs.m_spans
        b.Obs.m_spans)
    per_shard again;
  (* the JSON document sums codec counters and records the fan-in *)
  let json = Obs.Json.to_string (Kernel.Cluster.metrics_json c) in
  let doc =
    match Obs.Json.of_string json with
    | Ok d -> d
    | Error e -> Alcotest.failf "metrics json does not parse: %s" e
  in
  let int_at path =
    let rec go doc = function
      | [] -> Obs.Json.to_int doc
      | k :: rest -> Option.bind (Obs.Json.member k doc) (fun d -> go d rest)
    in
    match go doc path with
    | Some n -> n
    | None -> Alcotest.failf "missing field %s" (String.concat "." path)
  in
  Alcotest.(check int) "shards field" 2 (int_at [ "shards" ]);
  let codec_traps = int_at [ "codec"; "traps" ] in
  let want_traps =
    List.fold_left
      (fun acc i ->
        acc
        + (Kernel.codec_stats (Kernel.Cluster.shard c i)).Envelope.Stats.traps)
      0 [ 0; 1 ]
  in
  Alcotest.(check int) "codec traps sum across shards" want_traps codec_traps

let test_cluster_chrome_lanes () =
  let c = observed_cluster () in
  let shards = Kernel.Cluster.drain_obs c in
  Alcotest.(check int) "one stream per shard" 2 (List.length shards);
  List.iter
    (fun (_, records) ->
      Alcotest.(check bool) "each shard drained records" true (records <> []))
    shards;
  let trace = Obs.Chrome.to_string_sharded ~name:Sysno.name shards in
  Alcotest.(check bool)
    "shard 0 lane labelled" true
    (contains trace "s0 pid 1");
  Alcotest.(check bool)
    "shard 1 lane labelled" true
    (contains trace "s1 pid 1");
  (* pids from different shards land in disjoint ranges *)
  (match Obs.Json.of_string trace with
   | Ok (Obs.Json.Arr events) ->
     let pids =
       List.filter_map
         (fun e -> Option.bind (Obs.Json.member "pid" e) Obs.Json.to_int)
         events
     in
     Alcotest.(check bool)
       "low-range (shard 0) pids present" true
       (List.exists (fun p -> p < Obs.Chrome.shard_stride) pids);
     Alcotest.(check bool)
       "high-range (shard 1) pids present" true
       (List.exists (fun p -> p >= Obs.Chrome.shard_stride) pids)
   | _ -> Alcotest.fail "sharded trace is not a JSON array")

(* --- select timer hygiene ------------------------------------------------ *)

(* Every way out of a timed select must drop its armed deadline: the
   timer list is shard state the test body can inspect directly (the
   simulation shares the host heap), so park a child in select, wake it
   each possible way, and look while the child is still alive — a
   leaked [T_select] would still be armed then. *)
let test_select_timer_hygiene () =
  let k = Tharness.fresh_kernel () in
  let select_timers () =
    List.length
      (List.filter
         (fun (_, ev) ->
           match ev with Kernel.Kstate.T_select _ -> true | _ -> false)
         k.Kernel.Kstate.timers)
  in
  let u = Tharness.check_ok in
  let status =
    Tharness.boot_k k (fun () ->
      let r, w = u "pipe" (Libc.Unistd.pipe ()) in
      (* a pure poll never arms a deadline at all *)
      ignore (u "poll" (Libc.Unistd.select ~read:[ r ] ~timeout_us:0 ()));
      if select_timers () <> 0 then 1
      else begin
        let ar, aw = u "pipe2" (Libc.Unistd.pipe ()) in
        let spawn sel =
          u "fork"
            (Libc.Unistd.fork ~child:(fun () ->
               sel ();
               ignore (Libc.Unistd.write aw "k");
               (* stay alive: a leaked deadline would still be armed
                  when the driver looks *)
               ignore (Libc.Unistd.sleep_us 30_000);
               0))
        in
        let awake_leaks pid =
          let b = Bytes.create 1 in
          ignore (u "ack" (Libc.Unistd.read ar b 1));
          let leaked = select_timers () in
          ignore (u "reap" (Libc.Unistd.waitpid pid 0));
          leaked
        in
        (* data arrives before the deadline *)
        let pid =
          spawn (fun () ->
            ignore (Libc.Unistd.select ~read:[ r ] ~timeout_us:1_000_000 ()))
        in
        ignore (Libc.Unistd.sleep_us 2_000);
        ignore (u "wake" (Libc.Unistd.write w "x"));
        if awake_leaks pid <> 0 then 2
        else begin
          let b = Bytes.create 1 in
          ignore (u "drain" (Libc.Unistd.read r b 1));
          (* the deadline itself expires *)
          let pid =
            spawn (fun () ->
              ignore (Libc.Unistd.select ~read:[ r ] ~timeout_us:3_000 ()))
          in
          if awake_leaks pid <> 0 then 3
          else begin
            (* a signal ends the wait: select is not restartable, the
               EINTR surfaces, and the deadline dies with the wait *)
            let pid =
              spawn (fun () ->
                ignore
                  (Libc.Unistd.signal Signal.sigusr1
                     (Value.H_fn (fun _ -> ())));
                match
                  Libc.Unistd.select ~read:[ r ] ~timeout_us:1_000_000 ()
                with
                | Error Errno.EINTR -> ()
                | Ok _ | Error _ -> Libc.Unistd._exit 9)
            in
            ignore (Libc.Unistd.sleep_us 2_000);
            u "kill" (Libc.Unistd.kill pid Signal.sigusr1);
            if awake_leaks pid <> 0 then 4
            else begin
              ignore (Libc.Unistd.close r);
              ignore (Libc.Unistd.close w);
              ignore (Libc.Unistd.close ar);
              ignore (Libc.Unistd.close aw);
              0
            end
          end
        end
      end)
  in
  Tharness.check_exit "no leaked select deadlines" 0 status

let () =
  Alcotest.run "shard"
    [ ( "isolation",
        [ Alcotest.test_case "sequential kernels share nothing" `Quick
            test_sequential_isolation;
          Alcotest.test_case "with_shard multiplexes two kernels" `Quick
            test_with_shard_coexist;
          Alcotest.test_case "installed counter sets read the current shard"
            `Quick test_installed_sets ] );
      ( "determinism",
        [ Alcotest.test_case "same seed, same bytes at 1 shard" `Quick
            test_determinism_one_shard;
          Alcotest.test_case "2 shards without sends = two solo runs" `Quick
            test_cluster_matches_solo;
          Alcotest.test_case "signal ring reproduces byte-identically" `Quick
            test_cluster_reproducible ] );
      ( "cluster metrics",
        [ Alcotest.test_case "counters sum, histograms merge" `Quick
            test_cluster_metrics_merge;
          Alcotest.test_case "chrome export gets per-shard lanes" `Quick
            test_cluster_chrome_lanes ] );
      ( "timer-hygiene",
        [ Alcotest.test_case "select deadlines never leak" `Quick
            test_select_timer_hygiene ] ) ]
