(* The conformance subsystem: signature capture and serialization, the
   delta algebra's normalization, the differential checker over real
   agent stacks (including a deliberately buggy one), and the strace
   importer's parse/replay path. *)

open Abi
module Sig = Conformance.Signature

let qtest = QCheck_alcotest.to_alcotest

(* --- generators ---------------------------------------------------------- *)

let some_sysnos =
  [ Sysno.sys_read; Sysno.sys_write; Sysno.sys_open; Sysno.sys_close;
    Sysno.sys_stat; Sysno.sys_getpid; Sysno.sys_gettimeofday;
    Sysno.sys_exit ]

let some_shapes = [ ""; "i3"; "i3,b2^9,i2^9"; "p2.mss,i0,i2^8"; "tv"; "st" ]

(* raw obs events: errno −1 (pending) renders as a Noreturn outcome *)
let gen_obs_events =
  QCheck.Gen.(
    list_size (int_range 0 40)
      (map
         (fun (pid, (sysno_i, (shape_i, errno))) ->
           (pid, List.nth some_sysnos (sysno_i mod List.length some_sysnos),
            List.nth some_shapes (shape_i mod List.length some_shapes),
            errno))
         (pair (int_range 1 9)
            (pair (int_range 0 7) (pair (int_range 0 5) (int_range (-1) 40))))))

let signature_of_raw raw =
  (* replay the raw tuples through the engine tap so x_seq is assigned
     the way capture assigns it *)
  let evs =
    List.mapi
      (fun i (pid, sysno, shape, errno) ->
        { Obs.g_seq = i + 1; g_pid = pid; g_sysno = sysno; g_shape = shape;
          g_errno = (if errno > 40 then 0 else errno) })
      raw
  in
  Sig.of_obs evs

let arb_signature =
  QCheck.make
    ~print:(fun raw -> Sig.to_string (signature_of_raw raw))
    gen_obs_events

(* realistic deltas only: renumbering tables map a foreign range onto
   the native one (domains disjoint from ranges), which is the
   precondition for idempotence *)
let gen_delta =
  QCheck.Gen.(
    list_size (int_range 0 4)
      (map
         (fun (kind, (sysno_i, errno_i)) ->
           let sysno =
             List.nth some_sysnos (sysno_i mod List.length some_sysnos)
           in
           match kind mod 5 with
           | 0 -> Delta.Shifts_results [ sysno ]
           | 1 -> Delta.Rewrites_results [ sysno; Sysno.sys_read ]
           | 2 ->
             Delta.May_fail
               {
                 sysnos = [ sysno; Sysno.sys_write ];
                 errnos =
                   [ List.nth
                       [ Errno.EIO; Errno.ENOENT; Errno.EPERM ]
                       (errno_i mod 3) ];
               }
           | 3 -> Delta.May_delay [ sysno ]
           | _ -> Delta.Renumbers Agents.Foreign_abi.native_pairs)
         (pair (int_range 0 4) (pair (int_range 0 7) (int_range 0 2)))))

let arb_sig_and_delta =
  QCheck.make
    ~print:(fun (raw, d) ->
      Sig.to_string (signature_of_raw raw) ^ " / " ^ Delta.to_string d)
    QCheck.Gen.(pair gen_obs_events gen_delta)

let events_equal a b = Sig.events a = Sig.events b

(* --- serialization round-trip -------------------------------------------- *)

let qcheck_roundtrip =
  QCheck.Test.make ~name:"signature JSON round-trips exactly" ~count:300
    arb_signature (fun raw ->
      let s = signature_of_raw raw in
      match Sig.of_string (Sig.to_string s) with
      | Ok s' -> events_equal s s'
      | Error _ -> false)

let qcheck_roundtrip_masked =
  QCheck.Test.make ~name:"masked outcomes survive serialization" ~count:200
    arb_sig_and_delta (fun (raw, d) ->
      let s = Sig.normalize d (signature_of_raw raw) in
      match Sig.of_string (Sig.to_string s) with
      | Ok s' -> events_equal s s'
      | Error _ -> false)

(* plain substring replace (first occurrence) *)
let replace ~needle ~by hay =
  let nl = String.length needle and hl = String.length hay in
  let rec find i = if i + nl > hl then None
    else if String.sub hay i nl = needle then Some i else find (i + 1) in
  match find 0 with
  | None -> hay
  | Some i ->
    String.sub hay 0 i ^ by ^ String.sub hay (i + nl) (hl - i - nl)

let test_reject_truncated () =
  let s = signature_of_raw [ (1, Sysno.sys_read, "i3", 0) ] in
  let json = Sig.to_string s in
  (* claim two events but carry one *)
  let lied = replace ~needle:"\"events\":1" ~by:"\"events\":2" json in
  match Sig.of_string lied with
  | Ok _ -> Alcotest.fail "accepted a truncated stream"
  | Error _ -> ()

(* --- diff ----------------------------------------------------------------- *)

let qcheck_diff_identity =
  QCheck.Test.make ~name:"diff s s = None" ~count:300 arb_signature
    (fun raw ->
      let s = signature_of_raw raw in
      Sig.diff ~bare:s ~under:s = None)

let test_diff_pinpoints () =
  let mk errs =
    signature_of_raw
      (List.map (fun e -> (1, Sysno.sys_read, "i3,b2^9,i2^9", e)) errs)
  in
  let bare = mk [ 0; 0; 0 ] in
  let under = mk [ 0; Errno.to_int Errno.EIO; 0 ] in
  match Sig.diff ~bare ~under with
  | Some d ->
    Alcotest.(check int) "index" 1 d.Sig.d_index;
    Alcotest.(check bool) "names the call" true
      (let r = d.Sig.d_reason in
       let has needle hay =
         let nl = String.length needle and hl = String.length hay in
         let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
         go 0
       in
       has "read" r && has "EIO" r)
  | None -> Alcotest.fail "identical?"

let test_diff_length_mismatch () =
  let mk n =
    signature_of_raw (List.init n (fun _ -> (1, Sysno.sys_getpid, "", 0)))
  in
  (match Sig.diff ~bare:(mk 3) ~under:(mk 2) with
   | Some d -> Alcotest.(check int) "ends early at" 2 d.Sig.d_index
   | None -> Alcotest.fail "missed truncation");
  match Sig.diff ~bare:(mk 2) ~under:(mk 3) with
  | Some d ->
    Alcotest.(check bool) "extra flagged" true (d.Sig.d_bare = None)
  | None -> Alcotest.fail "missed extra calls"

(* --- normalization -------------------------------------------------------- *)

let qcheck_normalize_idempotent =
  QCheck.Test.make ~name:"normalization is idempotent" ~count:300
    arb_sig_and_delta (fun (raw, d) ->
      let s = signature_of_raw raw in
      let once = Sig.normalize d s in
      events_equal (Sig.normalize d once) once)

let test_mask_collapses_declared () =
  let bare = signature_of_raw [ (1, Sysno.sys_read, "i3", 0) ] in
  let under =
    signature_of_raw [ (1, Sysno.sys_read, "i3", Errno.to_int Errno.EIO) ]
  in
  let d =
    [ Delta.May_fail { sysnos = [ Sysno.sys_read ]; errnos = [ Errno.EIO ] } ]
  in
  Alcotest.(check bool) "declared failure masks out" true
    (Sig.diff ~bare:(Sig.normalize d bare) ~under:(Sig.normalize d under)
     = None);
  (* an UNdeclared errno stays visible *)
  let under' =
    signature_of_raw [ (1, Sysno.sys_read, "i3", Errno.to_int Errno.ENOSPC) ]
  in
  Alcotest.(check bool) "undeclared errno still diverges" true
    (Sig.diff ~bare:(Sig.normalize d bare) ~under:(Sig.normalize d under')
     <> None)

let test_renumber_normalizes () =
  let vos =
    signature_of_raw [ (1, Agents.Foreign_abi.v_read, "i3,b2^6,i2^6", 0) ]
  in
  let native = signature_of_raw [ (1, Sysno.sys_read, "i3,b2^6,i2^6", 0) ] in
  let d = [ Delta.Renumbers Agents.Foreign_abi.native_pairs ] in
  Alcotest.(check bool) "foreign maps onto native" true
    (Sig.diff ~bare:(Sig.normalize d native) ~under:(Sig.normalize d vos)
     = None)

(* --- shape stability ------------------------------------------------------ *)

let test_shape_view_independent () =
  let calls =
    [ Call.Read (3, Bytes.create 512, 512);
      Call.Open ("/doc/ch1.mss", Flags.Open.o_rdonly, 0);
      Call.Getpid;
      Call.Gettimeofday (ref None);
      Call.Stat ("/etc/motd", ref None) ]
  in
  List.iter
    (fun c ->
      Alcotest.(check string)
        "of_call = of_wire . encode" (Shape.of_call c)
        (Shape.of_wire (Call.encode c));
      Alcotest.(check string)
        "envelope shape view-independent"
        (Envelope.shape (Envelope.of_call c))
        (Envelope.shape (Envelope.of_wire (Call.encode c))))
    calls

let test_shape_classes () =
  Alcotest.(check string) "path class" "p2.mss"
    (Shape.token (Value.Str "/doc/ch1.mss"));
  Alcotest.(check string) "small int exact" "i3" (Shape.token (Value.Int 3));
  Alcotest.(check string) "magnitude class" "i2^10"
    (Shape.token (Value.Int 1024));
  Alcotest.(check string) "buffer class" "b2^9"
    (Shape.token (Value.Buf (Bytes.create 512)))

(* --- the differential checker over real stacks ---------------------------- *)

let scribe = Fault.Campaign.scribe

let test_matrix_scribe () =
  let baseline = Conformance.capture scribe Conformance.bare in
  Alcotest.(check bool) "bare run captured calls" true
    (Sig.length baseline.Conformance.cap_sig >= 10);
  List.iter
    (fun stack ->
      let v = Conformance.check ~baseline scribe stack in
      if not (Conformance.conforms v) then
        Alcotest.failf "scribe under %s: %s" stack.Conformance.sk_name
          (Conformance.verdict_to_string v))
    Conformance.stacks

let test_mutant_flagged () =
  let v = Conformance.check scribe Conformance.mutant in
  match v.Conformance.c_violation with
  | None -> Alcotest.fail "undeclared injection escaped the checker"
  | Some d ->
    (* the violation pins the first diverging span: the second read,
       failed EIO where the bare run succeeded *)
    (match d.Sig.d_under with
     | Some ev ->
       Alcotest.(check int) "diverges on read" Sysno.sys_read ev.Sig.x_sysno;
       Alcotest.(check bool) "with the injected errno" true
         (ev.Sig.x_outcome = Sig.Err (Errno.to_int Errno.EIO))
     | None -> Alcotest.fail "no under-stack event in the divergence")

let test_capture_exact_under_sampling () =
  let full = Conformance.capture scribe Conformance.bare in
  let was = Obs.sampling () in
  Obs.set_sampling 16;
  let sampled = Conformance.capture scribe Conformance.bare in
  Obs.set_sampling was;
  Alcotest.(check bool) "sampling does not thin the signature" true
    (events_equal full.Conformance.cap_sig sampled.Conformance.cap_sig)

let test_of_spec () =
  (match Conformance.of_spec "trace,crypt" with
   | Ok s ->
     Alcotest.(check string) "composite name" "trace,crypt"
       s.Conformance.sk_name;
     let v = Conformance.check scribe s in
     Alcotest.(check bool) "composite stack conforms" true
       (Conformance.conforms v)
   | Error e -> Alcotest.fail e);
  match Conformance.of_spec "trace,nosuch" with
  | Ok _ -> Alcotest.fail "accepted an unknown stack"
  | Error _ -> ()

(* --- the buggy remap ------------------------------------------------------ *)

(* a remap that "loses" the stat translation: the foreign trap is
   failed as an unknown call instead of being rewritten — exactly what
   passing it down untranslated would produce *)
class buggy_remap =
  object
    inherit Agents.Remap.agent as super

    method! syscall env =
      if Envelope.number env = Agents.Foreign_abi.v_stat then
        Error Errno.ENOSYS
      else super#syscall env
  end

let vos_setup k = Kernel.write_file k ~path:"/tmp/subject" "twin data\n"

(* the same program twice: once in VOS dialect, once native *)
let vos_body () =
  ignore (Agents.Foreign_abi.Stub.getpid ());
  ignore (Agents.Foreign_abi.Stub.gettimeofday (ref None));
  ignore (Agents.Foreign_abi.Stub.write 1 "hello\n");
  ignore (Agents.Foreign_abi.Stub.stat "/tmp/subject" (ref None));
  0

let native_body () =
  ignore (Libc.Unistd.getpid ());
  ignore (Libc.Unistd.gettimeofday ());
  ignore (Libc.Unistd.write 1 "hello\n");
  ignore (Libc.Unistd.stat "/tmp/subject");
  0

let check_vos_against_native stack =
  let native_w =
    Conformance.workload_of_body ~name:"twin-native" ~setup:vos_setup
      native_body
  in
  let vos_w =
    Conformance.workload_of_body ~name:"twin-vos" ~setup:vos_setup vos_body
  in
  let b = Conformance.capture native_w Conformance.bare in
  let u = Conformance.capture vos_w stack in
  let d = u.Conformance.cap_delta in
  Sig.diff
    ~bare:(Sig.normalize d b.Conformance.cap_sig)
    ~under:(Sig.normalize d u.Conformance.cap_sig)

let test_remap_twin_conforms () =
  match check_vos_against_native Conformance.remap with
  | None -> ()
  | Some d ->
    Alcotest.failf "VOS twin diverged under correct remap: %s"
      (Sig.divergence_to_string d)

let test_buggy_remap_flagged () =
  let stack =
    {
      Conformance.sk_name = "remap-buggy";
      sk_make =
        (fun () -> [ (new buggy_remap :> Toolkit.Numeric.numeric_syscall) ]);
    }
  in
  match check_vos_against_native stack with
  | None -> Alcotest.fail "dropped rewrite escaped the checker"
  | Some d -> (
    match d.Sig.d_under with
    | Some ev ->
      (* normalization has renumbered the foreign stat to native *)
      Alcotest.(check int) "diverges on stat" Sysno.sys_stat ev.Sig.x_sysno;
      Alcotest.(check bool) "outcome is the dropped rewrite's ENOSYS" true
        (ev.Sig.x_outcome = Sig.Err (Errno.to_int Errno.ENOSYS))
    | None -> Alcotest.fail "no under-stack event in the divergence")

(* --- strace import -------------------------------------------------------- *)

let sample_trace =
  String.concat "\n"
    [
      {|execve("/usr/bin/cat", ["cat", "/etc/motd"], 0x7ffd4 /* 23 vars */) = 0|};
      {|brk(NULL)                               = 0x55f1c6943000|};
      {|openat(AT_FDCWD, "/etc/motd", O_RDONLY) = 3|};
      {|fstat(3, {st_mode=S_IFREG|0644, st_size=286, ...}) = 0|};
      {|read(3, "Welcome to the machine\n", 131072) = 23|};
      {|read(3, "", 131072)                     = 0|};
      {|write(1, "Welcome to the machine\n", 23) = 23|};
      {|close(3)                                = 0|};
      {|stat("/nonexistent", 0x7ffc) = -1 ENOENT (No such file or directory)|};
      {|getpid()                                = 4242|};
      {|epoll_create1(EPOLL_CLOEXEC)            = 4|};
      {|exit_group(0)                           = ?|};
      {|+++ exited with 0 +++|};
    ]

let test_strace_parse () =
  let tr = Conformance.Strace.parse sample_trace in
  Alcotest.(check int) "mapped entries" 11
    (List.length tr.Conformance.Strace.tr_entries);
  Alcotest.(check int) "unmapped counted, not dropped" 1
    tr.Conformance.Strace.tr_skipped;
  let open_e = List.nth tr.Conformance.Strace.tr_entries 2 in
  Alcotest.(check int) "openat maps to open" Sysno.sys_open
    open_e.Conformance.Strace.t_sysno;
  Alcotest.(check (option string)) "path extracted" (Some "/etc/motd")
    open_e.Conformance.Strace.t_path;
  let stat_e = List.nth tr.Conformance.Strace.tr_entries 8 in
  Alcotest.(check bool) "errno parsed" true
    (stat_e.Conformance.Strace.t_errno = Some Errno.ENOENT)

let test_strace_signature () =
  let tr = Conformance.Strace.parse sample_trace in
  let s = Conformance.Strace.to_signature tr in
  Alcotest.(check int) "one event per mapped call" 11 (Sig.length s);
  (* and it round-trips like any other signature *)
  match Sig.of_string (Sig.to_string s) with
  | Ok s' -> Alcotest.(check bool) "round-trips" true (events_equal s s')
  | Error e -> Alcotest.failf "no round-trip: %s" e

let test_strace_replayable () =
  let open Tharness in
  let tr = Conformance.Strace.parse sample_trace in
  (* the scenario's world: give the trace's paths something to hit *)
  let populate k = Kernel.write_file k ~path:"/etc/motd" "Welcome\n" in
  let recorder = Agents.Record_replay.create_recorder () in
  let k1 = fresh_kernel () in
  populate k1;
  let (_ : int) =
    boot_k k1 (fun () ->
      Toolkit.Loader.install recorder ~argv:[||];
      Conformance.Strace.scenario tr ())
  in
  Alcotest.(check bool) "recorder journaled inputs" true
    (recorder#entries > 0);
  let replayer =
    Agents.Record_replay.create_replayer ~journal:recorder#journal
  in
  let k2 = fresh_kernel () in
  populate k2;
  let (_ : int) =
    boot_k k2 (fun () ->
      Toolkit.Loader.install replayer ~argv:[||];
      Conformance.Strace.scenario tr ())
  in
  Alcotest.(check int) "replay desyncs" 0 replayer#desyncs;
  Alcotest.(check bool) "journal consumed" true (replayer#consumed > 0)

(* --- deltas are live on the shipped agents -------------------------------- *)

let test_agent_deltas_declared () =
  let has_clauses (a : Toolkit.Numeric.numeric_syscall) =
    a#declared_delta <> Delta.none
  in
  Alcotest.(check bool) "timex declares" true
    (has_clauses
       (Agents.Timex.create ~offset_seconds:1 ()
         :> Toolkit.Numeric.numeric_syscall));
  Alcotest.(check bool) "remap declares" true
    (has_clauses (Agents.Remap.create () :> Toolkit.Numeric.numeric_syscall));
  Alcotest.(check bool) "trace declares nothing" false
    (has_clauses (Agents.Trace.create () :> Toolkit.Numeric.numeric_syscall));
  Alcotest.(check bool) "recorder declares nothing" false
    (has_clauses
       (Agents.Record_replay.create_recorder ()
         :> Toolkit.Numeric.numeric_syscall));
  Alcotest.(check bool) "replayer declares" true
    (has_clauses
       (Agents.Record_replay.create_replayer ~journal:""
         :> Toolkit.Numeric.numeric_syscall))

let () =
  Alcotest.run "conformance"
    [
      ( "signature",
        [
          qtest qcheck_roundtrip;
          qtest qcheck_roundtrip_masked;
          Alcotest.test_case "rejects truncation" `Quick
            test_reject_truncated;
          qtest qcheck_diff_identity;
          Alcotest.test_case "diff pinpoints first span" `Quick
            test_diff_pinpoints;
          Alcotest.test_case "diff flags length mismatch" `Quick
            test_diff_length_mismatch;
        ] );
      ( "normalize",
        [
          qtest qcheck_normalize_idempotent;
          Alcotest.test_case "mask collapses declared" `Quick
            test_mask_collapses_declared;
          Alcotest.test_case "renumber normalizes" `Quick
            test_renumber_normalizes;
        ] );
      ( "shape",
        [
          Alcotest.test_case "view-independent" `Quick
            test_shape_view_independent;
          Alcotest.test_case "classes" `Quick test_shape_classes;
        ] );
      ( "checker",
        [
          Alcotest.test_case "scribe conforms under every stack" `Slow
            test_matrix_scribe;
          Alcotest.test_case "undeclared injection flagged" `Quick
            test_mutant_flagged;
          Alcotest.test_case "capture exact under sampling" `Quick
            test_capture_exact_under_sampling;
          Alcotest.test_case "stack specs" `Quick test_of_spec;
          Alcotest.test_case "agents declare their deltas" `Quick
            test_agent_deltas_declared;
        ] );
      ( "remap",
        [
          Alcotest.test_case "VOS twin conforms" `Quick
            test_remap_twin_conforms;
          Alcotest.test_case "dropped rewrite flagged" `Quick
            test_buggy_remap_flagged;
        ] );
      ( "strace",
        [
          Alcotest.test_case "parses the common form" `Quick
            test_strace_parse;
          Alcotest.test_case "becomes a signature" `Quick
            test_strace_signature;
          Alcotest.test_case "record/replays cleanly" `Quick
            test_strace_replayable;
        ] );
    ]
