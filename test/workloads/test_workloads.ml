(* Workload tests: the utility programs, the scribe formatter, the
   make+cc pipeline and the AFS-style benchmark — including the
   syscall-count and virtual-time calibration the paper's tables rest
   on, and cross-checks of workloads running under agents. *)

open Tharness

let setup_utils () =
  let k = fresh_kernel () in
  Workloads.Progs.install_all k;
  k

(* --- utilities ------------------------------------------------------------ *)

let test_echo_cat () =
  let k = setup_utils () in
  let status =
    boot_k k (fun () ->
      let st =
        check_ok "echo" (Libc.Spawn.run "/bin/echo" [| "echo"; "hi"; "there" |])
      in
      ignore st;
      ignore (check_ok "write" (Libc.Stdio.write_file "/tmp/f" "file body\n"));
      Libc.Spawn.run_exit_code "/bin/cat" [| "cat"; "/tmp/f" |])
  in
  check_exit "cat ok" 0 status;
  Alcotest.(check string) "output" "hi there\nfile body\n"
    (Kernel.console_output k)

let test_cp_wc () =
  let k = setup_utils () in
  let status =
    boot_k k (fun () ->
      ignore (check_ok "write" (Libc.Stdio.write_file "/tmp/a" "one two\nthree\n"));
      let rc = Libc.Spawn.run_exit_code "/bin/cp" [| "cp"; "/tmp/a"; "/tmp/b" |] in
      if rc <> 0 then rc
      else Libc.Spawn.run_exit_code "/bin/wc" [| "wc"; "/tmp/b" |])
  in
  check_exit "wc ok" 0 status;
  Alcotest.(check string) "wc output" "      2       3      14 /tmp/b\n"
    (Kernel.console_output k)

let test_ls_long () =
  let k = setup_utils () in
  Kernel.write_file k ~path:"/tmp/dir/x" "1234";
  let status =
    boot_k k (fun () ->
      Libc.Spawn.run_exit_code "/bin/ls" [| "ls"; "-l"; "/tmp/dir" |])
  in
  check_exit "ls ok" 0 status;
  let out = Kernel.console_output k in
  Alcotest.(check bool) "mode string" true
    (String.length out > 10 && String.sub out 0 4 = "-rw-")

let test_sh_pipeline () =
  let k = setup_utils () in
  let status =
    boot_k k (fun () ->
      ignore
        (check_ok "w"
           (Libc.Stdio.write_file "/tmp/words" "alpha\nbeta\ngamma\nbeta2\n"));
      Libc.Spawn.run_exit_code "/bin/sh"
        [| "sh"; "-c"; "cat /tmp/words | grep beta | wc" |])
  in
  check_exit "pipeline ok" 0 status;
  Alcotest.(check string) "two matching lines" "      2       2      11\n"
    (Kernel.console_output k)

let test_sh_split () =
  Alcotest.(check (list (list string)))
    "parser"
    [ [ "cat"; "/f" ]; [ "wc" ] ]
    (Workloads.Progs.sh_split "cat /f | wc ")

let test_sh_redirection () =
  let k = setup_utils () in
  Kernel.write_file k ~path:"/tmp/in" "one two three\n";
  let status =
    boot_k k (fun () ->
      Libc.Spawn.run_exit_code "/bin/sh"
        [| "sh"; "-c"; "cat < /tmp/in > /tmp/out ; wc /tmp/out" |])
  in
  check_exit "sh ok" 0 status;
  Alcotest.(check string) "redirected copy" "one two three\n"
    (read_file_exn k "/tmp/out");
  Alcotest.(check string) "wc of the copy" "      1       3      14 /tmp/out\n"
    (Kernel.console_output k)

let test_sh_append () =
  let k = setup_utils () in
  let status =
    boot_k k (fun () ->
      Libc.Spawn.run_exit_code "/bin/sh"
        [| "sh"; "-c"; "echo first > /tmp/log ; echo second >> /tmp/log" |])
  in
  check_exit "sh ok" 0 status;
  Alcotest.(check string) "appended" "first\nsecond\n"
    (read_file_exn k "/tmp/log")

let test_sh_and_short_circuit () =
  let k = setup_utils () in
  let status =
    boot_k k (fun () ->
      let a =
        Libc.Spawn.run_exit_code "/bin/sh"
          [| "sh"; "-c"; "true && echo ran" |]
      in
      let b =
        Libc.Spawn.run_exit_code "/bin/sh"
          [| "sh"; "-c"; "false && echo not-this" |]
      in
      if a = 0 && b = 1 then 0 else 1)
  in
  check_exit "short-circuit" 0 status;
  Alcotest.(check string) "only the first echo" "ran\n"
    (Kernel.console_output k)

let test_sh_pipeline_into_redirect () =
  let k = setup_utils () in
  Kernel.write_file k ~path:"/tmp/words" "apple\nbanana\navocado\n";
  let status =
    boot_k k (fun () ->
      Libc.Spawn.run_exit_code "/bin/sh"
        [| "sh"; "-c"; "cat /tmp/words | grep a | wc > /tmp/count" |])
  in
  check_exit "sh ok" 0 status;
  Alcotest.(check string) "counted into file" "      3       3      21\n"
    (read_file_exn k "/tmp/count")

let test_ed_interactive_session () =
  (* drive the editor through the console's input queue, like a user
     typing at the terminal *)
  let k = setup_utils () in
  Kernel.feed_console k
    "a\nfirst line\nsecond line\nthird line\n.\nd 2\np\nw /tmp/doc\nq\n";
  let status =
    boot_k k (fun () -> Libc.Spawn.run_exit_code "/bin/ed" [| "ed" |])
  in
  check_exit "ed ok" 0 status;
  Alcotest.(check string) "written file" "first line\nthird line\n"
    (read_file_exn k "/tmp/doc");
  let out = Kernel.console_output k in
  Alcotest.(check bool) "printed numbered buffer" true
    (let needle = "   1  first line\n   2  third line\n" in
     let nl = String.length needle in
     let rec search i =
       i + nl <= String.length out
       && (String.sub out i nl = needle || search (i + 1))
     in
     search 0)

let test_ed_loads_existing_file () =
  let k = setup_utils () in
  Kernel.write_file k ~path:"/tmp/notes" "alpha\nbeta\n";
  Kernel.feed_console k "a\ngamma\n.\nw /tmp/notes\nq\n";
  let status =
    boot_k k (fun () ->
      Libc.Spawn.run_exit_code "/bin/ed" [| "ed"; "/tmp/notes" |])
  in
  check_exit "ed ok" 0 status;
  Alcotest.(check string) "appended" "alpha\nbeta\ngamma\n"
    (read_file_exn k "/tmp/notes")

let test_sh_interactive () =
  let k = setup_utils () in
  Kernel.write_file k ~path:"/tmp/data" "hello\nworld\n";
  Kernel.feed_console k "echo starting\ncat /tmp/data | wc\nexit\n";
  let status =
    boot_k k (fun () -> Libc.Spawn.run_exit_code "/bin/sh" [| "sh" |])
  in
  check_exit "sh repl ok" 0 status;
  let out = Kernel.console_output k in
  Alcotest.(check bool) "prompted and ran" true
    (let needle = "$ starting\n" in
     let nl = String.length needle in
     let rec search i =
       i + nl <= String.length out
       && (String.sub out i nl = needle || search (i + 1))
     in
     search 0)

(* --- scribe ------------------------------------------------------------------ *)

let test_scribe_formats () =
  let k = fresh_kernel () in
  Workloads.Scribe.setup ~params:Workloads.Scribe.quick_params k;
  let status =
    boot_k k (fun () ->
      Workloads.Scribe.body ~params:Workloads.Scribe.quick_params ())
  in
  check_exit "scribe ok" 0 status;
  let out = read_file_exn k Workloads.Scribe.output_path in
  Alcotest.(check bool) "has chapter heading" true
    (String.length out > 0
     &&
     let needle = "Chapter 1." in
     let nl = String.length needle in
     let rec search i =
       i + nl <= String.length out
       && (String.sub out i nl = needle || search (i + 1))
     in
     search 0);
  (* filled lines must respect the 72-column page *)
  List.iter
    (fun line ->
      if String.length line > 72 then
        Alcotest.failf "line exceeds page width: %S" line)
    (String.split_on_char '\n' out)

let test_scribe_calibration () =
  (* the default document must land near the paper's baseline: ≈716
     syscalls and ≈129 virtual seconds *)
  let k = fresh_kernel () in
  Workloads.Scribe.setup k;
  let status = boot_k k (fun () -> Workloads.Scribe.body ()) in
  check_exit "scribe ok" 0 status;
  let calls = Kernel.total_syscalls k in
  let secs = Kernel.elapsed_seconds k in
  if calls < 500 || calls > 1000 then
    Alcotest.failf "syscall count %d outside [500, 1000]" calls;
  if secs < 90.0 || secs > 170.0 then
    Alcotest.failf "virtual time %.1fs outside [90, 170]" secs

let test_scribe_deterministic () =
  let run () =
    let k = fresh_kernel () in
    Workloads.Scribe.setup ~params:Workloads.Scribe.quick_params k;
    let _ =
      boot_k k (fun () ->
        Workloads.Scribe.body ~params:Workloads.Scribe.quick_params ())
    in
    read_file_exn k Workloads.Scribe.output_path, Kernel.elapsed_seconds k
  in
  let a = run () in
  let b = run () in
  Alcotest.(check bool) "identical runs" true (a = b)

(* --- make ---------------------------------------------------------------------- *)

let test_make_builds_quick () =
  let k = fresh_kernel () in
  Workloads.Make_cc.setup ~params:Workloads.Make_cc.quick_params k;
  let status = boot_k k (fun () -> Workloads.Make_cc.body ()) in
  check_exit "make ok" 0 status;
  Alcotest.(check bool) "prog1 linked" true (Kernel.exists k "/proj/prog1");
  Alcotest.(check bool) "prog2 linked" true (Kernel.exists k "/proj/prog2");
  let exe = read_file_exn k "/proj/prog1" in
  Alcotest.(check bool) "executable magic" true
    (String.length exe > 4 && String.sub exe 0 4 = "\007EXE");
  Alcotest.(check bool) "intermediates present" true
    (Kernel.exists k "/proj/prog1_a.o")

let test_make_up_to_date () =
  let k = fresh_kernel () in
  Workloads.Make_cc.setup ~params:Workloads.Make_cc.quick_params k;
  let _ = boot_k k (fun () -> Workloads.Make_cc.body ()) in
  (* a second run in a fresh session must find everything current *)
  let k2_console_start = String.length (Kernel.console_output k) in
  let status =
    Kernel.boot
      (let k' = k in
       k')
      ~name:"make2" (fun () -> Workloads.Make_cc.body ())
  in
  ignore status;
  let out = Kernel.console_output k in
  let tail = String.sub out k2_console_start (String.length out - k2_console_start) in
  Alcotest.(check bool) "reports up to date" true
    (let needle = "up to date" in
     let nl = String.length needle in
     let rec search i =
       i + nl <= String.length tail
       && (String.sub tail i nl = needle || search (i + 1))
     in
     search 0)

let count_forks k = ignore k

let test_make_calibration () =
  (* default tree: 64 fork/exec pairs, tens of thousands of calls,
     ≈16 virtual seconds *)
  let k = fresh_kernel () in
  Workloads.Make_cc.setup k;
  let status = boot_k k (fun () -> Workloads.Make_cc.body ()) in
  check_exit "make ok" 0 status;
  count_forks k;
  let calls = Kernel.total_syscalls k in
  let secs = Kernel.elapsed_seconds k in
  if calls < 15_000 || calls > 60_000 then
    Alcotest.failf "syscall count %d outside [15k, 60k]" calls;
  if secs < 10.0 || secs > 25.0 then
    Alcotest.failf "virtual time %.1fs outside [10, 25]" secs

let test_make_under_union_split_tree () =
  (* the paper's union motivation: sources in /src, objects in /obj,
     make sees one merged tree *)
  let k = fresh_kernel () in
  Workloads.Make_cc.setup ~params:Workloads.Make_cc.quick_params k;
  (* split: move the generated /proj sources into /srcdir, objects
     will land in /objdir (first member) *)
  Kernel.mkdir_p k "/objdir";
  let fs = Kernel.fs k in
  let root = Vfs.Fs.root_ino fs in
  check_ok "rename proj"
    (Vfs.Fs.rename fs Vfs.Fs.root_cred ~cwd:root ~src:"/proj" "/srcdir");
  (* /proj becomes a union of /objdir (creations) over /srcdir *)
  let agent =
    Agents.Union.create
      ~mounts:
        [ { Agents.Union.point = "/proj"; members = [ "/objdir"; "/srcdir" ] } ]
      ()
  in
  let status =
    boot_k k (fun () ->
      Toolkit.Loader.install agent ~argv:[||];
      Workloads.Make_cc.body ())
  in
  check_exit "make over union ok" 0 status;
  Alcotest.(check bool) "objects in /objdir" true
    (Kernel.exists k "/objdir/prog1_a.o");
  Alcotest.(check bool) "binary in /objdir" true
    (Kernel.exists k "/objdir/prog1");
  Alcotest.(check bool) "sources untouched" true
    (Kernel.exists k "/srcdir/prog1_a.c"
     && not (Kernel.exists k "/srcdir/prog1_a.o"))

(* --- afs bench -------------------------------------------------------------------- *)

let test_afs_bench_runs () =
  let k = fresh_kernel () in
  Workloads.Afs_bench.setup ~params:Workloads.Afs_bench.quick_params k;
  let status =
    boot_k k (fun () ->
      Workloads.Afs_bench.body ~params:Workloads.Afs_bench.quick_params ())
  in
  check_exit "bench ok" 0 status;
  let out = Kernel.console_output k in
  List.iter
    (fun phase ->
      let needle = Printf.sprintf "phase %d" phase in
      let nl = String.length needle in
      let rec search i =
        i + nl <= String.length out
        && (String.sub out i nl = needle || search (i + 1))
      in
      if not (search 0) then Alcotest.failf "missing %s" needle)
    [ 1; 2; 3; 4; 5 ];
  Alcotest.(check bool) "products written" true
    (Kernel.exists k "/afs/work/dir1/file1.c.o")

let test_afs_copy_faithful () =
  let k = fresh_kernel () in
  Workloads.Afs_bench.setup ~params:Workloads.Afs_bench.quick_params k;
  let _ =
    boot_k k (fun () ->
      Workloads.Afs_bench.body ~params:Workloads.Afs_bench.quick_params ())
  in
  Alcotest.(check string) "copy preserved bytes"
    (read_file_exn k "/afs/src/dir1/file1.c")
    (read_file_exn k "/afs/work/dir1/file1.c")

(* --- workloads under agents: end-to-end sanity -------------------------------------- *)

let test_make_under_trace_is_equivalent () =
  let build k agent_opt =
    Workloads.Make_cc.setup ~params:Workloads.Make_cc.quick_params k;
    let status =
      boot_k k (fun () ->
        (match agent_opt with
         | Some agent -> Toolkit.Loader.install agent ~argv:[||]
         | None -> ());
        Workloads.Make_cc.body ())
    in
    exit_code status, read_file_exn k "/proj/prog1"
  in
  let k1 = fresh_kernel () in
  let plain = build k1 None in
  let k2 = fresh_kernel () in
  let traced =
    build k2
      (Some
         (let a = Agents.Trace.create () in
          (* trace into a file, not the console, to keep outputs equal *)
          a#init [||];
          a#set_output 2;
          (a :> Toolkit.Numeric.numeric_syscall)))
  in
  ignore traced;
  (* under trace the build must still succeed with identical products;
     console differs (trace lines), so compare artifacts only *)
  Alcotest.(check string) "identical binaries" (snd plain) (snd traced);
  Alcotest.(check int) "identical exit" (fst plain) (fst traced)

let test_scribe_under_timex_identical_output () =
  let run agent_opt =
    let k = fresh_kernel () in
    Workloads.Scribe.setup ~params:Workloads.Scribe.quick_params k;
    let _ =
      boot_k k (fun () ->
        (match agent_opt with
         | Some agent -> Toolkit.Loader.install agent ~argv:[||]
         | None -> ());
        Workloads.Scribe.body ~params:Workloads.Scribe.quick_params ())
    in
    read_file_exn k Workloads.Scribe.output_path
  in
  Alcotest.(check string) "same document"
    (run None)
    (run (Some (Agents.Timex.create ~offset_seconds:99999 () :> Toolkit.Numeric.numeric_syscall)))

(* --- kvd: the multi-client socket server -------------------------------------- *)

let check_kvd_clean ~mode p (stats : Workloads.Kvd.stats) k =
  let open Workloads.Kvd in
  Alcotest.(check int) "every client connected" p.clients stats.conns;
  Alcotest.(check int) "no errors" 0 stats.errors;
  Alcotest.(check int) "all ops answered" (p.clients * p.ops_per_client)
    stats.ops;
  (* every request (the mix plus the final Q) lands one latency sample *)
  Alcotest.(check int) "hist count"
    (p.clients * (p.ops_per_client + 1))
    (Obs.Hist.count stats.hist);
  Alcotest.(check string) "summary"
    (Printf.sprintf "mode=%s clients=%d conns=%d ops=%d errors=%d\n"
       (mode_name mode) p.clients stats.conns stats.ops stats.errors)
    (read_file_exn k summary_path)

let test_kvd_fork_quick () =
  let k = fresh_kernel () in
  let p = Workloads.Kvd.quick_params in
  let stats = Workloads.Kvd.run ~params:p ~mode:Workloads.Kvd.Fork_per_conn k in
  check_kvd_clean ~mode:Workloads.Kvd.Fork_per_conn p stats k

let test_kvd_prefork_quick () =
  let k = fresh_kernel () in
  let p = Workloads.Kvd.quick_params in
  let stats = Workloads.Kvd.run ~params:p ~mode:Workloads.Kvd.Prefork k in
  check_kvd_clean ~mode:Workloads.Kvd.Prefork p stats k

let test_kvd_fork_1000 () =
  let k = fresh_kernel () in
  let p = Workloads.Kvd.default_params in
  let stats = Workloads.Kvd.run ~params:p ~mode:Workloads.Kvd.Fork_per_conn k in
  Alcotest.(check int) "1000 clients served" 1000 stats.Workloads.Kvd.conns;
  Alcotest.(check int) "no errors" 0 stats.Workloads.Kvd.errors

let test_kvd_prefork_1000 () =
  let k = fresh_kernel () in
  let p = Workloads.Kvd.default_params in
  let stats = Workloads.Kvd.run ~params:p ~mode:Workloads.Kvd.Prefork k in
  Alcotest.(check int) "1000 clients served" 1000 stats.Workloads.Kvd.conns;
  Alcotest.(check int) "no errors" 0 stats.Workloads.Kvd.errors

let test_kvd_causal_deterministic () =
  let edges () =
    Obs.reset ();
    let k = fresh_kernel () in
    Workloads.Kvd.setup k;
    let _ =
      boot_k k (fun () ->
        Obs.enable ();
        let rc =
          Workloads.Kvd.body ~params:Workloads.Kvd.quick_params
            ~mode:Workloads.Kvd.Fork_per_conn ()
        in
        Obs.disable ();
        rc)
    in
    Kernel.causal_edges k
  in
  let a = edges () and b = edges () in
  Alcotest.(check bool) "pipe edges present" true
    (List.exists (fun e -> e.Obs.Causal.ed_kind = Obs.Causal.Pipe) a);
  Alcotest.(check string) "edge table byte-identical"
    (String.concat "\n" (List.map Obs.Causal.to_line (Obs.Causal.sort a)))
    (String.concat "\n" (List.map Obs.Causal.to_line (Obs.Causal.sort b)))

let test_kvd_under_trace_equivalent () =
  let summary agent_opt =
    let k = fresh_kernel () in
    Workloads.Kvd.setup k;
    let _ =
      boot_k k (fun () ->
        (match agent_opt with
         | Some agent -> Toolkit.Loader.install agent ~argv:[||]
         | None -> ());
        Workloads.Kvd.body ~params:Workloads.Kvd.quick_params
          ~mode:Workloads.Kvd.Prefork ())
    in
    read_file_exn k Workloads.Kvd.summary_path
  in
  Alcotest.(check string) "same totals under trace"
    (summary None)
    (summary
       (Some
          (let a = Agents.Trace.create () in
           a#init [||];
           a#set_output 2;
           (a :> Toolkit.Numeric.numeric_syscall))))

let () =
  Alcotest.run "workloads"
    [ "utilities",
      [ Alcotest.test_case "echo+cat" `Quick test_echo_cat;
        Alcotest.test_case "cp+wc" `Quick test_cp_wc;
        Alcotest.test_case "ls -l" `Quick test_ls_long;
        Alcotest.test_case "sh pipeline" `Quick test_sh_pipeline;
        Alcotest.test_case "sh parser" `Quick test_sh_split;
        Alcotest.test_case "sh redirection" `Quick test_sh_redirection;
        Alcotest.test_case "sh append" `Quick test_sh_append;
        Alcotest.test_case "sh &&" `Quick test_sh_and_short_circuit;
        Alcotest.test_case "sh pipe > file" `Quick
          test_sh_pipeline_into_redirect;
        Alcotest.test_case "ed session" `Quick test_ed_interactive_session;
        Alcotest.test_case "ed loads file" `Quick
          test_ed_loads_existing_file;
        Alcotest.test_case "sh interactive" `Quick test_sh_interactive ];
      "scribe",
      [ Alcotest.test_case "formats" `Quick test_scribe_formats;
        Alcotest.test_case "calibration" `Slow test_scribe_calibration;
        Alcotest.test_case "deterministic" `Quick test_scribe_deterministic ];
      "make",
      [ Alcotest.test_case "builds" `Quick test_make_builds_quick;
        Alcotest.test_case "up to date" `Quick test_make_up_to_date;
        Alcotest.test_case "calibration" `Slow test_make_calibration;
        Alcotest.test_case "union split tree" `Quick
          test_make_under_union_split_tree ];
      "afs",
      [ Alcotest.test_case "five phases" `Quick test_afs_bench_runs;
        Alcotest.test_case "copy faithful" `Quick test_afs_copy_faithful ];
      ( "kvd",
        [ Alcotest.test_case "fork-per-conn quick" `Quick test_kvd_fork_quick;
          Alcotest.test_case "prefork quick" `Quick test_kvd_prefork_quick;
          Alcotest.test_case "fork-per-conn 1000 clients" `Slow
            test_kvd_fork_1000;
          Alcotest.test_case "prefork 1000 clients" `Slow
            test_kvd_prefork_1000;
          Alcotest.test_case "causal edges deterministic" `Quick
            test_kvd_causal_deterministic;
          Alcotest.test_case "under trace equivalent" `Quick
            test_kvd_under_trace_equivalent ] );
      "under-agents",
      [ Alcotest.test_case "make under trace" `Quick
          test_make_under_trace_is_equivalent;
        Alcotest.test_case "scribe under timex" `Quick
          test_scribe_under_timex_identical_output ] ]
