(* Toolkit-layer tests: installation and stacking, layer routing,
   fork/execve survival, descriptor and pathname object plumbing. *)

open Abi
open Tharness

(* --- helper agents ------------------------------------------------------ *)

(* counts interceptions at the numeric layer, tagging them with a name
   so stacking order is observable *)
class tag_agent (name : string) (log : string list ref) =
  object (self)
    inherit Toolkit.numeric_syscall as super
    method! agent_name = name
    method! init _ = self#register_interest Sysno.sys_getpid
    method! syscall env =
      if Envelope.number env = Sysno.sys_getpid then log := name :: !log;
      super#syscall env
  end

(* symbolic agent lying about the pid *)
class fake_pid_agent (pid : int) =
  object (self)
    inherit Toolkit.symbolic_syscall
    method! init _ = self#register_interest Sysno.sys_getpid
    method! sys_getpid () = Value.ret pid
  end

(* pathname_set agent remapping a prefix, a minimal filesystem view *)
class remap_prefix_agent ~(from_prefix : string) ~(to_prefix : string) =
  object (self)
    inherit Toolkit.pathname_set
    method! init _ = self#register_interest_all
    method! getpn path =
      let fl = String.length from_prefix in
      let mapped =
        if
          String.length path >= fl
          && String.sub path 0 fl = from_prefix
        then to_prefix ^ String.sub path fl (String.length path - fl)
        else path
      in
      Ok (self#make_pathname mapped)
  end

(* descriptor_set agent upcasing everything read through it *)
class upcase_object dl =
  object
    inherit Toolkit.open_object dl as super
    method! read ~fd buf cnt =
      match super#read ~fd buf cnt with
      | Ok r as res ->
        for i = 0 to r.Value.r0 - 1 do
          Bytes.set buf i (Char.uppercase_ascii (Bytes.get buf i))
        done;
        res
      | Error _ as res -> res
  end

class upcase_agent =
  object (self)
    inherit Toolkit.Sets.descriptor_set
    method! init _ = self#register_interest_all
    method! make_open_object ~fd:_ ~path:_ ~flags:_ =
      (new upcase_object self#downlink :> Toolkit.Objects.open_object)
  end

(* --- tests ---------------------------------------------------------------- *)

let test_null_agent_transparent () =
  let run body =
    let k, status = body () in
    exit_code status, Kernel.console_output k
  in
  let program () =
    ignore (check_ok "write" (Libc.Stdio.write_file "/tmp/t" "abc"));
    let content = check_ok "read" (Libc.Stdio.read_file "/tmp/t") in
    Libc.Stdio.printf "content=%s pid=%d\n" content (Libc.Unistd.getpid ());
    let pid =
      check_ok "fork" (Libc.Unistd.fork ~child:(fun () -> 5))
    in
    let _, st = check_ok "wait" (Libc.Unistd.waitpid pid 0) in
    Flags.Wait.wexitstatus st
  in
  let bare = run (fun () -> boot program) in
  let under =
    run (fun () -> boot_under_agent (Agents.Time_symbolic.create ()) program)
  in
  Alcotest.(check (pair int string)) "identical behaviour" bare under

let test_stacking_order () =
  let log = ref [] in
  let _, status =
    boot (fun () ->
      Toolkit.Loader.install (new tag_agent "bottom" log) ~argv:[||];
      Toolkit.Loader.install (new tag_agent "top" log) ~argv:[||];
      ignore (Libc.Unistd.getpid ());
      0)
  in
  check_exit "exit" 0 status;
  (* most recently installed agent sees the call first, then passes it
     down to the earlier one *)
  Alcotest.(check (list string)) "order" [ "bottom"; "top" ] !log

let test_decode_once_under_stack () =
  (* the envelope invariant, measured: under a 4-deep stack of null
     symbolic agents, each intercepted trap decodes exactly once (at
     the first symbolic layer), encodes exactly once (at the app
     boundary), and crosses all four layers *)
  let iters = 50 in
  let depth = 4 in
  let stats () = Kernel.codec_stats (Kernel.current_exn ()) in
  let before = ref None in
  let after = ref !before in
  let _, status =
    boot (fun () ->
      for _ = 1 to depth do
        Toolkit.Loader.install (Agents.Time_symbolic.create ()) ~argv:[||]
      done;
      before := Some (stats ());
      for _ = 1 to iters do
        ignore (Libc.Unistd.getpid ())
      done;
      after := Some (stats ());
      0)
  in
  check_exit "exit" 0 status;
  let d =
    Envelope.Stats.diff (Option.get !before) (Option.get !after)
  in
  Alcotest.(check int) "traps" iters d.Envelope.Stats.traps;
  (* fused dispatch (the default): every interested trap goes through
     the chain, never the generic option vector *)
  Alcotest.(check int) "all chained" iters d.Envelope.Stats.fused;
  Alcotest.(check int) "vector never probed" 0 d.Envelope.Stats.intercepted;
  Alcotest.(check int) "decode-count = 1 per trap" iters
    d.Envelope.Stats.decodes;
  Alcotest.(check int) "encode-count = 1 per trap" iters
    d.Envelope.Stats.encodes;
  Alcotest.(check int) "every layer crossed" (depth * iters)
    d.Envelope.Stats.crossings

let test_uninstall_restores () =
  let log = ref [] in
  let _, status =
    boot (fun () ->
      let a = new tag_agent "a" log in
      Toolkit.Loader.run_under a (fun () ->
        ignore (Libc.Unistd.getpid ()));
      ignore (Libc.Unistd.getpid ());  (* not intercepted any more *)
      0)
  in
  check_exit "exit" 0 status;
  Alcotest.(check (list string)) "one interception" [ "a" ] !log

let test_symbolic_override () =
  let _, status =
    boot_under_agent (new fake_pid_agent 4242) (fun () ->
      Libc.Unistd.getpid ())
  in
  check_exit "fake pid" (4242 land 0xff) status

let test_agent_survives_execve () =
  let k = fresh_kernel () in
  Kernel.register_image k "probe" (fun ~argv:_ ~envp:_ () ->
    Libc.Unistd.getpid ());
  Kernel.install_image k ~path:"/bin/probe" ~image:"probe";
  let status =
    Kernel.boot k ~name:"init" (fun () ->
      Toolkit.Loader.install (new fake_pid_agent 99) ~argv:[||];
      match Libc.Unistd.execv "/bin/probe" [| "probe" |] with
      | Error _ -> 1
      | Ok _ -> assert false)
  in
  (* the probe ran in the new image yet still saw the agent's pid *)
  check_exit "execve kept agent" 99 status

let test_init_child_runs_in_fork () =
  let children = ref 0 in
  let agent =
    object (self)
      inherit Toolkit.symbolic_syscall
      method! init _ = self#register_interest_all
      method! init_child = incr children
    end
  in
  let _, status =
    boot_under_agent agent (fun () ->
      let pid = check_ok "fork" (Libc.Unistd.fork ~child:(fun () -> 0)) in
      let _ = check_ok "wait" (Libc.Unistd.waitpid pid 0) in
      0)
  in
  check_exit "exit" 0 status;
  Alcotest.(check int) "init_child once" 1 !children

let test_unknown_syscall_enosys () =
  let _, status =
    boot_under_agent (Agents.Time_symbolic.create ()) (fun () ->
      match Kernel.Uspace.trap_wire { Value.num = 179; args = [||] } with
      | Error Errno.ENOSYS -> 0
      | Error _ | Ok _ -> 1)
  in
  check_exit "ENOSYS passes through" 0 status

let test_descriptor_factory_transform () =
  let k, status =
    boot_under_agent (new upcase_agent) (fun () ->
      ignore (check_ok "write" (Libc.Stdio.write_file "/tmp/lc" "hello"));
      let s = check_ok "read" (Libc.Stdio.read_file "/tmp/lc") in
      Libc.Stdio.print s;
      0)
  in
  check_exit "exit" 0 status;
  Alcotest.(check string) "reads upcased" "HELLO" (Kernel.console_output k)

let test_descriptor_tracking_dup () =
  (* a dup'd descriptor must route through the same open object *)
  let k, status =
    boot_under_agent (new upcase_agent) (fun () ->
      ignore (check_ok "write" (Libc.Stdio.write_file "/tmp/d" "xyz"));
      let fd =
        check_ok "open" (Libc.Unistd.open_ "/tmp/d" Flags.Open.o_rdonly 0)
      in
      let fd2 = check_ok "dup" (Libc.Unistd.dup fd) in
      ignore (check_ok "close" (Libc.Unistd.close fd));
      let buf = Bytes.create 8 in
      let n = check_ok "read" (Libc.Unistd.read fd2 buf 8) in
      Libc.Stdio.print (Bytes.sub_string buf 0 n);
      0)
  in
  check_exit "exit" 0 status;
  Alcotest.(check string) "dup routed" "XYZ" (Kernel.console_output k)

let test_pathname_remap () =
  let k, status =
    boot_under_agent
      (new remap_prefix_agent ~from_prefix:"/virtual" ~to_prefix:"/real")
      (fun () ->
        ignore (check_ok "mkdir" (Libc.Unistd.mkdir "/real" 0o755));
        ignore
          (check_ok "write" (Libc.Stdio.write_file "/virtual/f" "mapped"));
        let st = check_ok "stat" (Libc.Unistd.stat "/virtual/f") in
        if st.Stat.st_size <> 6 then 1
        else begin
          Libc.Stdio.print
            (check_ok "read" (Libc.Stdio.read_file "/virtual/f"));
          0
        end)
  in
  check_exit "exit" 0 status;
  (* the file physically lives under /real *)
  Alcotest.(check string) "stored at /real/f" "mapped"
    (read_file_exn k "/real/f");
  Alcotest.(check string) "read back via /virtual" "mapped"
    (Kernel.console_output k)

let test_directory_object_iteration () =
  (* the toolkit directory object must rebuild getdirentries through
     next_direntry without changing what readdir sees *)
  let dir_agent =
    object (self)
      inherit Toolkit.Sets.descriptor_set
      method! init _ = self#register_interest_all
      method! make_open_object ~fd:_ ~path:_ ~flags:_ =
        (new Toolkit.directory self#downlink :> Toolkit.Objects.open_object)
    end
  in
  let listing = ref [] in
  let _, status =
    boot_under_agent dir_agent (fun () ->
      ignore (check_ok "mkdir" (Libc.Unistd.mkdir "/tmp/z" 0o755));
      List.iter
        (fun n ->
          ignore
            (check_ok n (Libc.Stdio.write_file ("/tmp/z/" ^ n) n)))
        [ "one"; "two"; "three" ];
      listing := check_ok "names" (Libc.Dirstream.names "/tmp/z");
      0)
  in
  check_exit "exit" 0 status;
  Alcotest.(check (list string)) "iterated" [ "one"; "three"; "two" ]
    !listing

let test_interests_registration () =
  let a = new Toolkit.numeric_syscall in
  a#register_interest Sysno.sys_read;
  a#register_interest Sysno.sys_read;
  a#register_interest_range Sysno.sys_open Sysno.sys_close;
  Alcotest.(check (list int)) "dedup + range"
    [ Sysno.sys_read; Sysno.sys_open; Sysno.sys_close ]
    a#interests

let test_buggy_agent_contained () =
  (* an agent whose handler raises must kill only the process it is
     interposed on, not the machine *)
  let buggy =
    object (self)
      inherit Toolkit.symbolic_syscall
      method! init _ = self#register_interest Sysno.sys_getuid
      method! sys_getuid () = failwith "agent bug"
    end
  in
  let _, status =
    boot (fun () ->
      let pid =
        check_ok "fork"
          (Libc.Unistd.fork ~child:(fun () ->
             Toolkit.Loader.install buggy ~argv:[||];
             ignore (Libc.Unistd.getuid ());
             0))
      in
      let _, st = check_ok "wait" (Libc.Unistd.waitpid pid 0) in
      (* the parent survives and can keep making calls *)
      ignore (Libc.Unistd.getpid ());
      if Flags.Wait.wifsignaled st
         && Flags.Wait.wtermsig st = Signal.sigabrt
      then 0
      else 1)
  in
  check_exit "buggy agent kills only its client" 0 status

let test_agent_error_return_propagates () =
  (* an agent can veto a call with an errno of its choice *)
  let deny =
    object (self)
      inherit Toolkit.symbolic_syscall
      method! init _ = self#register_interest Sysno.sys_sync
      method! sys_sync () = Error Errno.EROFS
    end
  in
  let _, status =
    boot_under_agent deny (fun () ->
      match Kernel.Uspace.syscall Call.Sync with
      | Error Errno.EROFS -> 0
      | Error _ | Ok _ -> 1)
  in
  check_exit "agent-made errno" 0 status

let test_exec_under () =
  (* the paper's loader entry point: install the agent, then exec the
     unmodified target under it *)
  let k = fresh_kernel () in
  Kernel.register_image k "target" (fun ~argv ~envp:_ () ->
    Libc.Stdio.printf "pid=%d arg=%s\n" (Libc.Unistd.getpid ())
      (if Array.length argv > 1 then argv.(1) else "-");
    0);
  Kernel.install_image k ~path:"/bin/target" ~image:"target";
  let status =
    Kernel.boot k ~name:"loader" (fun () ->
      Toolkit.Loader.exec_under
        (new fake_pid_agent 321)
        ~path:"/bin/target"
        ~argv:[| "target"; "via-loader" |]
        ())
  in
  ignore (exit_code status);
  Alcotest.(check string) "agent visible in the exec'd image"
    "pid=321 arg=via-loader\n" (Kernel.console_output k)

let test_exec_under_missing_program () =
  let _, status =
    boot (fun () ->
      Toolkit.Loader.exec_under
        (Agents.Time_symbolic.create ())
        ~path:"/bin/nonexistent"
        ~argv:[| "x" |]
        ())
  in
  check_exit "loader reports 127" 127 status

let test_loader_adds_minimum () =
  let a = new Toolkit.numeric_syscall in
  (* no explicit interests: the loader must still see fork/execve/exit *)
  let _, status =
    boot (fun () ->
      Toolkit.Loader.install a ~argv:[||];
      let pid = check_ok "fork" (Libc.Unistd.fork ~child:(fun () -> 3)) in
      let _, st = check_ok "wait" (Libc.Unistd.waitpid pid 0) in
      Flags.Wait.wexitstatus st)
  in
  check_exit "fork under bare numeric agent" 3 status

(* --- interest-bitmap fast path --------------------------------------------- *)

let qtest = QCheck_alcotest.to_alcotest

(* Trap-counter window around [iters] getpid calls inside a booted
   session, with [install] run first to set up whatever agent stack the
   test wants. *)
let trap_window ~install iters =
  let stats () = Kernel.codec_stats (Kernel.current_exn ()) in
  let d = ref None in
  let _, status =
    boot (fun () ->
      install ();
      let before = stats () in
      for _ = 1 to iters do
        ignore (Libc.Unistd.getpid ())
      done;
      d := Some (Envelope.Stats.diff before (stats ()));
      0)
  in
  check_exit "exit" 0 status;
  Option.get !d

let test_fast_path_uninterested () =
  (* an agent interested only in open: getpid traps must resolve on the
     bitmap alone, never probing the handler vector *)
  let open_only =
    object (self)
      inherit Toolkit.numeric_syscall
      method! init _ = self#register_interest Sysno.sys_open
    end
  in
  let iters = 25 in
  let d =
    trap_window iters ~install:(fun () ->
        Toolkit.Loader.install open_only ~argv:[||])
  in
  Alcotest.(check int) "one trap per getpid" iters d.Envelope.Stats.traps;
  Alcotest.(check int) "every trap took the fast path" iters
    d.Envelope.Stats.fast_path;
  Alcotest.(check int) "no handler probed" 0 d.Envelope.Stats.intercepted

let test_fast_path_interested () =
  (* full interest under fused dispatch (the default): every trap runs
     the pre-linked chain — [fused] counts them all, and the generic
     vector is provably never probed ([intercepted] stays 0) *)
  let iters = 25 in
  let d =
    trap_window iters ~install:(fun () ->
        Toolkit.Loader.install (Agents.Time_symbolic.create ()) ~argv:[||])
  in
  Alcotest.(check int) "every trap chained" iters d.Envelope.Stats.fused;
  Alcotest.(check int) "vector never probed" 0 d.Envelope.Stats.intercepted;
  Alcotest.(check int) "fast path never taken" 0 d.Envelope.Stats.fast_path

let test_fast_path_interested_generic () =
  (* same stack with fused dispatch off: the legacy counters, and no
     chained traps — the A/B baseline the host-speed bench measures *)
  let iters = 25 in
  let d =
    trap_window iters ~install:(fun () ->
        Kernel.set_fused (Kernel.current_exn ()) false;
        Toolkit.Loader.install (Agents.Time_symbolic.create ()) ~argv:[||])
  in
  Alcotest.(check int) "every trap intercepted" iters
    d.Envelope.Stats.intercepted;
  Alcotest.(check int) "chain never used" 0 d.Envelope.Stats.fused;
  Alcotest.(check int) "fast path never taken" 0 d.Envelope.Stats.fast_path

(* Property: whatever sequence of emulation updates and downlink
   captures runs, the interest bitmaps — and the fused chains — mirror
   their handler vectors slot-for-slot ([emulation_consistent] and
   [Downlink.consistent] check the chains by physical identity), in
   this process and in a forked child's copy; and dispatching through
   the fused machinery returns exactly what the generic walk returns.
   Ops are (kind, numbers) pairs; numbers run a little past
   [max_sysno] so the out-of-range-is-ignored paths get exercised
   too. *)
let consistency_after_ops ops =
  let passthrough = Some (fun env -> Kernel.Uspace.htg_trap env) in
  let ok = ref true in
  let _, status =
    boot (fun () ->
      let dl = Toolkit.Downlink.create () in
      let here () =
        Kernel.Proc.emulation_consistent
          (Kernel.Proc.Cur.get_exn ()).Kernel.Proc.emul
        && Toolkit.Downlink.consistent dl
      in
      List.iter
        (fun (kind, numbers) ->
          match kind mod 3 with
          | 0 -> Kernel.Uspace.task_set_emulation ~numbers passthrough
          | 1 -> Kernel.Uspace.task_set_emulation ~numbers None
          | _ -> Toolkit.Downlink.capture dl ~numbers)
        ops;
      ok := here ();
      (* differential: fused vs generic dispatch of the same trap *)
      let k = Kernel.current_exn () in
      Kernel.set_fused k true;
      let r_fused = Libc.Unistd.getpid () in
      Kernel.set_fused k false;
      let r_generic = Libc.Unistd.getpid () in
      Kernel.set_fused k true;
      if r_fused <> r_generic then ok := false;
      let pid =
        check_ok "fork"
          (Libc.Unistd.fork ~child:(fun () -> if here () then 0 else 1))
      in
      let _, st = check_ok "wait" (Libc.Unistd.waitpid pid 0) in
      if Flags.Wait.wexitstatus st <> 0 then ok := false;
      0)
  in
  exit_code status = 0 && !ok

let test_bitmap_matches_vector =
  QCheck.Test.make ~name:"bitmap mirrors handler vector (incl. fork)"
    ~count:30
    QCheck.(
      small_list
        (pair small_nat (small_list (int_bound (Sysno.max_sysno + 4)))))
    consistency_after_ops

let () =
  Alcotest.run "toolkit"
    [ "loader",
      [ Alcotest.test_case "null agent transparent" `Quick
          test_null_agent_transparent;
        Alcotest.test_case "stacking order" `Quick test_stacking_order;
        Alcotest.test_case "decode once under stack" `Quick
          test_decode_once_under_stack;
        Alcotest.test_case "uninstall restores" `Quick
          test_uninstall_restores;
        Alcotest.test_case "minimum interests" `Quick
          test_loader_adds_minimum;
        Alcotest.test_case "exec_under" `Quick test_exec_under;
        Alcotest.test_case "exec_under missing" `Quick
          test_exec_under_missing_program;
        Alcotest.test_case "interest registration" `Quick
          test_interests_registration ];
      "symbolic",
      [ Alcotest.test_case "override one call" `Quick test_symbolic_override;
        Alcotest.test_case "survives execve" `Quick
          test_agent_survives_execve;
        Alcotest.test_case "init_child on fork" `Quick
          test_init_child_runs_in_fork;
        Alcotest.test_case "unknown syscall" `Quick
          test_unknown_syscall_enosys;
        Alcotest.test_case "buggy agent contained" `Quick
          test_buggy_agent_contained;
        Alcotest.test_case "agent errno" `Quick
          test_agent_error_return_propagates ];
      "objects",
      [ Alcotest.test_case "open-object factory" `Quick
          test_descriptor_factory_transform;
        Alcotest.test_case "dup shares object" `Quick
          test_descriptor_tracking_dup;
        Alcotest.test_case "pathname remap" `Quick test_pathname_remap;
        Alcotest.test_case "directory iteration" `Quick
          test_directory_object_iteration ];
      "fastpath",
      [ Alcotest.test_case "uninterested traps" `Quick
          test_fast_path_uninterested;
        Alcotest.test_case "interested traps" `Quick
          test_fast_path_interested;
        Alcotest.test_case "interested traps (generic)" `Quick
          test_fast_path_interested_generic;
        qtest test_bitmap_matches_vector ] ]
