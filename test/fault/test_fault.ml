(* The fault-campaign subsystem: plan serialization, the plan-driven
   injector's determinism, the divergence oracles' four-way
   classification, plan shrinking, and repro bundles replaying
   byte-identically. *)

open Abi
open Tharness
module F = Agents.Faultinject

(* --- plan serialization ------------------------------------------------ *)

let test_plan_roundtrip () =
  let sites =
    [ F.site ~kth:3 Sysno.sys_read (F.Fail Errno.EIO);
      F.site ~pid:2 Sysno.sys_write (F.Fail Errno.ENOSPC);
      F.site ~kth:1 Sysno.sys_sleepus (F.Fail Errno.EINTR);
      F.site Sysno.sys_open (F.Delay 500) ]
  in
  match Fault.Plan.of_string (Fault.Plan.to_string sites) with
  | Ok parsed -> Alcotest.(check bool) "round-trips" true (parsed = sites)
  | Error msg -> Alcotest.failf "plan did not parse back: %s" msg

let test_plan_spec () =
  match Fault.Plan.of_spec "read#3=fail:EIO;2@write=delay:500" with
  | Ok [ a; b ] ->
    Alcotest.(check bool) "first site" true
      (a = F.site ~kth:3 Sysno.sys_read (F.Fail Errno.EIO));
    Alcotest.(check bool) "second site" true
      (b = F.site ~pid:2 Sysno.sys_write (F.Delay 500))
  | Ok l -> Alcotest.failf "expected 2 sites, got %d" (List.length l)
  | Error msg -> Alcotest.failf "spec did not parse: %s" msg

let test_plan_rejects_garbage () =
  List.iter
    (fun spec ->
      match Fault.Plan.of_spec spec with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "spec %S should not parse" spec)
    [ ""; "read"; "read=fail:NOTANERRNO"; "nosuchcall#1=fail:EIO";
      "read#x=fail:EIO"; "read=delay:-5" ]

let site_gen =
  QCheck.Gen.(
    let* num = oneofl Sysno.all in
    let* pid = int_range 0 5 in
    let* kth = int_range 0 9 in
    let* action =
      oneof
        [ map (fun e -> F.Fail e)
            (oneofl
               [ Errno.EIO; Errno.ENOENT; Errno.EINTR; Errno.ENOSPC;
                 Errno.EACCES ]);
          map (fun us -> F.Delay us) (int_range 0 10_000) ]
    in
    return (F.site ~pid ~kth num action))

let test_plan_roundtrip_qcheck =
  QCheck.Test.make ~name:"plan line round-trip" ~count:300
    (QCheck.make site_gen)
    (fun s ->
      Fault.Plan.site_of_string (Fault.Plan.site_to_string s) = Some s)

(* --- the plan-driven injector ------------------------------------------- *)

(* read [n] times from one descriptor, one syscall per read, and record
   each outcome as a character *)
let read_outcomes fd n =
  String.concat ""
    (List.init n (fun _ ->
         ignore (Libc.Unistd.lseek fd 0 0);
         match Libc.Unistd.read fd (Bytes.create 4) 4 with
         | Ok _ -> "o"
         | Error e -> Errno.name e ^ ";"))

let test_kth_read_exactly () =
  let agent = F.create_planned [ F.site ~kth:3 Sysno.sys_read (F.Fail Errno.EIO) ] in
  let outcomes = ref "" in
  let _, status =
    boot_under_agent agent (fun () ->
      ignore (check_ok "w" (Libc.Stdio.write_file "/tmp/f" "data"));
      let fd = check_ok "open" (Libc.Unistd.open_ "/tmp/f" 0 0) in
      outcomes := read_outcomes fd 5;
      ignore (Libc.Unistd.close fd);
      0)
  in
  check_exit "session survives" 0 status;
  Alcotest.(check string) "only the 3rd read fails" "ooEIO;oo" !outcomes;
  Alcotest.(check int) "one injection" 1 agent#total_injected

let test_pid_scoped_site () =
  (* pid 2 (the child) sees the fault, pid 1 does not *)
  let agent = F.create_planned [ F.site ~pid:2 ~kth:1 Sysno.sys_read (F.Fail Errno.EIO) ] in
  let _, status =
    boot_under_agent agent (fun () ->
      ignore (check_ok "w" (Libc.Stdio.write_file "/tmp/f" "data"));
      let child =
        check_ok "fork"
          (Libc.Unistd.fork ~child:(fun () ->
               match Libc.Stdio.read_file "/tmp/f" with
               | Error Errno.EIO -> 7
               | Ok _ | Error _ -> 1))
      in
      let _, st = check_ok "wait" (Libc.Unistd.waitpid child 0) in
      if Flags.Wait.wexitstatus st <> 7 then 1
      else
        (match Libc.Stdio.read_file "/tmp/f" with
         | Ok "data" -> 0
         | Ok _ | Error _ -> 2))
  in
  check_exit "child faulted, parent clean" 0 status

let test_duplicated_candidates () =
  (* regression: duplicated/overlapping candidate lists must not skew
     interests or bookkeeping — one bitset is the single truth source *)
  let agent =
    F.create
      { F.seed = 5;
        failure_rate = 1.0;
        errno = Errno.EIO;
        candidates =
          [ Sysno.sys_read; Sysno.sys_read; Sysno.sys_write;
            Sysno.sys_read; Sysno.sys_write ] }
  in
  let failures = ref 0 in
  let _, status =
    boot_under_agent agent (fun () ->
      (match Libc.Stdio.write_file "/tmp/f" "x" with
       | Error _ -> incr failures
       | Ok () -> ());
      (match Libc.Stdio.read_file "/tmp/f" with
       | Error _ -> incr failures
       | Ok _ -> ());
      0)
  in
  check_exit "survives" 0 status;
  let interests = agent#interests in
  Alcotest.(check int) "duplicates absorbed in interests" 2
    (List.length
       (List.filter
          (fun n -> n = Sysno.sys_read || n = Sysno.sys_write)
          interests));
  Alcotest.(check int) "each failure counted once" !failures
    agent#total_injected

let test_eintr_restart_pair () =
  (* an injected EINTR on read is invisibly restarted (BSD restart
     policy); on sleepus it surfaces, as from a real interruption *)
  let agent = F.create_planned [ F.site ~kth:1 Sysno.sys_read (F.Fail Errno.EINTR) ] in
  let _, status =
    boot_under_agent agent (fun () ->
      ignore (check_ok "w" (Libc.Stdio.write_file "/tmp/f" "data"));
      match Libc.Stdio.read_file "/tmp/f" with
      | Ok "data" -> 0
      | Ok _ -> 1
      | Error e -> 10 + Errno.to_int e)
  in
  check_exit "read restarted, app saw data" 0 status;
  Alcotest.(check int) "policy absorbed it" 1 agent#restarted;
  Alcotest.(check int) "nothing surfaced" 0 agent#total_injected;
  let agent = F.create_planned [ F.site ~kth:1 Sysno.sys_sleepus (F.Fail Errno.EINTR) ] in
  let _, status =
    boot_under_agent agent (fun () ->
      match Libc.Unistd.sleep_us 5_000 with
      | Error Errno.EINTR -> 0
      | Ok () -> 1
      | Error _ -> 2)
  in
  check_exit "sleepus surfaced EINTR" 0 status;
  Alcotest.(check int) "sleepus injection surfaced" 1 agent#total_injected;
  Alcotest.(check int) "no restart" 0 agent#restarted

let test_epipe_never_restarted () =
  (* writes restart under injected EINTR, but EPIPE pierces the restart
     policy whatever the call: re-issuing a write that broke the pipe
     can only break it again *)
  Alcotest.(check bool) "EINTR write restarts" true
    (Kernel.Syscalls.restartable ~errno:Errno.EINTR Sysno.sys_write);
  Alcotest.(check bool) "EPIPE write does not" false
    (Kernel.Syscalls.restartable ~errno:Errno.EPIPE Sysno.sys_write);
  Alcotest.(check bool) "EPIPE send does not" false
    (Kernel.Syscalls.restartable ~errno:Errno.EPIPE Sysno.sys_send);
  let agent =
    F.create_planned [ F.site ~kth:1 Sysno.sys_write (F.Fail Errno.EPIPE) ]
  in
  let _, status =
    boot_under_agent agent (fun () ->
      let fd =
        check_ok "open"
          (Libc.Unistd.open_ "/tmp/out"
             Flags.Open.(o_wronly lor o_creat) 0o644)
      in
      match Libc.Unistd.write fd "data" with
      | Error Errno.EPIPE ->
        (match Libc.Unistd.close fd with Ok () -> 0 | Error _ -> 3)
      | Ok _ -> 1
      | Error _ -> 2)
  in
  check_exit "EPIPE surfaced to the caller" 0 status;
  Alcotest.(check int) "surfaced, not absorbed" 1 agent#total_injected;
  Alcotest.(check int) "never restarted" 0 agent#restarted

let elapsed_us k = int_of_float (Kernel.elapsed_seconds k *. 1e6 +. 0.5)

let test_injected_failure_charges_time () =
  (* a faulted read must not be cheaper than the interception it rode
     in on: the injected-error path charges the intercept cost *)
  let session with_read =
    let agent = F.create_planned [ F.site ~kth:1 Sysno.sys_read (F.Fail Errno.EIO) ] in
    let k = fresh_kernel () in
    Kernel.write_file k ~path:"/tmp/f" "data";
    let _ =
      boot_k k (fun () ->
        Toolkit.Loader.install agent ~argv:[||];
        let fd = check_ok "open" (Libc.Unistd.open_ "/tmp/f" 0 0) in
        if with_read then
          (match Libc.Unistd.read fd (Bytes.create 4) 4 with
           | Error Errno.EIO -> ()
           | Ok _ | Error _ -> Libc.Unistd._exit 9);
        ignore (Libc.Unistd.close fd);
        0)
    in
    elapsed_us k
  in
  let faulted_read_us = session true - session false in
  Alcotest.(check bool)
    (Printf.sprintf "faulted read costs >= 2x intercept (got %d us)"
       faulted_read_us)
    true
    (faulted_read_us >= 2 * Cost_model.intercept_us)

let test_delay_charges_latency () =
  let delay = 10_000 in
  let session sites =
    let agent = F.create_planned sites in
    let k = fresh_kernel () in
    Kernel.write_file k ~path:"/tmp/f" "data";
    let _ =
      boot_k k (fun () ->
        Toolkit.Loader.install agent ~argv:[||];
        (match Libc.Stdio.read_file "/tmp/f" with
         | Ok "data" -> ()
         | Ok _ | Error _ -> Libc.Unistd._exit 9);
        0)
    in
    elapsed_us k
  in
  let slow = session [ F.site ~kth:1 Sysno.sys_read (F.Delay delay) ] in
  let fast = session [ F.site ~kth:99 Sysno.sys_read (F.Delay delay) ] in
  Alcotest.(check bool) "delay charged to virtual time" true
    (slow - fast >= delay)

let test_planned_deterministic () =
  let run () =
    let agent =
      F.create_planned
        [ F.site ~kth:2 Sysno.sys_read (F.Fail Errno.EIO);
          F.site ~kth:4 Sysno.sys_read (F.Fail Errno.ENOENT) ]
    in
    let outcomes = ref "" in
    let _ =
      boot (fun () ->
        Toolkit.Loader.install agent ~argv:[||];
        ignore (check_ok "w" (Libc.Stdio.write_file "/tmp/f" "data"));
        let fd = check_ok "open" (Libc.Unistd.open_ "/tmp/f" 0 0) in
        outcomes := read_outcomes fd 6;
        ignore (Libc.Unistd.close fd);
        0)
    in
    !outcomes
  in
  Alcotest.(check string) "same plan, same run" (run ()) (run ());
  Alcotest.(check string) "expected pattern" "oEIO;oENOENT;oo" (run ())

(* --- oracles and classification ----------------------------------------- *)

let wl name ?(output = "") body =
  { Fault.Campaign.w_name = name;
    w_seed = 1;
    w_setup = (fun k -> Kernel.write_file k ~path:"/tmp/in" "payload");
    w_body = body;
    w_output = output }

let classify_under w sites =
  let clean = (Fault.Campaign.clean_run w).Fault.Campaign.r_report in
  Fault.Campaign.run_plan ~mode:Fault.Campaign.Bare ~clean w sites

let outcome_t =
  Alcotest.testable
    (fun ppf o -> Format.pp_print_string ppf (Fault.Oracle.outcome_name o))
    ( = )

let test_classify_tolerated_absorbed () =
  (* EINTR on read is absorbed by the restart policy: run is
     indistinguishable from fault-free *)
  let w =
    wl "absorb" (fun () ->
        match Libc.Stdio.read_file "/tmp/in" with
        | Ok "payload" -> 0
        | Ok _ | Error _ -> 1)
  in
  let r =
    classify_under w [ F.site ~kth:1 Sysno.sys_read (F.Fail Errno.EINTR) ]
  in
  Alcotest.check outcome_t "absorbed" Fault.Oracle.Tolerated
    r.Fault.Campaign.r_outcome

let test_classify_tolerated_reported () =
  let w =
    wl "report" (fun () ->
        match Libc.Stdio.read_file "/tmp/in" with
        | Ok _ -> 0
        | Error e ->
          Libc.Stdio.eprintf "report: %s\n" (Errno.name e);
          1)
  in
  let r =
    classify_under w [ F.site ~kth:1 Sysno.sys_read (F.Fail Errno.EIO) ]
  in
  Alcotest.check outcome_t "reported" Fault.Oracle.Tolerated
    r.Fault.Campaign.r_outcome;
  Alcotest.(check bool) "detail says reported" true
    (String.length r.Fault.Campaign.r_detail > 0
     && String.sub r.Fault.Campaign.r_detail 0 7 = "failure")

let test_classify_wrong_result () =
  (* swallows the error and claims success with truncated output *)
  let w =
    wl "silent" ~output:"/tmp/out" (fun () ->
        let content =
          match Libc.Stdio.read_file "/tmp/in" with
          | Ok c -> c
          | Error _ -> ""
        in
        ignore (Libc.Stdio.write_file "/tmp/out" content);
        0)
  in
  let r =
    classify_under w [ F.site ~kth:1 Sysno.sys_read (F.Fail Errno.EIO) ]
  in
  Alcotest.check outcome_t "silent corruption" Fault.Oracle.Wrong_result
    r.Fault.Campaign.r_outcome

let test_classify_hang () =
  let w =
    wl "hang" (fun () ->
        match Libc.Stdio.read_file "/tmp/in" with
        | Ok _ -> 0
        | Error _ ->
          (* "retry loop" that waits on a pipe nobody writes *)
          let r, _w = check_ok "pipe" (Libc.Unistd.pipe ()) in
          ignore (Libc.Unistd.read r (Bytes.create 1) 1);
          1)
  in
  let r =
    classify_under w [ F.site ~kth:1 Sysno.sys_read (F.Fail Errno.EIO) ]
  in
  Alcotest.check outcome_t "deadlocked" Fault.Oracle.Hang
    r.Fault.Campaign.r_outcome

let test_classify_crash () =
  let w =
    wl "crash" (fun () ->
        match Libc.Stdio.read_file "/tmp/in" with
        | Ok _ -> 0
        | Error _ -> failwith "unhandled")
  in
  let r =
    classify_under w [ F.site ~kth:1 Sysno.sys_read (F.Fail Errno.EIO) ]
  in
  Alcotest.check outcome_t "uncaught exception is a crash"
    Fault.Oracle.Crash r.Fault.Campaign.r_outcome

let test_classify_unreaped () =
  let w =
    wl "orphan" (fun () ->
        let child =
          check_ok "fork" (Libc.Unistd.fork ~child:(fun () -> 0))
        in
        match Libc.Stdio.read_file "/tmp/in" with
        | Ok _ ->
          let _ = check_ok "wait" (Libc.Unistd.waitpid child 0) in
          0
        | Error _ -> 0 (* "forgets" to reap on the error path *))
  in
  let r =
    classify_under w [ F.site ~kth:1 Sysno.sys_read (F.Fail Errno.EIO) ]
  in
  Alcotest.check outcome_t "unreaped child" Fault.Oracle.Wrong_result
    r.Fault.Campaign.r_outcome;
  Alcotest.(check bool) "detail names the zombie" true
    (r.Fault.Campaign.r_detail = "1 unreaped child process(es)")

(* --- discovery, sweep, shrink -------------------------------------------- *)

let test_baseline_profile () =
  let b = Fault.Campaign.baseline Fault.Campaign.scribe in
  Alcotest.check outcome_t "fault-free run tolerated"
    Fault.Oracle.Tolerated b.Fault.Campaign.b_run.Fault.Campaign.r_outcome;
  let calls n =
    Option.value ~default:0 (List.assoc_opt n b.Fault.Campaign.b_profile)
  in
  Alcotest.(check bool) "reads discovered" true (calls Sysno.sys_read > 0);
  Alcotest.(check bool) "writes discovered" true (calls Sysno.sys_write > 0);
  Alcotest.(check bool) "journal recorded" true
    (String.length b.Fault.Campaign.b_run.Fault.Campaign.r_journal > 0)

let test_sweep_classifies_everything () =
  let _, cases =
    Fault.Campaign.sweep ~errnos:[ Errno.EIO; Errno.ENOENT; Errno.EINTR ]
      Fault.Campaign.scribe
  in
  Alcotest.(check bool) "swept a real site grid" true
    (List.length cases >= 9);
  (* classification is total by construction; the point of record is
     that every case carries a nonempty detail and the counters add
     up *)
  List.iter
    (fun (c : Fault.Campaign.case) ->
      Alcotest.(check bool) "has detail" true
        (String.length c.c_run.Fault.Campaign.r_detail > 0))
    cases;
  let count o =
    List.length
      (List.filter
         (fun (c : Fault.Campaign.case) ->
           c.c_run.Fault.Campaign.r_outcome = o)
         cases)
  in
  Alcotest.(check bool) "some faults tolerated" true
    (count Fault.Oracle.Tolerated > 0);
  Alcotest.(check bool) "some faults break the run silently" true
    (count Fault.Oracle.Wrong_result > 0)

let test_kvd_conn_sweep () =
  (* connection-level sites over the socket workload: discovery must
     find accept/recv/send traffic, and every injected run must come
     back classified with the workload still terminating *)
  let baseline, cases =
    Fault.Campaign.sweep ~candidates:Fault.Campaign.conn_candidates
      ~per_sysno:2 ~errnos:[ Errno.ECONNRESET; Errno.EINTR ]
      Fault.Campaign.kvd
  in
  let calls n =
    Option.value ~default:0
      (List.assoc_opt n baseline.Fault.Campaign.b_profile)
  in
  Alcotest.(check bool) "accepts discovered" true
    (calls Sysno.sys_accept > 0);
  Alcotest.(check bool) "recvs discovered" true (calls Sysno.sys_recv > 0);
  Alcotest.(check bool) "sends discovered" true (calls Sysno.sys_send > 0);
  Alcotest.(check bool) "swept a real grid" true (List.length cases >= 6);
  List.iter
    (fun (c : Fault.Campaign.case) ->
      Alcotest.(check bool) "has detail" true
        (String.length c.c_run.Fault.Campaign.r_detail > 0))
    cases;
  (* an injected EINTR on a restartable call must be absorbable *)
  Alcotest.(check bool) "some faults tolerated" true
    (List.exists
       (fun (c : Fault.Campaign.case) ->
         c.c_run.Fault.Campaign.r_outcome = Fault.Oracle.Tolerated)
       cases)

let test_shrink_to_minimal () =
  let w =
    wl "crash" (fun () ->
        match Libc.Stdio.read_file "/tmp/in" with
        | Ok _ -> 0
        | Error _ -> failwith "unhandled")
  in
  let clean = (Fault.Campaign.clean_run w).Fault.Campaign.r_report in
  let guilty = F.site ~kth:1 Sysno.sys_read (F.Fail Errno.EIO) in
  let sites =
    [ F.site ~kth:1 Sysno.sys_open (F.Delay 100);
      guilty;
      F.site ~kth:50 Sysno.sys_write (F.Fail Errno.ENOSPC) ]
  in
  let full = Fault.Campaign.run_plan ~mode:Fault.Campaign.Bare ~clean w sites in
  Alcotest.check outcome_t "full plan crashes" Fault.Oracle.Crash
    full.Fault.Campaign.r_outcome;
  let minimal =
    Fault.Campaign.shrink w ~clean ~outcome:Fault.Oracle.Crash sites
  in
  Alcotest.(check bool) "shrunk to the one guilty site" true
    (minimal = [ guilty ])

(* --- repro bundles -------------------------------------------------------- *)

let first_failing cases =
  List.find_opt
    (fun (c : Fault.Campaign.case) ->
      match c.c_run.Fault.Campaign.r_outcome with
      | Fault.Oracle.Tolerated -> false
      | _ -> true)
    cases

let test_bundle_roundtrip_and_replay () =
  let _, cases = Fault.Campaign.sweep Fault.Campaign.scribe in
  match first_failing cases with
  | None -> Alcotest.fail "sweep produced no failing case to bundle"
  | Some c ->
    let b = Fault.Bundle.of_run ~workload:"scribe" c.c_run in
    let text = Fault.Bundle.to_string b in
    (match Fault.Bundle.of_string text with
     | Error msg -> Alcotest.failf "bundle did not parse back: %s" msg
     | Ok b' ->
       Alcotest.(check bool) "bundle round-trips" true (b' = b);
       (match Fault.Bundle.replay b' with
        | Error msg -> Alcotest.failf "replay refused: %s" msg
        | Ok replayed ->
          (match Fault.Bundle.verify b' replayed with
           | Ok () -> ()
           | Error msg ->
             Alcotest.failf "replay not byte-identical: %s" msg);
          Alcotest.(check int) "no desyncs during replay" 0
            replayed.Fault.Campaign.r_desyncs))

let test_bundle_rejects_garbage () =
  List.iter
    (fun text ->
      match Fault.Bundle.of_string text with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "bundle %S should not parse" text)
    [ "W scribe\n"; "O wrong-result\nE 0\n"; "W scribe\nO nonsense\nE 0\n";
      "W scribe\nO crash\nE 0\nH output zz\nH console zz\nX what\n" ]

(* --- obs integration ------------------------------------------------------- *)

let test_obs_counts_injections () =
  Obs.reset ();
  Obs.enable ();
  let agent = F.create_planned [ F.site ~kth:1 Sysno.sys_read (F.Fail Errno.EIO) ] in
  let _ =
    boot (fun () ->
      Toolkit.Loader.install agent ~argv:[||];
      ignore (check_ok "w" (Libc.Stdio.write_file "/tmp/f" "x"));
      (match Libc.Stdio.read_file "/tmp/f" with
       | Error Errno.EIO -> ()
       | Ok _ | Error _ -> Libc.Unistd._exit 9);
      0)
  in
  let m = Obs.metrics () in
  let marks =
    List.filter
      (fun (r : Obs.Span.record) ->
        match r with
        | Obs.Span.Mark m -> m.Obs.Span.m_kind = "inject"
        | _ -> false)
      (Obs.records ())
  in
  Obs.disable ();
  Obs.reset ();
  Alcotest.(check int) "metrics count the injection" 1 m.Obs.m_injected;
  Alcotest.(check int) "span carries an inject mark" 1 (List.length marks)

let qtest = QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "fault"
    [ "plan",
      [ Alcotest.test_case "round-trip" `Quick test_plan_roundtrip;
        Alcotest.test_case "spec form" `Quick test_plan_spec;
        Alcotest.test_case "rejects garbage" `Quick test_plan_rejects_garbage;
        qtest test_plan_roundtrip_qcheck ];
      "injector",
      [ Alcotest.test_case "k-th call exactly" `Quick test_kth_read_exactly;
        Alcotest.test_case "pid-scoped site" `Quick test_pid_scoped_site;
        Alcotest.test_case "duplicated candidates" `Quick
          test_duplicated_candidates;
        Alcotest.test_case "EINTR restart pair" `Quick test_eintr_restart_pair;
        Alcotest.test_case "EPIPE never restarted" `Quick
          test_epipe_never_restarted;
        Alcotest.test_case "failure charges time" `Quick
          test_injected_failure_charges_time;
        Alcotest.test_case "delay charges latency" `Quick
          test_delay_charges_latency;
        Alcotest.test_case "deterministic" `Quick test_planned_deterministic ];
      "oracle",
      [ Alcotest.test_case "tolerated (absorbed)" `Quick
          test_classify_tolerated_absorbed;
        Alcotest.test_case "tolerated (reported)" `Quick
          test_classify_tolerated_reported;
        Alcotest.test_case "wrong-result" `Quick test_classify_wrong_result;
        Alcotest.test_case "hang" `Quick test_classify_hang;
        Alcotest.test_case "crash" `Quick test_classify_crash;
        Alcotest.test_case "unreaped child" `Quick test_classify_unreaped ];
      "campaign",
      [ Alcotest.test_case "baseline profile" `Quick test_baseline_profile;
        Alcotest.test_case "sweep classifies" `Quick
          test_sweep_classifies_everything;
        Alcotest.test_case "kvd connection sweep" `Quick test_kvd_conn_sweep;
        Alcotest.test_case "shrink" `Quick test_shrink_to_minimal ];
      "bundle",
      [ Alcotest.test_case "round-trip + replay" `Quick
          test_bundle_roundtrip_and_replay;
        Alcotest.test_case "rejects garbage" `Quick
          test_bundle_rejects_garbage ];
      "obs",
      [ Alcotest.test_case "injected counter + mark" `Quick
          test_obs_counts_injections ] ]
