(* Kernel-level tests: boot, file I/O, fork/wait, pipes, signals,
   execve, interception primitives. *)

open Abi

let errno = Alcotest.testable Errno.pp ( = )

let check_ok what = function
  | Ok v -> v
  | Error e -> Alcotest.failf "%s failed: %s" what (Errno.name e)

let boot_with body =
  let k = Kernel.create () in
  Kernel.populate_standard k;
  let status = Kernel.boot k ~name:"test" body in
  k, status

let exit_code status =
  Alcotest.(check bool) "exited normally" true (Flags.Wait.wifexited status);
  Flags.Wait.wexitstatus status

(* --- boot ----------------------------------------------------------- *)

let test_boot_exit_code () =
  let _, status = boot_with (fun () -> 42) in
  Alcotest.(check int) "code" 42 (exit_code status)

let test_boot_stdio () =
  let k, status = boot_with (fun () ->
    Libc.Stdio.print "hello, world\n";
    0)
  in
  ignore (exit_code status);
  Alcotest.(check string) "console" "hello, world\n" (Kernel.console_output k)

let test_clock_advances () =
  let k, _ = boot_with (fun () ->
    ignore (Libc.Unistd.getpid ());
    0)
  in
  Alcotest.(check bool) "time passed" true (Kernel.elapsed_seconds k > 0.0)

(* --- file I/O -------------------------------------------------------- *)

let test_write_read_roundtrip () =
  let result = ref "" in
  let _, status = boot_with (fun () ->
    check_ok "write" (Libc.Stdio.write_file "/tmp/x" "payload");
    result := check_ok "read" (Libc.Stdio.read_file "/tmp/x");
    0)
  in
  ignore (exit_code status);
  Alcotest.(check string) "content" "payload" !result

let test_open_enoent () =
  let err = ref None in
  let _, _ = boot_with (fun () ->
    (match Libc.Unistd.open_ "/no/such/file" Flags.Open.o_rdonly 0 with
     | Error e -> err := Some e
     | Ok _ -> ());
    0)
  in
  Alcotest.(check (option errno)) "errno" (Some Errno.ENOENT) !err

let test_lseek_and_append () =
  let out = ref "" in
  let _, _ = boot_with (fun () ->
    check_ok "write" (Libc.Stdio.write_file "/tmp/f" "0123456789");
    let fd =
      check_ok "open" (Libc.Unistd.open_ "/tmp/f" Flags.Open.o_rdwr 0)
    in
    ignore (check_ok "seek" (Libc.Unistd.lseek fd 4 Flags.Seek.set));
    ignore (check_ok "write" (Libc.Unistd.write fd "XY"));
    ignore (Libc.Unistd.close fd);
    check_ok "append" (Libc.Stdio.append_file "/tmp/f" "Z");
    out := check_ok "read" (Libc.Stdio.read_file "/tmp/f");
    0)
  in
  Alcotest.(check string) "content" "0123XY6789Z" !out

let test_dup2_shares_offset () =
  let out = ref "" in
  let _, _ = boot_with (fun () ->
    let fd =
      check_ok "open"
        (Libc.Unistd.open_ "/tmp/d" Flags.Open.(o_wronly lor o_creat) 0o644)
    in
    let fd2 = check_ok "dup" (Libc.Unistd.dup fd) in
    ignore (check_ok "w1" (Libc.Unistd.write fd "AB"));
    ignore (check_ok "w2" (Libc.Unistd.write fd2 "CD"));
    ignore (Libc.Unistd.close fd);
    ignore (Libc.Unistd.close fd2);
    out := check_ok "read" (Libc.Stdio.read_file "/tmp/d");
    0)
  in
  Alcotest.(check string) "offset shared" "ABCD" !out

(* --- processes -------------------------------------------------------- *)

let test_fork_wait () =
  let _, status = boot_with (fun () ->
    let pid =
      check_ok "fork" (Libc.Unistd.fork ~child:(fun () -> 7))
    in
    let wpid, wstatus = check_ok "wait" (Libc.Unistd.wait ()) in
    Alcotest.(check int) "waited right child" pid wpid;
    Alcotest.(check bool) "child exited" true
      (Flags.Wait.wifexited wstatus);
    Flags.Wait.wexitstatus wstatus)
  in
  Alcotest.(check int) "propagated" 7 (exit_code status)

let test_fork_inherits_cwd_and_fds () =
  let _, status = boot_with (fun () ->
    check_ok "mkdir" (Libc.Unistd.mkdir "/tmp/sub" 0o755);
    check_ok "chdir" (Libc.Unistd.chdir "/tmp/sub");
    let pid =
      check_ok "fork"
        (Libc.Unistd.fork ~child:(fun () ->
           let cwd = check_ok "getcwd" (Libc.Unistd.getcwd ()) in
           if cwd = "/tmp/sub" then 0 else 1))
    in
    let _, st = check_ok "wait" (Libc.Unistd.waitpid pid 0) in
    Flags.Wait.wexitstatus st)
  in
  Alcotest.(check int) "child saw cwd" 0 (exit_code status)

let test_wait_echild () =
  let err = ref None in
  let _, _ = boot_with (fun () ->
    (match Libc.Unistd.wait () with
     | Error e -> err := Some e
     | Ok _ -> ());
    0)
  in
  Alcotest.(check (option errno)) "ECHILD" (Some Errno.ECHILD) !err

let test_zombie_reaped_once () =
  let _, status = boot_with (fun () ->
    let _ = check_ok "fork" (Libc.Unistd.fork ~child:(fun () -> 0)) in
    let _ = check_ok "wait1" (Libc.Unistd.wait ()) in
    match Libc.Unistd.wait () with
    | Error Errno.ECHILD -> 0
    | Error _ | Ok _ -> 1)
  in
  Alcotest.(check int) "second wait fails" 0 (exit_code status)

(* --- pipes ------------------------------------------------------------- *)

let test_pipe_parent_child () =
  let _, status = boot_with (fun () ->
    let r, w = check_ok "pipe" (Libc.Unistd.pipe ()) in
    let _ =
      check_ok "fork"
        (Libc.Unistd.fork ~child:(fun () ->
           ignore (Libc.Unistd.close r);
           ignore (Libc.Unistd.write_all w "through the pipe");
           ignore (Libc.Unistd.close w);
           0))
    in
    ignore (Libc.Unistd.close w);
    let data = check_ok "read_all" (Libc.Unistd.read_all r) in
    ignore (Libc.Unistd.close r);
    let _ = Libc.Unistd.wait () in
    if data = "through the pipe" then 0 else 1)
  in
  Alcotest.(check int) "pipe data" 0 (exit_code status)

let test_pipe_blocking_backpressure () =
  (* the writer must fill the 4096-byte buffer and block until the
     reader drains it *)
  let _, status = boot_with (fun () ->
    let r, w = check_ok "pipe" (Libc.Unistd.pipe ()) in
    let big = String.make 10_000 'x' in
    let _ =
      check_ok "fork"
        (Libc.Unistd.fork ~child:(fun () ->
           ignore (Libc.Unistd.close r);
           ignore (Libc.Unistd.write_all w big);
           ignore (Libc.Unistd.close w);
           0))
    in
    ignore (Libc.Unistd.close w);
    let data = check_ok "read_all" (Libc.Unistd.read_all r) in
    let _ = Libc.Unistd.wait () in
    if data = big then 0 else 1)
  in
  Alcotest.(check int) "10k through 4k pipe" 0 (exit_code status)

let test_epipe_and_sigpipe () =
  let _, status = boot_with (fun () ->
    let r, w = check_ok "pipe" (Libc.Unistd.pipe ()) in
    ignore (Libc.Unistd.close r);
    ignore
      (Libc.Unistd.signal Signal.sigpipe Value.H_ignore |> check_ok "signal");
    match Libc.Unistd.write w "x" with
    | Error Errno.EPIPE -> 0
    | Error _ | Ok _ -> 1)
  in
  Alcotest.(check int) "EPIPE" 0 (exit_code status)

let test_sigpipe_kills_by_default () =
  let _, status = boot_with (fun () ->
    let pid =
      check_ok "fork"
        (Libc.Unistd.fork ~child:(fun () ->
           let r, w = check_ok "pipe" (Libc.Unistd.pipe ()) in
           ignore (Libc.Unistd.close r);
           ignore (Libc.Unistd.write w "x");
           0))
    in
    let _, st = check_ok "wait" (Libc.Unistd.waitpid pid 0) in
    if Flags.Wait.wifsignaled st && Flags.Wait.wtermsig st = Signal.sigpipe
    then 0
    else 1)
  in
  Alcotest.(check int) "killed by SIGPIPE" 0 (exit_code status)

(* --- signals ------------------------------------------------------------ *)

let test_handler_runs () =
  let _, status = boot_with (fun () ->
    let hits = ref 0 in
    ignore
      (check_ok "signal"
         (Libc.Unistd.signal Signal.sigusr1
            (Value.H_fn (fun _ -> incr hits))));
    check_ok "kill" (Libc.Unistd.kill (Libc.Unistd.getpid ()) Signal.sigusr1);
    (* delivery happens at the next trap boundary *)
    ignore (Libc.Unistd.getpid ());
    !hits)
  in
  Alcotest.(check int) "handler ran once" 1 (exit_code status)

let test_sigterm_default_kills () =
  let _, status = boot_with (fun () ->
    let pid =
      check_ok "fork"
        (Libc.Unistd.fork ~child:(fun () ->
           (* loop until killed *)
           let rec spin () =
             ignore (Libc.Unistd.getpid ());
             spin ()
           in
           spin ()))
    in
    check_ok "kill" (Libc.Unistd.kill pid Signal.sigterm);
    let _, st = check_ok "wait" (Libc.Unistd.waitpid pid 0) in
    if Flags.Wait.wifsignaled st && Flags.Wait.wtermsig st = Signal.sigterm
    then 0
    else 1)
  in
  Alcotest.(check int) "terminated" 0 (exit_code status)

let test_sigmask_defers () =
  let _, status = boot_with (fun () ->
    let hits = ref 0 in
    ignore
      (check_ok "signal"
         (Libc.Unistd.signal Signal.sigusr1
            (Value.H_fn (fun _ -> incr hits))));
    ignore
      (check_ok "block"
         (Libc.Unistd.sigprocmask Flags.Sighow.sig_block
            (Signal.Mask.mask_bit Signal.sigusr1)));
    check_ok "kill" (Libc.Unistd.kill (Libc.Unistd.getpid ()) Signal.sigusr1);
    ignore (Libc.Unistd.getpid ());
    let before = !hits in
    ignore
      (check_ok "unblock"
         (Libc.Unistd.sigprocmask Flags.Sighow.sig_setmask 0));
    ignore (Libc.Unistd.getpid ());
    if before = 0 && !hits = 1 then 0 else 1)
  in
  Alcotest.(check int) "masked then delivered" 0 (exit_code status)

let test_alarm_interrupts_sleep () =
  let _, status = boot_with (fun () ->
    ignore
      (check_ok "signal"
         (Libc.Unistd.signal Signal.sigalrm (Value.H_fn (fun _ -> ()))));
    ignore (check_ok "alarm" (Libc.Unistd.alarm 1));
    match Libc.Unistd.sleep_us 10_000_000 with
    | Error Errno.EINTR -> 0
    | Error _ | Ok _ -> 1)
  in
  Alcotest.(check int) "EINTR" 0 (exit_code status)

let test_sleep_advances_clock () =
  let k, _ = boot_with (fun () ->
    ignore (Libc.Unistd.sleep_us 2_000_000);
    0)
  in
  Alcotest.(check bool) "slept 2s" true (Kernel.elapsed_seconds k >= 2.0)

let test_sigkill_unblockable () =
  let _, status = boot_with (fun () ->
    let pid =
      check_ok "fork"
        (Libc.Unistd.fork ~child:(fun () ->
           ignore
             (Libc.Unistd.sigprocmask Flags.Sighow.sig_block
                Signal.Mask.full);
           ignore (Libc.Unistd.sleep_us 60_000_000);
           0))
    in
    check_ok "kill" (Libc.Unistd.kill pid Signal.sigkill);
    let _, st = check_ok "wait" (Libc.Unistd.waitpid pid 0) in
    if Flags.Wait.wifsignaled st && Flags.Wait.wtermsig st = Signal.sigkill
    then 0
    else 1)
  in
  Alcotest.(check int) "SIGKILL" 0 (exit_code status)

(* --- execve -------------------------------------------------------------- *)

let register_test_child k =
  Kernel.register_image k "test-child" (fun ~argv ~envp:_ () ->
    Libc.Stdio.printf "child:%s\n"
      (if Array.length argv > 1 then argv.(1) else "?");
    11)

let test_execve () =
  let k = Kernel.create () in
  Kernel.populate_standard k;
  register_test_child k;
  Kernel.install_image k ~path:"/bin/test-child" ~image:"test-child";
  let status =
    Kernel.boot k ~name:"init" (fun () ->
      let st =
        check_ok "run"
          (Libc.Spawn.run "/bin/test-child" [| "test-child"; "arg1" |])
      in
      Flags.Wait.wexitstatus st)
  in
  Alcotest.(check int) "child exit" 11 (exit_code status);
  Alcotest.(check string) "child output" "child:arg1\n"
    (Kernel.console_output k)

let test_execve_enoexec () =
  let k = Kernel.create () in
  Kernel.populate_standard k;
  Kernel.write_file k ~path:"/bin/junk" ~perm:0o755 "not an image";
  let status =
    Kernel.boot k ~name:"init" (fun () ->
      match Libc.Unistd.execv "/bin/junk" [| "junk" |] with
      | Error Errno.ENOEXEC -> 0
      | Error _ | Ok _ -> 1)
  in
  Alcotest.(check int) "ENOEXEC" 0 (exit_code status)

let test_execve_clears_emulation () =
  (* a raw execve must clear the interception vector *)
  let k = Kernel.create () in
  Kernel.populate_standard k;
  let hit = ref 0 in
  Kernel.register_image k "emu-probe" (fun ~argv:_ ~envp:_ () ->
    ignore (Libc.Unistd.getpid ());
    0);
  Kernel.install_image k ~path:"/bin/emu-probe" ~image:"emu-probe";
  let status =
    Kernel.boot k ~name:"init" (fun () ->
      Kernel.Uspace.task_set_emulation ~numbers:[ Sysno.sys_getpid ]
        (Some (fun w ->
           incr hit;
           Kernel.Uspace.htg_trap w));
      ignore (Libc.Unistd.getpid ());  (* intercepted: hit = 1 *)
      match Libc.Unistd.execv "/bin/emu-probe" [| "emu-probe" |] with
      | Error _ -> 1
      | Ok _ -> assert false)
  in
  Alcotest.(check int) "probe exit" 0 (exit_code status);
  Alcotest.(check int) "only pre-exec call intercepted" 1 !hit

(* --- interception primitives ------------------------------------------------ *)

let test_interception_and_htg () =
  let _, status = boot_with (fun () ->
    let seen = ref [] in
    Kernel.Uspace.task_set_emulation ~numbers:[ Sysno.sys_getpid ]
      (Some (fun w ->
         seen := Envelope.number w :: !seen;
         Kernel.Uspace.htg_trap w));
    let pid = Libc.Unistd.getpid () in
    let direct =
      match Kernel.Uspace.htg_syscall Call.Getpid with
      | Ok { Value.r0; _ } -> r0
      | Error _ -> -1
    in
    Kernel.Uspace.task_set_emulation ~numbers:[ Sysno.sys_getpid ] None;
    let again = Libc.Unistd.getpid () in
    if pid = direct && pid = again && !seen = [ Sysno.sys_getpid ] then 0
    else 1)
  in
  Alcotest.(check int) "intercept once, htg bypasses" 0 (exit_code status)

let test_emulation_inherited_by_fork () =
  let _, status = boot_with (fun () ->
    let count = ref 0 in
    Kernel.Uspace.task_set_emulation ~numbers:[ Sysno.sys_getpid ]
      (Some (fun w ->
         incr count;
         Kernel.Uspace.htg_trap w));
    let pid =
      check_ok "fork"
        (Libc.Unistd.fork ~child:(fun () ->
           ignore (Libc.Unistd.getpid ());
           0))
    in
    let _ = check_ok "wait" (Libc.Unistd.waitpid pid 0) in
    (* parent's getpid + child's getpid, both intercepted (the vector
       is copied with the address space; the handler state is shared) *)
    ignore (Libc.Unistd.getpid ());
    if !count >= 2 then 0 else 1)
  in
  Alcotest.(check int) "vector copied on fork" 0 (exit_code status)

(* --- misc -------------------------------------------------------------------- *)

let test_getdirentries_via_readdir () =
  let listing = ref [] in
  let _, _ = boot_with (fun () ->
    check_ok "mkdir" (Libc.Unistd.mkdir "/tmp/dir" 0o755);
    check_ok "a" (Libc.Stdio.write_file "/tmp/dir/a" "1");
    check_ok "b" (Libc.Stdio.write_file "/tmp/dir/b" "2");
    check_ok "c" (Libc.Stdio.write_file "/tmp/dir/c" "3");
    listing := check_ok "names" (Libc.Dirstream.names "/tmp/dir");
    0)
  in
  Alcotest.(check (list string)) "names" [ "a"; "b"; "c" ] !listing

let test_gettimeofday_monotonic () =
  let _, status = boot_with (fun () ->
    let t1 = check_ok "tod" (Libc.Unistd.gettimeofday ()) in
    ignore (Libc.Unistd.sleep_us 100_000);
    let t2 = check_ok "tod" (Libc.Unistd.gettimeofday ()) in
    if compare t2 t1 > 0 then 0 else 1)
  in
  Alcotest.(check int) "monotonic" 0 (exit_code status)

let test_deadlock_detected () =
  (* a process reading from a pipe with the write end still open in its
     own fd table but never written: scheduler must not hang *)
  let k, _ = boot_with (fun () ->
    let r, _w = check_ok "pipe" (Libc.Unistd.pipe ()) in
    let buf = Bytes.create 1 in
    ignore (Libc.Unistd.read r buf 1);
    0)
  in
  Alcotest.(check bool) "stragglers killed" true (Kernel.deadlock_kills k > 0)

let test_isatty () =
  let _, status = boot_with (fun () ->
    if Libc.Unistd.isatty 1 then 0 else 1)
  in
  Alcotest.(check int) "stdout is a tty" 0 (exit_code status)

let () =
  Alcotest.run "kernel"
    [ "boot",
      [ Alcotest.test_case "exit code" `Quick test_boot_exit_code;
        Alcotest.test_case "stdio" `Quick test_boot_stdio;
        Alcotest.test_case "clock advances" `Quick test_clock_advances ];
      "file-io",
      [ Alcotest.test_case "roundtrip" `Quick test_write_read_roundtrip;
        Alcotest.test_case "ENOENT" `Quick test_open_enoent;
        Alcotest.test_case "lseek+append" `Quick test_lseek_and_append;
        Alcotest.test_case "dup shares offset" `Quick
          test_dup2_shares_offset;
        Alcotest.test_case "readdir" `Quick test_getdirentries_via_readdir ];
      "process",
      [ Alcotest.test_case "fork/wait" `Quick test_fork_wait;
        Alcotest.test_case "inherit cwd+fds" `Quick
          test_fork_inherits_cwd_and_fds;
        Alcotest.test_case "ECHILD" `Quick test_wait_echild;
        Alcotest.test_case "zombie once" `Quick test_zombie_reaped_once ];
      "pipe",
      [ Alcotest.test_case "parent/child" `Quick test_pipe_parent_child;
        Alcotest.test_case "backpressure" `Quick
          test_pipe_blocking_backpressure;
        Alcotest.test_case "EPIPE" `Quick test_epipe_and_sigpipe;
        Alcotest.test_case "SIGPIPE default" `Quick
          test_sigpipe_kills_by_default ];
      "signal",
      [ Alcotest.test_case "handler" `Quick test_handler_runs;
        Alcotest.test_case "SIGTERM default" `Quick
          test_sigterm_default_kills;
        Alcotest.test_case "mask defers" `Quick test_sigmask_defers;
        Alcotest.test_case "alarm EINTR" `Quick test_alarm_interrupts_sleep;
        Alcotest.test_case "sleep clock" `Quick test_sleep_advances_clock;
        Alcotest.test_case "SIGKILL" `Quick test_sigkill_unblockable ];
      "execve",
      [ Alcotest.test_case "exec image" `Quick test_execve;
        Alcotest.test_case "ENOEXEC" `Quick test_execve_enoexec;
        Alcotest.test_case "clears emulation" `Quick
          test_execve_clears_emulation ];
      "interception",
      [ Alcotest.test_case "intercept+htg" `Quick test_interception_and_htg;
        Alcotest.test_case "fork inherits vector" `Quick
          test_emulation_inherited_by_fork ];
      "misc",
      [ Alcotest.test_case "gettimeofday" `Quick test_gettimeofday_monotonic;
        Alcotest.test_case "deadlock" `Quick test_deadlock_detected;
        Alcotest.test_case "isatty" `Quick test_isatty ] ]
