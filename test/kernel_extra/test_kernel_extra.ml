(* Further kernel semantics: process groups, job control, descriptor
   flags across exec, fifos, umask, non-blocking I/O, timers, crash
   handling and getdirentries paging. *)

open Abi
open Tharness

let u = Libc.Unistd.ok_exn

(* --- process groups ------------------------------------------------------ *)

let test_pgrp_inherit_and_set () =
  let _, status = boot (fun () ->
    let my_pgrp = Libc.Unistd.getpgrp () in
    let pid =
      u "fork"
        (Libc.Unistd.fork ~child:(fun () ->
           if Libc.Unistd.getpgrp () <> my_pgrp then 1
           else begin
             u "setpgrp" (Libc.Unistd.setpgrp 0 (Libc.Unistd.getpid ()));
             if Libc.Unistd.getpgrp () = Libc.Unistd.getpid () then 0 else 2
           end))
    in
    let _, st = u "wait" (Libc.Unistd.waitpid pid 0) in
    Flags.Wait.wexitstatus st)
  in
  check_exit "pgrp semantics" 0 status

let test_kill_process_group () =
  let _, status = boot (fun () ->
    (* two children in their own group; kill the group at once *)
    let spin () =
      let rec loop () =
        ignore (Libc.Unistd.getpid ());
        loop ()
      in
      loop ()
    in
    let mk () =
      u "fork"
        (Libc.Unistd.fork ~child:(fun () ->
           u "setpgrp" (Libc.Unistd.setpgrp 0 4242);
           spin ()))
    in
    let c1 = mk () in
    let c2 = mk () in
    (* give them a chance to join the group *)
    ignore (Libc.Unistd.sleep_us 1000);
    u "kill group" (Libc.Unistd.kill (-4242) Signal.sigterm);
    let reap pid =
      let _, st = u "wait" (Libc.Unistd.waitpid pid 0) in
      Flags.Wait.wifsignaled st && Flags.Wait.wtermsig st = Signal.sigterm
    in
    if reap c1 && reap c2 then 0 else 1)
  in
  check_exit "group killed" 0 status

(* --- job control: stop and continue -------------------------------------- *)

let test_stop_and_continue () =
  let _, status = boot (fun () ->
    let pid =
      u "fork"
        (Libc.Unistd.fork ~child:(fun () ->
           (* loop until continued, then exit 7 *)
           for _ = 1 to 50 do
             ignore (Libc.Unistd.getpid ())
           done;
           7))
    in
    u "stop" (Libc.Unistd.kill pid Signal.sigstop);
    (* WUNTRACED sees the stop *)
    let wpid, st = u "wait" (Libc.Unistd.waitpid pid Flags.Wait.wuntraced) in
    if wpid <> pid || not (Flags.Wait.wifstopped st) then 1
    else begin
      u "cont" (Libc.Unistd.kill pid Signal.sigcont);
      let _, st = u "wait2" (Libc.Unistd.waitpid pid 0) in
      if Flags.Wait.wifexited st && Flags.Wait.wexitstatus st = 7 then 0
      else 2
    end)
  in
  check_exit "stop/continue" 0 status

(* --- descriptors across exec ----------------------------------------------- *)

let test_cloexec_closed_on_exec () =
  let k = fresh_kernel () in
  Kernel.register_image k "fdprobe" (fun ~argv ~envp:_ () ->
    (* argv.(1) is the fd that must be closed, argv.(2) must be open *)
    let closed = int_of_string argv.(1) in
    let still = int_of_string argv.(2) in
    let buf = Bytes.create 1 in
    let closed_gone =
      match Libc.Unistd.read closed buf 1 with
      | Error Errno.EBADF -> true
      | Error _ | Ok _ -> false
    in
    let open_ok = Result.is_ok (Libc.Unistd.read still buf 1) in
    if closed_gone && open_ok then 0 else 1);
  Kernel.install_image k ~path:"/bin/fdprobe" ~image:"fdprobe";
  Kernel.write_file k ~path:"/tmp/data" "xx";
  let status =
    boot_k k (fun () ->
      let fd1 = u "open1" (Libc.Unistd.open_ "/tmp/data" 0 0) in
      let fd2 = u "open2" (Libc.Unistd.open_ "/tmp/data" 0 0) in
      u "cloexec" (Libc.Unistd.set_cloexec fd1 true);
      match
        Libc.Unistd.execv "/bin/fdprobe"
          [| "fdprobe"; string_of_int fd1; string_of_int fd2 |]
      with
      | Error _ -> 99
      | Ok _ -> assert false)
  in
  check_exit "cloexec honoured" 0 status

(* --- fifos -------------------------------------------------------------------- *)

let test_fifo_between_processes () =
  let _, status = boot (fun () ->
    u "mkfifo" (Libc.Unistd.mkfifo "/tmp/pipe" 0o644);
    let pid =
      u "fork"
        (Libc.Unistd.fork ~child:(fun () ->
           let fd = u "open w" (Libc.Unistd.open_ "/tmp/pipe" Flags.Open.o_wronly 0) in
           ignore (Libc.Unistd.write_all fd "fifo payload");
           ignore (Libc.Unistd.close fd);
           0))
    in
    let fd = u "open r" (Libc.Unistd.open_ "/tmp/pipe" Flags.Open.o_rdonly 0) in
    let got = u "read" (Libc.Unistd.read_all fd) in
    ignore (Libc.Unistd.close fd);
    let _ = Libc.Unistd.waitpid pid 0 in
    if got = "fifo payload" then 0 else 1)
  in
  check_exit "fifo" 0 status

let test_fifo_stat_kind () =
  let _, status = boot (fun () ->
    u "mkfifo" (Libc.Unistd.mkfifo "/tmp/p" 0o600);
    let st = u "stat" (Libc.Unistd.stat "/tmp/p") in
    if Flags.Mode.is_fifo st.Stat.st_mode then 0 else 1)
  in
  check_exit "fifo kind" 0 status

(* --- umask / O_APPEND / nonblocking -------------------------------------------- *)

let test_umask_applies () =
  let _, status = boot (fun () ->
    ignore (u "umask" (Libc.Unistd.umask 0o077));
    let fd = u "creat" (Libc.Unistd.creat "/tmp/masked" 0o666) in
    ignore (Libc.Unistd.close fd);
    let st = u "stat" (Libc.Unistd.stat "/tmp/masked") in
    if Flags.Mode.perm_bits st.Stat.st_mode = 0o600 then 0 else 1)
  in
  check_exit "umask" 0 status

let test_append_interleave () =
  let k, status = boot (fun () ->
    let open_append () =
      u "open"
        (Libc.Unistd.open_ "/tmp/log"
           Flags.Open.(o_wronly lor o_creat lor o_append)
           0o644)
    in
    let fd1 = open_append () in
    let fd2 = open_append () in
    ignore (Libc.Unistd.write fd1 "one ");
    ignore (Libc.Unistd.write fd2 "two ");
    ignore (Libc.Unistd.write fd1 "three");
    0)
  in
  ignore (exit_code status);
  Alcotest.(check string) "appends interleave" "one two three"
    (read_file_exn k "/tmp/log")

let test_nonblocking_pipe () =
  let _, status = boot (fun () ->
    let r, w = u "pipe" (Libc.Unistd.pipe ()) in
    ignore
      (u "setfl"
         (Libc.Unistd.fcntl r Flags.Fcntl.f_setfl Flags.Open.o_nonblock));
    let buf = Bytes.create 4 in
    (match Libc.Unistd.read r buf 4 with
     | Error Errno.EWOULDBLOCK -> ()
     | Error _ | Ok _ -> Libc.Unistd._exit 1);
    ignore
      (u "setfl w"
         (Libc.Unistd.fcntl w Flags.Fcntl.f_setfl Flags.Open.o_nonblock));
    (* fill the pipe: a non-blocking write on a full pipe must fail *)
    let chunk = String.make 4096 'x' in
    ignore (Libc.Unistd.write w chunk);
    match Libc.Unistd.write w "y" with
    | Error Errno.EWOULDBLOCK -> 0
    | Error _ | Ok _ -> 2)
  in
  check_exit "O_NONBLOCK" 0 status

(* --- alarm bookkeeping ------------------------------------------------------------ *)

let test_alarm_replaced_and_cancelled () =
  let _, status = boot (fun () ->
    ignore (u "sig" (Libc.Unistd.signal Signal.sigalrm Value.H_ignore));
    ignore (u "alarm 100" (Libc.Unistd.alarm 100));
    let remaining = u "alarm 50" (Libc.Unistd.alarm 50) in
    if remaining < 95 || remaining > 100 then 1
    else begin
      let remaining2 = u "cancel" (Libc.Unistd.alarm 0) in
      if remaining2 < 45 || remaining2 > 50 then 2
      else begin
        (* sleeping past the old deadlines must not deliver SIGALRM *)
        ignore (Libc.Unistd.sleep_us 200_000_000);
        0
      end
    end)
  in
  check_exit "alarm bookkeeping" 0 status

(* --- crash handling ------------------------------------------------------------------ *)

let test_uncaught_exception_is_abort () =
  let _, status = boot (fun () ->
    let pid =
      u "fork"
        (Libc.Unistd.fork ~child:(fun () -> raise Exit))
    in
    let _, st = u "wait" (Libc.Unistd.waitpid pid 0) in
    if Flags.Wait.wifsignaled st && Flags.Wait.wtermsig st = Signal.sigabrt
    then 0
    else 1)
  in
  check_exit "crash becomes SIGABRT" 0 status

let test_division_crash_contained () =
  let _, status = boot (fun () ->
    let pid =
      u "fork"
        (Libc.Unistd.fork ~child:(fun () -> 1 / (Sys.opaque_identity 0)))
    in
    let _, st = u "wait" (Libc.Unistd.waitpid pid 0) in
    (* parent unaffected by the child's crash *)
    if Flags.Wait.wifsignaled st then 0 else 1)
  in
  check_exit "contained" 0 status

(* --- getdirentries paging -------------------------------------------------------------- *)

let test_getdirentries_small_buffer_pages () =
  let listing = ref [] in
  let _, status = boot (fun () ->
    u "mkdir" (Libc.Unistd.mkdir "/tmp/many" 0o755);
    for i = 1 to 40 do
      ignore
        (u "w"
           (Libc.Stdio.write_file
              (Printf.sprintf "/tmp/many/file%02d" i)
              "x"))
    done;
    (* a buffer that holds only a few entries forces many calls *)
    let fd = u "open" (Libc.Unistd.open_ "/tmp/many" 0 0) in
    let buf = Bytes.create 64 in
    let rec collect acc =
      match u "getdirentries" (Libc.Unistd.getdirentries fd buf) with
      | 0, _ -> List.rev acc
      | n, _ -> collect (List.rev_append (Dirent.decode_all buf ~len:n) acc)
    in
    let entries = collect [] in
    listing :=
      List.filter_map
        (fun (e : Dirent.t) ->
          if e.d_name = "." || e.d_name = ".." then None else Some e.d_name)
        entries;
    0)
  in
  ignore (exit_code status);
  Alcotest.(check int) "all 40 seen" 40 (List.length !listing);
  Alcotest.(check (list string)) "sorted and complete"
    (List.init 40 (fun i -> Printf.sprintf "file%02d" (i + 1)))
    (List.sort compare !listing)

let test_lseek_rewinds_directory () =
  let _, status = boot (fun () ->
    u "mkdir" (Libc.Unistd.mkdir "/tmp/d" 0o755);
    ignore (u "w" (Libc.Stdio.write_file "/tmp/d/a" "1"));
    let fd = u "open" (Libc.Unistd.open_ "/tmp/d" 0 0) in
    let buf = Bytes.create 256 in
    let n1, _ = u "gd1" (Libc.Unistd.getdirentries fd buf) in
    let n2, _ = u "gd2" (Libc.Unistd.getdirentries fd buf) in
    ignore (u "rewind" (Libc.Unistd.lseek fd 0 Flags.Seek.set));
    let n3, _ = u "gd3" (Libc.Unistd.getdirentries fd buf) in
    if n1 > 0 && n2 = 0 && n3 = n1 then 0 else 1)
  in
  check_exit "rewinddir" 0 status

(* --- time ----------------------------------------------------------------------------------- *)

let test_settimeofday_root_only () =
  let _, status = boot (fun () ->
    (* boot runs as root: may set the time *)
    u "set" (Libc.Unistd.settimeofday ~sec:1_000_000_000 ~usec:0);
    let sec, _ = u "get" (Libc.Unistd.gettimeofday ()) in
    if abs (sec - 1_000_000_000) > 5 then 1
    else begin
      u "setuid" (Libc.Unistd.setuid 100);
      match Libc.Unistd.settimeofday ~sec:0 ~usec:0 with
      | Error Errno.EPERM -> 0
      | Error _ | Ok _ -> 2
    end)
  in
  check_exit "settimeofday" 0 status

let test_fionread () =
  let _, status = boot (fun () ->
    let r, w = u "pipe" (Libc.Unistd.pipe ()) in
    ignore (u "write" (Libc.Unistd.write w "12345"));
    let buf = Bytes.create 4 in
    ignore (u "ioctl" (Libc.Unistd.ioctl r Flags.Ioctl.fionread buf));
    if Int32.to_int (Bytes.get_int32_le buf 0) = 5 then 0 else 1)
  in
  check_exit "FIONREAD" 0 status

(* --- socketpair ----------------------------------------------------------------------------- *)

let test_socketpair_bidirectional () =
  let _, status = boot (fun () ->
    let a, b = u "socketpair" (Libc.Unistd.socketpair ()) in
    let pid =
      u "fork"
        (Libc.Unistd.fork ~child:(fun () ->
           ignore (Libc.Unistd.close a);
           (* echo server: read a request, answer it *)
           let buf = Bytes.create 64 in
           let n =
             match Libc.Unistd.read b buf 64 with
             | Ok n -> n
             | Error _ -> 0
           in
           let request = Bytes.sub_string buf 0 n in
           ignore (Libc.Unistd.write_all b ("re:" ^ request));
           ignore (Libc.Unistd.close b);
           0))
    in
    ignore (Libc.Unistd.close b);
    ignore (u "send" (Libc.Unistd.write_all a "ping"));
    let buf = Bytes.create 64 in
    let n = u "recv" (Libc.Unistd.read a buf 64) in
    let reply = Bytes.sub_string buf 0 n in
    ignore (Libc.Unistd.close a);
    let _ = Libc.Unistd.waitpid pid 0 in
    if reply = "re:ping" then 0 else 1)
  in
  check_exit "echo over socketpair" 0 status

let test_socketpair_eof_and_epipe () =
  let _, status = boot (fun () ->
    let a, b = u "socketpair" (Libc.Unistd.socketpair ()) in
    ignore (Libc.Unistd.close b);
    (* peer gone: reads see EOF, writes see EPIPE *)
    let buf = Bytes.create 4 in
    (match Libc.Unistd.read a buf 4 with
     | Ok 0 -> ()
     | Ok _ | Error _ -> Libc.Unistd._exit 1);
    ignore (Libc.Unistd.signal Signal.sigpipe Value.H_ignore);
    match Libc.Unistd.write a "x" with
    | Error Errno.EPIPE -> 0
    | Error _ | Ok _ -> 2)
  in
  check_exit "socket EOF/EPIPE" 0 status

let test_socketpair_stat_kind () =
  let _, status = boot (fun () ->
    let a, _b = u "socketpair" (Libc.Unistd.socketpair ()) in
    let st = u "fstat" (Libc.Unistd.fstat a) in
    if Flags.Mode.is_sock st.Stat.st_mode then 0 else 1)
  in
  check_exit "S_IFSOCK" 0 status

(* --- getrusage ------------------------------------------------------------------------------- *)

let test_getrusage_accounts_time () =
  let _, status = boot (fun () ->
    let u1, s1 = u "ru1" (Libc.Unistd.getrusage ()) in
    Libc.Unistd.cpu_work 5_000;
    ignore (Libc.Unistd.getpid ());
    ignore (Libc.Unistd.getpid ());
    let u2, s2 = u "ru2" (Libc.Unistd.getrusage ()) in
    (* 5ms of user time charged; two getpids (25us each) + the first
       getrusage (60us) of system time *)
    if u2 - u1 = 5_000 && s2 - s1 >= 110 then 0 else 1)
  in
  check_exit "rusage deltas" 0 status

let test_getrusage_per_process () =
  let _, status = boot (fun () ->
    let pid =
      u "fork"
        (Libc.Unistd.fork ~child:(fun () ->
           Libc.Unistd.cpu_work 1_000;
           let ut, _ = u "child ru" (Libc.Unistd.getrusage ()) in
           if ut = 1_000 then 0 else 1))
    in
    let _, st = u "wait" (Libc.Unistd.waitpid pid 0) in
    let ut, _ = u "parent ru" (Libc.Unistd.getrusage ()) in
    (* the child's user time is not the parent's *)
    if Flags.Wait.wexitstatus st = 0 && ut = 0 then 0 else 1)
  in
  check_exit "per-process accounting" 0 status

(* --- device nodes -------------------------------------------------------------------------- *)

let test_dev_null_and_zero () =
  let _, status = boot (fun () ->
    let null = u "open null" (Libc.Unistd.open_ "/dev/null" Flags.Open.o_rdwr 0) in
    (match Libc.Unistd.write null "discarded" with
     | Ok 9 -> ()
     | Ok _ | Error _ -> Libc.Unistd._exit 1);
    let buf = Bytes.make 4 'x' in
    (match Libc.Unistd.read null buf 4 with
     | Ok 0 -> ()
     | Ok _ | Error _ -> Libc.Unistd._exit 2);
    let zero = u "open zero" (Libc.Unistd.open_ "/dev/zero" Flags.Open.o_rdonly 0) in
    (match Libc.Unistd.read zero buf 4 with
     | Ok 4 when Bytes.to_string buf = "\000\000\000\000" -> 0
     | Ok _ | Error _ -> 3))
  in
  check_exit "null + zero" 0 status

let test_dev_stat_kind () =
  let _, status = boot (fun () ->
    let st = u "stat" (Libc.Unistd.stat "/dev/null") in
    if Flags.Mode.is_chr st.Stat.st_mode then 0 else 1)
  in
  check_exit "chardev kind" 0 status

(* --- select ------------------------------------------------------------------------------------ *)

let test_select_poll_and_ready () =
  let _, status = boot (fun () ->
    let r, w = u "pipe" (Libc.Unistd.pipe ()) in
    (* empty pipe: a poll (timeout 0) reports nothing ready *)
    (match Libc.Unistd.select ~read:[ r ] ~timeout_us:0 () with
     | Ok ([], []) -> ()
     | Ok _ | Error _ -> Libc.Unistd._exit 1);
    (* the write side of an empty pipe is ready *)
    (match Libc.Unistd.select ~write:[ w ] ~timeout_us:0 () with
     | Ok ([], [ fd ]) when fd = w -> ()
     | Ok _ | Error _ -> Libc.Unistd._exit 2);
    ignore (u "write" (Libc.Unistd.write w "x"));
    match Libc.Unistd.select ~read:[ r ] ~timeout_us:0 () with
    | Ok ([ fd ], []) when fd = r -> 0
    | Ok _ | Error _ -> 3)
  in
  check_exit "poll semantics" 0 status

let test_select_blocks_until_data () =
  let _, status = boot (fun () ->
    let r, w = u "pipe" (Libc.Unistd.pipe ()) in
    let _ =
      u "fork"
        (Libc.Unistd.fork ~child:(fun () ->
           ignore (Libc.Unistd.close r);
           ignore (Libc.Unistd.sleep_us 500_000);
           ignore (Libc.Unistd.write_all w "late data");
           0))
    in
    ignore (Libc.Unistd.close w);
    let t0, _ = u "t0" (Libc.Unistd.gettimeofday ()) in
    (match Libc.Unistd.select ~read:[ r ] () with
     | Ok ([ fd ], []) when fd = r -> ()
     | Ok _ | Error _ -> Libc.Unistd._exit 1);
    let buf = Bytes.create 16 in
    let n = u "read" (Libc.Unistd.read r buf 16) in
    let _ = Libc.Unistd.wait () in
    ignore t0;
    if Bytes.sub_string buf 0 n = "late data" then 0 else 2)
  in
  check_exit "blocking select" 0 status

let test_select_timeout_expires () =
  let k, status = boot (fun () ->
    let r, _w = u "pipe" (Libc.Unistd.pipe ()) in
    match Libc.Unistd.select ~read:[ r ] ~timeout_us:2_000_000 () with
    | Ok ([], []) -> 0
    | Ok _ | Error _ -> 1)
  in
  check_exit "timeout returns empty" 0 status;
  Alcotest.(check bool) "waited ~2 virtual seconds" true
    (Kernel.elapsed_seconds k >= 2.0)

let test_select_multiplexes_two_children () =
  (* the reason select exists: one parent watching two pipes *)
  let _, status = boot (fun () ->
    let mk_child delay_us tag =
      let r, w = u "pipe" (Libc.Unistd.pipe ()) in
      let _ =
        u "fork"
          (Libc.Unistd.fork ~child:(fun () ->
             ignore (Libc.Unistd.close r);
             ignore (Libc.Unistd.sleep_us delay_us);
             ignore (Libc.Unistd.write_all w tag);
             0))
      in
      ignore (Libc.Unistd.close w);
      r
    in
    let slow = mk_child 3_000_000 "slow" in
    let fast = mk_child 1_000_000 "fast" in
    let read_tag fd =
      let buf = Bytes.create 8 in
      match Libc.Unistd.read fd buf 8 with
      | Ok n -> Bytes.sub_string buf 0 n
      | Error _ -> "?"
    in
    (* first wake must be the fast child *)
    let first =
      match Libc.Unistd.select ~read:[ slow; fast ] () with
      | Ok ([ fd ], []) -> read_tag fd
      | Ok _ | Error _ -> "?"
    in
    (* the fast pipe is exhausted (and soon EOF-readable), so a real
       multiplexer drops it from the watch set *)
    let second =
      match Libc.Unistd.select ~read:[ slow ] () with
      | Ok ([ fd ], []) -> read_tag fd
      | Ok _ | Error _ -> "?"
    in
    let _ = Libc.Unistd.wait () in
    let _ = Libc.Unistd.wait () in
    if first = "fast" && second = "slow" then 0 else 1)
  in
  check_exit "multiplexing order" 0 status

let test_select_bad_fd () =
  let _, status = boot (fun () ->
    match Libc.Unistd.select ~read:[ 55 ] ~timeout_us:0 () with
    | Error Errno.EBADF -> 0
    | Error _ | Ok _ -> 1)
  in
  check_exit "EBADF" 0 status

(* --- scheduler stress -------------------------------------------------------------------------- *)

let test_many_children () =
  let _, status = boot (fun () ->
    let n = 100 in
    let pids =
      List.init n (fun i ->
        u "fork" (Libc.Unistd.fork ~child:(fun () -> i mod 8)))
    in
    let sum =
      List.fold_left
        (fun acc pid ->
          let _, st = u "wait" (Libc.Unistd.waitpid pid 0) in
          acc + Flags.Wait.wexitstatus st)
        0 pids
    in
    (* 100 children each exiting (i mod 8): 12 full cycles of 0+..+7
       plus 0+1+2+3 *)
    if sum = (12 * 28) + 6 then 0 else 1)
  in
  check_exit "100 children reaped" 0 status

let test_pipeline_chain_of_processes () =
  (* a 30-stage bucket brigade: each process increments a number and
     passes it down a chain of pipes *)
  let _, status = boot (fun () ->
    let stages = 30 in
    let first_r, first_w = u "pipe" (Libc.Unistd.pipe ()) in
    let rec build prev_r n =
      if n = 0 then prev_r
      else begin
        let r, w = u "pipe" (Libc.Unistd.pipe ()) in
        let _ =
          u "fork"
            (Libc.Unistd.fork ~child:(fun () ->
               ignore (Libc.Unistd.close r);
               let buf = Bytes.create 16 in
               let got =
                 match Libc.Unistd.read prev_r buf 16 with
                 | Ok k -> Bytes.sub_string buf 0 k
                 | Error _ -> "0"
               in
               let v = int_of_string (String.trim got) + 1 in
               ignore (Libc.Unistd.write_all w (string_of_int v ^ "\n"));
               ignore (Libc.Unistd.close w);
               0))
        in
        ignore (Libc.Unistd.close prev_r);
        ignore (Libc.Unistd.close w);
        build r (n - 1)
      end
    in
    let last_r = build first_r stages in
    ignore (u "seed" (Libc.Unistd.write_all first_w "0\n"));
    ignore (Libc.Unistd.close first_w);
    let buf = Bytes.create 16 in
    let k = u "read" (Libc.Unistd.read last_r buf 16) in
    let final = int_of_string (String.trim (Bytes.sub_string buf 0 k)) in
    for _ = 1 to stages do
      ignore (Libc.Unistd.wait ())
    done;
    if final = stages then 0 else 1)
  in
  check_exit "30-stage brigade" 0 status

let test_deep_fork_chain () =
  (* each process forks the next; depth 40; exit codes propagate back *)
  let _, status = boot (fun () ->
    let rec descend depth =
      if depth = 0 then 7
      else begin
        match Libc.Unistd.fork ~child:(fun () -> descend (depth - 1)) with
        | Ok pid ->
          (match Libc.Unistd.waitpid pid 0 with
           | Ok (_, st) -> Flags.Wait.wexitstatus st
           | Error _ -> 99)
        | Error _ -> 98
      end
    in
    descend 40)
  in
  check_exit "depth-40 chain" 7 status

(* --- cross-process pipe property ----------------------------------------------------------- *)

let test_pipe_preserves_stream =
  QCheck.Test.make ~name:"pipe preserves the byte stream across fork"
    ~count:25
    QCheck.(list_of_size Gen.(1 -- 12)
              (make Gen.(string_size ~gen:(char_range 'a' 'z') (1 -- 600))))
    (fun chunks ->
      let expected = String.concat "" chunks in
      let k = Tharness.fresh_kernel () in
      let got = ref "" in
      let status =
        Tharness.boot_k k (fun () ->
          let r, w = u "pipe" (Libc.Unistd.pipe ()) in
          let _ =
            u "fork"
              (Libc.Unistd.fork ~child:(fun () ->
                 ignore (Libc.Unistd.close r);
                 List.iter
                   (fun chunk -> ignore (Libc.Unistd.write_all w chunk))
                   chunks;
                 ignore (Libc.Unistd.close w);
                 0))
          in
          ignore (Libc.Unistd.close w);
          got := u "read_all" (Libc.Unistd.read_all r);
          ignore (Libc.Unistd.close r);
          let _ = Libc.Unistd.wait () in
          0)
      in
      Flags.Wait.wexitstatus status = 0 && !got = expected)

let test_sock_bidirectional_streams =
  QCheck.Test.make ~name:"socketpair carries both directions intact"
    ~count:20
    QCheck.(pair
              (make Gen.(string_size ~gen:(char_range 'a' 'z') (1 -- 2000)))
              (make Gen.(string_size ~gen:(char_range 'A' 'Z') (1 -- 2000))))
    (fun (ping, pong) ->
      let k = Tharness.fresh_kernel () in
      let got = ref "" in
      let status =
        Tharness.boot_k k (fun () ->
          let a, b = u "socketpair" (Libc.Unistd.socketpair ()) in
          let _ =
            u "fork"
              (Libc.Unistd.fork ~child:(fun () ->
                 ignore (Libc.Unistd.close a);
                 (* read the full ping, then answer *)
                 let buf = Bytes.create 256 in
                 let received = Buffer.create 64 in
                 let rec slurp () =
                   if Buffer.length received < String.length ping then begin
                     match Libc.Unistd.read b buf 256 with
                     | Ok n when n > 0 ->
                       Buffer.add_subbytes received buf 0 n;
                       slurp ()
                     | Ok _ | Error _ -> ()
                   end
                 in
                 slurp ();
                 if Buffer.contents received = ping then
                   ignore (Libc.Unistd.write_all b pong);
                 ignore (Libc.Unistd.close b);
                 0))
          in
          ignore (Libc.Unistd.close b);
          ignore (Libc.Unistd.write_all a ping);
          got := u "read_all" (Libc.Unistd.read_all a);
          ignore (Libc.Unistd.close a);
          let _ = Libc.Unistd.wait () in
          0)
      in
      Flags.Wait.wexitstatus status = 0 && !got = pong)

(* --- stream sockets: the bound/listening surface (DESIGN.md 3.10) ------- *)

(* establish a connected pair through the rendezvous machinery inside a
   single process: while the accept queue has room, connect succeeds
   immediately and accept adopts the queued peer *)
let conn_pair name =
  let lfd = u "socket(l)" (Libc.Unistd.socket ()) in
  u "bind" (Libc.Unistd.bind lfd name);
  u "listen" (Libc.Unistd.listen lfd 4);
  let c = u "socket(c)" (Libc.Unistd.socket ()) in
  u "connect" (Libc.Unistd.connect c name);
  let s = u "accept" (Libc.Unistd.accept lfd) in
  u "close(l)" (Libc.Unistd.close lfd);
  (c, s)

let test_bind_address_lifecycle () =
  let _, status = boot (fun () ->
    let a = u "socket" (Libc.Unistd.socket ()) in
    (match Libc.Unistd.bind a "" with
     | Error Errno.EINVAL -> ()
     | Ok () | Error _ -> Libc.Unistd._exit 1);
    u "bind" (Libc.Unistd.bind a "svc");
    let b = u "socket2" (Libc.Unistd.socket ()) in
    (match Libc.Unistd.bind b "svc" with
     | Error Errno.EADDRINUSE -> ()
     | Ok () | Error _ -> Libc.Unistd._exit 2);
    (* the name dies with its socket: close, and the address is free *)
    u "close(a)" (Libc.Unistd.close a);
    u "rebind" (Libc.Unistd.bind b "svc");
    u "close(b)" (Libc.Unistd.close b);
    0)
  in
  check_exit "EADDRINUSE then released" 0 status

let test_connect_refused () =
  let _, status = boot (fun () ->
    let c = u "socket" (Libc.Unistd.socket ()) in
    (match Libc.Unistd.connect c "nobody-home" with
     | Error Errno.ECONNREFUSED -> ()
     | Ok () | Error _ -> Libc.Unistd._exit 1);
    (* bound but never listening refuses just like an absent name *)
    let s = u "socket(b)" (Libc.Unistd.socket ()) in
    u "bind" (Libc.Unistd.bind s "deaf");
    (match Libc.Unistd.connect c "deaf" with
     | Error Errno.ECONNREFUSED -> ()
     | Ok () | Error _ -> Libc.Unistd._exit 2);
    u "close(s)" (Libc.Unistd.close s);
    u "close(c)" (Libc.Unistd.close c);
    0)
  in
  check_exit "ECONNREFUSED" 0 status

let test_shutdown_directions () =
  let _, status = boot (fun () ->
    let c, s = conn_pair "shut.svc" in
    ignore (Libc.Unistd.signal Signal.sigpipe Value.H_ignore);
    u "send" (Libc.Unistd.send_all s "tail");
    u "shutdown(wr)" (Libc.Unistd.shutdown s Flags.Shut.wr);
    (* bytes queued before the shutdown arrive ahead of the EOF *)
    let buf = Bytes.create 8 in
    (match Libc.Unistd.recv c buf 8 with
     | Ok 4 when Bytes.sub_string buf 0 4 = "tail" -> ()
     | Ok _ | Error _ -> Libc.Unistd._exit 1);
    (match Libc.Unistd.recv c buf 8 with
     | Ok 0 -> ()
     | Ok _ | Error _ -> Libc.Unistd._exit 2);
    (* the closed direction refuses writes; the other still flows *)
    (match Libc.Unistd.send s "x" with
     | Error Errno.EPIPE -> ()
     | Ok _ | Error _ -> Libc.Unistd._exit 3);
    u "send(back)" (Libc.Unistd.send_all c "up");
    (match Libc.Unistd.recv s buf 8 with
     | Ok 2 when Bytes.sub_string buf 0 2 = "up" -> ()
     | Ok _ | Error _ -> Libc.Unistd._exit 4);
    (* shutting down our own read side is an immediate local EOF *)
    u "shutdown(rd)" (Libc.Unistd.shutdown c Flags.Shut.rd);
    (match Libc.Unistd.recv c buf 8 with
     | Ok 0 -> ()
     | Ok _ | Error _ -> Libc.Unistd._exit 5);
    u "close(c)" (Libc.Unistd.close c);
    u "close(s)" (Libc.Unistd.close s);
    0)
  in
  check_exit "shutdown semantics" 0 status

let test_send_sigpipe_and_epipe () =
  let _, status = boot (fun () ->
    let c, s = conn_pair "pipe.svc" in
    u "close(s)" (Libc.Unistd.close s);
    (* default disposition: sending to a dead peer kills the sender *)
    let pid =
      u "fork"
        (Libc.Unistd.fork ~child:(fun () ->
           ignore (Libc.Unistd.send c "x");
           0))
    in
    let _, st = u "wait" (Libc.Unistd.waitpid pid 0) in
    if not (Flags.Wait.wifsignaled st
            && Flags.Wait.wtermsig st = Signal.sigpipe)
    then 1
    else begin
      ignore (Libc.Unistd.signal Signal.sigpipe Value.H_ignore);
      match Libc.Unistd.send c "x" with
      | Error Errno.EPIPE -> u "close(c)" (Libc.Unistd.close c); 0
      | Ok _ -> 2
      | Error _ -> 3
    end)
  in
  check_exit "SIGPIPE then EPIPE" 0 status

let test_recv_drains_before_eof () =
  let _, status = boot (fun () ->
    let c, s = conn_pair "drain.svc" in
    u "send" (Libc.Unistd.send_all s "hello");
    (* a zero-length recv is a no-op, never an EOF claim *)
    let buf = Bytes.create 8 in
    (match Libc.Unistd.recv c buf 0 with
     | Ok 0 -> ()
     | Ok _ | Error _ -> Libc.Unistd._exit 1);
    u "close(s)" (Libc.Unistd.close s);
    (* bytes in flight when the peer closed arrive before the EOF *)
    (match Libc.Unistd.recv c buf 8 with
     | Ok 5 when Bytes.sub_string buf 0 5 = "hello" -> ()
     | Ok _ | Error _ -> Libc.Unistd._exit 2);
    (match Libc.Unistd.recv c buf 8 with
     | Ok 0 -> ()
     | Ok _ | Error _ -> Libc.Unistd._exit 3);
    u "close(c)" (Libc.Unistd.close c);
    0)
  in
  check_exit "drain then EOF" 0 status

let test_sock_not_connected_errors () =
  let _, status = boot (fun () ->
    let s = u "socket" (Libc.Unistd.socket ()) in
    let buf = Bytes.create 4 in
    (match Libc.Unistd.recv s buf 4 with
     | Error Errno.ENOTCONN -> ()
     | Ok _ | Error _ -> Libc.Unistd._exit 1);
    (match Libc.Unistd.send s "x" with
     | Error Errno.ENOTCONN -> ()
     | Ok _ | Error _ -> Libc.Unistd._exit 2);
    (match Libc.Unistd.accept s with
     | Error Errno.EINVAL -> ()
     | Ok _ | Error _ -> Libc.Unistd._exit 3);
    (* socket calls on a plain file are ENOTSOCK across the board *)
    let fd = u "open" (Libc.Unistd.open_ "/tmp/plain"
                         Flags.Open.(o_wronly lor o_creat) 0o644) in
    (match Libc.Unistd.send fd "x" with
     | Error Errno.ENOTSOCK -> ()
     | Ok _ | Error _ -> Libc.Unistd._exit 4);
    u "close(fd)" (Libc.Unistd.close fd);
    u "close(s)" (Libc.Unistd.close s);
    0)
  in
  check_exit "ENOTCONN/ENOTSOCK" 0 status

let test_sock_cloexec_across_exec () =
  let k = fresh_kernel () in
  Kernel.register_image k "sockprobe" (fun ~argv ~envp:_ () ->
    (* argv.(1) carried close-on-exec and must be gone; argv.(2) is a
       connected socket with a byte already queued *)
    let closed = int_of_string argv.(1) in
    let still = int_of_string argv.(2) in
    let buf = Bytes.create 4 in
    let closed_gone =
      match Libc.Unistd.recv closed buf 4 with
      | Error Errno.EBADF -> true
      | Error _ | Ok _ -> false
    in
    let alive =
      match Libc.Unistd.recv still buf 4 with
      | Ok 1 when Bytes.get buf 0 = 'x' -> true
      | Ok _ | Error _ -> false
    in
    if closed_gone && alive then 0 else 1);
  Kernel.install_image k ~path:"/bin/sockprobe" ~image:"sockprobe";
  let status =
    boot_k k (fun () ->
      let c, s = conn_pair "exec.svc" in
      u "send" (Libc.Unistd.send_all s "x");
      u "cloexec" (Libc.Unistd.set_cloexec s true);
      match
        Libc.Unistd.execv "/bin/sockprobe"
          [| "sockprobe"; string_of_int s; string_of_int c |]
      with
      | Error _ -> 99
      | Ok _ -> assert false)
  in
  check_exit "socket cloexec honoured" 0 status

(* --- pipe EOF ordering and zero-length reads ----------------------------- *)

let test_pipe_drain_then_eof () =
  let _, status = boot (fun () ->
    let r, w = u "pipe" (Libc.Unistd.pipe ()) in
    (* a zero-length read with a live writer returns 0 immediately
       without meaning EOF — it must neither block nor consume *)
    let buf = Bytes.create 8 in
    (match Libc.Unistd.read r buf 0 with
     | Ok 0 -> ()
     | Ok _ | Error _ -> Libc.Unistd._exit 1);
    u "write" (Libc.Unistd.write_all w "abc");
    (match Libc.Unistd.read r buf 0 with
     | Ok 0 -> ()
     | Ok _ | Error _ -> Libc.Unistd._exit 2);
    u "close(w)" (Libc.Unistd.close w);
    (* bytes buffered when the writer closed arrive before the EOF *)
    (match Libc.Unistd.read r buf 8 with
     | Ok 3 when Bytes.sub_string buf 0 3 = "abc" -> ()
     | Ok _ | Error _ -> Libc.Unistd._exit 3);
    (match Libc.Unistd.read r buf 8 with
     | Ok 0 -> ()
     | Ok _ | Error _ -> Libc.Unistd._exit 4);
    u "close(r)" (Libc.Unistd.close r);
    0)
  in
  check_exit "bytes before EOF" 0 status

let () =
  Alcotest.run "kernel-extra"
    [ "process-groups",
      [ Alcotest.test_case "inherit+set" `Quick test_pgrp_inherit_and_set;
        Alcotest.test_case "kill -pgrp" `Quick test_kill_process_group ];
      "job-control",
      [ Alcotest.test_case "stop/continue" `Quick test_stop_and_continue ];
      "exec",
      [ Alcotest.test_case "cloexec" `Quick test_cloexec_closed_on_exec ];
      "fifo",
      [ Alcotest.test_case "cross-process" `Quick
          test_fifo_between_processes;
        Alcotest.test_case "stat kind" `Quick test_fifo_stat_kind ];
      "file-semantics",
      [ Alcotest.test_case "umask" `Quick test_umask_applies;
        Alcotest.test_case "O_APPEND" `Quick test_append_interleave;
        Alcotest.test_case "O_NONBLOCK" `Quick test_nonblocking_pipe;
        Alcotest.test_case "dir paging" `Quick
          test_getdirentries_small_buffer_pages;
        Alcotest.test_case "rewinddir" `Quick test_lseek_rewinds_directory;
        Alcotest.test_case "FIONREAD" `Quick test_fionread ];
      "timers",
      [ Alcotest.test_case "alarm replace/cancel" `Quick
          test_alarm_replaced_and_cancelled;
        Alcotest.test_case "settimeofday" `Quick test_settimeofday_root_only ];
      "crashes",
      [ Alcotest.test_case "uncaught exn" `Quick
          test_uncaught_exception_is_abort;
        Alcotest.test_case "contained" `Quick test_division_crash_contained ];
      "socketpair",
      [ Alcotest.test_case "bidirectional" `Quick
          test_socketpair_bidirectional;
        Alcotest.test_case "EOF/EPIPE" `Quick test_socketpair_eof_and_epipe;
        Alcotest.test_case "stat kind" `Quick test_socketpair_stat_kind ];
      "sockets",
      [ Alcotest.test_case "bind lifecycle" `Quick
          test_bind_address_lifecycle;
        Alcotest.test_case "ECONNREFUSED" `Quick test_connect_refused;
        Alcotest.test_case "shutdown" `Quick test_shutdown_directions;
        Alcotest.test_case "SIGPIPE/EPIPE" `Quick
          test_send_sigpipe_and_epipe;
        Alcotest.test_case "drain then EOF" `Quick
          test_recv_drains_before_eof;
        Alcotest.test_case "ENOTCONN/ENOTSOCK" `Quick
          test_sock_not_connected_errors;
        Alcotest.test_case "cloexec across exec" `Quick
          test_sock_cloexec_across_exec ];
      "pipe-eof",
      [ Alcotest.test_case "drain then EOF" `Quick test_pipe_drain_then_eof ];
      "getrusage",
      [ Alcotest.test_case "time deltas" `Quick test_getrusage_accounts_time;
        Alcotest.test_case "per-process" `Quick test_getrusage_per_process ];
      "devices",
      [ Alcotest.test_case "null + zero" `Quick test_dev_null_and_zero;
        Alcotest.test_case "stat kind" `Quick test_dev_stat_kind ];
      "select",
      [ Alcotest.test_case "poll + ready" `Quick test_select_poll_and_ready;
        Alcotest.test_case "blocks until data" `Quick
          test_select_blocks_until_data;
        Alcotest.test_case "timeout" `Quick test_select_timeout_expires;
        Alcotest.test_case "multiplex two children" `Quick
          test_select_multiplexes_two_children;
        Alcotest.test_case "EBADF" `Quick test_select_bad_fd ];
      "stress",
      [ QCheck_alcotest.to_alcotest test_pipe_preserves_stream;
        QCheck_alcotest.to_alcotest test_sock_bidirectional_streams;
        Alcotest.test_case "100 children" `Quick test_many_children;
        Alcotest.test_case "30-stage brigade" `Quick
          test_pipeline_chain_of_processes;
        Alcotest.test_case "deep fork chain" `Quick test_deep_fork_chain ] ]
