(* ABI-level tests: errno/signal tables, flag arithmetic, wait-status
   encoding, the dirent wire codec, typed-call encode/decode and the
   cost model. *)

open Abi

let qtest = QCheck_alcotest.to_alcotest

(* --- errno ------------------------------------------------------------- *)

let all_errnos =
  [ Errno.EPERM; ENOENT; ESRCH; EINTR; EIO; ENXIO; E2BIG; ENOEXEC; EBADF;
    ECHILD; EAGAIN; ENOMEM; EACCES; EFAULT; EBUSY; EEXIST; EXDEV; ENODEV;
    ENOTDIR; EISDIR; EINVAL; ENFILE; EMFILE; ENOTTY; EFBIG; ENOSPC;
    ESPIPE; EROFS; EMLINK; EPIPE; ERANGE; EWOULDBLOCK; ENAMETOOLONG;
    ENOTEMPTY; ELOOP; ENOSYS ]

let test_errno_roundtrip () =
  List.iter
    (fun e ->
      Alcotest.(check bool)
        (Errno.name e) true
        (Errno.of_int (Errno.to_int e) = Some e);
      Alcotest.(check bool) "message nonempty" true (Errno.message e <> ""))
    all_errnos

let test_errno_distinct () =
  let codes = List.map Errno.to_int all_errnos in
  Alcotest.(check int) "codes unique"
    (List.length codes)
    (List.length (List.sort_uniq compare codes))

(* --- signals ------------------------------------------------------------ *)

let test_signal_names () =
  for s = 1 to Signal.max_signal do
    Alcotest.(check (option int))
      (Signal.name s) (Some s)
      (Signal.of_name (Signal.name s))
  done;
  Alcotest.(check (option int)) "lowercase" (Some Signal.sigint)
    (Signal.of_name "int");
  Alcotest.(check (option int)) "unknown" None (Signal.of_name "NOSUCH")

let test_signal_defaults () =
  Alcotest.(check bool) "chld ignored" true
    (Signal.default_action Signal.sigchld = Signal.Ignore);
  Alcotest.(check bool) "term terminates" true
    (Signal.default_action Signal.sigterm = Signal.Terminate);
  Alcotest.(check bool) "stop stops" true
    (Signal.default_action Signal.sigstop = Signal.Stop);
  Alcotest.(check bool) "cont continues" true
    (Signal.default_action Signal.sigcont = Signal.Continue)

let test_mask_sanitize =
  QCheck.Test.make ~name:"mask sanitize strips KILL/STOP" ~count:200
    QCheck.(int_bound Signal.Mask.full)
    (fun m ->
      let s = Signal.Mask.sanitize m in
      (not (Signal.Mask.mem s Signal.sigkill))
      && (not (Signal.Mask.mem s Signal.sigstop))
      && Signal.Mask.inter s m = s)

let test_mask_ops =
  QCheck.Test.make ~name:"mask add/remove/mem" ~count:200
    QCheck.(pair (int_bound Signal.Mask.full) (int_range 1 31))
    (fun (m, s) ->
      Signal.Mask.mem (Signal.Mask.add m s) s
      && not (Signal.Mask.mem (Signal.Mask.remove m s) s))

(* --- wait status ---------------------------------------------------------- *)

let test_wait_exit =
  QCheck.Test.make ~name:"wait exit status" ~count:200
    QCheck.(int_bound 255)
    (fun code ->
      let st = Flags.Wait.exit_status code in
      Flags.Wait.wifexited st
      && Flags.Wait.wexitstatus st = code
      && (not (Flags.Wait.wifsignaled st))
      && not (Flags.Wait.wifstopped st))

let test_wait_signal =
  QCheck.Test.make ~name:"wait termination status" ~count:100
    QCheck.(int_range 1 31)
    (fun s ->
      let st = Flags.Wait.sig_status s in
      Flags.Wait.wifsignaled st
      && Flags.Wait.wtermsig st = s
      && not (Flags.Wait.wifexited st))

let test_wait_stop =
  QCheck.Test.make ~name:"wait stop status" ~count:100
    QCheck.(int_range 1 31)
    (fun s ->
      let st = Flags.Wait.stop_status s in
      Flags.Wait.wifstopped st
      && Flags.Wait.wstopsig st = s
      && (not (Flags.Wait.wifexited st))
      && not (Flags.Wait.wifsignaled st))

(* --- mode bits --------------------------------------------------------------- *)

let test_ls_string () =
  let cases =
    [ Flags.Mode.ifreg lor 0o644, "-rw-r--r--";
      Flags.Mode.ifdir lor 0o755, "drwxr-xr-x";
      Flags.Mode.iflnk lor 0o777, "lrwxrwxrwx";
      Flags.Mode.ifchr lor 0o666, "crw-rw-rw-";
      Flags.Mode.ifreg lor 0o4755, "-rwsr-xr-x";
      Flags.Mode.ifdir lor 0o1777, "drwxrwxrwt" ]
  in
  List.iter
    (fun (mode, expect) ->
      Alcotest.(check string) expect expect (Flags.Mode.to_ls_string mode))
    cases

let test_open_flags () =
  Alcotest.(check bool) "rdonly readable" true
    (Flags.Open.readable Flags.Open.o_rdonly);
  Alcotest.(check bool) "rdonly not writable" false
    (Flags.Open.writable Flags.Open.o_rdonly);
  Alcotest.(check bool) "rdwr both" true
    Flags.Open.(readable o_rdwr && writable o_rdwr);
  Alcotest.(check bool) "wronly" true
    Flags.Open.(writable o_wronly && not (readable o_wronly))

(* --- dirent codec --------------------------------------------------------------- *)

let name_gen = QCheck.(string_of_size Gen.(1 -- 60))

let valid_name n =
  n <> "" && not (String.contains n '/') && not (String.contains n '\000')

let test_dirent_roundtrip =
  QCheck.Test.make ~name:"dirent encode/decode" ~count:300
    QCheck.(pair (int_bound 0xFFFF) name_gen)
    (fun (ino, name) ->
      QCheck.assume (valid_name name);
      let e = { Dirent.d_ino = ino; d_name = name } in
      let buf = Bytes.create 256 in
      let next = Dirent.encode buf ~pos:0 e in
      next = Dirent.reclen e
      &&
      match Dirent.decode buf ~pos:0 ~limit:next with
      | Some (e', pos) -> e' = e && pos = next
      | None -> false)

let test_dirent_list_roundtrip =
  QCheck.Test.make ~name:"dirent list packing" ~count:200
    QCheck.(list_of_size Gen.(0 -- 20) (pair (int_bound 0xFFFF) name_gen))
    (fun raw ->
      let entries =
        List.filter_map
          (fun (ino, name) ->
            if valid_name name then Some { Dirent.d_ino = ino; d_name = name }
            else None)
        raw
      in
      let buf = Bytes.create 512 in
      let written, leftover = Dirent.encode_list buf entries in
      let decoded = Dirent.decode_all buf ~len:written in
      let taken = List.length entries - List.length leftover in
      decoded = List.filteri (fun i _ -> i < taken) entries)

let test_dirent_alignment =
  QCheck.Test.make ~name:"reclen 4-aligned" ~count:100 name_gen
    (fun name ->
      QCheck.assume (valid_name name);
      Dirent.reclen { Dirent.d_ino = 1; d_name = name } mod 4 = 0)

let test_dirent_small_buffer () =
  let e = { Dirent.d_ino = 1; d_name = "filename" } in
  let buf = Bytes.create 4 in
  Alcotest.(check bool) "does not fit" false (Dirent.fits buf ~pos:0 e);
  Alcotest.check_raises "encode raises"
    (Invalid_argument "Dirent.encode: buffer too small") (fun () ->
      ignore (Dirent.encode buf ~pos:0 e))

(* --- typed calls ------------------------------------------------------------------ *)

let call_cases : Call.t list =
  [ Call.Exit 3;
    Call.Read (4, Bytes.create 8, 8);
    Call.Write (1, "data");
    Call.Open ("/etc/motd", Flags.Open.o_rdonly, 0);
    Call.Close 5;
    Call.Wait4 (-1, 0);
    Call.Link ("/a", "/b");
    Call.Unlink "/a";
    Call.Execve ("/bin/sh", [| "sh" |], [||]);
    Call.Chdir "/tmp";
    Call.Lseek (3, 10, 0);
    Call.Getpid;
    Call.Kill (7, 9);
    Call.Stat ("/x", ref None);
    Call.Dup 1;
    Call.Pipe;
    Call.Socketpair;
    Call.Socket;
    Call.Bind (3, "svc.kv");
    Call.Listen (3, 8);
    Call.Accept 3;
    Call.Connect (4, "svc.kv");
    Call.Send (4, "ping");
    Call.Recv (4, Bytes.create 8, 8);
    Call.Shutdown (4, 1);
    Call.Sigprocmask (1, 0xF);
    Call.Ioctl (0, Flags.Ioctl.fionread, Bytes.create 4);
    Call.Symlink ("target", "/link");
    Call.Readlink ("/link", Bytes.create 64);
    Call.Umask 0o22;
    Call.Fstat (0, ref None);
    Call.Dup2 (1, 2);
    Call.Fcntl (1, Flags.Fcntl.f_getfd, 0);
    Call.Select (0b1010, 0b1, 1000);
    Call.Gettimeofday (ref None);
    Call.Getrusage (ref None);
    Call.Rename ("/a", "/b");
    Call.Truncate ("/a", 10);
    Call.Mkdir ("/d", 0o755);
    Call.Rmdir "/d";
    Call.Utimes ("/a", 1, 2);
    Call.Getdirentries (3, Bytes.create 128);
    Call.Sleepus 100;
    Call.Getcwd (Bytes.create 64) ]

let test_call_roundtrip () =
  List.iter
    (fun c ->
      match Call.decode (Call.encode c) with
      | Ok c' ->
        Alcotest.(check string) (Call.name c) (Call.name c) (Call.name c');
        Alcotest.(check int) "number" (Call.number c) (Call.number c')
      | Error e ->
        Alcotest.failf "decode %s failed: %s" (Call.name c) (Errno.name e))
    call_cases

let test_call_decode_bad () =
  (match Call.decode { Value.num = 9999; args = [||] } with
   | Error Errno.ENOSYS -> ()
   | Error e -> Alcotest.failf "expected ENOSYS, got %s" (Errno.name e)
   | Ok _ -> Alcotest.fail "decoded nonsense");
  match
    Call.decode { Value.num = Sysno.sys_read; args = [| Value.Str "x" |] }
  with
  | Error Errno.EFAULT -> ()
  | Error e -> Alcotest.failf "expected EFAULT, got %s" (Errno.name e)
  | Ok _ -> Alcotest.fail "decoded malformed read"

let test_call_classification () =
  List.iter
    (fun c ->
      let n = Call.number c in
      (match Call.pathname_of c with
       | Some _ ->
         Alcotest.(check bool)
           (Call.name c ^ " is a pathname call")
           true (Sysno.uses_pathname n)
       | None -> ());
      match Call.descriptor_of c with
      | Some _ ->
        Alcotest.(check bool)
          (Call.name c ^ " is a descriptor call")
          true (Sysno.uses_descriptor n)
      | None -> ())
    call_cases

let test_call_pp () =
  List.iter
    (fun c ->
      let s = Format.asprintf "%a" Call.pp c in
      Alcotest.(check bool) (Call.name c) true (String.length s > 0))
    call_cases

(* --- exhaustive encode/decode round-trip ------------------------------------- *)

(* Wire values carry closures and shared out-cells, so equality is
   physical for those and structural for the plain data. *)
let value_equal (a : Value.t) (b : Value.t) =
  match a, b with
  | Value.Body f, Value.Body g -> f == g
  | Value.Buf x, Value.Buf y -> x == y
  | Value.Stat_ref x, Value.Stat_ref y -> x == y
  | Value.Tv_ref x, Value.Tv_ref y -> x == y
  | Value.Handler_ref x, Value.Handler_ref y -> x == y
  | Value.Handler (Value.H_fn f), Value.Handler (Value.H_fn g) -> f == g
  | Value.Nil, Value.Nil -> true
  | Value.Int x, Value.Int y -> x = y
  | Value.Str x, Value.Str y -> x = y
  | Value.Strs x, Value.Strs y -> x = y
  | Value.Handler x, Value.Handler y -> x = y   (* H_default / H_ignore *)
  | _ -> false

let call_equal (a : Call.t) (b : Call.t) =
  Call.number a = Call.number b
  &&
  let wa = Call.encode a and wb = Call.encode b in
  Array.length wa.Value.args = Array.length wb.Value.args
  && Array.for_all2 value_equal wa.Value.args wb.Value.args

(* One generator per constructor, keyed by syscall number so coverage
   of the whole interface is checkable, not assumed. *)
let call_builders : (int * Call.t QCheck.Gen.t) list =
  let open QCheck.Gen in
  let i = small_nat in
  let s = map (Printf.sprintf "/p/%d") small_nat in
  (* socket addresses are flat names, deliberately not "/"-prefixed *)
  let addr = map (Printf.sprintf "svc%d") small_nat in
  let buf = map (fun n -> Bytes.create (n + 1)) (int_bound 63) in
  let strs = array_size (int_bound 3) (map string_of_int small_nat) in
  let body = (fun () -> 0) in
  let handler =
    oneofl [ Value.H_default; Value.H_ignore; Value.H_fn ignore ]
  in
  [ Sysno.sys_exit, map (fun n -> Call.Exit n) i;
    Sysno.sys_fork, return (Call.Fork body);
    Sysno.sys_read, map2 (fun fd b -> Call.Read (fd, b, Bytes.length b)) i buf;
    Sysno.sys_write, map2 (fun fd d -> Call.Write (fd, d)) i (map string_of_int i);
    Sysno.sys_open, map3 (fun p f m -> Call.Open (p, f, m)) s i i;
    Sysno.sys_close, map (fun fd -> Call.Close fd) i;
    Sysno.sys_wait4, map2 (fun p o -> Call.Wait4 (p, o)) i i;
    Sysno.sys_creat, map2 (fun p m -> Call.Creat (p, m)) s i;
    Sysno.sys_link, map2 (fun a b -> Call.Link (a, b)) s s;
    Sysno.sys_unlink, map (fun p -> Call.Unlink p) s;
    Sysno.sys_execve, map3 (fun p a e -> Call.Execve (p, a, e)) s strs strs;
    Sysno.sys_chdir, map (fun p -> Call.Chdir p) s;
    Sysno.sys_fchdir, map (fun fd -> Call.Fchdir fd) i;
    Sysno.sys_mknod, map3 (fun p m d -> Call.Mknod (p, m, d)) s i i;
    Sysno.sys_chmod, map2 (fun p m -> Call.Chmod (p, m)) s i;
    Sysno.sys_chown, map3 (fun p u g -> Call.Chown (p, u, g)) s i i;
    Sysno.sys_sbrk, map (fun d -> Call.Sbrk d) i;
    Sysno.sys_lseek, map3 (fun fd o w -> Call.Lseek (fd, o, w)) i i (int_bound 2);
    Sysno.sys_getpid, return Call.Getpid;
    Sysno.sys_setuid, map (fun u -> Call.Setuid u) i;
    Sysno.sys_getuid, return Call.Getuid;
    Sysno.sys_geteuid, return Call.Geteuid;
    Sysno.sys_alarm, map (fun n -> Call.Alarm n) i;
    Sysno.sys_access, map2 (fun p b -> Call.Access (p, b)) s (int_bound 7);
    Sysno.sys_sync, return Call.Sync;
    Sysno.sys_kill, map2 (fun p sg -> Call.Kill (p, sg)) i (int_range 1 31);
    Sysno.sys_stat, map (fun p -> Call.Stat (p, ref None)) s;
    Sysno.sys_getppid, return Call.Getppid;
    Sysno.sys_lstat, map (fun p -> Call.Lstat (p, ref None)) s;
    Sysno.sys_dup, map (fun fd -> Call.Dup fd) i;
    Sysno.sys_pipe, return Call.Pipe;
    Sysno.sys_socketpair, return Call.Socketpair;
    Sysno.sys_socket, return Call.Socket;
    Sysno.sys_bind, map2 (fun fd a -> Call.Bind (fd, a)) i addr;
    Sysno.sys_listen, map2 (fun fd b -> Call.Listen (fd, b)) i (int_range 1 16);
    Sysno.sys_accept, map (fun fd -> Call.Accept fd) i;
    Sysno.sys_connect, map2 (fun fd a -> Call.Connect (fd, a)) i addr;
    Sysno.sys_send, map2 (fun fd d -> Call.Send (fd, d)) i (map string_of_int i);
    Sysno.sys_recv, map2 (fun fd b -> Call.Recv (fd, b, Bytes.length b)) i buf;
    Sysno.sys_shutdown, map2 (fun fd h -> Call.Shutdown (fd, h)) i (int_bound 2);
    Sysno.sys_getegid, return Call.Getegid;
    Sysno.sys_sigaction,
    (map3
       (fun sg h keep ->
         Call.Sigaction (sg, h, if keep then Some (ref None) else None))
       (int_range 1 31) (option handler) bool);
    Sysno.sys_getgid, return Call.Getgid;
    Sysno.sys_sigprocmask, map2 (fun h m -> Call.Sigprocmask (h, m)) (int_bound 2) i;
    Sysno.sys_sigpending, return Call.Sigpending;
    Sysno.sys_sigsuspend, map (fun m -> Call.Sigsuspend m) i;
    Sysno.sys_ioctl, map3 (fun fd op b -> Call.Ioctl (fd, op, b)) i i buf;
    Sysno.sys_symlink, map2 (fun t p -> Call.Symlink (t, p)) s s;
    Sysno.sys_readlink, map2 (fun p b -> Call.Readlink (p, b)) s buf;
    Sysno.sys_umask, map (fun m -> Call.Umask m) (int_bound 0o777);
    Sysno.sys_fstat, map (fun fd -> Call.Fstat (fd, ref None)) i;
    Sysno.sys_getpagesize, return Call.Getpagesize;
    Sysno.sys_getpgrp, return Call.Getpgrp;
    Sysno.sys_setpgrp, map2 (fun p g -> Call.Setpgrp (p, g)) i i;
    Sysno.sys_getdtablesize, return Call.Getdtablesize;
    Sysno.sys_dup2, map2 (fun o n -> Call.Dup2 (o, n)) i i;
    Sysno.sys_fcntl, map3 (fun fd c a -> Call.Fcntl (fd, c, a)) i i i;
    Sysno.sys_fsync, map (fun fd -> Call.Fsync fd) i;
    Sysno.sys_select, map3 (fun r w t -> Call.Select (r, w, t)) i i i;
    Sysno.sys_gettimeofday, return (Call.Gettimeofday (ref None));
    Sysno.sys_getrusage, return (Call.Getrusage (ref None));
    Sysno.sys_settimeofday, map2 (fun sec us -> Call.Settimeofday (sec, us)) i i;
    Sysno.sys_rename, map2 (fun a b -> Call.Rename (a, b)) s s;
    Sysno.sys_truncate, map2 (fun p l -> Call.Truncate (p, l)) s i;
    Sysno.sys_ftruncate, map2 (fun fd l -> Call.Ftruncate (fd, l)) i i;
    Sysno.sys_mkdir, map2 (fun p m -> Call.Mkdir (p, m)) s i;
    Sysno.sys_rmdir, map (fun p -> Call.Rmdir p) s;
    Sysno.sys_utimes, map3 (fun p a m -> Call.Utimes (p, a, m)) s i i;
    Sysno.sys_getdirentries, map2 (fun fd b -> Call.Getdirentries (fd, b)) i buf;
    Sysno.sys_sleepus, map (fun us -> Call.Sleepus us) i;
    Sysno.sys_getcwd, map (fun b -> Call.Getcwd b) buf ]

let test_builders_cover_interface () =
  (* the generator table IS the interface: every syscall number, once *)
  Alcotest.(check (list int))
    "one builder per syscall" Sysno.all
    (List.sort compare (List.map fst call_builders));
  List.iter
    (fun (num, gen) ->
      let c = QCheck.Gen.generate1 gen in
      Alcotest.(check int) (Sysno.name num) num (Call.number c))
    call_builders

let gen_call =
  QCheck.Gen.(oneofl call_builders >>= fun (_, g) -> g)

let arb_call =
  QCheck.make ~print:(fun c -> Format.asprintf "%a" Call.pp c) gen_call

let test_call_roundtrip_exhaustive =
  QCheck.Test.make ~name:"decode (encode c) = Ok c, all constructors"
    ~count:1000 arb_call
    (fun c ->
      match Call.decode (Call.encode c) with
      | Ok c' -> call_equal c c'
      | Error _ -> false)

(* --- envelopes -------------------------------------------------------------------- *)

let codec_window f =
  (* no kernel here: envelopes count against the installed (default)
     per-shard counter set *)
  let codec = Envelope.Stats.installed () in
  let before = Envelope.Stats.snapshot_of codec in
  let r = f () in
  (r, Envelope.Stats.diff before (Envelope.Stats.snapshot_of codec))

let test_envelope_decode_once () =
  let env = Envelope.of_wire (Call.encode (Call.Close 3)) in
  Alcotest.(check bool) "starts undecoded" false (Envelope.decoded env);
  let (first, d) =
    codec_window (fun () ->
      let a = Envelope.call env in
      let b = Envelope.call env in
      Alcotest.(check bool) "memoized view is the same" true
        (match a, b with Ok x, Ok y -> x == y | _ -> false);
      a)
  in
  Alcotest.(check int) "one decode for two reads" 1 d.Envelope.Stats.decodes;
  Alcotest.(check int) "no encodes" 0 d.Envelope.Stats.encodes;
  (match first with
   | Ok (Call.Close 3) -> ()
   | _ -> Alcotest.fail "decoded to the wrong call");
  Alcotest.(check bool) "now decoded" true (Envelope.decoded env);
  Alcotest.(check bool) "wire memoized, not dirty" false (Envelope.dirty env)

let test_envelope_of_call_lazy_encode () =
  let env = Envelope.of_call (Call.Unlink "/tmp/x") in
  Alcotest.(check bool) "typed from birth" true (Envelope.decoded env);
  Alcotest.(check bool) "dirty until someone wants the vector" true
    (Envelope.dirty env);
  Alcotest.(check (option int)) "no wire yet" None
    (Option.map (fun (w : Value.wire) -> w.Value.num)
       (Envelope.peek_wire env));
  let (_, d) =
    codec_window (fun () ->
      let a = Envelope.wire env in
      let b = Envelope.wire env in
      Alcotest.(check bool) "memoized wire is the same" true (a == b))
  in
  Alcotest.(check int) "one encode for two reads" 1 d.Envelope.Stats.encodes;
  Alcotest.(check int) "no decodes" 0 d.Envelope.Stats.decodes;
  Alcotest.(check bool) "clean after encoding" false (Envelope.dirty env)

let test_envelope_boundary_drops_view () =
  let (env, d) =
    codec_window (fun () -> Envelope.at_boundary (Call.Getpid))
  in
  Alcotest.(check int) "boundary encodes eagerly" 1 d.Envelope.Stats.encodes;
  Alcotest.(check bool) "typed view dropped" false (Envelope.decoded env);
  Alcotest.(check int) "number still free" Sysno.sys_getpid
    (Envelope.number env)

let test_envelope_undecodable_memoized () =
  let env = Envelope.of_wire { Value.num = 9999; args = [||] } in
  let (_, d) =
    codec_window (fun () ->
      (match Envelope.call env with
       | Error Errno.ENOSYS -> ()
       | _ -> Alcotest.fail "expected ENOSYS");
      match Envelope.call env with
      | Error Errno.ENOSYS -> ()
      | _ -> Alcotest.fail "expected memoized ENOSYS")
  in
  Alcotest.(check int) "failure decoded once" 1 d.Envelope.Stats.decodes

(* --- wire pool ------------------------------------------------------------- *)

let pool_window f =
  let stats = Value.Pool.Stats.installed () in
  let before = Value.Pool.Stats.snapshot_of stats in
  let r = f () in
  (r, Value.Pool.Stats.diff before (Value.Pool.Stats.snapshot_of stats))

let test_pool_scrub_on_recycle () =
  let p = Value.Pool.create ~capacity:4 () in
  let (w, d) = pool_window (fun () -> Value.Pool.take p) in
  Alcotest.(check int) "dry take is a miss" 1 d.Value.Pool.Stats.misses;
  w.Value.num <- Sysno.sys_open;
  w.Value.args <- [| Value.Str "secret"; Value.Int 0; Value.Int 0o644 |];
  Value.Pool.recycle p w;
  Alcotest.(check int) "one wire parked" 1 (Value.Pool.size p);
  let (w', d) = pool_window (fun () -> Value.Pool.take p) in
  Alcotest.(check int) "warm take is a hit" 1 d.Value.Pool.Stats.hits;
  Alcotest.(check int) "warm take never allocates" 0 d.Value.Pool.Stats.misses;
  Alcotest.(check bool) "same record reused" true (w == w');
  Alcotest.(check int) "number scrubbed" 0 w'.Value.num;
  Alcotest.(check bool) "every argument scrubbed to Nil" true
    (Array.for_all (fun v -> v = Value.Nil) w'.Value.args)

let test_pool_boundary_reuse_no_stale () =
  (* a pooled wire refilled by a later trap carries only the later
     call: arity resets and nothing of the old arguments survives *)
  let p = Value.Pool.create () in
  let env1 =
    Envelope.at_boundary ~pool:p (Call.Open ("/tmp/secret", 3, 0o600))
  in
  Envelope.release env1;
  Alcotest.(check int) "un-rewritten trap parks its wire" 1
    (Value.Pool.size p);
  let (env2, d) =
    pool_window (fun () ->
        Envelope.at_boundary ~pool:p (Call.Unlink "/tmp/other"))
  in
  Alcotest.(check int) "refill reused the parked record" 1
    d.Value.Pool.Stats.hits;
  let w2 = Envelope.wire env2 in
  Alcotest.(check int) "number is the new call's" Sysno.sys_unlink
    w2.Value.num;
  Alcotest.(check bool) "args are exactly the new call's" true
    (w2.Value.args = [| Value.Str "/tmp/other" |])

let test_pool_release_ownership () =
  (* release recycles only while the envelope still owns the wire
     exclusively *)
  let p = Value.Pool.create () in
  let env = Envelope.at_boundary ~pool:p Call.Getpid in
  ignore (Envelope.wire env); (* an agent saw the raw record *)
  let ((), d) = pool_window (fun () -> Envelope.release env) in
  Alcotest.(check int) "exposed wire is not recycled" 0
    d.Value.Pool.Stats.recycled;
  Alcotest.(check int) "pool stays empty" 0 (Value.Pool.size p);
  let env' = Envelope.at_boundary ~pool:p Call.Getpid in
  let ((), d) =
    pool_window (fun () ->
        Envelope.release env';
        Envelope.release env')
  in
  Alcotest.(check int) "double release recycles once" 1
    d.Value.Pool.Stats.recycled;
  let ((), d) =
    pool_window (fun () -> Envelope.release (Envelope.of_call Call.Sync))
  in
  Alcotest.(check bool) "release of a typed-born envelope is a no-op" true
    (d = { Value.Pool.Stats.hits = 0; misses = 0; recycled = 0; dropped = 0 })

let test_pool_release_keeps_typed_view () =
  (* the internal decode does not expose the wire, so a released
     envelope both recycles and stays readable through its memoized
     view *)
  let p = Value.Pool.create () in
  let env = Envelope.at_boundary ~pool:p (Call.Close 7) in
  (match Envelope.call env with
   | Ok (Call.Close 7) -> ()
   | _ -> Alcotest.fail "decode failed");
  let ((), d) = pool_window (fun () -> Envelope.release env) in
  Alcotest.(check int) "decoded-but-unexposed wire recycles" 1
    d.Value.Pool.Stats.recycled;
  Alcotest.(check (option int)) "raw record is gone" None
    (Option.map (fun (w : Value.wire) -> w.Value.num)
       (Envelope.peek_wire env));
  (match Envelope.call env with
   | Ok (Call.Close 7) -> ()
   | _ -> Alcotest.fail "typed view lost by release")

let test_pool_capacity_drop () =
  let p = Value.Pool.create ~capacity:1 () in
  let w1 = Value.Pool.take p in
  let w2 = Value.Pool.take p in
  let ((), d) =
    pool_window (fun () ->
        Value.Pool.recycle p w1;
        Value.Pool.recycle p w2)
  in
  Alcotest.(check int) "first return kept" 1 d.Value.Pool.Stats.recycled;
  Alcotest.(check int) "overflow dropped" 1 d.Value.Pool.Stats.dropped;
  Alcotest.(check int) "size capped" 1 (Value.Pool.size p)

(* --- envelope record pool --------------------------------------------------- *)

let epool_window f =
  let stats = Envelope.Pool.Stats.installed () in
  let before = Envelope.Pool.Stats.snapshot_of stats in
  let r = f () in
  ( r,
    Envelope.Pool.Stats.diff before
      (Envelope.Pool.Stats.snapshot_of stats) )

let test_epool_reuse_and_scrub () =
  let p = Envelope.Pool.create ~capacity:4 () in
  let (env1, d) =
    epool_window (fun () -> Envelope.of_call ~epool:p (Call.Close 7))
  in
  Alcotest.(check int) "dry take is a miss" 1 d.Envelope.Pool.Stats.misses;
  let ((), d) = epool_window (fun () -> Envelope.release env1) in
  Alcotest.(check int) "clean release recycles the record" 1
    d.Envelope.Pool.Stats.recycled;
  Alcotest.(check int) "one record parked" 1 (Envelope.Pool.size p);
  let (env2, d) =
    epool_window (fun () -> Envelope.of_call ~epool:p (Call.Unlink "/x"))
  in
  Alcotest.(check int) "warm take is a hit" 1 d.Envelope.Pool.Stats.hits;
  Alcotest.(check int) "warm take never allocates" 0
    d.Envelope.Pool.Stats.misses;
  Alcotest.(check bool) "same record refilled" true (env1 == env2);
  (* scrubbed before reuse: nothing of the Close survives *)
  Alcotest.(check int) "number is the new call's" Sysno.sys_unlink
    (Envelope.number env2);
  (match Envelope.call env2 with
   | Ok (Call.Unlink "/x") -> ()
   | _ -> Alcotest.fail "stale view leaked through the free list");
  Alcotest.(check bool) "no stale wire" true (Envelope.dirty env2)

let test_epool_never_recycles_retained () =
  let p = Envelope.Pool.create () in
  let env = Envelope.of_call ~epool:p (Call.Close 3) in
  Envelope.retain env;
  let ((), d) = epool_window (fun () -> Envelope.release env) in
  Alcotest.(check int) "retained record not recycled" 0
    d.Envelope.Pool.Stats.recycled;
  Alcotest.(check int) "pool stays empty" 0 (Envelope.Pool.size p);
  (* the whole point of retain: the stash stays readable *)
  (match Envelope.call env with
   | Ok (Call.Close 3) -> ()
   | _ -> Alcotest.fail "retained envelope lost its view")

let test_epool_never_recycles_exposed () =
  (* handing out the raw wire — including the forced encode of a dirty
     envelope, i.e. a rewrite — blocks record recycling *)
  let p = Envelope.Pool.create () in
  let env = Envelope.of_call ~epool:p (Call.Close 9) in
  ignore (Envelope.wire env);  (* rewrite: dirty envelope forced to wire *)
  let ((), d) = epool_window (fun () -> Envelope.release env) in
  Alcotest.(check int) "exposed record not recycled" 0
    d.Envelope.Pool.Stats.recycled;
  Alcotest.(check int) "pool stays empty" 0 (Envelope.Pool.size p);
  let env' = Envelope.at_boundary ~epool:p Call.Getpid in
  ignore (Envelope.peek_wire env');
  let ((), d) = epool_window (fun () -> Envelope.release env') in
  Alcotest.(check int) "peeked record not recycled" 0
    d.Envelope.Pool.Stats.recycled

let test_epool_boundary_pairs_with_wire_pool () =
  (* at_boundary with both pools: one release sends the wire to its
     pool and the record to its own *)
  let wp = Value.Pool.create () in
  let ep = Envelope.Pool.create () in
  let env = Envelope.at_boundary ~pool:wp ~epool:ep (Call.Close 1) in
  Envelope.release env;
  Alcotest.(check int) "wire parked" 1 (Value.Pool.size wp);
  Alcotest.(check int) "record parked" 1 (Envelope.Pool.size ep)

(* Model property: drive a small pool through random
   take/action/release cycles and mirror the free list with an
   integer.  Actions: 0 = clean trap, 1 = retained stash, 2 = rewrite
   (wire forced on a dirty envelope).  Only clean traps may recycle;
   the pool never exceeds capacity; counters match the model
   exactly. *)
let test_epool_model =
  QCheck.Test.make ~name:"envelope pool matches free-list model" ~count:100
    QCheck.(small_list (int_bound 2))
    (fun actions ->
      let cap = 2 in
      let p = Envelope.Pool.create ~capacity:cap () in
      let model_len = ref 0 in
      let ok = ref true in
      let (_, d) =
        epool_window (fun () ->
            List.iteri
              (fun i action ->
                let expect_hit = !model_len > 0 in
                let (env, dt) =
                  epool_window (fun () ->
                      Envelope.of_call ~epool:p (Call.Close i))
                in
                if expect_hit then begin
                  if dt.Envelope.Pool.Stats.hits <> 1 then ok := false;
                  decr model_len
                end
                else if dt.Envelope.Pool.Stats.misses <> 1 then ok := false;
                (* scrub check: the record carries only this trap's call *)
                (match Envelope.call env with
                 | Ok (Call.Close j) when j = i -> ()
                 | _ -> ok := false);
                (match action with
                 | 0 -> ()
                 | 1 -> Envelope.retain env
                 | _ -> ignore (Envelope.wire env));
                Envelope.release env;
                if action = 0 && !model_len < cap then incr model_len)
              actions)
      in
      !ok
      && Envelope.Pool.size p = !model_len
      && d.Envelope.Pool.Stats.recycled
         + d.Envelope.Pool.Stats.dropped
         = List.length (List.filter (fun a -> a = 0) actions))

(* --- bitset ---------------------------------------------------------------- *)

let test_bitset_bounds () =
  let b = Bitset.create 10 in
  Alcotest.(check int) "length" 10 (Bitset.length b);
  List.iter
    (fun i ->
      Bitset.set b i; (* out-of-range set is a no-op *)
      Alcotest.(check bool) (Printf.sprintf "mem %d" i) false (Bitset.mem b i))
    [ -1; 10; 4096 ];
  Alcotest.(check bool) "still empty" true (Bitset.is_empty b)

let test_bitset_ops () =
  let b = Bitset.create 40 in
  List.iter (Bitset.set b) [ 0; 7; 8; 39 ];
  Bitset.assign b 7 false;
  Bitset.assign b 9 true;
  Alcotest.(check (list int)) "members" [ 0; 8; 9; 39 ] (Bitset.to_list b);
  Alcotest.(check int) "cardinal" 4 (Bitset.cardinal b);
  let c = Bitset.copy b in
  Bitset.clear b 39;
  Alcotest.(check bool) "copy is independent" true (Bitset.mem c 39);
  Alcotest.(check bool) "cleared" false (Bitset.mem b 39);
  Bitset.clear_all c;
  Alcotest.(check bool) "clear_all empties" true (Bitset.is_empty c);
  Alcotest.(check bool) "equal on equal contents" true
    (Bitset.equal b (Bitset.copy b))

let test_bitset_model =
  QCheck.Test.make ~name:"bitset matches reference set" ~count:200
    QCheck.(small_list (pair bool (int_bound 70)))
    (fun ops ->
      let b = Bitset.create 64 in
      let m = Hashtbl.create 16 in
      List.iter
        (fun (present, i) ->
          Bitset.assign b i present;
          if i >= 0 && i < 64 then
            if present then Hashtbl.replace m i () else Hashtbl.remove m i)
        ops;
      let model =
        List.sort compare (Hashtbl.fold (fun k () acc -> k :: acc) m [])
      in
      Bitset.to_list b = model
      && Bitset.cardinal b = List.length model
      && List.for_all
           (fun i -> Bitset.mem b i = Hashtbl.mem m i)
           (List.init 70 (fun i -> i)))

let test_sysno_table () =
  List.iter
    (fun n ->
      Alcotest.(check (option int)) (Sysno.name n) (Some n)
        (Sysno.of_name (Sysno.name n)))
    Sysno.all;
  Alcotest.(check bool) "all sorted" true
    (List.sort compare Sysno.all = Sysno.all);
  Alcotest.(check int) "count" (List.length Sysno.all)
    (List.length (List.sort_uniq compare Sysno.all))

(* --- cost model -------------------------------------------------------------------- *)

let test_cost_components () =
  Alcotest.(check int) "six components" 6
    (Cost_model.path_components "/usr/lib/pkg/deep/sub/leaf");
  Alcotest.(check int) "dots skipped" 2
    (Cost_model.path_components "/a/./b/");
  Alcotest.(check int) "stat 6-component = 892" 892
    (Cost_model.syscall_us
       (Call.Stat ("/usr/lib/pkg/deep/sub/leaf", ref None)))

let test_cost_known_values () =
  Alcotest.(check int) "getpid 25" 25 (Cost_model.syscall_us Call.Getpid);
  Alcotest.(check int) "gettimeofday 47" 47
    (Cost_model.syscall_us (Call.Gettimeofday (ref None)));
  Alcotest.(check int) "read 1K = 370" 370
    (Cost_model.syscall_us (Call.Read (0, Bytes.create 1024, 1024)));
  Alcotest.(check int) "fork 10000" 10_000
    (Cost_model.syscall_us (Call.Fork (fun () -> 0)))

let test_cost_read_monotonic =
  QCheck.Test.make ~name:"read cost monotonic in size" ~count:50
    QCheck.(pair (int_bound 8192) (int_bound 8192))
    (fun (a, b) ->
      let cost n = Cost_model.syscall_us (Call.Read (0, Bytes.create (max n 1), n)) in
      a > b || cost a <= cost b)

let () =
  Alcotest.run "abi"
    [ "errno",
      [ Alcotest.test_case "roundtrip" `Quick test_errno_roundtrip;
        Alcotest.test_case "distinct" `Quick test_errno_distinct ];
      "signal",
      [ Alcotest.test_case "names" `Quick test_signal_names;
        Alcotest.test_case "defaults" `Quick test_signal_defaults;
        qtest test_mask_sanitize;
        qtest test_mask_ops ];
      "wait",
      [ qtest test_wait_exit; qtest test_wait_signal; qtest test_wait_stop ];
      "mode",
      [ Alcotest.test_case "ls strings" `Quick test_ls_string;
        Alcotest.test_case "open flags" `Quick test_open_flags ];
      "dirent",
      [ qtest test_dirent_roundtrip;
        qtest test_dirent_list_roundtrip;
        qtest test_dirent_alignment;
        Alcotest.test_case "small buffer" `Quick test_dirent_small_buffer ];
      "call",
      [ Alcotest.test_case "roundtrip" `Quick test_call_roundtrip;
        Alcotest.test_case "coverage" `Quick test_builders_cover_interface;
        qtest test_call_roundtrip_exhaustive;
        Alcotest.test_case "bad decode" `Quick test_call_decode_bad;
        Alcotest.test_case "classification" `Quick test_call_classification;
        Alcotest.test_case "pp" `Quick test_call_pp;
        Alcotest.test_case "sysno" `Quick test_sysno_table ];
      "envelope",
      [ Alcotest.test_case "decode once" `Quick test_envelope_decode_once;
        Alcotest.test_case "lazy encode" `Quick
          test_envelope_of_call_lazy_encode;
        Alcotest.test_case "boundary" `Quick
          test_envelope_boundary_drops_view;
        Alcotest.test_case "undecodable memoized" `Quick
          test_envelope_undecodable_memoized ];
      "pool",
      [ Alcotest.test_case "scrub on recycle" `Quick
          test_pool_scrub_on_recycle;
        Alcotest.test_case "boundary reuse" `Quick
          test_pool_boundary_reuse_no_stale;
        Alcotest.test_case "release ownership" `Quick
          test_pool_release_ownership;
        Alcotest.test_case "release keeps view" `Quick
          test_pool_release_keeps_typed_view;
        Alcotest.test_case "capacity" `Quick test_pool_capacity_drop ];
      "env pool",
      [ Alcotest.test_case "reuse and scrub" `Quick
          test_epool_reuse_and_scrub;
        Alcotest.test_case "retained never recycles" `Quick
          test_epool_never_recycles_retained;
        Alcotest.test_case "exposed never recycles" `Quick
          test_epool_never_recycles_exposed;
        Alcotest.test_case "pairs with wire pool" `Quick
          test_epool_boundary_pairs_with_wire_pool;
        qtest test_epool_model ];
      "bitset",
      [ Alcotest.test_case "bounds" `Quick test_bitset_bounds;
        Alcotest.test_case "ops" `Quick test_bitset_ops;
        qtest test_bitset_model ];
      "cost",
      [ Alcotest.test_case "components" `Quick test_cost_components;
        Alcotest.test_case "known values" `Quick test_cost_known_values;
        qtest test_cost_read_monotonic ] ]
