(* Per-agent behaviour tests: timex, trace, syscount, union,
   dfs_trace (vs the in-kernel collector), sandbox, txn, crypt,
   compress, remap. *)

open Abi
open Tharness

(* --- timex ---------------------------------------------------------------- *)

let test_timex_shifts_time () =
  let day = 86_400 in
  let _, status =
    boot_under_agent
      (Agents.Timex.create ~offset_seconds:day ())
      (fun () ->
        let shifted, _ = check_ok "tod" (Libc.Unistd.gettimeofday ()) in
        Toolkit.Loader.install (Agents.Time_symbolic.create ()) ~argv:[||];
        (* the outer null agent does not change anything; compare with
           a direct reading through both *)
        let shifted2, _ = check_ok "tod" (Libc.Unistd.gettimeofday ()) in
        if shifted2 - shifted >= 0 && shifted2 - shifted < 5 then
          (* now measure the raw clock *)
          let raw =
            let cell = ref None in
            match Kernel.Uspace.htg_syscall (Call.Gettimeofday cell), !cell with
            | Ok _, Some (sec, _) -> sec
            | _ -> 0
          in
          if shifted - raw >= day - 5 && shifted - raw <= day + 5 then 0
          else 1
        else 2)
  in
  check_exit "time shifted by a day" 0 status

let test_timex_leaves_other_calls () =
  let _, status =
    boot_under_agent
      (Agents.Timex.create ~offset_seconds:1000 ())
      (fun () ->
        ignore (check_ok "write" (Libc.Stdio.write_file "/tmp/x" "1"));
        let st = check_ok "stat" (Libc.Unistd.stat "/tmp/x") in
        (* mtime comes from the kernel clock, not the shifted one *)
        if st.Stat.st_size = 1 then 0 else 1)
  in
  check_exit "stat unaffected" 0 status

(* --- trace ------------------------------------------------------------------ *)

let test_trace_emits_two_lines_per_call () =
  let k, status =
    boot (fun () ->
      let log_fd =
        check_ok "open log"
          (Libc.Unistd.open_ "/tmp/trace.log"
             Flags.Open.(o_wronly lor o_creat)
             0o644)
      in
      let agent = Agents.Trace.create ~fd:log_fd () in
      Toolkit.Loader.run_under agent (fun () ->
        ignore (Libc.Unistd.getpid ());
        ignore (Libc.Stdio.write_file "/tmp/y" "data"));
      ignore (Libc.Unistd.close log_fd);
      0)
  in
  check_exit "exit" 0 status;
  let log = read_file_exn k "/tmp/trace.log" in
  let lines = String.split_on_char '\n' log |> List.filter (( <> ) "") in
  let pre =
    List.filter (fun l -> not (String.length l > 3 && String.sub l 0 3 = "...")) lines
  in
  let post = List.filter (fun l -> String.length l > 3 && String.sub l 0 3 = "...") lines in
  Alcotest.(check bool) "balanced pre/post" true
    (List.length pre = List.length post);
  Alcotest.(check bool) "mentions getpid" true
    (List.exists (fun l -> String.length l >= 6 && String.sub l 0 6 = "getpid") pre);
  Alcotest.(check bool) "mentions open" true
    (List.exists
       (fun l -> String.length l >= 4 && String.sub l 0 4 = "open")
       pre)

let test_trace_signal_line () =
  let k, status =
    boot (fun () ->
      let log_fd =
        check_ok "open log"
          (Libc.Unistd.open_ "/tmp/trace.log"
             Flags.Open.(o_wronly lor o_creat)
             0o644)
      in
      let agent = Agents.Trace.create ~fd:log_fd () in
      Toolkit.Loader.run_under agent (fun () ->
        ignore
          (Libc.Unistd.signal Signal.sigusr1 (Value.H_fn (fun _ -> ())));
        ignore (Libc.Unistd.kill (Libc.Unistd.getpid ()) Signal.sigusr1);
        ignore (Libc.Unistd.getpid ()));
      0)
  in
  check_exit "exit" 0 status;
  let log = read_file_exn k "/tmp/trace.log" in
  Alcotest.(check bool) "signal delivery traced" true
    (let needle = "signal SIGUSR1" in
     let nl = String.length needle in
     let rec search i =
       i + nl <= String.length log
       && (String.sub log i nl = needle || search (i + 1))
     in
     search 0)

(* the exact strace-style format is part of the agent's contract;
   buffer "addresses" are normalised out before comparing *)
let normalise_addresses s =
  let b = Buffer.create (String.length s) in
  let n = String.length s in
  let is_hex c =
    (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f')
  in
  let rec go i =
    if i < n then
      if i + 1 < n && s.[i] = '0' && s.[i + 1] = 'x' then begin
        Buffer.add_string b "0xADDR";
        let rec skip j = if j < n && is_hex s.[j] then skip (j + 1) else j in
        go (skip (i + 2))
      end
      else begin
        Buffer.add_char b s.[i];
        go (i + 1)
      end
  in
  go 0;
  Buffer.contents b

let test_trace_golden_format () =
  let k, status =
    boot (fun () ->
      let log_fd =
        check_ok "open log"
          (Libc.Unistd.open_ "/t.log" Flags.Open.(o_wronly lor o_creat) 0o644)
      in
      Toolkit.Loader.install (Agents.Trace.create ~fd:log_fd ()) ~argv:[||];
      ignore (Libc.Unistd.getpid ());
      (match Libc.Unistd.open_ "/etc/motd" Flags.Open.o_rdonly 0 with
       | Ok fd ->
         let buf = Bytes.create 16 in
         ignore (Libc.Unistd.read fd buf 16);
         ignore (Libc.Unistd.close fd)
       | Error _ -> ());
      ignore (Libc.Unistd.unlink "/no/such/file");
      0)
  in
  ignore (exit_code status);
  Alcotest.(check string) "strace-style format"
    "getpid() ...\n\
     ... getpid -> 1\n\
     open(\"/etc/motd\", O_RDONLY, 00) ...\n\
     ... open -> 4\n\
     read(4, 0xADDR[16], 16) ...\n\
     ... read -> 16\n\
     close(4) ...\n\
     ... close -> 0\n\
     unlink(\"/no/such/file\") ...\n\
     ... unlink -> -1 ENOENT (No such file or directory)\n\
     exit(0) ...\n"
    (normalise_addresses (read_file_exn k "/t.log"))

(* --- syscount ----------------------------------------------------------------- *)

let test_syscount_counts () =
  let agent = Agents.Syscount.create () in
  let _, status =
    boot_under_agent agent (fun () ->
      ignore (Libc.Unistd.getpid ());
      ignore (Libc.Unistd.getpid ());
      ignore (Libc.Unistd.getuid ());
      0)
  in
  check_exit "exit" 0 status;
  Alcotest.(check int) "getpid twice" 2 (agent#count_of Sysno.sys_getpid);
  Alcotest.(check int) "getuid once" 1 (agent#count_of Sysno.sys_getuid);
  Alcotest.(check int) "exit once" 1 (agent#count_of Sysno.sys_exit)

(* --- union ----------------------------------------------------------------------- *)

let union_fixture () =
  fun () ->
    ignore (check_ok "mkdir src" (Libc.Unistd.mkdir "/src" 0o755));
    ignore (check_ok "mkdir obj" (Libc.Unistd.mkdir "/obj" 0o755));
    ignore (check_ok "a" (Libc.Stdio.write_file "/src/main.c" "int main;"));
    ignore (check_ok "b" (Libc.Stdio.write_file "/src/util.c" "void u;"));
    ignore (check_ok "c" (Libc.Stdio.write_file "/obj/main.o" "OBJ"));
    ignore
      (check_ok "shadow"
         (Libc.Stdio.write_file "/obj/util.c" "stale copy"))

let union_agent () =
  Agents.Union.create
    ~mounts:[ { Agents.Union.point = "/u"; members = [ "/src"; "/obj" ] } ]
    ()

let test_union_merged_listing () =
  let listing = ref [] in
  let _, status =
    boot_under_agent (union_agent ()) (fun () ->
      union_fixture () ();
      listing := check_ok "names" (Libc.Dirstream.names "/u");
      0)
  in
  check_exit "exit" 0 status;
  Alcotest.(check (list string)) "union contents (deduped)"
    [ "main.c"; "main.o"; "util.c" ]
    !listing

let test_union_first_member_wins () =
  let k, status =
    boot_under_agent (union_agent ()) (fun () ->
      union_fixture () ();
      (* util.c exists in both members; /src must win *)
      Libc.Stdio.print (check_ok "read" (Libc.Stdio.read_file "/u/util.c"));
      0)
  in
  check_exit "exit" 0 status;
  Alcotest.(check string) "src wins" "void u;" (Kernel.console_output k)

let test_union_fallthrough_to_second () =
  let k, status =
    boot_under_agent (union_agent ()) (fun () ->
      union_fixture () ();
      Libc.Stdio.print (check_ok "read" (Libc.Stdio.read_file "/u/main.o"));
      0)
  in
  check_exit "exit" 0 status;
  Alcotest.(check string) "obj provides main.o" "OBJ"
    (Kernel.console_output k)

let test_union_creation_in_first () =
  let k, status =
    boot_under_agent (union_agent ()) (fun () ->
      union_fixture () ();
      ignore (check_ok "create" (Libc.Stdio.write_file "/u/new.txt" "n"));
      0)
  in
  check_exit "exit" 0 status;
  Alcotest.(check string) "created in /src" "n" (read_file_exn k "/src/new.txt");
  Alcotest.(check bool) "not in /obj" false (Kernel.exists k "/obj/new.txt")

let test_union_stat_through () =
  let _, status =
    boot_under_agent (union_agent ()) (fun () ->
      union_fixture () ();
      let st = check_ok "stat" (Libc.Unistd.stat "/u/main.o") in
      if st.Stat.st_size = 3 then 0 else 1)
  in
  check_exit "stat resolves" 0 status

let test_union_outside_untouched () =
  let _, status =
    boot_under_agent (union_agent ()) (fun () ->
      union_fixture () ();
      ignore (check_ok "write" (Libc.Stdio.write_file "/tmp/plain" "p"));
      match Libc.Stdio.read_file "/tmp/plain" with
      | Ok "p" -> 0
      | Ok _ | Error _ -> 1)
  in
  check_exit "non-union path" 0 status

(* --- dfs_trace -------------------------------------------------------------------- *)

let test_dfs_trace_records () =
  let agent = Agents.Dfs_trace.create () in
  let k, status =
    boot_under_agent agent ~agent_argv:[| "log=/tmp/dfs.log" |] (fun () ->
      ignore (check_ok "write" (Libc.Stdio.write_file "/tmp/f1" "hello"));
      ignore (check_ok "read" (Libc.Stdio.read_file "/tmp/f1"));
      ignore (check_ok "stat" (Libc.Unistd.stat "/tmp/f1"));
      ignore (Libc.Unistd.unlink "/tmp/f1");
      0)
  in
  check_exit "exit" 0 status;
  let records = Agents.Dfs_record.parse_all (read_file_exn k "/tmp/dfs.log") in
  let ops = List.map (fun r -> Agents.Dfs_record.op_name r.Agents.Dfs_record.op) records in
  Alcotest.(check bool) "has open" true (List.mem "open" ops);
  Alcotest.(check bool) "has close" true (List.mem "close" ops);
  Alcotest.(check bool) "has stat" true (List.mem "stat" ops);
  Alcotest.(check bool) "has unlink" true (List.mem "unlink" ops);
  (* the close record carries byte totals *)
  let close_totals =
    List.filter_map
      (fun r ->
        match r.Agents.Dfs_record.op with
        | Agents.Dfs_record.R_close (rd, wr) -> Some (rd, wr)
        | _ -> None)
      records
  in
  Alcotest.(check bool) "close byte counts" true
    (List.mem (0, 5) close_totals && List.mem (5, 0) close_totals)

let test_dfs_kernel_vs_agent_equivalence () =
  (* both collectors observe the same workload; the pathname streams
     must match op-for-op *)
  let workload () =
    ignore (check_ok "w" (Libc.Stdio.write_file "/tmp/e" "x"));
    ignore (check_ok "s" (Libc.Unistd.stat "/tmp/e"));
    ignore (Libc.Unistd.unlink "/tmp/e");
    0
  in
  let agent = Agents.Dfs_trace.create () in
  let k1, _ =
    boot_under_agent agent ~agent_argv:[| "log=/tmp/dfs.log" |] workload
  in
  let agent_records =
    Agents.Dfs_record.parse_all (read_file_exn k1 "/tmp/dfs.log")
  in
  let k2 = fresh_kernel () in
  let collector = Agents.Dfs_kernel.install k2 in
  let _ = boot_k k2 workload in
  let kernel_records = Agents.Dfs_kernel.records collector in
  let sig_of filter records =
    List.filter_map
      (fun r ->
        let open Agents.Dfs_record in
        let name = op_name r.op in
        if List.mem name filter then Some (name, r.path) else None)
      records
  in
  (* compare on ops both collectors define identically; the agent's log
     open is invisible to itself but visible to the kernel hook, so
     compare only the workload's own paths *)
  let interesting = [ "stat"; "unlink" ] in
  Alcotest.(check (list (pair string string)))
    "same reference stream"
    (sig_of interesting kernel_records)
    (sig_of interesting agent_records)

(* --- sandbox ------------------------------------------------------------------------ *)

let confined_policy =
  { Agents.Sandbox.readable = [ "/tmp"; "/dev"; "/etc" ];
    writable = [ "/tmp/work" ];
    executable = [];
    max_children = 1;
    max_write_bytes = 100;
    allow_kill_outside = false;
    emulate_denied = false }

let test_sandbox_hides_unreadable () =
  let agent = Agents.Sandbox.create confined_policy in
  let _, status =
    boot_under_agent agent (fun () ->
      match Libc.Unistd.stat "/home" with
      | Error Errno.ENOENT -> 0
      | Error _ | Ok _ -> 1)
  in
  check_exit "hidden" 0 status;
  Alcotest.(check bool) "violation recorded" true
    (List.mem "read /home" agent#violations)

let test_sandbox_write_denied () =
  let agent = Agents.Sandbox.create confined_policy in
  let k, status =
    boot_under_agent agent (fun () ->
      ignore (Libc.Unistd.mkdir "/tmp/work" 0o755);
      (match Libc.Stdio.write_file "/tmp/work/ok" "fine" with
       | Ok () -> ()
       | Error _ -> Libc.Unistd._exit 1);
      match Libc.Stdio.write_file "/etc/motd" "defaced" with
      | Error Errno.EPERM -> 0
      | Error _ | Ok _ -> 2)
  in
  check_exit "denied" 0 status;
  Alcotest.(check bool) "motd intact" true
    (read_file_exn k "/etc/motd" <> "defaced")

let test_sandbox_emulates_denied () =
  let policy = { confined_policy with emulate_denied = true } in
  let agent = Agents.Sandbox.create policy in
  let k, status =
    boot_under_agent agent (fun () ->
      (* the untrusted binary "deletes" the motd and believes it *)
      match Libc.Unistd.unlink "/etc/motd" with
      | Ok () -> 0
      | Error _ -> 1)
  in
  check_exit "pretended success" 0 status;
  Alcotest.(check bool) "motd survives" true (Kernel.exists k "/etc/motd")

let test_sandbox_write_budget () =
  let agent = Agents.Sandbox.create confined_policy in
  let _, status =
    boot_under_agent agent (fun () ->
      ignore (Libc.Unistd.mkdir "/tmp/work" 0o755);
      let fd =
        check_ok "open"
          (Libc.Unistd.open_ "/tmp/work/big"
             Flags.Open.(o_wronly lor o_creat)
             0o644)
      in
      ignore (check_ok "within budget" (Libc.Unistd.write fd (String.make 90 'a')));
      match Libc.Unistd.write fd (String.make 20 'b') with
      | Error Errno.ENOSPC -> 0
      | Error _ | Ok _ -> 1)
  in
  check_exit "budget enforced" 0 status

let test_sandbox_fork_limit () =
  let agent = Agents.Sandbox.create confined_policy in
  let _, status =
    boot_under_agent agent (fun () ->
      let ok1 = Libc.Unistd.fork ~child:(fun () -> 0) in
      (match ok1 with
       | Ok pid -> ignore (Libc.Unistd.waitpid pid 0)
       | Error _ -> Libc.Unistd._exit 1);
      match Libc.Unistd.fork ~child:(fun () -> 0) with
      | Error Errno.EAGAIN -> 0
      | Error _ | Ok _ -> 2)
  in
  check_exit "one child only" 0 status

let test_sandbox_exec_denied () =
  let agent = Agents.Sandbox.create confined_policy in
  let k = fresh_kernel () in
  Kernel.register_image k "nop" (fun ~argv:_ ~envp:_ () -> 0);
  Kernel.install_image k ~path:"/tmp/nop" ~image:"nop";
  let status =
    Kernel.boot k ~name:"init" (fun () ->
      Toolkit.Loader.install agent ~argv:[||];
      match Libc.Unistd.execv "/tmp/nop" [| "nop" |] with
      | Error Errno.EPERM -> 0
      | Error _ | Ok _ -> 1)
  in
  check_exit "exec denied" 0 status

(* --- txn --------------------------------------------------------------------------- *)

let test_txn_commit_applies () =
  let agent = Agents.Txn.create () in
  let k, status =
    boot_under_agent agent (fun () ->
      ignore (check_ok "pre" (Libc.Stdio.write_file "/tmp/keep" "old"));
      ignore (check_ok "mod" (Libc.Stdio.write_file "/tmp/keep" "new"));
      ignore (check_ok "create" (Libc.Stdio.write_file "/tmp/fresh" "f"));
      0)
  in
  check_exit "exit" 0 status;
  Alcotest.(check string) "modification committed" "new"
    (read_file_exn k "/tmp/keep");
  Alcotest.(check string) "creation committed" "f"
    (read_file_exn k "/tmp/fresh")

let test_txn_abort_discards () =
  let agent = Agents.Txn.create ~decide:(fun () -> `Abort) () in
  let k = fresh_kernel () in
  write_file k ~path:"/tmp/precious" "original";
  let status =
    boot_k k (fun () ->
      Toolkit.Loader.install agent ~argv:[||];
      ignore (check_ok "mod" (Libc.Stdio.write_file "/tmp/precious" "clobbered"));
      ignore (Libc.Unistd.unlink "/tmp/precious");
      ignore (check_ok "mk" (Libc.Stdio.write_file "/tmp/ghost" "boo"));
      0)
  in
  check_exit "exit" 0 status;
  Alcotest.(check string) "original intact" "original"
    (read_file_exn k "/tmp/precious");
  Alcotest.(check bool) "ghost gone" false (Kernel.exists k "/tmp/ghost")

let test_txn_isolation_during_run () =
  (* inside the session: reads see the overlay; the real fs unchanged *)
  let agent = Agents.Txn.create ~decide:(fun () -> `Abort) () in
  let k = fresh_kernel () in
  write_file k ~path:"/tmp/file" "base";
  let status =
    boot_k k (fun () ->
      Toolkit.Loader.install agent ~argv:[||];
      ignore (check_ok "mod" (Libc.Stdio.write_file "/tmp/file" "changed"));
      let seen = check_ok "read" (Libc.Stdio.read_file "/tmp/file") in
      let raw =
        (* peek under the overlay *)
        match Kernel.Uspace.htg_syscall
                (Call.Open ("/tmp/file", Flags.Open.o_rdonly, 0))
        with
        | Ok { Value.r0 = fd; _ } ->
          let buf = Bytes.create 32 in
          let n =
            match Kernel.Uspace.htg_syscall (Call.Read (fd, buf, 32)) with
            | Ok { Value.r0; _ } -> r0
            | Error _ -> 0
          in
          ignore (Kernel.Uspace.htg_syscall (Call.Close fd));
          Bytes.sub_string buf 0 n
        | Error _ -> "?"
      in
      if seen = "changed" && raw = "base" then 0 else 1)
  in
  check_exit "overlay isolates" 0 status

let test_txn_unlink_hidden () =
  let agent = Agents.Txn.create ~decide:(fun () -> `Abort) () in
  let k = fresh_kernel () in
  write_file k ~path:"/tmp/dir/victim" "v";
  write_file k ~path:"/tmp/dir/other" "o";
  let listing = ref [] in
  let status =
    boot_k k (fun () ->
      Toolkit.Loader.install agent ~argv:[||];
      ignore (check_ok "rm" (Libc.Unistd.unlink "/tmp/dir/victim"));
      (match Libc.Unistd.stat "/tmp/dir/victim" with
       | Error Errno.ENOENT -> ()
       | Error _ | Ok _ -> Libc.Unistd._exit 1);
      ignore (check_ok "mk" (Libc.Stdio.write_file "/tmp/dir/newbie" "n"));
      listing := check_ok "ls" (Libc.Dirstream.names "/tmp/dir");
      0)
  in
  check_exit "exit" 0 status;
  Alcotest.(check (list string)) "listing hides whiteout, shows created"
    [ "newbie"; "other" ] !listing;
  Alcotest.(check bool) "victim still on disk" true
    (Kernel.exists k "/tmp/dir/victim")

let test_txn_commit_deletion () =
  let agent = Agents.Txn.create () in
  let k = fresh_kernel () in
  write_file k ~path:"/tmp/doomed" "d";
  let status =
    boot_k k (fun () ->
      Toolkit.Loader.install agent ~argv:[||];
      ignore (check_ok "rm" (Libc.Unistd.unlink "/tmp/doomed"));
      0)
  in
  check_exit "exit" 0 status;
  Alcotest.(check bool) "deletion committed" false
    (Kernel.exists k "/tmp/doomed")

let test_txn_nested () =
  (* inner transaction commits into the outer overlay; the outer abort
     then discards everything *)
  let outer = Agents.Txn.create ~decide:(fun () -> `Abort) () in
  let k = fresh_kernel () in
  write_file k ~path:"/tmp/n" "0";
  let status =
    boot_k k (fun () ->
      Toolkit.Loader.install outer ~argv:[||];
      let inner = Agents.Txn.create () in
      Toolkit.Loader.run_under inner (fun () ->
        ignore (check_ok "w" (Libc.Stdio.write_file "/tmp/n" "inner"));
        inner#commit);
      (* after the inner commit the outer session sees the change *)
      let seen = check_ok "read" (Libc.Stdio.read_file "/tmp/n") in
      if seen = "inner" then 0 else 1)
  in
  check_exit "inner visible to outer" 0 status;
  Alcotest.(check string) "outer abort wins" "0" (read_file_exn k "/tmp/n")

(* --- crypt ------------------------------------------------------------------------- *)

let test_crypt_roundtrip_and_at_rest () =
  let agent = Agents.Crypt.create ~key:1234 ~subtrees:[ "/tmp/vault" ] in
  let k, status =
    boot_under_agent agent (fun () ->
      ignore (Libc.Unistd.mkdir "/tmp/vault" 0o755);
      ignore (check_ok "w" (Libc.Stdio.write_file "/tmp/vault/secret" "attack at dawn"));
      let seen = check_ok "r" (Libc.Stdio.read_file "/tmp/vault/secret") in
      if seen = "attack at dawn" then 0 else 1)
  in
  check_exit "plaintext through agent" 0 status;
  Alcotest.(check bool) "ciphertext at rest" true
    (read_file_exn k "/tmp/vault/secret" <> "attack at dawn");
  Alcotest.(check int) "files protected" 2 agent#files_protected

let test_crypt_seek_read () =
  let agent = Agents.Crypt.create ~key:7 ~subtrees:[ "/tmp/vault" ] in
  let _, status =
    boot_under_agent agent (fun () ->
      ignore (Libc.Unistd.mkdir "/tmp/vault" 0o755);
      ignore (check_ok "w" (Libc.Stdio.write_file "/tmp/vault/f" "0123456789"));
      let fd =
        check_ok "open" (Libc.Unistd.open_ "/tmp/vault/f" Flags.Open.o_rdonly 0)
      in
      ignore (check_ok "seek" (Libc.Unistd.lseek fd 4 Flags.Seek.set));
      let buf = Bytes.create 3 in
      let n = check_ok "read" (Libc.Unistd.read fd buf 3) in
      if Bytes.sub_string buf 0 n = "456" then 0 else 1)
  in
  check_exit "positional decipher" 0 status

let test_crypt_keystream_involutive =
  QCheck.Test.make ~name:"crypt transform involutive" ~count:100
    QCheck.(pair small_int (string_of_size Gen.(0 -- 200)))
    (fun (key, s) ->
      let b = Bytes.of_string s in
      Agents.Crypt.transform ~key ~pos:13 b ~off:0 ~len:(Bytes.length b);
      Agents.Crypt.transform ~key ~pos:13 b ~off:0 ~len:(Bytes.length b);
      Bytes.to_string b = s)

(* --- compress ----------------------------------------------------------------------- *)

let test_rle_roundtrip =
  QCheck.Test.make ~name:"rle roundtrip" ~count:500
    QCheck.(string_of_size Gen.(0 -- 500))
    (fun s -> Agents.Rle.decode (Agents.Rle.encode s) = Ok s)

let test_rle_compresses_runs () =
  let s = String.make 1000 'x' in
  let e = Agents.Rle.encode s in
  Alcotest.(check bool) "runs shrink" true (String.length e < 20);
  Alcotest.(check (result string string)) "decodes" (Ok s)
    (Agents.Rle.decode e)

let test_compress_roundtrip_and_header () =
  let agent = Agents.Compress.create ~subtrees:[ "/tmp/arch" ] in
  let text = String.concat "" (List.init 50 (fun _ -> "aaaaabbbbb")) in
  let k, status =
    boot_under_agent agent (fun () ->
      ignore (Libc.Unistd.mkdir "/tmp/arch" 0o755);
      ignore (check_ok "w" (Libc.Stdio.write_file "/tmp/arch/f" text));
      let seen = check_ok "r" (Libc.Stdio.read_file "/tmp/arch/f") in
      let st = check_ok "fstat logical" (Libc.Unistd.stat "/tmp/arch/f") in
      ignore st;
      if seen = text then 0 else 1)
  in
  check_exit "transparent" 0 status;
  let stored = read_file_exn k "/tmp/arch/f" in
  Alcotest.(check bool) "stored with header" true
    (String.length stored >= 5 && String.sub stored 0 5 = Agents.Compress.header);
  Alcotest.(check bool) "stored smaller" true
    (String.length stored < String.length text)

let test_compress_legacy_plaintext () =
  let agent = Agents.Compress.create ~subtrees:[ "/tmp/arch" ] in
  let k = fresh_kernel () in
  write_file k ~path:"/tmp/arch/old" "plain old data";
  let status =
    boot_k k (fun () ->
      Toolkit.Loader.install agent ~argv:[||];
      match Libc.Stdio.read_file "/tmp/arch/old" with
      | Ok "plain old data" -> 0
      | Ok _ | Error _ -> 1)
  in
  check_exit "legacy readable" 0 status

let test_compress_logical_fstat () =
  let agent = Agents.Compress.create ~subtrees:[ "/tmp/arch" ] in
  let text = String.make 400 'z' in
  let _, status =
    boot_under_agent agent (fun () ->
      ignore (Libc.Unistd.mkdir "/tmp/arch" 0o755);
      ignore (check_ok "w" (Libc.Stdio.write_file "/tmp/arch/f" text));
      let fd =
        check_ok "open" (Libc.Unistd.open_ "/tmp/arch/f" Flags.Open.o_rdonly 0)
      in
      let st = check_ok "fstat" (Libc.Unistd.fstat fd) in
      if st.Stat.st_size = 400 then 0 else 1)
  in
  check_exit "logical size" 0 status

(* --- remap (foreign OS emulation) ----------------------------------------------------- *)

let test_foreign_fails_without_agent () =
  let _, status =
    boot (fun () ->
      match Agents.Foreign_abi.Stub.getpid () with
      | Error Errno.ENOSYS -> 0
      | Error _ | Ok _ -> 1)
  in
  check_exit "bare kernel rejects VOS calls" 0 status

let test_foreign_runs_under_remap () =
  let agent = Agents.Remap.create () in
  let k, status =
    boot_under_agent agent (fun () ->
      let module F = Agents.Foreign_abi.Stub in
      (* a little VOS program: create a file and read it back, with the
         VOS argument order for open *)
      (match
         F.open_ ~mode:0o644
           ~flags:Flags.Open.(o_wronly lor o_creat)
           "/tmp/vos"
       with
       | Ok { Value.r0 = fd; _ } ->
         ignore (F.write fd "from VOS");
         ignore (F.close fd)
       | Error _ -> Libc.Unistd._exit 1);
      (match F.open_ ~mode:0 ~flags:Flags.Open.o_rdonly "/tmp/vos" with
       | Ok { Value.r0 = fd; _ } ->
         let buf = Bytes.create 16 in
         let n =
           match F.read fd buf 16 with
           | Ok { Value.r0; _ } -> r0
           | Error _ -> 0
         in
         ignore (F.close fd);
         Libc.Stdio.print (Bytes.sub_string buf 0 n)
       | Error _ -> Libc.Unistd._exit 2);
      0)
  in
  check_exit "VOS program ran" 0 status;
  Alcotest.(check string) "io worked" "from VOS" (Kernel.console_output k);
  Alcotest.(check bool) "calls translated" true (agent#calls_translated >= 6)

(* --- synthfs (logical devices in user space) ---------------------------------------- *)

let test_synthfs_reads_generated () =
  let agent = Agents.Synthfs.create () in
  let k, status =
    boot_under_agent agent (fun () ->
      match Libc.Stdio.read_file "/proc/self" with
      | Ok s -> (match int_of_string_opt (String.trim s) with
        | Some pid when pid > 0 -> 0
        | Some _ | None -> 1)
      | Error _ -> 2)
  in
  ignore k;
  check_exit "reads own pid" 0 status;
  Alcotest.(check bool) "served" true (agent#opens_served >= 1)

let test_synthfs_listing_and_stat () =
  let agent = Agents.Synthfs.create () in
  let listing = ref [] in
  let _, status =
    boot_under_agent agent (fun () ->
      listing := check_ok "ls /proc" (Libc.Dirstream.names "/proc");
      let st = check_ok "stat" (Libc.Unistd.stat "/proc/loadavg") in
      if Flags.Mode.is_reg st.Stat.st_mode && st.Stat.st_size > 0 then 0
      else 1)
  in
  check_exit "stat synthetic" 0 status;
  Alcotest.(check (list string)) "registered files listed"
    [ "agents"; "loadavg"; "self"; "uptime" ]
    !listing

let test_synthfs_readonly () =
  let agent = Agents.Synthfs.create () in
  let _, status =
    boot_under_agent agent (fun () ->
      (match Libc.Stdio.write_file "/proc/loadavg" "hack" with
       | Error Errno.EROFS -> ()
       | Error _ | Ok _ -> Libc.Unistd._exit 1);
      match Libc.Unistd.unlink "/proc/self" with
      | Error Errno.EROFS -> 0
      | Error _ | Ok _ -> 2)
  in
  check_exit "read-only" 0 status

let test_synthfs_custom_generator () =
  let agent = Agents.Synthfs.create ~mount:"/sys" () in
  let hits = ref 0 in
  agent#register_file "counter" (fun () ->
    incr hits;
    Printf.sprintf "%d\n" !hits);
  let _, status =
    boot_under_agent agent (fun () ->
      let a = check_ok "r1" (Libc.Stdio.read_file "/sys/counter") in
      let b = check_ok "r2" (Libc.Stdio.read_file "/sys/counter") in
      (* generated afresh at each open *)
      if String.trim a = "1" && String.trim b = "2" then 0 else 1)
  in
  check_exit "fresh per open" 0 status

let test_synthfs_other_paths_untouched () =
  let agent = Agents.Synthfs.create () in
  let _, status =
    boot_under_agent agent (fun () ->
      ignore (check_ok "w" (Libc.Stdio.write_file "/tmp/x" "normal"));
      match Libc.Stdio.read_file "/tmp/x" with
      | Ok "normal" -> 0
      | Ok _ | Error _ -> 1)
  in
  check_exit "pass-through" 0 status

(* --- transparency under random file access -----------------------------------
   crypt and compress must be invisible to any access pattern: a random
   sequence of seeks/reads/writes/truncates behaves exactly as on a
   plain file (only the bytes at rest differ). *)

type fop =
  | F_seek of int
  | F_read of int
  | F_write of string
  | F_trunc of int
  | F_reopen

let fop_gen =
  let open QCheck.Gen in
  frequency
    [ 2, map (fun n -> F_seek n) (int_bound 200);
      3, map (fun n -> F_read n) (int_bound 64);
      3, map (fun s -> F_write s)
           (string_size ~gen:(char_range 'a' 'z') (1 -- 50));
      1, map (fun n -> F_trunc n) (int_bound 100);
      1, return F_reopen ]

let run_fops ~agent_mk ops =
  let k = fresh_kernel () in
  let observations = Buffer.create 256 in
  let _ =
    boot_k k (fun () ->
      (match agent_mk with
       | Some mk -> Toolkit.Loader.install (mk ()) ~argv:[||]
       | None -> ());
      ignore (Libc.Unistd.mkdir "/tmp/zone" 0o755);
      let reopen () =
        check_ok "open"
          (Libc.Unistd.open_ "/tmp/zone/f" Flags.Open.(o_rdwr lor o_creat)
             0o644)
      in
      let fd = ref (reopen ()) in
      List.iter
        (fun op ->
          match op with
          | F_seek n ->
            (match Libc.Unistd.lseek !fd n Flags.Seek.set with
             | Ok p -> Buffer.add_string observations (Printf.sprintf "s%d;" p)
             | Error e -> Buffer.add_string observations (Errno.name e))
          | F_read n ->
            let buf = Bytes.create (max n 1) in
            (match Libc.Unistd.read !fd buf n with
             | Ok got ->
               Buffer.add_string observations
                 (Printf.sprintf "r%S;" (Bytes.sub_string buf 0 got))
             | Error e -> Buffer.add_string observations (Errno.name e))
          | F_write s ->
            (match Libc.Unistd.write !fd s with
             | Ok n -> Buffer.add_string observations (Printf.sprintf "w%d;" n)
             | Error e -> Buffer.add_string observations (Errno.name e))
          | F_trunc n ->
            (match Libc.Unistd.ftruncate !fd n with
             | Ok () -> Buffer.add_string observations "t;"
             | Error e -> Buffer.add_string observations (Errno.name e))
          | F_reopen ->
            ignore (Libc.Unistd.close !fd);
            fd := reopen ();
            Buffer.add_string observations "o;")
        ops;
      ignore (Libc.Unistd.close !fd);
      (* final logical content, via a fresh open *)
      (match Libc.Stdio.read_file "/tmp/zone/f" with
       | Ok c -> Buffer.add_string observations (Printf.sprintf "F%S" c)
       | Error e -> Buffer.add_string observations (Errno.name e));
      0)
  in
  Buffer.contents observations

let test_crypt_random_access_transparent =
  QCheck.Test.make ~name:"crypt transparent to any access pattern" ~count:40
    QCheck.(make ~print:(fun l -> string_of_int (List.length l))
              Gen.(list_size (1 -- 20) fop_gen))
    (fun ops ->
      run_fops ~agent_mk:None ops
      = run_fops
          ~agent_mk:
            (Some
               (fun () ->
                 (Agents.Crypt.create ~key:31337 ~subtrees:[ "/tmp/zone" ]
                   :> Toolkit.Numeric.numeric_syscall)))
          ops)

let test_compress_random_access_transparent =
  QCheck.Test.make ~name:"compress transparent to any access pattern"
    ~count:40
    QCheck.(make ~print:(fun l -> string_of_int (List.length l))
              Gen.(list_size (1 -- 20) fop_gen))
    (fun ops ->
      run_fops ~agent_mk:None ops
      = run_fops
          ~agent_mk:
            (Some
               (fun () ->
                 (Agents.Compress.create ~subtrees:[ "/tmp/zone" ]
                   :> Toolkit.Numeric.numeric_syscall)))
          ops)

(* --- record/replay ----------------------------------------------------------------- *)

(* a program whose output depends on its inputs: file content + time *)
let observing_program () =
  let content =
    match Libc.Stdio.read_file "/tmp/input" with
    | Ok c -> String.trim c
    | Error e -> "err:" ^ Errno.name e
  in
  let sec =
    match Libc.Unistd.gettimeofday () with
    | Ok (sec, _) -> sec
    | Error _ -> -1
  in
  let size =
    match Libc.Unistd.stat "/tmp/input" with
    | Ok st -> st.Stat.st_size
    | Error _ -> -1
  in
  Libc.Stdio.printf "content=%s sec=%d size=%d\n" content sec size;
  0

let test_record_then_replay_pins_inputs () =
  (* record a run against input "A" at time T *)
  let recorder = Agents.Record_replay.create_recorder () in
  let k1 = fresh_kernel () in
  write_file k1 ~path:"/tmp/input" "AAAA\n";
  let _ =
    boot_k k1 (fun () ->
      Toolkit.Loader.install recorder ~argv:[||];
      observing_program ())
  in
  let original = Kernel.console_output k1 in
  Alcotest.(check bool) "journal nonempty" true (recorder#entries > 0);
  (* replay on a machine where the input file CHANGED *)
  let replayer =
    Agents.Record_replay.create_replayer ~journal:recorder#journal
  in
  let k2 = fresh_kernel () in
  write_file k2 ~path:"/tmp/input" "BBBBBBBB\n";
  let _ =
    boot_k k2 (fun () ->
      Toolkit.Loader.install replayer ~argv:[||];
      (* shift the clock too: replay must pin gettimeofday *)
      ignore (Libc.Unistd.sleep_us 5_000_000);
      observing_program ())
  in
  let replayed = Kernel.console_output k2 in
  Alcotest.(check string) "inputs pinned to the recording" original replayed;
  Alcotest.(check int) "no desyncs" 0 replayer#desyncs;
  Alcotest.(check bool) "entries consumed" true (replayer#consumed > 0)

let test_replay_detects_divergence () =
  let recorder = Agents.Record_replay.create_recorder () in
  let k1 = fresh_kernel () in
  write_file k1 ~path:"/tmp/input" "x";
  let _ =
    boot_k k1 (fun () ->
      Toolkit.Loader.install recorder ~argv:[||];
      ignore (Libc.Stdio.read_file "/tmp/input");
      0)
  in
  let replayer =
    Agents.Record_replay.create_replayer ~journal:recorder#journal
  in
  let k2 = fresh_kernel () in
  write_file k2 ~path:"/tmp/input" "x";
  let _ =
    boot_k k2 (fun () ->
      Toolkit.Loader.install replayer ~argv:[||];
      (* a different program: stats where the recording read *)
      ignore (Libc.Unistd.stat "/tmp/input");
      ignore (Libc.Stdio.read_file "/tmp/input");
      0)
  in
  Alcotest.(check bool) "divergence detected" true (replayer#desyncs > 0)

let test_record_replay_multiprocess () =
  let recorder = Agents.Record_replay.create_recorder () in
  let two_readers () =
    let pid =
      check_ok "fork"
        (Libc.Unistd.fork ~child:(fun () ->
           (match Libc.Stdio.read_file "/tmp/input" with
            | Ok c -> Libc.Stdio.printf "child:%s" c
            | Error _ -> ());
           0))
    in
    let _ = check_ok "wait" (Libc.Unistd.waitpid pid 0) in
    (match Libc.Stdio.read_file "/tmp/input" with
     | Ok c -> Libc.Stdio.printf "parent:%s" c
     | Error _ -> ());
    0
  in
  let k1 = fresh_kernel () in
  write_file k1 ~path:"/tmp/input" "one\n";
  let _ =
    boot_k k1 (fun () ->
      Toolkit.Loader.install recorder ~argv:[||];
      two_readers ())
  in
  let original = Kernel.console_output k1 in
  let replayer =
    Agents.Record_replay.create_replayer ~journal:recorder#journal
  in
  let k2 = fresh_kernel () in
  write_file k2 ~path:"/tmp/input" "two\n";
  let _ =
    boot_k k2 (fun () ->
      Toolkit.Loader.install replayer ~argv:[||];
      two_readers ())
  in
  Alcotest.(check string) "both processes pinned" original
    (Kernel.console_output k2);
  Alcotest.(check int) "no desyncs" 0 replayer#desyncs

let test_record_replay_fork_desync () =
  (* regression: journals are keyed by pid.  A replayed run that forks
     a DIFFERENT number of children must count desyncs for the extra
     process (served EIO), never feed it another pid's journal. *)
  let reader tag =
    (match Libc.Stdio.read_file "/tmp/input" with
     | Ok c -> Libc.Stdio.printf "%s:%s" tag c
     | Error e -> Libc.Stdio.printf "%s:err=%s" tag (Errno.name e));
    0
  in
  let spawn_readers n () =
    let pids =
      List.init n (fun i ->
          check_ok "fork"
            (Libc.Unistd.fork ~child:(fun () ->
                 reader (Printf.sprintf "c%d" i))))
    in
    List.iter
      (fun pid -> ignore (check_ok "wait" (Libc.Unistd.waitpid pid 0)))
      pids;
    0
  in
  let recorder = Agents.Record_replay.create_recorder () in
  let k1 = fresh_kernel () in
  write_file k1 ~path:"/tmp/input" "one\n";
  let _ =
    boot_k k1 (fun () ->
      Toolkit.Loader.install recorder ~argv:[||];
      spawn_readers 1 ())
  in
  let replayer =
    Agents.Record_replay.create_replayer ~journal:recorder#journal
  in
  let k2 = fresh_kernel () in
  write_file k2 ~path:"/tmp/input" "two\n";
  let _ =
    boot_k k2 (fun () ->
      Toolkit.Loader.install replayer ~argv:[||];
      spawn_readers 2 ())
  in
  let console = Kernel.console_output k2 in
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh
                   && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "first child pinned to the recording" true
    (contains console "c0:one");
  Alcotest.(check bool) "extra child not fed another pid's journal" true
    (not (contains console "c1:one") && not (contains console "c1:two"));
  Alcotest.(check bool) "extra child sees the desync error" true
    (contains console "c1:err=EIO");
  Alcotest.(check bool) "desyncs counted" true (replayer#desyncs > 0)

(* --- fault injection --------------------------------------------------------------- *)

let test_faultinject_zero_rate_transparent () =
  let agent =
    Agents.Faultinject.create
      { Agents.Faultinject.default_config with failure_rate = 0.0 }
  in
  let _, status =
    boot_under_agent agent (fun () ->
      ignore (check_ok "w" (Libc.Stdio.write_file "/tmp/f" "fine"));
      match Libc.Stdio.read_file "/tmp/f" with
      | Ok "fine" -> 0
      | Ok _ | Error _ -> 1)
  in
  check_exit "0% rate is a no-op" 0 status;
  Alcotest.(check int) "nothing injected" 0 agent#total_injected

let test_faultinject_injects_and_records () =
  let agent =
    Agents.Faultinject.create
      { Agents.Faultinject.seed = 7;
        failure_rate = 0.5;
        errno = Errno.EIO;
        candidates = [ Sysno.sys_read ] }
  in
  let failures = ref 0 in
  let _, status =
    boot_under_agent agent (fun () ->
      ignore (check_ok "w" (Libc.Stdio.write_file "/tmp/f" "x"));
      for _ = 1 to 40 do
        match Libc.Stdio.read_file "/tmp/f" with
        | Ok _ -> ()
        | Error Errno.EIO -> incr failures
        | Error _ -> Libc.Unistd._exit 9
      done;
      0)
  in
  check_exit "survives faults" 0 status;
  Alcotest.(check bool) "some faults seen" true (!failures > 5);
  Alcotest.(check int) "agent counted them" !failures agent#total_injected;
  Alcotest.(check bool) "only reads were hit" true
    (List.for_all (fun (num, _) -> num = Sysno.sys_read) agent#injected)

let test_faultinject_deterministic () =
  let run () =
    let agent =
      Agents.Faultinject.create
        { Agents.Faultinject.seed = 99;
          failure_rate = 0.3;
          errno = Errno.ENOSPC;
          candidates = [ Sysno.sys_write ] }
    in
    let outcomes = Buffer.create 64 in
    let _ =
      boot_under_agent agent (fun () ->
        let fd =
          check_ok "open"
            (Libc.Unistd.open_ "/tmp/f" Flags.Open.(o_wronly lor o_creat) 0o644)
        in
        for _ = 1 to 30 do
          match Libc.Unistd.write fd "data" with
          | Ok _ -> Buffer.add_char outcomes 'o'
          | Error _ -> Buffer.add_char outcomes 'x'
        done;
        0)
    in
    Buffer.contents outcomes
  in
  Alcotest.(check string) "same seed, same fault pattern" (run ()) (run ())

(* --- record codec ----------------------------------------------------------------------- *)

let test_dfs_record_roundtrip =
  QCheck.Test.make ~name:"dfs record roundtrip" ~count:200
    QCheck.(
      quad small_nat small_nat
        (string_of_size Gen.(1 -- 40))
        (oneofl
           [ Agents.Dfs_record.R_stat;
             Agents.Dfs_record.R_open 5;
             Agents.Dfs_record.R_close (10, 20);
             Agents.Dfs_record.R_rename "/other path";
             Agents.Dfs_record.R_symlink "tgt" ]))
    (fun (serial, pid, path, op) ->
      QCheck.assume (not (String.contains path '\000'));
      let r =
        { Agents.Dfs_record.serial; pid; time_us = 17; path; op; result = 0 }
      in
      Agents.Dfs_record.parse (Agents.Dfs_record.encode r) = Some r)

(* --- sockets under a fused agent chain ----------------------------------- *)

let test_sock_inherit_under_stack () =
  (* the full socket rendezvous across fork, under a depth-2 fused
     chain: a child forked before the parent parks in accept inherits
     the listening descriptor's world and connects to it; a second
     child serves the accepted connection it inherited.  The chain must
     actually have run — [fused] proves the traps took the pre-linked
     path, not the generic vector. *)
  let k, status =
    boot_under_agent (Agents.Timex.create ~offset_seconds:60 ())
      (fun () ->
        Toolkit.Loader.install (Agents.Syscount.create ()) ~argv:[||];
        let lfd = check_ok "socket" (Libc.Unistd.socket ()) in
        check_ok "bind" (Libc.Unistd.bind lfd "stacked.svc");
        check_ok "listen" (Libc.Unistd.listen lfd 2);
        let client =
          check_ok "fork"
            (Libc.Unistd.fork ~child:(fun () ->
               ignore (Libc.Unistd.close lfd);
               let c = check_ok "socket(c)" (Libc.Unistd.socket ()) in
               check_ok "connect" (Libc.Unistd.connect c "stacked.svc");
               check_ok "send" (Libc.Unistd.send_all c "ping");
               let buf = Bytes.create 4 in
               let n = check_ok "recv" (Libc.Unistd.recv c buf 4) in
               ignore (Libc.Unistd.close c);
               if n = 4 && Bytes.to_string buf = "pong" then 0 else 1))
        in
        (* parked in accept until the child's connect arrives *)
        let s = check_ok "accept" (Libc.Unistd.accept lfd) in
        ignore (Libc.Unistd.close lfd);
        let server =
          check_ok "fork2"
            (Libc.Unistd.fork ~child:(fun () ->
               let buf = Bytes.create 4 in
               let n = check_ok "recv(s)" (Libc.Unistd.recv s buf 4) in
               if n <> 4 || Bytes.to_string buf <> "ping" then 2
               else begin
                 check_ok "send(s)" (Libc.Unistd.send_all s "pong");
                 ignore (Libc.Unistd.close s);
                 0
               end))
        in
        ignore (Libc.Unistd.close s);
        let _, st1 = check_ok "wait" (Libc.Unistd.waitpid client 0) in
        let _, st2 = check_ok "wait2" (Libc.Unistd.waitpid server 0) in
        if Flags.Wait.wexitstatus st1 = 0 && Flags.Wait.wexitstatus st2 = 0
        then 0
        else 3)
  in
  check_exit "rendezvous under stack" 0 status;
  let d = Kernel.codec_stats k in
  Alcotest.(check bool) "fused chain engaged" true
    (d.Envelope.Stats.fused > 0);
  Alcotest.(check int) "generic vector never probed" 0
    d.Envelope.Stats.intercepted

let qtest = QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "agents"
    [ "timex",
      [ Alcotest.test_case "shifts gettimeofday" `Quick test_timex_shifts_time;
        Alcotest.test_case "other calls untouched" `Quick
          test_timex_leaves_other_calls ];
      "trace",
      [ Alcotest.test_case "two lines per call" `Quick
          test_trace_emits_two_lines_per_call;
        Alcotest.test_case "signals traced" `Quick test_trace_signal_line;
        Alcotest.test_case "golden format" `Quick test_trace_golden_format ];
      "syscount",
      [ Alcotest.test_case "counts calls" `Quick test_syscount_counts ];
      "union",
      [ Alcotest.test_case "merged listing" `Quick test_union_merged_listing;
        Alcotest.test_case "first member wins" `Quick
          test_union_first_member_wins;
        Alcotest.test_case "fallthrough" `Quick
          test_union_fallthrough_to_second;
        Alcotest.test_case "create in first" `Quick
          test_union_creation_in_first;
        Alcotest.test_case "stat through" `Quick test_union_stat_through;
        Alcotest.test_case "outside untouched" `Quick
          test_union_outside_untouched ];
      "dfs_trace",
      [ Alcotest.test_case "records emitted" `Quick test_dfs_trace_records;
        Alcotest.test_case "kernel vs agent streams" `Quick
          test_dfs_kernel_vs_agent_equivalence;
        qtest test_dfs_record_roundtrip ];
      "sandbox",
      [ Alcotest.test_case "hides unreadable" `Quick
          test_sandbox_hides_unreadable;
        Alcotest.test_case "write denied" `Quick test_sandbox_write_denied;
        Alcotest.test_case "emulates denied" `Quick
          test_sandbox_emulates_denied;
        Alcotest.test_case "write budget" `Quick test_sandbox_write_budget;
        Alcotest.test_case "fork limit" `Quick test_sandbox_fork_limit;
        Alcotest.test_case "exec denied" `Quick test_sandbox_exec_denied ];
      "txn",
      [ Alcotest.test_case "commit applies" `Quick test_txn_commit_applies;
        Alcotest.test_case "abort discards" `Quick test_txn_abort_discards;
        Alcotest.test_case "isolation" `Quick test_txn_isolation_during_run;
        Alcotest.test_case "unlink hidden" `Quick test_txn_unlink_hidden;
        Alcotest.test_case "commit deletion" `Quick test_txn_commit_deletion;
        Alcotest.test_case "nested" `Quick test_txn_nested ];
      "crypt",
      [ Alcotest.test_case "roundtrip + at rest" `Quick
          test_crypt_roundtrip_and_at_rest;
        Alcotest.test_case "seek read" `Quick test_crypt_seek_read;
        qtest test_crypt_keystream_involutive;
        qtest test_crypt_random_access_transparent ];
      "compress",
      [ qtest test_rle_roundtrip;
        Alcotest.test_case "runs shrink" `Quick test_rle_compresses_runs;
        Alcotest.test_case "roundtrip + header" `Quick
          test_compress_roundtrip_and_header;
        Alcotest.test_case "legacy plaintext" `Quick
          test_compress_legacy_plaintext;
        Alcotest.test_case "logical fstat" `Quick test_compress_logical_fstat;
        qtest test_compress_random_access_transparent ];
      "remap",
      [ Alcotest.test_case "ENOSYS bare" `Quick
          test_foreign_fails_without_agent;
        Alcotest.test_case "VOS under remap" `Quick
          test_foreign_runs_under_remap ];
      "faultinject",
      [ Alcotest.test_case "zero rate" `Quick
          test_faultinject_zero_rate_transparent;
        Alcotest.test_case "injects + records" `Quick
          test_faultinject_injects_and_records;
        Alcotest.test_case "deterministic" `Quick
          test_faultinject_deterministic ];
      "record-replay",
      [ Alcotest.test_case "pins inputs" `Quick
          test_record_then_replay_pins_inputs;
        Alcotest.test_case "detects divergence" `Quick
          test_replay_detects_divergence;
        Alcotest.test_case "multi-process" `Quick
          test_record_replay_multiprocess;
        Alcotest.test_case "fork-count desync" `Quick
          test_record_replay_fork_desync ];
      "synthfs",
      [ Alcotest.test_case "generated content" `Quick
          test_synthfs_reads_generated;
        Alcotest.test_case "listing + stat" `Quick
          test_synthfs_listing_and_stat;
        Alcotest.test_case "read-only" `Quick test_synthfs_readonly;
        Alcotest.test_case "custom generator" `Quick
          test_synthfs_custom_generator;
        Alcotest.test_case "pass-through" `Quick
          test_synthfs_other_paths_untouched ];
      "sockets-under-stack",
      [ Alcotest.test_case "fork inherit + rendezvous" `Quick
          test_sock_inherit_under_stack ] ]
